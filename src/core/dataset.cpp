#include "core/dataset.hpp"

#include <algorithm>
#include <memory>
#include <numeric>

#include "util/require.hpp"
#include "util/thread_pool.hpp"
#include "workload/generator.hpp"

namespace omniboost::core {

namespace {

/// Per-slot redraw budget of the parallel pipeline. The sequential
/// pipeline's cap is global (samples * 20), so slack is shared across
/// samples; a per-slot cap has to be far above the *average* redraw count
/// or rare unlucky slots abort campaigns the sequential path would finish
/// (at a 10%-feasible board, a cap of 20 fails a given slot with p ~ 0.12
/// — near-certain abort over 1000 slots; 200 pushes that below 1e-9 while
/// still bounding a truly infeasible configuration).
constexpr std::size_t kSlotAttempts = 200;

/// One training sample produced by a slot (inputs/targets land in slot
/// order regardless of which worker computed them).
struct Sample {
  tensor::Tensor input;
  std::array<double, 3> target;
};

/// Runs the slot-seeded pipeline: draw_slot(rng, board) must draw one
/// candidate from the given stream and return whether it was feasible,
/// filling \p out on success. Byte-identical for every worker count.
template <typename DrawSlot>
SampleSet run_parallel_pipeline(const sim::DesSimulator& board,
                                const DatasetConfig& config,
                                const DrawSlot& draw_slot) {
  util::ThreadPool pool(
      util::ThreadPool::clamped(config.workers, config.samples));

  // One private simulator per worker (the DES itself is stateless per
  // simulate() call, but per-worker clones keep the contract local and the
  // shared simulator untouched).
  std::vector<std::unique_ptr<sim::DesSimulator>> sims;
  sims.reserve(pool.size());
  for (std::size_t w = 0; w < pool.size(); ++w) sims.push_back(board.clone());

  std::vector<Sample> samples(config.samples);
  pool.parallel_for(
      config.samples, [&](std::size_t slot, std::size_t worker) {
        util::Rng rng(util::fork_stream(config.seed, slot));
        for (std::size_t attempt = 0; attempt < kSlotAttempts; ++attempt) {
          if (draw_slot(rng, *sims[worker], samples[slot])) return;
        }
        OB_ENSURE(false, "generate_dataset: too many infeasible workloads");
      });

  SampleSet set;
  set.inputs.reserve(config.samples);
  set.targets.reserve(config.samples);
  for (Sample& s : samples) {
    set.inputs.push_back(std::move(s.input));
    set.targets.push_back(s.target);
  }
  return set;
}

}  // namespace

SampleSet generate_dataset(const models::ModelZoo& zoo,
                           const EmbeddingTensor& embedding,
                           const sim::DesSimulator& board,
                           const DatasetConfig& config) {
  OB_REQUIRE(config.samples > 0, "generate_dataset: zero samples");
  OB_REQUIRE(config.min_mix >= 1 && config.min_mix <= config.max_mix &&
                 config.max_mix <= models::kNumModels,
             "generate_dataset: bad mix-size range");

  if (config.workers >= 1) {
    return run_parallel_pipeline(
        board, config,
        [&](util::Rng& rng, const sim::DesSimulator& sim, Sample& out) {
          const std::size_t n = static_cast<std::size_t>(
              rng.range(static_cast<std::int64_t>(config.min_mix),
                        static_cast<std::int64_t>(config.max_mix)));
          const workload::Workload w = workload::random_mix(rng, n);
          const sim::Mapping mapping =
              workload::random_mapping(rng, zoo, w, config.stage_limit);
          const sim::ThroughputReport report =
              sim.simulate(w.resolve(zoo), mapping);
          if (!report.feasible) return false;
          out.input = embedding.masked_input(w, mapping);
          out.target = {report.per_component_rate[0],
                        report.per_component_rate[1],
                        report.per_component_rate[2]};
          return true;
        });
  }

  // workers == 0: the original single-stream pipeline, kept bit-frozen to
  // preserve the exact RNG draw sequence of the original campaign — the
  // trained estimator (and with it every figure) is reproducible from the
  // seed across releases.
  util::Rng rng(config.seed);
  SampleSet set;
  set.inputs.reserve(config.samples);
  set.targets.reserve(config.samples);

  std::size_t attempts = 0;
  const std::size_t max_attempts = config.samples * 20;
  while (set.size() < config.samples) {
    OB_ENSURE(++attempts <= max_attempts,
              "generate_dataset: too many infeasible workloads");
    const std::size_t n = static_cast<std::size_t>(
        rng.range(static_cast<std::int64_t>(config.min_mix),
                  static_cast<std::int64_t>(config.max_mix)));
    const workload::Workload w = workload::random_mix(rng, n);
    const sim::Mapping mapping =
        workload::random_mapping(rng, zoo, w, config.stage_limit);

    const sim::ThroughputReport report =
        board.simulate(w.resolve(zoo), mapping);
    if (!report.feasible) continue;  // unrunnable on the physical board

    set.inputs.push_back(embedding.masked_input(w, mapping));
    set.targets.push_back({report.per_component_rate[0],
                           report.per_component_rate[1],
                           report.per_component_rate[2]});
  }
  return set;
}

SampleSet generate_dataset(const sim::NetworkList& nets,
                           const EmbeddingTensor& embedding,
                           const sim::DesSimulator& board,
                           const DatasetConfig& config) {
  OB_REQUIRE(config.samples > 0, "generate_dataset: zero samples");
  OB_REQUIRE(!nets.empty(), "generate_dataset: empty catalog");
  const std::size_t max_mix = std::min(config.max_mix, nets.size());
  OB_REQUIRE(config.min_mix >= 1 && config.min_mix <= max_mix,
             "generate_dataset: bad mix-size range");
  OB_REQUIRE(embedding.models_dim() == nets.size(),
             "generate_dataset: embedding/catalog dimension mismatch");

  std::vector<std::size_t> all_indices(nets.size());
  std::iota(all_indices.begin(), all_indices.end(), 0);

  // One candidate draw from \p rng: mix size, distinct catalog indices
  // (partial Fisher-Yates), per-DNN random stage assignments.
  const auto draw_candidate = [&](util::Rng& rng, sim::NetworkList& mix_nets,
                                  std::vector<std::size_t>& indices,
                                  sim::Mapping& mapping) {
    const std::size_t n = static_cast<std::size_t>(
        rng.range(static_cast<std::int64_t>(config.min_mix),
                  static_cast<std::int64_t>(max_mix)));
    indices = all_indices;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t j = i + rng.below(indices.size() - i);
      std::swap(indices[i], indices[j]);
    }
    indices.resize(n);

    mix_nets.clear();
    std::vector<sim::Assignment> per_dnn;
    mix_nets.reserve(n);
    per_dnn.reserve(n);
    for (const std::size_t idx : indices) {
      mix_nets.push_back(nets[idx]);
      per_dnn.push_back(workload::random_assignment(
          rng, nets[idx]->num_layers(), config.stage_limit));
    }
    mapping = sim::Mapping(std::move(per_dnn));
  };

  if (config.workers >= 1) {
    return run_parallel_pipeline(
        board, config,
        [&](util::Rng& rng, const sim::DesSimulator& sim, Sample& out) {
          sim::NetworkList mix_nets;
          std::vector<std::size_t> indices;
          sim::Mapping mapping;
          draw_candidate(rng, mix_nets, indices, mapping);
          const sim::ThroughputReport report = sim.simulate(mix_nets, mapping);
          if (!report.feasible) return false;
          out.input = embedding.masked_input(indices, mapping);
          out.target = {report.per_component_rate[0],
                        report.per_component_rate[1],
                        report.per_component_rate[2]};
          return true;
        });
  }

  // workers == 0: original single-stream order (bit-frozen, see above).
  util::Rng rng(config.seed);
  SampleSet set;
  set.inputs.reserve(config.samples);
  set.targets.reserve(config.samples);

  std::size_t attempts = 0;
  const std::size_t max_attempts = config.samples * 20;
  while (set.size() < config.samples) {
    OB_ENSURE(++attempts <= max_attempts,
              "generate_dataset: too many infeasible workloads");
    sim::NetworkList mix_nets;
    std::vector<std::size_t> indices;
    sim::Mapping mapping;
    draw_candidate(rng, mix_nets, indices, mapping);

    const sim::ThroughputReport report = board.simulate(mix_nets, mapping);
    if (!report.feasible) continue;  // unrunnable on the physical board

    set.inputs.push_back(embedding.masked_input(indices, mapping));
    set.targets.push_back({report.per_component_rate[0],
                           report.per_component_rate[1],
                           report.per_component_rate[2]});
  }
  return set;
}

}  // namespace omniboost::core
