#include "core/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "device/cost_model.hpp"
#include "util/require.hpp"
#include "util/table.hpp"

namespace omniboost::core {

namespace {

/// Streams currently on a board, resolved against the zoo.
sim::NetworkList resolve_present(const models::ModelZoo& zoo,
                                 const std::vector<models::ModelId>& present) {
  sim::NetworkList nets;
  nets.reserve(present.size());
  for (const models::ModelId id : present) nets.push_back(&zoo.network(id));
  return nets;
}

/// Installs a precomputed mapping through the ordinary epoch engine: both
/// schedule() and reschedule() simply return the stored mapping, so the
/// ServingSession::refresh() path re-measures it exactly like any scheduler
/// decision. ClusterSession::install_mapping uses this to land background
/// re-search results without a second measurement code path.
class FixedMappingScheduler final : public IScheduler {
 public:
  explicit FixedMappingScheduler(sim::Mapping mapping)
      : mapping_(std::move(mapping)) {}
  std::string name() const override { return "background-install"; }
  ScheduleResult schedule(const workload::Workload&) override {
    ScheduleResult r;
    r.mapping = mapping_;
    return r;
  }
  ScheduleResult reschedule(const workload::Workload&, const sim::Mapping&,
                            const ScheduleContext&) override {
    ScheduleResult r;
    r.mapping = mapping_;
    return r;
  }

 private:
  sim::Mapping mapping_;
};

class LeastLoadedPolicy final : public IPlacementPolicy {
 public:
  std::string name() const override { return "least-loaded"; }
  std::size_t place(const workload::ScenarioEvent&,
                    const models::NetworkDesc&,
                    const std::vector<BoardView>& boards,
                    const std::vector<std::size_t>& admissible) override {
    std::size_t best = admissible.front();
    for (const std::size_t i : admissible)
      if (boards[i].streams < boards[best].streams) best = i;
    return best;
  }
};

class BestEstimatedTPolicy final : public IPlacementPolicy {
 public:
  std::string name() const override { return "best-t"; }
  std::size_t place(const workload::ScenarioEvent&,
                    const models::NetworkDesc& net,
                    const std::vector<BoardView>& boards,
                    const std::vector<std::size_t>& admissible) override {
    // Estimated post-placement utilization: compute demand over capacity.
    // The board that stays least utilized serves the highest T per stream.
    const auto utilization = [&](std::size_t i) {
      return (boards[i].load_flops + net.total_flops()) /
             std::max(boards[i].peak_gflops, 1e-12);
    };
    std::size_t best = admissible.front();
    for (const std::size_t i : admissible)
      if (utilization(i) < utilization(best)) best = i;
    return best;
  }
};

class MemoryHeadroomPolicy final : public IPlacementPolicy {
 public:
  std::string name() const override { return "memory-headroom"; }
  std::size_t place(const workload::ScenarioEvent&,
                    const models::NetworkDesc&,
                    const std::vector<BoardView>& boards,
                    const std::vector<std::size_t>& admissible) override {
    std::size_t best = admissible.front();
    for (const std::size_t i : admissible)
      if (boards[i].memory_headroom_bytes > boards[best].memory_headroom_bytes)
        best = i;
    return best;
  }
};

}  // namespace

std::unique_ptr<IPlacementPolicy> make_placement_policy(
    const std::string& kind) {
  if (kind == "least-loaded") return std::make_unique<LeastLoadedPolicy>();
  if (kind == "best-t") return std::make_unique<BestEstimatedTPolicy>();
  if (kind == "memory-headroom")
    return std::make_unique<MemoryHeadroomPolicy>();
  throw std::invalid_argument(
      "make_placement_policy: unknown kind '" + kind +
      "' (expected least-loaded | best-t | memory-headroom)");
}

const std::vector<std::string>& placement_policy_kinds() {
  static const std::vector<std::string> kinds = {"least-loaded", "best-t",
                                                 "memory-headroom"};
  return kinds;
}

double board_memory_lower_bound_bytes(const device::CostModel& cost,
                                      const sim::NetworkList& nets) {
  double bytes = cost.device().per_stream_overhead_bytes *
                 static_cast<double>(nets.size());
  for (const models::NetworkDesc* net : nets) {
    OB_REQUIRE(net != nullptr && !net->layers.empty(),
               "board_memory_lower_bound_bytes: empty network");
    // One segment spanning the whole network is the residency minimum: any
    // split repeats the largest-activation term per segment.
    bytes += cost.segment_working_set_bytes(*net, 0, net->num_layers() - 1);
  }
  return bytes;
}

double solo_latency_floor_s(const device::CostModel& cost,
                            const models::NetworkDesc& net) {
  double floor_s = cost.device().per_inference_overhead_s;
  for (const models::LayerDesc& layer : net.layers) {
    double best = cost.layer_time(layer, device::kAllComponents[0]);
    for (std::size_t c = 1; c < device::kNumComponents; ++c)
      best = std::min(best, cost.layer_time(layer, device::kAllComponents[c]));
    floor_s += best;
  }
  return floor_s;
}

Cluster::Cluster(const models::ModelZoo& zoo, std::vector<BoardSpec> boards,
                 ClusterConfig config)
    : zoo_(&zoo), boards_(std::move(boards)), config_(config) {
  OB_REQUIRE(!boards_.empty(), "Cluster: at least one board required");
  // Up-front config validation: bad pricing parameters would otherwise
  // surface as NaN stalls deep inside a run.
  OB_REQUIRE(
      std::isfinite(config_.cross_board_gbps) && config_.cross_board_gbps > 0.0,
      "Cluster: cross_board_gbps must be finite and > 0");
  OB_REQUIRE(std::isfinite(config_.max_migration_stall_s) &&
                 config_.max_migration_stall_s >= 0.0,
             "Cluster: max_migration_stall_s must be finite and >= 0");
  sims_.reserve(boards_.size());
  for (const BoardSpec& b : boards_)
    sims_.push_back(std::make_unique<sim::DesSimulator>(b.device, config_.des));
}

ClusterReport Cluster::run(const SchedulerFactory& make_scheduler,
                           const workload::Scenario& scenario,
                           IPlacementPolicy& policy) const {
  OB_REQUIRE(!scenario.empty(), "Cluster::run: empty scenario");
  OB_REQUIRE(scenario.fault_board_span() <= boards_.size(),
             "Cluster::run: scenario fault events target a board outside "
             "the fleet");
  ClusterSession session(*this, make_scheduler, policy);
  for (const workload::ScenarioEvent& e : scenario.events()) session.apply(e);
  return session.finish();
}

ClusterSession::ClusterSession(const Cluster& cluster,
                               const SchedulerFactory& make_scheduler,
                               IPlacementPolicy& policy)
    : cluster_(&cluster), policy_(&policy) {
  OB_REQUIRE(static_cast<bool>(make_scheduler),
             "ClusterSession: null scheduler factory");
  const std::size_t n = cluster_->boards_.size();
  schedulers_.reserve(n);
  sessions_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    schedulers_.push_back(make_scheduler(i));
    OB_REQUIRE(schedulers_.back() != nullptr,
               "ClusterSession: scheduler factory returned null");
    sessions_.emplace_back(*cluster_->zoo_, *cluster_->sims_[i],
                           cluster_->config_.serving);
    // A previous faulted run may have left the board throttled; reruns must
    // be byte-identical, so every run starts at full health (setting 1.0 on
    // a healthy board is numerically a no-op).
    cluster_->sims_[i]->set_throttle(1.0);
  }
  up_.assign(n, true);
  throttle_.assign(n, 1.0);
  down_since_.assign(n, 0.0);
  location_.assign(models::kNumModels, kNoBoard);
  rejected_.assign(models::kNumModels, false);
  shed_.assign(models::kNumModels, false);
  report_.board_names.reserve(n);
  for (const BoardSpec& b : cluster_->boards_)
    report_.board_names.push_back(b.name);
}

ClusterSession::~ClusterSession() {
  // Leave the shared simulators healthy for the cluster's next run/session.
  for (const auto& sim : cluster_->sims_) sim->set_throttle(1.0);
}

const ServingSession& ClusterSession::session(std::size_t board) const {
  OB_REQUIRE(board < sessions_.size(), "ClusterSession: board out of range");
  return sessions_[board];
}

bool ClusterSession::board_up(std::size_t board) const {
  OB_REQUIRE(board < up_.size(), "ClusterSession: board out of range");
  return up_[board];
}

const device::DeviceSpec& ClusterSession::board_device(
    std::size_t board) const {
  OB_REQUIRE(board < sessions_.size(), "ClusterSession: board out of range");
  return cluster_->sims_[board]->cost_model().device();
}

// Live views for the placement policy (and the admission headroom).
std::vector<BoardView> ClusterSession::make_views() const {
  const std::size_t n = sessions_.size();
  std::vector<BoardView> views(n);
  for (std::size_t i = 0; i < n; ++i) {
    BoardView& v = views[i];
    v.index = i;
    v.device = &cluster_->boards_[i].device;
    v.streams = sessions_[i].present().size();
    v.load_flops = 0.0;
    for (const models::ModelId id : sessions_[i].present())
      v.load_flops += cluster_->zoo_->network(id).total_flops();
    v.peak_gflops = 0.0;
    for (const device::ComponentSpec& c : cluster_->boards_[i].device.components)
      v.peak_gflops += c.peak_gflops;
    const sim::NetworkList nets =
        resolve_present(*cluster_->zoo_, sessions_[i].present());
    v.memory_headroom_bytes =
        cluster_->boards_[i].device.memory_budget_bytes -
        board_memory_lower_bound_bytes(cluster_->sims_[i]->cost_model(), nets);
    v.last_measured_throughput = sessions_[i].last_measured_throughput();
  }
  return views;
}

// True when board \p board can possibly serve \p net on top of its current
// residency within the arrival's SLO (if any).
bool ClusterSession::admits(std::size_t board, const models::NetworkDesc& net,
                            double slo_s) const {
  if (!up_[board]) return false;  // failed boards never admit, admit_all or not
  if (cluster_->config_.admit_all) return true;
  sim::NetworkList nets =
      resolve_present(*cluster_->zoo_, sessions_[board].present());
  nets.push_back(&net);
  if (board_memory_lower_bound_bytes(cluster_->sims_[board]->cost_model(),
                                     nets) >
      cluster_->boards_[board].device.memory_budget_bytes)
    return false;
  if (slo_s > 0.0 &&
      solo_latency_floor_s(cluster_->sims_[board]->cost_model(), net) > slo_s)
    return false;
  return true;
}

// Prices moving \p net's weights onto another board over the fleet
// network (the intra-board model's per-segment overhead applies once —
// the whole network re-instantiates as one download).
double ClusterSession::cross_board_stall(
    const models::NetworkDesc& net) const {
  return net.total_weight_bytes() /
             (cluster_->config_.cross_board_gbps * 1e9) +
         cluster_->config_.serving.migration.per_segment_overhead_s;
}

// All board epochs flow through here so degraded-epoch exposure (non-idle
// epochs served at reduced speed) is counted uniformly; at full health the
// extra comparison changes nothing.
const EpochReport& ClusterSession::serve(std::size_t board,
                                         const workload::ScenarioEvent& ev,
                                         double stall_s) {
  const EpochReport& ep =
      sessions_[board].apply(*schedulers_[board], ev, stall_s);
  if (ep.mix_size > 0 && throttle_[board] < 1.0) ++report_.degraded_epochs;
  return ep;
}

// Residency floor of one stream — the failover/rebalance ordering key
// (device-independent: weights plus double-buffered peak activation).
double ClusterSession::working_set(const models::NetworkDesc& net) const {
  return cluster_->sims_[0]->cost_model().segment_working_set_bytes(
      net, 0, net.num_layers() - 1);
}

// Moves stream \p m (with its SLO) onto \p target, charging the
// cross-board transfer as a start stall on its first epoch there.
void ClusterSession::arrive_at(std::size_t target, models::ModelId m,
                               double slo_s, double time_s, double stall_s) {
  workload::ScenarioEvent arr;
  arr.time_s = time_s;
  arr.kind = workload::ScenarioEventKind::kArrive;
  arr.model = m;
  arr.slo_ms = slo_s * 1e3;
  serve(target, arr, stall_s);
  location_[models::model_index(m)] = target;
}

ClusterSession::ApplyOutcome ClusterSession::apply(
    const workload::ScenarioEvent& e) {
  const std::size_t n = sessions_.size();
  OB_REQUIRE(e.time_s >= last_time_s_,
             "ClusterSession::apply: event times must be non-decreasing");
  last_time_s_ = e.time_s;
  ++version_;
  ApplyOutcome outcome;
  if (workload::is_fault_event(e.kind)) {
    OB_REQUIRE(e.board < n,
               "ClusterSession::apply: fault event targets a board outside "
               "the fleet");
    const std::size_t b = e.board;
    outcome.kind = ApplyKind::kFault;
    outcome.board = b;
    if (e.kind == workload::ScenarioEventKind::kFailBoard) {
      OB_REQUIRE(up_[b],
                 "ClusterSession::apply: board fails while already failed");
      ++report_.board_failures;
      up_[b] = false;
      down_since_[b] = e.time_s;
      // Snapshot the residents, evict the board, then fail each stream
      // over — lightest working set first: light streams are the
      // likeliest to fit a survivor and the cheapest to move, so when
      // capacity runs short it is the heaviest (least-feasible) streams
      // that get shed. A rebooted board holds no weights, so eviction
      // clears the session's warm state entirely.
      std::vector<models::ModelId> victims = sessions_[b].present();
      const std::vector<double> victim_slos = sessions_[b].present_slo_s();
      std::vector<double> victim_slo_of(models::kNumModels, 0.0);
      for (std::size_t v = 0; v < victims.size(); ++v)
        victim_slo_of[models::model_index(victims[v])] = victim_slos[v];
      sessions_[b].evict_all();
      std::stable_sort(victims.begin(), victims.end(),
                       [&](models::ModelId a, models::ModelId c) {
                         return working_set(cluster_->zoo_->network(a)) <
                                working_set(cluster_->zoo_->network(c));
                       });
      for (const models::ModelId m : victims) {
        const models::NetworkDesc& net = cluster_->zoo_->network(m);
        const double slo_s = victim_slo_of[models::model_index(m)];
        std::vector<std::size_t> targets;
        for (std::size_t i = 0; i < n; ++i)
          if (admits(i, net, slo_s)) targets.push_back(i);
        if (targets.empty()) {
          // Graceful degradation: no survivor can take the stream.
          shed_[models::model_index(m)] = true;
          location_[models::model_index(m)] = kNoBoard;
          ++report_.shed_streams;
          continue;
        }
        // Failover is forced, not elective — the stall cap never sheds a
        // stream some board still admits.
        const double stall_s = cross_board_stall(net);
        workload::ScenarioEvent arr = e;
        arr.kind = workload::ScenarioEventKind::kArrive;
        arr.model = m;
        arr.slo_ms = slo_s * 1e3;
        arr.board = 0;
        const std::size_t target =
            policy_->place(arr, net, make_views(), targets);
        OB_REQUIRE(std::find(targets.begin(), targets.end(), target) !=
                       targets.end(),
                   "Cluster::run: policy placed outside the target set");
        arrive_at(target, m, slo_s, e.time_s, stall_s);
        ++report_.failovers;
        report_.failover_stall_s += stall_s;
        report_.failover_weight_bytes += net.total_weight_bytes();
      }
    } else if (e.kind == workload::ScenarioEventKind::kThrottleBoard) {
      OB_REQUIRE(up_[b],
                 "ClusterSession::apply: board throttles while failed");
      ++report_.board_throttles;
      throttle_[b] = e.factor;
      cluster_->sims_[b]->set_throttle(e.factor);
      if (!sessions_[b].idle()) {
        // Re-decide and re-measure the resident mix at the new speed.
        char label[64];
        std::snprintf(label, sizeof(label), "throttle x%g (refresh)",
                      e.factor);
        const EpochReport& ep =
            sessions_[b].refresh(*schedulers_[b], e.time_s, label);
        outcome.measured_throughput = ep.measured_throughput;
        ++report_.degraded_epochs;
      }
    } else {  // kRecoverBoard
      ++report_.board_recoveries;
      const bool was_throttled = up_[b] && throttle_[b] < 1.0;
      if (!up_[b]) {
        report_.downtime_board_s += e.time_s - down_since_[b];
        up_[b] = true;
      }
      throttle_[b] = 1.0;
      cluster_->sims_[b]->set_throttle(1.0);
      if (was_throttled && !sessions_[b].idle()) {
        const EpochReport& ep =
            sessions_[b].refresh(*schedulers_[b], e.time_s,
                                 "recover (refresh)");
        outcome.measured_throughput = ep.measured_throughput;
      }
      if (cluster_->config_.rebalance_on_recovery) {
        // Greedily pull streams back while some donor board holds at
        // least two more than the recovered one. Elective, so the
        // migration stall cap applies.
        for (;;) {
          std::size_t donor = kNoBoard;
          for (std::size_t i = 0; i < n; ++i) {
            if (i == b || !up_[i]) continue;
            if (donor == kNoBoard || sessions_[i].present().size() >
                                         sessions_[donor].present().size())
              donor = i;
          }
          if (donor == kNoBoard ||
              sessions_[donor].present().size() <
                  sessions_[b].present().size() + 2)
            break;
          // Lightest resident first: cheapest to move, likeliest to fit.
          const std::vector<models::ModelId>& held =
              sessions_[donor].present();
          const std::vector<double>& held_slos =
              sessions_[donor].present_slo_s();
          std::size_t pick = held.size();
          for (std::size_t v = 0; v < held.size(); ++v)
            if (pick == held.size() ||
                working_set(cluster_->zoo_->network(held[v])) <
                    working_set(cluster_->zoo_->network(held[pick])))
              pick = v;
          const models::ModelId m = held[pick];
          const double slo_s = held_slos[pick];
          const models::NetworkDesc& net = cluster_->zoo_->network(m);
          const double stall_s = cross_board_stall(net);
          if (!admits(b, net, slo_s) ||
              (cluster_->config_.max_migration_stall_s > 0.0 &&
               stall_s > cluster_->config_.max_migration_stall_s))
            break;
          workload::ScenarioEvent leave;
          leave.time_s = e.time_s;
          leave.kind = workload::ScenarioEventKind::kDepart;
          leave.model = m;
          serve(donor, leave);
          arrive_at(b, m, slo_s, e.time_s, stall_s);
          ++report_.rebalances;
          report_.rebalance_stall_s += stall_s;
        }
      }
    }
    return outcome;
  }
  if (e.kind == workload::ScenarioEventKind::kDepart) {
    const std::size_t idx = models::model_index(e.model);
    if (rejected_[idx]) {
      // The stream never made it onto a board; its departure is a no-op.
      rejected_[idx] = false;
      ++report_.rejected_departures;
      outcome.kind = ApplyKind::kSwallowedDeparture;
      return outcome;
    }
    if (shed_[idx]) {
      // The stream was dropped during a failover; nothing holds it now.
      shed_[idx] = false;
      ++report_.shed_departures;
      outcome.kind = ApplyKind::kSwallowedDeparture;
      return outcome;
    }
    const std::size_t board = location_[idx];
    OB_REQUIRE(board != kNoBoard,
               "Cluster::run: departure of an untracked stream");
    const EpochReport& ep = serve(board, e);
    location_[idx] = kNoBoard;
    ++report_.departures;
    outcome.kind = ApplyKind::kDeparted;
    outcome.board = board;
    outcome.measured_throughput = ep.measured_throughput;
    return outcome;
  }

  // Arrival: admit, place, serve — or reject.
  ++report_.offered_streams;
  const models::NetworkDesc& net = cluster_->zoo_->network(e.model);
  const double slo_s = e.slo_ms / 1e3;

  std::vector<std::size_t> admissible;
  for (std::size_t i = 0; i < n; ++i)
    if (admits(i, net, slo_s)) admissible.push_back(i);
  if (admissible.empty()) {
    rejected_[models::model_index(e.model)] = true;
    ++report_.rejected_streams;
    outcome.kind = ApplyKind::kRejected;
    outcome.board = kNoBoard;
    return outcome;
  }

  const std::vector<BoardView> views = make_views();
  const std::size_t board = policy_->place(e, net, views, admissible);
  OB_REQUIRE(std::find(admissible.begin(), admissible.end(), board) !=
                 admissible.end(),
             "Cluster::run: policy placed outside the admissible set");
  const EpochReport& ep = serve(board, e);
  location_[models::model_index(e.model)] = board;
  ++report_.admitted_streams;
  outcome.kind = ApplyKind::kAdmitted;
  outcome.board = board;
  outcome.measured_throughput = ep.measured_throughput;

  // Rescue: the arrival saturated its board (DES says the mix is not
  // serveable there). Move the arriving stream — the cheapest victim, its
  // weights are the only ones not yet resident anywhere — to another
  // admitting board, pricing the cross-board weight transfer as a one-off
  // start stall on its first epoch there.
  if (cluster_->config_.migrate && !ep.feasible && n > 1) {
    std::vector<std::size_t> targets;
    for (std::size_t i = 0; i < n; ++i)
      if (i != board && admits(i, net, slo_s)) targets.push_back(i);
    if (!targets.empty()) {
      const double stall_s = cross_board_stall(net);
      if (cluster_->config_.max_migration_stall_s <= 0.0 ||
          stall_s <= cluster_->config_.max_migration_stall_s) {
        const std::size_t target =
            policy_->place(e, net, make_views(), targets);
        OB_REQUIRE(std::find(targets.begin(), targets.end(), target) !=
                       targets.end(),
                   "Cluster::run: policy placed outside the target set");
        workload::ScenarioEvent leave = e;
        leave.kind = workload::ScenarioEventKind::kDepart;
        leave.slo_ms = 0.0;  // departures never carry an SLO
        serve(board, leave);
        const EpochReport& moved = serve(target, e, stall_s);
        location_[models::model_index(e.model)] = target;
        ++report_.migrations;
        report_.cross_board_stall_s += stall_s;
        report_.cross_board_weight_bytes += net.total_weight_bytes();
        outcome.board = target;
        outcome.migrated = true;
        outcome.measured_throughput = moved.measured_throughput;
      }
    }
  }
  return outcome;
}

bool ClusterSession::install_mapping(std::size_t board,
                                     const sim::Mapping& mapping,
                                     double time_s, const std::string& label) {
  OB_REQUIRE(board < sessions_.size(), "ClusterSession: board out of range");
  OB_REQUIRE(time_s >= last_time_s_,
             "ClusterSession::install_mapping: time must be non-decreasing");
  if (!up_[board] || sessions_[board].idle()) return false;
  // Shape check: the refinement ran against a snapshot of the mix; if an
  // event slipped in between the version check and here, refuse.
  const workload::Workload mix{sessions_[board].present()};
  const std::vector<std::size_t> counts =
      mix.layer_counts(*cluster_->zoo_);
  if (mapping.num_dnns() != counts.size()) return false;
  for (std::size_t d = 0; d < counts.size(); ++d)
    if (mapping.assignment(d).size() != counts[d]) return false;
  FixedMappingScheduler fixed(mapping);
  const EpochReport& ep = sessions_[board].refresh(fixed, time_s, label);
  if (ep.mix_size > 0 && throttle_[board] < 1.0) ++report_.degraded_epochs;
  last_time_s_ = time_s;
  return true;
}

void ClusterSession::note_background_search(bool installed) {
  ++report_.background_searches;
  if (installed) ++report_.background_improvements;
}

ClusterReport ClusterSession::finish() const {
  ClusterReport report = report_;
  // Boards still down accrue downtime up to the last applied event's
  // timestamp (a snapshot: the session's own accumulator is untouched, so
  // finish() stays repeatable and later events keep accruing correctly).
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    if (!up_[i]) report.downtime_board_s += last_time_s_ - down_since_[i];
    report.resident_streams += sessions_[i].present().size();
  }
  for (const ServingSession& s : sessions_) report.boards.push_back(s.finish());
  for (const ServingReport& b : report.boards) {
    report.decisions += b.decisions;
    report.total_decision_seconds += b.total_decision_seconds;
    report.fleet_throughput += b.mean_throughput;
    report.total_slo_streams += b.total_slo_streams;
    report.total_slo_violations += b.total_slo_violations;
    report.total_evaluations += b.total_evaluations;
    report.total_cache_hits += b.total_cache_hits;
    report.total_des_replays += b.total_des_replays;
    report.total_replay_hits += b.total_replay_hits;
    report.total_migrated_segments += b.total_migrated_segments;
    report.total_migration_stall_s += b.total_migration_stall_s;
  }
  if (report.offered_streams > 0)
    report.rejection_rate = static_cast<double>(report.rejected_streams) /
                            static_cast<double>(report.offered_streams);
  return report;
}

std::string format_cluster_report(const ClusterReport& report) {
  std::ostringstream os;
  util::Table table(
      {"board", "epochs", "decisions", "mean T inf/s", "churn", "SLO"});
  for (std::size_t i = 0; i < report.boards.size(); ++i) {
    const ServingReport& br = report.boards[i];
    table.add_row(
        {report.board_names[i], std::to_string(br.epochs.size()),
         std::to_string(br.decisions), util::fmt(br.mean_throughput, 2),
         util::fmt(100.0 * br.mean_churn, 1) + "%",
         br.total_slo_streams == 0
             ? "-"
             : std::to_string(br.total_slo_violations) + "/" +
                   std::to_string(br.total_slo_streams)});
  }
  table.print(os);
  char line[256];
  std::snprintf(line, sizeof(line),
                "\nfleet: %zu offered, %zu admitted, %zu rejected "
                "(%.1f%%), %zu departures\n",
                report.offered_streams, report.admitted_streams,
                report.rejected_streams, 100.0 * report.rejection_rate,
                report.departures);
  os << line;
  std::snprintf(line, sizeof(line),
                "fleet throughput %.3f inf/s | %zu decisions | %.3f s "
                "deciding\n",
                report.fleet_throughput, report.decisions,
                report.total_decision_seconds);
  os << line;
  if (report.migrations > 0) {
    std::snprintf(line, sizeof(line),
                  "migrations: %zu rescues, %.1f ms cross-board stall, "
                  "%.1f MB weights moved\n",
                  report.migrations, 1e3 * report.cross_board_stall_s,
                  report.cross_board_weight_bytes / 1e6);
    os << line;
  }
  if (report.board_failures + report.board_throttles +
          report.board_recoveries >
      0) {
    std::snprintf(
        line, sizeof(line),
        "faults: %zu failures, %zu throttles, %zu recoveries | "
        "%zu failovers (%.1f ms stall), %zu shed, %zu rebalanced\n",
        report.board_failures, report.board_throttles,
        report.board_recoveries, report.failovers,
        1e3 * report.failover_stall_s, report.shed_streams,
        report.rebalances);
    os << line;
    std::snprintf(line, sizeof(line),
                  "degradation: %.1f board-seconds down, %zu degraded epochs, "
                  "%zu streams resident at end\n",
                  report.downtime_board_s, report.degraded_epochs,
                  report.resident_streams);
    os << line;
  }
  if (report.total_slo_streams > 0) {
    std::snprintf(line, sizeof(line),
                  "SLO: %zu violations over %zu stream-epochs under an "
                  "SLO\n",
                  report.total_slo_violations, report.total_slo_streams);
    os << line;
  }
  if (report.background_searches > 0) {
    std::snprintf(line, sizeof(line),
                  "background: searches=%zu improvements=%zu\n",
                  report.background_searches, report.background_improvements);
    os << line;
  }
  // Machine-parseable stream-conservation line: admitted streams are either
  // served to departure, shed by a failover, or still resident at the end —
  // the invariant the daemon smoke test greps for.
  std::snprintf(line, sizeof(line),
                "conservation: offered=%zu admitted=%zu rejected=%zu "
                "departures=%zu shed=%zu resident=%zu\n",
                report.offered_streams, report.admitted_streams,
                report.rejected_streams, report.departures,
                report.shed_streams, report.resident_streams);
  os << line;
  return os.str();
}

std::vector<BoardSpec> make_heterogeneous_fleet(std::size_t n) {
  OB_REQUIRE(n > 0, "make_heterogeneous_fleet: n must be > 0");
  std::vector<BoardSpec> fleet;
  fleet.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    device::DeviceSpec spec = device::make_hikey970();
    std::string variant;
    switch (i % 3) {
      case 0:
        variant = "hikey970";
        break;
      case 1: {
        variant = "hikey970-pro";
        for (device::ComponentSpec& c : spec.components) {
          c.peak_gflops *= 1.5;
          c.mem_bw_gbps *= 1.3;
        }
        spec.dram_bw_gbps *= 1.3;
        spec.memory_budget_bytes *= 1.5;
        break;
      }
      default: {
        variant = "hikey970-lite";
        for (device::ComponentSpec& c : spec.components) {
          c.peak_gflops *= 0.6;
          c.mem_bw_gbps *= 0.8;
        }
        spec.dram_bw_gbps *= 0.8;
        spec.memory_budget_bytes *= 0.75;
        break;
      }
    }
    spec.name = variant;
    fleet.push_back(BoardSpec{variant + "-" + std::to_string(i), spec});
  }
  return fleet;
}

}  // namespace omniboost::core
