// The discrete-event board simulator: solo rates, pipelining, contention,
// the DRAM wall and the out-of-memory condition.

#include <gtest/gtest.h>

#include "device/cost_model.hpp"
#include "models/zoo.hpp"
#include "sim/des.hpp"

namespace {

using namespace omniboost::sim;
using omniboost::device::ComponentId;
using omniboost::device::DeviceSpec;
using omniboost::device::make_hikey970;
using omniboost::models::ModelId;
using omniboost::models::ModelZoo;

constexpr auto G = ComponentId::kGpu;
constexpr auto B = ComponentId::kBigCpu;
constexpr auto L = ComponentId::kLittleCpu;

class DesTest : public ::testing::Test {
 protected:
  const ModelZoo& zoo() {
    static const ModelZoo z;
    return z;
  }
  NetworkList nets(std::initializer_list<ModelId> ids) {
    NetworkList n;
    for (ModelId id : ids) n.push_back(&zoo().network(id));
    return n;
  }
  std::vector<std::size_t> counts(std::initializer_list<ModelId> ids) {
    std::vector<std::size_t> c;
    for (ModelId id : ids) c.push_back(zoo().network(id).num_layers());
    return c;
  }

  DeviceSpec device_ = make_hikey970();
  DesSimulator sim_{device_};
};

TEST_F(DesTest, SoloRateMatchesServiceTime) {
  const auto n = nets({ModelId::kAlexNet});
  const auto m = Mapping::all_on(counts({ModelId::kAlexNet}), G);
  const ThroughputReport r = sim_.simulate(n, m);
  ASSERT_TRUE(r.feasible);
  // Single stream, single stage: rate ~= 1 / service time.
  omniboost::device::CostModel cost(device_);
  const double base =
      cost.segment_time(*n[0], 0, n[0]->num_layers() - 1, G) +
      device_.per_inference_overhead_s;
  EXPECT_NEAR(r.per_dnn_rate[0] * base, 1.0, 0.1);
}

TEST_F(DesTest, ReportInvariants) {
  const auto ids = {ModelId::kAlexNet, ModelId::kMobileNet};
  const ThroughputReport r = sim_.simulate(nets(ids), Mapping::all_on(counts(ids), G));
  ASSERT_TRUE(r.feasible);
  ASSERT_EQ(r.per_dnn_rate.size(), 2u);
  double slowest = r.per_dnn_rate[0];
  for (double x : r.per_dnn_rate) {
    EXPECT_GT(x, 0.0);
    slowest = std::min(slowest, x);
  }
  // Synchronized window: T equals the slowest stream's free-running rate.
  EXPECT_NEAR(r.avg_throughput, slowest, 1e-9);
  EXPECT_GE(r.free_running_avg, r.avg_throughput);
  // Component flows sum to M * T.
  const double flow = r.per_component_rate[0] + r.per_component_rate[1] +
                      r.per_component_rate[2];
  EXPECT_NEAR(flow, 2.0 * r.avg_throughput, 2.0 * r.avg_throughput * 0.02);
}

TEST_F(DesTest, ComponentFlowFollowsPlacement) {
  const auto ids = {ModelId::kSqueezeNet};
  const ThroughputReport r =
      sim_.simulate(nets(ids), Mapping::all_on(counts(ids), B));
  EXPECT_EQ(r.per_component_rate[0], 0.0);
  EXPECT_GT(r.per_component_rate[1], 0.0);
  EXPECT_EQ(r.per_component_rate[2], 0.0);
}

TEST_F(DesTest, ContentionHalvesCoLocatedStreams) {
  // Two identical streams on one component should each run at about half
  // their solo rate (plus working-set effects kept below threshold here).
  const auto one = nets({ModelId::kSqueezeNet});
  const auto two = nets({ModelId::kSqueezeNet, ModelId::kSqueezeNet});
  const double solo =
      sim_.simulate(one, Mapping::all_on(counts({ModelId::kSqueezeNet}), B))
          .per_dnn_rate[0];
  const ThroughputReport r = sim_.simulate(
      two, Mapping::all_on(
               counts({ModelId::kSqueezeNet, ModelId::kSqueezeNet}), B));
  EXPECT_NEAR(r.per_dnn_rate[0], solo / 2.0, solo * 0.12);
  EXPECT_NEAR(r.per_dnn_rate[1], solo / 2.0, solo * 0.12);
}

TEST_F(DesTest, DistributionBeatsGpuOnlyOnHeavyMix) {
  // The paper's core phenomenon: a heavy 4-mix collapses the GPU, while
  // spreading the workload across components boosts average throughput.
  const auto ids = {ModelId::kVgg19, ModelId::kResNet101,
                    ModelId::kInceptionV4, ModelId::kVgg16};
  const auto n = nets(ids);
  const auto c = counts(ids);
  const double gpu_only = sim_.simulate(n, Mapping::all_on(c, G)).avg_throughput;
  // Balanced distribution: keep the GPU for the heavy GEMM nets and move
  // ResNet-101 + VGG-16 to the big cluster (the LITTLE cluster would become
  // the synchronized window's bottleneck).
  std::vector<Assignment> spread;
  spread.emplace_back(c[0], G);
  spread.emplace_back(c[1], B);
  spread.emplace_back(c[2], G);
  spread.emplace_back(c[3], B);
  const double distributed =
      sim_.simulate(n, Mapping(std::move(spread))).avg_throughput;
  EXPECT_GT(distributed, 1.3 * gpu_only);
}

TEST_F(DesTest, WorkingSetPenaltyGrowsWithResidency) {
  const auto ids4 = {ModelId::kVgg19, ModelId::kResNet101,
                     ModelId::kInceptionV4, ModelId::kVgg16};
  const auto r4 =
      sim_.simulate(nets(ids4), Mapping::all_on(counts(ids4), G));
  const auto ids1 = {ModelId::kVgg19};
  const auto r1 = sim_.simulate(nets(ids1), Mapping::all_on(counts(ids1), G));
  EXPECT_GT(r4.component_penalty[0], r1.component_penalty[0]);
  EXPECT_GE(r1.component_penalty[0], 1.0);
}

TEST_F(DesTest, PipelineOverlapBeatsSerialWhenBalanced) {
  // One stream split across GPU and big CPU can pipeline: its rate should
  // exceed what the slower of the two stages alone would sustain in series.
  const auto ids = {ModelId::kVgg16};
  const auto n = nets(ids);
  const std::size_t cnt = n[0]->num_layers();
  // Find a split point that balances GPU/big times reasonably.
  omniboost::device::CostModel cost(device_);
  std::size_t cut = cnt / 2;
  double best_gap = 1e9;
  for (std::size_t k = 2; k + 2 < cnt; ++k) {
    const double a = cost.segment_time(*n[0], 0, k - 1, G);
    const double b = cost.segment_time(*n[0], k, cnt - 1, B);
    if (std::abs(a - b) < best_gap) {
      best_gap = std::abs(a - b);
      cut = k;
    }
  }
  Assignment split(cnt, G);
  for (std::size_t l = cut; l < cnt; ++l) split[l] = B;
  const double piped =
      sim_.simulate(n, Mapping({split})).per_dnn_rate[0];
  const double serial_time =
      cost.segment_time(*n[0], 0, cut - 1, G) +
      cost.segment_time(*n[0], cut, cnt - 1, B) +
      device_.per_inference_overhead_s;
  EXPECT_GT(piped, 1.0 / serial_time);
}

TEST_F(DesTest, SixHeavyDnnsAreInfeasible) {
  // §V: mixes of 6 concurrent DNNs made the board unresponsive.
  const auto ids = {ModelId::kVgg19, ModelId::kVgg16, ModelId::kVgg13,
                    ModelId::kResNet101, ModelId::kInceptionV4,
                    ModelId::kInceptionV3};
  const ThroughputReport r =
      sim_.simulate(nets(ids), Mapping::all_on(counts(ids), G));
  EXPECT_FALSE(r.feasible);
  for (double x : r.per_dnn_rate) EXPECT_EQ(x, 0.0);
}

TEST_F(DesTest, DramWallScalesRatesDown) {
  // Force a tiny DRAM cap and check the wall engages and rescales.
  DeviceSpec starved = device_;
  starved.dram_bw_gbps = 0.4;
  DesSimulator sim(starved);
  const auto ids = {ModelId::kMobileNet, ModelId::kSqueezeNet};
  std::vector<Assignment> spread;
  spread.emplace_back(zoo().network(ModelId::kMobileNet).num_layers(), B);
  spread.emplace_back(zoo().network(ModelId::kSqueezeNet).num_layers(), G);
  const ThroughputReport r = sim.simulate(nets(ids), Mapping(std::move(spread)));
  EXPECT_LT(r.dram_scale, 1.0);
  EXPECT_GT(r.dram_demand_gbps, 0.4);
}

TEST_F(DesTest, DeterministicAcrossRuns) {
  const auto ids = {ModelId::kAlexNet, ModelId::kResNet34};
  const auto m = Mapping::all_on(counts(ids), G);
  const auto a = sim_.simulate(nets(ids), m);
  const auto b = sim_.simulate(nets(ids), m);
  EXPECT_EQ(a.per_dnn_rate, b.per_dnn_rate);
}

TEST_F(DesTest, RejectsMalformedInput) {
  EXPECT_THROW(sim_.simulate({}, Mapping({{G}})), std::invalid_argument);
  const auto ids = {ModelId::kAlexNet};
  EXPECT_THROW(sim_.simulate(nets(ids), Mapping({{G, G}})),
               std::invalid_argument);  // wrong layer count
  EXPECT_THROW(sim_.simulate({nullptr}, Mapping({{G}})),
               std::invalid_argument);
}

TEST_F(DesTest, ConfigValidation) {
  EXPECT_THROW(DesSimulator(device_, DesConfig{0.0, 0.3, 100}),
               std::invalid_argument);
  EXPECT_THROW(DesSimulator(device_, DesConfig{10.0, 1.0, 100}),
               std::invalid_argument);
}

}  // namespace
