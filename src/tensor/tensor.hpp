#pragma once
/// \file tensor.hpp
/// Dense row-major float tensor — the numeric substrate for the throughput
/// estimator (src/nn) and the distributed-embeddings machinery (src/core).
///
/// Design notes:
///  * float storage: matches the embedded-inference setting and halves memory
///    traffic versus double; the estimator is tiny so precision is ample.
///  * value semantics: Tensor owns its buffer; cheap moves, explicit copies.
///  * no expression templates: the networks involved are ~20k parameters, so
///    clarity wins over fused-kernel cleverness (Per.2: don't optimize blindly).

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <iosfwd>
#include <vector>

namespace omniboost::tensor {

/// Shape of a tensor: extent per dimension, outermost first.
using Shape = std::vector<std::size_t>;

/// Dense row-major float tensor of arbitrary rank.
class Tensor {
 public:
  /// Empty rank-0 tensor.
  Tensor() = default;

  /// Zero-initialized tensor of the given shape. Extents must be > 0.
  explicit Tensor(Shape shape);

  /// Tensor of the given shape filled with \p value.
  Tensor(Shape shape, float value);

  /// Builds a rank-1 tensor from values.
  static Tensor from_vector(const std::vector<float>& values);

  /// Tensor of the given shape with contents copied from \p values
  /// (row-major). Sizes must match.
  static Tensor from_data(Shape shape, std::vector<float> values);

  const Shape& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Extent of dimension \p dim (bounds-checked).
  std::size_t extent(std::size_t dim) const;

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Flat element access (bounds-checked).
  float& operator[](std::size_t i);
  float operator[](std::size_t i) const;

  /// Multi-dimensional access (bounds-checked); index count must equal rank.
  float& at(std::initializer_list<std::size_t> idx);
  float at(std::initializer_list<std::size_t> idx) const;

  /// Row-major flat offset of a multi-index (bounds-checked).
  std::size_t offset(std::initializer_list<std::size_t> idx) const;

  // --- mutation -------------------------------------------------------------
  void fill(float value);
  void zero() { fill(0.0f); }

  /// Applies \p f element-wise in place.
  void apply(const std::function<float(float)>& f);

  /// Returns a tensor with identical data and a new shape of equal size.
  Tensor reshaped(Shape new_shape) const;

  // --- arithmetic (shapes must match exactly) --------------------------------
  Tensor& operator+=(const Tensor& rhs);
  Tensor& operator-=(const Tensor& rhs);
  Tensor& operator*=(const Tensor& rhs);  ///< element-wise (Hadamard)
  Tensor& operator*=(float s);
  Tensor& operator+=(float s);

  friend Tensor operator+(Tensor lhs, const Tensor& rhs) { return lhs += rhs; }
  friend Tensor operator-(Tensor lhs, const Tensor& rhs) { return lhs -= rhs; }
  friend Tensor operator*(Tensor lhs, const Tensor& rhs) { return lhs *= rhs; }
  friend Tensor operator*(Tensor lhs, float s) { return lhs *= s; }
  friend Tensor operator*(float s, Tensor rhs) { return rhs *= s; }

  // --- reductions -------------------------------------------------------------
  float sum() const;
  float mean() const;  ///< 0 for empty tensors
  float min() const;   ///< requires non-empty
  float max() const;   ///< requires non-empty
  /// Index of the maximum element (first on ties); requires non-empty.
  std::size_t argmax() const;
  /// Sqrt of sum of squares.
  float l2_norm() const;

  /// True iff shapes and all elements are exactly equal.
  bool operator==(const Tensor& rhs) const {
    return shape_ == rhs.shape_ && data_ == rhs.data_;
  }
  bool operator!=(const Tensor& rhs) const { return !(*this == rhs); }

 private:
  void check_same_shape(const Tensor& rhs, const char* op) const;

  Shape shape_;
  std::vector<std::size_t> strides_;
  std::vector<float> data_;
};

/// Number of elements implied by a shape (1 for rank-0).
std::size_t shape_size(const Shape& shape);

/// Stacks same-shaped tensors along a new leading batch dimension:
/// B tensors of shape (d0, ..., dk) become one tensor of shape
/// (B, d0, ..., dk). Requires a non-empty list of non-empty, shape-identical
/// parts. This is the batching primitive behind
/// core::ThroughputEstimator::predict_batch.
Tensor stack(const std::vector<Tensor>& parts);

/// Pretty-prints shape as e.g. "[3, 11, 36]".
std::ostream& operator<<(std::ostream& os, const Shape& shape);

}  // namespace omniboost::tensor
