#pragma once
/// \file net_builder.hpp
/// Fluent construction of NetworkDesc objects. The builder walks activation
/// shapes through the network and synthesizes the per-layer kernel lists
/// (im2col + GEMM + bias + activation, etc.) with FLOP and traffic estimates,
/// mirroring what an ARM-CL graph compilation would launch.

#include <cstddef>
#include <string>
#include <vector>

#include "models/layer_desc.hpp"

namespace omniboost::models {

/// Spec of one convolution inside a composite (residual/inception) block.
/// Supports rectangular kernels (Inception's 1x7 / 7x1 factorizations).
struct ConvSpec {
  std::size_t out_ch = 0;
  std::size_t kh = 3, kw = 3;
  std::size_t stride = 1;
  std::size_t ph = 0, pw = 0;

  /// Square kernel helper.
  static ConvSpec square(std::size_t out_ch, std::size_t k,
                         std::size_t stride = 1, std::size_t pad = 0) {
    return ConvSpec{out_ch, k, k, stride, pad, pad};
  }
};

/// Builds a NetworkDesc layer by layer, tracking the activation shape.
class NetBuilder {
 public:
  NetBuilder(std::string name, Dims input);

  /// Standard square convolution + bias + activation as one schedulable layer.
  NetBuilder& conv(std::size_t out_ch, std::size_t kernel, std::size_t stride,
                   std::size_t padding, const std::string& name = "");

  /// Depthwise 3x3 convolution (stride s) as one schedulable layer.
  NetBuilder& depthwise(std::size_t stride, const std::string& name = "");

  /// Pointwise (1x1) convolution; MobileNet's second half of a dw-sep block.
  NetBuilder& pointwise(std::size_t out_ch, const std::string& name = "");

  /// Max pooling as a standalone schedulable layer.
  NetBuilder& maxpool(std::size_t kernel, std::size_t stride,
                      std::size_t padding = 0, const std::string& name = "");

  /// Global average pooling to 1x1.
  NetBuilder& global_avgpool(const std::string& name = "");

  /// Fully connected layer (+ optional softmax on the final one).
  NetBuilder& fc(std::size_t out_features, bool softmax = false,
                 const std::string& name = "");

  /// SqueezeNet squeeze stage (1x1 conv reducing channels).
  NetBuilder& fire_squeeze(std::size_t squeeze_ch, const std::string& name);

  /// SqueezeNet expand stage: parallel 1x1 and 3x3 convs + concat.
  NetBuilder& fire_expand(std::size_t expand1_ch, std::size_t expand3_ch,
                          const std::string& name);

  /// ResNet basic block (two 3x3 convs + skip), one schedulable unit.
  NetBuilder& residual_basic(std::size_t out_ch, std::size_t stride,
                             const std::string& name);

  /// ResNet bottleneck block (1x1 -> 3x3 -> 1x1 + skip), one unit.
  NetBuilder& residual_bottleneck(std::size_t mid_ch, std::size_t out_ch,
                                  std::size_t stride, const std::string& name);

  /// Inception module: parallel conv-chain branches plus one 3x3 pool branch,
  /// all concatenated. The pool branch projects to \p pool_proj_ch channels
  /// via 1x1 conv when pool_proj_ch > 0, otherwise passes its input channels
  /// through unchanged (reduction modules). \p pool_stride matches the
  /// branches' spatial reduction (1 for A/B/C modules, 2 for reductions).
  NetBuilder& inception(const std::vector<std::vector<ConvSpec>>& branches,
                        std::size_t pool_proj_ch, std::size_t pool_stride,
                        const std::string& name);

  /// Current activation shape (for assertions while building).
  const Dims& shape() const { return current_; }

  /// Finalizes and returns the network.
  NetworkDesc build() &&;

 private:
  LayerDesc& push(LayerKind kind, Dims output, const std::string& name,
                  const std::string& fallback_prefix);
  /// Appends the kernels of one convolution to \p layer and returns its
  /// weight+bias byte footprint.
  double add_conv_kernels(LayerDesc& layer, Dims in, const ConvSpec& spec) const;
  /// Shape produced by \p spec applied to \p in.
  static Dims conv_out(const Dims& in, const ConvSpec& spec);

  NetworkDesc net_;
  Dims current_;
  std::size_t auto_index_ = 0;
};

/// Output spatial extent of a conv/pool: floor((in + 2p - k)/s) + 1.
std::size_t conv_out_extent(std::size_t in, std::size_t kernel,
                            std::size_t stride, std::size_t padding);

}  // namespace omniboost::models
