#pragma once
/// \file search_common.hpp
/// Shared plumbing of the search-based schedulers: per-workload evaluator
/// factories. A scheduler instance must handle arbitrary workloads, but a
/// core::MappingEvaluator scores mappings of one fixed workload — the factory
/// closes over the workload and produces the evaluator on demand.
///
/// Three factories cover the evaluation regimes of the paper and DESIGN.md's
/// ablation A2: the trained CNN estimator (production OmniBoost), the DES
/// board oracle (an idealized "measure every candidate" scheduler), and the
/// closed-form analytic model (a fast approximate oracle).

#include <functional>
#include <memory>
#include <vector>

#include "core/embedding.hpp"
#include "core/estimator.hpp"
#include "core/mcts.hpp"
#include "sim/analytic.hpp"
#include "sim/des.hpp"

namespace omniboost::sched {

/// Builds a mapping evaluator specialized to one workload.
using WorkloadEvaluatorFactory =
    std::function<core::MappingEvaluator(const workload::Workload&)>;

/// Production evaluation: masked embedding tensor -> trained estimator
/// reward (the paper's configuration; ~tens of microseconds per query).
WorkloadEvaluatorFactory estimator_evaluator_factory(
    const models::ModelZoo& zoo, const core::EmbeddingTensor& embedding,
    std::shared_ptr<const core::ThroughputEstimator> estimator);

/// Oracle evaluation: run the discrete-event board simulator and return the
/// measured average throughput T. In the physical world this would mean
/// timing every candidate on the board — far too slow for production, but
/// the gold standard the ablations compare the estimator against.
WorkloadEvaluatorFactory oracle_evaluator_factory(
    const models::ModelZoo& zoo, std::shared_ptr<const sim::DesSimulator> board);

/// Approximate oracle: the closed-form steady-state model. Orders of
/// magnitude faster than the DES with the same qualitative ranking.
WorkloadEvaluatorFactory analytic_evaluator_factory(
    const models::ModelZoo& zoo, std::shared_ptr<const sim::AnalyticModel> model);

/// Ensemble evaluation: the mean reward of several independently-trained
/// estimators (different init seeds over the same campaign). Averaging
/// decorrelates the members' regression errors, which tempers the winner's
/// curse a search incurs when it maximizes a single noisy estimate — at K
/// times the query cost. All estimators must be trained.
WorkloadEvaluatorFactory ensemble_evaluator_factory(
    const models::ModelZoo& zoo, const core::EmbeddingTensor& embedding,
    std::vector<std::shared_ptr<const core::ThroughputEstimator>> members);

}  // namespace omniboost::sched
