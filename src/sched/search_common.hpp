#pragma once
/// \file search_common.hpp
/// Shared plumbing of the search-based schedulers: per-workload evaluator
/// factories and the canonical enumeration of the stage-limited assignment
/// space. A scheduler instance must handle arbitrary workloads, but a
/// core::MappingEvaluator scores mappings of one fixed workload — the factory
/// closes over the workload and produces the evaluator on demand.
///
/// Three factories cover the evaluation regimes of the paper and DESIGN.md's
/// ablation A2: the trained CNN estimator (production OmniBoost), the DES
/// board oracle (an idealized "measure every candidate" scheduler), and the
/// closed-form analytic model (a fast approximate oracle).

#include <functional>
#include <memory>
#include <vector>

#include "core/embedding.hpp"
#include "core/estimator.hpp"
#include "core/mcts.hpp"
#include "models/zoo.hpp"
#include "sim/analytic.hpp"
#include "sim/des.hpp"
#include "workload/workload.hpp"

namespace omniboost::sched {

/// Builds a mapping evaluator specialized to one workload.
using WorkloadEvaluatorFactory =
    std::function<core::MappingEvaluator(const workload::Workload&)>;

/// Production evaluation: masked embedding tensor -> trained estimator
/// reward (the paper's configuration; ~tens of microseconds per query).
WorkloadEvaluatorFactory estimator_evaluator_factory(
    const models::ModelZoo& zoo, const core::EmbeddingTensor& embedding,
    std::shared_ptr<const core::ThroughputEstimator> estimator);

/// Oracle evaluation: run the discrete-event board simulator and return the
/// measured average throughput T. In the physical world this would mean
/// timing every candidate on the board — far too slow for production, but
/// the gold standard the ablations compare the estimator against.
WorkloadEvaluatorFactory oracle_evaluator_factory(
    const models::ModelZoo& zoo, std::shared_ptr<const sim::DesSimulator> board);

/// Approximate oracle: the closed-form steady-state model. Orders of
/// magnitude faster than the DES with the same qualitative ranking.
WorkloadEvaluatorFactory analytic_evaluator_factory(
    const models::ModelZoo& zoo, std::shared_ptr<const sim::AnalyticModel> model);

/// Ensemble evaluation: the mean reward of several independently-trained
/// estimators (different init seeds over the same campaign). Averaging
/// decorrelates the members' regression errors, which tempers the winner's
/// curse a search incurs when it maximizes a single noisy estimate — at K
/// times the query cost. All estimators must be trained.
WorkloadEvaluatorFactory ensemble_evaluator_factory(
    const models::ModelZoo& zoo, const core::EmbeddingTensor& embedding,
    std::vector<std::shared_ptr<const core::ThroughputEstimator>> members);

// ---------------------------------------------------------------------------
// Canonical enumeration of the stage-limited assignment space. Shared by
// ExhaustiveScheduler, BranchAndBoundScheduler and the reduce pass so every
// exact search agrees on one visiting order (pinned by a golden in
// tests/sched_search_test.cpp): depth-first over layers with layer 0
// outermost and components tried in kAllComponents order (GPU, big, LITTLE),
// skipping stage-infeasible prefixes. The first assignment is therefore
// all-GPU, and the order is lexicographic in per-layer component indices.

/// Per-layer component restriction for one DNN: allowed[l] lists the
/// components layer l may use, in kAllComponents order. Produced by the
/// reduce pass (ReducedSpace::allowed), consumed by the exact searches.
using LayerChoices = std::vector<std::vector<device::ComponentId>>;

/// Number of assignments of \p layers layers with at most \p stage_limit
/// contiguous stages on kNumComponents components:
///   sum_{s=1..min(x,L)} C(L-1, s-1) * k * (k-1)^(s-1).
/// Returned as double — realistic layer counts overflow 64-bit integers.
double count_assignments(std::size_t layers, std::size_t stage_limit);

/// Size of the full mapping space of a workload: the product of its DNNs'
/// assignment counts.
double count_mappings(const models::ModelZoo& zoo, const workload::Workload& w,
                      std::size_t stage_limit);

/// Materializes every stage-limited assignment of one DNN, in canonical
/// order. Throws when the unrestricted count exceeds \p max_count (guard
/// against accidental exponential blow-up). When \p allowed is non-null it
/// must have one entry per layer; assignments using a disallowed component
/// are skipped.
std::vector<sim::Assignment> enumerate_assignments(
    std::size_t layers, std::size_t stage_limit, std::size_t max_count,
    const LayerChoices* allowed = nullptr);

}  // namespace omniboost::sched
