#include "sim/mapping.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace omniboost::sim {

std::vector<SegmentSpan> extract_segments(const Assignment& a) {
  std::vector<SegmentSpan> segs;
  if (a.empty()) return segs;
  SegmentSpan cur{0, 0, a[0]};
  for (std::size_t l = 1; l < a.size(); ++l) {
    if (a[l] == cur.comp) {
      cur.last = l;
    } else {
      segs.push_back(cur);
      cur = SegmentSpan{l, l, a[l]};
    }
  }
  segs.push_back(cur);
  return segs;
}

std::size_t num_stages(const Assignment& a) {
  if (a.empty()) return 0;
  std::size_t n = 1;
  for (std::size_t l = 1; l < a.size(); ++l)
    if (a[l] != a[l - 1]) ++n;
  return n;
}

namespace {

/// FNV-1a over the mapping contents. Each DNN contributes its length before
/// its component ids so the assignment-boundary structure is part of the
/// canonical form, not just the flattened component sequence.
std::uint64_t hash_assignments(const std::vector<Assignment>& per_dnn) {
  constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t h = kOffset;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= kPrime;
  };
  for (const Assignment& a : per_dnn) {
    mix(a.size());
    for (ComponentId c : a) mix(static_cast<std::uint64_t>(c) + 1);
  }
  return h;
}

}  // namespace

Mapping::Mapping(std::vector<Assignment> per_dnn)
    : per_dnn_(std::move(per_dnn)) {
  OB_REQUIRE(!per_dnn_.empty(), "Mapping: empty workload");
  for (const auto& a : per_dnn_)
    OB_REQUIRE(!a.empty(), "Mapping: DNN with no layers");
  hash_ = hash_assignments(per_dnn_);
}

Mapping Mapping::all_on(const std::vector<std::size_t>& layer_counts,
                        ComponentId comp) {
  std::vector<Assignment> per_dnn;
  per_dnn.reserve(layer_counts.size());
  for (std::size_t n : layer_counts) {
    OB_REQUIRE(n > 0, "Mapping::all_on: DNN with no layers");
    per_dnn.emplace_back(n, comp);
  }
  return Mapping(std::move(per_dnn));
}

const Assignment& Mapping::assignment(std::size_t dnn) const {
  OB_REQUIRE(dnn < per_dnn_.size(), "Mapping::assignment: index out of range");
  return per_dnn_[dnn];
}

std::size_t Mapping::stages(std::size_t dnn) const {
  return num_stages(assignment(dnn));
}

std::size_t Mapping::max_stages() const {
  std::size_t m = 0;
  for (const auto& a : per_dnn_) m = std::max(m, num_stages(a));
  return m;
}

bool Mapping::within_stage_limit(std::size_t limit) const {
  for (const auto& a : per_dnn_)
    if (num_stages(a) > limit) return false;
  return true;
}

}  // namespace omniboost::sim
