/// \file omniboost_cli.cpp
/// End-to-end command-line front end for the framework: profiles the
/// (simulated) board, trains or loads the throughput estimator, schedules a
/// user-specified multi-DNN mix with a chosen scheduler, and reports the
/// mapping plus the board-measured throughput — in text or JSON.
///
/// Two modes: the default one-shot decision for a fixed --mix, and the
/// `serve` subcommand, which replays a dynamic scenario (model arrivals and
/// departures, from a trace file or the seeded generator) through the
/// core::ServingRuntime and reports per-epoch throughput, decision latency
/// and mapping churn.
///
/// Examples:
///   omniboost_cli --mix VGG-19,AlexNet,MobileNet
///   omniboost_cli --mix vgg16,resnet50,alexnet,mobilenet --scheduler ga
///   omniboost_cli --mix alexnet --save-estimator est.bin
///   omniboost_cli --mix alexnet --estimator-file est.bin --json
///   omniboost_cli serve --events 10 --estimator-file est.bin
///   omniboost_cli serve --scenario trace.txt --cold --json
///   omniboost_cli serve --events 12 --slo 150 --migration-cost 1 --json
///   omniboost_cli serve --boards 3 --arrival poisson:0.5 --scheduler greedy
///   omniboost_cli serve --boards 4 --arrival flash:0.2:30:10:8 --json
///   omniboost_cli serve --listen 0 --boards 2 --scheduler greedy
///   omniboost_cli client localhost:7070 arrive MobileNet slo 100

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "core/dataset.hpp"
#include "device/profile.hpp"
#include "core/omniboost.hpp"
#include "core/serving.hpp"
#include "nn/kernel.hpp"
#include "nn/loss.hpp"
#include "sched/baseline.hpp"
#include "sched/bnb.hpp"
#include "sched/fallback.hpp"
#include "sched/ga.hpp"
#include "sched/greedy.hpp"
#include "sched/local_search.hpp"
#include "sched/mosaic.hpp"
#include "sched/search_common.hpp"
#include "sim/des.hpp"
#include "sim/gantt.hpp"
#include "util/args.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/net.hpp"
#include "workload/arrival.hpp"
#include "workload/faults.hpp"
#include "workload/scenario.hpp"
#include "workload/workload.hpp"

#include "daemon.hpp"

namespace {

using namespace omniboost;

workload::Workload parse_mix(const std::string& csv) {
  workload::Workload w;
  std::stringstream ss(csv);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (token.empty()) continue;
    models::ModelId id;
    if (!models::parse_model_name(token, id)) {
      std::string known;
      for (const auto m : models::kAllModels) {
        if (!known.empty()) known += ", ";
        known += std::string(models::model_name(m));
      }
      throw std::invalid_argument("unknown model '" + token +
                                  "'; known models: " + known);
    }
    w.mix.push_back(id);
  }
  if (w.mix.empty()) throw std::invalid_argument("--mix is empty");
  return w;
}

std::unique_ptr<core::IScheduler> make_scheduler(
    const std::string& kind, const models::ModelZoo& zoo,
    const device::DeviceSpec& device, const core::EmbeddingTensor& embedding,
    std::shared_ptr<const core::ThroughputEstimator> estimator,
    std::size_t budget, std::size_t depth, std::size_t batch,
    std::uint64_t seed, double rollout_fraction = 0.4,
    bool slo_hard_prune = false, double bnb_timeout_ms = 0.0) {
  if (kind == "omniboost") {
    core::OmniBoostConfig cfg;
    cfg.mcts.budget = budget;
    cfg.mcts.max_depth = depth;
    cfg.mcts.seed = seed;
    cfg.batch_size = batch;
    cfg.rollout_fraction = rollout_fraction;
    cfg.slo_hard_prune = slo_hard_prune;
    return std::make_unique<core::OmniBoostScheduler>(zoo, embedding,
                                                      std::move(estimator),
                                                      cfg);
  }
  if (kind == "baseline") {
    return std::make_unique<sched::AllOnScheduler>(
        zoo, device::ComponentId::kGpu, "Baseline");
  }
  if (kind == "mosaic") {
    return std::make_unique<sched::MosaicScheduler>(zoo, device);
  }
  if (kind == "ga") {
    sched::GaConfig cfg;
    cfg.seed = seed;
    return std::make_unique<sched::GaScheduler>(zoo, device, cfg);
  }
  if (kind == "greedy") {
    return std::make_unique<sched::GreedyScheduler>(zoo, device);
  }
  if (kind == "bnb") {
    sched::BnbConfig cfg;
    cfg.timeout_ms = bnb_timeout_ms;
    return std::make_unique<sched::BranchAndBoundScheduler>("BnB", zoo, device,
                                                            cfg);
  }
  if (kind == "random") {
    sched::LocalSearchConfig cfg;
    cfg.budget = budget;
    cfg.seed = seed;
    return std::make_unique<sched::RandomSearchScheduler>(
        "RandomSearch", zoo,
        sched::estimator_evaluator_factory(zoo, embedding,
                                           std::move(estimator)),
        cfg);
  }
  if (kind == "annealing") {
    sched::AnnealingConfig cfg;
    cfg.budget = budget;
    cfg.seed = seed;
    return std::make_unique<sched::SimulatedAnnealingScheduler>(
        "Annealing", zoo,
        sched::estimator_evaluator_factory(zoo, embedding,
                                           std::move(estimator)),
        cfg);
  }
  throw std::invalid_argument(
      "unknown scheduler '" + kind +
      "' (omniboost|baseline|mosaic|ga|greedy|bnb|random|annealing)");
}

/// True when \p kind queries the trained throughput estimator. BnB reasons
/// over the analytic model directly (its bound must be admissible w.r.t. a
/// deterministic objective), so it never trains one.
bool needs_estimator(const std::string& kind) {
  return kind == "omniboost" || kind == "random" || kind == "annealing";
}

/// Options shared by the one-shot and `serve` modes — declared through one
/// helper so defaults and help text cannot drift between the two parsers.
void declare_common_options(util::ArgParser& args) {
  args.option("scheduler",
              "omniboost|baseline|mosaic|ga|greedy|bnb|random|annealing",
              "omniboost")
      .option("budget", "search budget (estimator queries)", "500")
      .option("bnb-timeout-ms",
              "branch-and-bound wall-clock budget in ms; 0 = run to a proved "
              "optimum (only sane on small mixes)",
              "0")
      .option("depth", "MCTS tree-expansion depth limit", "100")
      .option("batch", "leaf evaluations per batched estimator query", "1")
      .option("samples", "estimator training workloads", "500")
      .option("epochs", "estimator training epochs", "100")
      .option("kernel",
              "compute kernel for the estimator CNN: gemm (fast), simd "
              "(runtime-dispatched AVX2/NEON micro-kernels; degrades to "
              "gemm on hosts without the ISA) or reference (the paper's "
              "bit-frozen loops)",
              "gemm")
      .option("design-workers",
              "design-time parallelism (dataset generation + validation); "
              "0 = the paper's exact sequential pipeline, N >= 1 = the "
              "slot-seeded parallel pipeline (byte-identical for any N)",
              "0")
      .option("seed", "master seed", "1")
      .option("estimator-file", "load a trained estimator instead of training")
      .option("save-estimator", "write the trained estimator to this path")
      .option("device-file",
              "board profile (INI) instead of the built-in HiKey970");
}

/// Applies --kernel: parses the requested kernel, reports a downgrade
/// (simd on a host without the ISA) on stderr — stderr so --json stdout
/// stays parseable — and installs the effective kernel as the process-wide
/// default before any network is built.
void apply_kernel_option(const util::ArgParser& args) {
  const nn::KernelKind requested = nn::parse_kernel_name(args.get("kernel"));
  const std::string note = nn::kernel_resolution_note(requested);
  if (!note.empty()) std::fprintf(stderr, "note: %s\n", note.c_str());
  nn::set_default_kernel(nn::resolve_kernel(requested));
}

/// Board model selection shared by both modes.
device::DeviceSpec build_device(const util::ArgParser& args) {
  return args.has("device-file")
             ? device::load_profile_file(args.get("device-file"))
             : device::make_hikey970();
}

/// Validated --design-workers value.
std::size_t parse_design_workers(const util::ArgParser& args) {
  const long long raw = args.get_int("design-workers");
  if (raw < 0) {
    throw std::invalid_argument(
        "--design-workers must be >= 0 (0 = sequential paper pipeline)");
  }
  return static_cast<std::size_t>(raw);
}

/// Trains or loads the throughput estimator (shared by both CLI modes; the
/// relevant options come from declare_common_options on both parsers).
std::shared_ptr<const core::ThroughputEstimator> prepare_estimator(
    const util::ArgParser& args, const models::ModelZoo& zoo,
    const core::EmbeddingTensor& embedding, const sim::DesSimulator& board,
    std::uint64_t seed, std::size_t design_workers, bool quiet) {
  if (args.has("estimator-file")) {
    const std::string est_path = args.get("estimator-file");
    auto estimator = std::make_shared<const core::ThroughputEstimator>(
        core::ThroughputEstimator::load_file(est_path));
    if (!quiet) std::printf("loaded estimator from %s\n", est_path.c_str());
    return estimator;
  }
  if (!quiet)
    std::printf("training estimator (%lld workloads, %lld epochs)...\n",
                static_cast<long long>(args.get_int("samples")),
                static_cast<long long>(args.get_int("epochs")));
  core::DatasetConfig dc;
  dc.samples = static_cast<std::size_t>(args.get_int("samples"));
  dc.seed = seed + 41;
  dc.workers = design_workers;
  const core::SampleSet data =
      core::generate_dataset(zoo, embedding, board, dc);
  auto est = std::make_shared<core::ThroughputEstimator>(
      embedding.models_dim(), embedding.layers_dim());
  nn::L1Loss l1;
  nn::TrainConfig tc;
  tc.epochs = static_cast<std::size_t>(args.get_int("epochs"));
  tc.workers = std::max<std::size_t>(design_workers, 1);
  const auto history = est->fit(data, dc.samples / 5, l1, tc);
  if (!quiet)
    std::printf("final train loss %.4f, val loss %.4f\n",
                history.train_loss.back(), history.val_loss.back());
  if (args.has("save-estimator")) {
    const std::string save_path = args.get("save-estimator");
    est->save_file(save_path);
    if (!quiet) std::printf("saved estimator to %s\n", save_path.c_str());
  }
  return est;
}

int run(int argc, char** argv) {
  util::ArgParser args(
      "omniboost_cli",
      "schedule a multi-DNN mix on the simulated HiKey970 and report "
      "throughput");
  args.option("mix", "comma-separated DNN list, e.g. VGG-19,AlexNet,MobileNet");
  declare_common_options(args);
  args.option("save-device-profile", "write the active board profile and exit")
      .flag("json", "emit a machine-readable JSON report")
      .flag("trace", "include per-component utilization in the report")
      .flag("gantt", "render an ASCII execution timeline (text mode only)");
  if (!args.parse(argc, argv)) return 0;

  const workload::Workload w = parse_mix(args.get("mix"));
  const std::string scheduler_kind = args.get("scheduler");
  // Applied before any network is built: layers capture the default at
  // construction, so this one call covers training, loading, and search.
  apply_kernel_option(args);
  const std::size_t design_workers = parse_design_workers(args);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const bool as_json = args.get_flag("json");
  const bool with_trace = args.get_flag("trace");
  const bool with_gantt = args.get_flag("gantt");

  // --- Substrate: board model, zoo, kernel profiling (embedding tensor).
  const device::DeviceSpec device = build_device(args);
  if (args.has("save-device-profile")) {
    const std::string path = args.get("save-device-profile");
    device::save_profile_file(device, path);
    std::printf("wrote device profile for '%s' to %s\n", device.name.c_str(),
                path.c_str());
    return 0;
  }
  const models::ModelZoo zoo;
  const device::CostModel cost(device);
  const core::EmbeddingTensor embedding(zoo, cost);
  const sim::DesSimulator board(device);

  // --- Design time: train or load the estimator (model-driven schedulers).
  std::shared_ptr<const core::ThroughputEstimator> estimator;
  if (needs_estimator(scheduler_kind)) {
    estimator = prepare_estimator(args, zoo, embedding, board, seed,
                                  design_workers, as_json);
  }

  // --- Run time: one scheduling decision plus a board measurement.
  const double bnb_timeout_ms = args.get_double("bnb-timeout-ms");
  if (bnb_timeout_ms < 0.0)
    throw std::invalid_argument("--bnb-timeout-ms must be >= 0");
  auto scheduler = make_scheduler(
      scheduler_kind, zoo, device, embedding, estimator,
      static_cast<std::size_t>(args.get_int("budget")),
      static_cast<std::size_t>(args.get_int("depth")),
      static_cast<std::size_t>(args.get_int("batch")), seed, 0.4, false,
      bnb_timeout_ms);
  const core::ScheduleResult result = scheduler->schedule(w);

  const auto nets = w.resolve(zoo);
  const auto traced = board.simulate_traced(nets, result.mapping, with_gantt);
  const sim::ThroughputReport& measured = traced.report;

  // Baseline comparison: everything on the GPU.
  const sim::Mapping all_gpu = sim::Mapping::all_on(
      w.layer_counts(zoo), device::ComponentId::kGpu);
  const double baseline_t = board.simulate(nets, all_gpu).avg_throughput;

  if (as_json) {
    util::Json out = util::Json::object();
    out.set("mix", util::Json::string(w.describe()));
    out.set("scheduler", util::Json::string(scheduler->name()));
    out.set("feasible", util::Json::boolean(measured.feasible));
    out.set("avg_throughput_inf_s", util::Json::number(measured.avg_throughput));
    out.set("baseline_gpu_inf_s", util::Json::number(baseline_t));
    out.set("speedup_vs_baseline",
            util::Json::number(baseline_t > 0.0
                                   ? measured.avg_throughput / baseline_t
                                   : 0.0));
    out.set("decision_seconds", util::Json::number(result.decision_seconds));
    out.set("evaluations", util::Json::number(result.evaluations));
    out.set("cache_hits", util::Json::number(result.cache_hits));
    // Bound certificate (branch-and-bound only): the analytic objective of
    // the returned mapping lies in [lower_bound, upper_bound].
    if (result.lower_bound)
      out.set("lower_bound_inf_s", util::Json::number(*result.lower_bound));
    if (result.upper_bound)
      out.set("upper_bound_inf_s", util::Json::number(*result.upper_bound));
    if (result.proved_optimal)
      out.set("proved_optimal", util::Json::boolean(*result.proved_optimal));
    if (result.nodes_expanded)
      out.set("nodes_expanded",
              util::Json::number(
                  static_cast<double>(*result.nodes_expanded)));
    util::Json dnns = util::Json::array();
    for (std::size_t d = 0; d < w.size(); ++d) {
      util::Json j = util::Json::object();
      j.set("model", util::Json::string(std::string(
                         models::model_name(w.mix[d]))));
      j.set("rate_inf_s", util::Json::number(measured.per_dnn_rate[d]));
      util::Json segs = util::Json::array();
      for (const auto& seg : sim::extract_segments(result.mapping.assignment(d))) {
        util::Json sj = util::Json::object();
        sj.set("layers", util::Json::string(std::to_string(seg.first) + "-" +
                                            std::to_string(seg.last)));
        sj.set("component", util::Json::string(std::string(
                                device::component_name(seg.comp))));
        segs.push_back(std::move(sj));
      }
      j.set("pipeline", std::move(segs));
      dnns.push_back(std::move(j));
    }
    out.set("dnns", std::move(dnns));
    if (with_trace) {
      util::Json comps = util::Json::array();
      for (const auto c : device::kAllComponents) {
        const auto& cu = traced.trace.components[device::component_index(c)];
        util::Json cj = util::Json::object();
        cj.set("component", util::Json::string(std::string(
                                device::component_name(c))));
        cj.set("utilization", util::Json::number(cu.utilization()));
        cj.set("max_queue_depth", util::Json::number(cu.max_queue_depth));
        comps.push_back(std::move(cj));
      }
      out.set("utilization", std::move(comps));
    }
    std::printf("%s\n", out.dump(2).c_str());
    return 0;
  }

  std::printf("\nmix: %s | scheduler: %s\n", w.describe().c_str(),
              scheduler->name().c_str());
  std::printf("decision: %.3f s (%zu evaluator queries, %zu memo hits)\n",
              result.decision_seconds, result.evaluations, result.cache_hits);
  if (result.lower_bound && result.upper_bound) {
    std::printf("bound certificate: analytic objective in [%.3f, %.3f] inf/s "
                "(%s, %zu nodes)\n",
                *result.lower_bound, *result.upper_bound,
                result.proved_optimal.value_or(false) ? "proved optimal"
                                                      : "budget exhausted",
                result.nodes_expanded.value_or(0));
  }
  if (!measured.feasible) {
    std::printf("RESULT: workload exceeds board memory (unresponsive)\n");
    return 1;
  }

  util::Table table({"DNN", "pipeline (layers -> component)", "inf/s"});
  for (std::size_t d = 0; d < w.size(); ++d) {
    std::string pipeline;
    for (const auto& seg : sim::extract_segments(result.mapping.assignment(d))) {
      if (!pipeline.empty()) pipeline += " | ";
      pipeline += std::to_string(seg.first) + "-" + std::to_string(seg.last) +
                  " -> " + std::string(device::component_name(seg.comp));
    }
    table.add_row({std::string(models::model_name(w.mix[d])), pipeline,
                   util::fmt(measured.per_dnn_rate[d], 2)});
  }
  table.print(std::cout);

  std::printf("\naverage throughput T: %.3f inf/s (baseline all-on-GPU: %.3f, "
              "speedup x%.2f)\n",
              measured.avg_throughput, baseline_t,
              baseline_t > 0.0 ? measured.avg_throughput / baseline_t : 0.0);
  if (with_trace) {
    util::Table ut({"component", "utilization", "max queue"});
    for (const auto c : device::kAllComponents) {
      const auto& cu = traced.trace.components[device::component_index(c)];
      ut.add_row({std::string(device::component_name(c)),
                  util::fmt(100.0 * cu.utilization(), 1) + "%",
                  std::to_string(cu.max_queue_depth)});
    }
    ut.print(std::cout);
  }
  if (with_gantt) {
    std::printf("\nexecution timeline (one glyph per stream, '.' = idle):\n%s",
                sim::render_gantt(traced.trace).c_str());
  }
  return 0;
}

/// The `serve` subcommand: dynamic multi-DNN serving over a scenario.
int run_serve(int argc, char** argv) {
  util::ArgParser args(
      "omniboost_cli serve",
      "replay a dynamic arrival/departure scenario through the serving "
      "runtime and report per-epoch throughput, decision latency and "
      "mapping churn");
  args.option("scenario",
              "scenario trace file (`at <t> <arrive|depart> <model>` lines); "
              "omit to generate one from the seed")
      .option("events", "generated scenario: arrive/depart event count", "10")
      .option("max-concurrent", "generated scenario: concurrency ceiling", "4")
      .option("min-concurrent", "generated scenario: concurrency floor", "1")
      .option("depart-bias",
              "generated scenario: departure probability when legal", "0.4")
      .option("interarrival", "generated scenario: mean event gap (s)", "5")
      .option("save-scenario", "write the replayed scenario trace to this path")
      .option("rollout-fraction",
              "warm-started incremental budget as a fraction of --budget",
              "0.4")
      .option("slo",
              "latency SLO in ms attached to every arriving stream that "
              "lacks an explicit `slo` clause; 0 = off",
              "0")
      .option("migration-cost",
              "churn-cost scale: charge each moved segment's weight "
              "re-upload + warm-up as a one-off stall in the epoch "
              "measurement (sim::MigrationCostModel); 0 = migrations are "
              "free (the default)",
              "0")
      .option("boards",
              "fleet size; >1 routes arrivals across a heterogeneous "
              "core::Cluster instead of one board",
              "1")
      .option("arrival",
              "draw the scenario from a stochastic arrival process instead "
              "of the event-count generator: poisson:<rate>, "
              "diurnal:<rate>:<period_s>:<amplitude>, or "
              "flash:<rate>:<start_s>:<width_s>:<height>")
      .option("horizon", "arrival process: sampled horizon (s)", "120")
      .option("lifetime", "arrival process: mean stream lifetime (s)", "20")
      .option("placement",
              "cluster routing policy: least-loaded|best-t|memory-headroom",
              "least-loaded")
      .option("cross-gbps",
              "cluster: cross-board weight-transfer bandwidth (GB/s) priced "
              "into rescue migrations",
              "1")
      .option("faults",
              "weave a seeded board-fault process into the scenario: "
              "mtbf:<s>:mttr:<s>[:throttle:<fraction>[:<min>:<max>]] — "
              "routes through the fleet cluster even at --boards 1")
      .option("decision-deadline-ms",
              "wrap every scheduler in a wall-clock decision deadline with "
              "Greedy fallback (sched::FallbackScheduler); 0 serves every "
              "epoch via Greedy")
      .option("listen",
              "run as a live serving daemon on this loopback TCP port "
              "instead of replaying a scenario (0 = ephemeral, printed as "
              "`listening on <port>`); drive it with `omniboost_cli client`")
      .option("time-scale",
              "daemon: scenario seconds per elapsed real second — commands "
              "are timestamped at real-elapsed * time-scale (tests use 100 "
              "to compress idle time)",
              "1")
      .option("background-slice-ms",
              "daemon: wall-clock budget of each idle-time background "
              "re-search slice (branch-and-bound refinement of an installed "
              "mapping); 0 disables background re-search",
              "25");
  declare_common_options(args);
  args.flag("cold",
            "disable warm-started rescheduling: every event gets a cold "
            "full-budget decision (the stability/latency baseline)")
      .flag("slo-hard-prune",
            "hard-prune SLO-breaking candidates in the warm search instead "
            "of shaping their reward down")
      .flag("no-migrate",
            "cluster: disable rescue migrations off saturating boards")
      .flag("rebalance",
            "cluster: pull streams back onto boards recovering from a fault")
      .flag("json", "emit a machine-readable JSON report");
  if (!args.parse(argc, argv)) return 0;

  apply_kernel_option(args);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const bool as_json = args.get_flag("json");
  const bool warm = !args.get_flag("cold");
  const std::string scheduler_kind = args.get("scheduler");
  const std::size_t design_workers = parse_design_workers(args);

  // --- The scenario: load a trace, or draw one from the master seed.
  workload::Scenario scenario;
  if (args.has("scenario")) {
    scenario = workload::load_scenario_file(args.get("scenario"));
  } else if (args.has("arrival")) {
    workload::ArrivalProcess process =
        workload::parse_arrival_spec(args.get("arrival"));
    process.mean_lifetime_s = args.get_double("lifetime");
    if (args.get_int("max-concurrent") < 1)
      throw std::invalid_argument("--max-concurrent must be >= 1");
    process.max_concurrent =
        std::min<std::size_t>(
            static_cast<std::size_t>(args.get_int("max-concurrent")),
            models::kNumModels);
    util::Rng rng(seed);
    scenario = workload::sample_scenario(process, args.get_double("horizon"),
                                         rng);
    if (scenario.empty())
      throw std::invalid_argument(
          "arrival process produced an empty scenario; raise the rate or "
          "the --horizon");
  } else {
    // Validate before the size_t casts: a negative count would wrap to a
    // huge value and die later with a cryptic allocation error.
    for (const char* name : {"events", "max-concurrent", "min-concurrent"}) {
      if (args.get_int(name) < 1)
        throw std::invalid_argument(std::string("--") + name +
                                    " must be >= 1");
    }
    workload::ScenarioConfig sc;
    sc.events = static_cast<std::size_t>(args.get_int("events"));
    sc.max_concurrent = static_cast<std::size_t>(args.get_int("max-concurrent"));
    sc.min_concurrent = static_cast<std::size_t>(args.get_int("min-concurrent"));
    sc.depart_bias = args.get_double("depart-bias");
    sc.mean_interarrival_s = args.get_double("interarrival");
    util::Rng rng(seed);
    scenario = workload::random_scenario(rng, sc);
  }
  // --- Default SLO: fill in arrivals that do not already carry one, so a
  // plain trace can be replayed under a uniform latency target.
  const double default_slo_ms = args.get_double("slo");
  if (default_slo_ms < 0.0)
    throw std::invalid_argument("--slo must be >= 0 (milliseconds)");
  if (default_slo_ms > 0.0) {
    std::vector<workload::ScenarioEvent> events = scenario.events();
    for (workload::ScenarioEvent& e : events) {
      if (e.kind == workload::ScenarioEventKind::kArrive && e.slo_ms <= 0.0)
        e.slo_ms = default_slo_ms;
    }
    scenario = workload::Scenario(std::move(events));
  }

  const long long boards_raw = args.get_int("boards");
  if (boards_raw < 1) throw std::invalid_argument("--boards must be >= 1");
  const auto n_boards = static_cast<std::size_t>(boards_raw);

  // --- Fault weave: draw a board-fault process over the scenario's span and
  // merge its fail/throttle/recover events in (workload/faults.hpp). The
  // weave happens before --save-scenario so the saved trace replays the
  // identical faults.
  if (args.has("faults")) {
    const workload::FaultProcess faults =
        workload::parse_fault_spec(args.get("faults"));
    scenario = workload::with_faults(scenario, faults, n_boards, seed);
    if (!as_json)
      std::printf("fault weave: %s -> %s\n",
                  workload::describe(faults).c_str(),
                  scenario.describe().c_str());
  }
  if (scenario.fault_board_span() > n_boards)
    throw std::invalid_argument(
        "scenario fault events target board " +
        std::to_string(scenario.fault_board_span() - 1) +
        " but the fleet has only " + std::to_string(n_boards) +
        " board(s); raise --boards");

  if (args.has("save-scenario")) {
    workload::save_scenario_file(scenario, args.get("save-scenario"));
    if (!as_json)
      std::printf("wrote scenario trace to %s\n",
                  args.get("save-scenario").c_str());
  }

  // --- Substrate + design time, identical to the one-shot mode.
  const device::DeviceSpec device = build_device(args);
  const models::ModelZoo zoo;
  const device::CostModel cost(device);
  const core::EmbeddingTensor embedding(zoo, cost);
  const sim::DesSimulator board(device);

  std::shared_ptr<const core::ThroughputEstimator> estimator;
  if (needs_estimator(scheduler_kind)) {
    estimator = prepare_estimator(args, zoo, embedding, board, seed,
                                  design_workers, as_json);
  }

  const double bnb_timeout_ms = args.get_double("bnb-timeout-ms");
  if (bnb_timeout_ms < 0.0)
    throw std::invalid_argument("--bnb-timeout-ms must be >= 0");

  const double migration_cost = args.get_double("migration-cost");
  if (migration_cost < 0.0)
    throw std::invalid_argument("--migration-cost must be >= 0");
  core::ServingConfig sc;
  sc.warm_start = warm;
  sc.migration.enabled = migration_cost > 0.0;
  sc.migration.scale = migration_cost > 0.0 ? migration_cost : 1.0;

  // --- Decision-deadline guard: wrap any scheduler the factories below
  // build in a FallbackScheduler (wall-clock deadline, retry with backoff,
  // Greedy fallback). Absent flag = no wrapper, bit-identical to before.
  const bool deadline_guard = args.has("decision-deadline-ms");
  const double deadline_ms =
      deadline_guard ? args.get_double("decision-deadline-ms") : 0.0;
  if (deadline_guard && deadline_ms < 0.0)
    throw std::invalid_argument("--decision-deadline-ms must be >= 0");
  const auto guard = [&](std::unique_ptr<core::IScheduler> inner,
                         const device::DeviceSpec& dev)
      -> std::unique_ptr<core::IScheduler> {
    if (!deadline_guard) return inner;
    sched::FallbackConfig fc;
    fc.deadline_ms = deadline_ms;
    return sched::make_greedy_fallback(std::move(inner), zoo, dev, fc);
  };

  // --- Daemon mode: hand the substrate to the live serving loop. The
  // scenario machinery above is bypassed entirely — a daemon's scenario is
  // whatever its clients send, recorded live and saved via `save-trace`.
  if (args.has("listen")) {
    const long long port_raw = args.get_int("listen");
    if (port_raw < 0 || port_raw > 65535)
      throw std::invalid_argument("--listen must be a port in 0..65535");
    core::ClusterConfig cc;
    cc.serving = sc;
    cc.migrate = !args.get_flag("no-migrate");
    cc.rebalance_on_recovery = args.get_flag("rebalance");
    cc.cross_board_gbps = args.get_double("cross-gbps");
    if (!(cc.cross_board_gbps > 0.0))
      throw std::invalid_argument("--cross-gbps must be > 0");
    const core::Cluster cluster(zoo, core::make_heterogeneous_fleet(n_boards),
                                cc);
    const auto policy = core::make_placement_policy(args.get("placement"));
    const core::SchedulerFactory factory =
        [&](std::size_t i) -> std::unique_ptr<core::IScheduler> {
      return guard(
          make_scheduler(
              scheduler_kind, zoo, cluster.boards()[i].device, embedding,
              estimator, static_cast<std::size_t>(args.get_int("budget")),
              static_cast<std::size_t>(args.get_int("depth")),
              static_cast<std::size_t>(args.get_int("batch")), seed,
              args.get_double("rollout-fraction"),
              args.get_flag("slo-hard-prune"), bnb_timeout_ms),
          cluster.boards()[i].device);
    };
    daemon::DaemonConfig dc;
    dc.port = static_cast<std::uint16_t>(port_raw);
    dc.time_scale = args.get_double("time-scale");
    dc.background_slice_ms = args.get_double("background-slice-ms");
    dc.background = dc.background_slice_ms > 0.0;
    return daemon::run_daemon(zoo, cluster, factory, *policy, dc);
  }

  // --- Fleet mode: route arrivals across a heterogeneous cluster. A fleet
  // of one stays on the plain ServingRuntime path below (bit-identical to
  // the pre-cluster CLI) — unless the scenario carries fault events, which
  // only the cluster can react to.
  if (boards_raw > 1 || scenario.has_faults()) {
    core::ClusterConfig cc;
    cc.serving = sc;
    cc.migrate = !args.get_flag("no-migrate");
    cc.rebalance_on_recovery = args.get_flag("rebalance");
    cc.cross_board_gbps = args.get_double("cross-gbps");
    if (!(cc.cross_board_gbps > 0.0))
      throw std::invalid_argument("--cross-gbps must be > 0");
    const core::Cluster cluster(zoo, core::make_heterogeneous_fleet(n_boards),
                                cc);
    const auto policy = core::make_placement_policy(args.get("placement"));
    // Model-driven schedulers reuse the stock-board embedding/estimator on
    // every board (the DES measurement stays per-board exact either way);
    // analytic schedulers are rebuilt against each board's own spec.
    const core::SchedulerFactory factory =
        [&](std::size_t i) -> std::unique_ptr<core::IScheduler> {
      return guard(
          make_scheduler(
              scheduler_kind, zoo, cluster.boards()[i].device, embedding,
              estimator, static_cast<std::size_t>(args.get_int("budget")),
              static_cast<std::size_t>(args.get_int("depth")),
              static_cast<std::size_t>(args.get_int("batch")), seed,
              args.get_double("rollout-fraction"),
              args.get_flag("slo-hard-prune"), bnb_timeout_ms),
          cluster.boards()[i].device);
    };
    const core::ClusterReport rep = cluster.run(factory, scenario, *policy);

    if (as_json) {
      util::Json out = util::Json::object();
      out.set("scenario", util::Json::string(scenario.describe()));
      out.set("scheduler", util::Json::string(scheduler_kind));
      out.set("placement", util::Json::string(policy->name()));
      out.set("boards", util::Json::number(static_cast<double>(n_boards)));
      out.set("warm_start", util::Json::boolean(warm));
      util::Json fleet = util::Json::array();
      for (std::size_t i = 0; i < rep.boards.size(); ++i) {
        const core::ServingReport& br = rep.boards[i];
        util::Json j = util::Json::object();
        j.set("board", util::Json::string(rep.board_names[i]));
        j.set("epochs", util::Json::number(br.epochs.size()));
        j.set("decisions", util::Json::number(br.decisions));
        j.set("mean_throughput_inf_s",
              util::Json::number(br.mean_throughput));
        j.set("mean_churn", util::Json::number(br.mean_churn));
        j.set("slo_streams", util::Json::number(br.total_slo_streams));
        j.set("slo_violations", util::Json::number(br.total_slo_violations));
        fleet.push_back(std::move(j));
      }
      out.set("fleet", std::move(fleet));
      out.set("offered_streams", util::Json::number(rep.offered_streams));
      out.set("admitted_streams", util::Json::number(rep.admitted_streams));
      out.set("rejected_streams", util::Json::number(rep.rejected_streams));
      out.set("rejection_rate", util::Json::number(rep.rejection_rate));
      out.set("departures", util::Json::number(rep.departures));
      out.set("migrations", util::Json::number(rep.migrations));
      out.set("cross_board_stall_s",
              util::Json::number(rep.cross_board_stall_s));
      out.set("cross_board_weight_bytes",
              util::Json::number(rep.cross_board_weight_bytes));
      out.set("board_failures", util::Json::number(rep.board_failures));
      out.set("board_throttles", util::Json::number(rep.board_throttles));
      out.set("board_recoveries", util::Json::number(rep.board_recoveries));
      out.set("failovers", util::Json::number(rep.failovers));
      out.set("failover_stall_s", util::Json::number(rep.failover_stall_s));
      out.set("failover_weight_bytes",
              util::Json::number(rep.failover_weight_bytes));
      out.set("shed_streams", util::Json::number(rep.shed_streams));
      out.set("shed_departures", util::Json::number(rep.shed_departures));
      out.set("rebalances", util::Json::number(rep.rebalances));
      out.set("downtime_board_s", util::Json::number(rep.downtime_board_s));
      out.set("degraded_epochs", util::Json::number(rep.degraded_epochs));
      out.set("resident_streams", util::Json::number(rep.resident_streams));
      out.set("fleet_throughput_inf_s",
              util::Json::number(rep.fleet_throughput));
      out.set("total_decision_seconds",
              util::Json::number(rep.total_decision_seconds));
      out.set("total_slo_streams",
              util::Json::number(rep.total_slo_streams));
      out.set("total_slo_violations",
              util::Json::number(rep.total_slo_violations));
      out.set("total_des_replays",
              util::Json::number(rep.total_des_replays));
      out.set("total_replay_hits",
              util::Json::number(rep.total_replay_hits));
      out.set("background_searches",
              util::Json::number(rep.background_searches));
      out.set("background_improvements",
              util::Json::number(rep.background_improvements));
      std::printf("%s\n", out.dump(2).c_str());
      return 0;
    }

    std::printf("\nscenario: %s | scheduler: %s | placement: %s | "
                "%zu boards | warm-started rescheduling: %s\n",
                scenario.describe().c_str(), scheduler_kind.c_str(),
                policy->name().c_str(), n_boards, warm ? "on" : "off");
    // The same formatter renders the daemon's `status` replies, so offline
    // replays and live sessions are textually comparable line-for-line.
    std::fputs(core::format_cluster_report(rep).c_str(), stdout);
    return 0;
  }

  auto scheduler = guard(
      make_scheduler(scheduler_kind, zoo, device, embedding, estimator,
                     static_cast<std::size_t>(args.get_int("budget")),
                     static_cast<std::size_t>(args.get_int("depth")),
                     static_cast<std::size_t>(args.get_int("batch")), seed,
                     args.get_double("rollout-fraction"),
                     args.get_flag("slo-hard-prune"), bnb_timeout_ms),
      device);

  // --- Serve.
  const core::ServingRuntime runtime(zoo, board, sc);
  const core::ServingReport report = runtime.run(*scheduler, scenario);

  if (as_json) {
    util::Json out = util::Json::object();
    out.set("scenario", util::Json::string(scenario.describe()));
    out.set("scheduler", util::Json::string(scheduler->name()));
    out.set("warm_start", util::Json::boolean(warm));
    util::Json epochs = util::Json::array();
    for (const core::EpochReport& ep : report.epochs) {
      util::Json j = util::Json::object();
      j.set("t_s", util::Json::number(ep.time_s));
      j.set("event", util::Json::string(ep.event));
      j.set("mix", util::Json::string(ep.mix));
      // Idle epochs (the mix drained; nothing was scheduled) carry default
      // decision fields — flag them so consumers can filter without
      // string-matching the mix label.
      j.set("idle", util::Json::boolean(ep.mix_size == 0));
      j.set("mix_size", util::Json::number(ep.mix_size));
      j.set("feasible", util::Json::boolean(ep.feasible));
      j.set("decision_seconds",
            util::Json::number(ep.decision.decision_seconds));
      j.set("evaluations", util::Json::number(ep.decision.evaluations));
      j.set("cache_hits", util::Json::number(ep.decision.cache_hits));
      j.set("des_replays", util::Json::number(ep.decision.des_replays));
      j.set("replay_hits", util::Json::number(ep.decision.replay_hits));
      j.set("avg_throughput_inf_s",
            util::Json::number(ep.measured_throughput));
      j.set("churn", util::Json::number(ep.churn));
      j.set("surviving_layers", util::Json::number(ep.surviving_layers));
      j.set("moved_layers", util::Json::number(ep.moved_layers));
      j.set("slo_streams", util::Json::number(ep.slo_streams));
      j.set("slo_violations", util::Json::number(ep.slo_violations));
      if (ep.slo_streams > 0) {
        util::Json slos = util::Json::array();
        util::Json p99s = util::Json::array();
        for (std::size_t d = 0; d < ep.slo_s.size(); ++d) {
          slos.push_back(util::Json::number(ep.slo_s[d]));
          p99s.push_back(util::Json::number(ep.latency_p99_s[d]));
        }
        j.set("slo_s", std::move(slos));
        j.set("latency_p99_s", std::move(p99s));
      }
      j.set("migrated_segments", util::Json::number(ep.migrated_segments));
      j.set("migration_stall_s", util::Json::number(ep.migration_stall_s));
      j.set("migration_weight_bytes",
            util::Json::number(ep.migration_weight_bytes));
      epochs.push_back(std::move(j));
    }
    out.set("epochs", std::move(epochs));
    out.set("decisions", util::Json::number(report.decisions));
    out.set("mean_throughput_inf_s",
            util::Json::number(report.mean_throughput));
    out.set("mean_incremental_decision_seconds",
            util::Json::number(report.mean_incremental_decision_seconds));
    out.set("total_decision_seconds",
            util::Json::number(report.total_decision_seconds));
    out.set("mean_churn", util::Json::number(report.mean_churn));
    out.set("total_evaluations", util::Json::number(report.total_evaluations));
    out.set("total_cache_hits", util::Json::number(report.total_cache_hits));
    out.set("total_des_replays",
            util::Json::number(report.total_des_replays));
    out.set("total_replay_hits",
            util::Json::number(report.total_replay_hits));
    out.set("total_slo_streams", util::Json::number(report.total_slo_streams));
    out.set("total_slo_violations",
            util::Json::number(report.total_slo_violations));
    out.set("total_migrated_segments",
            util::Json::number(report.total_migrated_segments));
    out.set("total_migration_stall_s",
            util::Json::number(report.total_migration_stall_s));
    std::printf("%s\n", out.dump(2).c_str());
    return 0;
  }

  std::printf("\nscenario: %s | scheduler: %s | warm-started rescheduling: %s\n",
              scenario.describe().c_str(), scheduler->name().c_str(),
              warm ? "on" : "off");
  util::Table table({"t (s)", "event", "mix", "decision s", "evals", "hits",
                     "T inf/s", "churn", "SLO", "stall ms"});
  for (const core::EpochReport& ep : report.epochs) {
    table.add_row(
        {util::fmt(ep.time_s, 2), ep.event, ep.mix,
         ep.mix_size == 0 ? "-" : util::fmt(ep.decision.decision_seconds, 3),
         std::to_string(ep.decision.evaluations),
         std::to_string(ep.decision.cache_hits),
         ep.mix_size == 0 ? "-" : util::fmt(ep.measured_throughput, 2),
         ep.surviving_layers == 0 ? "-"
                                  : util::fmt(100.0 * ep.churn, 1) + "%",
         // "violations/streams-under-SLO" for the epoch; "-" = none set.
         ep.slo_streams == 0 ? "-"
                             : std::to_string(ep.slo_violations) + "/" +
                                   std::to_string(ep.slo_streams),
         ep.migration_stall_s > 0.0
             ? util::fmt(1e3 * ep.migration_stall_s, 1)
             : "-"});
  }
  table.print(std::cout);
  std::printf("\n%zu decisions | mean T %.3f inf/s | mean incremental "
              "decision %.3f s | mean churn %.1f%% | %zu evaluator queries "
              "(%zu memo hits)\n",
              report.decisions, report.mean_throughput,
              report.mean_incremental_decision_seconds,
              100.0 * report.mean_churn, report.total_evaluations,
              report.total_cache_hits);
  if (report.total_des_replays + report.total_replay_hits > 0)
    std::printf("SLO replays: %zu DES replays executed, %zu served from the "
                "replay memo\n",
                report.total_des_replays, report.total_replay_hits);
  if (report.total_slo_streams > 0)
    std::printf("SLO: %zu violations over %zu stream-epochs under an SLO\n",
                report.total_slo_violations, report.total_slo_streams);
  if (runtime.migration_model().enabled())
    std::printf("migration: %zu segments moved, %.1f ms total stall charged\n",
                report.total_migrated_segments,
                1e3 * report.total_migration_stall_s);
  return 0;
}

/// The `client` subcommand: one command to a running daemon, reply to
/// stdout. `omniboost_cli client <host:port> <command...>` — the command
/// words are joined with spaces and sent as one protocol line; body lines
/// print to stdout and the exit code mirrors the `ok`/`err` terminator.
int run_client(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: omniboost_cli client <host:port> <command...>\n"
                 "e.g.   omniboost_cli client localhost:7070 arrive "
                 "MobileNet slo 100\n");
    return 2;
  }
  const std::string target = argv[1];
  const std::size_t colon = target.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == target.size())
    throw std::invalid_argument("client: target must be <host>:<port>, got '" +
                                target + "'");
  const std::string host = target.substr(0, colon);
  const int port = std::stoi(target.substr(colon + 1));
  if (port < 1 || port > 65535)
    throw std::invalid_argument("client: port must be in 1..65535");

  std::string command;
  for (int i = 2; i < argc; ++i) {
    if (i > 2) command += ' ';
    command += argv[i];
  }
  util::TcpStream stream =
      util::tcp_connect(host, static_cast<std::uint16_t>(port));
  stream.send_line(command);
  std::string line;
  while (stream.recv_line(&line) == util::TcpStream::RecvStatus::kLine) {
    if (line == "ok") return 0;
    if (line == "err" || line.rfind("err ", 0) == 0) {
      std::fprintf(stderr, "%s\n", line.c_str());
      return 1;
    }
    std::printf("%s\n", line.c_str());
  }
  std::fprintf(stderr, "error: daemon closed the connection mid-reply\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc > 1 && std::string(argv[1]) == "serve")
      return run_serve(argc - 1, argv + 1);
    if (argc > 1 && std::string(argv[1]) == "client")
      return run_client(argc - 1, argv + 1);
    return run(argc, argv);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n(use --help for usage)\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fatal: %s\n", e.what());
    return 1;
  }
}
