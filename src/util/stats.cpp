#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace omniboost::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_ + other.n_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / n;
  mean_ += delta * static_cast<double>(other.n_) / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double stddev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(v.size()));
}

double geomean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) {
    if (x <= 0.0) throw std::invalid_argument("geomean: non-positive element");
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(v.size()));
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) throw std::invalid_argument("percentile: empty input");
  if (p < 0.0 || p > 100.0)
    throw std::invalid_argument("percentile: p outside [0,100]");
  std::sort(v.begin(), v.end());
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

Affine1D fit_standardizer(const std::vector<double>& v) {
  constexpr double kMinScale = 1e-12;
  return Affine1D{mean(v), std::max(stddev(v), kMinScale)};
}

Affine1D fit_minmax(const std::vector<double>& v) {
  if (v.empty()) return {};
  const auto [lo, hi] = std::minmax_element(v.begin(), v.end());
  constexpr double kMinScale = 1e-12;
  return Affine1D{*lo, std::max(*hi - *lo, kMinScale)};
}

}  // namespace omniboost::util
