/// \file gemm_simd.cpp
/// The SIMD micro-kernel translation unit. This is the ONLY file in the
/// library compiled with ISA flags (-mavx2 -mfma, applied per-source by
/// CMake on x86-64 when the compiler accepts them; NEON is baseline on
/// aarch64), so nothing outside gemm_simd_kernel() may call into it without
/// the runtime cpuid gate in simd.cpp — the compiler is free to use the ISA
/// anywhere in this TU.
///
/// Structure mirrors gemm.cpp's BLIS-style blocked driver exactly: pack
/// op(A) into kMR-row k-major panels and op(B) into kNR-column panels, then
/// sweep register micro-tiles over the packed blocks. Only the tile shape
/// and the inner product change: 6x16 AVX2 FMA (12 accumulator ymm
/// registers + 2 B loads + 1 A broadcast = 15 of 16) or 4x8 NEON FMA
/// (8 accumulator q registers).

#include "tensor/simd.hpp"

#include <algorithm>
#include <vector>

#if (defined(__x86_64__) || defined(__i386__)) && defined(__AVX2__) && \
    defined(__FMA__)
#include <immintrin.h>
#define OMNIBOOST_SIMD_KERNELS 1
#define OMNIBOOST_SIMD_ISA "avx2"
#elif defined(__aarch64__)
#include <arm_neon.h>
#define OMNIBOOST_SIMD_KERNELS 1
#define OMNIBOOST_SIMD_ISA "neon"
#endif

namespace omniboost::tensor::detail {

#ifdef OMNIBOOST_SIMD_KERNELS

namespace {

#ifdef __AVX2__
constexpr std::size_t kMR = 6;    // micro-tile rows (one A broadcast each)
constexpr std::size_t kNR = 16;   // micro-tile cols (two ymm lanes)
constexpr std::size_t kMC = 96;   // rows of op(A) per block (multiple of kMR)
#else
constexpr std::size_t kMR = 4;    // micro-tile rows
constexpr std::size_t kNR = 8;    // micro-tile cols (two q lanes)
constexpr std::size_t kMC = 96;
#endif
constexpr std::size_t kKC = 256;  // shared dimension per block
constexpr std::size_t kNC = 256;  // cols of op(B) per block (multiple of kNR)

/// Element (r, c) of op(X) where the stored matrix has row stride ld.
inline float op_at(const float* x, std::size_t ld, bool trans, std::size_t r,
                   std::size_t c) {
  return trans ? x[c * ld + r] : x[r * ld + c];
}

/// Packs op(A)[i0:i0+mc, k0:k0+kc] into kMR-row panels, k-major
/// (buf[k*kMR + i]), zero-padding rows past mc — identical scheme to
/// gemm.cpp's pack_a, at this TU's tile width.
void pack_a(const float* a, std::size_t lda, bool trans, std::size_t i0,
            std::size_t k0, std::size_t mc, std::size_t kc, float* buf) {
  for (std::size_t p = 0; p < mc; p += kMR) {
    const std::size_t rows = std::min(kMR, mc - p);
    for (std::size_t k = 0; k < kc; ++k) {
      for (std::size_t i = 0; i < kMR; ++i) {
        *buf++ = i < rows ? op_at(a, lda, trans, i0 + p + i, k0 + k) : 0.0f;
      }
    }
  }
}

/// Packs op(B)[k0:k0+kc, j0:j0+nc] into kNR-column panels (buf[k*kNR + j]),
/// zero-padding columns past nc.
void pack_b(const float* b, std::size_t ldb, bool trans, std::size_t k0,
            std::size_t j0, std::size_t kc, std::size_t nc, float* buf) {
  for (std::size_t p = 0; p < nc; p += kNR) {
    const std::size_t cols = std::min(kNR, nc - p);
    for (std::size_t k = 0; k < kc; ++k) {
      for (std::size_t j = 0; j < kNR; ++j) {
        *buf++ = j < cols ? op_at(b, ldb, trans, k0 + k, j0 + p + j) : 0.0f;
      }
    }
  }
}

/// Scalar alpha/beta fold of a spilled partial tile (edge rows/columns).
inline void fold_tile(const float (*tile)[kNR], float alpha, float beta,
                      bool first_kblock, float* c, std::size_t ldc,
                      std::size_t rows, std::size_t cols) {
  for (std::size_t i = 0; i < rows; ++i) {
    float* crow = c + i * ldc;
    if (first_kblock) {
      if (beta == 0.0f) {
        for (std::size_t j = 0; j < cols; ++j) crow[j] = alpha * tile[i][j];
      } else {
        for (std::size_t j = 0; j < cols; ++j)
          crow[j] = beta * crow[j] + alpha * tile[i][j];
      }
    } else {
      for (std::size_t j = 0; j < cols; ++j) crow[j] += alpha * tile[i][j];
    }
  }
}

#ifdef __AVX2__

/// 6x16 FMA micro-tile: acc = sum_k apanel[k] (broadcast) * bpanel[k] (two
/// ymm loads), folded into C with alpha (and beta on the first k-block).
void micro_kernel(const float* apanel, const float* bpanel, std::size_t kc,
                  float alpha, float beta, bool first_kblock, float* c,
                  std::size_t ldc, std::size_t rows, std::size_t cols) {
  __m256 acc[kMR][2];
  for (std::size_t i = 0; i < kMR; ++i)
    acc[i][0] = acc[i][1] = _mm256_setzero_ps();
  for (std::size_t k = 0; k < kc; ++k) {
    const float* bk = bpanel + k * kNR;
    const __m256 b0 = _mm256_loadu_ps(bk);
    const __m256 b1 = _mm256_loadu_ps(bk + 8);
    const float* ak = apanel + k * kMR;
    for (std::size_t i = 0; i < kMR; ++i) {
      const __m256 av = _mm256_broadcast_ss(ak + i);
      acc[i][0] = _mm256_fmadd_ps(av, b0, acc[i][0]);
      acc[i][1] = _mm256_fmadd_ps(av, b1, acc[i][1]);
    }
  }
  if (rows == kMR && cols == kNR) {
    // Full-tile fast path: fold in registers.
    const __m256 valpha = _mm256_set1_ps(alpha);
    for (std::size_t i = 0; i < kMR; ++i) {
      float* crow = c + i * ldc;
      __m256 lo = _mm256_mul_ps(valpha, acc[i][0]);
      __m256 hi = _mm256_mul_ps(valpha, acc[i][1]);
      if (first_kblock) {
        if (beta != 0.0f) {
          const __m256 vbeta = _mm256_set1_ps(beta);
          lo = _mm256_fmadd_ps(vbeta, _mm256_loadu_ps(crow), lo);
          hi = _mm256_fmadd_ps(vbeta, _mm256_loadu_ps(crow + 8), hi);
        }
      } else {
        lo = _mm256_add_ps(_mm256_loadu_ps(crow), lo);
        hi = _mm256_add_ps(_mm256_loadu_ps(crow + 8), hi);
      }
      _mm256_storeu_ps(crow, lo);
      _mm256_storeu_ps(crow + 8, hi);
    }
    return;
  }
  // Edge tile: spill and fold scalar over the live rows/columns.
  alignas(32) float tile[kMR][kNR];
  for (std::size_t i = 0; i < kMR; ++i) {
    _mm256_store_ps(tile[i], acc[i][0]);
    _mm256_store_ps(tile[i] + 8, acc[i][1]);
  }
  fold_tile(tile, alpha, beta, first_kblock, c, ldc, rows, cols);
}

#else  // NEON

/// 4x8 FMA micro-tile (two q-register lanes per row).
void micro_kernel(const float* apanel, const float* bpanel, std::size_t kc,
                  float alpha, float beta, bool first_kblock, float* c,
                  std::size_t ldc, std::size_t rows, std::size_t cols) {
  float32x4_t acc[kMR][2];
  for (std::size_t i = 0; i < kMR; ++i)
    acc[i][0] = acc[i][1] = vdupq_n_f32(0.0f);
  for (std::size_t k = 0; k < kc; ++k) {
    const float* bk = bpanel + k * kNR;
    const float32x4_t b0 = vld1q_f32(bk);
    const float32x4_t b1 = vld1q_f32(bk + 4);
    const float* ak = apanel + k * kMR;
    for (std::size_t i = 0; i < kMR; ++i) {
      const float32x4_t av = vdupq_n_f32(ak[i]);
      acc[i][0] = vfmaq_f32(acc[i][0], av, b0);
      acc[i][1] = vfmaq_f32(acc[i][1], av, b1);
    }
  }
  if (rows == kMR && cols == kNR) {
    const float32x4_t valpha = vdupq_n_f32(alpha);
    for (std::size_t i = 0; i < kMR; ++i) {
      float* crow = c + i * ldc;
      float32x4_t lo = vmulq_f32(valpha, acc[i][0]);
      float32x4_t hi = vmulq_f32(valpha, acc[i][1]);
      if (first_kblock) {
        if (beta != 0.0f) {
          const float32x4_t vbeta = vdupq_n_f32(beta);
          lo = vfmaq_f32(lo, vbeta, vld1q_f32(crow));
          hi = vfmaq_f32(hi, vbeta, vld1q_f32(crow + 4));
        }
      } else {
        lo = vaddq_f32(vld1q_f32(crow), lo);
        hi = vaddq_f32(vld1q_f32(crow + 4), hi);
      }
      vst1q_f32(crow, lo);
      vst1q_f32(crow + 4, hi);
    }
    return;
  }
  alignas(16) float tile[kMR][kNR];
  for (std::size_t i = 0; i < kMR; ++i) {
    vst1q_f32(tile[i], acc[i][0]);
    vst1q_f32(tile[i] + 4, acc[i][1]);
  }
  fold_tile(tile, alpha, beta, first_kblock, c, ldc, rows, cols);
}

#endif  // ISA

}  // namespace

bool simd_kernels_compiled() { return true; }

const char* simd_kernel_isa() { return OMNIBOOST_SIMD_ISA; }

void gemm_simd_kernel(bool trans_a, bool trans_b, std::size_t m,
                      std::size_t n, std::size_t k, float alpha,
                      const float* a, std::size_t lda, const float* b,
                      std::size_t ldb, float beta, float* c,
                      std::size_t ldc) {
  // Packing scratch, rounded up to whole micro-panels (same reuse scheme as
  // gemm.cpp: thread_local, sized by the fixed block caps).
  static thread_local std::vector<float> apack;
  static thread_local std::vector<float> bpack;
  apack.resize(((std::min(m, kMC) + kMR - 1) / kMR) * kMR *
               std::min(k, kKC));
  bpack.resize(((std::min(n, kNC) + kNR - 1) / kNR) * kNR *
               std::min(k, kKC));

  for (std::size_t j0 = 0; j0 < n; j0 += kNC) {
    const std::size_t nc = std::min(kNC, n - j0);
    const std::size_t npanels = (nc + kNR - 1) / kNR;
    for (std::size_t k0 = 0; k0 < k; k0 += kKC) {
      const std::size_t kc = std::min(kKC, k - k0);
      const bool first_kblock = k0 == 0;
      pack_b(b, ldb, trans_b, k0, j0, kc, nc, bpack.data());
      for (std::size_t i0 = 0; i0 < m; i0 += kMC) {
        const std::size_t mc = std::min(kMC, m - i0);
        const std::size_t mpanels = (mc + kMR - 1) / kMR;
        pack_a(a, lda, trans_a, i0, k0, mc, kc, apack.data());
        for (std::size_t pj = 0; pj < npanels; ++pj) {
          const std::size_t j = pj * kNR;
          const std::size_t cols = std::min(kNR, nc - j);
          const float* bpanel = bpack.data() + pj * kc * kNR;
          for (std::size_t pi = 0; pi < mpanels; ++pi) {
            const std::size_t i = pi * kMR;
            const std::size_t rows = std::min(kMR, mc - i);
            micro_kernel(apack.data() + pi * kc * kMR, bpanel, kc, alpha,
                         beta, first_kblock, c + (i0 + i) * ldc + j0 + j, ldc,
                         rows, cols);
          }
        }
      }
    }
  }
}

#else  // !OMNIBOOST_SIMD_KERNELS — no ISA section on this target/compiler

bool simd_kernels_compiled() { return false; }

const char* simd_kernel_isa() { return "none"; }

void gemm_simd_kernel(bool, bool, std::size_t, std::size_t, std::size_t,
                      float, const float*, std::size_t, const float*,
                      std::size_t, float, float*, std::size_t) {
  // Unreachable: gemm_simd() routes to tensor::gemm when
  // simd_kernels_compiled() is false.
}

#endif  // OMNIBOOST_SIMD_KERNELS

}  // namespace omniboost::tensor::detail
