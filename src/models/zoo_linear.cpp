/// \file zoo_linear.cpp
/// Linear-chain networks: AlexNet, the VGG family, MobileNet v1, SqueezeNet.
/// Every convolution / pool / FC op is its own schedulable layer, matching the
/// paper's per-layer partition points (e.g. "MobileNet: first 10 layers on
/// big CPU, the remaining on GPU").

#include <array>

#include "models/net_builder.hpp"
#include "models/zoo.hpp"

namespace omniboost::models {

namespace {
constexpr Dims kImageNet224{3, 224, 224};
}

NetworkDesc make_alexnet() {
  NetBuilder b("AlexNet", kImageNet224);
  b.conv(96, 11, 4, 2, "conv1")
      .maxpool(3, 2, 0, "pool1")
      .conv(256, 5, 1, 2, "conv2")
      .maxpool(3, 2, 0, "pool2")
      .conv(384, 3, 1, 1, "conv3")
      .conv(384, 3, 1, 1, "conv4")
      .conv(256, 3, 1, 1, "conv5")
      .maxpool(3, 2, 0, "pool5")
      .fc(4096, false, "fc6")
      .fc(4096, false, "fc7")
      .fc(1000, true, "fc8");
  return std::move(b).build();
}

namespace {
/// Shared VGG scaffold: conv counts per 64/128/256/512/512 stage.
NetworkDesc make_vgg(const char* name,
                     const std::array<std::size_t, 5>& convs_per_stage) {
  constexpr std::array<std::size_t, 5> kChannels{64, 128, 256, 512, 512};
  NetBuilder b(name, kImageNet224);
  for (std::size_t stage = 0; stage < 5; ++stage) {
    for (std::size_t i = 0; i < convs_per_stage[stage]; ++i) {
      b.conv(kChannels[stage], 3, 1, 1,
             "conv" + std::to_string(stage + 1) + "_" + std::to_string(i + 1));
    }
    b.maxpool(2, 2, 0, "pool" + std::to_string(stage + 1));
  }
  b.fc(4096, false, "fc6").fc(4096, false, "fc7").fc(1000, true, "fc8");
  return std::move(b).build();
}
}  // namespace

NetworkDesc make_vgg13() { return make_vgg("VGG-13", {2, 2, 2, 2, 2}); }
NetworkDesc make_vgg16() { return make_vgg("VGG-16", {2, 2, 3, 3, 3}); }
NetworkDesc make_vgg19() { return make_vgg("VGG-19", {2, 2, 4, 4, 4}); }

NetworkDesc make_mobilenet() {
  // MobileNet v1 (width multiplier 1.0): depthwise and pointwise halves are
  // separate schedulable layers — 28 weight layers total as counted in the
  // paper's motivational example.
  NetBuilder b("MobileNet", kImageNet224);
  b.conv(32, 3, 2, 1, "conv1");
  const struct {
    std::size_t stride, out_ch;
  } blocks[] = {{1, 64},  {2, 128}, {1, 128}, {2, 256}, {1, 256},
                {2, 512}, {1, 512}, {1, 512}, {1, 512}, {1, 512},
                {1, 512}, {2, 1024}, {1, 1024}};
  std::size_t i = 0;
  for (const auto& blk : blocks) {
    ++i;
    b.depthwise(blk.stride, "dw" + std::to_string(i));
    b.pointwise(blk.out_ch, "pw" + std::to_string(i));
  }
  b.global_avgpool("gap").fc(1000, true, "fc");
  return std::move(b).build();
}

NetworkDesc make_squeezenet() {
  // SqueezeNet 1.0. Squeeze and expand stages are separate schedulable layers
  // (the paper's example splits SqueezeNet after layer 18 of 19).
  NetBuilder b("SqueezeNet", kImageNet224);
  b.conv(96, 7, 2, 0, "conv1").maxpool(3, 2, 0, "pool1");
  const struct {
    std::size_t squeeze, expand;
    const char* name;
  } fires[] = {{16, 64, "fire2"},  {16, 64, "fire3"},  {32, 128, "fire4"},
               {32, 128, "fire5"}, {48, 192, "fire6"}, {48, 192, "fire7"},
               {64, 256, "fire8"}, {64, 256, "fire9"}};
  std::size_t idx = 0;
  for (const auto& f : fires) {
    b.fire_squeeze(f.squeeze, std::string(f.name) + "_squeeze");
    b.fire_expand(f.expand, f.expand, std::string(f.name) + "_expand");
    ++idx;
    if (idx == 3) b.maxpool(3, 2, 0, "pool4");
    if (idx == 7) b.maxpool(3, 2, 0, "pool8");
  }
  b.conv(1000, 1, 1, 0, "conv10").global_avgpool("gap");
  return std::move(b).build();
}

}  // namespace omniboost::models
