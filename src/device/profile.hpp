#pragma once
/// \file profile.hpp
/// Human-editable device profiles: save/load a DeviceSpec as an INI-style
/// text file. The reproduction ships a calibrated HiKey970
/// (make_hikey970()), but the framework is board-agnostic — a user
/// calibrating a different SoC edits a profile instead of recompiling.
///
/// Format: `[section]` headers and `key = value` lines; `#`/`;` start
/// comments. Sections: [device], [link], [component.gpu],
/// [component.big], [component.little]. Keys omitted from the file keep
/// the calibrated HiKey970 defaults; unknown sections or keys are errors
/// (they are almost always typos in a calibration campaign).

#include <iosfwd>
#include <string>

#include "device/device.hpp"

namespace omniboost::device {

/// Writes \p spec as a complete profile (every key explicit).
void save_profile(const DeviceSpec& spec, std::ostream& os);
void save_profile_file(const DeviceSpec& spec, const std::string& path);

/// Parses a profile, starting from make_hikey970() defaults. Throws
/// std::runtime_error on malformed lines, unknown sections/keys, or
/// non-numeric values.
DeviceSpec load_profile(std::istream& is);
DeviceSpec load_profile_file(const std::string& path);

}  // namespace omniboost::device
