#pragma once
/// \file local_search.hpp
/// Stochastic single-point search baselines for the design-space exploration
/// ablation: random search, restarting hill climbing, and simulated
/// annealing. All three consume the same per-workload mapping evaluator as
/// the MCTS (estimator, DES oracle, or analytic oracle — see
/// search_common.hpp) and the same evaluation budget, which makes the
/// bench_ablation_search comparison an apples-to-apples answer to "is the
/// tree search actually buying anything over naive sampling?".
///
/// The move set operates on pipeline segments, so every candidate respects
/// the paper's stage limit by construction: reassign one segment's
/// component, shift one segment boundary, or split a segment when stages
/// remain below the cap.

#include <cstdint>

#include "core/scheduler.hpp"
#include "models/zoo.hpp"
#include "sched/search_common.hpp"
#include "util/rng.hpp"

namespace omniboost::sched {

/// Budgeted stochastic search controls.
struct LocalSearchConfig {
  std::size_t budget = 500;      ///< evaluator queries (matches MCTS budget)
  std::size_t stage_limit = 3;   ///< x = number of computing components
  std::uint64_t seed = 5;
};

/// Segment-level neighbourhood move: mutates one DNN's assignment in place.
/// The result always satisfies the stage limit. Exposed for unit tests.
void perturb_assignment(util::Rng& rng, sim::Assignment& a,
                        std::size_t stage_limit);

/// Pure random sampling: \p budget independent stage-limited mappings, keep
/// the best. The zero-intelligence floor every informed search must beat.
class RandomSearchScheduler final : public core::IScheduler {
 public:
  RandomSearchScheduler(std::string name, const models::ModelZoo& zoo,
                        WorkloadEvaluatorFactory evaluator,
                        LocalSearchConfig config = {});

  std::string name() const override { return name_; }
  core::ScheduleResult schedule(const workload::Workload& w) override;

 private:
  std::string name_;
  const models::ModelZoo* zoo_;
  WorkloadEvaluatorFactory factory_;
  LocalSearchConfig config_;
};

/// First-improvement hill climbing with random restarts.
struct HillClimbConfig : LocalSearchConfig {
  /// Consecutive rejected moves before restarting from a fresh random
  /// mapping.
  std::size_t stall_limit = 40;
};

class HillClimbScheduler final : public core::IScheduler {
 public:
  HillClimbScheduler(std::string name, const models::ModelZoo& zoo,
                     WorkloadEvaluatorFactory evaluator,
                     HillClimbConfig config = {});

  std::string name() const override { return name_; }
  core::ScheduleResult schedule(const workload::Workload& w) override;

 private:
  std::string name_;
  const models::ModelZoo* zoo_;
  WorkloadEvaluatorFactory factory_;
  HillClimbConfig config_;
};

/// Simulated annealing with geometric cooling and relative-delta Metropolis
/// acceptance.
struct AnnealingConfig : LocalSearchConfig {
  double initial_temperature = 0.30;  ///< relative-improvement units
  double final_temperature = 0.005;
};

class SimulatedAnnealingScheduler final : public core::IScheduler {
 public:
  SimulatedAnnealingScheduler(std::string name, const models::ModelZoo& zoo,
                              WorkloadEvaluatorFactory evaluator,
                              AnnealingConfig config = {});

  std::string name() const override { return name_; }
  core::ScheduleResult schedule(const workload::Workload& w) override;

 private:
  std::string name_;
  const models::ModelZoo* zoo_;
  WorkloadEvaluatorFactory factory_;
  AnnealingConfig config_;
};

}  // namespace omniboost::sched
