/// \file bench_runtime_overhead.cpp
/// Regenerates the §V-B run-time comparison with google-benchmark: the
/// decision latency of each scheduler on a fixed 4-DNN mix, plus the one-off
/// costs the paper discusses (MOSAIC's 14k-point data collection, the GA's
/// per-mix on-board retraining, OmniBoost's 500 estimator queries).
///
/// Paper shape to reproduce: Baseline ~ 0; MOSAIC inference fast (~1 s on
/// the board) but with a large offline collection cost; GA minutes per mix
/// (board time); OmniBoost a constant 500-query search (~30 s on the board,
/// milliseconds here because the estimator is native C++ rather than a
/// Python stack).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <limits>

#include "bench_common.hpp"

using namespace omniboost;

namespace {

bench::Context& ctx() {
  static bench::Context c;
  return c;
}

const workload::Workload& mix() {
  static const workload::Workload w{
      {models::ModelId::kVgg19, models::ModelId::kResNet50,
       models::ModelId::kInceptionV3, models::ModelId::kMobileNet}};
  return w;
}

void BM_BaselineDecision(benchmark::State& state) {
  auto sched = sched::AllOnScheduler::gpu_baseline(ctx().zoo());
  for (auto _ : state) benchmark::DoNotOptimize(sched.schedule(mix()));
}
BENCHMARK(BM_BaselineDecision);

void BM_MosaicDecision(benchmark::State& state) {
  static sched::MosaicScheduler sched(ctx().zoo(), ctx().device());
  for (auto _ : state) benchmark::DoNotOptimize(sched.schedule(mix()));
}
BENCHMARK(BM_MosaicDecision)->Unit(benchmark::kMillisecond);

void BM_GaDecision(benchmark::State& state) {
  static sched::GaScheduler sched(ctx().zoo(), ctx().device());
  for (auto _ : state) benchmark::DoNotOptimize(sched.schedule(mix()));
}
BENCHMARK(BM_GaDecision)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_OmniBoostDecision(benchmark::State& state) {
  static core::OmniBoostScheduler sched(ctx().zoo(), ctx().embedding(),
                                        ctx().estimator());
  for (auto _ : state) benchmark::DoNotOptimize(sched.schedule(mix()));
}
BENCHMARK(BM_OmniBoostDecision)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_EstimatorQuery(benchmark::State& state) {
  auto est = ctx().estimator();
  const auto counts = mix().layer_counts(ctx().zoo());
  const auto input = ctx().embedding().masked_input(
      mix(), sim::Mapping::all_on(counts, device::ComponentId::kGpu));
  for (auto _ : state) benchmark::DoNotOptimize(est->predict_reward(input));
}
BENCHMARK(BM_EstimatorQuery)->Unit(benchmark::kMicrosecond);

void BM_EstimatorQueryBatch16(benchmark::State& state) {
  // 16 queries amortized over one batched forward pass; compare the
  // per-iteration time against 16x BM_EstimatorQuery.
  auto est = ctx().estimator();
  const auto counts = mix().layer_counts(ctx().zoo());
  std::vector<tensor::Tensor> inputs(
      16, ctx().embedding().masked_input(
              mix(), sim::Mapping::all_on(counts, device::ComponentId::kGpu)));
  for (auto _ : state) benchmark::DoNotOptimize(est->predict_rewards(inputs));
}
BENCHMARK(BM_EstimatorQueryBatch16)->Unit(benchmark::kMicrosecond);

void BM_BoardMeasurement(benchmark::State& state) {
  // One GA fitness evaluation = one steady-state board simulation.
  const auto nets = mix().resolve(ctx().zoo());
  const auto m = sim::Mapping::all_on(mix().layer_counts(ctx().zoo()),
                                      device::ComponentId::kGpu);
  for (auto _ : state)
    benchmark::DoNotOptimize(ctx().board().simulate(nets, m));
}
BENCHMARK(BM_BoardMeasurement)->Unit(benchmark::kMillisecond);

}  // namespace

/// Decision latency of one OmniBoost evaluate-path variant: the minimum
/// over \p repeats decisions at a fixed rollout budget (min, not mean — the
/// decision is deterministic, so the minimum is the run least disturbed by
/// background load).
void add_variant_row(util::Table& t, const char* label, std::size_t batch,
                     bool cache, std::size_t budget, std::size_t repeats,
                     double* scalar_ms) {
  core::OmniBoostConfig cfg;
  cfg.mcts.budget = budget;
  cfg.batch_size = batch;
  cfg.cache = cache;
  core::OmniBoostScheduler sched(ctx().zoo(), ctx().embedding(),
                                 ctx().estimator(), cfg);
  double seconds = std::numeric_limits<double>::infinity();
  core::ScheduleResult r;
  for (std::size_t i = 0; i < repeats; ++i) {
    r = sched.schedule(mix());
    seconds = std::min(seconds, r.decision_seconds);
  }
  const double ms = 1e3 * seconds;
  if (*scalar_ms == 0.0) *scalar_ms = ms;  // first row is the reference
  t.add_row({label, std::to_string(batch), cache ? "on" : "off",
             util::fmt(ms, 1), std::to_string(r.evaluations),
             std::to_string(r.cache_hits), util::fmt(*scalar_ms / ms, 2)});
}

int main(int argc, char** argv) {
  bench::banner("Run-time performance evaluation", "Section V-B", 7);

  // One-off cost accounting (the part google-benchmark cannot show).
  std::printf("training the throughput estimator (one-off, design time)...\n");
  ctx().train_estimator();

  sched::MosaicScheduler mosaic(ctx().zoo(), ctx().device());
  sched::GaScheduler ga(ctx().zoo(), ctx().device());
  core::OmniBoostScheduler omni(ctx().zoo(), ctx().embedding(),
                                ctx().estimator());
  const auto rg = ga.schedule(mix());
  const auto ro = omni.schedule(mix());

  util::Table t({"scheduler", "decision model", "one-off / per-mix cost",
                 "evaluator queries"});
  t.add_row({"Baseline", "none", "none", "0"});
  t.add_row({"MOSAIC", "linear regression",
             "offline collection: " +
                 std::to_string(mosaic.training_samples()) + " samples, " +
                 util::fmt(mosaic.training_board_seconds() / 60.0, 1) +
                 " board-minutes",
             "1 per DNN"});
  t.add_row({"GA", "on-board measurements",
             "per mix: " + util::fmt(rg.board_seconds / 60.0, 1) +
                 " board-minutes (paper: ~5 min)",
             std::to_string(rg.evaluations)});
  t.add_row({"OmniBoost", "CNN estimator",
             "500 estimator queries per mix (paper: ~30 s)",
             std::to_string(ro.evaluations + ro.cache_hits)});
  bench::report("runtime_overhead", t);

  // Evaluate-path ablation: the same 500-rollout decision through the
  // scalar/sequential paper path versus the batched forward
  // (OmniBoostConfig::batch_size) and the evaluation memo
  // (OmniBoostConfig::cache). Equal rollout budget everywhere; the decision
  // differs only where wider waves legitimately explore differently.
  const std::size_t budget = bench::scaled(500, 40);
  const std::size_t repeats = bench::scaled(5, 1);
  std::printf("\nevaluate-path variants (budget %zu, min of %zu decisions):\n",
              budget, repeats);
  util::Table bt({"variant", "batch", "cache", "decision (ms)", "evaluations",
                  "cache hits", "speedup"});
  double scalar_ms = 0.0;
  add_variant_row(bt, "scalar (paper path)", 1, false, budget, repeats,
                  &scalar_ms);
  add_variant_row(bt, "scalar+cache", 1, true, budget, repeats, &scalar_ms);
  add_variant_row(bt, "batched", 16, false, budget, repeats, &scalar_ms);
  add_variant_row(bt, "batched+cache", 16, true, budget, repeats, &scalar_ms);
  bench::report("runtime_overhead_batching", bt);

  if (bench::smoke()) {
    std::printf("\n[smoke] skipping google-benchmark micro-benchmarks\n");
    return 0;
  }
  std::printf("\nmicro-benchmarks (decision latency on this machine):\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
