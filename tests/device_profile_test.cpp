// Device profiles: INI-style save/load of DeviceSpec — the calibration
// interface for boards other than the shipped HiKey970.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "device/cost_model.hpp"
#include "device/profile.hpp"
#include "models/zoo.hpp"

namespace {

using namespace omniboost;
using device::ComponentId;
using device::DeviceSpec;

TEST(DeviceProfile, RoundTripPreservesEveryField) {
  DeviceSpec original = device::make_hikey970();
  // Perturb every field so defaults cannot mask a lost key.
  original.name = "TestBoard";
  original.dram_bw_gbps = 12.5;
  original.memory_budget_bytes = 2.5e9;
  original.per_stream_overhead_bytes = 1.25e8;
  original.per_inference_overhead_s = 0.0125;
  original.link.bandwidth_gbps = 7.75;
  original.link.latency_s = 2.5e-4;
  for (std::size_t i = 0; i < device::kNumComponents; ++i) {
    auto& c = original.components[i];
    c.name = "comp" + std::to_string(i);
    c.peak_gflops = 100.0 + static_cast<double>(i);
    c.mem_bw_gbps = 10.0 + static_cast<double>(i);
    c.kernel_overhead_s = 1e-5 * static_cast<double>(i + 1);
    c.efficiency.gemm = 0.41 + 0.01 * static_cast<double>(i);
    c.efficiency.direct_conv = 0.31 + 0.01 * static_cast<double>(i);
    c.efficiency.depthwise = 0.21 + 0.01 * static_cast<double>(i);
    c.efficiency.elementwise = 0.11 + 0.01 * static_cast<double>(i);
    c.working_set_budget_bytes = 1e8 * static_cast<double>(i + 1);
    c.contention_exponent = 1.5 + 0.25 * static_cast<double>(i);
  }

  std::stringstream buf;
  device::save_profile(original, buf);
  const DeviceSpec restored = device::load_profile(buf);

  EXPECT_EQ(restored.name, original.name);
  EXPECT_DOUBLE_EQ(restored.dram_bw_gbps, original.dram_bw_gbps);
  EXPECT_DOUBLE_EQ(restored.memory_budget_bytes, original.memory_budget_bytes);
  EXPECT_DOUBLE_EQ(restored.per_stream_overhead_bytes,
                   original.per_stream_overhead_bytes);
  EXPECT_DOUBLE_EQ(restored.per_inference_overhead_s,
                   original.per_inference_overhead_s);
  EXPECT_DOUBLE_EQ(restored.link.bandwidth_gbps, original.link.bandwidth_gbps);
  EXPECT_DOUBLE_EQ(restored.link.latency_s, original.link.latency_s);
  for (std::size_t i = 0; i < device::kNumComponents; ++i) {
    const auto& a = original.components[i];
    const auto& b = restored.components[i];
    EXPECT_EQ(b.name, a.name);
    EXPECT_DOUBLE_EQ(b.peak_gflops, a.peak_gflops);
    EXPECT_DOUBLE_EQ(b.mem_bw_gbps, a.mem_bw_gbps);
    EXPECT_DOUBLE_EQ(b.kernel_overhead_s, a.kernel_overhead_s);
    EXPECT_DOUBLE_EQ(b.efficiency.gemm, a.efficiency.gemm);
    EXPECT_DOUBLE_EQ(b.efficiency.direct_conv, a.efficiency.direct_conv);
    EXPECT_DOUBLE_EQ(b.efficiency.depthwise, a.efficiency.depthwise);
    EXPECT_DOUBLE_EQ(b.efficiency.elementwise, a.efficiency.elementwise);
    EXPECT_DOUBLE_EQ(b.working_set_budget_bytes, a.working_set_budget_bytes);
    EXPECT_DOUBLE_EQ(b.contention_exponent, a.contention_exponent);
  }
}

TEST(DeviceProfile, PartialProfileKeepsHikeyDefaults) {
  std::stringstream buf(
      "# my board\n"
      "[device]\n"
      "name = CustomBoard\n"
      "dram_bw_gbps = 25.0\n"
      "[component.gpu]\n"
      "peak_gflops = 500\n");
  const DeviceSpec spec = device::load_profile(buf);
  const DeviceSpec defaults = device::make_hikey970();

  EXPECT_EQ(spec.name, "CustomBoard");
  EXPECT_DOUBLE_EQ(spec.dram_bw_gbps, 25.0);
  EXPECT_DOUBLE_EQ(spec.component(ComponentId::kGpu).peak_gflops, 500.0);
  // Untouched keys: calibrated defaults.
  EXPECT_DOUBLE_EQ(spec.memory_budget_bytes, defaults.memory_budget_bytes);
  EXPECT_DOUBLE_EQ(spec.component(ComponentId::kBigCpu).peak_gflops,
                   defaults.component(ComponentId::kBigCpu).peak_gflops);
  EXPECT_EQ(spec.component(ComponentId::kGpu).name,
            defaults.component(ComponentId::kGpu).name);
}

TEST(DeviceProfile, CommentsAndWhitespaceTolerated) {
  std::stringstream buf(
      "\n"
      "  ; full-line comment\n"
      "  [device]   \n"
      "   name =   Spacey Board  # trailing comment\n"
      "\tdram_bw_gbps\t=\t9.5\n");
  const DeviceSpec spec = device::load_profile(buf);
  EXPECT_EQ(spec.name, "Spacey Board");
  EXPECT_DOUBLE_EQ(spec.dram_bw_gbps, 9.5);
}

TEST(DeviceProfile, DiagnosesUserErrorsWithLineNumbers) {
  const auto expect_error = [](const char* text, const char* fragment) {
    std::stringstream buf(text);
    try {
      device::load_profile(buf);
      FAIL() << "no error for: " << text;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << e.what();
    }
  };
  expect_error("[devize]\n", "unknown section");
  expect_error("[component.npu]\n", "unknown component");
  expect_error("[device]\nmistyped_key = 1\n", "unknown [device] key");
  expect_error("[device]\ndram_bw_gbps = fast\n", "expected a number");
  expect_error("[device]\ndram_bw_gbps = 9.5x\n", "trailing characters");
  expect_error("dram_bw_gbps = 9.5\n", "outside any section");
  expect_error("[device\n", "unterminated section");
  expect_error("[link]\njust-a-token\n", "expected 'key = value'");
  // Error text carries the offending line number.
  expect_error("[device]\n\n\ndram_bw_gbps = bad\n", "line 4");
}

TEST(DeviceProfile, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ob_device_profile.ini")
          .string();
  DeviceSpec original = device::make_hikey970();
  original.dram_bw_gbps = 11.0;
  device::save_profile_file(original, path);
  const DeviceSpec restored = device::load_profile_file(path);
  EXPECT_DOUBLE_EQ(restored.dram_bw_gbps, 11.0);
  EXPECT_EQ(restored.name, original.name);
  std::remove(path.c_str());
}

TEST(DeviceProfile, MissingFileThrows) {
  EXPECT_THROW(device::load_profile_file("/nonexistent/board.ini"),
               std::runtime_error);
}

TEST(DeviceProfile, LoadedSpecDrivesTheSimulator) {
  // End-to-end: a profile with a crippled GPU must change scheduling
  // economics (the GPU-only mapping loses its advantage).
  std::stringstream buf(
      "[component.gpu]\n"
      "peak_gflops = 1.0\n"
      "mem_bw_gbps = 0.5\n");
  const DeviceSpec crippled = device::load_profile(buf);
  const DeviceSpec normal = device::make_hikey970();

  const device::CostModel slow(crippled);
  const device::CostModel fast(normal);
  const models::ModelZoo zoo;
  const auto& layer = zoo.network(models::ModelId::kAlexNet).layers[0];
  EXPECT_GT(slow.layer_time(layer, ComponentId::kGpu),
            fast.layer_time(layer, ComponentId::kGpu));
  // CPU timing untouched.
  EXPECT_DOUBLE_EQ(slow.layer_time(layer, ComponentId::kBigCpu),
                   fast.layer_time(layer, ComponentId::kBigCpu));
}

}  // namespace
