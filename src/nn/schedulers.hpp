#pragma once
/// \file schedulers.hpp
/// Learning-rate schedules driving Optimizer::set_lr between epochs.
/// Schedules are pure functions of the epoch index, so they can be unit
/// tested without running an optimizer and replayed deterministically.

#include <cstddef>

#include "nn/optim.hpp"

namespace omniboost::nn {

/// Interface: learning rate to use *for* epoch \p epoch (0-based).
class LrScheduler {
 public:
  virtual ~LrScheduler() = default;

  virtual float lr_at(std::size_t epoch) const = 0;

  /// Convenience: applies lr_at(epoch) to an optimizer.
  void apply(Optimizer& opt, std::size_t epoch) const {
    opt.set_lr(lr_at(epoch));
  }
};

/// Constant schedule (the default trainer behaviour).
class ConstantLr final : public LrScheduler {
 public:
  explicit ConstantLr(float lr);
  float lr_at(std::size_t epoch) const override;

 private:
  float lr_;
};

/// Step decay: lr * gamma^(epoch / step_size).
class StepLr final : public LrScheduler {
 public:
  StepLr(float base_lr, std::size_t step_size, float gamma = 0.1f);
  float lr_at(std::size_t epoch) const override;

 private:
  float base_lr_, gamma_;
  std::size_t step_size_;
};

/// Cosine annealing from base_lr to min_lr over max_epochs, with optional
/// linear warm-up for the first warmup_epochs.
class CosineLr final : public LrScheduler {
 public:
  CosineLr(float base_lr, std::size_t max_epochs, float min_lr = 0.0f,
           std::size_t warmup_epochs = 0);
  float lr_at(std::size_t epoch) const override;

 private:
  float base_lr_, min_lr_;
  std::size_t max_epochs_, warmup_epochs_;
};

}  // namespace omniboost::nn
