// workload::Scenario: generator determinism under fork_stream, generator
// invariants, trace round-trips, validation errors, and mix replay.

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace omniboost;
using models::ModelId;
using workload::Scenario;
using workload::ScenarioConfig;
using workload::ScenarioEvent;
using workload::ScenarioEventKind;

TEST(ScenarioGenerator, DeterministicUnderForkStream) {
  ScenarioConfig cfg;
  cfg.events = 20;
  cfg.max_concurrent = 5;
  for (std::uint64_t index : {0ull, 3ull, 17ull}) {
    util::Rng a(util::fork_stream(99, index));
    util::Rng b(util::fork_stream(99, index));
    EXPECT_EQ(workload::random_scenario(a, cfg),
              workload::random_scenario(b, cfg))
        << "stream " << index;
  }
  // Distinct stream indices give distinct scenarios.
  util::Rng s0(util::fork_stream(99, 0));
  util::Rng s1(util::fork_stream(99, 1));
  EXPECT_NE(workload::random_scenario(s0, cfg),
            workload::random_scenario(s1, cfg));
}

TEST(ScenarioGenerator, RespectsConcurrencyBandAndLegality) {
  ScenarioConfig cfg;
  cfg.events = 40;
  cfg.min_concurrent = 2;
  cfg.max_concurrent = 4;
  cfg.depart_bias = 0.5;
  util::Rng rng(7);
  const Scenario s = workload::random_scenario(rng, cfg);
  ASSERT_EQ(s.size(), 40u);
  EXPECT_EQ(s.events().front().time_s, 0.0);
  EXPECT_EQ(s.events().front().kind, ScenarioEventKind::kArrive);

  std::set<ModelId> present;
  double prev_t = 0.0;
  for (const ScenarioEvent& e : s.events()) {
    EXPECT_GE(e.time_s, prev_t);
    prev_t = e.time_s;
    if (e.kind == ScenarioEventKind::kArrive) {
      EXPECT_TRUE(present.insert(e.model).second);  // was absent
      EXPECT_LE(present.size(), cfg.max_concurrent);
    } else {
      EXPECT_EQ(present.erase(e.model), 1u);  // was present
      EXPECT_GE(present.size(), cfg.min_concurrent);
    }
  }
  EXPECT_LE(s.peak_concurrency(), cfg.max_concurrent);
}

TEST(ScenarioGenerator, RejectsZeroWidthBandThatWouldFreeze) {
  ScenarioConfig cfg;
  cfg.min_concurrent = 2;
  cfg.max_concurrent = 2;
  cfg.events = 6;  // more events than the band can ever legally produce
  util::Rng rng(1);
  EXPECT_THROW(workload::random_scenario(rng, cfg), std::invalid_argument);
  // Filling the band exactly is fine: two arrivals, then stop.
  cfg.events = 2;
  const Scenario s = workload::random_scenario(rng, cfg);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.peak_concurrency(), 2u);
}

TEST(ScenarioTrace, RoundTripsBitExactly) {
  ScenarioConfig cfg;
  cfg.events = 25;
  cfg.max_concurrent = 5;
  cfg.depart_bias = 0.5;
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    util::Rng rng(seed);
    const Scenario original = workload::random_scenario(rng, cfg);
    const std::string trace = workload::serialize_scenario(original);
    const Scenario parsed = workload::parse_scenario(trace);
    EXPECT_EQ(original, parsed) << "seed " << seed;
    // Idempotent: serializing the parse reproduces the text.
    EXPECT_EQ(trace, workload::serialize_scenario(parsed));
  }
}

TEST(ScenarioTrace, ParsesCommentsBlanksAndNameVariants) {
  const Scenario s = workload::parse_scenario(
      "# a comment\n"
      "\n"
      "at 0 arrive vgg19\n"
      "at 1.5 arrive AlexNet\n"
      "at 2.25 depart VGG-19\n");
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.events()[0].model, ModelId::kVgg19);
  EXPECT_EQ(s.events()[1].time_s, 1.5);
  EXPECT_EQ(s.events()[2].kind, ScenarioEventKind::kDepart);
}

TEST(ScenarioTrace, RejectsMalformedLines) {
  EXPECT_THROW(workload::parse_scenario("arrive 0 AlexNet\n"),
               std::invalid_argument);
  EXPECT_THROW(workload::parse_scenario("at x arrive AlexNet\n"),
               std::invalid_argument);
  EXPECT_THROW(workload::parse_scenario("at 0 vanish AlexNet\n"),
               std::invalid_argument);
  EXPECT_THROW(workload::parse_scenario("at 0 arrive NotANet\n"),
               std::invalid_argument);
  EXPECT_THROW(workload::parse_scenario("at 0 arrive AlexNet extra\n"),
               std::invalid_argument);
}

TEST(ScenarioValidation, RejectsIllegalEventSequences) {
  const auto arrive = [](double t, ModelId m) {
    return ScenarioEvent{t, ScenarioEventKind::kArrive, m};
  };
  const auto depart = [](double t, ModelId m) {
    return ScenarioEvent{t, ScenarioEventKind::kDepart, m};
  };
  // Double arrival.
  EXPECT_THROW(Scenario({arrive(0, ModelId::kAlexNet),
                         arrive(1, ModelId::kAlexNet)}),
               std::invalid_argument);
  // Departure of an absent model.
  EXPECT_THROW(Scenario({arrive(0, ModelId::kAlexNet),
                         depart(1, ModelId::kVgg16)}),
               std::invalid_argument);
  // Time going backwards.
  EXPECT_THROW(Scenario({arrive(1, ModelId::kAlexNet),
                         arrive(0.5, ModelId::kVgg16)}),
               std::invalid_argument);
  // Negative time.
  EXPECT_THROW(Scenario({arrive(-1, ModelId::kAlexNet)}),
               std::invalid_argument);
}

TEST(ScenarioReplay, MixAfterTracksArrivalOrderAndDepartures) {
  const Scenario s = workload::parse_scenario(
      "at 0 arrive VGG-19\n"
      "at 1 arrive AlexNet\n"
      "at 2 arrive MobileNet\n"
      "at 3 depart VGG-19\n"
      "at 4 depart AlexNet\n"
      "at 5 depart MobileNet\n");
  EXPECT_EQ(s.mix_after(2).describe(), "VGG-19+AlexNet+MobileNet");
  EXPECT_EQ(s.mix_after(3).describe(), "AlexNet+MobileNet");
  EXPECT_EQ(s.mix_after(5).size(), 0u);  // fully drained
  EXPECT_EQ(s.peak_concurrency(), 3u);
}

}  // namespace
