/// \file bench_estimator_accuracy.cpp
/// The paper's "highly accurate performance estimator" claim (§I, §IV-B):
/// on held-out random workloads the trained CNN's reward prediction is
/// compared against the DES board measurement — mean absolute percentage
/// error and Spearman rank correlation (what actually matters to a search
/// that only ranks candidates). A linear probe on the same masked embedding
/// features is the comparison point (the MOSAIC-style alternative).

#include <algorithm>
#include <cmath>
#include <numeric>

#include "bench_common.hpp"
#include "core/dataset.hpp"

using namespace omniboost;

namespace {

double spearman(const std::vector<double>& a, const std::vector<double>& b) {
  const std::size_t n = a.size();
  const auto ranks = [n](const std::vector<double>& v) {
    std::vector<std::size_t> idx(n);
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t x, std::size_t y) { return v[x] < v[y]; });
    std::vector<double> r(n);
    for (std::size_t i = 0; i < n; ++i) r[idx[i]] = static_cast<double>(i);
    return r;
  };
  const std::vector<double> ra = ranks(a), rb = ranks(b);
  const double mean = (static_cast<double>(n) - 1.0) / 2.0;
  double num = 0.0, da = 0.0, db = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    num += (ra[i] - mean) * (rb[i] - mean);
    da += (ra[i] - mean) * (ra[i] - mean);
    db += (rb[i] - mean) * (rb[i] - mean);
  }
  return num / std::sqrt(da * db);
}

/// Least-squares linear probe on the flattened masked embedding (feature =
/// per-component mass, the information MOSAIC-style linear models consume).
struct LinearProbe {
  std::array<double, 4> w{};  // 3 masses + intercept

  static std::array<double, 4> features(const tensor::Tensor& x) {
    std::array<double, 4> f{0.0, 0.0, 0.0, 1.0};
    const std::size_t slice = x.size() / 3;
    for (std::size_t c = 0; c < 3; ++c)
      for (std::size_t i = 0; i < slice; ++i)
        f[c] += static_cast<double>(x[c * slice + i]);
    return f;
  }

  void fit(const core::SampleSet& data) {
    // Normal equations on the 4-dim feature space.
    std::array<std::array<double, 4>, 4> ata{};
    std::array<double, 4> atb{};
    for (std::size_t s = 0; s < data.size(); ++s) {
      const auto f = features(data.inputs[s]);
      const double y =
          (data.targets[s][0] + data.targets[s][1] + data.targets[s][2]) / 3.0;
      for (std::size_t i = 0; i < 4; ++i) {
        atb[i] += f[i] * y;
        for (std::size_t j = 0; j < 4; ++j) ata[i][j] += f[i] * f[j];
      }
    }
    // Gaussian elimination with partial pivoting.
    for (std::size_t col = 0; col < 4; ++col) {
      std::size_t piv = col;
      for (std::size_t r = col + 1; r < 4; ++r)
        if (std::fabs(ata[r][col]) > std::fabs(ata[piv][col])) piv = r;
      std::swap(ata[col], ata[piv]);
      std::swap(atb[col], atb[piv]);
      const double d = ata[col][col];
      if (std::fabs(d) < 1e-12) continue;
      for (std::size_t r = 0; r < 4; ++r) {
        if (r == col) continue;
        const double m = ata[r][col] / d;
        for (std::size_t c2 = 0; c2 < 4; ++c2) ata[r][c2] -= m * ata[col][c2];
        atb[r] -= m * atb[col];
      }
    }
    for (std::size_t i = 0; i < 4; ++i)
      w[i] = std::fabs(ata[i][i]) > 1e-12 ? atb[i] / ata[i][i] : 0.0;
  }

  double predict(const tensor::Tensor& x) const {
    const auto f = features(x);
    double y = 0.0;
    for (std::size_t i = 0; i < 4; ++i) y += w[i] * f[i];
    return y;
  }
};

}  // namespace

int main() {
  constexpr std::uint64_t kSeed = 43;
  bench::banner("Estimator accuracy — CNN vs linear probe vs board",
                "Sections I and IV-B (accuracy claim)", kSeed);

  bench::Context ctx;
  std::printf("training the throughput estimator (calibrated campaign, see EXPERIMENTS.md)...\n\n");
  ctx.train_estimator();

  // Held-out evaluation set: fresh seed, never seen in training.
  core::DatasetConfig dc;
  dc.samples = 150;
  dc.seed = kSeed + 100;
  const core::SampleSet held_out =
      core::generate_dataset(ctx.zoo(), ctx.embedding(), ctx.board(), dc);

  // Linear probe trained on the same data the CNN saw.
  core::DatasetConfig train_dc;
  train_dc.samples = 1500;
  train_dc.seed = 42;  // Context::train_estimator default campaign
  const core::SampleSet train_set =
      core::generate_dataset(ctx.zoo(), ctx.embedding(), ctx.board(), train_dc);
  LinearProbe probe;
  probe.fit(train_set);

  std::vector<double> truth, cnn, lin;
  for (std::size_t s = 0; s < held_out.size(); ++s) {
    const double y = (held_out.targets[s][0] + held_out.targets[s][1] +
                      held_out.targets[s][2]) / 3.0;
    truth.push_back(y);
    cnn.push_back(ctx.estimator()->predict_reward(held_out.inputs[s]));
    lin.push_back(probe.predict(held_out.inputs[s]));
  }

  const auto mape = [&](const std::vector<double>& pred) {
    double acc = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
      if (truth[i] <= 1e-9) continue;
      acc += std::fabs(pred[i] - truth[i]) / truth[i];
      ++n;
    }
    return 100.0 * acc / static_cast<double>(n);
  };

  util::Table t({"predictor", "MAPE vs board", "Spearman rank corr"});
  t.add_row({"CNN estimator (OmniBoost)", util::fmt(mape(cnn), 1) + "%",
             util::fmt(spearman(truth, cnn), 3)});
  t.add_row({"linear probe (MOSAIC-style)", util::fmt(mape(lin), 1) + "%",
             util::fmt(spearman(truth, lin), 3)});
  bench::report("estimator_accuracy", t);

  std::printf("\n%zu held-out workloads (mixes of 1-5 DNNs, random "
              "stage-limited mappings)\n", held_out.size());
  std::printf("paper check: the CNN ranks candidate mappings far better "
              "than a linear model on the same features — rank quality is "
              "what the MCTS consumes\n");
  return 0;
}
