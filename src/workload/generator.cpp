#include "workload/generator.hpp"

#include <algorithm>
#include <numeric>

#include "util/require.hpp"

namespace omniboost::workload {

using device::ComponentId;
using device::kNumComponents;

Workload random_mix(util::Rng& rng, std::size_t n) {
  OB_REQUIRE(n >= 1 && n <= models::kNumModels,
             "random_mix: size must be within the dataset");
  std::vector<models::ModelId> pool(models::kAllModels.begin(),
                                    models::kAllModels.end());
  rng.shuffle(pool);
  pool.resize(n);
  return Workload{std::move(pool)};
}

sim::Assignment random_assignment(util::Rng& rng, std::size_t layers,
                                  std::size_t max_stages) {
  OB_REQUIRE(layers > 0, "random_assignment: no layers");
  OB_REQUIRE(max_stages >= 1, "random_assignment: max_stages must be >= 1");
  const std::size_t stages = static_cast<std::size_t>(
      rng.range(1, static_cast<std::int64_t>(
                       std::min(max_stages, layers))));

  // Distinct interior cut points.
  std::vector<std::size_t> cuts;  // first layer index of each stage > 0
  if (stages > 1) {
    std::vector<std::size_t> candidates(layers - 1);
    std::iota(candidates.begin(), candidates.end(), 1);
    rng.shuffle(candidates);
    cuts.assign(candidates.begin(),
                candidates.begin() + static_cast<std::ptrdiff_t>(stages - 1));
    std::sort(cuts.begin(), cuts.end());
  }
  cuts.push_back(layers);  // sentinel

  sim::Assignment a(layers, ComponentId::kGpu);
  std::size_t begin = 0;
  ComponentId prev = ComponentId::kGpu;
  bool has_prev = false;
  for (std::size_t s = 0; s < stages; ++s) {
    ComponentId comp;
    do {
      comp = static_cast<ComponentId>(rng.below(kNumComponents));
    } while (has_prev && comp == prev);
    for (std::size_t l = begin; l < cuts[s]; ++l) a[l] = comp;
    begin = cuts[s];
    prev = comp;
    has_prev = true;
  }
  return a;
}

sim::Mapping random_mapping(util::Rng& rng, const models::ModelZoo& zoo,
                            const Workload& w, std::size_t max_stages) {
  std::vector<sim::Assignment> per_dnn;
  per_dnn.reserve(w.size());
  for (std::size_t count : w.layer_counts(zoo))
    per_dnn.push_back(random_assignment(rng, count, max_stages));
  return sim::Mapping(std::move(per_dnn));
}

sim::Assignment random_two_way_split(util::Rng& rng, std::size_t layers,
                                     sim::ComponentId first,
                                     sim::ComponentId second) {
  OB_REQUIRE(layers > 0, "random_two_way_split: no layers");
  // Cut in [0, layers]: 0 = everything on `second`, layers = all on `first`.
  const auto cut = static_cast<std::size_t>(
      rng.range(0, static_cast<std::int64_t>(layers)));
  sim::Assignment a(layers, second);
  for (std::size_t l = 0; l < cut; ++l) a[l] = first;
  return a;
}

}  // namespace omniboost::workload
