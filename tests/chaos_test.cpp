// Chaos layer: randomized fault scenarios against a small fleet. 50+ seeds
// of Poisson arrivals woven with seeded board-fault processes replay through
// core::Cluster; every run must
//  * conserve streams: admitted = departures + shed + resident
//  * keep every report field finite and self-consistent
//  * replay byte-identically when rerun (no state leaks through failures,
//    throttles, or recoveries)
// Registered under the `chaos` ctest label (tools/run_tier1.sh runs the lane
// standalone, so the CI sanitizer matrix visibly exercises the fault paths).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "sched/greedy.hpp"
#include "util/rng.hpp"
#include "workload/arrival.hpp"
#include "workload/faults.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace omniboost;
using core::Cluster;
using core::ClusterConfig;
using core::ClusterReport;
using workload::Scenario;

const models::ModelZoo& zoo() {
  static const models::ModelZoo z;
  return z;
}

core::SchedulerFactory greedy_factory(const Cluster& cluster) {
  return [&cluster](std::size_t i) -> std::unique_ptr<core::IScheduler> {
    return std::make_unique<sched::GreedyScheduler>(
        zoo(), cluster.boards()[i].device);
  };
}

/// Draws a seed-dependent offered load and fault law: arrival rates span
/// light to saturating, fault processes span occasional hard failures to
/// churning throttle storms, and some seeds leave boards degraded through
/// the horizon (truncated fault cycles).
Scenario chaos_scenario(std::uint64_t seed, std::size_t boards) {
  util::Rng rng(util::fork_stream(seed, 100));
  workload::ArrivalProcess p;
  p.rate_per_s = rng.uniform(0.1, 1.0);
  p.mean_lifetime_s = rng.uniform(3.0, 15.0);
  p.max_concurrent = 2 + rng.below(models::kNumModels - 1);
  p.slo_fraction = rng.chance(0.5) ? rng.uniform(0.1, 0.6) : 0.0;
  const double horizon_s = rng.uniform(15.0, 40.0);
  util::Rng arrivals(util::fork_stream(seed, 0));
  const Scenario base = workload::sample_scenario(p, horizon_s, arrivals);
  if (base.empty()) return base;

  workload::FaultProcess fp;
  fp.mtbf_s = rng.uniform(3.0, 25.0);
  fp.mttr_s = rng.uniform(1.0, 10.0);
  fp.throttle_fraction = rng.uniform(0.0, 1.0);
  return workload::with_faults(base, fp, boards, seed);
}

/// %.17g over every double so two reports compare equal iff bit-equal.
void put(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g|", v);
  out += buf;
}
void put(std::string& out, std::size_t v) { out += std::to_string(v) + "|"; }

std::string fingerprint(const ClusterReport& r) {
  std::string out;
  for (const core::ServingReport& b : r.boards) {
    for (const core::EpochReport& ep : b.epochs) {
      out += ep.event + "|" + ep.mix + "|";
      for (const sim::Assignment& a : ep.decision.mapping.assignments())
        for (const device::ComponentId c : a)
          out += std::to_string(static_cast<int>(c));
      put(out, ep.measured_throughput);
      put(out, ep.churn);
      put(out, ep.migration_stall_s);
    }
    out += "==";
  }
  put(out, r.offered_streams);
  put(out, r.admitted_streams);
  put(out, r.rejected_streams);
  put(out, r.departures);
  put(out, r.rejected_departures);
  put(out, r.migrations);
  put(out, r.board_failures);
  put(out, r.board_throttles);
  put(out, r.board_recoveries);
  put(out, r.failovers);
  put(out, r.failover_stall_s);
  put(out, r.failover_weight_bytes);
  put(out, r.shed_streams);
  put(out, r.shed_departures);
  put(out, r.rebalances);
  put(out, r.rebalance_stall_s);
  put(out, r.downtime_board_s);
  put(out, r.degraded_epochs);
  put(out, r.resident_streams);
  put(out, r.fleet_throughput);
  return out;
}

TEST(ClusterChaos, RandomFaultScenariosConserveStreamsAndReplayExactly) {
  constexpr std::size_t kBoards = 3;
  constexpr std::uint64_t kSeeds = 50;
  const std::vector<core::BoardSpec> fleet =
      core::make_heterogeneous_fleet(kBoards);

  std::size_t nonempty = 0, with_faults = 0, with_failovers = 0,
              with_shedding = 0;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const Scenario s = chaos_scenario(seed, kBoards);
    if (s.empty()) continue;
    ++nonempty;
    if (s.has_faults()) ++with_faults;

    // Half the seeds rebalance on recovery, so both paths chaos-test.
    ClusterConfig cc;
    cc.rebalance_on_recovery = (seed % 2 == 0);
    const Cluster cluster(zoo(), fleet, cc);
    const auto policy = core::make_placement_policy(
        core::placement_policy_kinds()[seed %
                                       core::placement_policy_kinds().size()]);
    const ClusterReport rep =
        cluster.run(greedy_factory(cluster), s, *policy);

    // Stream conservation, the tentpole invariant: every admitted stream
    // departed, was shed at a failure, or is still resident at the horizon.
    EXPECT_EQ(rep.admitted_streams,
              rep.departures + rep.shed_streams + rep.resident_streams)
        << "seed " << seed;
    EXPECT_EQ(rep.admitted_streams + rep.rejected_streams,
              rep.offered_streams)
        << "seed " << seed;

    // Fault accounting is self-consistent.
    EXPECT_LE(rep.board_recoveries, rep.board_failures + rep.board_throttles)
        << "seed " << seed;
    EXPECT_LE(rep.shed_departures, rep.shed_streams) << "seed " << seed;
    if (rep.failovers == 0) {
      EXPECT_EQ(rep.failover_stall_s, 0.0) << "seed " << seed;
      EXPECT_EQ(rep.failover_weight_bytes, 0.0) << "seed " << seed;
    }

    // Every double in the report is finite; downtime fits the horizon.
    const double horizon = s.events().back().time_s;
    for (const double v :
         {rep.rejection_rate, rep.cross_board_stall_s,
          rep.cross_board_weight_bytes, rep.failover_stall_s,
          rep.failover_weight_bytes, rep.rebalance_stall_s,
          rep.downtime_board_s, rep.fleet_throughput,
          rep.total_migration_stall_s})
      EXPECT_TRUE(std::isfinite(v) && v >= 0.0) << "seed " << seed;
    EXPECT_LE(rep.downtime_board_s, horizon * kBoards + 1e-9)
        << "seed " << seed;
    for (const core::ServingReport& b : rep.boards)
      for (const core::EpochReport& ep : b.epochs)
        EXPECT_TRUE(std::isfinite(ep.measured_throughput) &&
                    ep.measured_throughput >= 0.0)
            << "seed " << seed;

    // Byte-identical rerun on a freshly-built cluster: failures, throttles,
    // and shedding leave no cross-run state behind.
    const Cluster rebuilt(zoo(), fleet, cc);
    const auto policy2 = core::make_placement_policy(policy->name());
    EXPECT_EQ(fingerprint(rep),
              fingerprint(rebuilt.run(greedy_factory(rebuilt), s, *policy2)))
        << "seed " << seed;

    if (rep.failovers > 0) ++with_failovers;
    if (rep.shed_streams > 0) ++with_shedding;
  }

  // The chaos corpus must actually exercise the machinery to mean anything.
  EXPECT_GE(nonempty, 40u);
  EXPECT_GE(with_faults, 30u);
  EXPECT_GE(with_failovers, 5u);
  std::printf("chaos: %zu scenarios, %zu faulted, %zu with failovers, %zu "
              "with shedding\n",
              nonempty, with_faults, with_failovers, with_shedding);
}

}  // namespace
