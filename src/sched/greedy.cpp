#include "sched/greedy.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <numeric>

#include "util/require.hpp"

namespace omniboost::sched {

using device::ComponentId;
using device::kAllComponents;
using device::kNumComponents;

GreedyScheduler::GreedyScheduler(const models::ModelZoo& zoo,
                                 const device::DeviceSpec& device,
                                 GreedyConfig config)
    : zoo_(&zoo), device_(device), cost_(device_), config_(config) {
  OB_REQUIRE(config_.max_stages >= 1, "GreedyScheduler: bad stage limit");
}

core::ScheduleResult GreedyScheduler::schedule(const workload::Workload& w) {
  OB_REQUIRE(w.size() > 0, "GreedyScheduler::schedule: empty workload");
  const auto start = std::chrono::steady_clock::now();

  const sim::NetworkList nets = w.resolve(*zoo_);

  // Visit order: heaviest model first so the dominant pipelines pick their
  // components before the light ones commit load.
  std::vector<std::size_t> order(nets.size());
  std::iota(order.begin(), order.end(), 0);
  if (config_.heaviest_first) {
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return nets[a]->total_flops() > nets[b]->total_flops();
                     });
  }

  // Load committed to each component so far (seconds of work per frame).
  std::array<double, kNumComponents> load{};

  std::vector<sim::Assignment> per_dnn(nets.size());
  core::ScheduleResult result;

  for (const std::size_t d : order) {
    const models::NetworkDesc& net = *nets[d];
    sim::Assignment a(net.num_layers(), ComponentId::kGpu);
    std::size_t stages_open = 0;

    for (std::size_t l = 0; l < net.num_layers(); ++l) {
      const bool can_open_stage = stages_open < config_.max_stages;
      ComponentId best = l == 0 ? ComponentId::kGpu : a[l - 1];
      double best_cost = std::numeric_limits<double>::infinity();

      for (const ComponentId c : kAllComponents) {
        const bool continues = l > 0 && c == a[l - 1];
        if (!continues && !can_open_stage) continue;

        const double exec = cost_.layer_time(net.layers[l], c);
        double transfer = 0.0;
        if (l > 0 && !continues) {
          transfer = cost_.transfer_time(net.layers[l - 1].output_bytes(),
                                         a[l - 1], c);
        }
        // Marginal finish-time estimate: the component's accumulated load
        // plus this layer's execution, plus weighted communication.
        const double cand =
            load[device::component_index(c)] + exec +
            config_.comm_weight * transfer;
        ++result.evaluations;
        if (cand < best_cost) {
          best_cost = cand;
          best = c;
        }
      }

      const bool opens = l == 0 || best != a[l - 1];
      if (opens) ++stages_open;
      a[l] = best;
      load[device::component_index(best)] +=
          cost_.layer_time(net.layers[l], best);
    }
    per_dnn[d] = std::move(a);
  }

  result.mapping = sim::Mapping(std::move(per_dnn));
  result.decision_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace omniboost::sched
