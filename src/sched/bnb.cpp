#include "sched/bnb.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <limits>
#include <utility>

#include "sched/greedy.hpp"
#include "util/require.hpp"

namespace omniboost::sched {

using device::ComponentId;
using device::kNumComponents;

namespace {

/// Flattened decision coordinates, MCTS order: dnn-after-dnn, layer-after-
/// layer (also the canonical enumeration order of search_common).
struct Coord {
  std::size_t dnn, layer;
};

}  // namespace

BranchAndBoundScheduler::BranchAndBoundScheduler(
    std::string name, const models::ModelZoo& zoo,
    const device::DeviceSpec& device, BnbConfig config)
    : name_(std::move(name)), zoo_(&zoo), model_(device), config_(config) {
  OB_REQUIRE(config_.stage_limit >= 1,
             "BranchAndBoundScheduler: stage limit must be >= 1");
}

core::ScheduleResult BranchAndBoundScheduler::schedule(
    const workload::Workload& w) {
  return schedule_seeded(w, nullptr);
}

core::ScheduleResult BranchAndBoundScheduler::schedule_seeded(
    const workload::Workload& w, const sim::Mapping* seed) {
  OB_REQUIRE(w.size() > 0, "BranchAndBoundScheduler: empty workload");
  const auto start = std::chrono::steady_clock::now();

  const sim::NetworkList nets = w.resolve(*zoo_);
  const std::vector<std::size_t> counts = w.layer_counts(*zoo_);
  if (seed != nullptr) {
    OB_REQUIRE(seed->num_dnns() == counts.size(),
               "BranchAndBoundScheduler: seed mapping DNN count mismatch");
    for (std::size_t d = 0; d < counts.size(); ++d)
      OB_REQUIRE(seed->assignment(d).size() == counts[d],
                 "BranchAndBoundScheduler: seed mapping layer count mismatch");
  }

  std::vector<Coord> coords;
  for (std::size_t d = 0; d < counts.size(); ++d)
    for (std::size_t l = 0; l < counts[d]; ++l) coords.push_back({d, l});
  const std::size_t total = coords.size();

  ReducedSpace reduced;
  if (config_.use_reduction) {
    reduced = reduce_search_space(*zoo_, w, model_.cost_model().device(),
                                  ReduceConfig{config_.stage_limit});
  }
  const bool symmetry = config_.use_reduction && reduced.has_symmetry();

  const sim::RelaxedBound bound(nets, model_.cost_model());

  core::ScheduleResult result;
  double incumbent_value = -std::numeric_limits<double>::infinity();
  sim::Mapping incumbent;

  const auto evaluate = [&](const sim::Mapping& m) {
    ++result.evaluations;
    return model_.evaluate(nets, m).avg_throughput;
  };
  const auto greedy_seed = [&]() {
    GreedyScheduler greedy(*zoo_, model_.cost_model().device(),
                           GreedyConfig{config_.stage_limit});
    sim::Mapping m = greedy.schedule(w).mapping;
    const double v = evaluate(m);
    if (v > incumbent_value) {
      incumbent_value = v;
      incumbent = std::move(m);
    }
  };
  if (config_.seed_incumbent) greedy_seed();
  if (seed != nullptr) {
    // The caller's incumbent joins the race: the anytime result can then
    // never be worse than what is already installed.
    const double v = evaluate(*seed);
    if (v > incumbent_value) {
      incumbent_value = v;
      incumbent = *seed;
    }
  }

  std::vector<sim::PartialAssignment> partial;
  partial.reserve(nets.size());
  for (const std::size_t c : counts)
    partial.emplace_back(c, sim::kLayerUnassigned);

  const bool has_deadline = config_.timeout_ms > 0.0;
  const auto deadline =
      start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double, std::milli>(config_.timeout_ms));

  std::size_t nodes = 0;
  bool stop = false;       // sticky once any budget expires
  bool aborted = false;    // some subtree was left unexplored
  double unexplored_ub = -std::numeric_limits<double>::infinity();
  std::size_t used_count[kNumComponents] = {0, 0, 0};

  const auto budget_exhausted = [&]() {
    if (stop) return true;
    if (config_.max_nodes > 0 && nodes >= config_.max_nodes) stop = true;
    // The clock is sampled every 64 nodes: cheap, and tight enough that a
    // timeout overrun stays far below a millisecond.
    else if (has_deadline && (nodes & 63u) == 0 &&
             std::chrono::steady_clock::now() >= deadline)
      stop = true;
    return stop;
  };

  const auto to_mapping = [&]() {
    std::vector<sim::Assignment> per_dnn;
    per_dnn.reserve(counts.size());
    for (std::size_t d = 0; d < counts.size(); ++d) {
      sim::Assignment a(counts[d], ComponentId::kGpu);
      for (std::size_t l = 0; l < counts[d]; ++l)
        a[l] = static_cast<ComponentId>(partial[d][l]);
      per_dnn.push_back(std::move(a));
    }
    return sim::Mapping(std::move(per_dnn));
  };

  const std::function<void(std::size_t)> dfs = [&](std::size_t depth) {
    if (depth == total) {
      sim::Mapping m = to_mapping();
      const double r = evaluate(m);
      if (r > incumbent_value) {
        incumbent_value = r;
        incumbent = std::move(m);
      }
      return;
    }
    const Coord c = coords[depth];
    // Pipeline stages this DNN has opened so far (prefix fully assigned).
    std::size_t stages = 1;
    for (std::size_t l = 1; l < c.layer; ++l)
      if (partial[c.dnn][l] != partial[c.dnn][l - 1]) ++stages;

    static const std::vector<ComponentId> kEveryComponent(
        device::kAllComponents.begin(), device::kAllComponents.end());
    const std::vector<ComponentId>& choices =
        config_.use_reduction ? reduced.allowed[c.dnn][c.layer]
                              : kEveryComponent;
    for (const ComponentId comp : choices) {
      if (c.layer > 0) {
        const auto prev =
            static_cast<ComponentId>(partial[c.dnn][c.layer - 1]);
        if (comp != prev && stages == config_.stage_limit) continue;
      }
      const std::size_t ci = device::component_index(comp);
      if (symmetry && used_count[ci] == 0) {
        // Canonical first-use order within each class of identical
        // components: introduce the smallest unused member first. Every
        // skipped branch is a class permutation of a kept one.
        bool skip = false;
        for (std::size_t prior = 0; prior < ci; ++prior)
          if (reduced.symmetry_class[prior] == reduced.symmetry_class[ci] &&
              used_count[prior] == 0)
            skip = true;
        if (skip) continue;
      }

      partial[c.dnn][c.layer] = static_cast<std::int8_t>(ci);
      ++used_count[ci];
      ++nodes;
      const double ub = bound.upper_bound(partial);
      if (ub <= incumbent_value) {
        // Certified: nothing below can strictly beat the incumbent.
      } else if (budget_exhausted()) {
        aborted = true;
        unexplored_ub = std::max(unexplored_ub, ub);
      } else {
        dfs(depth + 1);
      }
      --used_count[ci];
      partial[c.dnn][c.layer] = sim::kLayerUnassigned;
    }
  };
  dfs(0);

  // Degenerate budgets (seed_incumbent=false + a tiny node cap) can abort
  // before the first leaf; the anytime contract still owes a valid mapping.
  if (!std::isfinite(incumbent_value)) greedy_seed();

  result.mapping = incumbent;
  result.expected_reward = incumbent_value;
  result.lower_bound = incumbent_value;
  result.proved_optimal = !aborted;
  result.upper_bound =
      aborted ? std::max(incumbent_value, unexplored_ub) : incumbent_value;
  result.nodes_expanded = nodes;
  result.decision_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

RefineResult anytime_refine(const models::ModelZoo& zoo,
                            const device::DeviceSpec& device,
                            const workload::Workload& w,
                            const sim::Mapping& seed,
                            const BnbConfig& config) {
  BranchAndBoundScheduler bnb("bnb-refine", zoo, device, config);
  const core::ScheduleResult searched = bnb.schedule_seeded(w, &seed);

  sim::AnalyticModel model(device);
  const sim::NetworkList nets = w.resolve(zoo);
  RefineResult out;
  out.seed_objective = model.evaluate(nets, seed).avg_throughput;
  out.objective = searched.expected_reward;
  out.improved = out.objective > out.seed_objective;
  out.mapping = out.improved ? searched.mapping : seed;
  out.proved_optimal = searched.proved_optimal.value_or(false);
  out.nodes_expanded = searched.nodes_expanded.value_or(0);
  return out;
}

}  // namespace omniboost::sched
