#pragma once
/// \file faults.hpp
/// Seeded board-fault processes: where workload::Scenario can script
/// `fail`/`throttle`/`recover` clauses by hand, a FaultProcess describes the
/// *law* they are drawn from — an alternating-renewal process per board
/// (healthy for Exponential(mtbf_s), then failed or throttled for
/// Exponential(mttr_s), then recovered) — and with_faults() weaves the drawn
/// fault events into an arrival scenario deterministically.
///
/// Each board samples from its own `util::fork_stream(seed, board)`
/// substream, so board i's fault history is bit-identical whatever the fleet
/// size and whatever the other boards drew — the same substream-independence
/// contract the dataset generator and arrival sweeps rely on. A process with
/// throttle_fraction == 0 consumes exactly two draws per fault cycle
/// (uptime, repair time); the throttle coin and factor draws are guarded so
/// fail-only configs reproduce their event streams bit-for-bit.

#include <cstdint>
#include <string>
#include <vector>

#include "workload/scenario.hpp"

namespace omniboost::workload {

/// An alternating-renewal board-fault law. Every board independently cycles
/// healthy -> faulted -> healthy; each fault is a hard failure with
/// probability 1 - throttle_fraction, otherwise a throttle to a speed factor
/// drawn uniformly from [throttle_min, throttle_max].
struct FaultProcess {
  /// Mean time between failures: healthy dwell is Exponential(1/mtbf_s)
  /// (> 0, finite).
  double mtbf_s = 60.0;
  /// Mean time to repair: faulted dwell is Exponential(1/mttr_s)
  /// (> 0, finite).
  double mttr_s = 10.0;
  /// Probability a fault is a throttle instead of a hard failure, in
  /// [0, 1]. The default 0 consumes no throttle draws at all, so fail-only
  /// processes sample byte-identical event streams whatever the band says.
  double throttle_fraction = 0.0;
  /// Throttle speed-factor band, 0 < throttle_min <= throttle_max <= 1.
  double throttle_min = 0.25;
  double throttle_max = 0.75;
};

/// Draws the fault events of \p boards boards over [0, horizon_s], merged
/// into one time-ordered list (ties broken by board index). Board b draws
/// from `util::Rng(util::fork_stream(seed, b))`. A fault cycle still open at
/// the horizon is truncated: the fail/throttle event is kept and no recover
/// is emitted, leaving the board degraded through the end of the scenario.
/// Throws std::invalid_argument on invalid process parameters or a
/// non-finite/negative horizon.
std::vector<ScenarioEvent> sample_fault_events(const FaultProcess& process,
                                               std::size_t boards,
                                               double horizon_s,
                                               std::uint64_t seed);

/// Weaves the fault events drawn from (\p process, \p boards, \p seed) over
/// the base scenario's time span into \p base. Mix events come first at
/// timestamp ties, so the faulted scenario replays the identical
/// arrive/depart stream. A fault-free draw (or an empty base) returns a
/// scenario equal to \p base.
Scenario with_faults(const Scenario& base, const FaultProcess& process,
                     std::size_t boards, std::uint64_t seed);

/// Parses the CLI spec grammar (throws std::invalid_argument on anything
/// else; all numbers must be finite and in range):
///   mtbf:<s>:mttr:<s>[:throttle:<fraction>[:<min>:<max>]]
FaultProcess parse_fault_spec(const std::string& spec);

/// One-line human-readable summary,
/// e.g. "faults(mtbf 60 s, mttr 10 s, throttle 30% [0.25, 0.75])".
std::string describe(const FaultProcess& process);

}  // namespace omniboost::workload
