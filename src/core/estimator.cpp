#include "core/estimator.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "device/device.hpp"
#include "nn/layers.hpp"
#include "nn/serialize.hpp"
#include "util/require.hpp"

namespace omniboost::core {

namespace {

/// Adds the activation chosen by the configuration.
void add_activation(nn::Sequential& seq, bool use_gelu) {
  if (use_gelu) {
    seq.emplace<nn::GELU>();
  } else {
    seq.emplace<nn::ReLU>();
  }
}

/// conv3x3 -> BN -> activation.
void add_conv_block(nn::Sequential& seq, std::size_t in_ch, std::size_t out_ch,
                    bool use_gelu) {
  seq.emplace<nn::Conv2d>(in_ch, out_ch, 3, 1, 1);
  seq.emplace<nn::BatchNorm2d>(out_ch);
  add_activation(seq, use_gelu);
}

/// Residual stage: two conv blocks wrapped in an identity skip.
std::unique_ptr<nn::Module> make_residual(std::size_t ch, bool use_gelu) {
  auto body = std::make_unique<nn::Sequential>();
  add_conv_block(*body, ch, ch, use_gelu);
  add_conv_block(*body, ch, ch, use_gelu);
  return std::make_unique<nn::Residual>(std::move(body));
}

/// Builds the ResNet9-style body (paper §IV-B): pooled stem, two residual
/// stages, global pooling and a 3-unit linear regression head (no output
/// activation). Early pooling keeps the forward/backward pass cheap enough
/// to train in well under a minute on a CPU, as the paper reports for its
/// GPU setup. Shared by the constructor and the validation-replica factory.
std::unique_ptr<nn::Sequential> build_net(const EstimatorConfig& config) {
  auto net = std::make_unique<nn::Sequential>();
  add_conv_block(*net, device::kNumComponents, config.c1, config.use_gelu);
  net->emplace<nn::MaxPool2d>(2);
  add_conv_block(*net, config.c1, config.c2, config.use_gelu);
  net->emplace<nn::MaxPool2d>(2);
  net->add(make_residual(config.c2, config.use_gelu));
  add_conv_block(*net, config.c2, config.c3, config.use_gelu);
  net->add(make_residual(config.c3, config.use_gelu));
  net->emplace<nn::GlobalAvgPool>();
  net->emplace<nn::Linear>(config.c3, 3);
  return net;
}

}  // namespace

ThroughputEstimator::ThroughputEstimator(std::size_t models_dim,
                                         std::size_t layers_dim,
                                         EstimatorConfig config)
    : models_dim_(models_dim), layers_dim_(layers_dim), config_(config) {
  OB_REQUIRE(models_dim >= 2 && layers_dim >= 8,
             "ThroughputEstimator: embedding too small for the CNN");
  for (auto& t : target_transform_) t = util::Affine1D{};

  net_ = build_net(config);

  util::Rng rng(config.init_seed);
  net_->init(rng);
  net_->set_training(false);
}

void ThroughputEstimator::set_kernel(nn::KernelKind kind) {
  kernel_kind_ = kind;
  net_->set_kernel(kind);
}

std::size_t ThroughputEstimator::num_params() const {
  return net_->num_params();
}

nn::TrainHistory ThroughputEstimator::fit(const SampleSet& data,
                                          std::size_t val_count,
                                          const nn::Loss& loss,
                                          const nn::TrainConfig& train) {
  OB_REQUIRE(data.inputs.size() == data.targets.size(),
             "ThroughputEstimator::fit: ragged sample set");
  OB_REQUIRE(val_count < data.size(),
             "ThroughputEstimator::fit: validation set leaves no train data");

  const std::size_t train_count = data.size() - val_count;

  // Fit the two-stage preprocessing (standardize then min-max, §V) per
  // output on the *training* split only, composed into one affine map. The
  // optional log compression runs first to tame the rates' dynamic range.
  for (std::size_t d = 0; d < 3; ++d) {
    std::vector<double> raw;
    raw.reserve(train_count);
    for (std::size_t i = 0; i < train_count; ++i)
      raw.push_back(compress(data.targets[i][d]));
    const util::Affine1D standardize = util::fit_standardizer(raw);
    std::vector<double> standardized;
    standardized.reserve(raw.size());
    for (double y : raw) standardized.push_back(standardize.apply(y));
    target_transform_[d] = standardize.then(util::fit_minmax(standardized));
  }

  nn::Dataset all;
  all.inputs = data.inputs;
  all.targets.reserve(data.size());
  for (const auto& t : data.targets) {
    tensor::Tensor y({3});
    for (std::size_t d = 0; d < 3; ++d)
      y[d] = static_cast<float>(target_transform_[d].apply(compress(t[d])));
    all.targets.push_back(std::move(y));
  }
  auto [train_set, val_set] = all.split_tail(val_count);

  // Give the parallel validation pass (TrainConfig::workers > 1) a replica
  // factory that rebuilds this exact architecture with this instance's
  // kernel kind, unless the caller supplied one.
  nn::TrainConfig tc = train;
  if (tc.workers > 1 && tc.replicate == nullptr) {
    const EstimatorConfig config = config_;
    const nn::KernelKind kind = kernel_kind_;
    tc.replicate = [config, kind]() -> std::unique_ptr<nn::Module> {
      auto net = build_net(config);
      net->set_kernel(kind);
      return net;
    };
  }

  net_->set_training(true);
  nn::TrainHistory history =
      nn::train_regression(*net_, loss, train_set, val_set, tc);
  net_->set_training(false);
  trained_ = true;
  return history;
}

std::array<double, 3> ThroughputEstimator::predict_normalized(
    const tensor::Tensor& input) const {
  OB_REQUIRE(input.rank() == 3 && input.extent(0) == device::kNumComponents &&
                 input.extent(1) == models_dim_ &&
                 input.extent(2) == layers_dim_,
             "ThroughputEstimator::predict: unexpected input shape");
  tensor::Tensor batched = input.reshaped(
      {1, device::kNumComponents, models_dim_, layers_dim_});
  const tensor::Tensor out = net_->forward(batched);
  OB_ENSURE(out.size() == 3, "estimator head must emit 3 outputs");
  return {static_cast<double>(out[0]), static_cast<double>(out[1]),
          static_cast<double>(out[2])};
}

std::array<double, 3> ThroughputEstimator::predict(
    const tensor::Tensor& input) const {
  const std::array<double, 3> norm = predict_normalized(input);
  std::array<double, 3> rates{};
  for (std::size_t d = 0; d < 3; ++d)
    rates[d] = expand(target_transform_[d].invert(norm[d]));
  return rates;
}

double ThroughputEstimator::predict_reward(const tensor::Tensor& input) const {
  const std::array<double, 3> rates = predict(input);
  return (rates[0] + rates[1] + rates[2]) / 3.0;
}

std::vector<std::array<double, 3>> ThroughputEstimator::predict_batch(
    const std::vector<tensor::Tensor>& inputs) const {
  std::vector<std::array<double, 3>> rates(inputs.size());
  if (inputs.empty()) return rates;
  for (const tensor::Tensor& input : inputs) {
    OB_REQUIRE(input.rank() == 3 &&
                   input.extent(0) == device::kNumComponents &&
                   input.extent(1) == models_dim_ &&
                   input.extent(2) == layers_dim_,
               "ThroughputEstimator::predict_batch: unexpected input shape");
  }
  const tensor::Tensor out = net_->forward(tensor::stack(inputs));
  OB_ENSURE(out.rank() == 2 && out.extent(0) == inputs.size() &&
                out.extent(1) == 3,
            "estimator head must emit 3 outputs per sample");
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    for (std::size_t d = 0; d < 3; ++d) {
      rates[i][d] = expand(target_transform_[d].invert(
          static_cast<double>(out[i * 3 + d])));
    }
  }
  return rates;
}

std::vector<double> ThroughputEstimator::predict_rewards(
    const std::vector<tensor::Tensor>& inputs) const {
  const std::vector<std::array<double, 3>> rates = predict_batch(inputs);
  std::vector<double> rewards;
  rewards.reserve(rates.size());
  for (const std::array<double, 3>& r : rates)
    rewards.push_back((r[0] + r[1] + r[2]) / 3.0);
  return rewards;
}

namespace {

constexpr char kEstimatorMagic[4] = {'O', 'B', 'T', 'E'};
constexpr std::uint32_t kEstimatorVersion = 1;

void write_u64(std::ostream& os, std::uint64_t v) {
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  os.write(reinterpret_cast<const char*>(b), 8);
}

std::uint64_t read_u64(std::istream& is) {
  unsigned char b[8];
  is.read(reinterpret_cast<char*>(b), 8);
  if (!is) throw std::runtime_error("ThroughputEstimator::load: truncated");
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
  return v;
}

void write_f64(std::ostream& os, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  write_u64(os, bits);
}

double read_f64(std::istream& is) {
  const std::uint64_t bits = read_u64(is);
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

}  // namespace

void ThroughputEstimator::save(std::ostream& os) const {
  OB_REQUIRE(trained_, "ThroughputEstimator::save: estimator not trained");
  os.write(kEstimatorMagic, 4);
  write_u64(os, kEstimatorVersion);
  write_u64(os, models_dim_);
  write_u64(os, layers_dim_);
  write_u64(os, config_.c1);
  write_u64(os, config_.c2);
  write_u64(os, config_.c3);
  write_u64(os, (config_.use_gelu ? 1u : 0u) | (config_.log_targets ? 2u : 0u));
  write_f64(os, config_.log_scale);
  write_u64(os, config_.init_seed);
  for (const util::Affine1D& t : target_transform_) {
    write_f64(os, t.shift);
    write_f64(os, t.scale);
  }
  // params() is logically read-only here; the Module interface exposes it
  // non-const because optimizers mutate through it.
  nn::save_params(const_cast<nn::Sequential&>(*net_), os);
  if (!os) throw std::runtime_error("ThroughputEstimator::save: write failed");
}

void ThroughputEstimator::save_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    throw std::runtime_error("ThroughputEstimator::save_file: cannot open " +
                             path);
  }
  save(os);
}

ThroughputEstimator ThroughputEstimator::load(std::istream& is) {
  char magic[4];
  is.read(magic, 4);
  if (!is || magic[0] != 'O' || magic[1] != 'B' || magic[2] != 'T' ||
      magic[3] != 'E') {
    throw std::runtime_error(
        "ThroughputEstimator::load: bad magic (not an OBTE file)");
  }
  const std::uint64_t version = read_u64(is);
  if (version != kEstimatorVersion) {
    throw std::runtime_error("ThroughputEstimator::load: unsupported version");
  }
  const std::uint64_t models_dim = read_u64(is);
  const std::uint64_t layers_dim = read_u64(is);
  EstimatorConfig config;
  config.c1 = read_u64(is);
  config.c2 = read_u64(is);
  config.c3 = read_u64(is);
  const std::uint64_t flags = read_u64(is);
  config.use_gelu = (flags & 1u) != 0;
  config.log_targets = (flags & 2u) != 0;
  config.log_scale = read_f64(is);
  config.init_seed = read_u64(is);

  ThroughputEstimator est(models_dim, layers_dim, config);
  for (util::Affine1D& t : est.target_transform_) {
    t.shift = read_f64(is);
    t.scale = read_f64(is);
  }
  nn::load_params(*est.net_, is);
  est.trained_ = true;
  return est;
}

ThroughputEstimator ThroughputEstimator::load_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw std::runtime_error("ThroughputEstimator::load_file: cannot open " +
                             path);
  }
  return load(is);
}

double ThroughputEstimator::compress(double rate) const {
  if (!config_.log_targets) return rate;
  return std::log1p(std::max(rate, 0.0) / config_.log_scale);
}

double ThroughputEstimator::expand(double value) const {
  if (!config_.log_targets) return value;
  return std::expm1(std::max(value, 0.0)) * config_.log_scale;
}

}  // namespace omniboost::core
