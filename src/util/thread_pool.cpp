#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace omniboost::util {

std::size_t ThreadPool::clamped(std::size_t requested, std::size_t items) {
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return std::max<std::size_t>(1, std::min({requested, items, hw}));
}

ThreadPool::ThreadPool(std::size_t workers) {
  OB_REQUIRE(workers >= 1, "ThreadPool: worker count must be >= 1");
  if (workers == 1) return;  // inline mode, no threads
  threads_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w)
    threads_.emplace_back([this, w] { worker_loop(w); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::parallel_for(std::size_t n, const IndexFn& fn) {
  if (n == 0) return;
  if (threads_.empty()) {
    // Inline mode: the plain sequential loop, worker id 0.
    for (std::size_t i = 0; i < n; ++i) fn(i, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    OB_REQUIRE(job_ == nullptr, "ThreadPool::parallel_for is not reentrant");
    job_ = &fn;
    job_n_ = n;
    next_ = 0;
    active_ = threads_.size();
    error_ = nullptr;
    ++generation_;
  }
  work_ready_.notify_all();
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    work_done_.wait(lock, [this] { return active_ == 0; });
    job_ = nullptr;
    error = error_;
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::async(std::function<void()> fn) {
  OB_REQUIRE(fn != nullptr, "ThreadPool::async: null task");
  if (threads_.empty()) {
    // Inline mode: run synchronously; a throw surfaces at async_join().
    std::exception_ptr err;
    try {
      fn();
    } catch (...) {
      err = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (err && !async_error_) async_error_ = err;
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    OB_REQUIRE(!async_inflight_,
               "ThreadPool::async: one async task at a time");
    async_fn_ = std::move(fn);
    async_pending_ = true;
    async_inflight_ = true;
  }
  work_ready_.notify_one();
}

bool ThreadPool::async_active() {
  std::lock_guard<std::mutex> lock(mutex_);
  return async_inflight_;
}

void ThreadPool::async_join() {
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    async_done_.wait(lock, [this] { return !async_inflight_; });
    err = async_error_;
    async_error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::worker_loop(std::size_t worker_id) {
  std::uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_ready_.wait(lock, [this, seen_generation] {
      return stop_ || generation_ != seen_generation || async_pending_;
    });
    if (stop_) return;
    if (async_pending_) {
      async_pending_ = false;
      std::function<void()> task = std::move(async_fn_);
      async_fn_ = nullptr;
      lock.unlock();
      std::exception_ptr err;
      try {
        task();
      } catch (...) {
        err = std::current_exception();
      }
      lock.lock();
      if (err && !async_error_) async_error_ = err;
      async_inflight_ = false;
      async_done_.notify_all();
      continue;  // re-check for a parallel_for that raced in meanwhile
    }
    if (generation_ == seen_generation) continue;  // woken for async only
    seen_generation = generation_;
    // Claim indices until the job is drained (or failed). The lock is
    // dropped around the user function, so workers run concurrently.
    while (!error_ && next_ < job_n_) {
      const std::size_t index = next_++;
      const IndexFn* fn = job_;
      lock.unlock();
      try {
        (*fn)(index, worker_id);
        lock.lock();
      } catch (...) {
        lock.lock();
        if (!error_) error_ = std::current_exception();
      }
    }
    if (--active_ == 0) {
      lock.unlock();
      work_done_.notify_all();
      lock.lock();
    }
  }
}

}  // namespace omniboost::util
