#pragma once
/// \file layers.hpp
/// Concrete layers: Conv2d, Linear, BatchNorm2d, activations, pooling,
/// Flatten. All consume/produce NCHW (or (N,F) for Linear) float tensors and
/// implement exact analytic backward passes (verified against numeric
/// differentiation in tests/nn_gradcheck_test.cpp).

#include <cstddef>

#include "nn/module.hpp"

namespace omniboost::nn {

/// 2-D convolution (square kernel, symmetric zero padding, no dilation).
class Conv2d final : public Module {
 public:
  /// \param in_ch    input channels
  /// \param out_ch   output channels
  /// \param kernel   square kernel extent (>=1)
  /// \param stride   stride in both dimensions (>=1)
  /// \param padding  symmetric zero padding
  /// \param bias     whether to learn an additive per-channel bias
  Conv2d(std::size_t in_ch, std::size_t out_ch, std::size_t kernel,
         std::size_t stride = 1, std::size_t padding = 0, bool bias = true);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;
  void init(util::Rng& rng) override;  ///< Kaiming-normal weights, zero bias
  void set_kernel(KernelKind kind) override { kernel_kind_ = kind; }
  KernelKind kernel_kind() const { return kernel_kind_; }
  std::string name() const override { return "Conv2d"; }

  std::size_t in_channels() const { return in_ch_; }
  std::size_t out_channels() const { return out_ch_; }

 private:
  Tensor forward_reference(const Tensor& x, Tensor y) const;
  Tensor forward_gemm(const Tensor& x, Tensor y) const;
  Tensor backward_reference(const Tensor& grad_out);
  Tensor backward_gemm(const Tensor& grad_out);

  std::size_t in_ch_, out_ch_, kernel_, stride_, padding_;
  bool has_bias_;
  /// Active lowering; captured from nn::default_kernel() at construction.
  KernelKind kernel_kind_ = default_kernel();
  Param weight_;  ///< (out_ch, in_ch, k, k)
  Param bias_;    ///< (out_ch)
  Tensor input_;  ///< cached forward input
};

/// Fully-connected layer on (N, in_features) tensors.
class Linear final : public Module {
 public:
  Linear(std::size_t in_features, std::size_t out_features, bool bias = true);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;
  void init(util::Rng& rng) override;  ///< Kaiming-normal weights, zero bias
  void set_kernel(KernelKind kind) override { kernel_kind_ = kind; }
  KernelKind kernel_kind() const { return kernel_kind_; }
  std::string name() const override { return "Linear"; }

 private:
  std::size_t in_f_, out_f_;
  bool has_bias_;
  /// Active lowering; captured from nn::default_kernel() at construction.
  KernelKind kernel_kind_ = default_kernel();
  Param weight_;  ///< (out_features, in_features)
  Param bias_;    ///< (out_features)
  Tensor input_;
};

/// Per-channel batch normalization over (N, H, W) with running statistics.
class BatchNorm2d final : public Module {
 public:
  explicit BatchNorm2d(std::size_t channels, float eps = 1e-5f,
                       float momentum = 0.1f);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;
  std::vector<Tensor*> buffers() override {
    return {&running_mean_, &running_var_};
  }
  void init(util::Rng& rng) override;  ///< gamma=1, beta=0, reset running stats
  std::string name() const override { return "BatchNorm2d"; }

 private:
  std::size_t channels_;
  float eps_, momentum_;
  Param gamma_, beta_;
  Tensor running_mean_, running_var_;
  // backward caches
  Tensor xhat_, inv_std_;
  std::size_t batch_count_ = 0;  ///< N*H*W of the cached batch
};

/// Gaussian Error Linear Unit (tanh approximation), the paper's activation.
class GELU final : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "GELU"; }

  /// Scalar GELU (exposed for unit tests).
  static float value(float x);
  /// Scalar derivative d GELU / dx.
  static float derivative(float x);

 private:
  Tensor input_;
};

/// Rectified linear unit (used by the GELU-vs-ReLU ablation bench).
class ReLU final : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "ReLU"; }

 private:
  Tensor input_;
};

/// Non-overlapping 2-D max pooling. Trailing rows/cols that do not fill a
/// complete window are dropped (floor semantics, like PyTorch's default).
class MaxPool2d final : public Module {
 public:
  explicit MaxPool2d(std::size_t kernel, std::size_t stride = 0);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "MaxPool2d"; }

 private:
  std::size_t kernel_, stride_;
  tensor::Shape in_shape_;
  std::vector<std::size_t> argmax_;  ///< flat input index per output element
};

/// Global average pooling: (N,C,H,W) -> (N,C).
class GlobalAvgPool final : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "GlobalAvgPool"; }

 private:
  tensor::Shape in_shape_;
};

/// Flattens (N, ...) to (N, F).
class Flatten final : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "Flatten"; }

 private:
  tensor::Shape in_shape_;
};

}  // namespace omniboost::nn
