#include "nn/schedulers.hpp"

#include <cmath>

#include "util/require.hpp"

namespace omniboost::nn {

ConstantLr::ConstantLr(float lr) : lr_(lr) {
  OB_REQUIRE(lr > 0.0f, "ConstantLr: learning rate must be positive");
}

float ConstantLr::lr_at(std::size_t /*epoch*/) const { return lr_; }

StepLr::StepLr(float base_lr, std::size_t step_size, float gamma)
    : base_lr_(base_lr), gamma_(gamma), step_size_(step_size) {
  OB_REQUIRE(base_lr > 0.0f, "StepLr: base learning rate must be positive");
  OB_REQUIRE(step_size >= 1, "StepLr: step size must be >= 1");
  OB_REQUIRE(gamma > 0.0f && gamma <= 1.0f, "StepLr: gamma must be in (0, 1]");
}

float StepLr::lr_at(std::size_t epoch) const {
  const auto decays = static_cast<float>(epoch / step_size_);
  return base_lr_ * std::pow(gamma_, decays);
}

CosineLr::CosineLr(float base_lr, std::size_t max_epochs, float min_lr,
                   std::size_t warmup_epochs)
    : base_lr_(base_lr),
      min_lr_(min_lr),
      max_epochs_(max_epochs),
      warmup_epochs_(warmup_epochs) {
  OB_REQUIRE(base_lr > 0.0f, "CosineLr: base learning rate must be positive");
  OB_REQUIRE(min_lr >= 0.0f && min_lr <= base_lr,
             "CosineLr: min_lr must be in [0, base_lr]");
  OB_REQUIRE(max_epochs >= 1, "CosineLr: max_epochs must be >= 1");
  OB_REQUIRE(warmup_epochs < max_epochs,
             "CosineLr: warm-up must end before max_epochs");
}

float CosineLr::lr_at(std::size_t epoch) const {
  if (epoch < warmup_epochs_) {
    // Linear ramp 1/(w) .. w/(w): never returns 0 at epoch 0.
    return base_lr_ * static_cast<float>(epoch + 1) /
           static_cast<float>(warmup_epochs_);
  }
  if (epoch >= max_epochs_) return min_lr_ > 0.0f ? min_lr_ : base_lr_ * 1e-3f;
  const double progress =
      static_cast<double>(epoch - warmup_epochs_) /
      static_cast<double>(max_epochs_ - warmup_epochs_);
  const double cosine = 0.5 * (1.0 + std::cos(3.14159265358979324 * progress));
  const double lr = min_lr_ + (base_lr_ - min_lr_) * cosine;
  // The cosine reaches min_lr exactly at max_epochs; keep strictly positive
  // for Optimizer::set_lr.
  return static_cast<float>(std::max(lr, 1e-12));
}

}  // namespace omniboost::nn
