#pragma once
/// \file json.hpp
/// Minimal JSON value tree + serializer for tool output (omniboost_cli
/// --json and bench exports). Writing only — this library never consumes
/// JSON, so no parser is shipped.

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace omniboost::util {

/// An immutable-ish JSON value: null, bool, number, string, array or object.
/// Build with the static makers and the array/object mutators, then dump().
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}

  static Json null() { return Json(); }
  static Json boolean(bool v);
  static Json number(double v);
  static Json number(std::size_t v) { return number(static_cast<double>(v)); }
  static Json string(std::string v);
  static Json array();
  static Json object();

  Type type() const { return type_; }

  /// Appends to an array (throws unless this is an array).
  Json& push_back(Json v);

  /// Sets a key in an object (throws unless this is an object). Keys keep
  /// insertion order in the output.
  Json& set(const std::string& key, Json v);

  std::size_t size() const;  ///< elements (array) or keys (object)

  /// Serializes; \p indent > 0 pretty-prints with that many spaces.
  std::string dump(int indent = 0) const;

  /// Escapes a string for embedding in JSON output (exposed for tests).
  static std::string escape(const std::string& s);

 private:
  void write(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace omniboost::util
