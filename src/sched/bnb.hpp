#pragma once
/// \file bnb.hpp
/// Anytime-optimal reference scheduler: depth-first branch-and-bound over
/// per-layer device assignments against the closed-form analytic objective
/// (sim::AnalyticModel::evaluate(...).avg_throughput — the same function the
/// analytic evaluator factory exposes, so its optima are directly comparable
/// with ExhaustiveScheduler ground truth).
///
/// The search maximizes, so the roles are: the INCUMBENT (best complete
/// mapping found so far, seeded by GreedyScheduler) certifies a lower bound
/// on the optimum; the admissible relaxation (sim::RelaxedBound — every
/// uncommitted layer on its best device, contention-free) certifies an upper
/// bound on each subtree. A subtree whose bound cannot strictly beat the
/// incumbent is pruned, which preserves the optimal VALUE exactly.
///
/// Anytime contract: schedule() always returns a valid mapping. When the
/// wall-clock/node budget (BnbConfig::{timeout_ms, max_nodes}) expires the
/// incumbent is returned with proved_optimal=false and upper_bound equal to
/// the max of the incumbent and every unexplored subtree's bound — still a
/// certified interval containing the optimum. With an unexhausted budget
/// proved_optimal=true and lower_bound == upper_bound == expected_reward.

#include <string>

#include "core/scheduler.hpp"
#include "models/zoo.hpp"
#include "sched/reduce.hpp"
#include "sim/analytic.hpp"

namespace omniboost::sched {

/// Branch-and-bound controls.
struct BnbConfig {
  std::size_t stage_limit = 3;  ///< the paper's x = pipeline-stage cap
  /// Wall-clock budget in milliseconds; 0 = unlimited. Checked coarsely
  /// (every few dozen nodes), so overruns stay in the microsecond range.
  double timeout_ms = 0.0;
  std::size_t max_nodes = 0;  ///< node budget; 0 = unlimited
  /// Seed the incumbent with GreedyScheduler's mapping, guaranteeing the
  /// anytime result is never worse than Greedy. Off is useful only for
  /// order-agreement tests (first-in-canonical-order argmax).
  bool seed_incumbent = true;
  /// Run sched::reduce_search_space first and search the reduced space
  /// (dominance-pruned per-layer choices + symmetry-canonical branching).
  /// Optimal value is preserved either way; off searches the raw space.
  bool use_reduction = true;
};

/// The exact/anytime reference scheduler.
class BranchAndBoundScheduler final : public core::IScheduler {
 public:
  BranchAndBoundScheduler(std::string name, const models::ModelZoo& zoo,
                          const device::DeviceSpec& device,
                          BnbConfig config = {});

  std::string name() const override { return name_; }

  /// Runs the bounded depth-first search; see the anytime contract above.
  core::ScheduleResult schedule(const workload::Workload& w) override;

 private:
  std::string name_;
  const models::ModelZoo* zoo_;
  sim::AnalyticModel model_;  ///< owns a DeviceSpec copy; non-copyable
  BnbConfig config_;
};

}  // namespace omniboost::sched
