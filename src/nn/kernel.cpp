#include "nn/kernel.hpp"

#include <stdexcept>

#include "tensor/simd.hpp"

namespace omniboost::nn {

namespace {
KernelKind g_default_kernel = KernelKind::kGemm;
}  // namespace

KernelKind default_kernel() { return g_default_kernel; }

void set_default_kernel(KernelKind kind) { g_default_kernel = kind; }

const char* kernel_name(KernelKind kind) {
  switch (kind) {
    case KernelKind::kReference:
      return "reference";
    case KernelKind::kGemm:
      return "gemm";
    case KernelKind::kSimd:
      return "simd";
  }
  return "?";
}

KernelKind parse_kernel_name(const std::string& name) {
  if (name == "reference") return KernelKind::kReference;
  if (name == "gemm") return KernelKind::kGemm;
  if (name == "simd") return KernelKind::kSimd;
  throw std::invalid_argument("unknown kernel '" + name +
                              "' (reference|gemm|simd)");
}

KernelKind resolve_kernel(KernelKind requested) {
  if (requested == KernelKind::kSimd && !tensor::simd_supported()) {
    return KernelKind::kGemm;
  }
  return requested;
}

std::string kernel_resolution_note(KernelKind requested) {
  const KernelKind effective = resolve_kernel(requested);
  if (effective == requested) return {};
  return std::string("kernel '") + kernel_name(requested) +
         "' unavailable on this host (SIMD kernels not compiled in or CPU "
         "lacks AVX2+FMA); using '" +
         kernel_name(effective) + "'";
}

}  // namespace omniboost::nn
