// The comparison schedulers: GPU-only baseline, MOSAIC (linear regression +
// slicing), GA (measurement-driven evolution + merge repair).

#include <gtest/gtest.h>

#include <set>

#include "models/zoo.hpp"
#include "sched/baseline.hpp"
#include "sched/ga.hpp"
#include "sched/mosaic.hpp"
#include "sim/des.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace {

using namespace omniboost;
using models::ModelId;
using models::ModelZoo;
using sim::Assignment;
using sim::ComponentId;
using workload::Workload;

constexpr auto G = ComponentId::kGpu;
constexpr auto B = ComponentId::kBigCpu;
constexpr auto L = ComponentId::kLittleCpu;

const ModelZoo& zoo() {
  static const ModelZoo z;
  return z;
}

TEST(Baseline, MapsEverythingToGpu) {
  auto sched = sched::AllOnScheduler::gpu_baseline(zoo());
  const Workload w{{ModelId::kAlexNet, ModelId::kVgg19}};
  const auto r = sched.schedule(w);
  EXPECT_EQ(r.mapping.num_dnns(), 2u);
  EXPECT_EQ(r.mapping.max_stages(), 1u);
  for (std::size_t d = 0; d < 2; ++d)
    for (ComponentId c : r.mapping.assignment(d)) EXPECT_EQ(c, G);
  EXPECT_EQ(sched.name(), "Baseline");
  EXPECT_EQ(r.evaluations, 0u);
  EXPECT_EQ(r.board_seconds, 0.0);
}

TEST(Baseline, OtherTargets) {
  sched::AllOnScheduler sched(zoo(), B, "all-big");
  const auto r = sched.schedule(Workload{{ModelId::kSqueezeNet}});
  for (ComponentId c : r.mapping.assignment(0)) EXPECT_EQ(c, B);
}

class MosaicTest : public ::testing::Test {
 protected:
  device::DeviceSpec device_ = device::make_hikey970();
};

TEST_F(MosaicTest, TrainingConsumesRequestedDataPoints) {
  sched::MosaicConfig cfg;
  cfg.data_points = 2'000;
  sched::MosaicScheduler m(zoo(), device_, cfg);
  EXPECT_EQ(m.training_samples(), 2'000u);
  EXPECT_GT(m.training_board_seconds(), 0.0);
}

TEST_F(MosaicTest, LinearModelTracksLayerTimes) {
  sched::MosaicScheduler m(zoo(), device_);
  const device::CostModel cost(device_);
  // R^2-style check: predictions of the big-CPU model correlate strongly
  // with the true layer times it was fitted on.
  const auto& model = m.component_model(ComponentId::kBigCpu);
  double se = 0.0, st = 0.0, mean = 0.0;
  std::size_t n = 0;
  for (const auto& net : zoo().networks())
    for (const auto& layer : net.layers) {
      mean += cost.layer_time(layer, ComponentId::kBigCpu);
      ++n;
    }
  mean /= static_cast<double>(n);
  for (const auto& net : zoo().networks())
    for (const auto& layer : net.layers) {
      const double t = cost.layer_time(layer, ComponentId::kBigCpu);
      const double p = model.predict(layer);
      se += (t - p) * (t - p);
      st += (t - mean) * (t - mean);
    }
  EXPECT_LT(se / st, 0.2);  // R^2 > 0.8
}

TEST_F(MosaicTest, PredictionsAreNonNegative) {
  sched::MosaicScheduler m(zoo(), device_);
  for (const auto& net : zoo().networks())
    for (const auto& layer : net.layers)
      for (auto c : device::kAllComponents)
        EXPECT_GE(m.component_model(c).predict(layer), 0.0);
}

TEST_F(MosaicTest, RespectsStageLimit) {
  sched::MosaicScheduler m(zoo(), device_);
  util::Rng rng(3);
  for (int i = 0; i < 5; ++i) {
    const Workload w = workload::random_mix(rng, 4);
    const auto r = m.schedule(w);
    EXPECT_LE(r.mapping.max_stages(), 3u);
    EXPECT_EQ(r.evaluations, 4u);
  }
}

TEST_F(MosaicTest, DistributesHeavyMixAcrossComponents) {
  sched::MosaicScheduler m(zoo(), device_);
  const Workload w{{ModelId::kVgg19, ModelId::kResNet101,
                    ModelId::kInceptionV4, ModelId::kVgg16}};
  const auto r = m.schedule(w);
  std::set<ComponentId> used;
  for (const auto& a : r.mapping.assignments())
    for (ComponentId c : a) used.insert(c);
  EXPECT_GE(used.size(), 2u);  // load balancing forces distribution
}

TEST_F(MosaicTest, BeatsBaselineOnHeavyMix) {
  sched::MosaicScheduler m(zoo(), device_);
  auto base = sched::AllOnScheduler::gpu_baseline(zoo());
  sim::DesSimulator sim(device_);
  const Workload w{{ModelId::kVgg19, ModelId::kResNet101,
                    ModelId::kInceptionV4, ModelId::kVgg16}};
  const auto nets = w.resolve(zoo());
  const double tm =
      sim.simulate(nets, m.schedule(w).mapping).avg_throughput;
  const double tb =
      sim.simulate(nets, base.schedule(w).mapping).avg_throughput;
  EXPECT_GT(tm, tb);
}

TEST(GaRepair, ReducesStagesToLimit) {
  Assignment a{G, B, G, L, B, G, B, L, G, B};  // 10 stages
  sched::GaScheduler::repair_stages(a, 3);
  EXPECT_LE(sim::num_stages(a), 3u);
  EXPECT_EQ(a.size(), 10u);
}

TEST(GaRepair, LeavesCompliantAssignmentsAlone) {
  Assignment a{G, G, B, B, L};
  const Assignment before = a;
  sched::GaScheduler::repair_stages(a, 3);
  EXPECT_EQ(a, before);
}

TEST(GaRepair, PropertyOverRandomChromosomes) {
  util::Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    Assignment a(1 + rng.below(40));
    for (auto& c : a) c = static_cast<ComponentId>(rng.below(3));
    sched::GaScheduler::repair_stages(a, 3);
    EXPECT_LE(sim::num_stages(a), 3u);
  }
}

TEST(GaRepair, LimitOneCollapsesToSingleComponent) {
  Assignment a{G, B, L, G, B};
  sched::GaScheduler::repair_stages(a, 1);
  EXPECT_EQ(sim::num_stages(a), 1u);
}

class GaTest : public ::testing::Test {
 protected:
  device::DeviceSpec device_ = device::make_hikey970();
};

TEST_F(GaTest, ProducesValidMappingWithAccounting) {
  sched::GaConfig cfg;
  cfg.population = 8;
  cfg.generations = 3;
  sched::GaScheduler ga(zoo(), device_, cfg);
  const Workload w{{ModelId::kAlexNet, ModelId::kMobileNet}};
  const auto r = ga.schedule(w);
  EXPECT_LE(r.mapping.max_stages(), 3u);
  EXPECT_EQ(r.mapping.num_dnns(), 2u);
  // pop + (pop - elitism) * generations fitness measurements.
  EXPECT_EQ(r.evaluations, 8u + 6u * 3u);
  EXPECT_NEAR(r.board_seconds,
              static_cast<double>(r.evaluations) * cfg.board_seconds_per_eval,
              1e-9);
  EXPECT_GT(r.expected_reward, 0.0);
}

TEST_F(GaTest, DeterministicGivenSeed) {
  sched::GaConfig cfg;
  cfg.population = 8;
  cfg.generations = 2;
  const Workload w{{ModelId::kSqueezeNet, ModelId::kAlexNet}};
  sched::GaScheduler a(zoo(), device_, cfg), b(zoo(), device_, cfg);
  EXPECT_EQ(a.schedule(w).mapping, b.schedule(w).mapping);
}

TEST_F(GaTest, BeatsBaselineOnHeavyMix) {
  // The default GA budget models the paper's ~5 board-minutes (~26 noisy
  // measurements); give this check a little more search so it is stable.
  sched::GaConfig cfg;
  cfg.population = 16;
  cfg.generations = 6;
  cfg.fitness_noise = 0.1;
  sched::GaScheduler ga(zoo(), device_, cfg);
  auto base = sched::AllOnScheduler::gpu_baseline(zoo());
  sim::DesSimulator sim(device_);
  const Workload w{{ModelId::kVgg19, ModelId::kResNet50,
                    ModelId::kInceptionV3, ModelId::kMobileNet}};
  const auto nets = w.resolve(zoo());
  const double tg = sim.simulate(nets, ga.schedule(w).mapping).avg_throughput;
  const double tb =
      sim.simulate(nets, base.schedule(w).mapping).avg_throughput;
  EXPECT_GT(tg, 1.1 * tb);
}

TEST_F(GaTest, ConfigValidation) {
  sched::GaConfig bad;
  bad.population = 2;
  EXPECT_THROW(sched::GaScheduler(zoo(), device_, bad),
               std::invalid_argument);
  sched::GaConfig elit;
  elit.population = 8;
  elit.elitism = 8;
  EXPECT_THROW(sched::GaScheduler(zoo(), device_, elit),
               std::invalid_argument);
}

}  // namespace
