#pragma once
/// \file analytic.hpp
/// Closed-form steady-state approximation of the board. Under saturated
/// round-robin sharing, every segment resident on component alpha completes
/// one frame per D_alpha = sum of service times on alpha, so a stream's rate
/// is bounded by its worst segment's component load and by its slowest
/// inter-stage transfer. Orders of magnitude faster than the DES; used for
/// quick estimates and cross-validated against the DES in the test suite.

#include "sim/report.hpp"
#include "sim/segments.hpp"

namespace omniboost::sim {

/// Analytic steady-state throughput model.
class AnalyticModel {
 public:
  /// Owns a copy of the DeviceSpec, so callers may pass temporaries
  /// (e.g. make_hikey970() inline). Non-copyable: the internal cost model
  /// points into the owned spec.
  explicit AnalyticModel(const device::DeviceSpec& device)
      : device_(device), cost_(device_) {}

  AnalyticModel(const AnalyticModel&) = delete;
  AnalyticModel& operator=(const AnalyticModel&) = delete;

  /// Predicts steady-state throughput of a workload under a mapping.
  ThroughputReport evaluate(const NetworkList& nets,
                            const Mapping& mapping) const;

  const device::CostModel& cost_model() const { return cost_; }

 private:
  device::DeviceSpec device_;  ///< owned copy; cost_ points into it
  device::CostModel cost_;
};

}  // namespace omniboost::sim
