#pragma once
/// \file rng.hpp
/// Deterministic random number generation for the whole framework.
///
/// Every stochastic component of OmniBoost (mix generation, MCTS rollouts,
/// the genetic algorithm, estimator weight init, data shuffling) consumes an
/// explicit Rng so that experiments are exactly reproducible from a seed.

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

namespace omniboost::util {

/// xoshiro256** PRNG seeded via splitmix64.
///
/// Chosen over std::mt19937 because its state is tiny, it is trivially
/// copyable (useful for forking deterministic sub-streams), and its output is
/// stable across standard-library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes the state from \p seed using splitmix64 expansion.
  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& s : state_) s = split_mix64(x);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Raw 64-bit draw (xoshiro256** next()).
  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t below(std::uint64_t n) {
    if (n == 0) throw std::invalid_argument("Rng::below: n must be > 0");
    // Lemire-style unbiased bounded draw with rejection.
    const std::uint64_t threshold = (-n) % n;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in the closed range [lo, hi].
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("Rng::range: lo > hi");
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Standard normal draw (Box–Muller, one value per call).
  double normal() {
    // Re-draw to avoid log(0).
    double u1 = 0.0;
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.28318530717958648 * u2);
  }

  /// Normal draw with given mean / stddev.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Bernoulli draw with probability \p p of true.
  bool chance(double p) { return uniform() < p; }

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[below(i)]);
    }
  }

  /// Picks a uniformly random element index-wise. Requires non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    if (v.empty()) throw std::invalid_argument("Rng::pick: empty vector");
    return v[below(v.size())];
  }

  /// Forks an independent deterministic sub-stream (e.g. one per worker).
  Rng fork() { return Rng((*this)() ^ 0xa0761d6478bd642fULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  static std::uint64_t split_mix64(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint64_t state_[4]{};
};

/// Deterministically derives the seed of sub-stream \p index from a base
/// seed — the canonical way to give each parallel task (MCTS worker, dataset
/// slot, trainer replica) its own independent Rng:
///
///   util::Rng rng(util::fork_stream(master_seed, task_index));
///
/// Splitmix-style: the index is folded in with the golden-ratio increment
/// and passed through two splitmix64 finalizer rounds, so nearby (seed,
/// index) pairs land far apart and the mapping is stateless — unlike
/// Rng::fork(), the result depends only on (base_seed, index), never on how
/// many streams were forked before. This is what makes slot-seeded parallel
/// pipelines byte-identical regardless of worker count.
inline std::uint64_t fork_stream(std::uint64_t base_seed,
                                 std::uint64_t index) {
  std::uint64_t z = base_seed ^ (0x9e3779b97f4a7c15ULL * (index + 1));
  for (int round = 0; round < 2; ++round) {
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
  }
  return z;
}

}  // namespace omniboost::util
