/// \file zoo_residual.cpp
/// ResNet-34/50/101. Each basic/bottleneck block is one schedulable layer:
/// cutting inside a skip connection would force two concurrent inter-component
/// transfers, which no practical pipeline does.

#include <array>

#include "models/net_builder.hpp"
#include "models/zoo.hpp"

namespace omniboost::models {

namespace {
constexpr Dims kImageNet224{3, 224, 224};

/// Adds conv1 + maxpool stem common to all ResNets.
void add_stem(NetBuilder& b) {
  b.conv(64, 7, 2, 3, "conv1").maxpool(3, 2, 1, "pool1");
}

/// Adds the classifier head.
void add_head(NetBuilder& b) {
  b.global_avgpool("gap").fc(1000, true, "fc");
}

NetworkDesc make_resnet_basic(const char* name,
                              const std::array<std::size_t, 4>& depths) {
  constexpr std::array<std::size_t, 4> kChannels{64, 128, 256, 512};
  NetBuilder b(name, kImageNet224);
  add_stem(b);
  for (std::size_t stage = 0; stage < 4; ++stage) {
    for (std::size_t i = 0; i < depths[stage]; ++i) {
      const std::size_t stride = (stage > 0 && i == 0) ? 2 : 1;
      b.residual_basic(kChannels[stage], stride,
                       "res" + std::to_string(stage + 2) + "_" +
                           std::to_string(i + 1));
    }
  }
  add_head(b);
  return std::move(b).build();
}

NetworkDesc make_resnet_bottleneck(const char* name,
                                   const std::array<std::size_t, 4>& depths) {
  constexpr std::array<std::size_t, 4> kMid{64, 128, 256, 512};
  NetBuilder b(name, kImageNet224);
  add_stem(b);
  for (std::size_t stage = 0; stage < 4; ++stage) {
    for (std::size_t i = 0; i < depths[stage]; ++i) {
      const std::size_t stride = (stage > 0 && i == 0) ? 2 : 1;
      b.residual_bottleneck(kMid[stage], kMid[stage] * 4, stride,
                            "res" + std::to_string(stage + 2) + "_" +
                                std::to_string(i + 1));
    }
  }
  add_head(b);
  return std::move(b).build();
}
}  // namespace

NetworkDesc make_resnet34() {
  return make_resnet_basic("ResNet-34", {3, 4, 6, 3});
}

NetworkDesc make_resnet50() {
  return make_resnet_bottleneck("ResNet-50", {3, 4, 6, 3});
}

NetworkDesc make_resnet101() {
  return make_resnet_bottleneck("ResNet-101", {3, 4, 23, 3});
}

}  // namespace omniboost::models
