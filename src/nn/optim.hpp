#pragma once
/// \file optim.hpp
/// First-order optimizers over Module parameter lists.

#include <cstddef>
#include <vector>

#include "nn/module.hpp"

namespace omniboost::nn {

/// Interface: consumes accumulated gradients and updates parameter values.
class Optimizer {
 public:
  Optimizer(std::vector<Param*> params, float lr);
  virtual ~Optimizer() = default;

  /// Applies one update step from the currently-accumulated gradients.
  virtual void step() = 0;

  /// Clears gradients of all managed parameters.
  void zero_grad();

  /// Current learning rate (mutable so LR schedulers can drive it).
  float lr() const { return lr_; }
  void set_lr(float lr);

 protected:
  std::vector<Param*> params_;
  float lr_;
};

/// Stochastic gradient descent with classical momentum and L2 weight decay.
class SGD final : public Optimizer {
 public:
  SGD(std::vector<Param*> params, float lr, float momentum = 0.0f,
      float weight_decay = 0.0f);
  void step() override;

 private:
  float momentum_, weight_decay_;
  std::vector<tensor::Tensor> velocity_;
};

/// Adam (Kingma & Ba, 2015) with optional decoupled weight decay.
class Adam final : public Optimizer {
 public:
  Adam(std::vector<Param*> params, float lr = 1e-3f, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);
  void step() override;

 private:
  float beta1_, beta2_, eps_, weight_decay_;
  std::size_t t_ = 0;
  std::vector<tensor::Tensor> m_, v_;
};

/// RMSprop (Tieleman & Hinton, 2012): gradient scaling by a running average
/// of squared gradients. Provided as a training ablation point alongside
/// SGD and Adam.
class RMSprop final : public Optimizer {
 public:
  RMSprop(std::vector<Param*> params, float lr = 1e-3f, float alpha = 0.99f,
          float eps = 1e-8f, float weight_decay = 0.0f);
  void step() override;

 private:
  float alpha_, eps_, weight_decay_;
  std::vector<tensor::Tensor> sq_avg_;
};

}  // namespace omniboost::nn
