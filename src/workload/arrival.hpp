#pragma once
/// \file arrival.hpp
/// Stochastic arrival processes: where workload::Scenario scripts a fixed
/// event list, an ArrivalProcess describes the *law* the events are drawn
/// from — a Poisson stream, a diurnal (time-varying-rate) cycle, or a
/// flash-crowd burst — and sample_scenario() turns it into a valid Scenario
/// deterministically from a util::Rng. This is how the fleet layer
/// (core::Cluster, bench_cluster_scaling, `omniboost_cli serve --arrival`)
/// generates offered load: the same (process, horizon, seed) triple always
/// yields the byte-identical scenario, so fleet experiments replay exactly.
///
/// Non-homogeneous processes sample by Lewis–Shedler thinning: candidate
/// points are drawn from a homogeneous process at the peak rate and accepted
/// with probability rate(t)/peak. The pure Poisson path skips the acceptance
/// draw entirely, so its interarrival gaps are *exactly* Exponential(rate) —
/// tests/arrival_test.cpp pins their moments.

#include <cstddef>
#include <string>

#include "util/rng.hpp"
#include "workload/scenario.hpp"

namespace omniboost::workload {

/// The law arrivals are drawn from.
enum class ArrivalKind {
  kPoisson,     ///< constant rate
  kDiurnal,     ///< rate * (1 + amplitude * sin(2*pi*t / period))
  kFlashCrowd,  ///< rate, except rate * height inside [start, start+width)
};

/// A stream-arrival process over the model zoo. Arrivals pick a uniformly
/// random model among those not currently on the board (streams are keyed by
/// model, mirroring Scenario's duplicate-free-mix invariant), live for an
/// Exponential(1/mean_lifetime_s) time, then depart. Arrivals that land
/// while the board already holds max_concurrent streams (or every model) are
/// dropped on the floor — offered load above capacity simply never enters
/// the scenario, and no model/lifetime/SLO draws are consumed for it.
struct ArrivalProcess {
  ArrivalKind kind = ArrivalKind::kPoisson;
  /// Base arrival rate lambda in streams per second (> 0, finite). For the
  /// diurnal and flash-crowd kinds this is the off-peak baseline.
  double rate_per_s = 0.2;
  /// Mean stream lifetime in seconds (Exponential; > 0, finite).
  double mean_lifetime_s = 20.0;
  /// Concurrency ceiling, in [1, models::kNumModels].
  std::size_t max_concurrent = 4;

  /// kDiurnal: sinusoidal rate envelope
  ///   rate(t) = rate_per_s * (1 + amplitude * sin(2*pi*t / period)).
  double diurnal_period_s = 60.0;
  double diurnal_amplitude = 0.8;  ///< in [0, 1] (1 = rate touches zero)

  /// kFlashCrowd: rate jumps to rate_per_s * burst_height inside
  /// [burst_start_s, burst_start_s + burst_width_s), baseline elsewhere.
  double burst_start_s = 10.0;
  double burst_width_s = 5.0;
  double burst_height = 8.0;  ///< >= 1

  /// Latency-SLO band: each accepted arrival carries an SLO with probability
  /// slo_fraction, drawn uniformly from [slo_min_ms, slo_max_ms]. 0 (the
  /// default) consumes no Rng draws at all, so SLO-free processes sample
  /// byte-identical scenarios whatever the band bounds say.
  double slo_fraction = 0.0;
  double slo_min_ms = 50.0;
  double slo_max_ms = 500.0;
};

/// Instantaneous arrival rate lambda(t) of \p process (per second).
double arrival_rate_at(const ArrivalProcess& process, double t_s);

/// Peak rate sup_t lambda(t) — the thinning envelope sample_scenario uses.
double peak_arrival_rate(const ArrivalProcess& process);

/// Draws one scenario from \p process over [0, horizon_s]. Deterministic in
/// (process, horizon_s, rng state): drive it with
/// `util::Rng rng(util::fork_stream(seed, slot))` to reproduce a sweep
/// bit-for-bit. Departures past the horizon are truncated (the scenario may
/// end with streams still serving). The result can be empty when no arrival
/// lands inside the horizon. Throws std::invalid_argument on invalid process
/// parameters or a non-finite/negative horizon.
Scenario sample_scenario(const ArrivalProcess& process, double horizon_s,
                         util::Rng& rng);

/// Parses the CLI spec grammar (throws std::invalid_argument on anything
/// else; all numbers must be finite and in range):
///   poisson:<rate>
///   diurnal:<rate>:<period_s>:<amplitude>
///   flash:<rate>:<start_s>:<width_s>:<height>
/// Lifetime, concurrency ceiling and SLO band keep their defaults — the CLI
/// layers its own flags on top of the parsed process.
ArrivalProcess parse_arrival_spec(const std::string& spec);

/// One-line human-readable summary, e.g. "poisson(rate 0.5/s, life 20 s)".
std::string describe(const ArrivalProcess& process);

}  // namespace omniboost::workload
