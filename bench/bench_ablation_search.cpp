/// \file bench_ablation_search.cpp
/// Ablation A5 (DESIGN.md): is MCTS buying anything over naive exploration?
/// Every search strategy gets the *same* trained estimator and the *same*
/// evaluation budget (the paper's 500 queries) on the same workloads:
/// random sampling, restarting hill climbing, simulated annealing, MCTS
/// (OmniBoost), plus the zero-query greedy list scheduler. Scores are
/// measured on the board simulator and normalized to all-on-GPU.

#include "bench_common.hpp"
#include "sched/greedy.hpp"
#include "sched/local_search.hpp"
#include "sched/search_common.hpp"

using namespace omniboost;

int main() {
  constexpr std::uint64_t kSeed = 19;
  constexpr std::size_t kBudget = 500;
  bench::banner("Ablation A5 — search strategy at equal budget",
                "Section IV-C (MCTS motivation)", kSeed);

  bench::Context ctx;
  std::printf("training the throughput estimator (calibrated campaign, see EXPERIMENTS.md)...\n\n");
  ctx.train_estimator();

  const auto factory = sched::estimator_evaluator_factory(
      ctx.zoo(), ctx.embedding(), ctx.estimator());

  sched::GreedyScheduler greedy(ctx.zoo(), ctx.device());

  sched::LocalSearchConfig rs_cfg;
  rs_cfg.budget = kBudget;
  rs_cfg.seed = kSeed;
  sched::RandomSearchScheduler random("RandomSearch", ctx.zoo(), factory,
                                      rs_cfg);

  sched::HillClimbConfig hc_cfg;
  hc_cfg.budget = kBudget;
  hc_cfg.seed = kSeed;
  sched::HillClimbScheduler climb("HillClimb", ctx.zoo(), factory, hc_cfg);

  sched::AnnealingConfig sa_cfg;
  sa_cfg.budget = kBudget;
  sa_cfg.seed = kSeed;
  sched::SimulatedAnnealingScheduler anneal("Annealing", ctx.zoo(), factory,
                                            sa_cfg);

  core::OmniBoostConfig ob_cfg;
  ob_cfg.mcts.budget = kBudget;
  ob_cfg.mcts.seed = kSeed;
  core::OmniBoostScheduler omni(ctx.zoo(), ctx.embedding(), ctx.estimator(),
                                ob_cfg);

  util::Table t({"mix", "workload", "Greedy", "Random", "HillClimb",
                 "Annealing", "MCTS"});
  std::array<double, 5> sums{};

  util::Rng rng(kSeed);
  constexpr int kMixes = 5;
  for (int mix = 1; mix <= kMixes; ++mix) {
    const workload::Workload w = workload::random_mix(rng, 4);
    const sim::Mapping all_gpu = sim::Mapping::all_on(
        w.layer_counts(ctx.zoo()), device::ComponentId::kGpu);
    const double tb = ctx.measure(w, all_gpu);

    const std::array<double, 5> norm = {
        ctx.measure(w, greedy.schedule(w).mapping) / tb,
        ctx.measure(w, random.schedule(w).mapping) / tb,
        ctx.measure(w, climb.schedule(w).mapping) / tb,
        ctx.measure(w, anneal.schedule(w).mapping) / tb,
        ctx.measure(w, omni.schedule(w).mapping) / tb,
    };
    for (std::size_t s = 0; s < norm.size(); ++s) sums[s] += norm[s];
    t.add_row({"mix-" + std::to_string(mix), w.describe(),
               util::fmt(norm[0], 2), util::fmt(norm[1], 2),
               util::fmt(norm[2], 2), util::fmt(norm[3], 2),
               util::fmt(norm[4], 2)});
  }
  std::vector<std::string> avg = {"Average", ""};
  for (const double s : sums) avg.push_back(util::fmt(s / kMixes, 2));
  t.add_row(std::move(avg));

  std::printf("--- 4-DNN mixes, %zu estimator queries per informed search "
              "(normalized to all-on-GPU) ---\n", kBudget);
  bench::report("ablation_search", t);

  std::printf("\npaper check: informed searches beat the zero-query greedy; "
              "MCTS is at least competitive with budget-matched local "
              "searches while needing no temperature/stall tuning\n");
  return 0;
}
