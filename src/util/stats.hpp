#pragma once
/// \file stats.hpp
/// Small statistics helpers used by dataset preprocessing, benches and tests.

#include <cstddef>
#include <vector>

namespace omniboost::util {

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Used for the estimator's target-standardization preprocessing layer and by
/// benches to summarize throughput distributions.
class RunningStats {
 public:
  void add(double x);

  /// Merges another accumulator into this one (parallel Welford update).
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance; 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a vector; 0 for empty input.
double mean(const std::vector<double>& v);

/// Population standard deviation; 0 for fewer than 2 elements.
double stddev(const std::vector<double>& v);

/// Geometric mean; requires all elements > 0.
double geomean(const std::vector<double>& v);

/// p-th percentile (p in [0,100]) via linear interpolation on a sorted copy.
double percentile(std::vector<double> v, double p);

/// Normalization parameters: y' = (y - shift) / scale.
///
/// The paper applies two preprocessing steps to estimator targets:
/// standardization (z-score) followed by min-max scaling to [0, 1]. Both are
/// affine, so their composition is stored as a single Affine1D that can be
/// inverted exactly at inference time.
struct Affine1D {
  double shift = 0.0;
  double scale = 1.0;

  double apply(double y) const { return (y - shift) / scale; }
  double invert(double t) const { return t * scale + shift; }

  /// Composes: first this, then \p outer.
  Affine1D then(const Affine1D& outer) const {
    // outer.apply(apply(y)) = (y - (shift + outer.shift*scale)) /
    //                         (scale * outer.scale)
    return Affine1D{shift + outer.shift * scale, scale * outer.scale};
  }
};

/// Fits a z-score standardizer over \p v (scale floored to avoid div-by-0).
Affine1D fit_standardizer(const std::vector<double>& v);

/// Fits a min-max normalizer mapping [min,max] -> [0,1].
Affine1D fit_minmax(const std::vector<double>& v);

}  // namespace omniboost::util
