#include "daemon.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "models/model_id.hpp"
#include "sched/bnb.hpp"
#include "util/clock.hpp"
#include "util/net.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "workload/scenario.hpp"

namespace omniboost::daemon {

namespace {

std::string trim(const std::string& s) {
  const std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// Wire replies are one line each; fold any multi-line exception text.
std::string one_line(std::string text) {
  for (char& c : text)
    if (c == '\n' || c == '\r') c = ' ';
  return text;
}

/// Splits a formatted report into reply lines (send_line forbids '\n').
void append_lines(std::vector<std::string>* reply, const std::string& text) {
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) reply->push_back(line);
}

class Daemon {
 public:
  Daemon(const models::ModelZoo& zoo, const core::Cluster& cluster,
         const core::SchedulerFactory& factory, core::IPlacementPolicy& policy,
         const DaemonConfig& config)
      : zoo_(&zoo),
        cluster_(&cluster),
        config_(config),
        clock_(config.time_scale),
        session_(cluster, factory, policy),
        bg_done_version_(cluster.boards().size(),
                         ~static_cast<std::uint64_t>(0)),
        pool_(2) {}

  int run() {
    util::TcpListener listener(config_.port);
    // Tests and scripts parse this exact line to learn the ephemeral port.
    std::printf("listening on %u\n", static_cast<unsigned>(listener.port()));
    std::fflush(stdout);
    while (!shutdown_) {
      util::TcpStream client = listener.accept(config_.idle_poll_ms);
      if (!client.valid()) {
        idle_tick();
        continue;
      }
      serve_client(client);
    }
    // Let an in-flight background slice finish before tearing down (its
    // lambda writes daemon members).
    if (bg_running_) pool_.async_join();
    return 0;
  }

 private:
  void serve_client(util::TcpStream& client) {
    while (!shutdown_) {
      std::string line;
      const util::TcpStream::RecvStatus st =
          client.recv_line(&line, config_.idle_poll_ms);
      if (st == util::TcpStream::RecvStatus::kClosed) return;
      if (st == util::TcpStream::RecvStatus::kTimeout) {
        idle_tick();
        continue;
      }
      const std::vector<std::string> reply = handle(line);
      try {
        for (const std::string& r : reply) client.send_line(r);
      } catch (const std::runtime_error&) {
        return;  // client vanished mid-reply; the command already applied
      }
    }
  }

  /// One command in, a complete reply out: zero or more body lines
  /// terminated by exactly one `ok` or `err <reason>` line. Never throws —
  /// a malformed or illegal command costs the client an error reply, never
  /// the daemon its life.
  std::vector<std::string> handle(const std::string& raw) {
    std::vector<std::string> reply;
    const std::string line = trim(raw);
    if (line.empty() || line[0] == '#') {
      reply.push_back("ok");
      return reply;
    }
    std::istringstream is(line);
    std::string cmd;
    is >> cmd;
    try {
      if (cmd == "shutdown") {
        shutdown_ = true;
        reply.push_back("ok");
      } else if (cmd == "status") {
        append_lines(&reply, core::format_cluster_report(session_.finish()));
        reply.push_back("ok");
      } else if (cmd == "report") {
        char head[160];
        std::snprintf(head, sizeof(head),
                      "uptime: %.3f scenario-s (time-scale x%g) | "
                      "%zu events recorded",
                      clock_.now_s(), clock_.scale(), recorded_.size());
        reply.push_back(head);
        append_lines(&reply, core::format_cluster_report(session_.finish()));
        reply.push_back("ok");
      } else if (cmd == "save-trace") {
        std::string path;
        is >> path;
        if (path.empty())
          throw std::invalid_argument("save-trace: missing path");
        if (recorded_.empty())
          throw std::invalid_argument("save-trace: no events recorded yet");
        workload::save_scenario_file(workload::Scenario(recorded_), path);
        reply.push_back("saved " + std::to_string(recorded_.size()) +
                        " events to " + path);
        reply.push_back("ok");
      } else {
        apply_event(line, &reply);
        reply.push_back("ok");
      }
    } catch (const std::exception& err) {
      reply.clear();
      reply.push_back("err " + one_line(err.what()));
    }
    return reply;
  }

  /// The tentpole's single-parser rule: a daemon command is EXACTLY a trace
  /// clause, parsed by the same workload::parse_event_clause the trace
  /// loader uses, and validated by replaying the recorded prefix plus the
  /// candidate through the Scenario constructor — the daemon cannot accept
  /// a command the offline replayer would reject.
  void apply_event(const std::string& line, std::vector<std::string>* reply) {
    const double t = clock_.now_s();
    const workload::ScenarioEvent e = workload::parse_event_clause(line, t);
    if (workload::is_fault_event(e.kind) && e.board >= session_.size())
      throw std::invalid_argument(
          "board " + std::to_string(e.board) + " out of range (fleet has " +
          std::to_string(session_.size()) + " board(s))");
    std::vector<workload::ScenarioEvent> candidate = recorded_;
    candidate.push_back(e);
    workload::Scenario validated(std::move(candidate));
    const core::ClusterSession::ApplyOutcome out =
        session_.apply(validated.events().back());
    recorded_ = validated.events();
    reply->push_back(describe(e, out));
  }

  std::string describe(const workload::ScenarioEvent& e,
                       const core::ClusterSession::ApplyOutcome& out) const {
    char buf[192];
    const auto board_name = [&](std::size_t b) {
      return cluster_->boards()[b].name.c_str();
    };
    switch (out.kind) {
      case core::ClusterSession::ApplyKind::kAdmitted:
        std::snprintf(buf, sizeof(buf),
                      "admitted %s -> board %zu (%s)%s T=%.3f inf/s",
                      std::string(models::model_name(e.model)).c_str(),
                      out.board, board_name(out.board),
                      out.migrated ? " [rescued]" : "",
                      out.measured_throughput);
        break;
      case core::ClusterSession::ApplyKind::kRejected:
        std::snprintf(buf, sizeof(buf), "rejected %s (no board admits it)",
                      std::string(models::model_name(e.model)).c_str());
        break;
      case core::ClusterSession::ApplyKind::kDeparted:
        std::snprintf(buf, sizeof(buf),
                      "departed %s from board %zu (%s) T=%.3f inf/s",
                      std::string(models::model_name(e.model)).c_str(),
                      out.board, board_name(out.board),
                      out.measured_throughput);
        break;
      case core::ClusterSession::ApplyKind::kSwallowedDeparture:
        std::snprintf(buf, sizeof(buf),
                      "departed %s (was rejected or shed; no-op)",
                      std::string(models::model_name(e.model)).c_str());
        break;
      case core::ClusterSession::ApplyKind::kFault:
      default:
        std::snprintf(buf, sizeof(buf), "fault applied to board %zu (%s)",
                      out.board, board_name(out.board));
        break;
    }
    return buf;
  }

  /// Idle-time background re-search. One slice in flight at most; results
  /// install only if the refinement strictly improved the objective AND the
  /// session version is unchanged (no event raced in while the search ran).
  /// Installs are not scenario events — they never enter the recorded
  /// trace, so saved traces stay exactly what the operator sent.
  void idle_tick() {
    if (!config_.background || config_.background_slice_ms <= 0.0) return;
    if (bg_running_ && !pool_.async_active()) {
      pool_.async_join();
      bg_running_ = false;
      bool installed = false;
      if (bg_result_.improved && session_.version() == bg_version_)
        installed =
            session_.install_mapping(bg_board_, bg_result_.mapping,
                                     clock_.now_s(),
                                     "background re-search (install)");
      session_.note_background_search(installed);
      // One slice per board per version: converged-enough until the next
      // event changes the mix (or speed) and re-arms the board.
      bg_done_version_[bg_board_] = bg_version_;
    }
    if (bg_running_) return;
    const std::size_t n = session_.size();
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t b = (bg_next_ + k) % n;
      if (!session_.board_up(b)) continue;
      const core::ServingSession& s = session_.session(b);
      if (s.idle() || !s.has_previous()) continue;
      if (bg_done_version_[b] == session_.version()) continue;
      // Snapshot everything the worker thread reads; the session itself is
      // only ever touched from the daemon thread.
      workload::Workload w{s.present()};
      sim::Mapping seed = s.previous_mapping();
      device::DeviceSpec dev = session_.board_device(b);
      sched::BnbConfig bc;
      bc.timeout_ms = config_.background_slice_ms;
      bg_board_ = b;
      bg_version_ = session_.version();
      bg_next_ = (b + 1) % n;
      bg_running_ = true;
      pool_.async([this, w = std::move(w), seed = std::move(seed),
                   dev = std::move(dev), bc]() {
        bg_result_ = sched::anytime_refine(*zoo_, dev, w, seed, bc);
      });
      return;
    }
  }

  const models::ModelZoo* zoo_;
  const core::Cluster* cluster_;
  DaemonConfig config_;
  util::PacedClock clock_;
  core::ClusterSession session_;
  std::vector<workload::ScenarioEvent> recorded_;
  bool shutdown_ = false;

  // Background re-search state. bg_result_ is written by the pool worker
  // and read here only after async_join() (which synchronizes).
  bool bg_running_ = false;
  std::size_t bg_board_ = 0;
  std::uint64_t bg_version_ = 0;
  std::size_t bg_next_ = 0;
  std::vector<std::uint64_t> bg_done_version_;
  sched::RefineResult bg_result_;
  util::ThreadPool pool_;  // last member: destroyed first, before bg_result_
};

}  // namespace

int run_daemon(const models::ModelZoo& zoo, const core::Cluster& cluster,
               const core::SchedulerFactory& factory,
               core::IPlacementPolicy& policy, const DaemonConfig& config) {
  Daemon d(zoo, cluster, factory, policy, config);
  return d.run();
}

}  // namespace omniboost::daemon
