// The kernel-level roofline cost model (paper Eq. 1).

#include <gtest/gtest.h>

#include "device/cost_model.hpp"
#include "models/zoo.hpp"

namespace {

using namespace omniboost::device;
using omniboost::models::KernelDesc;
using omniboost::models::KernelKind;
using omniboost::models::ModelId;
using omniboost::models::ModelZoo;

const ModelZoo& zoo() {
  static const ModelZoo z;
  return z;
}

class CostModelTest : public ::testing::Test {
 protected:
  DeviceSpec device_ = make_hikey970();
  CostModel cost_{device_};
};

TEST_F(CostModelTest, ComputeBoundKernelScalesWithFlops) {
  const KernelDesc small{KernelKind::kGemm, 1e9, 1e3};
  const KernelDesc large{KernelKind::kGemm, 2e9, 1e3};
  const double t1 = cost_.kernel_time(small, ComponentId::kGpu);
  const double t2 = cost_.kernel_time(large, ComponentId::kGpu);
  const double overhead = device_.component(ComponentId::kGpu).kernel_overhead_s;
  EXPECT_NEAR((t2 - overhead) / (t1 - overhead), 2.0, 1e-6);
}

TEST_F(CostModelTest, MemoryBoundKernelScalesWithBytes) {
  const KernelDesc k{KernelKind::kIm2col, 0.0, 1e8};
  const double t = cost_.kernel_time(k, ComponentId::kBigCpu);
  const ComponentSpec& c = device_.component(ComponentId::kBigCpu);
  EXPECT_NEAR(t, 1e8 / (c.mem_bw_gbps * 1e9) + c.kernel_overhead_s, 1e-9);
}

TEST_F(CostModelTest, RooflineTakesTheMax) {
  // Heavily memory-bound GEMM: memory time dominates compute time.
  const KernelDesc k{KernelKind::kGemm, 1e6, 1e9};
  const ComponentSpec& c = device_.component(ComponentId::kGpu);
  const double t = cost_.kernel_time(k, ComponentId::kGpu);
  EXPECT_NEAR(t, 1e9 / (c.mem_bw_gbps * 1e9) + c.kernel_overhead_s, 1e-9);
}

TEST_F(CostModelTest, LayerTimeIsSumOfKernelTimes) {
  // Eq. 1: B_l_alpha = sum_k b_k_alpha.
  const auto& layer = zoo().network(ModelId::kVgg19).layers[2];
  double sum = 0.0;
  for (const auto& k : layer.kernels)
    sum += cost_.kernel_time(k, ComponentId::kGpu);
  EXPECT_DOUBLE_EQ(cost_.layer_time(layer, ComponentId::kGpu), sum);
}

TEST_F(CostModelTest, SegmentTimeIsAdditive) {
  const auto& net = zoo().network(ModelId::kAlexNet);
  const double whole = cost_.segment_time(net, 0, 10, ComponentId::kBigCpu);
  const double a = cost_.segment_time(net, 0, 4, ComponentId::kBigCpu);
  const double b = cost_.segment_time(net, 5, 10, ComponentId::kBigCpu);
  EXPECT_NEAR(whole, a + b, whole * 1e-12);
}

TEST_F(CostModelTest, GpuFasterThanLittleOnConvNets) {
  for (ModelId id : {ModelId::kVgg19, ModelId::kResNet50,
                     ModelId::kInceptionV3}) {
    const auto& net = zoo().network(id);
    const double gpu =
        cost_.segment_time(net, 0, net.num_layers() - 1, ComponentId::kGpu);
    const double little = cost_.segment_time(net, 0, net.num_layers() - 1,
                                             ComponentId::kLittleCpu);
    EXPECT_LT(gpu, little) << net.name;
  }
}

TEST_F(CostModelTest, DepthwiseLayersPreferBigCpuOverGpu) {
  // A single depthwise layer should run at least comparably on the big CPU —
  // the motivation for hybrid mappings of MobileNet.
  const auto& net = zoo().network(ModelId::kMobileNet);
  double gpu = 0.0, big = 0.0;
  for (const auto& l : net.layers) {
    if (l.kind != omniboost::models::LayerKind::kDepthwiseConv) continue;
    gpu += cost_.layer_time(l, ComponentId::kGpu);
    big += cost_.layer_time(l, ComponentId::kBigCpu);
  }
  EXPECT_LT(big, gpu);
}

TEST_F(CostModelTest, TransferZeroWithinComponent) {
  EXPECT_EQ(cost_.transfer_time(1e6, ComponentId::kGpu, ComponentId::kGpu),
            0.0);
}

TEST_F(CostModelTest, TransferHasLatencyPlusBandwidthTerm) {
  const double t01 =
      cost_.transfer_time(3e6, ComponentId::kGpu, ComponentId::kBigCpu);
  EXPECT_NEAR(t01,
              device_.link.latency_s + 3e6 / (device_.link.bandwidth_gbps * 1e9),
              1e-12);
  // Symmetric link.
  EXPECT_DOUBLE_EQ(
      t01, cost_.transfer_time(3e6, ComponentId::kBigCpu, ComponentId::kGpu));
}

TEST_F(CostModelTest, WorkingSetGrowsWithRange) {
  const auto& net = zoo().network(ModelId::kVgg16);
  const double small = cost_.segment_working_set_bytes(net, 0, 3);
  const double large = cost_.segment_working_set_bytes(net, 0, 15);
  EXPECT_GT(large, small);
}

TEST_F(CostModelTest, WorkingSetIncludesWeights) {
  const auto& net = zoo().network(ModelId::kVgg19);
  const double ws =
      cost_.segment_working_set_bytes(net, 0, net.num_layers() - 1);
  EXPECT_GT(ws, net.total_weight_bytes());
}

TEST_F(CostModelTest, TrafficIsSumOfLayerTraffic) {
  const auto& net = zoo().network(ModelId::kSqueezeNet);
  double expected = 0.0;
  for (const auto& l : net.layers) expected += l.traffic_bytes();
  EXPECT_NEAR(cost_.segment_traffic_bytes(net, 0, net.num_layers() - 1),
              expected, expected * 1e-12);
}

TEST_F(CostModelTest, BadRangesThrow) {
  const auto& net = zoo().network(ModelId::kAlexNet);
  EXPECT_THROW(cost_.segment_time(net, 5, 4, ComponentId::kGpu),
               std::invalid_argument);
  EXPECT_THROW(cost_.segment_time(net, 0, 99, ComponentId::kGpu),
               std::invalid_argument);
  EXPECT_THROW(cost_.segment_working_set_bytes(net, 3, 2),
               std::invalid_argument);
}

TEST_F(CostModelTest, WholeNetworkTimesAreEmbeddedScale) {
  // Solo GPU inference of the dataset nets should land in the plausible
  // embedded range (tens of ms to ~1 s) — a calibration guard.
  for (ModelId id : omniboost::models::kAllModels) {
    const auto& net = zoo().network(id);
    const double t =
        cost_.segment_time(net, 0, net.num_layers() - 1, ComponentId::kGpu);
    EXPECT_GT(t, 5e-3) << net.name;
    EXPECT_LT(t, 1.5) << net.name;
  }
}

}  // namespace
