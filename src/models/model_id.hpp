#pragma once
/// \file model_id.hpp
/// Identifiers for the 11 DNNs of the paper's dataset (§V): AlexNet,
/// MobileNet, ResNet-34/50/101, VGG-13/16/19, SqueezeNet, Inception-v3/v4.

#include <array>
#include <cstddef>
#include <string_view>

namespace omniboost::models {

/// Dataset DNNs, in the order listed in the paper.
enum class ModelId : std::size_t {
  kAlexNet = 0,
  kMobileNet,
  kResNet34,
  kResNet50,
  kResNet101,
  kVgg13,
  kVgg16,
  kVgg19,
  kSqueezeNet,
  kInceptionV3,
  kInceptionV4,
};

/// Number of models in the dataset (the embedding tensor's M dimension).
inline constexpr std::size_t kNumModels = 11;

/// All model ids in dataset order.
inline constexpr std::array<ModelId, kNumModels> kAllModels = {
    ModelId::kAlexNet,    ModelId::kMobileNet,  ModelId::kResNet34,
    ModelId::kResNet50,   ModelId::kResNet101,  ModelId::kVgg13,
    ModelId::kVgg16,      ModelId::kVgg19,      ModelId::kSqueezeNet,
    ModelId::kInceptionV3, ModelId::kInceptionV4,
};

/// Stable display name, e.g. "ResNet-50".
std::string_view model_name(ModelId id);

/// Inverse of model_name, case-insensitive and tolerant of omitted dashes
/// ("resnet50" == "ResNet-50"). Returns true and sets \p out on success.
bool parse_model_name(std::string_view name, ModelId& out);

/// Index in [0, kNumModels).
constexpr std::size_t model_index(ModelId id) {
  return static_cast<std::size_t>(id);
}

}  // namespace omniboost::models
