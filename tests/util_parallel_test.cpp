// The deterministic-parallelism substrate: util::ThreadPool scheduling
// guarantees, util::fork_stream seed derivation, and the two design-time
// pipelines built on them — slot-seeded dataset generation (byte-identical
// for every worker count) and the trainer's parallel validation pass.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/dataset.hpp"
#include "models/zoo.hpp"
#include "nn/loss.hpp"
#include "sim/des.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace omniboost;

// --- ThreadPool --------------------------------------------------------------

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (const std::size_t workers : {1u, 2u, 4u}) {
    util::ThreadPool pool(workers);
    EXPECT_EQ(pool.size(), workers);
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h = 0;
    pool.parallel_for(hits.size(), [&](std::size_t i, std::size_t worker) {
      EXPECT_LT(worker, pool.size());
      ++hits[i];
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ReusableAcrossJobsAndEmptyJobs) {
  util::ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(0, [&](std::size_t, std::size_t) { total += 1000; });
  EXPECT_EQ(total.load(), 0u);
  for (int round = 0; round < 5; ++round)
    pool.parallel_for(10, [&](std::size_t i, std::size_t) { total += i; });
  EXPECT_EQ(total.load(), 5u * 45u);
}

TEST(ThreadPool, InlineModeRunsInAscendingOrder) {
  util::ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.parallel_for(8, [&](std::size_t i, std::size_t worker) {
    EXPECT_EQ(worker, 0u);
    order.push_back(i);  // safe: single-threaded by contract
  });
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ExceptionsPropagateToCaller) {
  for (const std::size_t workers : {1u, 4u}) {
    util::ThreadPool pool(workers);
    EXPECT_THROW(
        pool.parallel_for(64,
                          [&](std::size_t i, std::size_t) {
                            if (i == 13) throw std::runtime_error("boom");
                          }),
        std::runtime_error);
    // The pool survives a failed job.
    std::atomic<int> ok{0};
    pool.parallel_for(4, [&](std::size_t, std::size_t) { ++ok; });
    EXPECT_EQ(ok.load(), 4);
  }
}

TEST(ThreadPool, RejectsZeroWorkers) {
  EXPECT_THROW(util::ThreadPool(0), std::invalid_argument);
}

// --- fork_stream -------------------------------------------------------------

TEST(ForkStream, DeterministicAndStateless) {
  EXPECT_EQ(util::fork_stream(42, 7), util::fork_stream(42, 7));
  // Unlike Rng::fork(), the result depends only on (seed, index) — not on
  // how many streams were derived before.
  const std::uint64_t direct = util::fork_stream(99, 3);
  (void)util::fork_stream(99, 0);
  (void)util::fork_stream(99, 1);
  EXPECT_EQ(util::fork_stream(99, 3), direct);
}

TEST(ForkStream, NoCollisionsAcrossSeedsAndIndices) {
  // Adjacent seeds and dense index ranges are exactly the hostile case of
  // the slot-seeded pipelines (seed, seed+1, ... campaigns over thousands
  // of slots). All derived seeds must be distinct.
  std::set<std::uint64_t> seen;
  std::size_t n = 0;
  for (std::uint64_t seed = 40; seed < 48; ++seed) {
    for (std::uint64_t index = 0; index < 4096; ++index) {
      seen.insert(util::fork_stream(seed, index));
      ++n;
    }
  }
  EXPECT_EQ(seen.size(), n);
}

TEST(ForkStream, StreamsAreDecorrelated) {
  // First draws of neighbouring sub-streams should look unrelated.
  util::Rng a(util::fork_stream(1, 0));
  util::Rng b(util::fork_stream(1, 1));
  std::size_t agree = 0;
  for (int i = 0; i < 64; ++i)
    agree += (a() >> 63) == (b() >> 63) ? 1 : 0;
  EXPECT_GT(agree, 8u);   // not mirrored
  EXPECT_LT(agree, 56u);  // not identical
}

// --- slot-seeded dataset generation ------------------------------------------

class ParallelDataset : public ::testing::Test {
 protected:
  static const models::ModelZoo& zoo() {
    static const models::ModelZoo z;
    return z;
  }
  static const device::DeviceSpec& spec() {
    static const device::DeviceSpec d = device::make_hikey970();
    return d;
  }
  static const core::EmbeddingTensor& embedding() {
    static const device::CostModel cost(spec());
    static const core::EmbeddingTensor e(zoo(), cost);
    return e;
  }
  static const sim::DesSimulator& board() {
    static const sim::DesSimulator b(spec());
    return b;
  }
};

TEST_F(ParallelDataset, ByteIdenticalForEveryWorkerCount) {
  core::DatasetConfig dc;
  dc.samples = 24;
  dc.seed = 5;
  dc.workers = 1;
  const core::SampleSet one = core::generate_dataset(
      zoo(), embedding(), board(), dc);
  ASSERT_EQ(one.size(), 24u);

  for (const std::size_t workers : {2u, 4u}) {
    dc.workers = workers;
    const core::SampleSet many = core::generate_dataset(
        zoo(), embedding(), board(), dc);
    ASSERT_EQ(many.size(), one.size()) << "workers " << workers;
    for (std::size_t i = 0; i < one.size(); ++i) {
      EXPECT_EQ(one.inputs[i], many.inputs[i])
          << "workers " << workers << " slot " << i;
      EXPECT_EQ(one.targets[i], many.targets[i])
          << "workers " << workers << " slot " << i;
    }
  }
}

TEST_F(ParallelDataset, CatalogVariantByteIdenticalToo) {
  sim::NetworkList nets;
  for (const models::NetworkDesc& n : zoo().networks()) nets.push_back(&n);

  core::DatasetConfig dc;
  dc.samples = 16;
  dc.seed = 11;
  dc.workers = 1;
  const core::SampleSet one =
      core::generate_dataset(nets, embedding(), board(), dc);
  dc.workers = 4;
  const core::SampleSet four =
      core::generate_dataset(nets, embedding(), board(), dc);
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one.inputs[i], four.inputs[i]) << "slot " << i;
    EXPECT_EQ(one.targets[i], four.targets[i]) << "slot " << i;
  }
}

TEST_F(ParallelDataset, LegacySequentialStreamIsUntouched) {
  // workers == 0 must keep reproducing the original single-stream draw
  // order (the bit-frozen paper campaign) — run-to-run identical, and a
  // genuinely different campaign than the slot-seeded pipeline.
  core::DatasetConfig dc;
  dc.samples = 12;
  dc.seed = 42;
  const core::SampleSet a = core::generate_dataset(
      zoo(), embedding(), board(), dc);
  const core::SampleSet b = core::generate_dataset(
      zoo(), embedding(), board(), dc);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.inputs[i], b.inputs[i]);
    EXPECT_EQ(a.targets[i], b.targets[i]);
  }

  dc.workers = 1;
  const core::SampleSet slotted = core::generate_dataset(
      zoo(), embedding(), board(), dc);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size() && !any_difference; ++i)
    any_difference = !(a.inputs[i] == slotted.inputs[i]);
  EXPECT_TRUE(any_difference)
      << "slot-seeded pipeline unexpectedly replayed the legacy stream";
}

// --- parallel validation in the trainer --------------------------------------

TEST_F(ParallelDataset, TrainerValidationIsWorkerCountInvariant) {
  core::DatasetConfig dc;
  dc.samples = 60;
  dc.seed = 3;
  dc.workers = 2;
  const core::SampleSet data = core::generate_dataset(
      zoo(), embedding(), board(), dc);

  nn::L1Loss l1;
  std::vector<nn::TrainHistory> runs;
  for (const std::size_t workers : {1u, 2u, 4u}) {
    core::ThroughputEstimator est(embedding().models_dim(),
                                  embedding().layers_dim());
    nn::TrainConfig tc;
    tc.epochs = 3;
    tc.workers = workers;
    runs.push_back(est.fit(data, 20, l1, tc));
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[0].val_loss.size(), runs[r].val_loss.size());
    for (std::size_t e = 0; e < runs[0].val_loss.size(); ++e) {
      EXPECT_EQ(runs[0].train_loss[e], runs[r].train_loss[e])
          << "train loss diverged at epoch " << e;
      EXPECT_EQ(runs[0].val_loss[e], runs[r].val_loss[e])
          << "val loss diverged at epoch " << e;
    }
  }
}

}  // namespace
