/// \file bench_optimality_gap.cpp
/// How far from optimal are the heuristic schedulers — and how expensive is
/// proving it? Sweeps workload size (1..4 concurrent DNNs) and, per mix,
/// runs the branch-and-bound reference scheduler under a wall-clock budget
/// to obtain a certified upper bound on the analytic objective, then prices
/// Greedy, MOSAIC, GA and MCTS against that bound:
///
///   gap_vs_bound = max(0, (upper_bound - analytic(mapping)) / upper_bound)
///
/// A gap of 0 means the mapping is provably optimal w.r.t. the admissible
/// bound; `proved` = 1 means BnB closed the whole tree inside its budget, so
/// the bound is exactly the optimum and every gap is exact, not pessimistic.
/// `bnb_ms` is the time-to-proof when proved, else the exhausted budget.
///
/// MCTS runs against the analytic oracle (no estimator training): this
/// driver isolates search quality versus a certificate, not estimator error.

#include <algorithm>

#include "bench_common.hpp"
#include "sched/bnb.hpp"
#include "sched/greedy.hpp"
#include "sched/search_common.hpp"

using namespace omniboost;

int main() {
  constexpr std::uint64_t kSeed = 29;
  bench::banner("Optimality gap — schedulers vs a certified bound",
                "repo reference experiment (no paper figure)", kSeed);

  bench::Context ctx;
  const auto analytic =
      std::make_shared<const sim::AnalyticModel>(ctx.device());
  const auto factory = sched::analytic_evaluator_factory(ctx.zoo(), analytic);
  const auto value = [&](const workload::Workload& w, const sim::Mapping& m) {
    return analytic->evaluate(w.resolve(ctx.zoo()), m).avg_throughput;
  };

  sched::GreedyScheduler greedy(ctx.zoo(), ctx.device());
  sched::MosaicScheduler mosaic(ctx.zoo(), ctx.device());
  sched::GaScheduler ga(ctx.zoo(), ctx.device());

  // One decision per (size, mix): BnB gets a per-size wall-clock budget —
  // generous enough to close small instances (time-to-proof) and to leave a
  // usable certificate on the big ones.
  const double budget_ms = static_cast<double>(bench::scaled(2000, 60));
  const std::size_t mixes_per_size = bench::scaled(3, 2);

  util::Table t({"size", "mix", "workload", "upper_bound", "proved", "bnb_ms",
                 "bnb_nodes", "scheduler", "gap_vs_bound"});

  util::Rng rng(kSeed);
  for (std::size_t size = 1; size <= 4; ++size) {
    for (std::size_t mix = 1; mix <= mixes_per_size; ++mix) {
      const workload::Workload w = workload::random_mix(rng, size);

      sched::BnbConfig cfg;
      cfg.timeout_ms = budget_ms;
      sched::BranchAndBoundScheduler bnb("BnB", ctx.zoo(), ctx.device(), cfg);
      const auto bnb_r = bnb.schedule(w);
      const double ub = bnb_r.upper_bound.value_or(0.0);

      core::MctsConfig mcts_cfg;
      mcts_cfg.budget = bench::scaled(500, 100);
      mcts_cfg.seed = kSeed + size;
      core::MctsScheduler mcts("MCTS-oracle", ctx.zoo(), factory(w), mcts_cfg);

      const std::pair<const char*, sim::Mapping> entries[] = {
          {"Greedy", greedy.schedule(w).mapping},
          {"MOSAIC", mosaic.schedule(w).mapping},
          {"GA", ga.schedule(w).mapping},
          {"MCTS", mcts.schedule(w).mapping},
          {"BnB", bnb_r.mapping},
      };
      for (const auto& [name, m] : entries) {
        const double gap =
            ub > 0.0 ? std::max(0.0, (ub - value(w, m)) / ub) : 0.0;
        t.add_row({std::to_string(size), std::to_string(mix), w.describe(),
                   util::fmt(ub, 3),
                   std::to_string(bnb_r.proved_optimal.value_or(false) ? 1
                                                                       : 0),
                   util::fmt(1e3 * bnb_r.decision_seconds, 1),
                   std::to_string(bnb_r.nodes_expanded.value_or(0)), name,
                   util::fmt(gap, 4)});
      }
    }
  }

  std::printf("--- workload size vs time-to-proof and certified gaps "
              "(BnB budget %.0f ms per mix) ---\n", budget_ms);
  bench::report("optimality_gap", t);

  std::printf("\nreading guide: proved=1 rows carry exact gaps (the bound IS "
              "the optimum); proved=0 rows are upper estimates — the true "
              "gap can only be smaller. Expect time-to-proof to explode with "
              "size while small sizes close in milliseconds.\n");
  return 0;
}
