#pragma once
/// \file omniboost.hpp
/// The OmniBoost scheduler: MCTS exploration guided by the trained
/// throughput estimator (paper Fig. 2, steps 4-8). This is the framework's
/// primary public entry point; see examples/quickstart.cpp.

#include <memory>

#include "core/embedding.hpp"
#include "core/estimator.hpp"
#include "core/mcts.hpp"
#include "core/scheduler.hpp"

namespace omniboost::core {

/// OmniBoost run-time controls.
struct OmniBoostConfig {
  /// Search controls (paper defaults: budget 500, depth 100, limit 3).
  /// Note: leave its batch_size/cache fields at their defaults here — the
  /// scheduler-level knobs below are the single source of truth, schedule()
  /// forwards them into the search config, and non-default values smuggled
  /// in through this sub-config are rejected (std::invalid_argument) rather
  /// than silently overwritten.
  MctsConfig mcts;
  /// Root-parallel search workers. 1 reproduces the paper's sequential
  /// search; N > 1 splits the budget over N independent trees, each with a
  /// private clone of the estimator (the CNN forward pass is stateful), and
  /// cuts the decision latency by ~N at comparable quality.
  std::size_t workers = 1;
  /// Leaf evaluations batched per estimator forward pass (the MCTS
  /// expansion-wave width; forwarded into MctsConfig::batch_size by
  /// schedule()). 1 reproduces the paper's sequential search bit-for-bit;
  /// larger values amortize the CNN traversal over the wave — see
  /// bench_runtime_overhead's batched-vs-scalar columns.
  std::size_t batch_size = 1;
  /// Memoize estimator rewards by mapping hash (forwarded into
  /// MctsConfig::cache). Rewards for repeated mappings are replayed
  /// bit-exactly, so this changes only the evaluations/cache_hits split,
  /// never the decision.
  bool cache = true;
  /// Compute kernel for the estimator's CNN layers (nn/kernel.hpp).
  /// schedule() runs the search against an estimator with this kernel kind,
  /// cloning the shared instance on mismatch (the shared estimator is never
  /// mutated). kReference together with {batch_size = 1, workers = 1}
  /// reproduces the paper's sequential search bit-for-bit; kGemm is faster
  /// and deterministic, matching within float rounding (<= 1e-6).
  nn::KernelKind kernel = nn::default_kernel();
};

/// Production scheduler: estimator-guided Monte Carlo Tree Search.
class OmniBoostScheduler final : public IScheduler {
 public:
  /// \param zoo        dataset networks (layer counts, embedding columns)
  /// \param embedding  profiled distributed-embeddings tensor
  /// \param estimator  trained throughput estimator (shared, not owned
  ///                   exclusively — several schedulers may reuse it)
  OmniBoostScheduler(const models::ModelZoo& zoo,
                     const EmbeddingTensor& embedding,
                     std::shared_ptr<const ThroughputEstimator> estimator,
                     OmniBoostConfig config = {});

  std::string name() const override { return "OmniBoost"; }
  ScheduleResult schedule(const workload::Workload& w) override;

  /// Replaces the search configuration (budget sweeps in the ablations).
  void set_config(const OmniBoostConfig& config) { config_ = config; }

 private:
  const models::ModelZoo* zoo_;
  const EmbeddingTensor* embedding_;
  std::shared_ptr<const ThroughputEstimator> estimator_;
  OmniBoostConfig config_;
};

/// Generic search-based scheduler around an arbitrary mapping evaluator —
/// the ablation harness uses it to swap the estimator for a DES oracle or a
/// linear probe while keeping the identical MCTS.
class MctsScheduler final : public IScheduler {
 public:
  MctsScheduler(std::string name, const models::ModelZoo& zoo,
                MappingEvaluator evaluator, MctsConfig config);

  std::string name() const override { return name_; }
  ScheduleResult schedule(const workload::Workload& w) override;

 private:
  std::string name_;
  const models::ModelZoo* zoo_;
  MappingEvaluator evaluator_;
  MctsConfig config_;
};

}  // namespace omniboost::core
