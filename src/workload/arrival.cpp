#include "workload/arrival.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace omniboost::workload {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("ArrivalProcess: " + what);
}

void validate(const ArrivalProcess& p) {
  if (!(std::isfinite(p.rate_per_s) && p.rate_per_s > 0.0))
    fail("rate_per_s must be finite and > 0");
  if (!(std::isfinite(p.mean_lifetime_s) && p.mean_lifetime_s > 0.0))
    fail("mean_lifetime_s must be finite and > 0");
  if (p.max_concurrent < 1 || p.max_concurrent > models::kNumModels)
    fail("max_concurrent must be in [1, kNumModels]");
  if (p.kind == ArrivalKind::kDiurnal) {
    if (!(std::isfinite(p.diurnal_period_s) && p.diurnal_period_s > 0.0))
      fail("diurnal_period_s must be finite and > 0");
    if (!(std::isfinite(p.diurnal_amplitude) && p.diurnal_amplitude >= 0.0 &&
          p.diurnal_amplitude <= 1.0))
      fail("diurnal_amplitude must be in [0, 1]");
  }
  if (p.kind == ArrivalKind::kFlashCrowd) {
    if (!(std::isfinite(p.burst_start_s) && p.burst_start_s >= 0.0))
      fail("burst_start_s must be finite and >= 0");
    if (!(std::isfinite(p.burst_width_s) && p.burst_width_s >= 0.0))
      fail("burst_width_s must be finite and >= 0");
    if (!(std::isfinite(p.burst_height) && p.burst_height >= 1.0))
      fail("burst_height must be finite and >= 1");
  }
  if (!(std::isfinite(p.slo_fraction) && p.slo_fraction >= 0.0 &&
        p.slo_fraction <= 1.0))
    fail("slo_fraction must be in [0, 1]");
  if (p.slo_fraction > 0.0) {
    if (!(std::isfinite(p.slo_min_ms) && p.slo_min_ms > 0.0 &&
          std::isfinite(p.slo_max_ms) && p.slo_max_ms >= p.slo_min_ms))
      fail("SLO band requires 0 < slo_min_ms <= slo_max_ms");
  }
}

/// Exponential draw with the scenario generator's exact idiom:
/// mean * -log1p(-u), u in [0, 1) — never infinite, zero only at u == 0.
double exponential(util::Rng& rng, double mean) {
  return mean * -std::log1p(-rng.uniform());
}

/// A scheduled stream departure, ordered by (time, insertion seq).
struct PendingDepart {
  double time_s;
  std::size_t seq;
  models::ModelId model;
};

}  // namespace

double arrival_rate_at(const ArrivalProcess& p, double t_s) {
  switch (p.kind) {
    case ArrivalKind::kPoisson:
      return p.rate_per_s;
    case ArrivalKind::kDiurnal:
      return p.rate_per_s *
             (1.0 + p.diurnal_amplitude *
                        std::sin(6.28318530717958648 * t_s /
                                 p.diurnal_period_s));
    case ArrivalKind::kFlashCrowd:
      return (t_s >= p.burst_start_s &&
              t_s < p.burst_start_s + p.burst_width_s)
                 ? p.rate_per_s * p.burst_height
                 : p.rate_per_s;
  }
  return p.rate_per_s;  // unreachable
}

double peak_arrival_rate(const ArrivalProcess& p) {
  switch (p.kind) {
    case ArrivalKind::kPoisson:
      return p.rate_per_s;
    case ArrivalKind::kDiurnal:
      return p.rate_per_s * (1.0 + p.diurnal_amplitude);
    case ArrivalKind::kFlashCrowd:
      return p.rate_per_s * std::max(1.0, p.burst_height);
  }
  return p.rate_per_s;  // unreachable
}

Scenario sample_scenario(const ArrivalProcess& p, double horizon_s,
                         util::Rng& rng) {
  validate(p);
  if (!(std::isfinite(horizon_s) && horizon_s >= 0.0))
    fail("horizon_s must be finite and >= 0");

  const double peak = peak_arrival_rate(p);
  const double mean_gap_s = 1.0 / peak;
  const bool homogeneous = p.kind == ArrivalKind::kPoisson;

  std::vector<ScenarioEvent> events;
  std::vector<bool> present(models::kNumModels, false);
  std::size_t on_board = 0;
  std::vector<PendingDepart> pending;
  std::size_t next_seq = 0;

  // Pops every scheduled departure due at or before \p up_to_s, in
  // (time, seq) order, appending depart events and freeing their slots.
  const auto flush_departures = [&](double up_to_s) {
    for (;;) {
      std::size_t best = pending.size();
      for (std::size_t i = 0; i < pending.size(); ++i) {
        if (pending[i].time_s > up_to_s) continue;
        if (best == pending.size() ||
            pending[i].time_s < pending[best].time_s ||
            (pending[i].time_s == pending[best].time_s &&
             pending[i].seq < pending[best].seq))
          best = i;
      }
      if (best == pending.size()) return;
      ScenarioEvent ev;
      ev.time_s = pending[best].time_s;
      ev.kind = ScenarioEventKind::kDepart;
      ev.model = pending[best].model;
      events.push_back(ev);
      present[models::model_index(pending[best].model)] = false;
      --on_board;
      pending.erase(pending.begin() +
                    static_cast<std::ptrdiff_t>(best));
    }
  };

  // Lewis–Shedler thinning against the constant peak-rate envelope. The
  // homogeneous (Poisson) path accepts every candidate WITHOUT drawing the
  // acceptance uniform, so its gaps stay exactly Exponential(rate).
  double t = 0.0;
  for (;;) {
    t += exponential(rng, mean_gap_s);
    if (t > horizon_s) break;
    if (!homogeneous && rng.uniform() * peak >= arrival_rate_at(p, t))
      continue;  // thinned out — not an arrival at all

    // Departures due before this arrival leave first (ties: depart first,
    // which can free the very slot this arrival needs).
    flush_departures(t);

    // Capacity: a full board (or exhausted zoo) drops the arrival without
    // consuming any further draws, so the accepted-arrival draw sequence
    // depends only on which arrivals were admitted.
    if (on_board >= p.max_concurrent || on_board >= models::kNumModels)
      continue;

    // Draw order per admitted arrival (pinned by tests/arrival_test.cpp):
    // model pick among absent -> lifetime -> optional SLO chance/value.
    std::vector<models::ModelId> absent;
    absent.reserve(models::kNumModels - on_board);
    for (const models::ModelId id : models::kAllModels)
      if (!present[models::model_index(id)]) absent.push_back(id);
    const models::ModelId model =
        absent[static_cast<std::size_t>(rng.below(absent.size()))];
    const double lifetime_s = exponential(rng, p.mean_lifetime_s);

    ScenarioEvent ev;
    ev.time_s = t;
    ev.model = model;
    if (p.slo_fraction > 0.0 && rng.chance(p.slo_fraction))
      ev.slo_ms = rng.uniform(p.slo_min_ms, p.slo_max_ms);
    events.push_back(ev);
    present[models::model_index(model)] = true;
    ++on_board;

    // Departures past the horizon are truncated: the stream simply serves
    // through the end of the scenario.
    if (t + lifetime_s <= horizon_s)
      pending.push_back(PendingDepart{t + lifetime_s, next_seq++, model});
  }
  flush_departures(horizon_s);

  return Scenario(std::move(events));
}

ArrivalProcess parse_arrival_spec(const std::string& spec) {
  std::vector<std::string> parts;
  std::string::size_type pos = 0;
  for (;;) {
    const auto colon = spec.find(':', pos);
    if (colon == std::string::npos) {
      parts.push_back(spec.substr(pos));
      break;
    }
    parts.push_back(spec.substr(pos, colon - pos));
    pos = colon + 1;
  }

  const auto number = [&](const std::string& field,
                          const std::string& text) -> double {
    std::istringstream in(text);
    double value = 0.0;
    if (!(in >> value) || !in.eof() || !std::isfinite(value))
      fail("spec '" + spec + "': bad " + field + " '" + text + "'");
    return value;
  };

  ArrivalProcess p;
  if (parts.empty() || parts[0].empty())
    fail("spec '" + spec + "': expected poisson:|diurnal:|flash:");
  if (parts[0] == "poisson") {
    if (parts.size() != 2)
      fail("spec '" + spec + "': poisson:<rate>");
    p.kind = ArrivalKind::kPoisson;
    p.rate_per_s = number("rate", parts[1]);
  } else if (parts[0] == "diurnal") {
    if (parts.size() != 4)
      fail("spec '" + spec + "': diurnal:<rate>:<period_s>:<amplitude>");
    p.kind = ArrivalKind::kDiurnal;
    p.rate_per_s = number("rate", parts[1]);
    p.diurnal_period_s = number("period", parts[2]);
    p.diurnal_amplitude = number("amplitude", parts[3]);
  } else if (parts[0] == "flash") {
    if (parts.size() != 5)
      fail("spec '" + spec + "': flash:<rate>:<start_s>:<width_s>:<height>");
    p.kind = ArrivalKind::kFlashCrowd;
    p.rate_per_s = number("rate", parts[1]);
    p.burst_start_s = number("start", parts[2]);
    p.burst_width_s = number("width", parts[3]);
    p.burst_height = number("height", parts[4]);
  } else {
    fail("spec '" + spec + "': unknown kind '" + parts[0] + "'");
  }
  validate(p);
  return p;
}

std::string describe(const ArrivalProcess& p) {
  std::ostringstream out;
  switch (p.kind) {
    case ArrivalKind::kPoisson:
      out << "poisson(rate " << p.rate_per_s << "/s";
      break;
    case ArrivalKind::kDiurnal:
      out << "diurnal(rate " << p.rate_per_s << "/s, period "
          << p.diurnal_period_s << " s, amplitude " << p.diurnal_amplitude;
      break;
    case ArrivalKind::kFlashCrowd:
      out << "flash(rate " << p.rate_per_s << "/s, burst ["
          << p.burst_start_s << ", " << p.burst_start_s + p.burst_width_s
          << ") s, height " << p.burst_height;
      break;
  }
  out << ", life " << p.mean_lifetime_s << " s, cap " << p.max_concurrent;
  if (p.slo_fraction > 0.0)
    out << ", slo " << p.slo_fraction * 100.0 << "% [" << p.slo_min_ms
        << ", " << p.slo_max_ms << "] ms";
  out << ")";
  return out.str();
}

}  // namespace omniboost::workload
