// core::ServingRuntime and contextual rescheduling:
//  * single-event scenarios reproduce IScheduler::schedule() bit-for-bit for
//    OmniBoost (warm and cold) and every baseline, on 3 seeds
//  * warm_start = false replays plain schedule() on every epoch
//  * churn accounting on a hand-built scenario with a scripted scheduler
//  * warm-started OmniBoost spends rollout_fraction of the cold budget and
//    pins the surviving streams' previous assignments into its candidates

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/dataset.hpp"
#include "core/omniboost.hpp"
#include "core/serving.hpp"
#include "nn/loss.hpp"
#include "sched/baseline.hpp"
#include "sched/ga.hpp"
#include "sched/greedy.hpp"
#include "sched/mosaic.hpp"
#include "sim/des.hpp"
#include "util/rng.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace omniboost;
using models::ModelId;
using models::ModelZoo;
using workload::Scenario;
using workload::ScenarioEvent;
using workload::ScenarioEventKind;
using workload::Workload;

constexpr auto G = device::ComponentId::kGpu;
constexpr auto B = device::ComponentId::kBigCpu;

const ModelZoo& zoo() {
  static const ModelZoo z;
  return z;
}

const device::DeviceSpec& spec() {
  static const device::DeviceSpec s = device::make_hikey970();
  return s;
}

const sim::DesSimulator& board() {
  static const sim::DesSimulator b(spec());
  return b;
}

const core::EmbeddingTensor& embedding() {
  static const device::CostModel cost(spec());
  static const core::EmbeddingTensor e(zoo(), cost);
  return e;
}

/// A quickly-trained estimator shared by the OmniBoost serving tests (they
/// compare search trajectories and budgets, not estimator accuracy).
std::shared_ptr<const core::ThroughputEstimator> trained_estimator() {
  static const auto est = [] {
    core::DatasetConfig dc;
    dc.samples = 60;
    const core::SampleSet data =
        core::generate_dataset(zoo(), embedding(), board(), dc);
    auto e = std::make_shared<core::ThroughputEstimator>(
        embedding().models_dim(), embedding().layers_dim());
    nn::L1Loss l1;
    nn::TrainConfig tc;
    tc.epochs = 4;
    e->fit(data, 10, l1, tc);
    return e;
  }();
  return est;
}

core::OmniBoostConfig small_config(std::uint64_t seed) {
  core::OmniBoostConfig cfg;
  cfg.mcts.budget = 48;
  cfg.mcts.seed = seed;
  return cfg;
}

Scenario two_arrivals(ModelId a, ModelId b) {
  return Scenario({ScenarioEvent{0.0, ScenarioEventKind::kArrive, a},
                   ScenarioEvent{0.0, ScenarioEventKind::kArrive, b}});
}

/// Deterministic scripted scheduler: returns the mappings it was given, in
/// order, so tests control churn exactly.
class ScriptedScheduler final : public core::IScheduler {
 public:
  explicit ScriptedScheduler(std::vector<sim::Mapping> script)
      : script_(std::move(script)) {}
  std::string name() const override { return "Scripted"; }
  core::ScheduleResult schedule(const workload::Workload&) override {
    core::ScheduleResult r;
    r.mapping = script_.at(next_++);
    return r;
  }
  std::size_t schedule_calls() const { return next_; }

 private:
  std::vector<sim::Mapping> script_;
  std::size_t next_ = 0;
};

TEST(ServingRuntime, SingleEventScenarioMatchesOneShotScheduleForBaselines) {
  const Scenario s =
      Scenario({ScenarioEvent{0.0, ScenarioEventKind::kArrive,
                              ModelId::kAlexNet},
                ScenarioEvent{1.0, ScenarioEventKind::kArrive,
                              ModelId::kMobileNet}});
  const Workload w2 = s.mix_after(1);

  for (const bool warm : {true, false}) {
    core::ServingConfig sc;
    sc.warm_start = warm;
    const core::ServingRuntime runtime(zoo(), board(), sc);

    const auto check = [&](core::IScheduler& served,
                           core::IScheduler& direct) {
      const core::ServingReport rep = runtime.run(served, s);
      ASSERT_EQ(rep.epochs.size(), 2u);
      // Baselines' reschedule is the default adapter: identical to a fresh
      // schedule() of the epoch's mix.
      EXPECT_EQ(rep.epochs[1].decision.mapping, direct.schedule(w2).mapping)
          << served.name() << " warm=" << warm;
    };

    auto base_a = sched::AllOnScheduler::gpu_baseline(zoo());
    auto base_b = sched::AllOnScheduler::gpu_baseline(zoo());
    check(base_a, base_b);
    sched::MosaicScheduler mosaic_a(zoo(), spec());
    sched::MosaicScheduler mosaic_b(zoo(), spec());
    check(mosaic_a, mosaic_b);
    sched::GreedyScheduler greedy_a(zoo(), spec());
    sched::GreedyScheduler greedy_b(zoo(), spec());
    check(greedy_a, greedy_b);
    sched::GaScheduler ga_a(zoo(), spec());
    sched::GaScheduler ga_b(zoo(), spec());
    check(ga_a, ga_b);
  }
}

TEST(ServingRuntime, SingleEventScenarioMatchesOneShotOmniBoostThreeSeeds) {
  // The acceptance pin: a single-event scenario through the runtime is
  // bit-identical to one IScheduler::schedule() call, warm-start on or off.
  const Scenario s = Scenario(
      {ScenarioEvent{0.0, ScenarioEventKind::kArrive, ModelId::kVgg19}});
  const Workload w = s.mix_after(0);
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    for (const bool warm : {true, false}) {
      core::OmniBoostScheduler served(zoo(), embedding(), trained_estimator(),
                                      small_config(seed));
      core::OmniBoostScheduler direct(zoo(), embedding(), trained_estimator(),
                                      small_config(seed));
      core::ServingConfig sc;
      sc.warm_start = warm;
      const core::ServingRuntime runtime(zoo(), board(), sc);
      const core::ServingReport rep = runtime.run(served, s);
      const core::ScheduleResult one_shot = direct.schedule(w);
      ASSERT_EQ(rep.epochs.size(), 1u);
      // Bit-identical: same mapping AND the exact same expected reward.
      EXPECT_EQ(rep.epochs[0].decision.mapping, one_shot.mapping)
          << "seed " << seed << " warm=" << warm;
      EXPECT_EQ(rep.epochs[0].decision.expected_reward,
                one_shot.expected_reward)
          << "seed " << seed << " warm=" << warm;
      EXPECT_EQ(rep.epochs[0].decision.evaluations +
                    rep.epochs[0].decision.cache_hits,
                one_shot.evaluations + one_shot.cache_hits);
    }
  }
}

TEST(ServingRuntime, ColdModeReplaysPlainScheduleOnEveryEpoch) {
  // Multi-event scenario, warm start disabled: every epoch's decision must
  // equal a fresh one-shot schedule() of that epoch's mix (OmniBoost's
  // schedule is stateless — the search RNG reseeds from config each call).
  const Scenario s = workload::parse_scenario(
      "at 0 arrive AlexNet\n"
      "at 1 arrive SqueezeNet\n"
      "at 2 arrive MobileNet\n"
      "at 3 depart AlexNet\n");
  core::OmniBoostScheduler served(zoo(), embedding(), trained_estimator(),
                                  small_config(5));
  core::OmniBoostScheduler direct(zoo(), embedding(), trained_estimator(),
                                  small_config(5));
  core::ServingConfig sc;
  sc.warm_start = false;
  const core::ServingRuntime runtime(zoo(), board(), sc);
  const core::ServingReport rep = runtime.run(served, s);
  ASSERT_EQ(rep.epochs.size(), 4u);
  for (std::size_t i = 0; i < rep.epochs.size(); ++i) {
    const core::ScheduleResult one_shot = direct.schedule(s.mix_after(i));
    EXPECT_EQ(rep.epochs[i].decision.mapping, one_shot.mapping) << "epoch " << i;
    EXPECT_EQ(rep.epochs[i].decision.expected_reward,
              one_shot.expected_reward)
        << "epoch " << i;
  }
}

TEST(ServingRuntime, ChurnAccountingOnHandBuiltScenario) {
  // AlexNet (8 layers) arrives, then MobileNet arrives. The scripted
  // scheduler first puts AlexNet all on GPU, then moves 2 of its 8 layers to
  // the big CPU: churn over the surviving stream = 2/8.
  const std::size_t alex_layers =
      zoo().network(ModelId::kAlexNet).num_layers();
  const std::size_t mobile_layers =
      zoo().network(ModelId::kMobileNet).num_layers();
  ASSERT_GE(alex_layers, 4u);

  sim::Assignment alex_first(alex_layers, G);
  sim::Assignment alex_second(alex_layers, G);
  alex_second[alex_layers - 2] = B;
  alex_second[alex_layers - 1] = B;

  const sim::Mapping m1({alex_first});
  const sim::Mapping m2({alex_second, sim::Assignment(mobile_layers, G)});

  ScriptedScheduler scripted({m1, m2});
  const Scenario s = two_arrivals(ModelId::kAlexNet, ModelId::kMobileNet);
  const core::ServingRuntime runtime(zoo(), board());
  const core::ServingReport rep = runtime.run(scripted, s);

  ASSERT_EQ(rep.epochs.size(), 2u);
  EXPECT_EQ(rep.epochs[0].surviving_layers, 0u);
  EXPECT_EQ(rep.epochs[0].churn, 0.0);
  EXPECT_EQ(rep.epochs[1].surviving_layers, alex_layers);
  EXPECT_EQ(rep.epochs[1].moved_layers, 2u);
  EXPECT_DOUBLE_EQ(rep.epochs[1].churn, 2.0 / static_cast<double>(alex_layers));
  EXPECT_DOUBLE_EQ(rep.mean_churn, 2.0 / static_cast<double>(alex_layers));
  EXPECT_GT(rep.epochs[1].measured_throughput, 0.0);
}

TEST(MappingChurn, CountsOnlySurvivingStreams) {
  const sim::Mapping prev({sim::Assignment(4, G), sim::Assignment(6, B)});
  // New workload: stream 0 is new, stream 1 carries prev stream 0 with one
  // layer moved, stream 2 carries prev stream 1 unchanged.
  sim::Assignment moved(4, G);
  moved[0] = B;
  const sim::Mapping next(
      {sim::Assignment(10, G), moved, sim::Assignment(6, B)});
  std::size_t surviving = 0, moved_layers = 0;
  const double churn = core::mapping_churn(prev, {-1, 0, 1}, next, &surviving,
                                           &moved_layers);
  EXPECT_EQ(surviving, 10u);
  EXPECT_EQ(moved_layers, 1u);
  EXPECT_DOUBLE_EQ(churn, 0.1);
}

TEST(ServingRuntime, IdleEpochsAreRecordedAndResetWarmState) {
  const Scenario s = workload::parse_scenario(
      "at 0 arrive AlexNet\n"
      "at 1 depart AlexNet\n"
      "at 2 arrive MobileNet\n");
  const std::size_t alex_layers =
      zoo().network(ModelId::kAlexNet).num_layers();
  const std::size_t mobile_layers =
      zoo().network(ModelId::kMobileNet).num_layers();
  ScriptedScheduler scripted({sim::Mapping({sim::Assignment(alex_layers, G)}),
                              sim::Mapping({sim::Assignment(mobile_layers, G)})});
  const core::ServingRuntime runtime(zoo(), board());
  const core::ServingReport rep = runtime.run(scripted, s);
  ASSERT_EQ(rep.epochs.size(), 3u);
  EXPECT_EQ(rep.epochs[1].mix_size, 0u);
  EXPECT_EQ(rep.epochs[1].measured_throughput, 0.0);
  EXPECT_EQ(rep.decisions, 2u);
  // Both decisions came through schedule(), not reschedule: the scripted
  // scheduler counts its schedule() calls.
  EXPECT_EQ(scripted.schedule_calls(), 2u);
  EXPECT_EQ(rep.epochs[2].surviving_layers, 0u);
}

TEST(OmniBoostReschedule, WarmDecisionSpendsRolloutFractionOfTheBudget) {
  core::OmniBoostConfig cfg = small_config(11);
  cfg.rollout_fraction = 0.25;
  core::OmniBoostScheduler omni(zoo(), embedding(), trained_estimator(), cfg);

  const Workload w1{{ModelId::kAlexNet, ModelId::kSqueezeNet}};
  const Workload w2{{ModelId::kAlexNet, ModelId::kSqueezeNet,
                     ModelId::kMobileNet}};
  const core::ScheduleResult cold = omni.schedule(w1);
  EXPECT_EQ(cold.evaluations + cold.cache_hits, 48u);

  core::ScheduleContext ctx;
  ctx.previous_workload = w1;
  ctx.carried_from = {0, 1, -1};
  const core::ScheduleResult warm = omni.reschedule(w2, cold.mapping, ctx);
  EXPECT_EQ(warm.evaluations + warm.cache_hits, 12u);  // 0.25 * 48
  EXPECT_EQ(warm.mapping.num_dnns(), 3u);
  EXPECT_TRUE(warm.mapping.within_stage_limit(3));

  // Cold fallback through the same entry point.
  ctx.warm_start = false;
  const core::ScheduleResult forced_cold =
      omni.reschedule(w2, cold.mapping, ctx);
  EXPECT_EQ(forced_cold.evaluations + forced_cold.cache_hits, 48u);
}

TEST(OmniBoostReschedule, PinnedRolloutKeepsSurvivingAssignmentsReachable) {
  // With prior_bias = 1 and a budget of 1, the single (pinned) rollout must
  // reproduce the carried streams' previous assignments exactly.
  core::OmniBoostConfig cfg = small_config(21);
  cfg.rollout_fraction = 1.0 / 48.0;  // budget 48 -> 1 warm rollout
  cfg.prior_bias = 1.0;
  core::OmniBoostScheduler omni(zoo(), embedding(), trained_estimator(), cfg);

  const Workload w1{{ModelId::kVgg16, ModelId::kMobileNet}};
  const core::ScheduleResult cold = omni.schedule(w1);

  // Departure: both surviving streams carry over; no new streams.
  const Workload w2{{ModelId::kVgg16, ModelId::kMobileNet}};
  core::ScheduleContext ctx;
  ctx.previous_workload = w1;
  ctx.carried_from = {0, 1};
  const core::ScheduleResult warm = omni.reschedule(w2, cold.mapping, ctx);
  EXPECT_EQ(warm.evaluations + warm.cache_hits, 1u);
  EXPECT_EQ(warm.mapping, cold.mapping);  // zero churn by construction
}

TEST(OmniBoostReschedule, CarriedMemoServesRepeatedMixesFromCache) {
  core::OmniBoostConfig cfg = small_config(31);
  cfg.rollout_fraction = 0.5;
  cfg.prior_bias = 1.0;  // deterministic pin toward the previous mapping
  core::OmniBoostScheduler omni(zoo(), embedding(), trained_estimator(), cfg);

  const Workload w{{ModelId::kAlexNet, ModelId::kMobileNet}};
  const core::ScheduleResult cold = omni.schedule(w);

  core::ScheduleContext ctx;
  ctx.previous_workload = w;
  ctx.carried_from = {0, 1};
  const core::ScheduleResult first = omni.reschedule(w, cold.mapping, ctx);
  // Same mix again: the carried memo already holds every mapping the first
  // warm decision scored, so repeats come back as cache hits.
  const core::ScheduleResult second =
      omni.reschedule(w, first.mapping, ctx);
  EXPECT_GT(second.cache_hits, 0u);
  EXPECT_EQ(second.evaluations + second.cache_hits, 24u);
}

TEST(ServingRuntime, DefaultConfigReplaysManualScheduleRescheduleThreeSeeds) {
  // The PR-4 bit-compat pin: with the churn-cost model off (default) and no
  // SLOs in the scenario, the runtime's serving replay must be bit-identical
  // to a manual schedule()/reschedule() replay whose contexts carry NO board
  // and NO migration model — i.e. the new context fields must not perturb
  // the SLO-free decision path, and the measurement must equal the plain
  // simulate() of each epoch's mapping.
  const Scenario s = workload::parse_scenario(
      "at 0 arrive AlexNet\n"
      "at 1 arrive SqueezeNet\n"
      "at 2 arrive MobileNet\n"
      "at 3 depart AlexNet\n");
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    core::OmniBoostScheduler served(zoo(), embedding(), trained_estimator(),
                                    small_config(seed));
    core::OmniBoostScheduler manual(zoo(), embedding(), trained_estimator(),
                                    small_config(seed));
    const core::ServingRuntime runtime(zoo(), board());
    const core::ServingReport rep = runtime.run(served, s);
    ASSERT_EQ(rep.epochs.size(), 4u);

    Workload prev_w;
    sim::Mapping prev_m;
    for (std::size_t i = 0; i < rep.epochs.size(); ++i) {
      const Workload w = s.mix_after(i);
      core::ScheduleResult direct;
      if (i == 0) {
        direct = manual.schedule(w);
      } else {
        core::ScheduleContext ctx;  // PR-4 shape: board/migration left null
        ctx.previous_workload = prev_w;
        for (const ModelId id : w.mix) {
          const auto it =
              std::find(prev_w.mix.begin(), prev_w.mix.end(), id);
          ctx.carried_from.push_back(it == prev_w.mix.end()
                                         ? std::ptrdiff_t{-1}
                                         : it - prev_w.mix.begin());
        }
        direct = manual.reschedule(w, prev_m, ctx);
      }
      EXPECT_EQ(rep.epochs[i].decision.mapping, direct.mapping)
          << "seed " << seed << " epoch " << i;
      EXPECT_EQ(rep.epochs[i].decision.expected_reward,
                direct.expected_reward)
          << "seed " << seed << " epoch " << i;
      EXPECT_EQ(rep.epochs[i].measured_throughput,
                board()
                    .simulate(w.resolve(zoo()), direct.mapping)
                    .avg_throughput)
          << "seed " << seed << " epoch " << i;
      // No SLOs, model off: the new accounting must stay all-zero.
      EXPECT_EQ(rep.epochs[i].slo_streams, 0u);
      EXPECT_EQ(rep.epochs[i].migration_stall_s, 0.0);
      prev_w = w;
      prev_m = direct.mapping;
    }
    EXPECT_EQ(rep.total_slo_violations, 0u);
    EXPECT_EQ(rep.total_migration_stall_s, 0.0);
  }
}

TEST(ServingRuntime, MigrationStallsLandInMeasuredThroughput) {
  // AlexNet arrives, MobileNet arrives; the scripted scheduler moves 2 of
  // AlexNet's layers on the second epoch. With the churn-cost model enabled
  // the epoch is measured with that stream's one-off stall, so measured T
  // drops below the free-churn measurement of the SAME mapping.
  const std::size_t alex_layers =
      zoo().network(ModelId::kAlexNet).num_layers();
  const std::size_t mobile_layers =
      zoo().network(ModelId::kMobileNet).num_layers();
  sim::Assignment alex_first(alex_layers, G);
  sim::Assignment alex_second(alex_layers, G);
  alex_second[alex_layers - 2] = B;
  alex_second[alex_layers - 1] = B;
  const sim::Mapping m1({alex_first});
  const sim::Mapping m2({alex_second, sim::Assignment(mobile_layers, G)});
  const Scenario s = two_arrivals(ModelId::kAlexNet, ModelId::kMobileNet);

  core::ServingConfig charged;
  charged.migration.enabled = true;
  const core::ServingRuntime charged_rt(zoo(), board(), charged);
  ScriptedScheduler scripted_a({m1, m2});
  const core::ServingReport rep = charged_rt.run(scripted_a, s);

  const core::ServingRuntime free_rt(zoo(), board());
  ScriptedScheduler scripted_b({m1, m2});
  const core::ServingReport free_rep = free_rt.run(scripted_b, s);

  ASSERT_EQ(rep.epochs.size(), 2u);
  // First epoch: no previous mapping, never charged.
  EXPECT_EQ(rep.epochs[0].migration_stall_s, 0.0);
  EXPECT_EQ(rep.epochs[0].measured_throughput,
            free_rep.epochs[0].measured_throughput);
  // Second epoch: one migrated segment (the two moved layers are one new
  // big-CPU segment), a positive stall, and measured T that can only drop.
  EXPECT_EQ(rep.epochs[1].migrated_segments, 1u);
  EXPECT_GT(rep.epochs[1].migration_stall_s, 0.0);
  EXPECT_LE(rep.epochs[1].measured_throughput,
            free_rep.epochs[1].measured_throughput);
  EXPECT_EQ(rep.total_migrated_segments, 1u);
  EXPECT_DOUBLE_EQ(rep.total_migration_stall_s,
                   rep.epochs[1].migration_stall_s);
  // Churn accounting itself is unchanged by the price tag.
  EXPECT_EQ(rep.epochs[1].moved_layers, free_rep.epochs[1].moved_layers);

  // A pathological migration price starves the moved stream past the
  // measurement window: the stall unmistakably lands in measured T.
  core::ServingConfig brutal = charged;
  brutal.migration.scale = 1e8;
  const core::ServingRuntime brutal_rt(zoo(), board(), brutal);
  ScriptedScheduler scripted_c({m1, m2});
  const core::ServingReport brutal_rep = brutal_rt.run(scripted_c, s);
  EXPECT_LT(brutal_rep.epochs[1].measured_throughput,
            free_rep.epochs[1].measured_throughput);
  EXPECT_EQ(brutal_rep.epochs[1].measured_throughput, 0.0);
}

TEST(ServingRuntime, MigrationEdgeCasesFullReplacementDepartOnlyAndIdle) {
  const std::size_t alex_layers =
      zoo().network(ModelId::kAlexNet).num_layers();
  const std::size_t mobile_layers =
      zoo().network(ModelId::kMobileNet).num_layers();
  const std::size_t squeeze_layers =
      zoo().network(ModelId::kSqueezeNet).num_layers();

  core::ServingConfig cfg;
  cfg.migration.enabled = true;
  const core::ServingRuntime rt(zoo(), board(), cfg);

  // Full-replacement epoch: AlexNet departs and MobileNet arrives in
  // back-to-back events; the middle epoch still carries AlexNet only, the
  // third epoch's mix shares NO stream with the second -> no charge even
  // though the mapping is completely different.
  {
    const Scenario s = workload::parse_scenario(
        "at 0 arrive AlexNet\n"
        "at 1 depart AlexNet\n"
        "at 1 arrive MobileNet\n");
    ScriptedScheduler scripted(
        {sim::Mapping({sim::Assignment(alex_layers, G)}),
         sim::Mapping({sim::Assignment(mobile_layers, B)})});
    const core::ServingReport rep = rt.run(scripted, s);
    ASSERT_EQ(rep.epochs.size(), 3u);
    EXPECT_EQ(rep.epochs[1].mix_size, 0u);  // idle: the board drained
    EXPECT_EQ(rep.epochs[2].surviving_layers, 0u);
    EXPECT_EQ(rep.epochs[2].migration_stall_s, 0.0);
    EXPECT_EQ(rep.total_migrated_segments, 0u);
  }

  // Depart-only epoch: the survivors' layers move when the third stream
  // leaves -> the stall is charged exactly on the two moved layers.
  {
    const Scenario s = workload::parse_scenario(
        "at 0 arrive AlexNet\n"
        "at 0 arrive SqueezeNet\n"
        "at 1 depart SqueezeNet\n");
    sim::Assignment alex_moved(alex_layers, G);
    alex_moved[0] = B;
    alex_moved[1] = B;
    ScriptedScheduler scripted(
        {sim::Mapping({sim::Assignment(alex_layers, G)}),
         sim::Mapping({sim::Assignment(alex_layers, G),
                       sim::Assignment(squeeze_layers, G)}),
         sim::Mapping({alex_moved})});
    const core::ServingReport rep = rt.run(scripted, s);
    ASSERT_EQ(rep.epochs.size(), 3u);
    EXPECT_EQ(rep.epochs[2].moved_layers, 2u);
    EXPECT_EQ(rep.epochs[2].migrated_segments, 1u);
    EXPECT_GT(rep.epochs[2].migration_stall_s, 0.0);
  }
}

TEST(ServingRuntime, SloBookkeepingAcrossArrivalAndDeparture) {
  // VGG-19 serves under a generous SLO, AlexNet under an impossible one;
  // AlexNet then departs, and a re-arrival WITHOUT an SLO serves
  // unconstrained — the bookkeeping must not leak the old target.
  const std::size_t vgg_layers = zoo().network(ModelId::kVgg19).num_layers();
  const std::size_t alex_layers =
      zoo().network(ModelId::kAlexNet).num_layers();
  const Scenario s = workload::parse_scenario(
      "at 0 arrive VGG-19 slo 1e9\n"
      "at 1 arrive AlexNet slo 1e-6\n"
      "at 2 depart AlexNet\n"
      "at 3 arrive AlexNet\n");
  const sim::Mapping vgg_only({sim::Assignment(vgg_layers, G)});
  const sim::Mapping both(
      {sim::Assignment(vgg_layers, G), sim::Assignment(alex_layers, B)});
  ScriptedScheduler scripted({vgg_only, both, vgg_only, both});
  const core::ServingRuntime rt(zoo(), board());
  const core::ServingReport rep = rt.run(scripted, s);
  ASSERT_EQ(rep.epochs.size(), 4u);

  // Epoch 0: one stream under an (unbreakable) SLO.
  EXPECT_EQ(rep.epochs[0].slo_streams, 1u);
  EXPECT_EQ(rep.epochs[0].slo_violations, 0u);
  ASSERT_EQ(rep.epochs[0].latency_p99_s.size(), 1u);
  EXPECT_GT(rep.epochs[0].latency_p99_s[0], 0.0);
  // Epoch 1: both under SLO; the microsecond target cannot be met.
  EXPECT_EQ(rep.epochs[1].slo_streams, 2u);
  EXPECT_EQ(rep.epochs[1].slo_violations, 1u);
  ASSERT_EQ(rep.epochs[1].slo_s.size(), 2u);
  EXPECT_DOUBLE_EQ(rep.epochs[1].slo_s[1], 1e-9);  // 1e-6 ms in seconds
  // Epoch 2: the violating stream departed with its SLO.
  EXPECT_EQ(rep.epochs[2].slo_streams, 1u);
  EXPECT_EQ(rep.epochs[2].slo_violations, 0u);
  // Epoch 3: AlexNet re-arrived WITHOUT an SLO.
  EXPECT_EQ(rep.epochs[3].slo_streams, 1u);
  ASSERT_EQ(rep.epochs[3].slo_s.size(), 2u);
  EXPECT_DOUBLE_EQ(rep.epochs[3].slo_s[1], 0.0);

  EXPECT_EQ(rep.total_slo_streams, 5u);
  EXPECT_EQ(rep.total_slo_violations, 1u);
}

TEST(ServingRuntime, StallStarvedSloStreamCountsAsViolating) {
  // A migration stall that consumes the whole measurement window leaves the
  // latency distribution intact (a one-off stall is not per-frame latency)
  // but the stream served zero frames — that must count against even an
  // unbreakable SLO.
  const std::size_t alex_layers =
      zoo().network(ModelId::kAlexNet).num_layers();
  const std::size_t mobile_layers =
      zoo().network(ModelId::kMobileNet).num_layers();
  sim::Assignment alex_moved(alex_layers, G);
  alex_moved[0] = B;
  const Scenario s = workload::parse_scenario(
      "at 0 arrive AlexNet slo 1e9\n"
      "at 1 arrive MobileNet\n");
  ScriptedScheduler scripted(
      {sim::Mapping({sim::Assignment(alex_layers, G)}),
       sim::Mapping({alex_moved, sim::Assignment(mobile_layers, G)})});
  core::ServingConfig cfg;
  cfg.migration.enabled = true;
  cfg.migration.scale = 1e8;  // stall >> window: AlexNet serves nothing
  const core::ServingRuntime rt(zoo(), board(), cfg);
  const core::ServingReport rep = rt.run(scripted, s);
  ASSERT_EQ(rep.epochs.size(), 2u);
  EXPECT_EQ(rep.epochs[0].slo_violations, 0u);  // uncharged first epoch
  EXPECT_EQ(rep.epochs[1].slo_violations, 1u);
  EXPECT_EQ(rep.epochs[1].measured_throughput, 0.0);
}

TEST(OmniBoostReschedule, LooseSloLeavesTheDecisionBitIdentical) {
  // An SLO no candidate can break shapes nothing: the SLO-aware decision
  // must be bit-identical to the SLO-free one (same mapping, same reward,
  // same budget split) — the DES replays only confirm feasibility. It must
  // also leave the carried memos untouched (private-memo rule).
  core::OmniBoostConfig cfg = small_config(17);
  cfg.rollout_fraction = 0.5;
  core::OmniBoostScheduler plain(zoo(), embedding(), trained_estimator(), cfg);
  core::OmniBoostScheduler sloed(zoo(), embedding(), trained_estimator(), cfg);

  const Workload w1{{ModelId::kAlexNet, ModelId::kSqueezeNet}};
  const Workload w2{{ModelId::kAlexNet, ModelId::kSqueezeNet,
                     ModelId::kMobileNet}};
  const core::ScheduleResult cold_a = plain.schedule(w1);
  const core::ScheduleResult cold_b = sloed.schedule(w1);
  ASSERT_EQ(cold_a.mapping, cold_b.mapping);

  core::ScheduleContext ctx;
  ctx.previous_workload = w1;
  ctx.carried_from = {0, 1, -1};
  const core::ScheduleResult no_slo = plain.reschedule(w2, cold_a.mapping, ctx);

  ctx.slo_s = {1e9, 1e9, 1e9};
  ctx.board = &board();
  const core::ScheduleResult with_slo =
      sloed.reschedule(w2, cold_b.mapping, ctx);
  EXPECT_EQ(no_slo.mapping, with_slo.mapping);
  EXPECT_EQ(no_slo.expected_reward, with_slo.expected_reward);
  EXPECT_EQ(no_slo.evaluations + no_slo.cache_hits,
            with_slo.evaluations + with_slo.cache_hits);
  // SLO-aware decisions bypass the carried memos entirely.
  EXPECT_GT(plain.carried_memo_footprint(), 0u);
  EXPECT_EQ(sloed.carried_memo_footprint(), 0u);
}

TEST(OmniBoostReschedule, ImpossibleSloStillYieldsAValidMapping) {
  // Hard prune with an unmeetable SLO: every candidate's reward clamps to
  // <= 0, but the search must still return a complete, stage-legal mapping.
  core::OmniBoostConfig cfg = small_config(19);
  cfg.rollout_fraction = 0.5;
  cfg.slo_hard_prune = true;
  core::OmniBoostScheduler omni(zoo(), embedding(), trained_estimator(), cfg);

  const Workload w1{{ModelId::kAlexNet, ModelId::kMobileNet}};
  const core::ScheduleResult cold = omni.schedule(w1);

  core::ScheduleContext ctx;
  ctx.previous_workload = w1;
  ctx.carried_from = {0, 1};
  ctx.slo_s = {1e-9, 1e-9};
  ctx.board = &board();
  const core::ScheduleResult warm = omni.reschedule(w1, cold.mapping, ctx);
  EXPECT_EQ(warm.mapping.num_dnns(), 2u);
  EXPECT_TRUE(warm.mapping.within_stage_limit(3));
  EXPECT_EQ(warm.evaluations + warm.cache_hits, 24u);  // 0.5 * 48
}

TEST(OmniBoostReschedule, SloShapingAvoidsAViolatingPreviousMapping) {
  // Give the warm search a previous mapping that VIOLATES a stream's SLO
  // (everything stacked on LITTLE starves the big nets) and an SLO chosen
  // so that better placements exist. With prior_bias high the SLO-free
  // search would stick near the previous mapping; the SLO-aware one must
  // walk away from it: its decision's DES replay meets the SLO while the
  // previous mapping's replay does not.
  const Workload w{{ModelId::kVgg19, ModelId::kAlexNet}};
  const sim::Mapping bad =
      sim::Mapping::all_on(w.layer_counts(zoo()), device::ComponentId::kLittleCpu);
  const auto nets = w.resolve(zoo());
  // Anchor the SLO to an achievable placement (4x the all-GPU p99 — met by
  // roughly a third of random stage-legal mappings), and require that the
  // carried-over mapping genuinely breaks it.
  const sim::Mapping good =
      sim::Mapping::all_on(w.layer_counts(zoo()), device::ComponentId::kGpu);
  const double slo =
      4.0 * board().simulate_traced(nets, good).trace.per_dnn_latency[0].p99;
  const auto bad_replay = board().simulate_traced(nets, bad);
  ASSERT_TRUE(bad_replay.trace.per_dnn_latency[0].samples == 0 ||
              bad_replay.trace.per_dnn_latency[0].p99 > slo);

  core::OmniBoostConfig cfg = small_config(23);
  cfg.rollout_fraction = 1.0;  // full budget: give the search room to move
  cfg.prior_bias = 0.0;        // explore widely instead of hugging the prior
  cfg.slo_hard_prune = true;
  core::OmniBoostScheduler omni(zoo(), embedding(), trained_estimator(), cfg);

  core::ScheduleContext ctx;
  ctx.previous_workload = w;
  ctx.carried_from = {0, 1};
  ctx.slo_s = {slo, 0.0};
  ctx.board = &board();
  const core::ScheduleResult warm = omni.reschedule(w, bad, ctx);

  const auto warm_replay = board().simulate_traced(nets, warm.mapping);
  EXPECT_GT(warm_replay.trace.per_dnn_latency[0].samples, 0u);
  EXPECT_LE(warm_replay.trace.per_dnn_latency[0].p99, slo)
      << "SLO-aware reschedule kept an SLO-breaking mapping";
}

TEST(OmniBoostReschedule, CarriedMemosAreBoundedByLruEviction) {
  core::OmniBoostConfig cfg = small_config(41);
  cfg.rollout_fraction = 0.5;
  cfg.carried_memo_entries = 8;  // tiny cap: only the current mix survives

  const Workload wa{{ModelId::kAlexNet, ModelId::kMobileNet}};
  const Workload wb{{ModelId::kAlexNet, ModelId::kSqueezeNet}};
  core::ScheduleContext ctx_a;
  ctx_a.previous_workload = wa;
  ctx_a.carried_from = {0, 1};
  core::ScheduleContext ctx_b;
  ctx_b.previous_workload = wa;
  ctx_b.carried_from = {0, -1};  // MobileNet left, SqueezeNet arrived

  core::OmniBoostScheduler capped(zoo(), embedding(), trained_estimator(),
                                  cfg);
  const core::ScheduleResult cold = capped.schedule(wa);
  capped.reschedule(wa, cold.mapping, ctx_a);
  const std::size_t after_a = capped.carried_memo_footprint();
  EXPECT_GT(after_a, 0u);
  capped.reschedule(wb, cold.mapping, ctx_b);

  // Reference run that only ever reschedules mix B (unbounded cap): its
  // footprint is exactly |B's memo|. The capped scheduler must match it —
  // mix A's memo (the LRU one, over the cap) was evicted, mix B's kept.
  core::OmniBoostConfig unbounded = cfg;
  unbounded.carried_memo_entries = 0;
  core::OmniBoostScheduler reference(zoo(), embedding(), trained_estimator(),
                                     unbounded);
  reference.schedule(wa);  // same cold decision state
  reference.reschedule(wb, cold.mapping, ctx_b);
  EXPECT_EQ(capped.carried_memo_footprint(),
            reference.carried_memo_footprint());
  EXPECT_LT(capped.carried_memo_footprint(),
            after_a + reference.carried_memo_footprint());
}

}  // namespace
