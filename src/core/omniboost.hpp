#pragma once
/// \file omniboost.hpp
/// The OmniBoost scheduler: MCTS exploration guided by the trained
/// throughput estimator (paper Fig. 2, steps 4-8). This is the framework's
/// primary public entry point; see examples/quickstart.cpp.

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/embedding.hpp"
#include "core/estimator.hpp"
#include "core/mcts.hpp"
#include "core/scheduler.hpp"
#include "sim/des.hpp"

namespace omniboost::core {

/// OmniBoost run-time controls.
struct OmniBoostConfig {
  /// Search controls (paper defaults: budget 500, depth 100, limit 3).
  /// Note: leave its batch_size/cache fields at their defaults here — the
  /// scheduler-level knobs below are the single source of truth, schedule()
  /// forwards them into the search config, and non-default values smuggled
  /// in through this sub-config are rejected (std::invalid_argument) rather
  /// than silently overwritten.
  MctsConfig mcts;
  /// Root-parallel search workers. 1 reproduces the paper's sequential
  /// search; N > 1 splits the budget over N independent trees, each with a
  /// private clone of the estimator (the CNN forward pass is stateful), and
  /// cuts the decision latency by ~N at comparable quality.
  std::size_t workers = 1;
  /// Leaf evaluations batched per estimator forward pass (the MCTS
  /// expansion-wave width; forwarded into MctsConfig::batch_size by
  /// schedule()). 1 reproduces the paper's sequential search bit-for-bit;
  /// larger values amortize the CNN traversal over the wave — see
  /// bench_runtime_overhead's batched-vs-scalar columns.
  std::size_t batch_size = 1;
  /// Memoize estimator rewards by mapping hash (forwarded into
  /// MctsConfig::cache). Rewards for repeated mappings are replayed
  /// bit-exactly, so this changes only the evaluations/cache_hits split,
  /// never the decision.
  bool cache = true;
  /// Compute kernel for the estimator's CNN layers (nn/kernel.hpp).
  /// schedule() runs the search against an estimator with this kernel kind,
  /// cloning the shared instance on mismatch (the shared estimator is never
  /// mutated). kReference together with {batch_size = 1, workers = 1}
  /// reproduces the paper's sequential search bit-for-bit; kGemm is faster
  /// and deterministic, matching within float rounding (<= 1e-6).
  nn::KernelKind kernel = nn::default_kernel();
  /// Budget multiplier for warm-started incremental decisions
  /// (reschedule()): an incremental search spends
  /// max(1, round(rollout_fraction * mcts.budget)) rollouts. The surviving
  /// streams' previous assignments seed the search (MctsWarmStart), so a
  /// fraction of the cold budget suffices — bench_serving_scenarios sweeps
  /// the latency/throughput tradeoff. schedule() never reads this.
  double rollout_fraction = 0.4;
  /// Rollout bias toward the warm-start prior (MctsWarmStart::prior_bias).
  /// High by design: at 0.9 a typical rollout deviates from the previous
  /// mapping in only a couple of layers, so the incremental budget explores
  /// a local neighbourhood of the previous decision (plus the unconstrained
  /// layers of newly arrived streams) instead of scattering single-layer
  /// flips that fragment pipeline stages.
  double prior_bias = 0.9;
  /// Retention cap on the carried evaluation memos, in total mapping->reward
  /// entries across all mixes. Long serving sessions visit many mixes;
  /// when the cap is exceeded the least-recently-rescheduled mixes' memos
  /// are dropped (the current mix is always kept). Dropping a memo costs
  /// re-evaluation only, never correctness. 0 = unbounded.
  std::size_t carried_memo_entries = 200'000;
  /// SLO reward shaping in warm reschedule(): when the context carries
  /// latency SLOs AND a board model, every candidate mapping is DES-replayed
  /// (with the context's migration stalls applied, if any) and candidates
  /// whose replayed p99 frame latency breaks a stream's SLO (shared rule:
  /// sim::breaks_slo) are demoted by slo_shape once per violating stream —
  /// positive rewards shrink toward zero, negative ones are pushed further
  /// down, so the ordering holds in both reward-sign regimes. Violators
  /// stay comparable (a heavily-violating mapping may beat nothing), just
  /// dominated by any SLO-clean candidate of similar quality.
  double slo_shape = 0.25;
  /// Hard-prune variant of the knob above: violating candidates are demoted
  /// by a constant reward offset per violating stream — far below any
  /// SLO-clean candidate whatever the estimator's reward sign — so they can
  /// never outrank a clean one. The search still returns SOME mapping when
  /// every candidate violates (least-violating, estimator-best among ties).
  bool slo_hard_prune = false;
  /// Replay memoization for SLO-shaped warm decisions: DES replay traces
  /// are a pure function of (mix, candidate mapping, per-stream start
  /// delays, board throttle) — SLOs only interpret the trace — so replays
  /// are memoized under exactly that key and carried across reschedule()
  /// calls on the same mix. A repeated warm decision answers its candidate
  /// replays from the memo (ScheduleResult::replay_hits) instead of
  /// re-running the DES; decisions are bit-identical with the memo on or
  /// off (pinned by tests/replay_memo_test.cpp). The memo is dropped
  /// whenever its purity inputs may have moved: set_config(), a different
  /// board instance, or a changed SLO vector (conservative — SLOs don't
  /// enter the key, but a changed contract is the natural epoch boundary).
  bool replay_memo = true;
  /// Retention cap on the replay memos, in total key->trace entries across
  /// all mixes (LRU by mix, like carried_memo_entries). 0 = unbounded.
  std::size_t replay_memo_entries = 50'000;
};

/// Production scheduler: estimator-guided Monte Carlo Tree Search.
class OmniBoostScheduler final : public IScheduler {
 public:
  /// \param zoo        dataset networks (layer counts, embedding columns)
  /// \param embedding  profiled distributed-embeddings tensor
  /// \param estimator  trained throughput estimator (shared, not owned
  ///                   exclusively — several schedulers may reuse it)
  OmniBoostScheduler(const models::ModelZoo& zoo,
                     const EmbeddingTensor& embedding,
                     std::shared_ptr<const ThroughputEstimator> estimator,
                     const OmniBoostConfig& config = {});

  std::string name() const override { return "OmniBoost"; }
  ScheduleResult schedule(const workload::Workload& w) override;

  /// Warm-started incremental decision (serving runtime path): surviving
  /// streams' previous assignments become the search prior, the budget
  /// shrinks to rollout_fraction of the cold budget, and the evaluation
  /// memo carries over between decisions on the same mix (cache hits from
  /// earlier epochs are counted in ScheduleResult::cache_hits). Runs a
  /// single search tree regardless of OmniBoostConfig::workers — splitting
  /// an already-shrunken budget over root-parallel trees starves each one.
  /// With ctx.warm_start == false this is exactly schedule(w).
  ///
  /// SLO/churn awareness: when ctx.slo_s names at least one SLO and
  /// ctx.board is set, rewards are shaped by a DES replay of each candidate
  /// (OmniBoostConfig::slo_shape / slo_hard_prune), with ctx.migration's
  /// per-candidate stalls applied — they reject candidates whose own churn
  /// would starve an SLO stream for the whole window (cheaper stalls price
  /// into the runtime's measured T, not latency). Shaped rewards
  /// depend on (previous mapping, SLOs) — not only on (mix, mapping) — so
  /// the per-mix carried memo is bypassed for such decisions and a private
  /// memo is used instead; the carried memos are neither read nor written.
  /// With no SLOs in the context this path is bit-identical to the pre-SLO
  /// reschedule (pinned by tests/serving_test.cpp).
  ScheduleResult reschedule(const workload::Workload& w,
                            const sim::Mapping& previous,
                            const ScheduleContext& ctx) override;

  /// Replaces the search configuration (budget sweeps in the ablations).
  /// Drops the carried evaluation memos AND the replay memos: a new kernel
  /// or evaluator setup may score mappings differently, and replayed
  /// rewards/traces must stay exact.
  void set_config(const OmniBoostConfig& config) {
    config_ = config;
    carried_memos_.clear();
    replay_memos_.clear();
    replay_board_ = nullptr;
    replay_slo_.clear();
  }

  /// Total mapping->reward entries currently retained across the carried
  /// memos (diagnostics; tests pin the eviction policy through this).
  std::size_t carried_memo_footprint() const;

  /// Total key->trace entries currently retained across the replay memos
  /// (diagnostics; tests pin the purity/eviction contract through this).
  std::size_t replay_memo_footprint() const;

 private:
  /// The estimator instance the search should query: the shared one when
  /// its kernel matches config_.kernel, else a private clone with the
  /// requested kernel (serialization round-trip; the shared instance is
  /// never mutated).
  std::shared_ptr<const ThroughputEstimator> active_estimator() const;
  /// Scores a wave of mappings for workload \p w with ONE batched CNN
  /// forward pass through \p est.
  BatchMappingEvaluator batch_evaluator(
      const workload::Workload& w,
      std::shared_ptr<const ThroughputEstimator> est) const;
  /// Forwards the scheduler-level batching/caching knobs into the generic
  /// search config (rejecting values smuggled into the sub-config).
  MctsConfig make_mcts_config() const;

  /// Drops least-recently-used mixes' memos until the configured entry cap
  /// holds again (keeping \p keep, the mix just rescheduled).
  void evict_carried_memos(const std::string& keep);
  /// Same policy for the replay memos (cap: replay_memo_entries).
  void evict_replay_memos(const std::string& keep);

  const models::ModelZoo* zoo_;
  const EmbeddingTensor* embedding_;
  std::shared_ptr<const ThroughputEstimator> estimator_;
  OmniBoostConfig config_;
  /// One carried evaluation memo with its LRU stamp.
  struct CarriedMemo {
    EvaluationMemo memo;
    std::uint64_t last_used = 0;
  };
  /// Per-mix evaluation memos carried across reschedule() calls, keyed by
  /// the mix signature (ordered model indices). Estimator rewards are a
  /// pure function of (workload, mapping), so a memo is valid for every
  /// later decision on the same mix; cold schedule() never touches these.
  /// Bounded by OmniBoostConfig::carried_memo_entries (LRU per mix).
  std::unordered_map<std::string, CarriedMemo> carried_memos_;
  std::uint64_t memo_clock_ = 0;

  /// Purity key of one DES candidate replay. The delays and the throttle
  /// are fingerprinted to their IEEE-754 bit patterns at construction so
  /// hashing and equality agree on every value the DES could see (a raw
  /// double key would hash 0.0 and -0.0 apart while comparing them equal).
  struct ReplayKey {
    sim::Mapping mapping;
    std::vector<std::uint64_t> delay_bits;
    std::uint64_t throttle_bits = 0;
    bool operator==(const ReplayKey& rhs) const {
      return throttle_bits == rhs.throttle_bits &&
             delay_bits == rhs.delay_bits && mapping == rhs.mapping;
    }
  };
  struct ReplayKeyHasher {
    std::size_t operator()(const ReplayKey& k) const {
      // FNV-1a over the delay/throttle bits, seeded by the mapping hash.
      std::uint64_t h = k.mapping.hash() ^ 0xcbf29ce484222325ULL;
      const auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ULL;
      };
      mix(k.throttle_bits);
      for (const std::uint64_t b : k.delay_bits) mix(b);
      return static_cast<std::size_t>(h);
    }
  };
  /// One per-mix replay memo with its LRU stamp.
  struct ReplayMemo {
    std::unordered_map<ReplayKey, sim::DesSimulator::TracedResult,
                       ReplayKeyHasher>
        entries;
    std::uint64_t last_used = 0;
  };
  /// Per-mix DES replay memos carried across SLO-aware reschedule() calls,
  /// keyed by the mix signature like carried_memos_. Valid only while the
  /// board and the SLO vector below still match the context (checked per
  /// decision; cleared on mismatch and by set_config()).
  std::unordered_map<std::string, ReplayMemo> replay_memos_;
  const sim::DesSimulator* replay_board_ = nullptr;
  std::vector<double> replay_slo_;
};

/// Generic search-based scheduler around an arbitrary mapping evaluator —
/// the ablation harness uses it to swap the estimator for a DES oracle or a
/// linear probe while keeping the identical MCTS.
class MctsScheduler final : public IScheduler {
 public:
  MctsScheduler(std::string name, const models::ModelZoo& zoo,
                MappingEvaluator evaluator, MctsConfig config);

  std::string name() const override { return name_; }
  ScheduleResult schedule(const workload::Workload& w) override;

 private:
  std::string name_;
  const models::ModelZoo* zoo_;
  MappingEvaluator evaluator_;
  MctsConfig config_;
};

}  // namespace omniboost::core
