#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace omniboost::util {

Json Json::boolean(bool v) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = v;
  return j;
}

Json Json::number(double v) {
  if (!std::isfinite(v)) {
    throw std::invalid_argument("Json::number: non-finite value");
  }
  Json j;
  j.type_ = Type::kNumber;
  j.num_ = v;
  return j;
}

Json Json::string(std::string v) {
  Json j;
  j.type_ = Type::kString;
  j.str_ = std::move(v);
  return j;
}

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

Json& Json::push_back(Json v) {
  if (type_ != Type::kArray) {
    throw std::logic_error("Json::push_back: not an array");
  }
  array_.push_back(std::move(v));
  return *this;
}

Json& Json::set(const std::string& key, Json v) {
  if (type_ != Type::kObject) {
    throw std::logic_error("Json::set: not an object");
  }
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  object_.emplace_back(key, std::move(v));
  return *this;
}

std::size_t Json::size() const {
  switch (type_) {
    case Type::kArray:
      return array_.size();
    case Type::kObject:
      return object_.size();
    default:
      throw std::logic_error("Json::size: not a container");
  }
}

std::string Json::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string format_number(double v) {
  // Integers print without a trailing ".0"; everything else with enough
  // digits to round-trip a double.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void Json::write(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      return;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      out += format_number(num_);
      return;
    case Type::kString:
      out += '"';
      out += escape(str_);
      out += '"';
      return;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += indent > 0 ? "," : ",";
        newline_indent(out, indent, depth + 1);
        array_[i].write(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out += ",";
        first = false;
        newline_indent(out, indent, depth + 1);
        out += '"';
        out += escape(k);
        out += indent > 0 ? "\": " : "\":";
        v.write(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

}  // namespace omniboost::util
