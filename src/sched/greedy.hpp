#pragma once
/// \file greedy.hpp
/// Greedy layer-to-component assignment, modelled on the trial-and-error
/// greedy controller the paper cites as related work (Kwon et al., HPCA
/// 2021): layers are visited in order and each is placed on the component
/// that minimizes the marginal finish-time estimate, given the load already
/// committed. The scheduler is deterministic, needs no training, and runs in
/// microseconds — but it is myopic: it never revisits a placement, so it
/// inherits exactly the "space exploration inefficiency" the paper calls out
/// (§III).

#include "core/scheduler.hpp"
#include "device/cost_model.hpp"
#include "models/zoo.hpp"

namespace omniboost::sched {

/// Greedy controls.
struct GreedyConfig {
  /// Per-DNN pipeline-stage cap (the paper's x = 3). The greedy pass refuses
  /// placements that would open a stage beyond the cap.
  std::size_t max_stages = 3;
  /// Weight of the inter-component transfer time in the marginal cost; 0
  /// makes the pass communication-oblivious.
  double comm_weight = 1.0;
  /// Process DNNs heaviest-first (by total FLOPs). Heaviest-first lets the
  /// big models grab the strong components before the light ones fill them.
  bool heaviest_first = true;
};

/// Deterministic greedy list scheduler over layers.
class GreedyScheduler final : public core::IScheduler {
 public:
  GreedyScheduler(const models::ModelZoo& zoo, const device::DeviceSpec& device,
                  GreedyConfig config = {});

  std::string name() const override { return "Greedy"; }
  core::ScheduleResult schedule(const workload::Workload& w) override;

 private:
  const models::ModelZoo* zoo_;
  device::DeviceSpec device_;  ///< owned copy; cost_ points into it
  device::CostModel cost_;
  GreedyConfig config_;
};

}  // namespace omniboost::sched
