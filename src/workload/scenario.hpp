#pragma once
/// \file scenario.hpp
/// Dynamic multi-DNN scenarios: a timestamped script of models arriving at
/// and departing from the board. Where workload::Workload answers "what is
/// running right now", a Scenario describes how that answer changes over a
/// serving session — the input the core::ServingRuntime replays against an
/// IScheduler to exercise contextual rescheduling.
///
/// Scenarios are scriptable and replayable: a seeded random generator
/// (random_scenario) produces churn sweeps deterministically, and a small
/// line-based text trace format round-trips through
/// serialize_scenario/parse_scenario:
///
///     # omniboost scenario trace v1
///     at 0 arrive VGG-19 slo 120
///     at 2.5 arrive AlexNet
///     at 7.25 depart VGG-19
///
/// An arrival may carry a per-stream latency SLO (`slo <ms>`): the stream's
/// end-to-end frame latency target while it is on the board. SLOs are
/// optional — events without the clause serialize exactly as before, so
/// pre-SLO traces round-trip bit-identically.
///
/// Fleet fault events ride the same script (consumed by core::Cluster;
/// workload/faults.hpp generates them from an MTBF/MTTR process):
///
///     at 4 fail board 1
///     at 5 throttle board 0 0.5
///     at 9 recover board 1
///
/// `fail` takes a board out of service, `throttle <factor>` slows a live
/// board to the given speed fraction (0 < factor <= 1), and `recover`
/// restores a failed or throttled board to full health. Validation enforces
/// per-board legality: a board fails only while not already failed,
/// throttles only while not failed, and recovers only while failed or
/// throttled. Fault events never touch the concurrent mix, and fault-free
/// scenarios serialize byte-identically to the pre-fault format.

#include <iosfwd>
#include <string>
#include <vector>

#include "models/model_id.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace omniboost::workload {

/// What happens at an event: a model stream joins/leaves the mix, or a
/// board of the serving fleet changes health (fault events; see the file
/// header for the trace clauses and legality rules).
enum class ScenarioEventKind {
  kArrive,
  kDepart,
  kFailBoard,      ///< board goes out of service
  kThrottleBoard,  ///< board slows to `factor` of full speed
  kRecoverBoard,   ///< board returns to full health
};

/// True for the board-health event kinds (fail/throttle/recover).
constexpr bool is_fault_event(ScenarioEventKind kind) {
  return kind == ScenarioEventKind::kFailBoard ||
         kind == ScenarioEventKind::kThrottleBoard ||
         kind == ScenarioEventKind::kRecoverBoard;
}

/// One change to the concurrent mix or the fleet's health.
struct ScenarioEvent {
  double time_s = 0.0;  ///< event timestamp (seconds since scenario start)
  ScenarioEventKind kind = ScenarioEventKind::kArrive;
  models::ModelId model = models::ModelId::kAlexNet;
  /// Latency SLO of the arriving stream in milliseconds; 0 = none. The SLO
  /// stays attached to the stream until it departs. Departures and fault
  /// events never carry one (enforced at construction).
  double slo_ms = 0.0;
  /// Fault events only: the fleet board the event targets. The scenario
  /// layer does not know the fleet size — core::Cluster range-checks the
  /// index against its own board count at replay time. Must stay 0 on
  /// arrive/depart events.
  std::size_t board = 0;
  /// kThrottleBoard only: the speed fraction the board drops to, in
  /// (0, 1]. Must stay 0 on every other kind.
  double factor = 0.0;

  bool operator==(const ScenarioEvent& rhs) const {
    return time_s == rhs.time_s && kind == rhs.kind && model == rhs.model &&
           slo_ms == rhs.slo_ms && board == rhs.board && factor == rhs.factor;
  }
  bool operator!=(const ScenarioEvent& rhs) const { return !(*this == rhs); }
};

/// A validated arrival/departure script over the model zoo.
///
/// Invariants (enforced at construction, std::invalid_argument on breach):
/// timestamps are non-negative and non-decreasing, a model arrives only
/// while absent and departs only while present (mixes stay duplicate-free,
/// mirroring the embedding tensor's one-column-per-model layout), and the
/// concurrent mix never exceeds the dataset size. The mix MAY become empty
/// mid-scenario; the serving runtime records such epochs as idle.
class Scenario {
 public:
  Scenario() = default;
  explicit Scenario(std::vector<ScenarioEvent> events);

  const std::vector<ScenarioEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// The concurrent mix in effect after replaying events [0, event_index]
  /// (arrival order preserved; departures close ranks).
  Workload mix_after(std::size_t event_index) const;

  /// Per-stream latency SLOs (seconds, 0 = none) aligned with
  /// mix_after(event_index): entry d is the SLO the d-th present stream
  /// arrived with. This is what core::ServingRuntime hands the scheduler
  /// through ScheduleContext::slo_s.
  std::vector<double> slo_after(std::size_t event_index) const;

  /// True when any arrival carries a latency SLO.
  bool has_slos() const;

  /// True when the scenario carries any fail/throttle/recover event.
  bool has_faults() const;

  /// Largest board index any fault event references plus one (0 for
  /// fault-free scenarios) — the minimum fleet size that can replay this
  /// scenario.
  std::size_t fault_board_span() const;

  /// Largest concurrent mix size reached over the scenario (fault events
  /// never change the mix).
  std::size_t peak_concurrency() const;

  /// Human-readable one-line summary, e.g. "8 events / 12.4 s / peak 4".
  std::string describe() const;

  bool operator==(const Scenario& rhs) const { return events_ == rhs.events_; }
  bool operator!=(const Scenario& rhs) const { return !(*this == rhs); }

 private:
  std::vector<ScenarioEvent> events_;
};

/// Knobs of the seeded scenario generator.
struct ScenarioConfig {
  std::size_t events = 8;          ///< total arrive/depart events
  std::size_t min_concurrent = 1;  ///< departures never drop the mix below
  std::size_t max_concurrent = 4;  ///< arrivals never grow the mix beyond
  /// Chance of drawing a departure when both kinds are legal. Higher values
  /// mean shorter-lived streams, i.e. more churn per unit time.
  double depart_bias = 0.4;
  /// Mean of the exponential inter-event gap (the first event fires at 0).
  double mean_interarrival_s = 5.0;
  /// Latency-SLO band: each arrival carries an SLO with probability
  /// slo_fraction, drawn uniformly from [slo_min_ms, slo_max_ms]. The
  /// default 0 draws nothing from the Rng, so pre-SLO configs reproduce
  /// their scenarios bit-for-bit (pinned by tests/scenario_test.cpp).
  double slo_fraction = 0.0;
  double slo_min_ms = 50.0;
  double slo_max_ms = 500.0;
};

/// Draws a random scenario from \p rng. The draw sequence depends only on
/// the Rng stream and the config, so `Rng(util::fork_stream(seed, i))`
/// reproduces scenario i of a sweep bit-for-bit regardless of what else ran.
/// The first event is always an arrival at t = 0.
Scenario random_scenario(util::Rng& rng, const ScenarioConfig& config = {});

/// Parses one event clause — the body of a trace line after `at <time>`,
/// e.g. "arrive VGG-19 slo 120" or "throttle board 0 0.5" — into a
/// ScenarioEvent stamped with \p time_s. This is THE command grammar: the
/// trace parser and the serving daemon's wire protocol both call it, so a
/// command the daemon accepts is by construction a clause the trace format
/// round-trips. Trailing `#` comments are ignored. Throws
/// std::invalid_argument (no line prefix — callers add their own context).
ScenarioEvent parse_event_clause(const std::string& clause, double time_s);

/// Inverse of parse_event_clause: the clause body of one event, without the
/// `at <time> ` prefix. SLO/throttle values print with "%.17g" so they
/// round-trip bit-exactly.
std::string serialize_event_clause(const ScenarioEvent& e);

/// Writes the text trace form shown in the file header. Timestamps (and SLO
/// values) are printed with "%.17g" so parse_scenario round-trips them
/// bit-exactly; events without an SLO omit the `slo` clause entirely, so
/// pre-SLO scenarios serialize byte-identically to the v1 format. Each line
/// is `at <time> ` + serialize_event_clause(e).
std::string serialize_scenario(const Scenario& scenario);

/// Parses the text trace format: one
/// `at <time> <arrive|depart> <model> [slo <ms>]` or
/// `at <time> <fail|recover> board <index>` or
/// `at <time> throttle board <index> <factor>` statement per line; blank
/// lines and `#` comments are ignored. Model names go through
/// models::parse_model_name (case-insensitive, dash-tolerant). The `slo`
/// clause is legal on arrivals only.
/// Throws std::invalid_argument on malformed lines or invariant breaches.
Scenario parse_scenario(std::istream& in);
Scenario parse_scenario(const std::string& text);

/// File convenience wrappers around the trace format.
Scenario load_scenario_file(const std::string& path);
void save_scenario_file(const Scenario& scenario, const std::string& path);

}  // namespace omniboost::workload
