// workload::ArrivalProcess: determinism under fork_stream, scenario
// validity, Poisson interarrival moments at fixed seeds, the diurnal rate
// envelope, flash-crowd burst shape, SLO-band draw accounting, and the CLI
// spec parser's rejection paths.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "util/rng.hpp"
#include "workload/arrival.hpp"

namespace {

using namespace omniboost;
using workload::ArrivalKind;
using workload::ArrivalProcess;
using workload::Scenario;
using workload::ScenarioEvent;
using workload::ScenarioEventKind;

/// Timestamps of the arrive events of a scenario.
std::vector<double> arrival_times(const Scenario& s) {
  std::vector<double> times;
  for (const ScenarioEvent& e : s.events())
    if (e.kind == ScenarioEventKind::kArrive) times.push_back(e.time_s);
  return times;
}

std::size_t arrivals_in(const std::vector<double>& times, double lo,
                        double hi) {
  std::size_t n = 0;
  for (const double t : times)
    if (t >= lo && t < hi) ++n;
  return n;
}

TEST(ArrivalProcess, DeterministicUnderForkStream) {
  ArrivalProcess p;
  p.rate_per_s = 0.5;
  p.slo_fraction = 0.4;
  for (const std::uint64_t index : {0ull, 5ull, 23ull}) {
    util::Rng a(util::fork_stream(7, index));
    util::Rng b(util::fork_stream(7, index));
    EXPECT_EQ(workload::sample_scenario(p, 120.0, a),
              workload::sample_scenario(p, 120.0, b))
        << "stream " << index;
  }
  util::Rng s0(util::fork_stream(7, 0));
  util::Rng s1(util::fork_stream(7, 1));
  EXPECT_NE(workload::sample_scenario(p, 120.0, s0),
            workload::sample_scenario(p, 120.0, s1));
}

TEST(ArrivalProcess, SampledScenariosAreValidAndRespectCeiling) {
  // Scenario's own constructor re-validates every invariant (legal event
  // ordering, duplicate-free mixes), so sampling without a throw is already
  // most of the test; the ceiling and horizon are the process's own promises.
  for (const ArrivalKind kind :
       {ArrivalKind::kPoisson, ArrivalKind::kDiurnal,
        ArrivalKind::kFlashCrowd}) {
    ArrivalProcess p;
    p.kind = kind;
    p.rate_per_s = 1.5;
    p.mean_lifetime_s = 4.0;
    p.max_concurrent = 3;
    p.slo_fraction = 0.5;
    for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
      util::Rng rng(util::fork_stream(seed, 0));
      const Scenario s = workload::sample_scenario(p, 50.0, rng);
      EXPECT_LE(s.peak_concurrency(), p.max_concurrent);
      if (!s.empty()) {
        EXPECT_LE(s.events().back().time_s, 50.0);
      }
      EXPECT_TRUE(s.has_slos());  // half the arrivals carry one
    }
  }
}

TEST(ArrivalProcess, PoissonInterarrivalMomentsWithinTolerance) {
  // The homogeneous path must not burn thinning draws, so consecutive
  // arrival gaps are exactly Exponential(rate): mean 1/rate, variance
  // 1/rate^2. Short lifetimes keep the board far from the concurrency
  // ceiling, so (essentially) no arrival is dropped and the accepted gaps
  // are the raw draws. ~2000 samples put the sample mean within a few
  // percent; the bands below leave an order of magnitude of slack.
  ArrivalProcess p;
  p.rate_per_s = 1.0;
  p.mean_lifetime_s = 2.0;
  p.max_concurrent = models::kNumModels;
  util::Rng rng(util::fork_stream(2024, 0));
  const Scenario s = workload::sample_scenario(p, 2000.0, rng);
  const std::vector<double> times = arrival_times(s);
  ASSERT_GT(times.size(), 1500u);

  std::vector<double> gaps;
  for (std::size_t i = 1; i < times.size(); ++i)
    gaps.push_back(times[i] - times[i - 1]);
  double mean = 0.0;
  for (const double g : gaps) mean += g;
  mean /= static_cast<double>(gaps.size());
  double var = 0.0;
  for (const double g : gaps) var += (g - mean) * (g - mean);
  var /= static_cast<double>(gaps.size() - 1);

  const double expected_mean = 1.0 / p.rate_per_s;
  const double expected_var = 1.0 / (p.rate_per_s * p.rate_per_s);
  EXPECT_NEAR(mean, expected_mean, 0.10 * expected_mean);
  EXPECT_NEAR(var, expected_var, 0.25 * expected_var);
}

TEST(ArrivalProcess, DiurnalRateEnvelopeRespected) {
  // rate(t) = 1 * (1 + 0.9 sin(2 pi t / 200)): crest windows around
  // t = 50 + 200k run ~12x the trough windows around t = 150 + 200k.
  ArrivalProcess p;
  p.kind = ArrivalKind::kDiurnal;
  p.rate_per_s = 1.0;
  p.diurnal_period_s = 200.0;
  p.diurnal_amplitude = 0.9;
  p.mean_lifetime_s = 0.5;
  p.max_concurrent = models::kNumModels;
  util::Rng rng(util::fork_stream(2024, 1));
  const double horizon = 2000.0;  // 10 periods
  const Scenario s = workload::sample_scenario(p, horizon, rng);
  const std::vector<double> times = arrival_times(s);

  std::size_t crest = 0, trough = 0;
  for (double base = 0.0; base < horizon; base += p.diurnal_period_s) {
    crest += arrivals_in(times, base + 40.0, base + 60.0);
    trough += arrivals_in(times, base + 140.0, base + 160.0);
  }
  // Expected ~370 vs ~29 over the 10 windows each.
  EXPECT_GT(crest, 4 * std::max<std::size_t>(trough, 1));
  // The average of the sinusoid over whole periods is the base rate.
  EXPECT_NEAR(static_cast<double>(times.size()), p.rate_per_s * horizon,
              0.15 * p.rate_per_s * horizon);
  // And the instantaneous-rate accessor reproduces the envelope itself.
  EXPECT_DOUBLE_EQ(workload::arrival_rate_at(p, 0.0), 1.0);
  EXPECT_NEAR(workload::arrival_rate_at(p, 50.0), 1.9, 1e-12);
  EXPECT_NEAR(workload::arrival_rate_at(p, 150.0), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(workload::peak_arrival_rate(p), 1.9);
}

TEST(ArrivalProcess, FlashCrowdBurstWidthAndHeightAsConfigured) {
  ArrivalProcess p;
  p.kind = ArrivalKind::kFlashCrowd;
  p.rate_per_s = 0.2;
  p.burst_start_s = 100.0;
  p.burst_width_s = 20.0;
  p.burst_height = 20.0;  // 4 arrivals/s inside the burst
  p.mean_lifetime_s = 0.5;
  p.max_concurrent = models::kNumModels;
  util::Rng rng(util::fork_stream(2024, 2));
  const Scenario s = workload::sample_scenario(p, 300.0, rng);
  const std::vector<double> times = arrival_times(s);

  const std::size_t in_burst = arrivals_in(times, 100.0, 120.0);
  const std::size_t before = arrivals_in(times, 70.0, 90.0);
  const std::size_t after = arrivals_in(times, 200.0, 220.0);
  // Expected ~80 inside vs ~4 in any equal-width baseline window.
  EXPECT_GE(in_burst, 40u);
  EXPECT_GE(in_burst, 4 * std::max<std::size_t>(before, 1));
  EXPECT_GE(in_burst, 4 * std::max<std::size_t>(after, 1));
  EXPECT_DOUBLE_EQ(workload::arrival_rate_at(p, 110.0), 4.0);
  EXPECT_DOUBLE_EQ(workload::arrival_rate_at(p, 120.0), 0.2);  // half-open
  EXPECT_DOUBLE_EQ(workload::peak_arrival_rate(p), 4.0);
}

TEST(ArrivalProcess, SloBandDrawsOnlyWhenFractionPositive) {
  // slo_fraction == 0 must consume zero SLO draws: scenarios are identical
  // whatever the band bounds say, and carry no SLOs.
  ArrivalProcess a;
  a.rate_per_s = 0.8;
  ArrivalProcess b = a;
  b.slo_min_ms = 1.0;
  b.slo_max_ms = 2.0;
  util::Rng ra(util::fork_stream(5, 0));
  util::Rng rb(util::fork_stream(5, 0));
  const Scenario sa = workload::sample_scenario(a, 100.0, ra);
  const Scenario sb = workload::sample_scenario(b, 100.0, rb);
  EXPECT_EQ(sa, sb);
  EXPECT_FALSE(sa.has_slos());

  // slo_fraction == 1 attaches an in-band SLO to every arrival.
  ArrivalProcess c = a;
  c.slo_fraction = 1.0;
  c.slo_min_ms = 40.0;
  c.slo_max_ms = 90.0;
  util::Rng rc(util::fork_stream(5, 0));
  const Scenario sc = workload::sample_scenario(c, 100.0, rc);
  ASSERT_FALSE(sc.empty());
  for (const ScenarioEvent& e : sc.events()) {
    if (e.kind == ScenarioEventKind::kArrive) {
      EXPECT_GE(e.slo_ms, c.slo_min_ms);
      EXPECT_LT(e.slo_ms, c.slo_max_ms);
    } else {
      EXPECT_EQ(e.slo_ms, 0.0);
    }
  }
}

TEST(ArrivalProcess, ParseArrivalSpecRoundTripsTheGrammar) {
  const ArrivalProcess p = workload::parse_arrival_spec("poisson:0.5");
  EXPECT_EQ(p.kind, ArrivalKind::kPoisson);
  EXPECT_DOUBLE_EQ(p.rate_per_s, 0.5);

  const ArrivalProcess d = workload::parse_arrival_spec("diurnal:1.5:300:0.6");
  EXPECT_EQ(d.kind, ArrivalKind::kDiurnal);
  EXPECT_DOUBLE_EQ(d.rate_per_s, 1.5);
  EXPECT_DOUBLE_EQ(d.diurnal_period_s, 300.0);
  EXPECT_DOUBLE_EQ(d.diurnal_amplitude, 0.6);

  const ArrivalProcess f = workload::parse_arrival_spec("flash:0.2:10:5:8");
  EXPECT_EQ(f.kind, ArrivalKind::kFlashCrowd);
  EXPECT_DOUBLE_EQ(f.rate_per_s, 0.2);
  EXPECT_DOUBLE_EQ(f.burst_start_s, 10.0);
  EXPECT_DOUBLE_EQ(f.burst_width_s, 5.0);
  EXPECT_DOUBLE_EQ(f.burst_height, 8.0);

  EXPECT_NE(workload::describe(p).find("poisson"), std::string::npos);
  EXPECT_NE(workload::describe(d).find("diurnal"), std::string::npos);
  EXPECT_NE(workload::describe(f).find("flash"), std::string::npos);
}

TEST(ArrivalProcess, ParseArrivalSpecRejectsMalformedSpecs) {
  for (const char* bad : {
           "",                      // empty
           "poisson",               // missing rate
           "poisson:",              // empty rate
           "poisson:zero",          // non-numeric
           "poisson:-1",            // rate out of range
           "poisson:0",             // rate out of range
           "poisson:1e999",         // overflow -> non-finite
           "poisson:0.5:7",         // extra field
           "diurnal:1:60",          // missing amplitude
           "diurnal:1:60:1.5",      // amplitude out of [0, 1]
           "diurnal:1:-60:0.5",     // period out of range
           "flash:1:10:5",          // missing height
           "flash:1:10:5:0.5",      // height < 1
           "flash:1:-10:5:2",       // negative start
           "uniform:1",             // unknown kind
           ":1",                    // empty kind
       }) {
    EXPECT_THROW(workload::parse_arrival_spec(bad), std::invalid_argument)
        << "spec: '" << bad << "'";
  }
}

TEST(ArrivalProcess, SampleScenarioRejectsInvalidProcesses) {
  util::Rng rng(1);
  ArrivalProcess p;
  p.rate_per_s = 0.0;
  EXPECT_THROW(workload::sample_scenario(p, 10.0, rng),
               std::invalid_argument);
  p = ArrivalProcess{};
  p.mean_lifetime_s = -1.0;
  EXPECT_THROW(workload::sample_scenario(p, 10.0, rng),
               std::invalid_argument);
  p = ArrivalProcess{};
  p.max_concurrent = 0;
  EXPECT_THROW(workload::sample_scenario(p, 10.0, rng),
               std::invalid_argument);
  p = ArrivalProcess{};
  p.max_concurrent = models::kNumModels + 1;
  EXPECT_THROW(workload::sample_scenario(p, 10.0, rng),
               std::invalid_argument);
  p = ArrivalProcess{};
  p.slo_fraction = 0.5;
  p.slo_min_ms = 100.0;
  p.slo_max_ms = 50.0;  // inverted band
  EXPECT_THROW(workload::sample_scenario(p, 10.0, rng),
               std::invalid_argument);
  p = ArrivalProcess{};
  EXPECT_THROW(workload::sample_scenario(p, -1.0, rng),
               std::invalid_argument);
  EXPECT_THROW(
      workload::sample_scenario(p, std::numeric_limits<double>::infinity(),
                                rng),
      std::invalid_argument);
}

TEST(ArrivalProcess, DrawSequenceIsPinned) {
  // Golden for the per-arrival draw order (gap -> [thinning] -> model ->
  // lifetime -> [SLO]): if this fails, a draw was added/reordered and every
  // seeded fleet sweep silently changes. Captured from the first
  // implementation; see sample_scenario's header contract.
  ArrivalProcess p;
  p.rate_per_s = 0.5;
  p.mean_lifetime_s = 5.0;
  p.max_concurrent = 3;
  util::Rng rng(util::fork_stream(2023, 1));
  const Scenario s = workload::sample_scenario(p, 12.0, rng);
  EXPECT_EQ(workload::serialize_scenario(s),
            "# omniboost scenario trace v1\n"
            "at 1.8935241593412178 arrive Inception-v3\n"
            "at 3.3302488172882896 arrive MobileNet\n"
            "at 4.1304359545561589 arrive Inception-v4\n"
            "at 6.3708811774077985 depart Inception-v3\n"
            "at 6.5286383058695048 depart Inception-v4\n"
            "at 9.2012107165461092 arrive ResNet-34\n"
            "at 9.7250852741056022 depart MobileNet\n"
            "at 10.922154424292918 arrive ResNet-50\n"
            "at 10.961156876638563 arrive SqueezeNet\n"
            "at 11.308408444143707 depart SqueezeNet\n");
}

}  // namespace
