/// \file bench_scalability.cpp
/// The paper's scalability claims (§III, §V-B): the mapping space grows
/// multiplicatively with every DNN added, yet OmniBoost's decision cost is
/// budget-bound (500 estimator queries) and therefore flat. This bench
/// charts, per mix size 1..5: the exact stage-limited design-space size,
/// OmniBoost's decision latency and query count, and the achieved speedup —
/// plus the 6-DNN "board unresponsive" boundary the paper reports.

#include "bench_common.hpp"
#include "sched/exhaustive.hpp"

using namespace omniboost;

int main() {
  constexpr std::uint64_t kSeed = 29;
  bench::banner("Scalability — design-space growth vs flat decision cost",
                "Sections III and V-B", kSeed);

  bench::Context ctx;
  std::printf("training the throughput estimator (calibrated campaign, see EXPERIMENTS.md)...\n\n");
  ctx.train_estimator();

  core::OmniBoostScheduler omni(ctx.zoo(), ctx.embedding(), ctx.estimator());

  // "rollouts" = evaluations + cache_hits: the spent search budget, which
  // stays pinned at 500 regardless of the mapping-space size (the paper's
  // flat-decision-cost claim).
  util::Table t({"DNNs", "workload", "mapping space", "rollouts",
                 "decision (s)", "T vs all-GPU"});

  util::Rng rng(kSeed);
  for (std::size_t n = 1; n <= 5; ++n) {
    // Redraw until the mix fits in board memory under the GPU-only mapping
    // (the measurement-campaign convention used across the benches).
    workload::Workload w;
    double tb = 0.0;
    for (int tries = 0; tries < 64; ++tries) {
      w = workload::random_mix(rng, n);
      tb = ctx.measure(w, sim::Mapping::all_on(w.layer_counts(ctx.zoo()),
                                               device::ComponentId::kGpu));
      if (tb > 0.0) break;
    }

    const double space = sched::count_mappings(ctx.zoo(), w, 3);
    const auto r = omni.schedule(w);
    const double got = ctx.measure(w, r.mapping);

    char space_str[32];
    std::snprintf(space_str, sizeof space_str, "%.2e", space);
    t.add_row({std::to_string(n), w.describe(), space_str,
               std::to_string(r.evaluations + r.cache_hits),
               util::fmt(r.decision_seconds, 3),
               "x" + util::fmt(got / tb, 2)});
  }
  bench::report("scalability", t);

  // The 6-DNN boundary: the paper reports the board becoming unresponsive.
  util::Rng rng6(kSeed + 6);
  int infeasible = 0;
  constexpr int kTrials = 10;
  for (int i = 0; i < kTrials; ++i) {
    const workload::Workload w = workload::random_mix(rng6, 6);
    const auto report = ctx.board().simulate(
        w.resolve(ctx.zoo()), sim::Mapping::all_on(w.layer_counts(ctx.zoo()),
                                                   device::ComponentId::kGpu));
    if (!report.feasible) ++infeasible;
  }
  std::printf("\n6-DNN mixes exceeding board memory (paper: board "
              "unresponsive): %d / %d random draws\n", infeasible, kTrials);

  std::printf("\npaper check: the space grows by orders of magnitude per "
              "added DNN while queries stay pinned at the budget and "
              "decision latency stays near-flat\n");
  return 0;
}
