#include "core/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "device/cost_model.hpp"
#include "util/require.hpp"

namespace omniboost::core {

namespace {

/// Streams currently on a board, resolved against the zoo.
sim::NetworkList resolve_present(const models::ModelZoo& zoo,
                                 const std::vector<models::ModelId>& present) {
  sim::NetworkList nets;
  nets.reserve(present.size());
  for (const models::ModelId id : present) nets.push_back(&zoo.network(id));
  return nets;
}

class LeastLoadedPolicy final : public IPlacementPolicy {
 public:
  std::string name() const override { return "least-loaded"; }
  std::size_t place(const workload::ScenarioEvent&,
                    const models::NetworkDesc&,
                    const std::vector<BoardView>& boards,
                    const std::vector<std::size_t>& admissible) override {
    std::size_t best = admissible.front();
    for (const std::size_t i : admissible)
      if (boards[i].streams < boards[best].streams) best = i;
    return best;
  }
};

class BestEstimatedTPolicy final : public IPlacementPolicy {
 public:
  std::string name() const override { return "best-t"; }
  std::size_t place(const workload::ScenarioEvent&,
                    const models::NetworkDesc& net,
                    const std::vector<BoardView>& boards,
                    const std::vector<std::size_t>& admissible) override {
    // Estimated post-placement utilization: compute demand over capacity.
    // The board that stays least utilized serves the highest T per stream.
    const auto utilization = [&](std::size_t i) {
      return (boards[i].load_flops + net.total_flops()) /
             std::max(boards[i].peak_gflops, 1e-12);
    };
    std::size_t best = admissible.front();
    for (const std::size_t i : admissible)
      if (utilization(i) < utilization(best)) best = i;
    return best;
  }
};

class MemoryHeadroomPolicy final : public IPlacementPolicy {
 public:
  std::string name() const override { return "memory-headroom"; }
  std::size_t place(const workload::ScenarioEvent&,
                    const models::NetworkDesc&,
                    const std::vector<BoardView>& boards,
                    const std::vector<std::size_t>& admissible) override {
    std::size_t best = admissible.front();
    for (const std::size_t i : admissible)
      if (boards[i].memory_headroom_bytes > boards[best].memory_headroom_bytes)
        best = i;
    return best;
  }
};

}  // namespace

std::unique_ptr<IPlacementPolicy> make_placement_policy(
    const std::string& kind) {
  if (kind == "least-loaded") return std::make_unique<LeastLoadedPolicy>();
  if (kind == "best-t") return std::make_unique<BestEstimatedTPolicy>();
  if (kind == "memory-headroom")
    return std::make_unique<MemoryHeadroomPolicy>();
  throw std::invalid_argument(
      "make_placement_policy: unknown kind '" + kind +
      "' (expected least-loaded | best-t | memory-headroom)");
}

const std::vector<std::string>& placement_policy_kinds() {
  static const std::vector<std::string> kinds = {"least-loaded", "best-t",
                                                 "memory-headroom"};
  return kinds;
}

double board_memory_lower_bound_bytes(const device::CostModel& cost,
                                      const sim::NetworkList& nets) {
  double bytes = cost.device().per_stream_overhead_bytes *
                 static_cast<double>(nets.size());
  for (const models::NetworkDesc* net : nets) {
    OB_REQUIRE(net != nullptr && !net->layers.empty(),
               "board_memory_lower_bound_bytes: empty network");
    // One segment spanning the whole network is the residency minimum: any
    // split repeats the largest-activation term per segment.
    bytes += cost.segment_working_set_bytes(*net, 0, net->num_layers() - 1);
  }
  return bytes;
}

double solo_latency_floor_s(const device::CostModel& cost,
                            const models::NetworkDesc& net) {
  double floor_s = cost.device().per_inference_overhead_s;
  for (const models::LayerDesc& layer : net.layers) {
    double best = cost.layer_time(layer, device::kAllComponents[0]);
    for (std::size_t c = 1; c < device::kNumComponents; ++c)
      best = std::min(best, cost.layer_time(layer, device::kAllComponents[c]));
    floor_s += best;
  }
  return floor_s;
}

Cluster::Cluster(const models::ModelZoo& zoo, std::vector<BoardSpec> boards,
                 ClusterConfig config)
    : zoo_(&zoo), boards_(std::move(boards)), config_(config) {
  OB_REQUIRE(!boards_.empty(), "Cluster: at least one board required");
  // Up-front config validation: bad pricing parameters would otherwise
  // surface as NaN stalls deep inside a run.
  OB_REQUIRE(
      std::isfinite(config_.cross_board_gbps) && config_.cross_board_gbps > 0.0,
      "Cluster: cross_board_gbps must be finite and > 0");
  OB_REQUIRE(std::isfinite(config_.max_migration_stall_s) &&
                 config_.max_migration_stall_s >= 0.0,
             "Cluster: max_migration_stall_s must be finite and >= 0");
  sims_.reserve(boards_.size());
  for (const BoardSpec& b : boards_)
    sims_.push_back(std::make_unique<sim::DesSimulator>(b.device, config_.des));
}

ClusterReport Cluster::run(const SchedulerFactory& make_scheduler,
                           const workload::Scenario& scenario,
                           IPlacementPolicy& policy) const {
  OB_REQUIRE(!scenario.empty(), "Cluster::run: empty scenario");
  OB_REQUIRE(static_cast<bool>(make_scheduler),
             "Cluster::run: null scheduler factory");
  OB_REQUIRE(scenario.fault_board_span() <= boards_.size(),
             "Cluster::run: scenario fault events target a board outside "
             "the fleet");

  const std::size_t n = boards_.size();
  std::vector<std::unique_ptr<IScheduler>> schedulers;
  std::vector<ServingSession> sessions;
  schedulers.reserve(n);
  sessions.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    schedulers.push_back(make_scheduler(i));
    OB_REQUIRE(schedulers.back() != nullptr,
               "Cluster::run: scheduler factory returned null");
    sessions.emplace_back(*zoo_, *sims_[i], config_.serving);
    // A previous faulted run may have left the board throttled; reruns must
    // be byte-identical, so every run starts at full health (setting 1.0 on
    // a healthy board is numerically a no-op).
    sims_[i]->set_throttle(1.0);
  }

  // Board health: up[i] false while board i is failed, throttle[i] < 1
  // while it serves degraded. Fault-free scenarios never change either.
  std::vector<bool> up(n, true);
  std::vector<double> throttle(n, 1.0);
  std::vector<double> down_since(n, 0.0);

  ClusterReport report;
  report.board_names.reserve(n);
  for (const BoardSpec& b : boards_) report.board_names.push_back(b.name);

  // Stream location: which board holds each model's stream (mixes are
  // globally duplicate-free, so ModelId keys the stream), npos = absent.
  constexpr std::size_t kAbsent = static_cast<std::size_t>(-1);
  std::vector<std::size_t> location(models::kNumModels, kAbsent);
  std::vector<bool> rejected(models::kNumModels, false);
  std::vector<bool> shed(models::kNumModels, false);

  // Live views for the placement policy (and the admission headroom).
  const auto make_views = [&]() {
    std::vector<BoardView> views(n);
    for (std::size_t i = 0; i < n; ++i) {
      BoardView& v = views[i];
      v.index = i;
      v.device = &boards_[i].device;
      v.streams = sessions[i].present().size();
      v.load_flops = 0.0;
      for (const models::ModelId id : sessions[i].present())
        v.load_flops += zoo_->network(id).total_flops();
      v.peak_gflops = 0.0;
      for (const device::ComponentSpec& c : boards_[i].device.components)
        v.peak_gflops += c.peak_gflops;
      const sim::NetworkList nets =
          resolve_present(*zoo_, sessions[i].present());
      v.memory_headroom_bytes =
          boards_[i].device.memory_budget_bytes -
          board_memory_lower_bound_bytes(sims_[i]->cost_model(), nets);
      v.last_measured_throughput = sessions[i].last_measured_throughput();
    }
    return views;
  };

  // True when board \p i can possibly serve \p net on top of its current
  // residency within the arrival's SLO (if any).
  const auto admits = [&](std::size_t i, const models::NetworkDesc& net,
                          double slo_s) {
    if (!up[i]) return false;  // failed boards never admit, admit_all or not
    if (config_.admit_all) return true;
    sim::NetworkList nets = resolve_present(*zoo_, sessions[i].present());
    nets.push_back(&net);
    if (board_memory_lower_bound_bytes(sims_[i]->cost_model(), nets) >
        boards_[i].device.memory_budget_bytes)
      return false;
    if (slo_s > 0.0 &&
        solo_latency_floor_s(sims_[i]->cost_model(), net) > slo_s)
      return false;
    return true;
  };

  // Prices moving \p net's weights onto another board over the fleet
  // network (the intra-board model's per-segment overhead applies once —
  // the whole network re-instantiates as one download).
  const auto cross_board_stall = [&](const models::NetworkDesc& net) {
    return net.total_weight_bytes() / (config_.cross_board_gbps * 1e9) +
           config_.serving.migration.per_segment_overhead_s;
  };

  // All board epochs flow through here so degraded-epoch exposure (non-idle
  // epochs served at reduced speed) is counted uniformly; at full health the
  // extra comparison changes nothing.
  const auto serve = [&](std::size_t i, const workload::ScenarioEvent& ev,
                         double stall_s = 0.0) -> const EpochReport& {
    const EpochReport& ep = sessions[i].apply(*schedulers[i], ev, stall_s);
    if (ep.mix_size > 0 && throttle[i] < 1.0) ++report.degraded_epochs;
    return ep;
  };

  // Residency floor of one stream — the failover/rebalance ordering key
  // (device-independent: weights plus double-buffered peak activation).
  const auto working_set = [&](const models::NetworkDesc& net) {
    return sims_[0]->cost_model().segment_working_set_bytes(
        net, 0, net.num_layers() - 1);
  };

  // Moves stream \p m (with its SLO) onto \p target, charging the
  // cross-board transfer as a start stall on its first epoch there.
  const auto arrive_at = [&](std::size_t target, models::ModelId m,
                             double slo_s, double time_s, double stall_s) {
    workload::ScenarioEvent arr;
    arr.time_s = time_s;
    arr.kind = workload::ScenarioEventKind::kArrive;
    arr.model = m;
    arr.slo_ms = slo_s * 1e3;
    serve(target, arr, stall_s);
    location[models::model_index(m)] = target;
  };

  for (const workload::ScenarioEvent& e : scenario.events()) {
    if (workload::is_fault_event(e.kind)) {
      const std::size_t b = e.board;  // < n by the fault_board_span check
      if (e.kind == workload::ScenarioEventKind::kFailBoard) {
        ++report.board_failures;
        up[b] = false;
        down_since[b] = e.time_s;
        // Snapshot the residents, evict the board, then fail each stream
        // over — lightest working set first: light streams are the
        // likeliest to fit a survivor and the cheapest to move, so when
        // capacity runs short it is the heaviest (least-feasible) streams
        // that get shed. A rebooted board holds no weights, so eviction
        // clears the session's warm state entirely.
        std::vector<models::ModelId> victims = sessions[b].present();
        const std::vector<double> victim_slos = sessions[b].present_slo_s();
        std::vector<double> victim_slo_of(models::kNumModels, 0.0);
        for (std::size_t v = 0; v < victims.size(); ++v)
          victim_slo_of[models::model_index(victims[v])] = victim_slos[v];
        sessions[b].evict_all();
        std::stable_sort(victims.begin(), victims.end(),
                         [&](models::ModelId a, models::ModelId c) {
                           return working_set(zoo_->network(a)) <
                                  working_set(zoo_->network(c));
                         });
        for (const models::ModelId m : victims) {
          const models::NetworkDesc& net = zoo_->network(m);
          const double slo_s = victim_slo_of[models::model_index(m)];
          std::vector<std::size_t> targets;
          for (std::size_t i = 0; i < n; ++i)
            if (admits(i, net, slo_s)) targets.push_back(i);
          if (targets.empty()) {
            // Graceful degradation: no survivor can take the stream.
            shed[models::model_index(m)] = true;
            location[models::model_index(m)] = kAbsent;
            ++report.shed_streams;
            continue;
          }
          // Failover is forced, not elective — the stall cap never sheds a
          // stream some board still admits.
          const double stall_s = cross_board_stall(net);
          workload::ScenarioEvent arr = e;
          arr.kind = workload::ScenarioEventKind::kArrive;
          arr.model = m;
          arr.slo_ms = slo_s * 1e3;
          arr.board = 0;
          const std::size_t target = policy.place(arr, net, make_views(),
                                                  targets);
          OB_REQUIRE(std::find(targets.begin(), targets.end(), target) !=
                         targets.end(),
                     "Cluster::run: policy placed outside the target set");
          arrive_at(target, m, slo_s, e.time_s, stall_s);
          ++report.failovers;
          report.failover_stall_s += stall_s;
          report.failover_weight_bytes += net.total_weight_bytes();
        }
      } else if (e.kind == workload::ScenarioEventKind::kThrottleBoard) {
        ++report.board_throttles;
        throttle[b] = e.factor;
        sims_[b]->set_throttle(e.factor);
        if (!sessions[b].idle()) {
          // Re-decide and re-measure the resident mix at the new speed.
          char label[64];
          std::snprintf(label, sizeof(label), "throttle x%g (refresh)",
                        e.factor);
          sessions[b].refresh(*schedulers[b], e.time_s, label);
          ++report.degraded_epochs;
        }
      } else {  // kRecoverBoard
        ++report.board_recoveries;
        const bool was_throttled = up[b] && throttle[b] < 1.0;
        if (!up[b]) {
          report.downtime_board_s += e.time_s - down_since[b];
          up[b] = true;
        }
        throttle[b] = 1.0;
        sims_[b]->set_throttle(1.0);
        if (was_throttled && !sessions[b].idle())
          sessions[b].refresh(*schedulers[b], e.time_s, "recover (refresh)");
        if (config_.rebalance_on_recovery) {
          // Greedily pull streams back while some donor board holds at
          // least two more than the recovered one. Elective, so the
          // migration stall cap applies.
          for (;;) {
            std::size_t donor = kAbsent;
            for (std::size_t i = 0; i < n; ++i) {
              if (i == b || !up[i]) continue;
              if (donor == kAbsent || sessions[i].present().size() >
                                          sessions[donor].present().size())
                donor = i;
            }
            if (donor == kAbsent ||
                sessions[donor].present().size() <
                    sessions[b].present().size() + 2)
              break;
            // Lightest resident first: cheapest to move, likeliest to fit.
            const std::vector<models::ModelId>& held =
                sessions[donor].present();
            const std::vector<double>& held_slos =
                sessions[donor].present_slo_s();
            std::size_t pick = held.size();
            for (std::size_t v = 0; v < held.size(); ++v)
              if (pick == held.size() ||
                  working_set(zoo_->network(held[v])) <
                      working_set(zoo_->network(held[pick])))
                pick = v;
            const models::ModelId m = held[pick];
            const double slo_s = held_slos[pick];
            const models::NetworkDesc& net = zoo_->network(m);
            const double stall_s = cross_board_stall(net);
            if (!admits(b, net, slo_s) ||
                (config_.max_migration_stall_s > 0.0 &&
                 stall_s > config_.max_migration_stall_s))
              break;
            workload::ScenarioEvent leave;
            leave.time_s = e.time_s;
            leave.kind = workload::ScenarioEventKind::kDepart;
            leave.model = m;
            serve(donor, leave);
            arrive_at(b, m, slo_s, e.time_s, stall_s);
            ++report.rebalances;
            report.rebalance_stall_s += stall_s;
          }
        }
      }
      continue;
    }
    if (e.kind == workload::ScenarioEventKind::kDepart) {
      const std::size_t idx = models::model_index(e.model);
      if (rejected[idx]) {
        // The stream never made it onto a board; its departure is a no-op.
        rejected[idx] = false;
        ++report.rejected_departures;
        continue;
      }
      if (shed[idx]) {
        // The stream was dropped during a failover; nothing holds it now.
        shed[idx] = false;
        ++report.shed_departures;
        continue;
      }
      const std::size_t board = location[idx];
      OB_REQUIRE(board != kAbsent,
                 "Cluster::run: departure of an untracked stream");
      serve(board, e);
      location[idx] = kAbsent;
      ++report.departures;
      continue;
    }

    // Arrival: admit, place, serve — or reject.
    ++report.offered_streams;
    const models::NetworkDesc& net = zoo_->network(e.model);
    const double slo_s = e.slo_ms / 1e3;

    std::vector<std::size_t> admissible;
    for (std::size_t i = 0; i < n; ++i)
      if (admits(i, net, slo_s)) admissible.push_back(i);
    if (admissible.empty()) {
      rejected[models::model_index(e.model)] = true;
      ++report.rejected_streams;
      continue;
    }

    const std::vector<BoardView> views = make_views();
    const std::size_t board = policy.place(e, net, views, admissible);
    OB_REQUIRE(std::find(admissible.begin(), admissible.end(), board) !=
                   admissible.end(),
               "Cluster::run: policy placed outside the admissible set");
    const EpochReport& ep = serve(board, e);
    location[models::model_index(e.model)] = board;
    ++report.admitted_streams;

    // Rescue: the arrival saturated its board (DES says the mix is not
    // serveable there). Move the arriving stream — the cheapest victim, its
    // weights are the only ones not yet resident anywhere — to another
    // admitting board, pricing the cross-board weight transfer as a one-off
    // start stall on its first epoch there.
    if (config_.migrate && !ep.feasible && n > 1) {
      std::vector<std::size_t> targets;
      for (std::size_t i = 0; i < n; ++i)
        if (i != board && admits(i, net, slo_s)) targets.push_back(i);
      if (!targets.empty()) {
        const double stall_s = cross_board_stall(net);
        if (config_.max_migration_stall_s <= 0.0 ||
            stall_s <= config_.max_migration_stall_s) {
          const std::size_t target =
              policy.place(e, net, make_views(), targets);
          OB_REQUIRE(std::find(targets.begin(), targets.end(), target) !=
                         targets.end(),
                     "Cluster::run: policy placed outside the target set");
          workload::ScenarioEvent leave = e;
          leave.kind = workload::ScenarioEventKind::kDepart;
          leave.slo_ms = 0.0;  // departures never carry an SLO
          serve(board, leave);
          serve(target, e, stall_s);
          location[models::model_index(e.model)] = target;
          ++report.migrations;
          report.cross_board_stall_s += stall_s;
          report.cross_board_weight_bytes += net.total_weight_bytes();
        }
      }
    }
  }

  // Boards still down when the scenario ends accrue downtime up to the last
  // event, and leave subsequent runs healthy (rerun byte-identity).
  const double end_time_s = scenario.events().back().time_s;
  for (std::size_t i = 0; i < n; ++i) {
    if (!up[i]) report.downtime_board_s += end_time_s - down_since[i];
    sims_[i]->set_throttle(1.0);
    report.resident_streams += sessions[i].present().size();
  }

  for (ServingSession& s : sessions) report.boards.push_back(s.finish());
  for (const ServingReport& b : report.boards) {
    report.decisions += b.decisions;
    report.total_decision_seconds += b.total_decision_seconds;
    report.fleet_throughput += b.mean_throughput;
    report.total_slo_streams += b.total_slo_streams;
    report.total_slo_violations += b.total_slo_violations;
    report.total_evaluations += b.total_evaluations;
    report.total_cache_hits += b.total_cache_hits;
    report.total_des_replays += b.total_des_replays;
    report.total_replay_hits += b.total_replay_hits;
    report.total_migrated_segments += b.total_migrated_segments;
    report.total_migration_stall_s += b.total_migration_stall_s;
  }
  if (report.offered_streams > 0)
    report.rejection_rate = static_cast<double>(report.rejected_streams) /
                            static_cast<double>(report.offered_streams);
  return report;
}

std::vector<BoardSpec> make_heterogeneous_fleet(std::size_t n) {
  OB_REQUIRE(n > 0, "make_heterogeneous_fleet: n must be > 0");
  std::vector<BoardSpec> fleet;
  fleet.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    device::DeviceSpec spec = device::make_hikey970();
    std::string variant;
    switch (i % 3) {
      case 0:
        variant = "hikey970";
        break;
      case 1: {
        variant = "hikey970-pro";
        for (device::ComponentSpec& c : spec.components) {
          c.peak_gflops *= 1.5;
          c.mem_bw_gbps *= 1.3;
        }
        spec.dram_bw_gbps *= 1.3;
        spec.memory_budget_bytes *= 1.5;
        break;
      }
      default: {
        variant = "hikey970-lite";
        for (device::ComponentSpec& c : spec.components) {
          c.peak_gflops *= 0.6;
          c.mem_bw_gbps *= 0.8;
        }
        spec.dram_bw_gbps *= 0.8;
        spec.memory_budget_bytes *= 0.75;
        break;
      }
    }
    spec.name = variant;
    fleet.push_back(BoardSpec{variant + "-" + std::to_string(i), spec});
  }
  return fleet;
}

}  // namespace omniboost::core
