/// \file surveillance_station.cpp
/// Domain scenario from the paper's introduction: an edge device running
/// several vision DNNs concurrently (object detection backbone, person
/// re-identification, scene classification, lightweight motion filter).
/// The example compares all four schedulers on this fixed workload and shows
/// what happens as cameras are added until the board runs out of memory —
/// the paper's "unresponsive at 6 concurrent DNNs" observation.

#include <cstdio>
#include <iostream>

#include "core/dataset.hpp"
#include "core/omniboost.hpp"
#include "nn/loss.hpp"
#include "sched/baseline.hpp"
#include "sched/ga.hpp"
#include "sched/mosaic.hpp"
#include "util/table.hpp"

using namespace omniboost;

namespace {

std::shared_ptr<core::ThroughputEstimator> train_estimator(
    const models::ModelZoo& zoo, const core::EmbeddingTensor& embedding,
    const sim::DesSimulator& board) {
  core::DatasetConfig dc;
  dc.samples = 200;
  const core::SampleSet data =
      core::generate_dataset(zoo, embedding, board, dc);
  auto est = std::make_shared<core::ThroughputEstimator>(
      embedding.models_dim(), embedding.layers_dim());
  nn::L1Loss l1;
  nn::TrainConfig tc;
  tc.epochs = 50;
  est->fit(data, 40, l1, tc);
  return est;
}

}  // namespace

int main() {
  models::ModelZoo zoo;
  const device::DeviceSpec spec = device::make_hikey970();
  const device::CostModel cost(spec);
  const core::EmbeddingTensor embedding(zoo, cost);
  const sim::DesSimulator board(spec);

  std::printf("smart surveillance station on %s\n", spec.name.c_str());
  std::printf("training the throughput estimator (reduced campaign)...\n\n");
  auto estimator = train_estimator(zoo, embedding, board);

  // The station's fixed analytics stack.
  const workload::Workload station{
      {models::ModelId::kResNet50,     // detection backbone
       models::ModelId::kInceptionV3,  // person re-identification
       models::ModelId::kVgg16,        // scene classifier
       models::ModelId::kMobileNet}};  // motion filter
  std::printf("analytics stack: %s\n\n", station.describe().c_str());

  auto baseline = sched::AllOnScheduler::gpu_baseline(zoo);
  sched::MosaicScheduler mosaic(zoo, spec);
  sched::GaScheduler ga(zoo, spec);
  core::OmniBoostScheduler omni(zoo, embedding, estimator);

  const auto nets = station.resolve(zoo);
  util::Table t({"scheduler", "T (inf/s)", "normalized", "decision cost"});
  const double tb =
      board.simulate(nets, baseline.schedule(station).mapping).avg_throughput;

  core::IScheduler* all[] = {&baseline, &mosaic, &ga, &omni};
  for (core::IScheduler* s : all) {
    const core::ScheduleResult r = s->schedule(station);
    const double tt = board.simulate(nets, r.mapping).avg_throughput;
    std::string cost_note;
    if (r.board_seconds > 0.0)
      cost_note = util::fmt(r.board_seconds / 60.0, 1) + " board-min";
    else
      cost_note = util::fmt(r.decision_seconds * 1e3, 0) + " ms";
    t.add_row({s->name(), util::fmt(tt, 3), util::fmt(tt / tb, 2), cost_note});
  }
  t.print(std::cout);

  // Capacity planning: add analytics until the board gives out.
  std::printf("\ncapacity: growing the stack one DNN at a time\n");
  const models::ModelId extras[] = {
      models::ModelId::kSqueezeNet, models::ModelId::kVgg19,
      models::ModelId::kResNet101, models::ModelId::kInceptionV4};
  workload::Workload grown = station;
  for (models::ModelId extra : extras) {
    grown.mix.push_back(extra);
    const auto counts = grown.layer_counts(zoo);
    const auto rep = board.simulate(
        grown.resolve(zoo),
        sim::Mapping::all_on(counts, device::ComponentId::kGpu));
    if (!rep.feasible) {
      std::printf("  %zu DNNs (%s): board out of memory — unresponsive, as "
                  "the paper observed at 6 concurrent DNNs\n",
                  grown.size(), grown.describe().c_str());
      break;
    }
    const core::ScheduleResult r = omni.schedule(grown);
    const auto omni_rep = board.simulate(grown.resolve(zoo), r.mapping);
    std::printf("  %zu DNNs: GPU-only T=%.3f, OmniBoost T=%.3f inf/s\n",
                grown.size(), rep.avg_throughput, omni_rep.avg_throughput);
  }
  return 0;
}
