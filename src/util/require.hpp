#pragma once
/// \file require.hpp
/// Precondition checking helpers (exception-based, active in all build types).
///
/// The Core-Guidelines `Expects`-style contract macro: API-boundary
/// preconditions throw std::invalid_argument / std::logic_error so misuse is
/// diagnosed identically in Release and Debug builds.

#include <stdexcept>
#include <string>

namespace omniboost::util {

[[noreturn]] inline void fail_require(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  throw std::invalid_argument(std::string("precondition failed: ") + cond +
                              " at " + file + ":" + std::to_string(line) +
                              (msg.empty() ? "" : (" — " + msg)));
}

}  // namespace omniboost::util

/// Checks an API precondition; throws std::invalid_argument on violation.
#define OB_REQUIRE(cond, msg)                                              \
  do {                                                                     \
    if (!(cond))                                                           \
      ::omniboost::util::fail_require(#cond, __FILE__, __LINE__, (msg));   \
  } while (false)

/// Checks an internal invariant; throws std::logic_error on violation.
#define OB_ENSURE(cond, msg)                                                  \
  do {                                                                        \
    if (!(cond))                                                              \
      throw std::logic_error(std::string("invariant failed: ") + #cond +     \
                             " at " + __FILE__ + ":" + std::to_string(__LINE__) + \
                             " — " + (msg));                                  \
  } while (false)
