/// \file bench_fig4_estimator_training.cpp
/// Regenerates Figure 4 (§V): training and validation L1-loss curves of the
/// throughput estimator over 100 epochs on the 500-workload design-time
/// dataset (400 train / 100 validation).
///
/// Paper shape to reproduce: both curves fall from ~0.3 and flatten near
/// ~0.1-0.15 with a modest train/validation gap; wall-clock training time
/// under a minute.

#include <chrono>
#include <limits>

#include "bench_common.hpp"
#include "nn/kernel.hpp"

using namespace omniboost;

namespace {

/// FNV-1a over every byte of a dataset (inputs then targets, slot order) —
/// the byte-identity certificate for the parallel pipeline.
std::uint64_t fingerprint(const core::SampleSet& set) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix_bytes = [&h](const void* data, std::size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
      h ^= p[i];
      h *= 0x100000001b3ULL;
    }
  };
  for (const tensor::Tensor& t : set.inputs)
    mix_bytes(t.data(), t.size() * sizeof(float));
  for (const auto& t : set.targets) mix_bytes(t.data(), sizeof(t));
  return h;
}

}  // namespace

int main() {
  constexpr std::uint64_t kSeed = 42;
  bench::banner("Fig. 4 — estimator training curves", "Figure 4, Section V",
                kSeed);

  bench::Context ctx;
  std::printf("estimator: ResNet9-style CNN, GELU, %zu trainable parameters "
              "(paper: 20,044)\n",
              core::ThroughputEstimator(ctx.embedding().models_dim(),
                                        ctx.embedding().layers_dim())
                  .num_params());
  std::printf("dataset: 500 random mixes of 1-5 DNNs, 400 train / 100 val, "
              "L1 loss, Adam, 100 epochs\n\n");

  // Design-time parallelism: the slot-seeded dataset pipeline swept over
  // worker counts (byte-identical output certified by the FNV fingerprint),
  // and one estimator training per compute-kernel kind. This is the
  // design-time half of the kernel/worker story; the run-time half lives in
  // bench_runtime_overhead's kernel table.
  {
    // Generation campaign sized to ~0.1 s serial: long enough for the DES
    // work to dominate pool startup, short enough that each timed burst
    // fits the scheduler slice (long bursts pick up steal time on shared
    // hosts and understate scaling). Worker counts are interleaved within
    // each round so thermal/steal state is evened out across the variants;
    // the training sweep below uses its own paper-sized 500-workload
    // campaign.
    const std::size_t gen_samples = bench::scaled(1000, 40);
    const std::size_t fit_samples = bench::scaled(500, 40);
    const std::size_t repeats = bench::scaled(9, 1);
    std::printf("\nparallel design-time pipeline (%zu workloads, min of %zu "
                "runs):\n",
                gen_samples, repeats);
    util::Table pt({"phase", "workers / kernel", "seconds", "speedup",
                    "sigma (s)", "fingerprint / final val loss"});

    core::DatasetConfig dc;
    dc.samples = gen_samples;
    dc.seed = kSeed;
    const std::size_t worker_counts[] = {1, 2, 4};
    double gen_secs[3] = {};
    util::RunningStats gen_stats[3];
    std::uint64_t gen_fp[3] = {};
    for (std::size_t round = 0; round < repeats; ++round) {
      for (std::size_t v = 0; v < 3; ++v) {
        dc.workers = worker_counts[v];
        const auto t0 = std::chrono::steady_clock::now();
        const core::SampleSet set = core::generate_dataset(
            ctx.zoo(), ctx.embedding(), ctx.board(), dc);
        const double secs = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
        if (round == 0 || secs < gen_secs[v]) gen_secs[v] = secs;
        gen_stats[v].add(secs);
        gen_fp[v] = fingerprint(set);
      }
    }
    for (std::size_t v = 0; v < 3; ++v) {
      char fp_hex[32];
      std::snprintf(fp_hex, sizeof(fp_hex), "%016llx%s",
                    static_cast<unsigned long long>(gen_fp[v]),
                    gen_fp[v] == gen_fp[0] ? "" : " MISMATCH");
      pt.add_row({"dataset generation",
                  std::to_string(worker_counts[v]) + " workers",
                  util::fmt(gen_secs[v], 3),
                  util::fmt(gen_secs[0] / gen_secs[v], 2),
                  util::fmt(gen_stats[v].stddev(), 3), fp_hex});
    }

    dc.samples = fit_samples;
    dc.workers = 2;
    const core::SampleSet train_set =
        core::generate_dataset(ctx.zoo(), ctx.embedding(), ctx.board(), dc);
    double base_fit = 0.0;
    for (const nn::KernelKind kind :
         {nn::KernelKind::kReference, nn::KernelKind::kGemm}) {
      core::ThroughputEstimator est(ctx.embedding().models_dim(),
                                    ctx.embedding().layers_dim());
      est.set_kernel(kind);
      nn::L1Loss l1;
      nn::TrainConfig tc;
      tc.epochs = bench::scaled(30, 3);
      tc.workers = 2;
      nn::TrainHistory th;
      const auto t0 = std::chrono::steady_clock::now();
      th = est.fit(train_set, fit_samples / 5, l1, tc);
      const double secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
      if (kind == nn::KernelKind::kReference) base_fit = secs;
      pt.add_row({"estimator training", nn::kernel_name(kind),
                  util::fmt(secs, 2), util::fmt(base_fit / secs, 2), "-",
                  util::fmt(th.val_loss.back(), 4)});
    }
    bench::report("fig4_parallel_design", pt);
  }


  const auto start = std::chrono::steady_clock::now();
  const nn::TrainHistory h =
      ctx.train_estimator(bench::scaled(500, 80), bench::scaled(100, 20),
                          bench::scaled(100, 3), kSeed);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  util::Table t({"epoch", "train loss", "validation loss"});
  for (std::size_t e = 0; e < h.train_loss.size(); ++e) {
    if (e % 5 != 0 && e + 1 != h.train_loss.size()) continue;  // readable
    t.add_row(std::to_string(e + 1), {h.train_loss[e], h.val_loss[e]}, 4);
  }
  bench::report("fig4_estimator_training", t);

  std::printf("\nfinal: train=%.4f val=%.4f | training wall-clock: %.1fs "
              "(paper: under a minute on a GTX 1660 Ti)\n",
              h.train_loss.back(), h.val_loss.back(), seconds);
  std::printf("paper check: validation loss flattens near ~0.12; convergence "
              "without divergence or oscillation\n");

  return 0;
}
