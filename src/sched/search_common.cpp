#include "sched/search_common.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/require.hpp"

namespace omniboost::sched {

WorkloadEvaluatorFactory estimator_evaluator_factory(
    const models::ModelZoo& zoo, const core::EmbeddingTensor& embedding,
    std::shared_ptr<const core::ThroughputEstimator> estimator) {
  OB_REQUIRE(estimator != nullptr,
             "estimator_evaluator_factory: null estimator");
  OB_REQUIRE(estimator->trained(),
             "estimator_evaluator_factory: estimator must be trained");
  return [&zoo, &embedding, estimator = std::move(estimator)](
             const workload::Workload& w) -> core::MappingEvaluator {
    (void)zoo;
    return [&embedding, estimator, w](const sim::Mapping& m) {
      return estimator->predict_reward(embedding.masked_input(w, m));
    };
  };
}

WorkloadEvaluatorFactory oracle_evaluator_factory(
    const models::ModelZoo& zoo,
    std::shared_ptr<const sim::DesSimulator> board) {
  OB_REQUIRE(board != nullptr, "oracle_evaluator_factory: null simulator");
  return [&zoo, board = std::move(board)](
             const workload::Workload& w) -> core::MappingEvaluator {
    const sim::NetworkList nets = w.resolve(zoo);
    return [board, nets](const sim::Mapping& m) {
      return board->simulate(nets, m).avg_throughput;
    };
  };
}

WorkloadEvaluatorFactory analytic_evaluator_factory(
    const models::ModelZoo& zoo,
    std::shared_ptr<const sim::AnalyticModel> model) {
  OB_REQUIRE(model != nullptr, "analytic_evaluator_factory: null model");
  return [&zoo, model = std::move(model)](
             const workload::Workload& w) -> core::MappingEvaluator {
    const sim::NetworkList nets = w.resolve(zoo);
    return [model, nets](const sim::Mapping& m) {
      return model->evaluate(nets, m).avg_throughput;
    };
  };
}

WorkloadEvaluatorFactory ensemble_evaluator_factory(
    const models::ModelZoo& zoo, const core::EmbeddingTensor& embedding,
    std::vector<std::shared_ptr<const core::ThroughputEstimator>> members) {
  OB_REQUIRE(!members.empty(), "ensemble_evaluator_factory: empty ensemble");
  for (const auto& m : members) {
    OB_REQUIRE(m != nullptr, "ensemble_evaluator_factory: null member");
    OB_REQUIRE(m->trained(),
               "ensemble_evaluator_factory: every member must be trained");
  }
  return [&zoo, &embedding, members = std::move(members)](
             const workload::Workload& w) -> core::MappingEvaluator {
    (void)zoo;
    return [&embedding, members, w](const sim::Mapping& m) {
      const tensor::Tensor input = embedding.masked_input(w, m);
      double sum = 0.0;
      for (const auto& est : members) sum += est->predict_reward(input);
      return sum / static_cast<double>(members.size());
    };
  };
}

namespace {

/// C(n, k) in floating point (exact for the small k we use).
double binomial(std::size_t n, std::size_t k) {
  if (k > n) return 0.0;
  k = std::min(k, n - k);
  double r = 1.0;
  for (std::size_t i = 1; i <= k; ++i) {
    r *= static_cast<double>(n - k + i);
    r /= static_cast<double>(i);
  }
  return r;
}

/// Canonical depth-first emit: layer \p l next, \p stages stages opened so
/// far, components in kAllComponents order.
void emit_assignments(std::size_t l, std::size_t stages,
                      std::size_t stage_limit, const LayerChoices* allowed,
                      sim::Assignment& scratch,
                      std::vector<sim::Assignment>& out) {
  if (l == scratch.size()) {
    out.push_back(scratch);
    return;
  }
  static const std::vector<device::ComponentId> kEveryComponent(
      device::kAllComponents.begin(), device::kAllComponents.end());
  const std::vector<device::ComponentId>& choices =
      allowed != nullptr ? (*allowed)[l] : kEveryComponent;
  for (const device::ComponentId comp : choices) {
    std::size_t next_stages = 1;
    if (l > 0) {
      if (comp == scratch[l - 1]) {
        next_stages = stages;
      } else if (stages == stage_limit) {
        continue;  // opening one more stage would exceed the limit
      } else {
        next_stages = stages + 1;
      }
    }
    scratch[l] = comp;
    emit_assignments(l + 1, next_stages, stage_limit, allowed, scratch, out);
  }
}

}  // namespace

double count_assignments(std::size_t layers, std::size_t stage_limit) {
  OB_REQUIRE(layers >= 1, "count_assignments: zero layers");
  OB_REQUIRE(stage_limit >= 1, "count_assignments: bad stage limit");
  const auto k = static_cast<double>(device::kNumComponents);
  double total = 0.0;
  const std::size_t max_stages = std::min(stage_limit, layers);
  for (std::size_t s = 1; s <= max_stages; ++s) {
    total += binomial(layers - 1, s - 1) * k *
             std::pow(k - 1.0, static_cast<double>(s - 1));
  }
  return total;
}

double count_mappings(const models::ModelZoo& zoo, const workload::Workload& w,
                      std::size_t stage_limit) {
  double total = 1.0;
  for (const std::size_t layers : w.layer_counts(zoo)) {
    total *= count_assignments(layers, stage_limit);
  }
  return total;
}

std::vector<sim::Assignment> enumerate_assignments(std::size_t layers,
                                                   std::size_t stage_limit,
                                                   std::size_t max_count,
                                                   const LayerChoices* allowed) {
  const double count = count_assignments(layers, stage_limit);
  OB_REQUIRE(count <= static_cast<double>(max_count),
             "enumerate_assignments: space exceeds max_count");
  OB_REQUIRE(allowed == nullptr || allowed->size() == layers,
             "enumerate_assignments: allowed-list/layer-count mismatch");
  std::vector<sim::Assignment> out;
  out.reserve(static_cast<std::size_t>(count));
  sim::Assignment scratch(layers, device::ComponentId::kGpu);
  emit_assignments(0, 1, stage_limit, allowed, scratch, out);
  return out;
}

}  // namespace omniboost::sched
