// Mapping / segment-extraction semantics, including the pipeline-stage limit
// that defines the paper's losing states.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>

#include "sim/mapping.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace {

using namespace omniboost::sim;
using omniboost::device::ComponentId;

constexpr auto G = ComponentId::kGpu;
constexpr auto B = ComponentId::kBigCpu;
constexpr auto L = ComponentId::kLittleCpu;

TEST(Segments, SingleRun) {
  const auto segs = extract_segments({G, G, G});
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].first, 0u);
  EXPECT_EQ(segs[0].last, 2u);
  EXPECT_EQ(segs[0].comp, G);
}

TEST(Segments, AlternatingRuns) {
  const auto segs = extract_segments({G, B, B, L, G});
  ASSERT_EQ(segs.size(), 4u);
  EXPECT_EQ(segs[1].first, 1u);
  EXPECT_EQ(segs[1].last, 2u);
  EXPECT_EQ(segs[2].comp, L);
  EXPECT_EQ(segs[3].first, 4u);
}

TEST(Segments, EmptyAssignment) {
  EXPECT_TRUE(extract_segments({}).empty());
  EXPECT_EQ(num_stages({}), 0u);
}

TEST(Segments, NumStagesMatchesExtraction) {
  omniboost::util::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    Assignment a(1 + rng.below(40));
    for (auto& c : a) c = static_cast<ComponentId>(rng.below(3));
    EXPECT_EQ(num_stages(a), extract_segments(a).size());
  }
}

TEST(Mapping, AllOnPlacesEverythingOnOneComponent) {
  const Mapping m = Mapping::all_on({5, 3, 7}, B);
  EXPECT_EQ(m.num_dnns(), 3u);
  for (std::size_t d = 0; d < 3; ++d) {
    EXPECT_EQ(m.stages(d), 1u);
    for (ComponentId c : m.assignment(d)) EXPECT_EQ(c, B);
  }
  EXPECT_EQ(m.max_stages(), 1u);
}

TEST(Mapping, StageAccounting) {
  const Mapping m({{G, G, B}, {L, L, L}, {G, B, L, G}});
  EXPECT_EQ(m.stages(0), 2u);
  EXPECT_EQ(m.stages(1), 1u);
  EXPECT_EQ(m.stages(2), 4u);
  EXPECT_EQ(m.max_stages(), 4u);
  EXPECT_TRUE(m.within_stage_limit(4));
  EXPECT_FALSE(m.within_stage_limit(3));
}

TEST(Mapping, InvalidConstructionsThrow) {
  EXPECT_THROW(Mapping(std::vector<Assignment>{}), std::invalid_argument);
  EXPECT_THROW(Mapping({Assignment{}}), std::invalid_argument);
  EXPECT_THROW(Mapping::all_on({3, 0}, G), std::invalid_argument);
  const Mapping m({{G}});
  EXPECT_THROW(m.assignment(1), std::invalid_argument);
  EXPECT_THROW(m.stages(1), std::invalid_argument);
}

TEST(Mapping, EqualityIsStructural) {
  const Mapping a({{G, B}});
  const Mapping b({{G, B}});
  const Mapping c({{B, G}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(MappingHash, EqualMappingsHashEqual) {
  const Mapping a({{G, B, B}, {L, L}});
  const Mapping b({{G, B, B}, {L, L}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  // Hash survives independent construction paths.
  EXPECT_EQ(Mapping::all_on({4, 2}, G).hash(), Mapping::all_on({4, 2}, G).hash());
}

TEST(MappingHash, BoundaryStructureIsPartOfTheHash) {
  // Same flattened component sequence, different DNN boundaries.
  const Mapping one_dnn({{G, G}});
  const Mapping two_dnns({{G}, {G}});
  EXPECT_NE(one_dnn, two_dnns);
  EXPECT_NE(one_dnn.hash(), two_dnns.hash());
}

TEST(MappingHash, NoCollisionsAcrossEnumeratedMappings) {
  // Exhaustive single-DNN enumeration (3^8 assignments) plus the random
  // multi-DNN population the other tests draw from: every distinct mapping
  // must carry a distinct hash, and every repeat an identical one.
  std::map<std::uint64_t, Mapping> seen;
  const auto check = [&seen](const Mapping& m) {
    const auto [it, inserted] = seen.emplace(m.hash(), m);
    if (!inserted) {
      EXPECT_EQ(it->second, m) << "hash collision";
    }
  };

  constexpr std::size_t kLayers = 8;
  for (std::size_t code = 0; code < 6561; ++code) {  // 3^8
    Assignment a(kLayers);
    std::size_t c = code;
    for (std::size_t l = 0; l < kLayers; ++l, c /= 3)
      a[l] = static_cast<ComponentId>(c % 3);
    check(Mapping({a}));
  }
  EXPECT_EQ(seen.size(), 6561u);

  omniboost::util::Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    std::vector<Assignment> per_dnn;
    const std::size_t dnns = 1 + rng.below(4);
    for (std::size_t d = 0; d < dnns; ++d)
      per_dnn.push_back(omniboost::workload::random_assignment(
          rng, 1 + rng.below(30), 3));
    check(Mapping(std::move(per_dnn)));
  }
}

// Property: random assignments always respect the requested stage limit and
// have neighbouring segments on distinct components.
class RandomAssignmentProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomAssignmentProperty, StageLimitHolds) {
  omniboost::util::Rng rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    const std::size_t layers = 1 + rng.below(40);
    const std::size_t limit = 1 + rng.below(3);
    const Assignment a =
        omniboost::workload::random_assignment(rng, layers, limit);
    EXPECT_EQ(a.size(), layers);
    EXPECT_LE(num_stages(a), limit);
    const auto segs = extract_segments(a);
    for (std::size_t s = 1; s < segs.size(); ++s)
      EXPECT_NE(segs[s].comp, segs[s - 1].comp);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAssignmentProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(RandomAssignment, CoversAllStageCounts) {
  omniboost::util::Rng rng(11);
  std::set<std::size_t> seen;
  for (int i = 0; i < 300; ++i)
    seen.insert(
        num_stages(omniboost::workload::random_assignment(rng, 20, 3)));
  EXPECT_EQ(seen, (std::set<std::size_t>{1, 2, 3}));
}

TEST(TwoWaySplit, CutSemantics) {
  omniboost::util::Rng rng(13);
  bool saw_all_first = false, saw_all_second = false, saw_split = false;
  for (int i = 0; i < 200; ++i) {
    const Assignment a =
        omniboost::workload::random_two_way_split(rng, 10, G, B);
    const std::size_t stages = num_stages(a);
    EXPECT_LE(stages, 2u);
    if (stages == 1) {
      (a[0] == G ? saw_all_first : saw_all_second) = true;
    } else {
      saw_split = true;
      EXPECT_EQ(a.front(), G);  // prefix on `first`
      EXPECT_EQ(a.back(), B);   // suffix on `second`
    }
  }
  EXPECT_TRUE(saw_all_first);
  EXPECT_TRUE(saw_all_second);
  EXPECT_TRUE(saw_split);
}

}  // namespace
