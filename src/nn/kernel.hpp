#pragma once
/// \file kernel.hpp
/// Kernel selection for the compute-heavy layers (Conv2d, Linear).
///
/// Two interchangeable lowerings exist for each layer:
///  * kReference — the original naive nested loops. Bit-frozen: this path
///    is what the paper-reproduction campaigns ran, so it must never change
///    numerically ({kernel = reference} reproduces the seed search
///    bit-for-bit; pinned by tests/nn_kernel_test.cpp).
///  * kGemm — im2col + cache-blocked GEMM (tensor/gemm.hpp). Faster, and
///    deterministic run-to-run, but its fixed summation order differs from
///    the reference, so outputs match within float rounding (<= 1e-6 on the
///    estimator's value ranges), not bitwise.
///
/// Layers capture the process-wide default at construction time
/// (set_default_kernel) and can be switched per instance afterwards via
/// Module::set_kernel, which containers propagate recursively.

#include <string>

namespace omniboost::nn {

enum class KernelKind {
  kReference,  ///< naive nested loops (the paper path, bit-frozen)
  kGemm,       ///< im2col + blocked GEMM lowering (default)
};

/// Process-wide kernel default picked up by layer constructors. Starts as
/// kGemm. Not thread-safe against concurrent set_default_kernel — set it
/// once at startup (the CLI's --kernel flag), before building networks.
KernelKind default_kernel();
void set_default_kernel(KernelKind kind);

/// "reference" / "gemm".
const char* kernel_name(KernelKind kind);

/// Parses "reference" / "gemm"; throws std::invalid_argument otherwise.
KernelKind parse_kernel_name(const std::string& name);

}  // namespace omniboost::nn
