#include "nn/loss.hpp"

#include <cmath>

#include "util/require.hpp"

namespace omniboost::nn {

LossResult L1Loss::compute(const tensor::Tensor& pred,
                           const tensor::Tensor& target) const {
  OB_REQUIRE(pred.shape() == target.shape(), "L1Loss: shape mismatch");
  OB_REQUIRE(!pred.empty(), "L1Loss: empty input");
  LossResult r;
  r.grad = tensor::Tensor(pred.shape());
  const float inv = 1.0f / static_cast<float>(pred.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const float d = pred[i] - target[i];
    acc += std::fabs(d);
    r.grad[i] = (d > 0.0f ? 1.0f : (d < 0.0f ? -1.0f : 0.0f)) * inv;
  }
  r.value = static_cast<float>(acc * inv);
  return r;
}

LossResult MSELoss::compute(const tensor::Tensor& pred,
                            const tensor::Tensor& target) const {
  OB_REQUIRE(pred.shape() == target.shape(), "MSELoss: shape mismatch");
  OB_REQUIRE(!pred.empty(), "MSELoss: empty input");
  LossResult r;
  r.grad = tensor::Tensor(pred.shape());
  const float inv = 1.0f / static_cast<float>(pred.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const float d = pred[i] - target[i];
    acc += static_cast<double>(d) * d;
    r.grad[i] = 2.0f * d * inv;
  }
  r.value = static_cast<float>(acc * inv);
  return r;
}

HuberLoss::HuberLoss(float delta) : delta_(delta) {
  OB_REQUIRE(delta > 0.0f, "HuberLoss: delta must be positive");
}

LossResult HuberLoss::compute(const tensor::Tensor& pred,
                              const tensor::Tensor& target) const {
  OB_REQUIRE(pred.shape() == target.shape(), "HuberLoss: shape mismatch");
  OB_REQUIRE(!pred.empty(), "HuberLoss: empty input");
  LossResult r;
  r.grad = tensor::Tensor(pred.shape());
  const float inv = 1.0f / static_cast<float>(pred.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const float d = pred[i] - target[i];
    const float ad = std::fabs(d);
    if (ad <= delta_) {
      acc += 0.5 * static_cast<double>(d) * d;
      r.grad[i] = d * inv;
    } else {
      acc += static_cast<double>(delta_) * (ad - 0.5 * delta_);
      r.grad[i] = (d > 0.0f ? delta_ : -delta_) * inv;
    }
  }
  r.value = static_cast<float>(acc * inv);
  return r;
}

}  // namespace omniboost::nn
