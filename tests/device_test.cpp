// The HiKey970 device model: component identities and calibration sanity.

#include <gtest/gtest.h>

#include "device/device.hpp"

namespace {

using namespace omniboost::device;

TEST(Device, ComponentNames) {
  EXPECT_EQ(component_name(ComponentId::kGpu), "GPU");
  EXPECT_EQ(component_name(ComponentId::kBigCpu), "big");
  EXPECT_EQ(component_name(ComponentId::kLittleCpu), "LITTLE");
  EXPECT_THROW(component_name(static_cast<ComponentId>(9)),
               std::invalid_argument);
}

TEST(Device, ThreeComponents) {
  EXPECT_EQ(kNumComponents, 3u);
  EXPECT_EQ(component_index(ComponentId::kGpu), 0u);
  EXPECT_EQ(component_index(ComponentId::kLittleCpu), 2u);
}

TEST(Hikey970, PerformanceOrdering) {
  const DeviceSpec d = make_hikey970();
  const auto effective = [&](ComponentId c) {
    const ComponentSpec& s = d.component(c);
    return s.peak_gflops * s.efficiency.gemm;
  };
  // GPU > big CPU > LITTLE CPU on GEMM-heavy work.
  EXPECT_GT(effective(ComponentId::kGpu), effective(ComponentId::kBigCpu));
  EXPECT_GT(effective(ComponentId::kBigCpu),
            effective(ComponentId::kLittleCpu));
}

TEST(Hikey970, DepthwiseIsRelativelyCpuFriendly) {
  // The depthwise/GEMM efficiency ratio must be better on the CPUs than on
  // the GPU — the well-documented Mali depthwise weakness.
  const DeviceSpec d = make_hikey970();
  const auto ratio = [&](ComponentId c) {
    const ComponentSpec& s = d.component(c);
    return s.efficiency.depthwise / s.efficiency.gemm;
  };
  EXPECT_LT(ratio(ComponentId::kGpu), ratio(ComponentId::kBigCpu));
  EXPECT_LT(ratio(ComponentId::kGpu), ratio(ComponentId::kLittleCpu));
}

TEST(Hikey970, GpuHasHighestDispatchOverhead) {
  const DeviceSpec d = make_hikey970();
  EXPECT_GT(d.component(ComponentId::kGpu).kernel_overhead_s,
            d.component(ComponentId::kBigCpu).kernel_overhead_s);
  EXPECT_GT(d.component(ComponentId::kGpu).kernel_overhead_s,
            d.component(ComponentId::kLittleCpu).kernel_overhead_s);
}

TEST(Hikey970, SharedResourcesConfigured) {
  const DeviceSpec d = make_hikey970();
  EXPECT_GT(d.dram_bw_gbps, 0.0);
  EXPECT_GT(d.memory_budget_bytes, 1e9);
  EXPECT_GT(d.per_stream_overhead_bytes, 0.0);
  EXPECT_GT(d.per_inference_overhead_s, 0.0);
  EXPECT_GT(d.link.bandwidth_gbps, 0.0);
  EXPECT_GT(d.link.latency_s, 0.0);
}

TEST(Hikey970, ContentionParametersPositive) {
  const DeviceSpec d = make_hikey970();
  for (ComponentId c : kAllComponents) {
    EXPECT_GT(d.component(c).working_set_budget_bytes, 0.0);
    EXPECT_GE(d.component(c).contention_exponent, 0.5);
  }
}

TEST(KernelEfficiency, EveryKindMapsToAFraction) {
  const DeviceSpec d = make_hikey970();
  using omniboost::models::KernelKind;
  for (ComponentId c : kAllComponents) {
    for (auto kind :
         {KernelKind::kIm2col, KernelKind::kGemm, KernelKind::kDirectConv,
          KernelKind::kDepthwiseConv, KernelKind::kBias,
          KernelKind::kActivation, KernelKind::kPool, KernelKind::kNorm,
          KernelKind::kEltwiseAdd, KernelKind::kConcat,
          KernelKind::kSoftmax}) {
      const double e = d.component(c).kind_efficiency(kind);
      EXPECT_GT(e, 0.0);
      EXPECT_LE(e, 1.0);
    }
  }
}

}  // namespace
