/// \file simd.cpp
/// Runtime dispatch for the SIMD GEMM path. Deliberately compiled WITHOUT
/// ISA flags (unlike gemm_simd.cpp): every instruction here must run on the
/// portable baseline, because this is the code that decides — via cpuid —
/// whether the ISA-flagged kernels may be entered at all.

#include "tensor/simd.hpp"

#include <algorithm>

#include "tensor/gemm.hpp"
#include "util/require.hpp"

namespace omniboost::tensor {

namespace {

bool host_supports_simd() {
  if (!detail::simd_kernels_compiled()) return false;
#if defined(__x86_64__) || defined(__i386__)
#if defined(__GNUC__) || defined(__clang__)
  // The kernels were compiled for AVX2+FMA; only enter them when the
  // running CPU actually reports both (one binary, any x86-64 host).
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;  // no portable cpuid on this compiler — stay scalar
#endif
#else
  // aarch64: NEON is part of the baseline ISA, so compiled-in == runnable.
  return true;
#endif
}

}  // namespace

bool simd_supported() {
  static const bool supported = host_supports_simd();
  return supported;
}

const char* simd_isa() {
  return simd_supported() ? detail::simd_kernel_isa() : "none";
}

void gemm_simd(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
               std::size_t k, float alpha, const float* a, std::size_t lda,
               const float* b, std::size_t ldb, float beta, float* c,
               std::size_t ldc) {
  if (!simd_supported()) {
    // Silent degradation to the blocked scalar path — identical contract,
    // so kSimd layers run correctly on any host. Callers that want to
    // surface the downgrade check simd_supported() themselves
    // (nn::kernel_resolution_note).
    gemm(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
    return;
  }
  OB_REQUIRE(a != nullptr && b != nullptr && c != nullptr,
             "gemm_simd: null operand");
  OB_REQUIRE(lda >= (trans_a ? m : k), "gemm_simd: lda too small");
  OB_REQUIRE(ldb >= (trans_b ? k : n), "gemm_simd: ldb too small");
  OB_REQUIRE(ldc >= n, "gemm_simd: ldc too small");
  if (m == 0 || n == 0) return;
  if (k == 0 || alpha == 0.0f) {
    // Pure beta-scaling of C (and beta == 0 must overwrite, not multiply).
    for (std::size_t i = 0; i < m; ++i) {
      float* crow = c + i * ldc;
      if (beta == 0.0f) {
        std::fill(crow, crow + n, 0.0f);
      } else if (beta != 1.0f) {
        for (std::size_t j = 0; j < n; ++j) crow[j] *= beta;
      }
    }
    return;
  }
  detail::gemm_simd_kernel(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb,
                           beta, c, ldc);
}

}  // namespace omniboost::tensor
