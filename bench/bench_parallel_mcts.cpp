/// \file bench_parallel_mcts.cpp
/// Extension E1: root-parallel MCTS. The paper reports ~30 s decisions from
/// 500 sequential estimator queries (§V-B) and notes the budget is the
/// latency/quality dial; root parallelization is the orthogonal dial — split
/// the same budget over N independent trees (private estimator clones) and
/// the wall-clock drops by ~N while the merged decision quality holds.

#include <thread>

#include "bench_common.hpp"

using namespace omniboost;

int main() {
  constexpr std::uint64_t kSeed = 47;
  bench::banner("Extension E1 — root-parallel MCTS",
                "Section V-B (decision latency) + DESIGN.md extensions",
                kSeed);

  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  std::printf("host parallelism: %u hardware thread(s)\n", cores);

  bench::Context ctx;
  std::printf("training the throughput estimator (calibrated campaign, see EXPERIMENTS.md)...\n\n");
  ctx.train_estimator();

  util::Rng rng(kSeed);
  std::vector<workload::Workload> mixes;
  const std::size_t n_mixes = bench::scaled(3, 1);
  for (std::size_t i = 0; i < n_mixes; ++i)
    mixes.push_back(workload::random_mix(rng, 4));
  const std::size_t budget = bench::scaled(500, 40);

  // Two orthogonal latency dials at one fixed rollout budget: root-parallel
  // workers (row pairs) and the batched+memoized evaluate path (the
  // batch/cached-vs-scalar/uncached column pairs). "evals" counts CNN
  // forward passes actually executed and "hits" the rollouts served from
  // the per-worker evaluation memo, both summed over the mixes
  // (evals + hits == budget x mixes).
  util::Table t({"workers", "batch", "cache", "avg decision (ms)",
                 "avg normalized T", "evals", "hits"});
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    for (const bool batched : {false, true}) {
      core::OmniBoostConfig cfg;
      cfg.mcts.budget = budget;
      cfg.mcts.seed = kSeed;
      cfg.workers = workers;
      cfg.batch_size = batched ? 16 : 1;
      cfg.cache = batched;
      core::OmniBoostScheduler omni(ctx.zoo(), ctx.embedding(),
                                    ctx.estimator(), cfg);
      double latency = 0.0, quality = 0.0;
      std::size_t evals = 0, hits = 0;
      for (const auto& w : mixes) {
        const auto r = omni.schedule(w);
        latency += r.decision_seconds;
        evals += r.evaluations;
        hits += r.cache_hits;
        const double tb = ctx.measure(
            w, sim::Mapping::all_on(w.layer_counts(ctx.zoo()),
                                    device::ComponentId::kGpu));
        quality += ctx.measure(w, r.mapping) / tb;
      }
      t.add_row(
          {std::to_string(workers), std::to_string(cfg.batch_size),
           cfg.cache ? "on" : "off",
           util::fmt(1e3 * latency / static_cast<double>(mixes.size()), 1),
           util::fmt(quality / static_cast<double>(mixes.size()), 2),
           std::to_string(evals), std::to_string(hits)});
    }
  }
  bench::report("parallel_mcts", t);

  if (cores > 1) {
    std::printf("\npaper check: latency shrinks roughly with the worker "
                "count (up to %u cores) at a fixed 500-query budget while "
                "normalized throughput stays in the same band\n", cores);
  } else {
    std::printf("\npaper check: this host exposes a single hardware thread, "
                "so workers time-share and latency stays flat; the run still "
                "verifies determinism and that quality holds under the "
                "budget split — on a multi-core deployment the same split "
                "divides the ~30 s decision latency by the worker count\n");
  }
  return 0;
}
