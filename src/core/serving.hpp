#pragma once
/// \file serving.hpp
/// The dynamic serving runtime: replays a workload::Scenario (timestamped
/// model arrivals/departures) against any core::IScheduler, invoking a
/// contextual reschedule() on every mix change, scoring each epoch's mapping
/// on the DES board simulator, and accumulating a ServingReport — per-epoch
/// throughput, decision latency, and *mapping churn* (the fraction of
/// surviving layers whose component assignment moved). This is the layer
/// that turns the paper's one-shot decision into a serving loop; see
/// docs/ARCHITECTURE.md "Serving runtime".
///
/// Two entry points share one epoch engine:
///  - ServingRuntime::run(scheduler, scenario) — the batch replay loop;
///  - ServingSession — the same loop opened up event-by-event, so a driver
///    that interleaves several boards (core::Cluster) can feed each board
///    its own event stream through the *identical* code path. A run() call
///    is exactly "construct a session, apply every event, finish()", so the
///    two are bit-identical by construction (pinned by tests/cluster_test).

#include <cstddef>
#include <string>
#include <vector>

#include "core/scheduler.hpp"
#include "sim/des.hpp"
#include "sim/migration.hpp"
#include "workload/scenario.hpp"

namespace omniboost::core {

/// Runtime controls.
struct ServingConfig {
  /// Passed through as ScheduleContext::warm_start on every incremental
  /// decision: false forces cold full-budget decisions (the churn/latency
  /// comparison baseline), true lets warm-started schedulers shrink their
  /// budget and seed from the previous mapping.
  bool warm_start = true;
  /// Churn-cost model (sim/migration.hpp). When enabled, every incremental
  /// epoch's measurement charges each surviving stream its one-off
  /// migration stall (delayed DES start), and the same model is handed to
  /// the scheduler through ScheduleContext::migration so SLO replays see
  /// identical stalls. Disabled by default: measurements are bit-identical
  /// to the free-churn runtime (pinned by tests/serving_test.cpp).
  sim::MigrationCostConfig migration;
};

/// One epoch = the serving interval that follows one scenario event.
struct EpochReport {
  double time_s = 0.0;       ///< event timestamp
  std::string event;         ///< e.g. "arrive MobileNet"
  std::string mix;           ///< Workload::describe() of the epoch's mix
  std::size_t mix_size = 0;  ///< 0 = idle epoch (no decision was made)
  ScheduleResult decision;   ///< mapping + latency + evaluator accounting
  /// DES-measured average throughput T of the decided mapping (0 for idle
  /// or infeasible epochs).
  double measured_throughput = 0.0;
  bool feasible = true;
  /// Stability accounting over the streams present in BOTH the previous and
  /// this epoch's mix: churn = moved_layers / surviving_layers (0 when
  /// nothing survived, i.e. the first epoch or after an idle one).
  std::size_t surviving_layers = 0;
  std::size_t moved_layers = 0;
  double churn = 0.0;
  /// Latency-SLO accounting. slo_s holds the per-stream SLOs in effect
  /// (seconds, 0 = none, aligned with the epoch's mix); latency_p99_s the
  /// measured p99 frame latency per stream. Both are populated only when at
  /// least one stream of the epoch carries an SLO (slo_streams > 0) — the
  /// SLO-free path never runs the traced simulator.
  std::vector<double> slo_s;
  std::vector<double> latency_p99_s;
  std::size_t slo_streams = 0;     ///< streams with an SLO this epoch
  std::size_t slo_violations = 0;  ///< of those, streams that broke it
  /// Migration-stall accounting (all zeros when ServingConfig::migration is
  /// disabled, when nothing moved, or on cold-start epochs): the one-off
  /// cost charged to this epoch's measurement. Intra-board only — the
  /// cross-board transfer stall a Cluster charges a migrated-in stream is
  /// accounted at fleet level (ClusterReport), not here.
  std::size_t migrated_segments = 0;
  double migration_weight_bytes = 0.0;
  double migration_stall_s = 0.0;  ///< summed over streams
};

/// The whole serving session, plus the aggregates the benches compare.
struct ServingReport {
  std::vector<EpochReport> epochs;

  std::size_t decisions = 0;          ///< epochs that scheduled (non-idle)
  double total_decision_seconds = 0.0;
  /// Mean decision latency over epochs 2..N (the incremental decisions a
  /// warm-started scheduler accelerates; the first decision is always cold).
  double mean_incremental_decision_seconds = 0.0;
  double mean_throughput = 0.0;       ///< over non-idle epochs
  double mean_churn = 0.0;            ///< over epochs with surviving layers
  std::size_t total_evaluations = 0;
  std::size_t total_cache_hits = 0;
  /// DES candidate replays across all SLO-aware warm decisions: executed
  /// replays vs. replay-memo hits (the ScheduleResult::des_replays /
  /// replay_hits split summed over epochs). Both zero without SLOs.
  std::size_t total_des_replays = 0;
  std::size_t total_replay_hits = 0;
  /// SLO bookkeeping, in stream-epochs: a stream serving under an SLO for
  /// three epochs contributes three to total_slo_streams (and up to three
  /// violations). 0/0 when the scenario carries no SLOs.
  std::size_t total_slo_streams = 0;
  std::size_t total_slo_violations = 0;
  /// Aggregate one-off migration cost charged across the session (zero with
  /// the churn-cost model disabled).
  std::size_t total_migrated_segments = 0;
  double total_migration_stall_s = 0.0;
};

/// Layer-level stability of a mix change: compares, for every surviving
/// stream d (carried_from[d] >= 0), the new assignment against the previous
/// one, counting layers whose component moved. Returns moved / surviving
/// (0.0 when no layers survived). Exposed for tests and bench drivers.
double mapping_churn(const sim::Mapping& previous,
                     const std::vector<std::ptrdiff_t>& carried_from,
                     const sim::Mapping& next,
                     std::size_t* surviving_layers = nullptr,
                     std::size_t* moved_layers = nullptr);

/// One board's serving loop opened up event-by-event.
///
/// Holds exactly the state ServingRuntime::run keeps between events (the
/// present mix with SLOs, the previous workload/mapping, the running
/// aggregate sums) and applies one ScenarioEvent per call. Events must be
/// legal for the session's current state (arrive only while absent, depart
/// only while present, non-decreasing times) — a Scenario guarantees this
/// for its own stream; a Cluster guarantees it per board by construction.
class ServingSession {
 public:
  /// \param zoo    dataset networks backing every mix
  /// \param board  DES simulator standing in for the physical board. Held by
  ///               reference — must outlive the session.
  ServingSession(const models::ModelZoo& zoo, const sim::DesSimulator& board,
                 ServingConfig config = {});

  /// Applies one event and serves the epoch that follows it: updates the
  /// mix, asks \p scheduler for a mapping (schedule() on the first or
  /// post-idle decision, reschedule() with a full ScheduleContext
  /// otherwise), measures it on the board, and returns the epoch's report
  /// (valid until the next apply()).
  ///
  /// \param arrival_stall_s one-off extra DES start delay charged to the
  ///   arriving stream of an arrive event (cross-board weight transfer when
  ///   a Cluster migrates a stream in). 0.0 — the default and the only value
  ///   ServingRuntime::run ever passes — leaves the measurement bit-identical
  ///   to the pre-session runtime. Must be 0.0 for depart events.
  const EpochReport& apply(IScheduler& scheduler,
                           const workload::ScenarioEvent& event,
                           double arrival_stall_s = 0.0);

  /// Re-decides and re-measures the CURRENT mix without changing it — the
  /// fault-reaction hook core::Cluster uses when a board's speed changes
  /// (throttle/recover) under live streams. Runs the identical epoch engine
  /// as apply(): a reschedule() with identity carried_from (every stream
  /// survives in place) against the previous mapping, then a fresh DES
  /// measurement at the board's current throttle. \p label becomes the
  /// epoch's event string. Only legal while not idle().
  const EpochReport& refresh(IScheduler& scheduler, double time_s,
                             const std::string& label);

  /// Forcibly removes every resident stream without serving an epoch — the
  /// board-failure hook. The next decision (if the board returns to
  /// service) starts cold, exactly like the post-idle path: a rebooted
  /// board holds no weights, so nothing can be warm. Callers wanting the
  /// evicted streams (to fail them over) must snapshot present() /
  /// present_slo_s() first.
  void evict_all();

  /// Finalizes the aggregate means and returns the report for everything
  /// applied so far. The session stays usable (finish() is a snapshot).
  ServingReport finish() const;

  /// The streams currently on the board (arrival order), with their SLOs
  /// (seconds, 0 = none) index-aligned.
  const std::vector<models::ModelId>& present() const { return present_; }
  const std::vector<double>& present_slo_s() const { return present_slo_s_; }
  bool idle() const { return present_.empty(); }
  std::size_t epochs_applied() const { return report_.epochs.size(); }
  /// DES throughput measured by the most recent non-idle epoch (0 before
  /// the first decision or right after an idle epoch) — placement policies
  /// read this as the board's live load signal.
  double last_measured_throughput() const { return last_throughput_; }
  /// The mapping the most recent non-idle epoch installed (valid only while
  /// has_previous()); false before the first decision and right after an
  /// idle epoch or evict_all(). The serving daemon's background re-search
  /// seeds its refinement from exactly this mapping.
  const sim::Mapping& previous_mapping() const { return prev_mapping_; }
  bool has_previous() const { return have_prev_; }
  const sim::DesSimulator& board() const { return *board_; }
  const ServingConfig& config() const { return config_; }
  const sim::MigrationCostModel& migration_model() const { return migration_; }

 private:
  /// Shared epoch engine: decides (schedule or reschedule), measures, and
  /// accumulates one non-idle epoch for the current mix. \p ep arrives with
  /// time_s/event prefilled; apply() and refresh() both end here, so the two
  /// stay bit-identical on the paths they share.
  const EpochReport& serve_epoch(IScheduler& scheduler, EpochReport ep,
                                 double arrival_stall_s);

  const models::ModelZoo* zoo_;
  const sim::DesSimulator* board_;
  ServingConfig config_;
  sim::MigrationCostModel migration_;

  // Serving state: the mix currently on the board (with each stream's SLO,
  // index-aligned) and its mapping.
  std::vector<models::ModelId> present_;
  std::vector<double> present_slo_s_;
  workload::Workload prev_w_;
  sim::Mapping prev_mapping_;
  bool have_prev_ = false;

  // Running aggregates finish() turns into means.
  std::size_t incremental_ = 0;
  double incremental_seconds_ = 0.0;
  double throughput_sum_ = 0.0;
  std::size_t churn_epochs_ = 0;
  double churn_sum_ = 0.0;
  double last_throughput_ = 0.0;

  ServingReport report_;
};

/// Event loop that serves a Scenario with one scheduler.
///
/// Epoch semantics: after each event the runtime rebuilds the concurrent
/// mix, asks the scheduler for a mapping — schedule() for the first decision
/// (or after an idle epoch), reschedule() with a populated ScheduleContext
/// otherwise — and measures the mapping on the board simulator. A
/// single-event scenario therefore reproduces IScheduler::schedule()
/// bit-for-bit for every scheduler, warm or cold (pinned by
/// tests/serving_test.cpp).
class ServingRuntime {
 public:
  /// \param zoo    dataset networks backing every mix
  /// \param board  DES simulator standing in for the physical board
  ServingRuntime(const models::ModelZoo& zoo, const sim::DesSimulator& board,
                 ServingConfig config = {});

  ServingReport run(IScheduler& scheduler,
                    const workload::Scenario& scenario) const;

  const ServingConfig& config() const { return config_; }
  /// The churn-cost model built from ServingConfig::migration (exposed for
  /// tests and drivers that want to pre-assess a transition).
  const sim::MigrationCostModel& migration_model() const { return migration_; }

 private:
  const models::ModelZoo* zoo_;
  const sim::DesSimulator* board_;
  ServingConfig config_;
  sim::MigrationCostModel migration_;
};

}  // namespace omniboost::core
