#include "core/embedding.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace omniboost::core {

namespace {

sim::NetworkList zoo_as_list(const models::ModelZoo& zoo) {
  sim::NetworkList nets;
  nets.reserve(zoo.num_models());
  for (const models::NetworkDesc& net : zoo.networks()) nets.push_back(&net);
  return nets;
}

}  // namespace

EmbeddingTensor::EmbeddingTensor(const models::ModelZoo& zoo,
                                 const device::CostModel& cost,
                                 double log_scale_s)
    : EmbeddingTensor(zoo_as_list(zoo), cost, log_scale_s) {}

EmbeddingTensor::EmbeddingTensor(const sim::NetworkList& nets,
                                 const device::CostModel& cost,
                                 double log_scale_s)
    : models_dim_(nets.size()) {
  OB_REQUIRE(!nets.empty(), "EmbeddingTensor: empty catalog");
  OB_REQUIRE(log_scale_s > 0.0, "EmbeddingTensor: bad log scale");
  for (const auto* net : nets) {
    OB_REQUIRE(net != nullptr, "EmbeddingTensor: null network");
    OB_REQUIRE(net->num_layers() > 0, "EmbeddingTensor: network with no layers");
    layers_dim_ = std::max(layers_dim_, net->num_layers());
  }

  // Raw kernel-based profile (Eq. 1-3), zero-padded over the layer axis.
  u_ = tensor::Tensor({device::kNumComponents, models_dim_, layers_dim_});
  double max_cell = 0.0;
  for (std::size_t c = 0; c < device::kNumComponents; ++c) {
    const auto comp = static_cast<device::ComponentId>(c);
    for (std::size_t m = 0; m < models_dim_; ++m) {
      const models::NetworkDesc& net = *nets[m];
      for (std::size_t l = 0; l < net.num_layers(); ++l) {
        const double t = cost.layer_time(net.layers[l], comp);
        max_time_s_ = std::max(max_time_s_, t);
        const double cell = std::log1p(t / log_scale_s);
        max_cell = std::max(max_cell, cell);
        u_.at({c, m, l}) = static_cast<float>(cell);
      }
    }
  }
  OB_ENSURE(max_cell > 0.0, "EmbeddingTensor: degenerate profile");
  u_ *= static_cast<float>(1.0 / max_cell);
}

tensor::Tensor EmbeddingTensor::masked_input(
    const workload::Workload& w, const sim::Mapping& mapping) const {
  std::vector<std::size_t> indices;
  indices.reserve(w.size());
  for (const models::ModelId id : w.mix)
    indices.push_back(models::model_index(id));
  return masked_input(indices, mapping);
}

tensor::Tensor EmbeddingTensor::masked_input(
    const std::vector<std::size_t>& model_indices,
    const sim::Mapping& mapping) const {
  OB_REQUIRE(model_indices.size() == mapping.num_dnns(),
             "masked_input: workload/mapping arity mismatch");
  tensor::Tensor input({device::kNumComponents, models_dim_, layers_dim_});
  std::vector<bool> seen(models_dim_, false);
  for (std::size_t i = 0; i < model_indices.size(); ++i) {
    const std::size_t m = model_indices[i];
    OB_REQUIRE(m < models_dim_, "masked_input: model outside the dataset");
    OB_REQUIRE(!seen[m],
               "masked_input: duplicate model in mix — the distributed "
               "embedding reserves one column per dataset model");
    seen[m] = true;
    const sim::Assignment& a = mapping.assignment(i);
    OB_REQUIRE(a.size() <= layers_dim_,
               "masked_input: assignment exceeds layer capacity");
    for (std::size_t l = 0; l < a.size(); ++l) {
      const std::size_t c = device::component_index(a[l]);
      input.at({c, m, l}) = u_.at({c, m, l});
    }
  }
  return input;
}

}  // namespace omniboost::core
