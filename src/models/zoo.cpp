#include "models/zoo.hpp"

#include <algorithm>
#include <cctype>

#include "util/require.hpp"

namespace omniboost::models {

std::string_view model_name(ModelId id) {
  switch (id) {
    case ModelId::kAlexNet: return "AlexNet";
    case ModelId::kMobileNet: return "MobileNet";
    case ModelId::kResNet34: return "ResNet-34";
    case ModelId::kResNet50: return "ResNet-50";
    case ModelId::kResNet101: return "ResNet-101";
    case ModelId::kVgg13: return "VGG-13";
    case ModelId::kVgg16: return "VGG-16";
    case ModelId::kVgg19: return "VGG-19";
    case ModelId::kSqueezeNet: return "SqueezeNet";
    case ModelId::kInceptionV3: return "Inception-v3";
    case ModelId::kInceptionV4: return "Inception-v4";
  }
  throw std::invalid_argument("model_name: unknown ModelId");
}

bool parse_model_name(std::string_view name, ModelId& out) {
  // Canonical form: lower-case, dashes/underscores/dots stripped.
  const auto canon = [](std::string_view v) {
    std::string c;
    c.reserve(v.size());
    for (const char ch : v) {
      if (ch == '-' || ch == '_' || ch == '.' || ch == ' ') continue;
      c += static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
    }
    return c;
  };
  const std::string wanted = canon(name);
  for (const ModelId id : kAllModels) {
    if (canon(model_name(id)) == wanted) {
      out = id;
      return true;
    }
  }
  return false;
}

NetworkDesc make_model(ModelId id) {
  switch (id) {
    case ModelId::kAlexNet: return make_alexnet();
    case ModelId::kMobileNet: return make_mobilenet();
    case ModelId::kResNet34: return make_resnet34();
    case ModelId::kResNet50: return make_resnet50();
    case ModelId::kResNet101: return make_resnet101();
    case ModelId::kVgg13: return make_vgg13();
    case ModelId::kVgg16: return make_vgg16();
    case ModelId::kVgg19: return make_vgg19();
    case ModelId::kSqueezeNet: return make_squeezenet();
    case ModelId::kInceptionV3: return make_inception_v3();
    case ModelId::kInceptionV4: return make_inception_v4();
  }
  throw std::invalid_argument("make_model: unknown ModelId");
}

ModelZoo::ModelZoo() {
  nets_.reserve(kNumModels);
  for (ModelId id : kAllModels) {
    nets_.push_back(make_model(id));
    max_layers_ = std::max(max_layers_, nets_.back().num_layers());
  }
}

const NetworkDesc& ModelZoo::network(ModelId id) const {
  const std::size_t idx = model_index(id);
  OB_REQUIRE(idx < nets_.size(), "ModelZoo::network: id out of range");
  return nets_[idx];
}

}  // namespace omniboost::models
