#pragma once
/// \file args.hpp
/// Declarative command-line parsing for the tools and examples:
/// `--name value` options with typed accessors, boolean `--flag`s, and
/// generated --help text. Throws std::invalid_argument on user errors so a
/// tool's main() turns them into exit code 2 with a usage message.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace omniboost::util {

/// One registered option's metadata.
struct ArgSpec {
  std::string name;         ///< long name without the leading dashes
  std::string help;
  std::string default_str;  ///< shown in --help ("" = required/none)
  bool is_flag = false;
};

class ArgParser {
 public:
  /// \param program  argv[0]-style name for usage text
  /// \param summary  one-line description shown by --help
  ArgParser(std::string program, std::string summary);

  /// Registers a valued option (--name <value>).
  ArgParser& option(const std::string& name, const std::string& help,
                    const std::string& default_value = "");

  /// Registers a boolean flag (--name).
  ArgParser& flag(const std::string& name, const std::string& help);

  /// Parses argv. Returns false if --help was requested (help text already
  /// printed to stdout); throws std::invalid_argument on unknown or
  /// malformed arguments.
  bool parse(int argc, const char* const* argv);

  /// Accessors. get() falls back to the declared default; missing required
  /// values throw.
  bool has(const std::string& name) const;
  std::string get(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_flag(const std::string& name) const;

  /// Generated help text.
  std::string help_text() const;

 private:
  /// Declared spec lookup (logic_error when the tool forgot to declare it).
  const ArgSpec& spec(const std::string& name) const;
  /// User-facing lookup (invalid_argument for unknown --options).
  const ArgSpec& spec_or_throw(const std::string& name) const;

  std::string program_, summary_;
  std::vector<ArgSpec> specs_;
  std::vector<std::pair<std::string, std::string>> values_;
};

}  // namespace omniboost::util
