#include "sim/migration.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace omniboost::sim {

MigrationCostModel::MigrationCostModel(const device::DeviceSpec& device,
                                       MigrationCostConfig config)
    : device_(device), config_(config) {
  OB_REQUIRE(config_.upload_gbps >= 0.0 && std::isfinite(config_.upload_gbps),
             "MigrationCostModel: upload_gbps must be finite and >= 0");
  OB_REQUIRE(config_.per_segment_overhead_s >= 0.0 &&
                 std::isfinite(config_.per_segment_overhead_s),
             "MigrationCostModel: per_segment_overhead_s must be >= 0");
  OB_REQUIRE(config_.scale >= 0.0 && std::isfinite(config_.scale),
             "MigrationCostModel: scale must be finite and >= 0");
  // Only an ENABLED model needs upload bandwidth: the serving runtime
  // constructs a (usually disabled) model for every board unconditionally,
  // and a zero-bandwidth link is a legal device profile as long as nobody
  // charges migrations on it.
  OB_REQUIRE(!config_.enabled || config_.upload_gbps > 0.0 ||
                 device_.link.bandwidth_gbps > 0.0,
             "MigrationCostModel: enabled but no usable upload bandwidth "
             "(upload_gbps and the device link are both zero)");
}

MigrationStats MigrationCostModel::assess(
    const NetworkList& nets, const Mapping& previous,
    const std::vector<std::ptrdiff_t>& carried_from,
    const Mapping& next) const {
  OB_REQUIRE(nets.size() == next.num_dnns(),
             "MigrationCostModel::assess: workload/mapping size mismatch");
  OB_REQUIRE(carried_from.size() == next.num_dnns(),
             "MigrationCostModel::assess: carried_from arity mismatch");

  const double upload_bps =
      (config_.upload_gbps > 0.0 ? config_.upload_gbps
                                 : device_.link.bandwidth_gbps) *
      1e9;
  // Diagnosed here (not only at construction) because a disabled model may
  // legally live on a zero-bandwidth board — but assessing one would emit
  // infinite stalls.
  OB_REQUIRE(upload_bps > 0.0,
             "MigrationCostModel::assess: zero upload bandwidth");

  MigrationStats stats;
  stats.stream_delay_s.assign(next.num_dnns(), 0.0);
  for (std::size_t d = 0; d < next.num_dnns(); ++d) {
    const std::ptrdiff_t from = carried_from[d];
    if (from < 0) continue;  // new stream: loads its weights either way
    OB_REQUIRE(static_cast<std::size_t>(from) < previous.num_dnns(),
               "MigrationCostModel::assess: carried_from out of range");
    const models::NetworkDesc& net = *nets[d];
    const Assignment& was = previous.assignment(static_cast<std::size_t>(from));
    const Assignment& now = next.assignment(d);
    OB_REQUIRE(was.size() == now.size() && now.size() == net.num_layers(),
               "MigrationCostModel::assess: surviving stream layer-count "
               "mismatch");

    double bytes = 0.0;
    std::size_t moved = 0;
    for (std::size_t l = 0; l < now.size(); ++l) {
      if (was[l] == now[l]) continue;
      ++moved;
      bytes += net.layers[l].weight_bytes;
    }
    if (moved == 0) continue;

    // Fixed overhead per NEW-pipeline segment that received at least one
    // moved layer: that segment's runtime graph is re-instantiated and its
    // caches re-warmed even if only part of it moved.
    std::size_t migrated_segments = 0;
    for (const SegmentSpan& span : extract_segments(now)) {
      for (std::size_t l = span.first; l <= span.last; ++l) {
        if (was[l] != now[l]) {
          ++migrated_segments;
          break;
        }
      }
    }

    const double delay =
        config_.scale *
        (bytes / upload_bps +
         static_cast<double>(migrated_segments) * config_.per_segment_overhead_s);
    stats.stream_delay_s[d] = delay;
    stats.moved_layers += moved;
    stats.migrated_segments += migrated_segments;
    stats.moved_weight_bytes += bytes;
    stats.total_delay_s += delay;
    stats.max_delay_s = std::max(stats.max_delay_s, delay);
  }
  return stats;
}

}  // namespace omniboost::sim
