#pragma once
/// \file gemm.hpp
/// Compute kernels for the nn layer: a cache-blocked, register-tiled
/// single-precision GEMM plus the im2col/col2im lowering that turns 2-D
/// convolution into matrix multiplication (the classic Caffe-era CPU
/// recipe). These primitives exist so nn::Conv2d / nn::Linear can route
/// their forward AND backward passes through one tuned inner loop instead
/// of per-layer nested loops (nn::KernelKind::kGemm).
///
/// Determinism contract: for a fixed problem shape the summation order of
/// every output element is fixed (k is traversed block-by-block in
/// ascending order inside an accumulator register), so repeated calls are
/// bit-identical run-to-run. The order differs from a naive k-loop, so
/// results may differ from the reference kernels by float-rounding only
/// (|delta| well under 1e-6 for the estimator's value ranges — pinned by
/// tests/nn_kernel_test.cpp).

#include <cstddef>

#include "tensor/tensor.hpp"

namespace omniboost::tensor {

/// C = alpha * op(A) * op(B) + beta * C over row-major buffers.
///
/// op(A) is (m x k), op(B) is (k x n), C is (m x n); lda/ldb/ldc are the
/// row strides of the *stored* matrices (so for trans_a the stored A is
/// (k x m) with row stride lda). Aliasing between C and A/B is not
/// supported. beta == 0 overwrites C (NaN-safe), beta == 1 accumulates.
void gemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
          std::size_t k, float alpha, const float* a, std::size_t lda,
          const float* b, std::size_t ldb, float beta, float* c,
          std::size_t ldc);

/// Tensor-level matrix product: (m, k) x (k, n) -> (m, n).
Tensor matmul(const Tensor& a, const Tensor& b);

/// Output spatial extent of a convolution axis: (in + 2*pad - kernel) /
/// stride + 1. Requires in + 2*pad >= kernel and stride >= 1.
std::size_t conv_out_extent(std::size_t in, std::size_t kernel,
                            std::size_t stride, std::size_t pad);

/// Lowers one image (channels x h x w, row-major) into the column matrix
/// cols (channels*kernel*kernel x oh*ow): column p holds the receptive
/// field of output pixel p, rows ordered (c, ky, kx) — the same order as
/// Conv2d's (out_ch, in_ch, k, k) weight layout, so a convolution becomes
/// Y = W_matrix * cols. Out-of-image taps (zero padding) become zeros.
void im2col(const float* img, std::size_t channels, std::size_t h,
            std::size_t w, std::size_t kernel, std::size_t stride,
            std::size_t pad, float* cols);

/// Adjoint of im2col: scatters the column matrix back onto the image,
/// *accumulating* overlapping taps (the gradient lowering used by
/// Conv2d::backward). The caller zero-initializes img.
void col2im(const float* cols, std::size_t channels, std::size_t h,
            std::size_t w, std::size_t kernel, std::size_t stride,
            std::size_t pad, float* img);

/// Tensor wrapper over im2col for a single (C, H, W) image; returns the
/// (C*kernel*kernel, OH*OW) column matrix.
Tensor im2col(const Tensor& img, std::size_t kernel, std::size_t stride,
              std::size_t pad);

/// Tensor wrapper over col2im: folds a (C*kernel*kernel, OH*OW) column
/// matrix back into a zero-initialized (C, H, W) image.
Tensor col2im(const Tensor& cols, std::size_t channels, std::size_t h,
              std::size_t w, std::size_t kernel, std::size_t stride,
              std::size_t pad);

}  // namespace omniboost::tensor
