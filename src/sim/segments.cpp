#include "sim/segments.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace omniboost::sim {

Scene build_scene(const NetworkList& nets, const Mapping& mapping,
                  const device::CostModel& cost) {
  OB_REQUIRE(nets.size() == mapping.num_dnns(),
             "build_scene: workload/mapping size mismatch");
  Scene scene;
  scene.by_dnn.resize(nets.size());

  for (std::size_t i = 0; i < nets.size(); ++i) {
    const models::NetworkDesc& net = *nets[i];
    const Assignment& a = mapping.assignment(i);
    OB_REQUIRE(a.size() == net.num_layers(),
               "build_scene: assignment length mismatch for " + net.name);

    const auto spans = extract_segments(a);
    for (std::size_t s = 0; s < spans.size(); ++s) {
      SegmentInfo seg;
      seg.dnn = i;
      seg.stage = s;
      seg.span = spans[s];
      seg.base_time_s =
          cost.segment_time(net, spans[s].first, spans[s].last, spans[s].comp);
      if (s == 0)
        seg.base_time_s += cost.device().per_inference_overhead_s;
      seg.working_set_bytes =
          cost.segment_working_set_bytes(net, spans[s].first, spans[s].last);
      seg.traffic_bytes =
          cost.segment_traffic_bytes(net, spans[s].first, spans[s].last);
      for (std::size_t l = spans[s].first; l <= spans[s].last; ++l)
        seg.flops += net.layers[l].flops();
      if (s + 1 < spans.size()) {
        seg.transfer_out_bytes = net.layers[spans[s].last].output_bytes();
        seg.transfer_out_s = cost.transfer_time(
            seg.transfer_out_bytes, spans[s].comp, spans[s + 1].comp);
      }
      scene.by_dnn[i].push_back(scene.segments.size());
      scene.segments.push_back(seg);
    }
  }

  // Per-component working sets and contention penalties.
  for (const SegmentInfo& seg : scene.segments) {
    scene.working_set[device::component_index(seg.span.comp)] +=
        seg.working_set_bytes;
    scene.total_memory_bytes += seg.working_set_bytes;
  }
  const device::DeviceSpec& dev = cost.device();
  for (std::size_t c = 0; c < device::kNumComponents; ++c) {
    const device::ComponentSpec& comp = dev.components[c];
    const double ratio =
        comp.working_set_budget_bytes > 0.0
            ? scene.working_set[c] / comp.working_set_budget_bytes
            : 0.0;
    scene.penalty[c] =
        ratio > 1.0 ? std::pow(ratio, comp.contention_exponent) : 1.0;
  }
  for (SegmentInfo& seg : scene.segments)
    seg.service_time_s =
        seg.base_time_s * scene.penalty[device::component_index(seg.span.comp)];

  scene.total_memory_bytes +=
      dev.per_stream_overhead_bytes * static_cast<double>(nets.size());
  scene.fits_in_memory = scene.total_memory_bytes <= dev.memory_budget_bytes;
  return scene;
}

double stream_traffic_bytes(const Scene& scene, std::size_t dnn) {
  OB_REQUIRE(dnn < scene.by_dnn.size(),
             "stream_traffic_bytes: stream out of range");
  double bytes = 0.0;
  for (std::size_t sid : scene.by_dnn[dnn]) {
    const SegmentInfo& seg = scene.segments[sid];
    bytes += seg.traffic_bytes;
    // A pipeline cut moves the activation out of one component and into the
    // next: both sides hit shared DRAM.
    bytes += 2.0 * seg.transfer_out_bytes;
  }
  return bytes;
}

}  // namespace omniboost::sim
