/// \file bench_ablation_contention.cpp
/// Ablation A7 (DESIGN.md): robustness of the headline result to the two
/// calibrated contention parameters of the board substitute — the GPU
/// working-set contention exponent and the shared-DRAM bandwidth wall.
/// The paper's x4.6 gain at 4-DNN mixes arises from GPU saturation; this
/// sweep shows the *shape* — gains grow with GPU contention and vanish on a
/// fictional contention-free board where all-on-GPU is genuinely optimal —
/// is a property of the phenomenon, not of one parameter choice.

#include "bench_common.hpp"
#include "core/dataset.hpp"

using namespace omniboost;

namespace {

/// Builds a full pipeline (embedding, dataset, estimator, scheduler) on a
/// modified device and returns the average OmniBoost-vs-baseline speedup
/// over the given 4-DNN mixes.
double speedup_on_device(const device::DeviceSpec& device,
                         const std::vector<workload::Workload>& mixes,
                         std::uint64_t seed) {
  const models::ModelZoo zoo;
  const device::CostModel cost(device);
  const core::EmbeddingTensor embedding(zoo, cost);
  const sim::DesSimulator board(device);

  core::DatasetConfig dc;
  // Lighter than the paper's 500 samples: this trains once per swept device.
  dc.samples = bench::scaled(250, 40);
  dc.seed = seed;
  const core::SampleSet data = core::generate_dataset(zoo, embedding, board, dc);
  auto est = std::make_shared<core::ThroughputEstimator>(
      embedding.models_dim(), embedding.layers_dim());
  nn::L1Loss l1;
  nn::TrainConfig tc;
  tc.epochs = bench::scaled(60, 3);
  est->fit(data, bench::scaled(50, 10), l1, tc);

  core::OmniBoostScheduler omni(zoo, embedding, est);
  double sum = 0.0;
  std::size_t counted = 0;
  for (const auto& w : mixes) {
    const sim::Mapping all_gpu = sim::Mapping::all_on(
        w.layer_counts(zoo), device::ComponentId::kGpu);
    const double tb = board.simulate(w.resolve(zoo), all_gpu).avg_throughput;
    if (tb <= 0.0) continue;
    const double got =
        board.simulate(w.resolve(zoo), omni.schedule(w).mapping)
            .avg_throughput;
    sum += got / tb;
    ++counted;
  }
  return counted > 0 ? sum / static_cast<double>(counted) : 0.0;
}

}  // namespace

int main() {
  constexpr std::uint64_t kSeed = 41;
  bench::banner("Ablation A7 — contention-model robustness",
                "Section V-A (x4.6 at 4-DNN mixes) + DESIGN.md substitution",
                kSeed);

  util::Rng rng(kSeed);
  std::vector<workload::Workload> mixes;
  {
    const models::ModelZoo zoo;
    const sim::DesSimulator board(device::make_hikey970());
    while (mixes.size() < 3) {
      const workload::Workload w = workload::random_mix(rng, 4);
      const auto r = board.simulate(
          w.resolve(zoo), sim::Mapping::all_on(w.layer_counts(zoo),
                                               device::ComponentId::kGpu));
      if (r.feasible) mixes.push_back(w);
    }
  }

  std::printf("--- GPU working-set contention exponent sweep (4-DNN mixes, "
              "avg OmniBoost speedup vs all-on-GPU) ---\n");
  util::Table t1({"gpu contention exponent", "avg speedup (x)"});
  const device::DeviceSpec base = device::make_hikey970();
  const double base_exp =
      base.component(device::ComponentId::kGpu).contention_exponent;
  for (const double scale : {0.5, 0.75, 1.0, 1.25, 1.5}) {
    device::DeviceSpec d = base;
    d.component(device::ComponentId::kGpu).contention_exponent =
        base_exp * scale;
    std::string label = util::fmt(base_exp * scale, 2);
    if (scale == 1.0) label += " (cal.)";
    // Plain numeric cell (no "x" prefix): keeps the column eligible for the
    // emit_json column_stats summary the bench-JSON guard checks.
    t1.add_row({std::move(label),
                util::fmt(speedup_on_device(d, mixes, kSeed + 1), 2)});
  }
  bench::report("ablation_contention_gpu", t1);

  std::printf("\n--- shared-DRAM bandwidth sweep ---\n");
  util::Table t2({"dram bw (GB/s)", "avg speedup (x)"});
  for (const double scale : {0.5, 0.75, 1.0, 1.5, 2.0}) {
    device::DeviceSpec d = base;
    d.dram_bw_gbps = base.dram_bw_gbps * scale;
    std::string label = util::fmt(d.dram_bw_gbps, 1);
    if (scale == 1.0) label += " (cal.)";
    t2.add_row({std::move(label),
                util::fmt(speedup_on_device(d, mixes, kSeed + 2), 2)});
  }
  bench::report("ablation_contention_dram", t2);

  std::printf("\npaper check: the headline gain is driven by GPU "
              "contention — speedup grows monotonically-ish with the "
              "exponent and exceeds 1 from the calibrated point upward; in "
              "a fictional contention-free board all-on-GPU is genuinely "
              "optimal and splitting cannot win. The DRAM wall throttles "
              "every mapping equally, so it shifts T but not the ranking\n");
  return 0;
}
