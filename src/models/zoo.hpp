#pragma once
/// \file zoo.hpp
/// The model zoo: layer-level descriptions of the paper's 11 dataset DNNs.
/// Architectures follow the original publications; composite residual /
/// inception blocks are exposed as single schedulable layers because a skip
/// connection cannot be cut between components without duplicate transfers
/// (see DESIGN.md, "Layer granularity").

#include <cstddef>
#include <vector>

#include "models/layer_desc.hpp"
#include "models/model_id.hpp"

namespace omniboost::models {

/// Individual builders (exposed for tests and custom workloads).
NetworkDesc make_alexnet();
NetworkDesc make_mobilenet();
NetworkDesc make_resnet34();
NetworkDesc make_resnet50();
NetworkDesc make_resnet101();
NetworkDesc make_vgg13();
NetworkDesc make_vgg16();
NetworkDesc make_vgg19();
NetworkDesc make_squeezenet();
NetworkDesc make_inception_v3();
NetworkDesc make_inception_v4();

/// Builds the network for a given id.
NetworkDesc make_model(ModelId id);

/// Immutable collection of all dataset networks, built once.
class ModelZoo {
 public:
  /// Builds all kNumModels networks.
  ModelZoo();

  const NetworkDesc& network(ModelId id) const;
  const std::vector<NetworkDesc>& networks() const { return nets_; }

  std::size_t num_models() const { return nets_.size(); }

  /// Longest layer count over the zoo — the embedding tensor's L dimension.
  std::size_t max_layers() const { return max_layers_; }

 private:
  std::vector<NetworkDesc> nets_;
  std::size_t max_layers_ = 0;
};

}  // namespace omniboost::models
