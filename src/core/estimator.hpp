#pragma once
/// \file estimator.hpp
/// The throughput estimator (paper §IV-B): a ResNet9-style CNN with ~20k
/// trainable parameters and GELU activations that maps a masked embedding
/// tensor to the expected normalized throughput of each computing component.
/// Target preprocessing composes standardization (z-score) with min-max
/// normalization to [0, 1], exactly as described in §V, and is inverted at
/// prediction time.

#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "nn/loss.hpp"
#include "nn/module.hpp"
#include "nn/trainer.hpp"
#include "tensor/tensor.hpp"
#include "util/stats.hpp"

namespace omniboost::core {

/// Training samples: masked embedding inputs and measured per-component
/// throughput targets (inferences/sec flow, see ThroughputReport).
struct SampleSet {
  std::vector<tensor::Tensor> inputs;
  std::vector<std::array<double, 3>> targets;

  std::size_t size() const { return inputs.size(); }
};

/// Estimator hyper-parameters.
struct EstimatorConfig {
  std::size_t c1 = 8;   ///< stem width
  std::size_t c2 = 16;  ///< mid width
  std::size_t c3 = 24;  ///< late width
  bool use_gelu = true; ///< false switches to ReLU (ablation A4)
  /// Compress the targets' dynamic range with y' = log1p(y / log_scale)
  /// before standardization. Multi-DNN mixes span throughputs from ~0.1 to
  /// tens of inferences/sec; without this the regression cannot resolve the
  /// heavy models' placements.
  bool log_targets = true;
  double log_scale = 0.05;
  std::uint64_t init_seed = 7;
};

/// The CNN wrapper: architecture, preprocessing, training, prediction.
class ThroughputEstimator {
 public:
  /// \param models_dim  embedding M dimension
  /// \param layers_dim  embedding L dimension
  ThroughputEstimator(std::size_t models_dim, std::size_t layers_dim,
                      EstimatorConfig config = {});

  /// Number of trainable scalars (the paper quotes 20,044; this
  /// configuration yields 20,259 — pinned by a unit test).
  std::size_t num_params() const;

  /// Fits target preprocessing on the training split, then trains with
  /// mini-batch Adam. The last \p val_count samples form the validation set
  /// (paper: 400 train / 100 validation).
  nn::TrainHistory fit(const SampleSet& data, std::size_t val_count,
                       const nn::Loss& loss, const nn::TrainConfig& train);

  /// Predicted per-component throughput, denormalized to inferences/sec.
  std::array<double, 3> predict(const tensor::Tensor& input) const;

  /// Predicted normalized outputs in [0, 1] (the network's raw view).
  std::array<double, 3> predict_normalized(const tensor::Tensor& input) const;

  /// Scalar reward for search: the mean of the three predicted component
  /// flows. Flows sum to M * T, so this is proportional to the workload's
  /// measured average throughput, and averaging the three redundant
  /// regressions cancels part of the estimator's error.
  double predict_reward(const tensor::Tensor& input) const;

  /// Batched predict(): stacks \p inputs along a leading batch dimension and
  /// runs ONE forward pass through the CNN, amortizing the per-layer
  /// traversal and output allocations over the whole batch. Every layer of
  /// the network is per-sample independent in inference mode (BatchNorm uses
  /// running statistics), so element i of the result is bit-identical to
  /// predict(inputs[i]). An empty batch returns an empty vector.
  ///
  /// Thread-safety follows the same clone rule as predict(): the forward
  /// pass mutates the estimator's per-layer activation caches, so concurrent
  /// callers need private clones (see docs/ESTIMATOR.md).
  std::vector<std::array<double, 3>> predict_batch(
      const std::vector<tensor::Tensor>& inputs) const;

  /// Batched predict_reward(): element i equals predict_reward(inputs[i]).
  std::vector<double> predict_rewards(
      const std::vector<tensor::Tensor>& inputs) const;

  bool trained() const { return trained_; }

  /// Compute-kernel selection for the CNN's Conv2d/Linear layers (see
  /// nn/kernel.hpp). A freshly constructed or loaded estimator uses
  /// nn::default_kernel(); this switches every layer of this instance. The
  /// kernel kind is execution state, not model state — it is NOT serialized,
  /// and both kinds predict within 1e-6 of each other (only kReference is
  /// bit-frozen against the paper campaigns).
  void set_kernel(nn::KernelKind kind);
  nn::KernelKind kernel() const { return kernel_kind_; }

  /// Serializes architecture configuration, fitted target preprocessing and
  /// network weights (design-time artifact for the run-time scheduler).
  void save(std::ostream& os) const;
  void save_file(const std::string& path) const;

  /// Reconstructs an estimator from a stream written by save(). Throws
  /// std::runtime_error on malformed input.
  static ThroughputEstimator load(std::istream& is);
  static ThroughputEstimator load_file(const std::string& path);

 private:
  /// Forward transform applied to raw rates before the affine preprocessing.
  double compress(double rate) const;
  /// Inverse of compress().
  double expand(double value) const;

  std::unique_ptr<nn::Sequential> net_;
  std::array<util::Affine1D, 3> target_transform_;
  std::size_t models_dim_, layers_dim_;
  EstimatorConfig config_;
  nn::KernelKind kernel_kind_ = nn::default_kernel();
  bool trained_ = false;
};

}  // namespace omniboost::core
