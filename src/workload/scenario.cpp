#include "workload/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/require.hpp"

namespace omniboost::workload {

namespace {

/// Replays events [0, upto) and returns the present models in arrival
/// order, validating the scenario invariants along the way.
std::vector<models::ModelId> replay(const std::vector<ScenarioEvent>& events,
                                    std::size_t upto) {
  std::vector<models::ModelId> present;
  double prev_time = 0.0;
  for (std::size_t i = 0; i < upto; ++i) {
    const ScenarioEvent& e = events[i];
    if (!(e.time_s >= 0.0) || std::isnan(e.time_s))
      throw std::invalid_argument("Scenario: negative or NaN event time");
    if (i > 0 && e.time_s < prev_time)
      throw std::invalid_argument("Scenario: event times must be non-decreasing");
    prev_time = e.time_s;
    const auto it = std::find(present.begin(), present.end(), e.model);
    if (e.kind == ScenarioEventKind::kArrive) {
      if (it != present.end())
        throw std::invalid_argument(
            "Scenario: model '" + std::string(models::model_name(e.model)) +
            "' arrives while already present");
      present.push_back(e.model);
    } else {
      if (it == present.end())
        throw std::invalid_argument(
            "Scenario: model '" + std::string(models::model_name(e.model)) +
            "' departs while absent");
      present.erase(it);
    }
  }
  return present;
}

}  // namespace

Scenario::Scenario(std::vector<ScenarioEvent> events)
    : events_(std::move(events)) {
  replay(events_, events_.size());  // validation only
}

Workload Scenario::mix_after(std::size_t event_index) const {
  OB_REQUIRE(event_index < events_.size(),
             "Scenario::mix_after: event index out of range");
  return Workload{replay(events_, event_index + 1)};
}

std::size_t Scenario::peak_concurrency() const {
  std::size_t present = 0, peak = 0;
  for (const ScenarioEvent& e : events_) {
    if (e.kind == ScenarioEventKind::kArrive)
      peak = std::max(peak, ++present);
    else
      --present;
  }
  return peak;
}

std::string Scenario::describe() const {
  char buf[96];
  const double span = events_.empty() ? 0.0 : events_.back().time_s;
  std::snprintf(buf, sizeof(buf), "%zu events / %.1f s / peak %zu",
                events_.size(), span, peak_concurrency());
  return buf;
}

Scenario random_scenario(util::Rng& rng, const ScenarioConfig& config) {
  OB_REQUIRE(config.events >= 1, "random_scenario: need at least one event");
  OB_REQUIRE(config.min_concurrent >= 1,
             "random_scenario: min_concurrent must be >= 1");
  OB_REQUIRE(config.max_concurrent >= config.min_concurrent &&
                 config.max_concurrent <= models::kNumModels,
             "random_scenario: max_concurrent out of range");
  // A zero-width band freezes the mix once it fills: no model may depart
  // (floor) or arrive (ceiling), so only the filling arrivals are legal.
  OB_REQUIRE(config.max_concurrent > config.min_concurrent ||
                 config.events <= config.max_concurrent,
             "random_scenario: with min_concurrent == max_concurrent the mix "
             "freezes once full — request at most max_concurrent events or "
             "widen the band");

  std::vector<ScenarioEvent> events;
  events.reserve(config.events);
  std::vector<models::ModelId> present;
  std::vector<models::ModelId> absent(models::kAllModels.begin(),
                                      models::kAllModels.end());
  double t = 0.0;
  for (std::size_t i = 0; i < config.events; ++i) {
    // A departure is legal only above the concurrency floor; an arrival only
    // below the ceiling (the absent pool can never run dry below it).
    const bool can_depart = present.size() > config.min_concurrent;
    const bool can_arrive = present.size() < config.max_concurrent;
    OB_ENSURE(can_depart || can_arrive, "random_scenario: dead config");
    const bool depart = can_depart &&
                        (!can_arrive || rng.chance(config.depart_bias));

    ScenarioEvent e;
    e.time_s = t;
    if (depart) {
      const std::size_t pick = rng.below(present.size());
      e.kind = ScenarioEventKind::kDepart;
      e.model = present[pick];
      present.erase(present.begin() + static_cast<std::ptrdiff_t>(pick));
      absent.push_back(e.model);
    } else {
      const std::size_t pick = rng.below(absent.size());
      e.kind = ScenarioEventKind::kArrive;
      e.model = absent[pick];
      present.push_back(e.model);
      absent.erase(absent.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    events.push_back(e);
    // Exponential gap to the next event (inverse-CDF; uniform() < 1 always).
    t += config.mean_interarrival_s * -std::log1p(-rng.uniform());
  }
  return Scenario(std::move(events));
}

std::string serialize_scenario(const Scenario& scenario) {
  std::string out = "# omniboost scenario trace v1\n";
  char buf[64];
  for (const ScenarioEvent& e : scenario.events()) {
    std::snprintf(buf, sizeof(buf), "%.17g", e.time_s);
    out += "at ";
    out += buf;
    out += e.kind == ScenarioEventKind::kArrive ? " arrive " : " depart ";
    out += std::string(models::model_name(e.model));
    out += '\n';
  }
  return out;
}

Scenario parse_scenario(std::istream& in) {
  std::vector<ScenarioEvent> events;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto fail = [&](const std::string& why) {
      throw std::invalid_argument("scenario trace line " +
                                  std::to_string(line_no) + ": " + why);
    };
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word) || word[0] == '#') continue;  // blank or comment
    if (word != "at") fail("expected 'at <time> <arrive|depart> <model>'");
    ScenarioEvent e;
    if (!(ls >> e.time_s)) fail("missing or malformed timestamp");
    std::string kind, model;
    if (!(ls >> kind >> model)) fail("missing event kind or model name");
    if (kind == "arrive")
      e.kind = ScenarioEventKind::kArrive;
    else if (kind == "depart")
      e.kind = ScenarioEventKind::kDepart;
    else
      fail("unknown event kind '" + kind + "'");
    if (!models::parse_model_name(model, e.model))
      fail("unknown model '" + model + "'");
    if (ls >> word && word[0] != '#') fail("trailing tokens after model name");
    events.push_back(e);
  }
  return Scenario(std::move(events));
}

Scenario parse_scenario(const std::string& text) {
  std::istringstream in(text);
  return parse_scenario(in);
}

Scenario load_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open scenario trace: " + path);
  return parse_scenario(in);
}

void save_scenario_file(const Scenario& scenario, const std::string& path) {
  std::ofstream out(path);
  out << serialize_scenario(scenario);
  out.flush();
  if (!out)
    throw std::invalid_argument("cannot write scenario trace: " + path);
}

}  // namespace omniboost::workload
