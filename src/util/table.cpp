#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace omniboost::util {

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("Table: row width mismatch");
  rows_.push_back(std::move(cells));
}

void Table::add_row(const std::string& label, const std::vector<double>& values,
                    int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  const auto rule = [&] {
    os << '+';
    for (std::size_t c = 0; c < width.size(); ++c)
      os << std::string(width[c] + 2, '-') << '+';
    os << '\n';
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << ' ' << std::left << std::setw(static_cast<int>(width[c]))
         << cells[c] << " |";
    os << '\n';
  };

  rule();
  line(header_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(std::ostream& os) const {
  const auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  line(header_);
  for (const auto& row : rows_) line(row);
}

}  // namespace omniboost::util
