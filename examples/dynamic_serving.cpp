/// \file dynamic_serving.cpp
/// Dynamic serving scenario: an edge box serves changing multi-DNN traffic —
/// a detector runs around the clock while classifier and segmenter streams
/// come and go with demand. Every mix change forces a rescheduling decision.
/// This example scripts the day as a workload::Scenario (the same text trace
/// format `omniboost_cli serve --scenario` accepts), replays it through the
/// core::ServingRuntime twice — cold full-budget decisions vs. OmniBoost's
/// warm-started reschedule() — and compares decision latency, throughput and
/// mapping churn epoch by epoch.

#include <cstdio>
#include <iostream>
#include <memory>

#include "core/dataset.hpp"
#include "core/omniboost.hpp"
#include "core/serving.hpp"
#include "nn/loss.hpp"
#include "util/table.hpp"
#include "workload/scenario.hpp"

using namespace omniboost;

int main() {
  // The box's day, scripted: ResNet-50 detection always on; MobileNet
  // re-identification joins at rush hour; VGG-16 segmentation runs a
  // mid-day batch; the mix thins out again in the evening.
  const workload::Scenario day = workload::parse_scenario(
      "# edge box, one day (times in minutes for readability)\n"
      "at 0   arrive ResNet-50\n"
      "at 60  arrive MobileNet\n"
      "at 240 arrive VGG-16\n"
      "at 480 depart MobileNet\n"
      "at 600 depart VGG-16\n");
  std::printf("scenario: %s\n\n", day.describe().c_str());

  models::ModelZoo zoo;
  const device::DeviceSpec spec = device::make_hikey970();
  const device::CostModel cost(spec);
  const core::EmbeddingTensor embedding(zoo, cost);
  const sim::DesSimulator board(spec);

  // Design time (abbreviated campaign for example runtime).
  core::DatasetConfig dc;
  dc.samples = 150;
  const core::SampleSet data = core::generate_dataset(zoo, embedding, board, dc);
  auto estimator = std::make_shared<core::ThroughputEstimator>(
      embedding.models_dim(), embedding.layers_dim());
  nn::L1Loss l1;
  nn::TrainConfig tc;
  tc.epochs = 40;
  estimator->fit(data, 30, l1, tc);

  core::OmniBoostConfig cfg;
  cfg.mcts.budget = 200;
  cfg.rollout_fraction = 0.4;  // warm decisions spend 40% of the cold budget

  for (const bool warm : {false, true}) {
    core::OmniBoostScheduler omni(zoo, embedding, estimator, cfg);
    core::ServingConfig serving;
    serving.warm_start = warm;
    const core::ServingRuntime runtime(zoo, board, serving);
    const core::ServingReport report = runtime.run(omni, day);

    std::printf("--- %s rescheduling ---\n", warm ? "warm-started" : "cold");
    util::Table t({"t", "event", "mix", "decision s", "T inf/s", "churn"});
    for (const core::EpochReport& ep : report.epochs) {
      t.add_row({util::fmt(ep.time_s, 0), ep.event, ep.mix,
                 util::fmt(ep.decision.decision_seconds, 3),
                 util::fmt(ep.measured_throughput, 2),
                 ep.surviving_layers == 0
                     ? "-"
                     : util::fmt(100.0 * ep.churn, 1) + "%"});
    }
    t.print(std::cout);
    std::printf("mean T %.3f inf/s | mean incremental decision %.3f s | "
                "mean churn %.1f%% | %zu memo hits\n\n",
                report.mean_throughput,
                report.mean_incremental_decision_seconds,
                100.0 * report.mean_churn, report.total_cache_hits);
  }

  std::printf("takeaway: warm-started rescheduling answers mix changes in a "
              "fraction of the cold decision latency and moves far fewer "
              "layers of the streams that stayed.\n");
  return 0;
}
