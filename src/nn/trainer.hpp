#pragma once
/// \file trainer.hpp
/// Mini-batch regression trainer producing per-epoch train/validation loss
/// histories (the data behind the paper's Fig. 4).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "nn/loss.hpp"
#include "nn/module.hpp"
#include "nn/optim.hpp"
#include "nn/schedulers.hpp"
#include "util/rng.hpp"

namespace omniboost::nn {

/// A supervised regression dataset: per-sample input (CHW) and target (F).
struct Dataset {
  std::vector<Tensor> inputs;
  std::vector<Tensor> targets;

  std::size_t size() const { return inputs.size(); }

  /// Splits off the last \p n samples as a second dataset.
  std::pair<Dataset, Dataset> split_tail(std::size_t n) const;
};

/// Stacks per-sample CHW tensors (or F vectors) into one batched tensor.
Tensor stack(const std::vector<Tensor>& samples,
             const std::vector<std::size_t>& indices);

/// Builds a fresh, architecturally identical instance of the model being
/// trained/evaluated, configured the same way (kernel kind, eval mode).
/// Initial weights are irrelevant — callers overwrite them through
/// nn::serialize before use.
using ModuleFactory = std::function<std::unique_ptr<Module>()>;

/// Training hyper-parameters.
struct TrainConfig {
  std::size_t epochs = 100;   ///< paper: 100 epochs
  std::size_t batch_size = 16;
  float lr = 3e-3f;
  float weight_decay = 1e-4f;
  std::uint64_t seed = 1;     ///< shuffling seed
  /// Optional per-epoch learning-rate schedule (overrides \c lr when set;
  /// not owned, must outlive the training run).
  const LrScheduler* lr_schedule = nullptr;
  /// Design-time parallelism for the per-epoch validation pass. The SGD
  /// loop itself is inherently sequential — step t+1 consumes the weights
  /// step t produced, and BatchNorm's batch statistics couple the samples
  /// of a minibatch — but validation runs in inference mode, where every
  /// sample is independent (the module.hpp batching contract), so its
  /// batches fan out over a util::ThreadPool when workers > 1 and
  /// `replicate` is set. Results are byte-identical for every worker
  /// count: each worker evaluates a weight-identical replica and the
  /// per-batch losses reduce in batch order.
  std::size_t workers = 1;
  /// Replica factory for the parallel validation pass (modules cache
  /// activations, so threads can never share one instance — the same
  /// clone rule as the parallel MCTS). Leave null to evaluate serially.
  ModuleFactory replicate = nullptr;
};

/// Per-epoch loss history.
struct TrainHistory {
  std::vector<double> train_loss;
  std::vector<double> val_loss;  ///< empty if no validation set given
};

/// Runs mini-batch training of \p model with Adam.
///
/// \param model  network in training mode (switched internally per phase)
/// \param loss   criterion (paper: L1)
/// \param train  training samples
/// \param val    validation samples (may be empty)
TrainHistory train_regression(Module& model, const Loss& loss,
                              const Dataset& train, const Dataset& val,
                              const TrainConfig& config);

/// Mean loss of \p model over \p data in inference mode.
///
/// With \p workers > 1 and a non-null \p replicate factory, batches are
/// evaluated concurrently on weight-identical replicas (byte-identical to
/// the serial path; see TrainConfig::workers). Otherwise runs serially on
/// \p model itself.
double evaluate(Module& model, const Loss& loss, const Dataset& data,
                std::size_t batch_size = 16, std::size_t workers = 1,
                const ModuleFactory& replicate = nullptr);

}  // namespace omniboost::nn
