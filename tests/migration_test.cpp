// sim::MigrationCostModel and the DES start-delay overloads:
//  * assess() arithmetic: moved-layer weight bytes over the upload link plus
//    a per-migrated-segment overhead, per surviving stream
//  * new streams (carried_from < 0) and identical mappings are free
//  * DES: empty/zero start delays are bit-identical to the plain simulate(),
//    positive delays only lower measured throughput, and a delay past the
//    horizon starves the stream to zero

#include <gtest/gtest.h>

#include <vector>

#include "models/zoo.hpp"
#include "sim/des.hpp"
#include "sim/migration.hpp"
#include "workload/workload.hpp"

namespace {

using namespace omniboost;
using models::ModelId;

constexpr auto G = device::ComponentId::kGpu;
constexpr auto B = device::ComponentId::kBigCpu;
constexpr auto L = device::ComponentId::kLittleCpu;

const models::ModelZoo& zoo() {
  static const models::ModelZoo z;
  return z;
}

const device::DeviceSpec& spec() {
  static const device::DeviceSpec s = device::make_hikey970();
  return s;
}

const sim::DesSimulator& board() {
  static const sim::DesSimulator b(spec());
  return b;
}

TEST(MigrationCostModel, ChargesMovedWeightBytesAndSegmentOverheads) {
  const models::NetworkDesc& alex = zoo().network(ModelId::kAlexNet);
  const std::size_t n = alex.num_layers();
  ASSERT_GE(n, 4u);

  const workload::Workload w{{ModelId::kAlexNet}};
  const sim::NetworkList nets = w.resolve(zoo());

  // Previous: all on GPU. Next: first layer to LITTLE, last layer to big —
  // two moved layers in two distinct (new-pipeline) segments.
  sim::Assignment prev_a(n, G);
  sim::Assignment next_a(n, G);
  next_a[0] = L;
  next_a[n - 1] = B;
  const sim::Mapping prev({prev_a});
  const sim::Mapping next({next_a});

  sim::MigrationCostConfig cfg;
  cfg.enabled = true;
  cfg.per_segment_overhead_s = 5e-3;
  cfg.scale = 2.0;
  const sim::MigrationCostModel model(spec(), cfg);
  const sim::MigrationStats stats = model.assess(nets, prev, {0}, next);

  const double bytes =
      alex.layers[0].weight_bytes + alex.layers[n - 1].weight_bytes;
  const double expected =
      cfg.scale * (bytes / (spec().link.bandwidth_gbps * 1e9) +
                   2.0 * cfg.per_segment_overhead_s);
  EXPECT_EQ(stats.moved_layers, 2u);
  EXPECT_EQ(stats.migrated_segments, 2u);
  EXPECT_DOUBLE_EQ(stats.moved_weight_bytes, bytes);
  ASSERT_EQ(stats.stream_delay_s.size(), 1u);
  EXPECT_DOUBLE_EQ(stats.stream_delay_s[0], expected);
  EXPECT_DOUBLE_EQ(stats.total_delay_s, expected);
  EXPECT_DOUBLE_EQ(stats.max_delay_s, expected);

  // An explicit upload bandwidth overrides the device link.
  sim::MigrationCostConfig fast = cfg;
  fast.upload_gbps = 10.0 * spec().link.bandwidth_gbps;
  const sim::MigrationStats faster =
      sim::MigrationCostModel(spec(), fast).assess(nets, prev, {0}, next);
  EXPECT_LT(faster.total_delay_s, stats.total_delay_s);
}

TEST(MigrationCostModel, PartiallyMovedSegmentChargesOneOverhead) {
  const models::NetworkDesc& alex = zoo().network(ModelId::kAlexNet);
  const std::size_t n = alex.num_layers();
  const workload::Workload w{{ModelId::kAlexNet}};
  const sim::NetworkList nets = w.resolve(zoo());

  // Two adjacent moved layers that end up INSIDE one new segment: one
  // segment overhead, two layers' weights.
  sim::Assignment prev_a(n, G);
  prev_a[1] = B;
  prev_a[2] = B;
  sim::Assignment next_a(n, G);  // segment [0..n-1] on GPU
  sim::MigrationCostConfig one_overhead;
  one_overhead.enabled = true;
  one_overhead.per_segment_overhead_s = 1e-3;
  const sim::MigrationCostModel model(spec(), one_overhead);
  const sim::MigrationStats stats =
      model.assess(nets, sim::Mapping({prev_a}), {0},
                   sim::Mapping({next_a}));
  EXPECT_EQ(stats.moved_layers, 2u);
  EXPECT_EQ(stats.migrated_segments, 1u);
  EXPECT_DOUBLE_EQ(stats.moved_weight_bytes,
                   alex.layers[1].weight_bytes + alex.layers[2].weight_bytes);
}

TEST(MigrationCostModel, NewStreamsIdenticalMappingsAndFullReplacementAreFree) {
  const std::size_t alex_n = zoo().network(ModelId::kAlexNet).num_layers();
  const std::size_t mob_n = zoo().network(ModelId::kMobileNet).num_layers();
  sim::MigrationCostConfig enabled;
  enabled.enabled = true;
  const sim::MigrationCostModel model(spec(), enabled);

  // Surviving stream unchanged + a brand-new stream: nothing to charge.
  const workload::Workload w2{{ModelId::kAlexNet, ModelId::kMobileNet}};
  const sim::Mapping prev({sim::Assignment(alex_n, G)});
  const sim::Mapping next(
      {sim::Assignment(alex_n, G), sim::Assignment(mob_n, B)});
  const sim::MigrationStats unchanged =
      model.assess(w2.resolve(zoo()), prev, {0, -1}, next);
  EXPECT_EQ(unchanged.moved_layers, 0u);
  EXPECT_EQ(unchanged.migrated_segments, 0u);
  EXPECT_DOUBLE_EQ(unchanged.total_delay_s, 0.0);
  EXPECT_DOUBLE_EQ(unchanged.stream_delay_s[0], 0.0);
  EXPECT_DOUBLE_EQ(unchanged.stream_delay_s[1], 0.0);

  // Full-replacement epoch: every stream is new — free by definition even
  // though the previous mapping was completely different.
  const workload::Workload w1{{ModelId::kMobileNet}};
  const sim::MigrationStats replaced = model.assess(
      w1.resolve(zoo()), sim::Mapping({sim::Assignment(alex_n, B)}), {-1},
      sim::Mapping({sim::Assignment(mob_n, L)}));
  EXPECT_EQ(replaced.moved_layers, 0u);
  EXPECT_DOUBLE_EQ(replaced.total_delay_s, 0.0);
}

TEST(MigrationCostModel, ZeroBandwidthBoardIsLegalOnlyWhileDisabled) {
  // The serving runtime builds a (usually disabled) model for every board
  // unconditionally, and profiles may legally declare a zero-bandwidth
  // link — only charging migrations on one is an error.
  device::DeviceSpec no_link = spec();
  no_link.link.bandwidth_gbps = 0.0;
  const sim::MigrationCostModel disabled(no_link, {});  // fine

  sim::MigrationCostConfig on;
  on.enabled = true;
  EXPECT_THROW(sim::MigrationCostModel(no_link, on), std::invalid_argument);

  // Assessing the disabled model on such a board is diagnosed, not inf.
  const std::size_t n = zoo().network(ModelId::kAlexNet).num_layers();
  const workload::Workload w{{ModelId::kAlexNet}};
  const sim::Mapping prev({sim::Assignment(n, G)});
  sim::Assignment moved(n, G);
  moved[0] = B;
  EXPECT_THROW(
      disabled.assess(w.resolve(zoo()), prev, {0}, sim::Mapping({moved})),
      std::invalid_argument);
}

TEST(DesStartDelays, EmptyAndZeroDelaysAreBitIdenticalToPlainSimulate) {
  const workload::Workload w{{ModelId::kAlexNet, ModelId::kMobileNet}};
  const sim::NetworkList nets = w.resolve(zoo());
  const sim::Mapping m = sim::Mapping::all_on(w.layer_counts(zoo()), G);

  const sim::ThroughputReport plain = board().simulate(nets, m);
  const sim::ThroughputReport empty = board().simulate(nets, m, {});
  const sim::ThroughputReport zeros =
      board().simulate(nets, m, std::vector<double>{0.0, 0.0});
  for (const sim::ThroughputReport* r : {&empty, &zeros}) {
    EXPECT_EQ(plain.avg_throughput, r->avg_throughput);
    EXPECT_EQ(plain.per_dnn_rate, r->per_dnn_rate);
    EXPECT_EQ(plain.dram_demand_gbps, r->dram_demand_gbps);
  }
}

TEST(DesStartDelays, DelaysOnlyLowerMeasuredThroughput) {
  const workload::Workload w{{ModelId::kAlexNet, ModelId::kSqueezeNet}};
  const sim::NetworkList nets = w.resolve(zoo());
  const sim::Mapping m = sim::Mapping::all_on(w.layer_counts(zoo()), G);

  const sim::ThroughputReport plain = board().simulate(nets, m);
  ASSERT_GT(plain.avg_throughput, 0.0);

  // Stall stream 0 for a visible slice of the horizon: it completes fewer
  // frames in the unchanged window, so measured T (the slowest stream under
  // the synchronized window) cannot rise.
  const sim::ThroughputReport stalled =
      board().simulate(nets, m, std::vector<double>{0.5, 0.0});
  EXPECT_LT(stalled.per_dnn_rate[0], plain.per_dnn_rate[0]);
  EXPECT_LE(stalled.avg_throughput, plain.avg_throughput);

  // A delay past the horizon starves the stream completely.
  const sim::ThroughputReport starved =
      board().simulate(nets, m, std::vector<double>{1e9, 0.0});
  EXPECT_EQ(starved.per_dnn_rate[0], 0.0);
  EXPECT_EQ(starved.avg_throughput, 0.0);

  // Bad delay vectors are rejected.
  EXPECT_THROW(board().simulate(nets, m, std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW(board().simulate(nets, m, std::vector<double>{-1.0, 0.0}),
               std::invalid_argument);
}

TEST(DesStartDelays, StallChargesThroughputButNotPerFrameLatency) {
  // The one-off stall is charged against the measured rate (absent fraction
  // of the window); it is NOT per-frame latency, so the latency
  // distribution — what SLO checks compare — must be bit-identical to the
  // undelayed run.
  const workload::Workload w{{ModelId::kAlexNet}};
  const sim::NetworkList nets = w.resolve(zoo());
  const sim::Mapping m = sim::Mapping::all_on(w.layer_counts(zoo()), G);

  const auto plain = board().simulate_traced(nets, m);
  const auto delayed =
      board().simulate_traced(nets, m, std::vector<double>{0.05});
  ASSERT_GT(plain.trace.per_dnn_latency[0].samples, 0u);
  EXPECT_EQ(delayed.trace.per_dnn_latency[0].samples,
            plain.trace.per_dnn_latency[0].samples);
  EXPECT_EQ(delayed.trace.per_dnn_latency[0].p99,
            plain.trace.per_dnn_latency[0].p99);
  EXPECT_EQ(delayed.trace.per_dnn_latency[0].max,
            plain.trace.per_dnn_latency[0].max);
  // Exact charge: rate scales by the present fraction of the window.
  const double window =
      plain.trace.horizon_seconds - plain.trace.warmup_seconds;
  EXPECT_DOUBLE_EQ(
      delayed.report.per_dnn_rate[0],
      plain.report.per_dnn_rate[0] * (window - 0.05) / window);
}

}  // namespace
