// The analytic steady-state model, cross-validated against the DES.

#include <gtest/gtest.h>

#include "models/zoo.hpp"
#include "sim/analytic.hpp"
#include "sim/des.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace {

using namespace omniboost::sim;
using omniboost::device::ComponentId;
using omniboost::models::ModelId;
using omniboost::models::ModelZoo;
using omniboost::workload::Workload;

const ModelZoo& zoo() {
  static const ModelZoo z;
  return z;
}

class AnalyticTest : public ::testing::Test {
 protected:
  omniboost::device::DeviceSpec device_ = omniboost::device::make_hikey970();
  AnalyticModel model_{device_};
  DesSimulator des_{device_};
};

TEST_F(AnalyticTest, MatchesDesOnSingleStream) {
  const Workload w{{ModelId::kResNet50}};
  const auto nets = w.resolve(zoo());
  const auto m = Mapping::all_on(w.layer_counts(zoo()), ComponentId::kGpu);
  const double a = model_.evaluate(nets, m).avg_throughput;
  const double d = des_.simulate(nets, m).avg_throughput;
  EXPECT_NEAR(a / d, 1.0, 0.15);
}

TEST_F(AnalyticTest, SharesFeasibilityLogicWithDes) {
  const Workload w{{ModelId::kVgg19, ModelId::kVgg16, ModelId::kVgg13,
                    ModelId::kResNet101, ModelId::kInceptionV4,
                    ModelId::kInceptionV3}};
  const auto m = Mapping::all_on(w.layer_counts(zoo()), ComponentId::kGpu);
  EXPECT_FALSE(model_.evaluate(w.resolve(zoo()), m).feasible);
}

// Property: over random mappings the analytic model tracks the DES closely
// (it is the same scene preprocessing; only queueing is approximated).
class AnalyticAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnalyticAgreement, WithinFactorOfDes) {
  omniboost::util::Rng rng(GetParam());
  omniboost::device::DeviceSpec device = omniboost::device::make_hikey970();
  AnalyticModel model(device);
  DesSimulator des(device);
  const std::size_t mix = 2 + rng.below(3);
  const Workload w = omniboost::workload::random_mix(rng, mix);
  const auto nets = w.resolve(zoo());
  const Mapping m =
      omniboost::workload::random_mapping(rng, zoo(), w, 3);
  const auto ra = model.evaluate(nets, m);
  const auto rd = des.simulate(nets, m);
  ASSERT_EQ(ra.feasible, rd.feasible);
  if (!ra.feasible) return;
  for (std::size_t i = 0; i < nets.size(); ++i) {
    EXPECT_GT(ra.per_dnn_rate[i], 0.0);
    const double ratio = ra.per_dnn_rate[i] / rd.per_dnn_rate[i];
    // Queueing effects can separate them, but never by an order of magnitude.
    EXPECT_GT(ratio, 0.3) << "stream " << i;
    EXPECT_LT(ratio, 3.0) << "stream " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalyticAgreement,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

TEST_F(AnalyticTest, RankingAgreesWithDesOnContrastedMappings) {
  // GPU-only vs distributed on a heavy mix: both models must prefer the
  // distributed mapping.
  const Workload w{{ModelId::kVgg19, ModelId::kResNet101,
                    ModelId::kInceptionV4, ModelId::kVgg16}};
  const auto nets = w.resolve(zoo());
  const auto counts = w.layer_counts(zoo());
  const auto gpu_only = Mapping::all_on(counts, ComponentId::kGpu);
  std::vector<Assignment> spread;
  spread.emplace_back(counts[0], ComponentId::kGpu);
  spread.emplace_back(counts[1], ComponentId::kBigCpu);
  spread.emplace_back(counts[2], ComponentId::kGpu);
  spread.emplace_back(counts[3], ComponentId::kBigCpu);
  const Mapping distributed(std::move(spread));

  EXPECT_GT(model_.evaluate(nets, distributed).avg_throughput,
            model_.evaluate(nets, gpu_only).avg_throughput);
  EXPECT_GT(des_.simulate(nets, distributed).avg_throughput,
            des_.simulate(nets, gpu_only).avg_throughput);
}

TEST_F(AnalyticTest, TransferBoundStreams) {
  // A mapping that ping-pongs between components is bounded by transfers;
  // the analytic model must reflect that cost.
  const Workload w{{ModelId::kVgg16}};
  const auto nets = w.resolve(zoo());
  const std::size_t n = nets[0]->num_layers();
  Assignment ping(n, ComponentId::kGpu);
  for (std::size_t l = n / 3; l < 2 * n / 3; ++l)
    ping[l] = ComponentId::kBigCpu;
  const double split = model_.evaluate(nets, Mapping({ping})).avg_throughput;
  const double solo =
      model_
          .evaluate(nets, Mapping::all_on({n}, ComponentId::kGpu))
          .avg_throughput;
  EXPECT_GT(split, 0.0);
  // VGG16's early activations are large: a 3-stage split costs transfers.
  EXPECT_LT(split, solo * 3.0);
}

}  // namespace
