/// \file quickstart.cpp
/// Minimal end-to-end use of the OmniBoost public API:
///   1. build the model zoo and the (simulated) HiKey970;
///   2. profile the distributed-embeddings tensor;
///   3. generate the design-time dataset and train the throughput estimator;
///   4. schedule a multi-DNN workload with estimator-guided MCTS;
///   5. execute the mapping on the board simulator and report throughput.
///
/// For speed this quickstart uses a reduced design-time campaign (150
/// workloads, 40 epochs); the paper's full settings (500 / 100) live in
/// bench/bench_fig4_estimator_training.cpp.

#include <cstdio>

#include "core/dataset.hpp"
#include "core/omniboost.hpp"
#include "nn/loss.hpp"
#include "sched/baseline.hpp"

using namespace omniboost;

int main() {
  // 1. The platform: 11 dataset DNNs and the heterogeneous board model.
  models::ModelZoo zoo;
  const device::DeviceSpec board_spec = device::make_hikey970();
  const device::CostModel cost(board_spec);
  std::printf("board: %s (%s | %s | %s)\n", board_spec.name.c_str(),
              board_spec.components[0].name.c_str(),
              board_spec.components[1].name.c_str(),
              board_spec.components[2].name.c_str());

  // 2. Kernel-level profiling -> distributed embeddings tensor (Eq. 1-3).
  const core::EmbeddingTensor embedding(zoo, cost);
  std::printf("embedding tensor: 3 x %zu x %zu\n", embedding.models_dim(),
              embedding.layers_dim());

  // 3. Design time: random workloads measured on the board train the CNN.
  const sim::DesSimulator board(board_spec);
  core::DatasetConfig dc;
  dc.samples = 150;
  const core::SampleSet data =
      core::generate_dataset(zoo, embedding, board, dc);
  auto estimator = std::make_shared<core::ThroughputEstimator>(
      embedding.models_dim(), embedding.layers_dim());
  std::printf("estimator: %zu trainable parameters; training...\n",
              estimator->num_params());
  nn::L1Loss l1;
  nn::TrainConfig tc;
  tc.epochs = 40;
  const nn::TrainHistory hist = estimator->fit(data, 30, l1, tc);
  std::printf("trained: final train L1 %.4f, validation L1 %.4f\n",
              hist.train_loss.back(), hist.val_loss.back());

  // 4. Run time: schedule a 4-DNN workload.
  const workload::Workload mix{
      {models::ModelId::kVgg19, models::ModelId::kResNet50,
       models::ModelId::kInceptionV3, models::ModelId::kMobileNet}};
  core::OmniBoostScheduler omniboost(zoo, embedding, estimator);
  const core::ScheduleResult plan = omniboost.schedule(mix);
  std::printf("\nworkload: %s\n", mix.describe().c_str());
  std::printf("decision: %.0f ms, %zu estimator queries, max %zu pipeline "
              "stages\n",
              plan.decision_seconds * 1e3, plan.evaluations,
              plan.mapping.max_stages());

  // Show the chosen partitioning.
  for (std::size_t d = 0; d < mix.size(); ++d) {
    std::printf("  %-13s: ", std::string(models::model_name(mix.mix[d])).c_str());
    for (const auto& seg : sim::extract_segments(plan.mapping.assignment(d)))
      std::printf("[L%zu-L%zu -> %s] ", seg.first + 1, seg.last + 1,
                  std::string(device::component_name(seg.comp)).c_str());
    std::printf("\n");
  }

  // 5. Execute on the board simulator and compare with the GPU baseline.
  auto baseline = sched::AllOnScheduler::gpu_baseline(zoo);
  const auto nets = mix.resolve(zoo);
  const double t_omni =
      board.simulate(nets, plan.mapping).avg_throughput;
  const double t_base =
      board.simulate(nets, baseline.schedule(mix).mapping).avg_throughput;
  std::printf("\nthroughput T: OmniBoost %.3f inf/s vs GPU-only %.3f inf/s "
              "(x%.2f)\n",
              t_omni, t_base, t_omni / t_base);
  return 0;
}
