#pragma once
/// \file bench_common.hpp
/// Shared experiment context for the bench harness: builds the simulated
/// HiKey970, the model zoo, the embedding tensor, and (on demand) a trained
/// throughput estimator with the paper's design-time settings (500 random
/// workloads, 400/100 split, L1 loss, 100 epochs).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>

#include "core/dataset.hpp"
#include "core/omniboost.hpp"
#include "nn/loss.hpp"
#include "sched/baseline.hpp"
#include "sched/ga.hpp"
#include "sched/mosaic.hpp"
#include "sim/analytic.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

namespace omniboost::bench {

/// True when OMNIBOOST_BENCH_SMOKE is set non-empty (tools/run_tier1.sh
/// --bench-smoke): drivers shrink their campaigns to a seconds-not-minutes
/// budget whose only job is to prove every driver still builds, runs end to
/// end, and emits its tables. Smoke numbers are NOT paper reproductions.
inline bool smoke() {
  const char* s = std::getenv("OMNIBOOST_BENCH_SMOKE");
  return s != nullptr && *s != '\0';
}

/// Campaign knob: \p full for real runs, \p tiny under --bench-smoke.
inline std::size_t scaled(std::size_t full, std::size_t tiny) {
  return smoke() ? tiny : full;
}

/// Everything an experiment needs, built once per binary.
class Context {
 public:
  Context()
      : device_(device::make_hikey970()),
        cost_(device_),
        embedding_(zoo_, cost_),
        board_(device_) {}

  const models::ModelZoo& zoo() const { return zoo_; }
  const device::DeviceSpec& device() const { return device_; }
  const device::CostModel& cost() const { return cost_; }
  const core::EmbeddingTensor& embedding() const { return embedding_; }
  const sim::DesSimulator& board() const { return board_; }

  /// Trains the estimator for the scheduling experiments; returns the loss
  /// history. Idempotent — subsequent calls reuse the model.
  ///
  /// Default campaign: 1500 workloads (3x the paper's 500). The simulated
  /// board's throughput surface needs the larger design-time campaign to
  /// reach the estimator accuracy the paper reports from real-board data;
  /// EXPERIMENTS.md documents the deviation. Fig. 4 reproduces the paper's
  /// exact 500/400/100 training by passing explicit arguments.
  nn::TrainHistory train_estimator(std::size_t samples = 1500,
                                   std::size_t val_count = 300,
                                   std::size_t epochs = 100,
                                   std::uint64_t seed = 42) {
    if (estimator_) return history_;
    // The OMNIBOOST_ESTIMATOR_CACHE environment variable points at a weight
    // file reused across bench binaries (the design-time/run-time split:
    // train once, deploy everywhere). Only the default campaign is cached —
    // explicit-parameter callers (Fig. 4) always train and return a real
    // loss history.
    const bool default_campaign =
        samples == 1500 && val_count == 300 && epochs == 100 && seed == 42;
    if (default_campaign && smoke()) {
      // Tiny throwaway campaign.
      samples = 80;
      val_count = 20;
      epochs = 3;
    }
    const char* cache_env = std::getenv("OMNIBOOST_ESTIMATOR_CACHE");
    std::string cache_path = cache_env != nullptr ? cache_env : "";
    // Smoke weights are cached (so one --bench-smoke training serves all 15
    // drivers) but under a distinct file: the cache carries no campaign
    // fingerprint, so a throwaway 80-sample model must never be written to —
    // or silently loaded from — the real campaign's path.
    if (smoke() && !cache_path.empty()) cache_path += ".smoke";
    const bool use_cache = !cache_path.empty() && default_campaign;
    if (use_cache) {
      std::ifstream probe(cache_path, std::ios::binary);
      if (probe) {
        estimator_ = std::make_shared<const core::ThroughputEstimator>(
            core::ThroughputEstimator::load(probe));
        return history_;  // empty: no training happened
      }
    }
    core::DatasetConfig dc;
    dc.samples = samples;
    dc.seed = seed;
    const core::SampleSet data =
        core::generate_dataset(zoo_, embedding_, board_, dc);
    auto est = std::make_shared<core::ThroughputEstimator>(
        embedding_.models_dim(), embedding_.layers_dim());
    nn::L1Loss l1;
    nn::TrainConfig tc;
    tc.epochs = epochs;
    history_ = est->fit(data, val_count, l1, tc);
    if (use_cache) est->save_file(cache_path);
    estimator_ = est;
    return history_;
  }

  std::shared_ptr<const core::ThroughputEstimator> estimator() {
    train_estimator();
    return estimator_;
  }

  /// Measured average throughput T of a mapping on the simulated board.
  double measure(const workload::Workload& w, const sim::Mapping& m) const {
    return board_.simulate(w.resolve(zoo_), m).avg_throughput;
  }

 private:
  models::ModelZoo zoo_;
  device::DeviceSpec device_;
  device::CostModel cost_;
  core::EmbeddingTensor embedding_;
  sim::DesSimulator board_;
  std::shared_ptr<const core::ThroughputEstimator> estimator_;
  nn::TrainHistory history_;
};

/// Machine-readable export: writes \p t as `BENCH_<name>.json` under
/// `$OMNIBOOST_BENCH_JSON_DIR`. A no-op when the variable is unset, so
/// default runs stay text-only. Cells that parse fully as numbers are
/// emitted as JSON numbers; everything else as strings.
inline void emit_json(const std::string& name, const util::Table& t) {
  const char* dir = std::getenv("OMNIBOOST_BENCH_JSON_DIR");
  if (dir == nullptr || *dir == '\0') return;
  util::Json rows = util::Json::array();
  for (const auto& row : t.data()) {
    util::Json obj = util::Json::object();
    for (std::size_t i = 0; i < row.size(); ++i) {
      const std::string& cell = row[i];
      char* end = nullptr;
      const double v = std::strtod(cell.c_str(), &end);
      // Json::number rejects non-finite values; "inf"/"nan" cells stay strings.
      if (!cell.empty() && end == cell.c_str() + cell.size() &&
          std::isfinite(v)) {
        obj.set(t.header()[i], util::Json::number(v));
      } else {
        obj.set(t.header()[i], util::Json::string(cell));
      }
    }
    rows.push_back(std::move(obj));
  }
  util::Json doc = util::Json::object();
  doc.set("bench", util::Json::string(name));
  doc.set("columns", [&t] {
    util::Json cols = util::Json::array();
    for (const auto& h : t.header()) cols.push_back(util::Json::string(h));
    return cols;
  }());
  doc.set("rows", std::move(rows));
  // Per-column summary: mean/stddev/min/max/count over the table's ROWS
  // for every fully-numeric column, emitted for all drivers that publish
  // through bench::report. Note the semantics: this is cross-row spread
  // (useful when rows are homogeneous sweeps, e.g. per-mix results), NOT
  // run-to-run load variance — timing tables publish that as explicit
  // per-row "sigma" columns computed over their repeats.
  util::Json stats = util::Json::object();
  for (std::size_t col = 0; col < t.header().size(); ++col) {
    util::RunningStats rs;
    bool numeric = !t.data().empty();
    for (const auto& row : t.data()) {
      const std::string& cell = row[col];
      char* end = nullptr;
      const double v = std::strtod(cell.c_str(), &end);
      if (cell.empty() || end != cell.c_str() + cell.size() ||
          !std::isfinite(v)) {
        numeric = false;
        break;
      }
      rs.add(v);
    }
    if (!numeric) continue;
    util::Json s = util::Json::object();
    s.set("mean", util::Json::number(rs.mean()));
    s.set("stddev", util::Json::number(rs.stddev()));
    s.set("min", util::Json::number(rs.min()));
    s.set("max", util::Json::number(rs.max()));
    s.set("count", util::Json::number(static_cast<double>(rs.count())));
    stats.set(t.header()[col], std::move(s));
  }
  doc.set("column_stats", std::move(stats));
  const std::string path = std::string(dir) + "/BENCH_" + name + ".json";
  std::ofstream out(path);
  out << doc.dump(2) << '\n';
  out.flush();
  if (out) {
    std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "[bench] FAILED to write %s\n", path.c_str());
  }
}

/// The standard way to publish a result table: prints it to stdout AND
/// exports it as JSON (when enabled). Use this instead of a bare
/// Table::print so no table can silently miss the machine-readable export.
inline void report(const std::string& name, const util::Table& t) {
  t.print(std::cout);
  emit_json(name, t);
}

/// Prints a standard experiment banner.
inline void banner(const char* experiment, const char* paper_ref,
                   std::uint64_t seed) {
  std::printf("=== OmniBoost reproduction: %s ===\n", experiment);
  std::printf("paper reference: %s | substrate: simulated HiKey970 | seed: %llu\n\n",
              paper_ref, static_cast<unsigned long long>(seed));
}

}  // namespace omniboost::bench
