/// \file bench_ablation_exploration.cpp
/// Ablation A6 (DESIGN.md): sensitivity of the MCTS to its two search
/// hyper-parameters — the UCT exploration constant and the decision
/// extraction strategy (paper Fig. 2 step 8, "mapping with highest
/// reward"). Rewards inside the search are min-max normalized, so the
/// constant is scale-free; the paper's sqrt(2) default should sit on a
/// plateau rather than a knife edge.

#include "bench_common.hpp"

using namespace omniboost;

namespace {

double run_config(bench::Context& ctx, const std::vector<workload::Workload>& mixes,
                  double exploration, core::MctsExtraction extraction,
                  std::uint64_t seed) {
  core::OmniBoostConfig cfg;
  cfg.mcts.budget = 500;
  cfg.mcts.exploration = exploration;
  cfg.mcts.extraction = extraction;
  cfg.mcts.seed = seed;
  core::OmniBoostScheduler omni(ctx.zoo(), ctx.embedding(), ctx.estimator(),
                                cfg);
  double sum = 0.0;
  for (const auto& w : mixes) {
    const sim::Mapping all_gpu = sim::Mapping::all_on(
        w.layer_counts(ctx.zoo()), device::ComponentId::kGpu);
    sum += ctx.measure(w, omni.schedule(w).mapping) /
           ctx.measure(w, all_gpu);
  }
  return sum / static_cast<double>(mixes.size());
}

}  // namespace

int main() {
  constexpr std::uint64_t kSeed = 23;
  bench::banner("Ablation A6 — MCTS exploration constant and extraction",
                "Section IV-C (UCT configuration)", kSeed);

  bench::Context ctx;
  std::printf("training the throughput estimator (calibrated campaign, see EXPERIMENTS.md)...\n\n");
  ctx.train_estimator();

  util::Rng rng(kSeed);
  std::vector<workload::Workload> mixes;
  for (int i = 0; i < 4; ++i) mixes.push_back(workload::random_mix(rng, 4));

  std::printf("--- UCT exploration constant sweep (4-DNN mixes, budget 500, "
              "global-argmax extraction, normalized to all-on-GPU) ---\n");
  util::Table sweep({"exploration c", "avg normalized T"});
  for (const double c : {0.25, 0.7071, 1.4142, 2.8284, 5.6569}) {
    sweep.add_row({util::fmt(c, 4),
                   util::fmt(run_config(ctx, mixes, c,
                                        core::MctsExtraction::kGlobalArgmax,
                                        kSeed),
                             3)});
  }
  bench::report("ablation_exploration_sweep", sweep);

  std::printf("\n--- decision extraction strategies (c = sqrt(2)) ---\n");
  util::Table ext({"extraction", "avg normalized T"});
  ext.add_row({"global argmax (paper step 8)",
               util::fmt(run_config(ctx, mixes, 1.4142,
                                    core::MctsExtraction::kGlobalArgmax, kSeed),
                         3)});
  ext.add_row({"elite descent",
               util::fmt(run_config(ctx, mixes, 1.4142,
                                    core::MctsExtraction::kEliteDescent, kSeed),
                         3)});
  ext.add_row({"elite node",
               util::fmt(run_config(ctx, mixes, 1.4142,
                                    core::MctsExtraction::kEliteNode, kSeed),
                         3)});
  bench::report("ablation_exploration_extraction", ext);

  std::printf("\npaper check: quality is flat across a wide exploration "
              "band (normalized rewards) and the paper's global-argmax "
              "extraction is not dominated\n");
  return 0;
}
