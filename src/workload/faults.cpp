#include "workload/faults.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace omniboost::workload {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("FaultProcess: " + what);
}

void validate(const FaultProcess& p) {
  if (!(std::isfinite(p.mtbf_s) && p.mtbf_s > 0.0))
    fail("mtbf_s must be finite and > 0");
  if (!(std::isfinite(p.mttr_s) && p.mttr_s > 0.0))
    fail("mttr_s must be finite and > 0");
  if (!(std::isfinite(p.throttle_fraction) && p.throttle_fraction >= 0.0 &&
        p.throttle_fraction <= 1.0))
    fail("throttle_fraction must be in [0, 1]");
  if (p.throttle_fraction > 0.0) {
    if (!(std::isfinite(p.throttle_min) && p.throttle_min > 0.0 &&
          std::isfinite(p.throttle_max) && p.throttle_max >= p.throttle_min &&
          p.throttle_max <= 1.0))
      fail("throttle band requires 0 < throttle_min <= throttle_max <= 1");
  }
}

/// Exponential draw with the scenario generator's exact idiom:
/// mean * -log1p(-u), u in [0, 1) — never infinite, zero only at u == 0.
double exponential(util::Rng& rng, double mean) {
  return mean * -std::log1p(-rng.uniform());
}

}  // namespace

std::vector<ScenarioEvent> sample_fault_events(const FaultProcess& p,
                                               std::size_t boards,
                                               double horizon_s,
                                               std::uint64_t seed) {
  validate(p);
  if (!(std::isfinite(horizon_s) && horizon_s >= 0.0))
    fail("horizon_s must be finite and >= 0");

  std::vector<ScenarioEvent> events;
  for (std::size_t b = 0; b < boards; ++b) {
    util::Rng rng(util::fork_stream(seed, b));
    double t = 0.0;
    for (;;) {
      t += exponential(rng, p.mtbf_s);  // healthy dwell
      if (t > horizon_s) break;
      ScenarioEvent onset;
      onset.time_s = t;
      onset.board = b;
      // Guarded throttle coin: a 0 fraction consumes no draws, so fail-only
      // processes keep their event streams bit-identical.
      if (p.throttle_fraction > 0.0 && rng.chance(p.throttle_fraction)) {
        onset.kind = ScenarioEventKind::kThrottleBoard;
        onset.factor = rng.uniform(p.throttle_min, p.throttle_max);
      } else {
        onset.kind = ScenarioEventKind::kFailBoard;
      }
      events.push_back(onset);
      t += exponential(rng, p.mttr_s);  // repair dwell
      if (t > horizon_s) break;         // truncated cycle: stays degraded
      ScenarioEvent recover;
      recover.time_s = t;
      recover.kind = ScenarioEventKind::kRecoverBoard;
      recover.board = b;
      events.push_back(recover);
    }
  }
  // Per-board lists are time-ordered and appended in board order, so a
  // stable sort on time alone yields (time, board) order.
  std::stable_sort(events.begin(), events.end(),
                   [](const ScenarioEvent& a, const ScenarioEvent& b) {
                     return a.time_s < b.time_s;
                   });
  return events;
}

Scenario with_faults(const Scenario& base, const FaultProcess& p,
                     std::size_t boards, std::uint64_t seed) {
  const double horizon_s = base.empty() ? 0.0 : base.events().back().time_s;
  const std::vector<ScenarioEvent> faults =
      sample_fault_events(p, boards, horizon_s, seed);
  if (faults.empty()) return base;
  std::vector<ScenarioEvent> merged;
  merged.reserve(base.size() + faults.size());
  // std::merge keeps first-range elements first on ties: mix events precede
  // fault events at equal timestamps, so the arrive/depart replay is
  // untouched by the weave.
  std::merge(base.events().begin(), base.events().end(), faults.begin(),
             faults.end(), std::back_inserter(merged),
             [](const ScenarioEvent& a, const ScenarioEvent& b) {
               return a.time_s < b.time_s;
             });
  return Scenario(std::move(merged));
}

FaultProcess parse_fault_spec(const std::string& spec) {
  std::vector<std::string> parts;
  std::string::size_type pos = 0;
  for (;;) {
    const auto colon = spec.find(':', pos);
    if (colon == std::string::npos) {
      parts.push_back(spec.substr(pos));
      break;
    }
    parts.push_back(spec.substr(pos, colon - pos));
    pos = colon + 1;
  }

  const auto number = [&](const std::string& field,
                          const std::string& text) -> double {
    std::istringstream in(text);
    double value = 0.0;
    if (!(in >> value) || !in.eof() || !std::isfinite(value))
      fail("spec '" + spec + "': bad " + field + " '" + text + "'");
    return value;
  };
  const auto usage = [&]() {
    fail("spec '" + spec +
         "': mtbf:<s>:mttr:<s>[:throttle:<fraction>[:<min>:<max>]]");
  };

  FaultProcess p;
  if (parts.size() != 4 && parts.size() != 6 && parts.size() != 8) usage();
  if (parts[0] != "mtbf" || parts[2] != "mttr") usage();
  p.mtbf_s = number("mtbf", parts[1]);
  p.mttr_s = number("mttr", parts[3]);
  if (parts.size() >= 6) {
    if (parts[4] != "throttle") usage();
    p.throttle_fraction = number("throttle fraction", parts[5]);
  }
  if (parts.size() == 8) {
    p.throttle_min = number("throttle min", parts[6]);
    p.throttle_max = number("throttle max", parts[7]);
  }
  validate(p);
  return p;
}

std::string describe(const FaultProcess& p) {
  std::ostringstream out;
  out << "faults(mtbf " << p.mtbf_s << " s, mttr " << p.mttr_s << " s";
  if (p.throttle_fraction > 0.0)
    out << ", throttle " << p.throttle_fraction * 100.0 << "% ["
        << p.throttle_min << ", " << p.throttle_max << "]";
  out << ")";
  return out.str();
}

}  // namespace omniboost::workload
