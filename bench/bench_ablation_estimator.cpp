/// \file bench_ablation_estimator.cpp
/// Ablation A2 (DESIGN.md): what the evaluator quality buys. The identical
/// MCTS (budget 500, depth 100, stage limit 3) is driven by four different
/// mapping evaluators:
///   * the paper's trained CNN estimator;
///   * a MOSAIC-style linear probe (per-layer linear latency, no contention);
///   * the analytic steady-state model (contention-aware, queue-free);
///   * the DES oracle (ground truth — an upper bound no deployable system
///     has, since it would mean measuring every candidate on the board).

#include "bench_common.hpp"

using namespace omniboost;

int main() {
  constexpr std::uint64_t kSeed = 33;
  bench::banner("Ablation A2 — evaluator quality",
                "Section IV-B (estimator role)", kSeed);

  bench::Context ctx;
  ctx.train_estimator();

  util::Rng rng(kSeed);
  std::vector<workload::Workload> mixes;
  for (int i = 0; i < 3; ++i) mixes.push_back(workload::random_mix(rng, 4));

  auto baseline = sched::AllOnScheduler::gpu_baseline(ctx.zoo());
  sched::MosaicScheduler linear_source(ctx.zoo(), ctx.device());
  sim::AnalyticModel analytic(ctx.device());

  util::Table t({"evaluator", "avg normalized T", "note"});

  const auto run = [&](const std::string& name,
                       const std::function<core::MappingEvaluator(
                           const workload::Workload&)>& make_eval,
                       const std::string& note) {
    double norm = 0.0;
    for (const auto& w : mixes) {
      core::MctsConfig mc;
      mc.budget = 500;
      core::MctsScheduler sched(name, ctx.zoo(), make_eval(w), mc);
      const double tb = ctx.measure(w, baseline.schedule(w).mapping);
      norm += ctx.measure(w, sched.schedule(w).mapping) / tb;
    }
    t.add_row({name, util::fmt(norm / 3.0, 2), note});
  };

  // CNN estimator (the production configuration, via OmniBoostScheduler so
  // the light-first search ordering is included).
  {
    core::OmniBoostScheduler omni(ctx.zoo(), ctx.embedding(),
                                  ctx.estimator());
    double norm = 0.0;
    for (const auto& w : mixes) {
      const double tb = ctx.measure(w, baseline.schedule(w).mapping);
      norm += ctx.measure(w, omni.schedule(w).mapping) / tb;
    }
    t.add_row({"CNN estimator (OmniBoost)", util::fmt(norm / 3.0, 2),
               "paper configuration"});
  }

  run("linear probe",
      [&](const workload::Workload& w) -> core::MappingEvaluator {
        const auto nets = w.resolve(ctx.zoo());
        return [&, nets](const sim::Mapping& m) {
          // Contention-blind: per-DNN rate from summed linear layer times.
          double sum = 0.0;
          for (std::size_t i = 0; i < nets.size(); ++i) {
            double time = 0.0;
            const auto& a = m.assignment(i);
            for (std::size_t l = 0; l < a.size(); ++l)
              time += linear_source.component_model(a[l]).predict(
                  nets[i]->layers[l]);
            sum += 1.0 / time;
          }
          return sum / static_cast<double>(nets.size());
        };
      },
      "MOSAIC-style, contention-blind");

  run("analytic model",
      [&](const workload::Workload& w) -> core::MappingEvaluator {
        const auto nets = w.resolve(ctx.zoo());
        return [&, nets](const sim::Mapping& m) {
          return analytic.evaluate(nets, m).avg_throughput;
        };
      },
      "contention-aware closed form");

  run("DES oracle",
      [&](const workload::Workload& w) -> core::MappingEvaluator {
        const auto nets = w.resolve(ctx.zoo());
        return [&, nets](const sim::Mapping& m) {
          return ctx.board().simulate(nets, m).avg_throughput;
        };
      },
      "ground truth (not deployable)");

  bench::report("ablation_estimator", t);
  std::printf("\npaper check: the oracles bound what a perfect estimator "
              "would achieve; the CNN tracks their ranking but pays a "
              "sample-efficiency gap (the cost of learning the board), while "
              "the contention-blind probe collapses toward MOSAIC-like "
              "quality\n");
  return 0;
}
