#include <cmath>

#include "nn/layers.hpp"
#include "util/require.hpp"

namespace omniboost::nn {

BatchNorm2d::BatchNorm2d(std::size_t channels, float eps, float momentum)
    : channels_(channels),
      eps_(eps),
      momentum_(momentum),
      gamma_({channels}),
      beta_({channels}),
      running_mean_({channels}),
      running_var_({channels}, 1.0f) {
  OB_REQUIRE(channels > 0, "BatchNorm2d: channels must be positive");
  gamma_.value.fill(1.0f);
}

std::vector<Param*> BatchNorm2d::params() { return {&gamma_, &beta_}; }

void BatchNorm2d::init(util::Rng& /*rng*/) {
  gamma_.value.fill(1.0f);
  beta_.value.zero();
  running_mean_.zero();
  running_var_.fill(1.0f);
}

Tensor BatchNorm2d::forward(const Tensor& x) {
  OB_REQUIRE(x.rank() == 4, "BatchNorm2d: input must be NCHW");
  OB_REQUIRE(x.extent(1) == channels_, "BatchNorm2d: channel mismatch");
  const std::size_t n = x.extent(0), h = x.extent(2), w = x.extent(3);
  const std::size_t plane = h * w;
  const std::size_t count = n * plane;

  Tensor y(x.shape());
  const float* xd = x.data();
  float* yd = y.data();

  if (training_) {
    OB_REQUIRE(count > 1, "BatchNorm2d: training batch too small");
    xhat_ = Tensor(x.shape());
    inv_std_ = Tensor({channels_});
    batch_count_ = count;

    for (std::size_t c = 0; c < channels_; ++c) {
      double sum = 0.0, sq = 0.0;
      for (std::size_t b = 0; b < n; ++b) {
        const float* p = xd + ((b * channels_ + c) * plane);
        for (std::size_t i = 0; i < plane; ++i) {
          sum += p[i];
          sq += static_cast<double>(p[i]) * p[i];
        }
      }
      const double mean = sum / static_cast<double>(count);
      const double var =
          std::max(sq / static_cast<double>(count) - mean * mean, 0.0);
      const float istd = static_cast<float>(1.0 / std::sqrt(var + eps_));
      inv_std_[c] = istd;

      running_mean_[c] = (1.0f - momentum_) * running_mean_[c] +
                         momentum_ * static_cast<float>(mean);
      running_var_[c] = (1.0f - momentum_) * running_var_[c] +
                        momentum_ * static_cast<float>(var);

      const float g = gamma_.value[c], bta = beta_.value[c];
      float* xh = xhat_.data();
      for (std::size_t b = 0; b < n; ++b) {
        const std::size_t base = (b * channels_ + c) * plane;
        for (std::size_t i = 0; i < plane; ++i) {
          const float xn =
              (xd[base + i] - static_cast<float>(mean)) * istd;
          xh[base + i] = xn;
          yd[base + i] = g * xn + bta;
        }
      }
    }
  } else {
    for (std::size_t c = 0; c < channels_; ++c) {
      const float mean = running_mean_[c];
      const float istd = 1.0f / std::sqrt(running_var_[c] + eps_);
      const float g = gamma_.value[c], bta = beta_.value[c];
      for (std::size_t b = 0; b < n; ++b) {
        const std::size_t base = (b * channels_ + c) * plane;
        for (std::size_t i = 0; i < plane; ++i)
          yd[base + i] = g * (xd[base + i] - mean) * istd + bta;
      }
    }
  }
  return y;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  OB_REQUIRE(!xhat_.empty(), "BatchNorm2d::backward before training forward");
  OB_REQUIRE(grad_out.shape() == xhat_.shape(),
             "BatchNorm2d::backward: grad shape mismatch");
  const std::size_t n = grad_out.extent(0);
  const std::size_t plane = grad_out.extent(2) * grad_out.extent(3);
  const auto m = static_cast<float>(batch_count_);

  Tensor gx(grad_out.shape());
  const float* gd = grad_out.data();
  const float* xh = xhat_.data();
  float* gxd = gx.data();

  for (std::size_t c = 0; c < channels_; ++c) {
    // Standard BN backward:
    // dx = gamma * istd / m * (m*dy - sum(dy) - xhat * sum(dy*xhat))
    double sum_dy = 0.0, sum_dyxh = 0.0;
    for (std::size_t b = 0; b < n; ++b) {
      const std::size_t base = (b * channels_ + c) * plane;
      for (std::size_t i = 0; i < plane; ++i) {
        sum_dy += gd[base + i];
        sum_dyxh += static_cast<double>(gd[base + i]) * xh[base + i];
      }
    }
    gamma_.grad[c] += static_cast<float>(sum_dyxh);
    beta_.grad[c] += static_cast<float>(sum_dy);

    const float k = gamma_.value[c] * inv_std_[c] / m;
    const auto sdy = static_cast<float>(sum_dy);
    const auto sdyxh = static_cast<float>(sum_dyxh);
    for (std::size_t b = 0; b < n; ++b) {
      const std::size_t base = (b * channels_ + c) * plane;
      for (std::size_t i = 0; i < plane; ++i)
        gxd[base + i] =
            k * (m * gd[base + i] - sdy - xh[base + i] * sdyxh);
    }
  }
  return gx;
}

}  // namespace omniboost::nn
