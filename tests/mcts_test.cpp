// The MCTS scheduler core: constraint handling, budget accounting, search
// quality on crafted evaluators, determinism.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/mcts.hpp"

namespace {

using namespace omniboost;
using core::MappingEvaluator;
using core::Mcts;
using core::MctsConfig;
using core::MctsResult;
using sim::ComponentId;
using sim::Mapping;

constexpr auto G = ComponentId::kGpu;
constexpr auto B = ComponentId::kBigCpu;

/// Counts layers mapped to a component across the whole mapping.
std::size_t count_on(const Mapping& m, ComponentId c) {
  std::size_t n = 0;
  for (const auto& a : m.assignments())
    for (ComponentId x : a) n += x == c;
  return n;
}

TEST(Mcts, ValidatesArguments) {
  const MappingEvaluator ok = [](const Mapping&) { return 0.0; };
  EXPECT_THROW(Mcts({}, ok), std::invalid_argument);
  EXPECT_THROW(Mcts({0}, ok), std::invalid_argument);
  EXPECT_THROW(Mcts({3}, MappingEvaluator{}), std::invalid_argument);
  EXPECT_THROW(Mcts({3}, core::BatchMappingEvaluator{}),
               std::invalid_argument);
  MctsConfig bad;
  bad.budget = 0;
  EXPECT_THROW(Mcts({3}, ok, bad), std::invalid_argument);
}

TEST(Mcts, BudgetEqualsEvaluationsPlusCacheHits) {
  MctsConfig cfg;
  cfg.budget = 137;
  Mcts search({5, 7}, [](const Mapping&) { return 1.0; }, cfg);
  const MctsResult r = search.search();
  EXPECT_EQ(r.iterations, 137u);
  EXPECT_EQ(r.evaluations + r.cache_hits, 137u);
  EXPECT_GT(r.tree_nodes, 1u);

  // With the memo disabled every rollout pays an evaluator call — the
  // pre-memo budget accounting.
  MctsConfig uncached = cfg;
  uncached.cache = false;
  Mcts plain({5, 7}, [](const Mapping&) { return 1.0; }, uncached);
  const MctsResult p = plain.search();
  EXPECT_EQ(p.evaluations, 137u);
  EXPECT_EQ(p.cache_hits, 0u);
}

TEST(Mcts, CacheNeverChangesTheDecision) {
  // The memo replays the evaluator's exact doubles, so the search trajectory
  // — and therefore the decision — is bit-identical with the cache on or
  // off; only the accounting moves between evaluations and cache_hits.
  const MappingEvaluator eval = [](const Mapping& m) {
    return static_cast<double>(count_on(m, B)) -
           0.3 * static_cast<double>(m.max_stages());
  };
  MctsConfig cached;
  cached.budget = 220;
  cached.seed = 21;
  MctsConfig uncached = cached;
  uncached.cache = false;
  const MctsResult with = Mcts({7, 4}, eval, cached).search();
  const MctsResult without = Mcts({7, 4}, eval, uncached).search();
  EXPECT_EQ(with.best_mapping, without.best_mapping);
  EXPECT_DOUBLE_EQ(with.best_reward, without.best_reward);
  EXPECT_EQ(with.tree_nodes, without.tree_nodes);
  // A 220-rollout search over an 11-decision space revisits mappings.
  EXPECT_GT(with.cache_hits, 0u);
  EXPECT_LT(with.evaluations, without.evaluations);
}

TEST(Mcts, BatchedWavesSpendTheSameBudget) {
  std::size_t calls = 0, scored = 0, largest = 0;
  MctsConfig cfg;
  cfg.budget = 120;
  cfg.batch_size = 16;
  const core::BatchMappingEvaluator eval =
      [&](const std::vector<Mapping>& ms) {
        ++calls;
        scored += ms.size();
        largest = std::max(largest, ms.size());
        return std::vector<double>(ms.size(), 1.0);
      };
  const MctsResult r = Mcts({6, 5}, eval, cfg).search();
  EXPECT_EQ(r.iterations, 120u);
  EXPECT_EQ(r.evaluations, scored);
  EXPECT_EQ(r.evaluations + r.cache_hits, 120u);
  EXPECT_LE(largest, 16u);
  EXPECT_GT(largest, 1u);  // waves genuinely batch several leaves
  EXPECT_LE(calls, (120u + 15u) / 16u);
  EXPECT_TRUE(r.best_mapping.within_stage_limit(3));
}

TEST(Mcts, BatchedSearchIsDeterministic) {
  const core::BatchMappingEvaluator eval =
      [](const std::vector<Mapping>& ms) {
        std::vector<double> out;
        for (const Mapping& m : ms)
          out.push_back(static_cast<double>(count_on(m, B)));
        return out;
      };
  MctsConfig cfg;
  cfg.budget = 150;
  cfg.batch_size = 8;
  cfg.seed = 33;
  const MctsResult a = Mcts({9, 5}, eval, cfg).search();
  const MctsResult b = Mcts({9, 5}, eval, cfg).search();
  EXPECT_EQ(a.best_mapping, b.best_mapping);
  EXPECT_DOUBLE_EQ(a.best_reward, b.best_reward);
  EXPECT_EQ(a.tree_nodes, b.tree_nodes);
}

TEST(Mcts, FindsObviousOptimum) {
  // Reward = number of layers on the big CPU: optimum maps everything there.
  MctsConfig cfg;
  cfg.budget = 400;
  cfg.seed = 5;
  Mcts search({6, 4},
              [](const Mapping& m) {
                return static_cast<double>(count_on(m, B));
              },
              cfg);
  const MctsResult r = search.search();
  // The elite extraction is average-robust rather than argmax-greedy, so
  // allow one stray layer on a 10-decision problem.
  EXPECT_GE(count_on(r.best_mapping, B), 9u);
  EXPECT_GE(r.best_reward, 9.0);
}

TEST(Mcts, RespectsStageLimitInEveryRollout) {
  MctsConfig cfg;
  cfg.budget = 300;
  cfg.stage_limit = 2;
  std::size_t violations = 0;
  Mcts search({12, 9},
              [&](const Mapping& m) {
                violations += !m.within_stage_limit(2);
                return 1.0;
              },
              cfg);
  const MctsResult r = search.search();
  EXPECT_EQ(violations, 0u);
  EXPECT_TRUE(r.best_mapping.within_stage_limit(2));
}

TEST(Mcts, StageLimitOneMeansWholeNetworkPlacement) {
  MctsConfig cfg;
  cfg.budget = 200;
  cfg.stage_limit = 1;
  Mcts search({8, 8},
              [](const Mapping& m) {
                return static_cast<double>(count_on(m, G));
              },
              cfg);
  const MctsResult r = search.search();
  for (std::size_t d = 0; d < 2; ++d)
    EXPECT_EQ(r.best_mapping.stages(d), 1u);
  EXPECT_EQ(count_on(r.best_mapping, G), 16u);
}

TEST(Mcts, DeterministicGivenSeed) {
  const MappingEvaluator eval = [](const Mapping& m) {
    return static_cast<double>(count_on(m, B)) -
           0.5 * static_cast<double>(m.max_stages());
  };
  MctsConfig cfg;
  cfg.budget = 150;
  cfg.seed = 77;
  const MctsResult a = Mcts({9, 5}, eval, cfg).search();
  const MctsResult b = Mcts({9, 5}, eval, cfg).search();
  EXPECT_EQ(a.best_mapping, b.best_mapping);
  EXPECT_EQ(a.best_reward, b.best_reward);
  cfg.seed = 78;
  const MctsResult c = Mcts({9, 5}, eval, cfg).search();
  // Different seed explores differently (rewards may or may not match, tree
  // sizes almost surely differ for this budget).
  EXPECT_TRUE(c.tree_nodes != a.tree_nodes || !(c.best_mapping == a.best_mapping));
}

TEST(Mcts, DepthCapStillProducesCompleteMappings) {
  MctsConfig cfg;
  cfg.budget = 100;
  cfg.max_depth = 4;  // far fewer than the 30 decisions
  Mcts search({15, 15}, [](const Mapping&) { return 1.0; }, cfg);
  const MctsResult r = search.search();
  EXPECT_EQ(r.best_mapping.num_dnns(), 2u);
  EXPECT_EQ(r.best_mapping.assignment(0).size(), 15u);
}

TEST(Mcts, PrefersHigherRewardRegion) {
  // Layers of DNN 0 on GPU are worth 3, everything else 1: the elite mapping
  // must put most of DNN 0 on the GPU.
  MctsConfig cfg;
  cfg.budget = 600;
  cfg.seed = 9;
  Mcts search({10, 10},
              [](const Mapping& m) {
                double r = 0.0;
                for (ComponentId c : m.assignment(0)) r += c == G ? 3.0 : 1.0;
                return r;
              },
              cfg);
  const MctsResult r = search.search();
  std::size_t gpu0 = 0;
  for (ComponentId c : r.best_mapping.assignment(0)) gpu0 += c == G;
  EXPECT_GE(gpu0, 8u);
}

TEST(Mcts, MoreBudgetNeverHurtsOnAverage) {
  // Statistical sanity: with a structured reward, budget 600 should beat
  // budget 30 across seeds.
  const MappingEvaluator eval = [](const Mapping& m) {
    double r = 0.0;
    for (const auto& a : m.assignments()) {
      for (std::size_t l = 0; l < a.size(); ++l)
        r += (l % 3 == static_cast<std::size_t>(a[l])) ? 1.0 : 0.0;
    }
    return r;
  };
  double small = 0.0, large = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    MctsConfig s;
    s.budget = 30;
    s.seed = seed;
    small += Mcts({11, 7}, eval, s).search().best_reward;
    MctsConfig l;
    l.budget = 600;
    l.seed = seed;
    large += Mcts({11, 7}, eval, l).search().best_reward;
  }
  EXPECT_GT(large, small);
}

TEST(Mcts, EliteRewardIsAchievedByReturnedMapping) {
  const MappingEvaluator eval = [](const Mapping& m) {
    return static_cast<double>(count_on(m, B));
  };
  MctsConfig cfg;
  cfg.budget = 250;
  const MctsResult r = Mcts({6, 6}, eval, cfg).search();
  EXPECT_DOUBLE_EQ(eval(r.best_mapping), r.best_reward);
}

}  // namespace
