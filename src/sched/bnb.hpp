#pragma once
/// \file bnb.hpp
/// Anytime-optimal reference scheduler: depth-first branch-and-bound over
/// per-layer device assignments against the closed-form analytic objective
/// (sim::AnalyticModel::evaluate(...).avg_throughput — the same function the
/// analytic evaluator factory exposes, so its optima are directly comparable
/// with ExhaustiveScheduler ground truth).
///
/// The search maximizes, so the roles are: the INCUMBENT (best complete
/// mapping found so far, seeded by GreedyScheduler) certifies a lower bound
/// on the optimum; the admissible relaxation (sim::RelaxedBound — every
/// uncommitted layer on its best device, contention-free) certifies an upper
/// bound on each subtree. A subtree whose bound cannot strictly beat the
/// incumbent is pruned, which preserves the optimal VALUE exactly.
///
/// Anytime contract: schedule() always returns a valid mapping. When the
/// wall-clock/node budget (BnbConfig::{timeout_ms, max_nodes}) expires the
/// incumbent is returned with proved_optimal=false and upper_bound equal to
/// the max of the incumbent and every unexplored subtree's bound — still a
/// certified interval containing the optimum. With an unexhausted budget
/// proved_optimal=true and lower_bound == upper_bound == expected_reward.

#include <string>

#include "core/scheduler.hpp"
#include "models/zoo.hpp"
#include "sched/reduce.hpp"
#include "sim/analytic.hpp"

namespace omniboost::sched {

/// Branch-and-bound controls.
struct BnbConfig {
  std::size_t stage_limit = 3;  ///< the paper's x = pipeline-stage cap
  /// Wall-clock budget in milliseconds; 0 = unlimited. Checked coarsely
  /// (every few dozen nodes), so overruns stay in the microsecond range.
  double timeout_ms = 0.0;
  std::size_t max_nodes = 0;  ///< node budget; 0 = unlimited
  /// Seed the incumbent with GreedyScheduler's mapping, guaranteeing the
  /// anytime result is never worse than Greedy. Off is useful only for
  /// order-agreement tests (first-in-canonical-order argmax).
  bool seed_incumbent = true;
  /// Run sched::reduce_search_space first and search the reduced space
  /// (dominance-pruned per-layer choices + symmetry-canonical branching).
  /// Optimal value is preserved either way; off searches the raw space.
  bool use_reduction = true;
};

/// The exact/anytime reference scheduler.
class BranchAndBoundScheduler final : public core::IScheduler {
 public:
  BranchAndBoundScheduler(std::string name, const models::ModelZoo& zoo,
                          const device::DeviceSpec& device,
                          BnbConfig config = {});

  std::string name() const override { return name_; }

  /// Runs the bounded depth-first search; see the anytime contract above.
  core::ScheduleResult schedule(const workload::Workload& w) override;

  /// schedule() with an extra incumbent candidate: \p seed (when non-null)
  /// is evaluated and adopted if it beats the greedy seed, so the anytime
  /// result is never worse than the seed mapping. This is the background
  /// re-search entry point — the serving daemon hands in the mapping
  /// currently installed on a board and gets back either a certified
  /// improvement or the seed itself. The seed's shape must match \p w
  /// (std::invalid_argument otherwise).
  core::ScheduleResult schedule_seeded(const workload::Workload& w,
                                       const sim::Mapping* seed);

 private:
  std::string name_;
  const models::ModelZoo* zoo_;
  sim::AnalyticModel model_;  ///< owns a DeviceSpec copy; non-copyable
  BnbConfig config_;
};

/// Outcome of one budgeted background refinement pass.
struct RefineResult {
  sim::Mapping mapping;         ///< best known: the seed or an improvement
  double objective = 0.0;       ///< analytic avg throughput of `mapping`
  double seed_objective = 0.0;  ///< analytic avg throughput of the seed
  bool improved = false;        ///< mapping strictly beats the seed
  bool proved_optimal = false;  ///< the search ran to exhaustion
  std::size_t nodes_expanded = 0;
};

/// One BnbConfig-budgeted refinement of \p seed for workload \p w on
/// \p device: runs BranchAndBoundScheduler::schedule_seeded and reports
/// whether the search strictly improved on the seed's analytic objective.
/// Pure — no shared state, safe to run on a background thread while the
/// caller keeps serving (the daemon's idle-time hook does exactly that).
RefineResult anytime_refine(const models::ModelZoo& zoo,
                            const device::DeviceSpec& device,
                            const workload::Workload& w,
                            const sim::Mapping& seed, const BnbConfig& config);

}  // namespace omniboost::sched
