#include "sched/ga.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "sched/reduce.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace omniboost::sched {

using device::ComponentId;
using device::kNumComponents;

namespace {

/// Flattened chromosome: all DNNs' layer assignments back to back.
struct Chromosome {
  std::vector<ComponentId> genes;
  double fitness = -std::numeric_limits<double>::infinity();
};

}  // namespace

GaScheduler::GaScheduler(const models::ModelZoo& zoo,
                         const device::DeviceSpec& device, GaConfig config)
    : zoo_(&zoo), board_(device), config_(config) {
  OB_REQUIRE(config_.population >= 4, "GaScheduler: population too small");
  OB_REQUIRE(config_.elitism < config_.population,
             "GaScheduler: elitism must leave room for offspring");
  OB_REQUIRE(config_.tournament >= 1, "GaScheduler: bad tournament size");
}

void GaScheduler::repair_stages(sim::Assignment& a, std::size_t max_stages) {
  OB_REQUIRE(max_stages >= 1, "repair_stages: bad limit");
  for (;;) {
    auto segs = sim::extract_segments(a);
    if (segs.size() <= max_stages) return;
    // Find the shortest segment and absorb it into a neighbour (prefer the
    // one whose component differs least often — here simply the longer one,
    // so the merge destroys as little structure as possible).
    std::size_t victim = 0;
    std::size_t victim_len = std::numeric_limits<std::size_t>::max();
    for (std::size_t s = 0; s < segs.size(); ++s) {
      const std::size_t len = segs[s].last - segs[s].first + 1;
      if (len < victim_len) {
        victim_len = len;
        victim = s;
      }
    }
    ComponentId absorb;
    if (victim == 0) {
      absorb = segs[1].comp;
    } else if (victim + 1 == segs.size()) {
      absorb = segs[victim - 1].comp;
    } else {
      const std::size_t left_len =
          segs[victim - 1].last - segs[victim - 1].first + 1;
      const std::size_t right_len =
          segs[victim + 1].last - segs[victim + 1].first + 1;
      absorb = left_len >= right_len ? segs[victim - 1].comp
                                     : segs[victim + 1].comp;
    }
    for (std::size_t l = segs[victim].first; l <= segs[victim].last; ++l)
      a[l] = absorb;
  }
}

core::ScheduleResult GaScheduler::schedule(const workload::Workload& w) {
  const auto start = std::chrono::steady_clock::now();
  util::Rng rng(config_.seed);

  const sim::NetworkList nets = w.resolve(*zoo_);
  const std::vector<std::size_t> counts = w.layer_counts(*zoo_);
  std::size_t total = 0;
  for (std::size_t c : counts) total += c;

  // Flattened per-gene choice lists when a reduction is installed; empty
  // otherwise (the bit-frozen default path makes no extra RNG draws).
  std::vector<const std::vector<ComponentId>*> gene_choices;
  if (config_.reduce != nullptr) {
    OB_REQUIRE(config_.reduce->allowed.size() == counts.size(),
               "GaScheduler: reduction/workload shape mismatch");
    gene_choices.reserve(total);
    for (std::size_t d = 0; d < counts.size(); ++d) {
      OB_REQUIRE(config_.reduce->allowed[d].size() == counts[d],
                 "GaScheduler: reduction layer-count mismatch");
      for (std::size_t l = 0; l < counts[d]; ++l)
        gene_choices.push_back(&config_.reduce->allowed[d][l]);
    }
  }
  const auto draw_gene = [&](std::size_t g) {
    const std::vector<ComponentId>& c = *gene_choices[g];
    return c[rng.below(c.size())];
  };

  core::ScheduleResult result;

  const auto unflatten = [&](const std::vector<ComponentId>& genes) {
    std::vector<sim::Assignment> per_dnn;
    per_dnn.reserve(counts.size());
    std::size_t off = 0;
    for (std::size_t c : counts) {
      sim::Assignment a(genes.begin() + static_cast<std::ptrdiff_t>(off),
                        genes.begin() + static_cast<std::ptrdiff_t>(off + c));
      repair_stages(a, config_.max_stages);
      per_dnn.push_back(std::move(a));
      off += c;
    }
    return sim::Mapping(std::move(per_dnn));
  };

  const auto evaluate = [&](Chromosome& ch) {
    const sim::Mapping m = unflatten(ch.genes);
    // One short on-board measurement: true throughput plus sampling noise.
    const double measured = board_.simulate(nets, m).avg_throughput;
    ch.fitness =
        measured * std::max(0.0, 1.0 + config_.fitness_noise * rng.normal());
    ++result.evaluations;
    result.board_seconds += config_.board_seconds_per_eval;
  };

  // --- Initial population: random stage-limited mappings.
  std::vector<Chromosome> pop(config_.population);
  for (Chromosome& ch : pop) {
    ch.genes.reserve(total);
    for (std::size_t c : counts) {
      const sim::Assignment a =
          workload::random_assignment(rng, c, config_.max_stages);
      ch.genes.insert(ch.genes.end(), a.begin(), a.end());
    }
    if (!gene_choices.empty()) {
      // Resample genes the reduction disallows (stage damage is repaired by
      // the merge layer inside unflatten, as after crossover).
      for (std::size_t g = 0; g < total; ++g) {
        const std::vector<ComponentId>& c = *gene_choices[g];
        if (std::find(c.begin(), c.end(), ch.genes[g]) == c.end())
          ch.genes[g] = draw_gene(g);
      }
    }
    evaluate(ch);
  }

  const auto tournament_pick = [&]() -> const Chromosome& {
    const Chromosome* best = &pop[rng.below(pop.size())];
    for (std::size_t k = 1; k < config_.tournament; ++k) {
      const Chromosome& cand = pop[rng.below(pop.size())];
      if (cand.fitness > best->fitness) best = &cand;
    }
    return *best;
  };

  // --- Evolution loop ("retraining" per queried workload).
  for (std::size_t gen = 0; gen < config_.generations; ++gen) {
    std::sort(pop.begin(), pop.end(),
              [](const Chromosome& a, const Chromosome& b) {
                return a.fitness > b.fitness;
              });
    std::vector<Chromosome> next;
    next.reserve(pop.size());
    for (std::size_t e = 0; e < config_.elitism; ++e) next.push_back(pop[e]);

    while (next.size() < pop.size()) {
      Chromosome child;
      const Chromosome& pa = tournament_pick();
      const Chromosome& pb = tournament_pick();
      child.genes = pa.genes;
      if (rng.chance(config_.crossover_rate) && total > 1) {
        // One-point crossover; the cut may fall inside a DNN, creating the
        // extra pipeline stages the paper says damage elite chromosomes —
        // repaired by the merge layer inside unflatten().
        const std::size_t cut =
            1 + static_cast<std::size_t>(rng.below(total - 1));
        for (std::size_t g = cut; g < total; ++g)
          child.genes[g] = pb.genes[g];
      }
      for (std::size_t g = 0; g < total; ++g) {
        if (rng.chance(config_.mutation_rate))
          child.genes[g] =
              gene_choices.empty()
                  ? static_cast<ComponentId>(rng.below(kNumComponents))
                  : draw_gene(g);
      }
      evaluate(child);
      next.push_back(std::move(child));
    }
    pop = std::move(next);
  }

  const auto& best = *std::max_element(
      pop.begin(), pop.end(), [](const Chromosome& a, const Chromosome& b) {
        return a.fitness < b.fitness;
      });
  result.mapping = unflatten(best.genes);
  result.expected_reward = best.fitness;
  result.decision_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace omniboost::sched
