#pragma once
/// \file gantt.hpp
/// ASCII Gantt rendering of a recorded execution trace: one lane per
/// computing component, one character column per time bucket, stream index
/// as the glyph. Turns "the GPU is saturated and the CPUs idle" into
/// something a developer can see in a terminal.
///
///   GPU    |000011112222000011112222...|
///   big    |....1111........1111.......|
///   LITTLE |..........2222.............|

#include <string>

#include "sim/trace.hpp"

namespace omniboost::sim {

/// Rendering controls.
struct GanttConfig {
  std::size_t width = 72;      ///< character columns for the time axis
  bool include_warmup = false; ///< render from t=0 instead of the window start
};

/// Renders the trace's recorded events (requires simulate_traced(...,
/// record_events = true); throws if the trace has no events). Streams are
/// drawn as '0'..'9' then 'a'..'z'; idle time as '.'. When several events
/// share a bucket the one covering most of it wins.
std::string render_gantt(const ExecutionTrace& trace,
                         const GanttConfig& config = {});

}  // namespace omniboost::sim
