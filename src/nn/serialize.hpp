#pragma once
/// \file serialize.hpp
/// Binary save/load of Module parameters. The format is a self-describing
/// little-endian stream (magic + version + per-parameter shape and data), so
/// a trained estimator survives process restarts: train once at design time,
/// deploy the weight file with the run-time scheduler — exactly the paper's
/// design-time/run-time split.
///
/// Loading validates that the target module's parameter list matches the
/// stream (count, shapes) and throws on any mismatch; it never resizes
/// parameters.

#include <iosfwd>
#include <string>

#include "nn/module.hpp"

namespace omniboost::nn {

/// Stream format version written by save_params.
inline constexpr std::uint32_t kSerializeVersion = 1;

/// Writes all parameters of \p module to \p os. Throws std::runtime_error
/// on stream failure.
void save_params(Module& module, std::ostream& os);

/// Reads parameters from \p is into \p module. Throws std::runtime_error on
/// malformed input, version/shape mismatch, or stream failure.
void load_params(Module& module, std::istream& is);

/// File-path conveniences.
void save_params_file(Module& module, const std::string& path);
void load_params_file(Module& module, const std::string& path);

}  // namespace omniboost::nn
