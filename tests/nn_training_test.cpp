// Optimizers, dataset plumbing, and end-to-end convergence of the training
// loop on synthetic regression problems.

#include <gtest/gtest.h>

#include "nn/layers.hpp"
#include "nn/optim.hpp"
#include "nn/trainer.hpp"
#include "util/rng.hpp"

namespace {

using namespace omniboost::nn;
using omniboost::tensor::Tensor;
using omniboost::util::Rng;

TEST(Stack, ConcatenatesAlongNewBatchDim) {
  std::vector<Tensor> samples;
  samples.push_back(Tensor::from_data({2, 2}, {1, 2, 3, 4}));
  samples.push_back(Tensor::from_data({2, 2}, {5, 6, 7, 8}));
  const Tensor batch = stack(samples, {1, 0});
  EXPECT_EQ(batch.shape(), (omniboost::tensor::Shape{2, 2, 2}));
  EXPECT_FLOAT_EQ(batch.at({0, 0, 0}), 5.0f);
  EXPECT_FLOAT_EQ(batch.at({1, 1, 1}), 4.0f);
}

TEST(Stack, RejectsHeterogeneousShapes) {
  std::vector<Tensor> samples;
  samples.push_back(Tensor({2, 2}));
  samples.push_back(Tensor({3, 2}));
  EXPECT_THROW(stack(samples, {0, 1}), std::invalid_argument);
  EXPECT_THROW(stack(samples, {}), std::invalid_argument);
}

TEST(Dataset, SplitTail) {
  Dataset d;
  for (int i = 0; i < 10; ++i) {
    d.inputs.push_back(Tensor({1}, static_cast<float>(i)));
    d.targets.push_back(Tensor({1}, static_cast<float>(i)));
  }
  const auto [head, tail] = d.split_tail(3);
  EXPECT_EQ(head.size(), 7u);
  EXPECT_EQ(tail.size(), 3u);
  EXPECT_FLOAT_EQ(tail.inputs[0][0], 7.0f);
  EXPECT_THROW(d.split_tail(11), std::invalid_argument);
}

TEST(SGD, SingleStepMatchesHandComputation) {
  Param p({2});
  p.value[0] = 1.0f;
  p.value[1] = -1.0f;
  p.grad[0] = 0.5f;
  p.grad[1] = -0.25f;
  SGD opt({&p}, /*lr=*/0.1f);
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 1.0f - 0.1f * 0.5f);
  EXPECT_FLOAT_EQ(p.value[1], -1.0f + 0.1f * 0.25f);
}

TEST(SGD, MomentumAccumulates) {
  Param p({1});
  p.value[0] = 0.0f;
  SGD opt({&p}, 0.1f, /*momentum=*/0.9f);
  p.grad[0] = 1.0f;
  opt.step();  // v=1, x=-0.1
  p.grad[0] = 1.0f;
  opt.step();  // v=1.9, x=-0.29
  EXPECT_NEAR(p.value[0], -0.29f, 1e-6f);
}

TEST(Adam, FirstStepIsLrSized) {
  Param p({1});
  p.value[0] = 0.0f;
  Adam opt({&p}, 0.01f);
  p.grad[0] = 123.0f;  // magnitude shouldn't matter on step 1
  opt.step();
  EXPECT_NEAR(p.value[0], -0.01f, 1e-4f);
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize (x - 3)^2 by gradient descent.
  Param p({1});
  p.value[0] = -5.0f;
  Adam opt({&p}, 0.1f);
  for (int i = 0; i < 500; ++i) {
    p.grad[0] = 2.0f * (p.value[0] - 3.0f);
    opt.step();
  }
  EXPECT_NEAR(p.value[0], 3.0f, 1e-2f);
}

TEST(Optimizer, ZeroGradClears) {
  Param p({2});
  p.grad.fill(5.0f);
  SGD opt({&p}, 0.1f);
  opt.zero_grad();
  EXPECT_EQ(p.grad[0], 0.0f);
  EXPECT_EQ(p.grad[1], 0.0f);
}

TEST(Optimizer, RejectsEmptyOrNull) {
  EXPECT_THROW(SGD({}, 0.1f), std::invalid_argument);
  EXPECT_THROW(SGD({nullptr}, 0.1f), std::invalid_argument);
  Param p({1});
  EXPECT_THROW(SGD({&p}, 0.0f), std::invalid_argument);
}

/// Builds a linear regression dataset y = Wx + b with noise.
Dataset make_linear_dataset(std::size_t n, Rng& rng) {
  Dataset d;
  for (std::size_t i = 0; i < n; ++i) {
    Tensor x({4});
    for (std::size_t k = 0; k < 4; ++k)
      x[k] = static_cast<float>(rng.uniform(-1, 1));
    Tensor y({2});
    y[0] = 2.0f * x[0] - x[1] + 0.5f;
    y[1] = x[2] + 3.0f * x[3] - 1.0f;
    d.inputs.push_back(std::move(x));
    d.targets.push_back(std::move(y));
  }
  return d;
}

TEST(Trainer, LearnsLinearMap) {
  Rng rng(71);
  const Dataset train = make_linear_dataset(128, rng);
  const Dataset val = make_linear_dataset(32, rng);

  Linear model(4, 2);
  model.init(rng);
  MSELoss mse;
  TrainConfig cfg;
  cfg.epochs = 120;
  cfg.batch_size = 16;
  cfg.lr = 0.05f;
  cfg.weight_decay = 0.0f;
  const TrainHistory h = train_regression(model, mse, train, val, cfg);

  ASSERT_EQ(h.train_loss.size(), cfg.epochs);
  ASSERT_EQ(h.val_loss.size(), cfg.epochs);
  EXPECT_LT(h.val_loss.back(), 1e-3);
  EXPECT_LT(h.train_loss.back(), h.train_loss.front() * 0.05);
}

TEST(Trainer, LossDecreasesMonotonicallyOnAverage) {
  Rng rng(73);
  const Dataset train = make_linear_dataset(64, rng);
  Linear model(4, 2);
  model.init(rng);
  L1Loss l1;
  TrainConfig cfg;
  cfg.epochs = 40;
  cfg.lr = 0.02f;
  const TrainHistory h = train_regression(model, l1, train, {}, cfg);
  // Compare first and last quarter averages rather than strict monotonicity.
  double early = 0.0, late = 0.0;
  for (int i = 0; i < 10; ++i) {
    early += h.train_loss[static_cast<std::size_t>(i)];
    late += h.train_loss[h.train_loss.size() - 1 - static_cast<std::size_t>(i)];
  }
  EXPECT_LT(late, early * 0.5);
  EXPECT_TRUE(h.val_loss.empty());
}

TEST(Trainer, DeterministicGivenSeed) {
  Rng rng(79);
  const Dataset train = make_linear_dataset(32, rng);
  const auto run = [&](std::uint64_t seed) {
    Rng init(5);
    Linear model(4, 2);
    model.init(init);
    MSELoss mse;
    TrainConfig cfg;
    cfg.epochs = 10;
    cfg.seed = seed;
    return train_regression(model, mse, train, {}, cfg).train_loss;
  };
  EXPECT_EQ(run(1), run(1));
  EXPECT_NE(run(1), run(2));
}

TEST(Trainer, EvaluateRunsInEvalMode) {
  Rng rng(83);
  Dataset data = make_linear_dataset(8, rng);
  Sequential model;
  model.emplace<Linear>(4, 2);
  model.init(rng);
  MSELoss mse;
  const double loss = evaluate(model, mse, data);
  EXPECT_GT(loss, 0.0);
  EXPECT_EQ(evaluate(model, mse, Dataset{}), 0.0);
}

TEST(Trainer, RejectsEmptyTrainingSet) {
  Sequential model;
  model.emplace<Linear>(2, 1);
  MSELoss mse;
  EXPECT_THROW(train_regression(model, mse, Dataset{}, Dataset{}, {}),
               std::invalid_argument);
}

}  // namespace
