// End-to-end test of the live serving daemon: spawns `omniboost_cli serve
// --listen` as a subprocess, drives it over loopback TCP with the clause
// grammar, and checks (a) stream-conservation accounting, (b) that the
// saved live trace replays offline to the identical conservation line, and
// (c) that idle-time background re-search runs and installs improvements
// without disturbing stream accounting. Self-skips when the CLI binary was
// not built (OMNIBOOST_BUILD_TOOLS=OFF).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/net.hpp"

namespace {

using omniboost::util::TcpStream;
using omniboost::util::tcp_connect;

#ifndef OMNIBOOST_CLI_PATH
TEST(DaemonE2E, RequiresCliBinary) {
  GTEST_SKIP() << "omniboost_cli not built (OMNIBOOST_BUILD_TOOLS=OFF)";
}
#else

/// A daemon subprocess handle: launched via popen (stdout piped back so the
/// test can read the `listening on <port>` banner), torn down by a protocol
/// `shutdown` + pclose.
class DaemonProcess {
 public:
  explicit DaemonProcess(const std::string& extra_flags) {
    const std::string cmd = std::string(OMNIBOOST_CLI_PATH) +
                            " serve --listen 0 --scheduler greedy " +
                            extra_flags + " 2>&1";
    pipe_ = popen(cmd.c_str(), "r");
    if (pipe_ == nullptr) return;
    char line[256];
    while (std::fgets(line, sizeof(line), pipe_) != nullptr) {
      unsigned port = 0;
      if (std::sscanf(line, "listening on %u", &port) == 1) {
        port_ = static_cast<std::uint16_t>(port);
        return;
      }
    }
  }

  ~DaemonProcess() {
    if (pipe_ != nullptr) pclose(pipe_);
  }

  bool running() const { return pipe_ != nullptr && port_ != 0; }
  std::uint16_t port() const { return port_; }

  /// Sends `shutdown` and reaps the subprocess; returns its exit status.
  int shutdown() {
    TcpStream s = tcp_connect("127.0.0.1", port_);
    s.send_line("shutdown");
    std::string line;
    s.recv_line(&line, 5000);
    const int status = pclose(pipe_);
    pipe_ = nullptr;
    return status;
  }

 private:
  FILE* pipe_ = nullptr;
  std::uint16_t port_ = 0;
};

struct Reply {
  std::vector<std::string> body;
  bool ok = false;
  std::string error;
};

/// One command round-trip on a fresh connection (the daemon serves clients
/// sequentially and survives disconnects, so per-command connections also
/// exercise the reconnect path).
Reply command(std::uint16_t port, const std::string& line) {
  TcpStream s = tcp_connect("127.0.0.1", port);
  s.send_line(line);
  Reply r;
  std::string got;
  while (s.recv_line(&got, 10000) == TcpStream::RecvStatus::kLine) {
    if (got == "ok") {
      r.ok = true;
      return r;
    }
    if (got == "err" || got.rfind("err ", 0) == 0) {
      r.error = got;
      return r;
    }
    r.body.push_back(got);
  }
  r.error = "connection closed before terminator";
  return r;
}

/// Finds the `conservation: ...` line in a reply body / text blob.
std::string conservation_line(const std::vector<std::string>& lines) {
  for (const std::string& l : lines)
    if (l.rfind("conservation:", 0) == 0) return l;
  return "";
}

/// Parses `key=value` integers out of a status line.
std::size_t field(const std::string& line, const std::string& key) {
  const std::string needle = key + "=";
  const std::size_t at = line.find(needle);
  EXPECT_NE(at, std::string::npos) << key << " not in: " << line;
  if (at == std::string::npos) return 0;
  return static_cast<std::size_t>(
      std::strtoull(line.c_str() + at + needle.size(), nullptr, 10));
}

/// Runs the CLI offline on a saved trace and returns its conservation line.
std::string offline_conservation(const std::string& trace_path,
                                 const std::string& flags) {
  const std::string cmd = std::string(OMNIBOOST_CLI_PATH) +
                          " serve --scenario " + trace_path + " " + flags +
                          " --scheduler greedy 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  if (pipe == nullptr) return "";
  std::vector<std::string> lines;
  char buf[512];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
    std::string l(buf);
    while (!l.empty() && (l.back() == '\n' || l.back() == '\r')) l.pop_back();
    lines.push_back(l);
  }
  pclose(pipe);
  return conservation_line(lines);
}

TEST(DaemonE2E, LiveSessionConservesStreamsAndReplaysBitExact) {
  // x200 wall-clock pacing: a ~1s real session spans ~200 scenario seconds.
  DaemonProcess daemon("--boards 2 --time-scale 200");
  ASSERT_TRUE(daemon.running()) << "daemon failed to start";
  const std::uint16_t port = daemon.port();

  // A session touching every command class: arrivals (with and without
  // SLO), a board failure (forcing failover), recovery, and departures.
  for (const char* cmd :
       {"arrive MobileNet slo 100", "arrive AlexNet", "arrive ResNet-50",
        "fail board 0", "recover board 0", "depart AlexNet"}) {
    const Reply r = command(port, cmd);
    EXPECT_TRUE(r.ok) << cmd << " -> " << r.error;
  }

  // Malformed commands produce clean `err` replies on a live daemon — and
  // the daemon keeps serving afterwards.
  for (const char* bad :
       {"arrive NoSuchNet", "arrive MobileNet", "depart MobileNet extra",
        "fail board 99", "throttle board 0 2", "save-trace",
        "at 3 arrive VGG-19"}) {
    const Reply r = command(port, bad);
    EXPECT_FALSE(r.ok) << "accepted: " << bad;
    EXPECT_EQ(r.error.rfind("err", 0), 0u) << bad;
  }

  const Reply status = command(port, "status");
  ASSERT_TRUE(status.ok) << status.error;
  const std::string live = conservation_line(status.body);
  ASSERT_FALSE(live.empty());
  // Conservation: every admitted stream is served to departure, shed by a
  // failover, or still resident.
  EXPECT_EQ(field(live, "admitted"),
            field(live, "departures") + field(live, "shed") +
                field(live, "resident"));
  EXPECT_EQ(field(live, "offered"),
            field(live, "admitted") + field(live, "rejected"));
  EXPECT_EQ(field(live, "offered"), 3u);
  EXPECT_EQ(field(live, "departures"), 1u);

  const std::string trace = ::testing::TempDir() + "daemon_live.trace";
  const Reply saved = command(port, "save-trace " + trace);
  EXPECT_TRUE(saved.ok) << saved.error;
  EXPECT_EQ(daemon.shutdown(), 0);

  // Replay parity: the recorded trace through the offline Cluster replayer
  // (same binary, same scheduler/fleet flags) reproduces the daemon's
  // stream accounting verbatim. Greedy decisions depend only on the mix,
  // so live and offline decisions coincide epoch-for-epoch.
  const std::string offline = offline_conservation(trace, "--boards 2");
  EXPECT_EQ(offline, live);
}

TEST(DaemonE2E, IdleTimeBackgroundResearchInstallsImprovements) {
  // Two boards, two 2-DNN mixes where greedy leaves headroom, generous
  // slices: idle polling must run background BnB slices and install a
  // strictly-improving mapping — without touching stream accounting.
  DaemonProcess daemon("--boards 2 --time-scale 100 --background-slice-ms 50");
  ASSERT_TRUE(daemon.running()) << "daemon failed to start";
  const std::uint16_t port = daemon.port();

  for (const char* cmd : {"arrive VGG-19", "arrive ResNet-50",
                          "arrive AlexNet", "arrive MobileNet"}) {
    const Reply r = command(port, cmd);
    EXPECT_TRUE(r.ok) << cmd << " -> " << r.error;
  }

  // Poll `report` until a background search has been accounted (idle ticks
  // happen between commands; several hundred ms of real idle time is many
  // 50 ms slices).
  std::size_t searches = 0, improvements = 0;
  std::string live;
  for (int tries = 0; tries < 100; ++tries) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const Reply rep = command(port, "report");
    ASSERT_TRUE(rep.ok) << rep.error;
    searches = improvements = 0;
    for (const std::string& l : rep.body) {
      if (l.rfind("background:", 0) == 0) {
        searches = field(l, "searches");
        improvements = field(l, "improvements");
      }
    }
    live = conservation_line(rep.body);
    if (improvements >= 1) break;
  }
  EXPECT_GE(searches, 1u) << "no background search ran in ~5s of idle time";
  EXPECT_GE(improvements, 1u)
      << "background re-search never improved on greedy for VGG-19+ResNet-50";

  // Installs must not disturb stream accounting.
  ASSERT_FALSE(live.empty());
  EXPECT_EQ(field(live, "admitted"), 4u);
  EXPECT_EQ(field(live, "resident"), 4u);
  EXPECT_EQ(field(live, "departures"), 0u);

  // The saved trace contains ONLY the operator's events (installs are not
  // scenario events) — two arrivals, replayable offline.
  const std::string trace = ::testing::TempDir() + "daemon_bg.trace";
  EXPECT_TRUE(command(port, "save-trace " + trace).ok);
  EXPECT_EQ(daemon.shutdown(), 0);

  std::ifstream in(trace);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("arrive VGG-19"), std::string::npos);
  EXPECT_NE(text.find("arrive ResNet-50"), std::string::npos);
  EXPECT_EQ(text.find("install"), std::string::npos);
  const std::string offline = offline_conservation(trace, "--boards 2");
  EXPECT_EQ(offline, live);
}

#endif  // OMNIBOOST_CLI_PATH

}  // namespace
