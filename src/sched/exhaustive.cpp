#include "sched/exhaustive.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "util/require.hpp"

namespace omniboost::sched {

ExhaustiveScheduler::ExhaustiveScheduler(std::string name,
                                         const models::ModelZoo& zoo,
                                         WorkloadEvaluatorFactory evaluator,
                                         ExhaustiveConfig config)
    : name_(std::move(name)),
      zoo_(&zoo),
      factory_(std::move(evaluator)),
      config_(config) {
  OB_REQUIRE(factory_ != nullptr, "ExhaustiveScheduler: null factory");
}

core::ScheduleResult ExhaustiveScheduler::schedule(const workload::Workload& w) {
  OB_REQUIRE(w.size() > 0, "ExhaustiveScheduler: empty workload");
  const auto start = std::chrono::steady_clock::now();

  const double space = count_mappings(*zoo_, w, config_.stage_limit);
  OB_REQUIRE(space <= static_cast<double>(config_.max_mappings),
             "ExhaustiveScheduler: mapping space exceeds max_mappings");

  const core::MappingEvaluator evaluate = factory_(w);
  const std::vector<std::size_t> counts = w.layer_counts(*zoo_);

  if (config_.reduce != nullptr) {
    OB_REQUIRE(config_.reduce->allowed.size() == counts.size(),
               "ExhaustiveScheduler: reduction/workload shape mismatch");
  }

  std::vector<std::vector<sim::Assignment>> per_dnn;
  per_dnn.reserve(counts.size());
  for (std::size_t d = 0; d < counts.size(); ++d) {
    const LayerChoices* allowed =
        config_.reduce != nullptr ? &config_.reduce->allowed[d] : nullptr;
    per_dnn.push_back(enumerate_assignments(counts[d], config_.stage_limit,
                                            config_.max_mappings, allowed));
    OB_REQUIRE(!per_dnn.back().empty(),
               "ExhaustiveScheduler: reduction emptied a DNN's space");
  }

  core::ScheduleResult result;
  result.expected_reward = -std::numeric_limits<double>::infinity();

  // Odometer over the Cartesian product of per-DNN assignment lists, last
  // DNN fastest: combined with the canonical per-DNN list order this visits
  // whole mappings in exactly the flattened depth-first order the
  // branch-and-bound scheduler uses, so ties resolve identically.
  std::vector<std::size_t> idx(counts.size(), 0);
  for (;;) {
    std::vector<sim::Assignment> pick;
    pick.reserve(counts.size());
    for (std::size_t d = 0; d < counts.size(); ++d) {
      pick.push_back(per_dnn[d][idx[d]]);
    }
    sim::Mapping m(std::move(pick));
    const double r = evaluate(m);
    ++result.evaluations;
    if (r > result.expected_reward) {
      result.expected_reward = r;
      result.mapping = std::move(m);
    }

    std::size_t d = idx.size();
    bool done = true;
    while (d-- > 0) {
      if (++idx[d] < per_dnn[d].size()) {
        done = false;
        break;
      }
      idx[d] = 0;
    }
    if (done) break;
  }

  result.decision_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace omniboost::sched
