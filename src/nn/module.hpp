#pragma once
/// \file module.hpp
/// Minimal define-by-layer neural network framework with hand-written
/// backpropagation. This substitutes for the paper's PyTorch dependency: the
/// throughput estimator (a ~20k-parameter ResNet9-style CNN) is built, trained
/// and evaluated entirely on top of this module graph.
///
/// Conventions:
///  * Convolutional modules consume NCHW tensors, Linear consumes (N, F).
///  * The leading dimension N is a true batch axis: every layer computes
///    each sample independently in inference mode (BatchNorm switches to its
///    running statistics), so a batched forward over N stacked samples is
///    bit-identical to N single-sample forwards. The estimator's
///    predict_batch relies on this contract; tests/estimator_batch_test.cpp
///    pins it.
///  * forward() caches whatever backward() needs; backward(grad_out) returns
///    grad w.r.t. the input and *accumulates* parameter gradients. These
///    caches are per-layer-instance scratch — a module graph is cheap to run
///    but NOT thread-safe to share; give each thread its own instance (the
///    estimator-clone rule, docs/ARCHITECTURE.md).
///  * Parameter gradients are cleared explicitly via zero_grad().

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "nn/kernel.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace omniboost::nn {

using tensor::Tensor;

/// A learnable tensor with its gradient accumulator.
struct Param {
  Tensor value;
  Tensor grad;

  explicit Param(tensor::Shape shape)
      : value(shape), grad(std::move(shape)) {}
};

/// Base class of all network layers.
class Module {
 public:
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  virtual ~Module() = default;

  /// Computes the layer output, caching activations needed by backward().
  virtual Tensor forward(const Tensor& x) = 0;

  /// Given dLoss/dOutput, accumulates parameter grads and returns dLoss/dInput.
  /// Must be called after a matching forward().
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Learnable parameters (empty for stateless layers).
  virtual std::vector<Param*> params() { return {}; }

  /// Non-trainable state tensors that must travel with the weights
  /// (BatchNorm running statistics). Serialization persists these alongside
  /// params(); optimizers never touch them.
  virtual std::vector<Tensor*> buffers() { return {}; }

  /// Switches between training and inference behaviour (BatchNorm etc.).
  virtual void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

  /// Selects the compute kernel for layers that have more than one lowering
  /// (Conv2d, Linear; see nn/kernel.hpp). Containers propagate recursively;
  /// stateless layers ignore it. Both kinds are deterministic run-to-run;
  /// only kReference is bit-frozen against the paper campaigns.
  virtual void set_kernel(KernelKind /*kind*/) {}

  /// Randomly (re-)initializes the layer's parameters.
  virtual void init(util::Rng& /*rng*/) {}

  /// Human-readable layer name for diagnostics.
  virtual std::string name() const = 0;

  /// Zeroes all parameter gradients.
  void zero_grad();

  /// Total number of trainable scalars.
  std::size_t num_params();

 protected:
  bool training_ = true;
};

/// Ordered container running sub-modules front to back.
class Sequential final : public Module {
 public:
  Sequential() = default;

  /// Appends a layer and returns *this for chaining.
  Sequential& add(std::unique_ptr<Module> m);

  /// Constructs a layer in place.
  template <typename M, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<M>(std::forward<Args>(args)...));
  }

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;
  std::vector<Tensor*> buffers() override;
  void set_training(bool training) override;
  void set_kernel(KernelKind kind) override;
  void init(util::Rng& rng) override;
  std::string name() const override { return "Sequential"; }

  std::size_t size() const { return layers_.size(); }
  Module& layer(std::size_t i);

 private:
  std::vector<std::unique_ptr<Module>> layers_;
};

/// Identity-skip residual wrapper: y = body(x) + x.
///
/// Requires the body to preserve tensor shape. Used for the estimator's two
/// residual stages (the paper's "residual connections for managing decisions").
class Residual final : public Module {
 public:
  explicit Residual(std::unique_ptr<Module> body);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return body_->params(); }
  std::vector<Tensor*> buffers() override { return body_->buffers(); }
  void set_training(bool training) override;
  void set_kernel(KernelKind kind) override { body_->set_kernel(kind); }
  void init(util::Rng& rng) override { body_->init(rng); }
  std::string name() const override { return "Residual"; }

 private:
  std::unique_ptr<Module> body_;
};

}  // namespace omniboost::nn
