/// \file bench_fig1_motivation.cpp
/// Regenerates Figure 1 (§II): throughput of the 4-DNN motivational workload
/// {AlexNet, MobileNet, VGG-19, SqueezeNet} under 200 random CPU/GPU layer
/// splits, normalized to the all-on-GPU baseline; plus the §II design-space
/// count C(L, 3).
///
/// Paper shape to reproduce: most random set-ups fall below the baseline,
/// but a meaningful fraction beat it, the best by roughly +60%.

#include <algorithm>
#include <cmath>

#include "bench_common.hpp"

using namespace omniboost;

int main() {
  constexpr std::uint64_t kSeed = 2023;
  bench::banner("Fig. 1 — motivational example", "Figure 1, Section II",
                kSeed);

  bench::Context ctx;
  const workload::Workload w{{models::ModelId::kAlexNet,
                              models::ModelId::kMobileNet,
                              models::ModelId::kVgg19,
                              models::ModelId::kSqueezeNet}};
  const auto counts = w.layer_counts(ctx.zoo());

  // Design-space size (paper: C(84, 3) ~ 95,000 for these four DNNs).
  std::size_t total_layers = 0;
  for (std::size_t c : counts) total_layers += c;
  const double l = static_cast<double>(total_layers);
  std::printf("total schedulable layers L = %zu; C(L, 3) = %.0f combinations\n\n",
              total_layers, l * (l - 1) * (l - 2) / 6.0);

  const double baseline = ctx.measure(
      w, sim::Mapping::all_on(counts, device::ComponentId::kGpu));
  std::printf("all-on-GPU baseline: T = %.4f inf/s (normalized 1.0)\n\n",
              baseline);

  util::Rng rng(kSeed);
  std::vector<double> normalized;
  normalized.reserve(200);
  for (int setup = 0; setup < 200; ++setup) {
    // Paper §II: each DNN's layers are split at a random point between the
    // GPU and the big CPU (the example also parks one tail on LITTLE).
    std::vector<sim::Assignment> per_dnn;
    for (std::size_t c : counts) {
      const auto first = rng.chance(0.5) ? device::ComponentId::kGpu
                                         : device::ComponentId::kBigCpu;
      const auto second = first == device::ComponentId::kGpu
                              ? device::ComponentId::kBigCpu
                              : device::ComponentId::kGpu;
      sim::Assignment a =
          workload::random_two_way_split(rng, c, first, second);
      if (rng.chance(0.1)) a.back() = device::ComponentId::kLittleCpu;
      per_dnn.push_back(std::move(a));
    }
    normalized.push_back(
        ctx.measure(w, sim::Mapping(std::move(per_dnn))) / baseline);
  }

  // The figure's scatter, printed as a series (one value per set-up).
  std::printf("normalized throughput per set-up (200 random splits):\n");
  for (std::size_t i = 0; i < normalized.size(); ++i) {
    std::printf("%5.2f%s", normalized[i], (i + 1) % 10 == 0 ? "\n" : " ");
  }

  std::vector<double> sorted = normalized;
  std::sort(sorted.begin(), sorted.end());
  const double above =
      static_cast<double>(std::count_if(normalized.begin(), normalized.end(),
                                        [](double x) { return x > 1.0; })) /
      static_cast<double>(normalized.size());

  util::Table t({"statistic", "value"});
  t.add_row({"set-ups", "200"});
  t.add_row("min", {sorted.front()}, 2);
  t.add_row("median", {util::percentile(normalized, 50)}, 2);
  t.add_row("max (paper: ~1.6)", {sorted.back()}, 2);
  t.add_row("fraction above baseline", {above}, 2);
  std::printf("\n");
  bench::report("fig1_motivation", t);

  std::printf("\npaper check: best random split beats all-on-GPU by %.0f%% "
              "(paper reports up to 60%%)\n",
              (sorted.back() - 1.0) * 100.0);
  return 0;
}
