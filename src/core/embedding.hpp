#pragma once
/// \file embedding.hpp
/// The distributed embeddings tensor (paper §IV-A): a (components x models x
/// layers) tensor U holding the normalized execution time B_l_alpha of every
/// dataset-DNN layer on every computing component, plus the mask rendering
/// that turns a (workload, mapping) query into the estimator's input.
///
/// Two construction paths: from the fixed 11-model ModelZoo (the paper's
/// dataset), or from an arbitrary NetworkList — the latter is the paper's
/// extensibility claim ((iii), "robust to new DNN models added on top of the
/// existing dataset") made concrete: append a custom network, rebuild the
/// tensor, retrain, schedule. See examples/zoo_extension.cpp.

#include "device/cost_model.hpp"
#include "models/zoo.hpp"
#include "sim/mapping.hpp"
#include "sim/segments.hpp"
#include "tensor/tensor.hpp"
#include "workload/workload.hpp"

namespace omniboost::core {

/// Immutable benchmark tensor built once from kernel-level profiling
/// (here: the cost model standing in for on-board kernel timing).
class EmbeddingTensor {
 public:
  /// Profiles every layer of every zoo model on every component.
  ///
  /// Layer times span four orders of magnitude (a pool kernel on the GPU vs
  /// VGG's fc6 on the LITTLE cluster), so cells store
  /// log1p(t / log_scale_s), max-normalized to [0, 1] — a plain max
  /// normalization would flush most of the tensor to ~0 and starve the CNN
  /// of signal.
  EmbeddingTensor(const models::ModelZoo& zoo, const device::CostModel& cost,
                  double log_scale_s = 1e-4);

  /// Profiles an arbitrary catalog of networks (dataset extension). Column
  /// m of the tensor corresponds to nets[m]; layer capacity is the longest
  /// network in the list.
  EmbeddingTensor(const sim::NetworkList& nets, const device::CostModel& cost,
                  double log_scale_s = 1e-4);

  /// The full tensor U with shape (kNumComponents, M, L), values in [0, 1].
  const tensor::Tensor& tensor() const { return u_; }

  std::size_t models_dim() const { return models_dim_; }
  std::size_t layers_dim() const { return layers_dim_; }

  /// Normalization constant: the largest raw layer time (seconds).
  double max_layer_time_s() const { return max_time_s_; }

  /// Element-wise product of U with the mapping's boolean mask tensors
  /// (paper Fig. 3 steps 1-2): slice alpha keeps exactly the cells of layers
  /// assigned to component alpha. Models absent from the mix stay zero.
  tensor::Tensor masked_input(const workload::Workload& w,
                              const sim::Mapping& mapping) const;

  /// Catalog-index variant: model_indices[i] is the tensor column of the
  /// workload's i-th stream (positions in the NetworkList the tensor was
  /// built from). Indices must be distinct — the distributed embedding
  /// reserves one column per dataset model.
  tensor::Tensor masked_input(const std::vector<std::size_t>& model_indices,
                              const sim::Mapping& mapping) const;

 private:
  tensor::Tensor u_;
  std::size_t models_dim_ = 0;
  std::size_t layers_dim_ = 0;
  double max_time_s_ = 0.0;
};

}  // namespace omniboost::core
