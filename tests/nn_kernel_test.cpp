// The kernel-selection contract (nn/kernel.hpp):
//  * gemm vs reference and simd vs gemm parity for Conv2d / Linear,
//    forward and backward, across adversarial shapes
//  * bit-determinism of each kernel kind run-to-run
//  * end-to-end estimator parity (<= 1e-6 gemm, <= 1e-5 simd) on every zoo
//    model
//  * cpuid dispatch: kSimd degrades to kGemm (with a recorded note, no
//    throw) on hosts without the ISA
//  * the {kernel = reference, batch_size = 1, workers = 1} bit-parity
//    regression against the paper's sequential search, on 3 seeds

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/dataset.hpp"
#include "core/omniboost.hpp"
#include "models/zoo.hpp"
#include "nn/kernel.hpp"
#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "sim/des.hpp"
#include "tensor/simd.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace {

using namespace omniboost;
using nn::KernelKind;
using tensor::Tensor;

Tensor random_tensor(const tensor::Shape& shape, util::Rng& rng) {
  Tensor t(shape);
  for (std::size_t i = 0; i < t.size(); ++i)
    t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

double max_abs_diff(const Tensor& a, const Tensor& b) {
  EXPECT_EQ(a.shape(), b.shape());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::fabs(static_cast<double>(a[i]) - b[i]));
  return m;
}

TEST(KernelKnob, NamesRoundTrip) {
  EXPECT_STREQ(nn::kernel_name(KernelKind::kReference), "reference");
  EXPECT_STREQ(nn::kernel_name(KernelKind::kGemm), "gemm");
  EXPECT_STREQ(nn::kernel_name(KernelKind::kSimd), "simd");
  EXPECT_EQ(nn::parse_kernel_name("reference"), KernelKind::kReference);
  EXPECT_EQ(nn::parse_kernel_name("gemm"), KernelKind::kGemm);
  EXPECT_EQ(nn::parse_kernel_name("simd"), KernelKind::kSimd);
  EXPECT_THROW(nn::parse_kernel_name("avx2"), std::invalid_argument);
}

TEST(KernelKnob, SimdDispatchDegradesWithANoteNeverAThrow) {
  // The resolution rule must agree with the runtime cpuid probe: on a host
  // with the ISA kSimd is served as requested (empty note); without it the
  // request degrades to kGemm and the note says so. Either way the layer
  // math must run — tensor::gemm_simd falls back internally.
  EXPECT_EQ(nn::resolve_kernel(KernelKind::kReference),
            KernelKind::kReference);
  EXPECT_EQ(nn::resolve_kernel(KernelKind::kGemm), KernelKind::kGemm);
  EXPECT_TRUE(nn::kernel_resolution_note(KernelKind::kReference).empty());
  EXPECT_TRUE(nn::kernel_resolution_note(KernelKind::kGemm).empty());
  if (tensor::simd_supported()) {
    EXPECT_EQ(nn::resolve_kernel(KernelKind::kSimd), KernelKind::kSimd);
    EXPECT_TRUE(nn::kernel_resolution_note(KernelKind::kSimd).empty());
    EXPECT_STRNE(tensor::simd_isa(), "none");
  } else {
    EXPECT_EQ(nn::resolve_kernel(KernelKind::kSimd), KernelKind::kGemm);
    const std::string note = nn::kernel_resolution_note(KernelKind::kSimd);
    EXPECT_NE(note.find("simd"), std::string::npos);
    EXPECT_NE(note.find("gemm"), std::string::npos);
    EXPECT_STREQ(tensor::simd_isa(), "none");
  }
  // Degraded or not, a kSimd layer must forward without throwing and match
  // the gemm lowering.
  util::Rng rng(71), rng2(71), data_rng(3);
  nn::Conv2d simd(3, 4, 3, 1, 1);
  nn::Conv2d gemm(3, 4, 3, 1, 1);
  simd.init(rng);
  gemm.init(rng2);
  simd.set_kernel(KernelKind::kSimd);
  gemm.set_kernel(KernelKind::kGemm);
  const Tensor x = random_tensor({2, 3, 6, 7}, data_rng);
  Tensor y;
  EXPECT_NO_THROW(y = simd.forward(x));
  EXPECT_LT(max_abs_diff(y, gemm.forward(x)), 1e-5);
}

TEST(KernelKnob, LayersCaptureTheProcessDefault) {
  const KernelKind before = nn::default_kernel();
  nn::set_default_kernel(KernelKind::kReference);
  nn::Conv2d conv(2, 2, 3);
  EXPECT_EQ(conv.kernel_kind(), KernelKind::kReference);
  nn::set_default_kernel(KernelKind::kGemm);
  nn::Linear fc(4, 2);
  EXPECT_EQ(fc.kernel_kind(), KernelKind::kGemm);
  conv.set_kernel(KernelKind::kGemm);
  EXPECT_EQ(conv.kernel_kind(), KernelKind::kGemm);
  nn::set_default_kernel(before);
}

struct ConvCase {
  std::size_t in_ch, out_ch, kernel, stride, pad, h, w;
};

// Adversarial spread: non-square inputs, stride > 1, padding > 0, 1x1
// (im2col identity fast path), wide kernels, single channels.
const ConvCase kConvCases[] = {
    {1, 1, 1, 1, 0, 5, 7},   // pointwise, non-square
    {3, 8, 1, 1, 0, 9, 4},   // pointwise fast path, many channels
    {2, 3, 3, 1, 1, 6, 6},   // same padding
    {3, 2, 3, 2, 1, 7, 9},   // strided, non-square
    {2, 4, 3, 3, 0, 9, 11},  // stride 3 valid
    {1, 2, 5, 1, 2, 7, 8},   // wide kernel, heavy padding
    {4, 4, 3, 2, 2, 5, 5},   // padding > kernel/2
    {2, 2, 4, 2, 1, 10, 6},  // even kernel
};

class ConvKernelParity : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvKernelParity, ForwardAndBackwardMatchReference) {
  const ConvCase c = GetParam();
  for (const std::size_t batch : {1u, 3u}) {
    util::Rng rng(101);
    nn::Conv2d ref(c.in_ch, c.out_ch, c.kernel, c.stride, c.pad);
    ref.init(rng);
    ref.set_kernel(KernelKind::kReference);
    util::Rng rng2(101);
    nn::Conv2d gemm(c.in_ch, c.out_ch, c.kernel, c.stride, c.pad);
    gemm.init(rng2);  // identical weights
    gemm.set_kernel(KernelKind::kGemm);
    util::Rng rng3(101);
    nn::Conv2d simd(c.in_ch, c.out_ch, c.kernel, c.stride, c.pad);
    simd.init(rng3);  // identical weights
    simd.set_kernel(KernelKind::kSimd);

    util::Rng data_rng(7);
    const Tensor x = random_tensor({batch, c.in_ch, c.h, c.w}, data_rng);
    const Tensor ya = ref.forward(x);
    const Tensor yb = gemm.forward(x);
    const Tensor yc = simd.forward(x);
    EXPECT_LT(max_abs_diff(ya, yb), 1e-5) << "forward, batch " << batch;
    EXPECT_LT(max_abs_diff(yb, yc), 1e-5) << "simd forward, batch " << batch;

    const Tensor g = random_tensor(ya.shape(), data_rng);
    ref.zero_grad();
    gemm.zero_grad();
    simd.zero_grad();
    const Tensor gxa = ref.backward(g);
    const Tensor gxb = gemm.backward(g);
    const Tensor gxc = simd.backward(g);
    EXPECT_LT(max_abs_diff(gxa, gxb), 1e-4) << "grad input, batch " << batch;
    EXPECT_LT(max_abs_diff(gxb, gxc), 1e-4)
        << "simd grad input, batch " << batch;
    const auto pa = ref.params();
    const auto pb = gemm.params();
    const auto pc = simd.params();
    ASSERT_EQ(pa.size(), pb.size());
    ASSERT_EQ(pa.size(), pc.size());
    for (std::size_t p = 0; p < pa.size(); ++p) {
      EXPECT_LT(max_abs_diff(pa[p]->grad, pb[p]->grad), 1e-4)
          << "param grad " << p << ", batch " << batch;
      EXPECT_LT(max_abs_diff(pb[p]->grad, pc[p]->grad), 1e-4)
          << "simd param grad " << p << ", batch " << batch;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ConvKernelParity,
                         ::testing::ValuesIn(kConvCases));

TEST(ConvKernelParity, EachKindIsBitDeterministic) {
  util::Rng rng(33);
  util::Rng data_rng(5);
  const Tensor x = random_tensor({2, 3, 8, 9}, data_rng);
  for (const KernelKind kind :
       {KernelKind::kReference, KernelKind::kGemm, KernelKind::kSimd}) {
    nn::Conv2d conv(3, 5, 3, 2, 1);
    conv.init(rng);
    conv.set_kernel(kind);
    const Tensor a = conv.forward(x);
    const Tensor b = conv.forward(x);
    EXPECT_EQ(a, b) << nn::kernel_name(kind) << " forward not bit-stable";
  }
}

TEST(LinearKernelParity, ForwardAndBackwardMatchReference) {
  for (const bool bias : {true, false}) {
    util::Rng rng(55);
    nn::Linear ref(13, 7, bias);
    ref.init(rng);
    ref.set_kernel(KernelKind::kReference);
    util::Rng rng2(55);
    nn::Linear gemm(13, 7, bias);
    gemm.init(rng2);
    gemm.set_kernel(KernelKind::kGemm);
    util::Rng rng3(55);
    nn::Linear simd(13, 7, bias);
    simd.init(rng3);
    simd.set_kernel(KernelKind::kSimd);

    util::Rng data_rng(9);
    const Tensor x = random_tensor({5, 13}, data_rng);
    const Tensor ya = ref.forward(x);
    const Tensor yb = gemm.forward(x);
    const Tensor yc = simd.forward(x);
    EXPECT_LT(max_abs_diff(ya, yb), 1e-5);
    EXPECT_LT(max_abs_diff(yb, yc), 1e-5);

    const Tensor g = random_tensor(ya.shape(), data_rng);
    ref.zero_grad();
    gemm.zero_grad();
    simd.zero_grad();
    const Tensor gxa = ref.backward(g);
    const Tensor gxb = gemm.backward(g);
    const Tensor gxc = simd.backward(g);
    EXPECT_LT(max_abs_diff(gxa, gxb), 1e-5);
    EXPECT_LT(max_abs_diff(gxb, gxc), 1e-5);
    const auto pa = ref.params();
    const auto pb = gemm.params();
    const auto pc = simd.params();
    ASSERT_EQ(pa.size(), pb.size());
    ASSERT_EQ(pa.size(), pc.size());
    for (std::size_t p = 0; p < pa.size(); ++p) {
      EXPECT_LT(max_abs_diff(pa[p]->grad, pb[p]->grad), 1e-5);
      EXPECT_LT(max_abs_diff(pb[p]->grad, pc[p]->grad), 1e-5);
    }
  }
}

// --- end-to-end estimator parity ---------------------------------------------

class EstimatorKernelParity : public ::testing::Test {
 protected:
  static const models::ModelZoo& zoo() {
    static const models::ModelZoo z;
    return z;
  }
  static const core::EmbeddingTensor& embedding() {
    // CostModel keeps a pointer into the spec: a temporary here would be a
    // stack-use-after-scope (caught by the ASan CI flavor).
    static const device::DeviceSpec spec = device::make_hikey970();
    static const device::CostModel cost(spec);
    static const core::EmbeddingTensor e(zoo(), cost);
    return e;
  }
};

TEST_F(EstimatorKernelParity, WithinTolerance1e6OnEveryZooModel) {
  core::ThroughputEstimator ref(embedding().models_dim(),
                                embedding().layers_dim());
  ref.set_kernel(KernelKind::kReference);
  core::ThroughputEstimator gemm(embedding().models_dim(),
                                 embedding().layers_dim());
  gemm.set_kernel(KernelKind::kGemm);

  util::Rng rng(23);
  for (const models::ModelId id : models::kAllModels) {
    const workload::Workload w{{id}};
    for (int i = 0; i < 2; ++i) {
      const Tensor input = embedding().masked_input(
          w, workload::random_mapping(rng, zoo(), w, 3));
      const auto a = ref.predict_normalized(input);
      const auto b = gemm.predict_normalized(input);
      for (std::size_t d = 0; d < 3; ++d)
        EXPECT_NEAR(a[d], b[d], 1e-6)
            << models::model_name(id) << " output " << d;
    }
  }
  // Mixed multi-DNN inputs too.
  for (int i = 0; i < 4; ++i) {
    const workload::Workload w = workload::random_mix(rng, 4);
    const Tensor input = embedding().masked_input(
        w, workload::random_mapping(rng, zoo(), w, 3));
    EXPECT_NEAR(ref.predict_reward(input), gemm.predict_reward(input), 1e-6);
  }
}

TEST_F(EstimatorKernelParity, SimdWithinTolerance1e5OnEveryZooModel) {
  // The ISSUE-level end-to-end bound for the micro-kernel path: <= 1e-5
  // against the gemm lowering on every zoo model (silent degradation makes
  // this trivially exact on hosts without the ISA).
  core::ThroughputEstimator gemm(embedding().models_dim(),
                                 embedding().layers_dim());
  gemm.set_kernel(KernelKind::kGemm);
  core::ThroughputEstimator simd(embedding().models_dim(),
                                 embedding().layers_dim());
  simd.set_kernel(KernelKind::kSimd);

  util::Rng rng(23);
  for (const models::ModelId id : models::kAllModels) {
    const workload::Workload w{{id}};
    for (int i = 0; i < 2; ++i) {
      const Tensor input = embedding().masked_input(
          w, workload::random_mapping(rng, zoo(), w, 3));
      const auto a = gemm.predict_normalized(input);
      const auto b = simd.predict_normalized(input);
      for (std::size_t d = 0; d < 3; ++d)
        EXPECT_NEAR(a[d], b[d], 1e-5)
            << models::model_name(id) << " output " << d;
    }
  }
  for (int i = 0; i < 4; ++i) {
    const workload::Workload w = workload::random_mix(rng, 4);
    const Tensor input = embedding().masked_input(
        w, workload::random_mapping(rng, zoo(), w, 3));
    EXPECT_NEAR(gemm.predict_reward(input), simd.predict_reward(input), 1e-5);
  }
}

// --- the bit-parity regression -----------------------------------------------

TEST_F(EstimatorKernelParity, ReferenceKernelReproducesThePaperPathOn3Seeds) {
  // {kernel = reference, batch_size = 1, workers = 1} through the production
  // scheduler must replay the seed tree's sequential search bit-for-bit:
  // train under the reference kernel, then compare against the pre-batching
  // scalar/uncached search over the very same estimator instance.
  const device::DeviceSpec spec = device::make_hikey970();
  const sim::DesSimulator board(spec);
  core::DatasetConfig dc;
  dc.samples = 60;
  const core::SampleSet data =
      core::generate_dataset(zoo(), embedding(), board, dc);
  auto est = std::make_shared<core::ThroughputEstimator>(
      embedding().models_dim(), embedding().layers_dim());
  est->set_kernel(KernelKind::kReference);
  nn::L1Loss l1;
  nn::TrainConfig tc;
  tc.epochs = 4;
  est->fit(data, 10, l1, tc);

  const workload::Workload w{{models::ModelId::kVgg16,
                              models::ModelId::kAlexNet,
                              models::ModelId::kMobileNet}};
  for (const std::uint64_t seed : {3u, 5u, 7u}) {
    core::OmniBoostConfig cfg;
    cfg.mcts.budget = 150;
    cfg.mcts.seed = seed;
    cfg.batch_size = 1;
    cfg.workers = 1;
    cfg.kernel = KernelKind::kReference;
    core::OmniBoostScheduler sched(zoo(), embedding(), est, cfg);
    const auto got = sched.schedule(w);

    core::MctsConfig reference = cfg.mcts;
    reference.cache = false;  // pre-memo accounting and evaluator call count
    const core::MappingEvaluator scalar = [&](const sim::Mapping& m) {
      return est->predict_reward(embedding().masked_input(w, m));
    };
    const core::MctsResult want =
        core::Mcts(w.layer_counts(zoo()), scalar, reference).search();

    EXPECT_EQ(got.mapping, want.best_mapping) << "seed " << seed;
    EXPECT_EQ(got.expected_reward, want.best_reward) << "seed " << seed;
    EXPECT_EQ(got.evaluations + got.cache_hits, want.evaluations)
        << "seed " << seed;
  }
}

TEST_F(EstimatorKernelParity, SchedulerClonesOnKernelMismatchOnly) {
  // A gemm-trained estimator searched with cfg.kernel = reference (and vice
  // versa) must leave the shared instance untouched and still produce a
  // valid, deterministic decision.
  const device::DeviceSpec spec = device::make_hikey970();
  const sim::DesSimulator board(spec);
  core::DatasetConfig dc;
  dc.samples = 50;
  const core::SampleSet data =
      core::generate_dataset(zoo(), embedding(), board, dc);
  auto est = std::make_shared<core::ThroughputEstimator>(
      embedding().models_dim(), embedding().layers_dim());
  nn::L1Loss l1;
  nn::TrainConfig tc;
  tc.epochs = 3;
  est->fit(data, 10, l1, tc);
  const KernelKind original = est->kernel();

  const workload::Workload w{{models::ModelId::kAlexNet,
                              models::ModelId::kSqueezeNet}};
  core::OmniBoostConfig cfg;
  cfg.mcts.budget = 80;
  cfg.kernel = original == KernelKind::kGemm ? KernelKind::kReference
                                             : KernelKind::kGemm;
  core::OmniBoostScheduler sched(zoo(), embedding(), est, cfg);
  const auto a = sched.schedule(w);
  const auto b = sched.schedule(w);
  EXPECT_EQ(est->kernel(), original) << "shared estimator was mutated";
  EXPECT_TRUE(a.mapping.within_stage_limit(3));
  EXPECT_EQ(a.mapping, b.mapping);
}

}  // namespace
