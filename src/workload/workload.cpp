#include "workload/workload.hpp"

#include "util/require.hpp"

namespace omniboost::workload {

sim::NetworkList Workload::resolve(const models::ModelZoo& zoo) const {
  OB_REQUIRE(!mix.empty(), "Workload::resolve: empty mix");
  sim::NetworkList nets;
  nets.reserve(mix.size());
  for (models::ModelId id : mix) nets.push_back(&zoo.network(id));
  return nets;
}

std::vector<std::size_t> Workload::layer_counts(
    const models::ModelZoo& zoo) const {
  std::vector<std::size_t> counts;
  counts.reserve(mix.size());
  for (models::ModelId id : mix) counts.push_back(zoo.network(id).num_layers());
  return counts;
}

std::string Workload::describe() const {
  std::string s;
  for (std::size_t i = 0; i < mix.size(); ++i) {
    if (i) s += "+";
    s += std::string(models::model_name(mix[i]));
  }
  return s;
}

}  // namespace omniboost::workload
