#include "sched/mosaic.hpp"

#include <algorithm>
#include <cmath>
#include <chrono>
#include <limits>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace omniboost::sched {

using device::ComponentId;
using device::kNumComponents;

std::array<double, LinearLatencyModel::kFeatures> LinearLatencyModel::features(
    const models::LayerDesc& l) {
  // Fixed scaling keeps the normal equations well conditioned.
  return {l.flops() / 1e9,
          l.traffic_bytes() / 1e8,
          static_cast<double>(l.input.count()) / 1e6,
          static_cast<double>(l.output.count()) / 1e6,
          l.weight_bytes / 1e8,
          1.0};
}

double LinearLatencyModel::predict(const models::LayerDesc& l) const {
  const auto x = features(l);
  double y = 0.0;
  for (std::size_t i = 0; i < kFeatures; ++i) y += weights[i] * x[i];
  return std::max(y, 1e-7);  // latencies cannot be negative
}

namespace {

/// Solves the 6x6 normal equations A w = b (Gaussian elimination with
/// partial pivoting; A is SPD up to noise so this is ample).
std::array<double, LinearLatencyModel::kFeatures> solve_normal_equations(
    std::array<std::array<double, 6>, 6> a, std::array<double, 6> b) {
  constexpr std::size_t n = 6;
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    OB_ENSURE(std::fabs(a[col][col]) > 1e-12,
              "MOSAIC fit: singular normal equations");
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r][col] / a[col][col];
      for (std::size_t c = col; c < n; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  std::array<double, n> w{};
  for (std::size_t row = n; row-- > 0;) {
    double s = b[row];
    for (std::size_t c = row + 1; c < n; ++c) s -= a[row][c] * w[c];
    w[row] = s / a[row][row];
  }
  return w;
}

}  // namespace

MosaicScheduler::MosaicScheduler(const models::ModelZoo& zoo,
                                 const device::DeviceSpec& device,
                                 MosaicConfig config)
    : zoo_(&zoo), device_(device), config_(config) {
  OB_REQUIRE(config_.data_points > 0, "MosaicScheduler: zero data points");

  // --- Offline data collection: repeated noisy layer measurements on every
  // component, round-robin over the zoo until the data-point budget is hit.
  const device::CostModel cost(device_);
  util::Rng rng(config_.seed);

  struct Accum {
    std::array<std::array<double, 6>, 6> xtx{};
    std::array<double, 6> xty{};
  };
  std::array<Accum, kNumComponents> acc;

  std::size_t collected = 0;
  while (collected < config_.data_points) {
    for (const models::NetworkDesc& net : zoo_->networks()) {
      for (const models::LayerDesc& layer : net.layers) {
        for (std::size_t c = 0; c < kNumComponents; ++c) {
          if (collected >= config_.data_points) break;
          const auto comp = static_cast<ComponentId>(c);
          const double t = cost.layer_time(layer, comp) *
                           (1.0 + config_.measurement_noise * rng.normal());
          training_board_seconds_ += std::max(t, 0.0);
          const auto x = LinearLatencyModel::features(layer);
          for (std::size_t i = 0; i < 6; ++i) {
            for (std::size_t j = 0; j < 6; ++j)
              acc[c].xtx[i][j] += x[i] * x[j];
            acc[c].xty[i] += x[i] * std::max(t, 0.0);
          }
          ++collected;
        }
      }
    }
  }
  training_samples_ = collected;
  for (std::size_t c = 0; c < kNumComponents; ++c)
    model_[c].weights = solve_normal_equations(acc[c].xtx, acc[c].xty);
}

sim::Assignment MosaicScheduler::slice_network(
    const models::NetworkDesc& net,
    std::array<double, kNumComponents>& loads) const {
  const std::size_t n = net.num_layers();
  const std::size_t smax = std::min<std::size_t>(config_.max_stages, 3);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const double link_bw = device_.link.bandwidth_gbps * 1e9;

  // Prefix sums of predicted layer latency per component: pre[c][l] = sum of
  // layers [0, l).
  std::array<std::vector<double>, kNumComponents> pre;
  for (std::size_t c = 0; c < kNumComponents; ++c) {
    pre[c].assign(n + 1, 0.0);
    for (std::size_t l = 0; l < n; ++l)
      pre[c][l + 1] = pre[c][l] + model_[c].predict(net.layers[l]);
  }
  const auto range_time = [&](std::size_t c, std::size_t first,
                              std::size_t last) {  // [first, last)
    return pre[c][last] - pre[c][first];
  };
  const auto transfer_after = [&](std::size_t layer) {
    return device_.link.latency_s +
           net.layers[layer].output_bytes() / link_bw;
  };

  // Candidate score: bottleneck of the running per-component loads after
  // adding this slicing, plus weighted communication time.
  double best_score = kInf;
  std::array<double, kNumComponents> best_add{};
  sim::Assignment best(n, ComponentId::kGpu);

  const auto consider = [&](const std::vector<std::size_t>& cuts,
                            const std::vector<std::size_t>& comps) {
    std::array<double, kNumComponents> add{};
    double comm = 0.0;
    std::size_t first = 0;
    for (std::size_t s = 0; s < comps.size(); ++s) {
      const std::size_t last = s + 1 < comps.size() ? cuts[s] : n;
      add[comps[s]] += range_time(comps[s], first, last);
      if (s + 1 < comps.size()) comm += transfer_after(last - 1);
      first = last;
    }
    double bottleneck = 0.0;
    for (std::size_t c = 0; c < kNumComponents; ++c)
      bottleneck = std::max(bottleneck, loads[c] + add[c]);
    const double score = bottleneck + config_.comm_weight * comm;
    if (score < best_score) {
      best_score = score;
      best_add = add;
      std::size_t b = 0;
      for (std::size_t s = 0; s < comps.size(); ++s) {
        const std::size_t last = s + 1 < comps.size() ? cuts[s] : n;
        for (std::size_t l = b; l < last; ++l)
          best[l] = static_cast<ComponentId>(comps[s]);
        b = last;
      }
    }
  };

  // 1-stage placements.
  for (std::size_t c = 0; c < kNumComponents; ++c) consider({}, {c});
  // 2-stage placements.
  if (smax >= 2 && n >= 2) {
    for (std::size_t cut = 1; cut < n; ++cut)
      for (std::size_t a = 0; a < kNumComponents; ++a)
        for (std::size_t b = 0; b < kNumComponents; ++b)
          if (a != b) consider({cut}, {a, b});
  }
  // 3-stage placements.
  if (smax >= 3 && n >= 3) {
    for (std::size_t cut1 = 1; cut1 + 1 < n; ++cut1)
      for (std::size_t cut2 = cut1 + 1; cut2 < n; ++cut2)
        for (std::size_t a = 0; a < kNumComponents; ++a)
          for (std::size_t b = 0; b < kNumComponents; ++b)
            for (std::size_t c = 0; c < kNumComponents; ++c)
              if (a != b && b != c) consider({cut1, cut2}, {a, b, c});
  }

  OB_ENSURE(best_score < kInf, "MOSAIC slicing: no feasible plan");
  for (std::size_t c = 0; c < kNumComponents; ++c) loads[c] += best_add[c];
  return best;
}

core::ScheduleResult MosaicScheduler::schedule(const workload::Workload& w) {
  const auto start = std::chrono::steady_clock::now();
  core::ScheduleResult r;
  std::array<double, kNumComponents> loads{};
  std::vector<sim::Assignment> per_dnn;
  per_dnn.reserve(w.size());
  for (models::ModelId id : w.mix) {
    per_dnn.push_back(slice_network(zoo_->network(id), loads));
    ++r.evaluations;  // one regression query per DNN
  }
  r.mapping = sim::Mapping(std::move(per_dnn));
  r.decision_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return r;
}

}  // namespace omniboost::sched
