#pragma once
/// \file analytic.hpp
/// Closed-form steady-state approximation of the board. Under saturated
/// round-robin sharing, every segment resident on component alpha completes
/// one frame per D_alpha = sum of service times on alpha, so a stream's rate
/// is bounded by its worst segment's component load and by its slowest
/// inter-stage transfer. Orders of magnitude faster than the DES; used for
/// quick estimates and cross-validated against the DES in the test suite.

#include <cstdint>
#include <vector>

#include "sim/report.hpp"
#include "sim/segments.hpp"

namespace omniboost::sim {

/// Analytic steady-state throughput model.
class AnalyticModel {
 public:
  /// Owns a copy of the DeviceSpec, so callers may pass temporaries
  /// (e.g. make_hikey970() inline). Non-copyable: the internal cost model
  /// points into the owned spec.
  explicit AnalyticModel(const device::DeviceSpec& device)
      : device_(device), cost_(device_) {}

  AnalyticModel(const AnalyticModel&) = delete;
  AnalyticModel& operator=(const AnalyticModel&) = delete;

  /// Predicts steady-state throughput of a workload under a mapping.
  ThroughputReport evaluate(const NetworkList& nets,
                            const Mapping& mapping) const;

  const device::CostModel& cost_model() const { return cost_; }

 private:
  device::DeviceSpec device_;  ///< owned copy; cost_ points into it
  device::CostModel cost_;
};

/// Sentinel for a layer the search has not committed to a component yet.
inline constexpr std::int8_t kLayerUnassigned = -1;

/// Partial layer-to-component assignment of one stream: one entry per layer,
/// either a component index or kLayerUnassigned.
using PartialAssignment = std::vector<std::int8_t>;

/// Admissible upper bound on AnalyticModel::evaluate(...).avg_throughput
/// over every completion of a partial mapping — the relaxation behind the
/// branch-and-bound reference scheduler (sched::BranchAndBoundScheduler) and
/// the reduce pass's dominance probing.
///
/// The relaxation drops everything that can only slow a completion down:
/// contention penalties (>= 1), the shared-DRAM wall (scale <= 1), and the
/// unknown placement of uncommitted layers (each scored at its best
/// uncontended device time). What remains is a per-stream bottleneck floor —
/// committed load on components the stream provably uses, its own total work
/// spread over at most kNumComponents components, the per-inference overhead,
/// and transfers forced by adjacent committed layers on distinct components —
/// plus a global water-filling floor: the remaining work must land somewhere,
/// and whichever component ends up fullest is used by some stream, capping
/// the slowest-stream objective. The returned value is inflated by a relative
/// epsilon so exact-arithmetic ties stay on the admissible side.
class RelaxedBound {
 public:
  /// Borrows \p nets and \p cost; both must outlive the bound.
  RelaxedBound(const NetworkList& nets, const device::CostModel& cost);

  /// Upper bound over all completions; partial.size() == nets.size() and
  /// partial[i].size() == nets[i]->num_layers(). Returns 0 when every
  /// completion is memory-infeasible (weights alone exceed the board budget).
  double upper_bound(const std::vector<PartialAssignment>& partial) const;

 private:
  const device::CostModel* cost_;
  /// Uncontended layer time per component: time_[i][l][c].
  std::vector<std::vector<std::array<double, device::kNumComponents>>> time_;
  /// Best-device layer time: min over c of time_[i][l][c].
  std::vector<std::vector<double>> tmin_;
  /// Output bytes of each layer (forced-transfer sizing).
  std::vector<std::vector<double>> out_bytes_;
  double overhead_s_ = 0.0;  ///< per-inference framework cost per stream
  bool memory_infeasible_ = false;  ///< weights alone exceed the budget
};

/// One-shot convenience wrapper over RelaxedBound.
double relaxed_throughput_bound(const NetworkList& nets,
                                const std::vector<PartialAssignment>& partial,
                                const device::CostModel& cost);

}  // namespace omniboost::sim
