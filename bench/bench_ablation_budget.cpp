/// \file bench_ablation_budget.cpp
/// Ablation A1 (DESIGN.md): MCTS computational-budget sweep. The paper fixes
/// the budget at 500 simulations and notes it "can be adjusted for any
/// use-case scenario"; this bench quantifies that trade-off: achieved
/// throughput (measured on the board simulator) and decision latency versus
/// budget.

#include "bench_common.hpp"

using namespace omniboost;

int main() {
  constexpr std::uint64_t kSeed = 31;
  bench::banner("Ablation A1 — MCTS budget sweep",
                "Section V-B (budget parameterization)", kSeed);

  bench::Context ctx;
  ctx.train_estimator();

  util::Rng rng(kSeed);
  std::vector<workload::Workload> mixes;
  for (int i = 0; i < 3; ++i) mixes.push_back(workload::random_mix(rng, 4));

  const std::size_t budgets[] = {50, 100, 250, 500, 1000, 2000};
  auto baseline = sched::AllOnScheduler::gpu_baseline(ctx.zoo());

  // "estimator queries" counts CNN forward passes actually executed: with
  // the evaluation memo on (the default), queries < budget whenever
  // rollouts revisit a mapping, so the gap to the budget column is the
  // memo's saving at that budget.
  util::Table t({"budget", "avg normalized T", "avg decision (ms)",
                 "estimator queries"});
  for (std::size_t budget : budgets) {
    core::OmniBoostConfig cfg;
    cfg.mcts.budget = budget;
    core::OmniBoostScheduler omni(ctx.zoo(), ctx.embedding(), ctx.estimator(),
                                  cfg);
    double norm = 0.0, ms = 0.0;
    std::size_t evals = 0;
    for (const auto& w : mixes) {
      const auto r = omni.schedule(w);
      const double tb = ctx.measure(w, baseline.schedule(w).mapping);
      norm += ctx.measure(w, r.mapping) / tb;
      ms += r.decision_seconds * 1e3;
      evals += r.evaluations;
    }
    t.add_row(std::to_string(budget),
              {norm / 3.0, ms / 3.0, static_cast<double>(evals) / 3.0}, 2);
  }
  bench::report("ablation_budget", t);

  std::printf("\npaper check: quality saturates around the paper's default "
              "budget of 500 while latency keeps growing linearly\n");
  return 0;
}
