#include "core/mcts.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>
#include <unordered_map>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace omniboost::core {

using device::ComponentId;
using device::kNumComponents;

/// Arena-allocated search-tree node.
struct Mcts::Node {
  std::int32_t parent = -1;
  std::array<std::int32_t, kNumComponents> child{-1, -1, -1};
  bool action_valid[kNumComponents] = {false, false, false};
  std::uint8_t action = 0;       ///< action that led here (from parent)
  std::uint32_t depth = 0;       ///< number of decisions made
  std::uint32_t visits = 0;
  double total_reward = 0.0;
  std::int32_t best_rollout = -1;  ///< best-rewarded rollout through here
  double best_reward = 0.0;
};

namespace {

/// Adapts a scalar evaluator to the batch interface (one call per mapping).
BatchMappingEvaluator adapt_scalar(MappingEvaluator evaluate) {
  OB_REQUIRE(evaluate != nullptr, "Mcts: null evaluator");
  return [evaluate = std::move(evaluate)](
             const std::vector<sim::Mapping>& mappings) {
    std::vector<double> rewards;
    rewards.reserve(mappings.size());
    for (const sim::Mapping& m : mappings) rewards.push_back(evaluate(m));
    return rewards;
  };
}

}  // namespace

Mcts::Mcts(std::vector<std::size_t> layer_counts, MappingEvaluator evaluate,
           MctsConfig config)
    : Mcts(std::move(layer_counts), adapt_scalar(std::move(evaluate)),
           config) {}

Mcts::Mcts(std::vector<std::size_t> layer_counts, BatchMappingEvaluator evaluate,
           MctsConfig config)
    : layer_counts_(std::move(layer_counts)),
      evaluate_(std::move(evaluate)),
      config_(config) {
  OB_REQUIRE(!layer_counts_.empty(), "Mcts: empty workload");
  OB_REQUIRE(evaluate_ != nullptr, "Mcts: null evaluator");
  OB_REQUIRE(config_.budget > 0, "Mcts: zero budget");
  OB_REQUIRE(config_.stage_limit >= 1, "Mcts: stage limit must be >= 1");
  for (std::size_t i = 0; i < layer_counts_.size(); ++i) {
    OB_REQUIRE(layer_counts_[i] > 0, "Mcts: DNN with no layers");
    for (std::size_t l = 0; l < layer_counts_[i]; ++l)
      coords_.push_back(Coord{i, l});
  }
  OB_REQUIRE(config_.action_mask == nullptr ||
                 config_.action_mask->size() == coords_.size(),
             "Mcts: action mask must cover every decision");
}

void Mcts::set_warm_start(MctsWarmStart warm) {
  OB_REQUIRE(warm.prior.empty() || warm.prior.size() == coords_.size(),
             "Mcts: warm-start prior must cover every decision");
  OB_REQUIRE(warm.prior_bias >= 0.0 && warm.prior_bias <= 1.0,
             "Mcts: prior_bias must be a probability");
  for (const std::int8_t p : warm.prior)
    OB_REQUIRE(p >= -1 && p < static_cast<std::int8_t>(kNumComponents),
               "Mcts: warm-start prior entry out of component range");
  warm_ = std::move(warm);
}

void Mcts::valid_actions(const std::vector<ComponentId>& path,
                         std::size_t depth,
                         bool (&out)[kNumComponents]) const {
  const Coord c = coords_[depth];
  if (c.layer == 0) {
    // First layer of a DNN: any component starts stage 1.
    for (bool& b : out) b = true;
  } else {
    // Count stages of this DNN so far (decisions depth-c.layer .. depth-1).
    const std::size_t first = depth - c.layer;
    std::size_t stages = 1;
    for (std::size_t d = first + 1; d < depth; ++d)
      if (path[d] != path[d - 1]) ++stages;
    const ComponentId prev = path[depth - 1];
    for (std::size_t a = 0; a < kNumComponents; ++a) {
      const auto comp = static_cast<ComponentId>(a);
      // Opening one more stage is a losing state beyond the limit (§IV-C).
      out[a] = comp == prev || stages < config_.stage_limit;
    }
  }
  if (config_.action_mask == nullptr) return;
  // AND in the reduction mask — unless that would strand the decision with
  // no action at all (the mask is a pruning hint, never a dead end).
  const std::uint8_t bits = (*config_.action_mask)[depth];
  bool masked[kNumComponents];
  bool any = false;
  for (std::size_t a = 0; a < kNumComponents; ++a) {
    masked[a] = out[a] && ((bits >> a) & 1u) != 0;
    any = any || masked[a];
  }
  if (!any) return;
  for (std::size_t a = 0; a < kNumComponents; ++a) out[a] = masked[a];
}

sim::Mapping Mcts::to_mapping(const std::vector<ComponentId>& path) const {
  OB_ENSURE(path.size() == coords_.size(), "Mcts: incomplete path");
  std::vector<sim::Assignment> per_dnn;
  per_dnn.reserve(layer_counts_.size());
  std::size_t d = 0;
  for (std::size_t count : layer_counts_) {
    sim::Assignment a(count, ComponentId::kGpu);
    for (std::size_t l = 0; l < count; ++l) a[l] = path[d++];
    per_dnn.push_back(std::move(a));
  }
  return sim::Mapping(std::move(per_dnn));
}

MctsResult parallel_mcts_search(const std::vector<std::size_t>& layer_counts,
                                const EvaluatorFactory& make_evaluator,
                                MctsConfig config, std::size_t workers) {
  OB_REQUIRE(make_evaluator != nullptr, "parallel_mcts_search: null factory");
  const BatchEvaluatorFactory batched = [&make_evaluator] {
    return adapt_scalar(make_evaluator());
  };
  return parallel_mcts_search_batched(layer_counts, batched, config, workers);
}

MctsResult parallel_mcts_search_batched(
    const std::vector<std::size_t>& layer_counts,
    const BatchEvaluatorFactory& make_evaluator, MctsConfig config,
    std::size_t workers) {
  OB_REQUIRE(make_evaluator != nullptr, "parallel_mcts_search: null factory");
  OB_REQUIRE(workers >= 1, "parallel_mcts_search: zero workers");
  OB_REQUIRE(config.budget >= workers,
             "parallel_mcts_search: budget smaller than worker count");

  if (workers == 1) {
    Mcts search(layer_counts, make_evaluator(), config);
    return search.search();
  }

  // Budget split (remainder to the first workers); each worker's seed is a
  // stateless fork of the master seed by worker index (util::fork_stream),
  // so the run is reproducible regardless of thread timing and worker w's
  // tree is the same no matter how many siblings it has.
  std::vector<MctsConfig> configs(workers, config);
  for (std::size_t w = 0; w < workers; ++w) {
    configs[w].budget = config.budget / workers +
                        (w < config.budget % workers ? 1 : 0);
    configs[w].seed = util::fork_stream(config.seed, w);
  }

  std::vector<MctsResult> results(workers);
  std::vector<std::exception_ptr> errors(workers);
  {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        try {
          Mcts search(layer_counts, make_evaluator(), configs[w]);
          results[w] = search.search();
        } catch (...) {
          errors[w] = std::current_exception();
        }
      });
    }
    for (std::thread& t : pool) t.join();
  }
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  MctsResult merged;
  merged.best_reward = -std::numeric_limits<double>::infinity();
  for (const MctsResult& r : results) {
    merged.iterations += r.iterations;
    merged.evaluations += r.evaluations;
    merged.cache_hits += r.cache_hits;
    merged.tree_nodes += r.tree_nodes;
    if (r.best_reward > merged.best_reward) {
      merged.best_reward = r.best_reward;
      merged.best_mapping = r.best_mapping;
    }
  }
  return merged;
}

MctsResult Mcts::search() {
  util::Rng rng(config_.seed);
  const std::size_t total = coords_.size();
  const std::size_t wave_cap = std::max<std::size_t>(1, config_.batch_size);

  std::vector<Node> arena;
  arena.reserve(2 * config_.budget + 1);
  arena.emplace_back();  // root (depth 0)

  MctsResult result;
  result.best_reward = -std::numeric_limits<double>::infinity();
  std::vector<std::vector<ComponentId>> rollouts;
  rollouts.reserve(config_.budget);
  std::vector<ComponentId> path;
  path.reserve(total);

  // Evaluation memo (transposition cache): the action sequences
  // GPU->CPU->GPU and CPU->GPU->GPU can reach distinct tree nodes whose
  // completed rollouts render to the same Mapping; the memo keys on the
  // mapping's canonical hash so the evaluator runs once per distinct
  // mapping, not once per rollout. Warm-started searches substitute an
  // external memo so rewards survive across incremental decisions.
  EvaluationMemo local_memo;
  EvaluationMemo& memo = warm_.memo != nullptr ? *warm_.memo : local_memo;
  const bool warm = !warm_.prior.empty();

  // One queued leaf evaluation of the current expansion wave.
  struct Pending {
    std::int32_t node_id;        ///< leaf the selection phase stopped at
    std::int32_t rollout_id;     ///< completed rollout through that leaf
    std::ptrdiff_t batch_index;  ///< index into the wave batch, -1 if resolved
    double reward;               ///< memoized reward when batch_index < 0
  };
  std::vector<Pending> wave;
  wave.reserve(wave_cap);
  std::vector<sim::Mapping> batch;
  batch.reserve(wave_cap);
  std::vector<double> batch_rewards;

  // Running reward range for scale-free UCT: evaluator units are arbitrary
  // (inferences/sec for oracles, flow units for the estimator), so the
  // exploit term is min-max-normalized to [0, 1] against the rewards seen so
  // far. Without this the exploration constant is meaningless at reward
  // scales far from 1 and the search degenerates to pure exploitation.
  double reward_min = std::numeric_limits<double>::infinity();
  double reward_max = -std::numeric_limits<double>::infinity();

  const auto pick_random_valid = [&](const bool (&valid)[kNumComponents]) {
    std::size_t n = 0;
    std::size_t choice = 0;
    for (std::size_t a = 0; a < kNumComponents; ++a) {
      if (!valid[a]) continue;
      ++n;
      if (rng.below(n) == 0) choice = a;  // reservoir pick
    }
    OB_ENSURE(n > 0, "Mcts: no valid action (stage limit unreachable)");
    return choice;
  };

  // The budget is consumed in waves of up to batch_size rollouts: each wave
  // member runs selection/expansion/rollout and is queued; then ONE batch
  // evaluator call scores the wave's memo misses; then rewards are
  // back-propagated in queue order. With wave size 1 the phase order per
  // iteration (select, rollout, evaluate, min/max update, backprop) is the
  // paper's sequential loop, decision for decision and rng draw for rng
  // draw. Queued leaves already carry their visit increment (a virtual
  // visit), which doubles as a virtual loss that spreads the members of a
  // wide wave across the tree instead of piling them onto one leaf.
  for (std::size_t iter = 0; iter < config_.budget;) {
    const std::size_t wave_n = std::min(wave_cap, config_.budget - iter);
    wave.clear();
    batch.clear();
    batch_rewards.clear();

    for (std::size_t k = 0; k < wave_n; ++k) {
      path.clear();
      std::int32_t node_id = 0;
      // The first rollout of a warm search is pinned to the prior wherever
      // the prior is set and legal; later rollouts only lean toward it.
      const bool pinned = warm && iter == 0 && k == 0;

      // --- Selection: descend while fully expanded.
      for (;;) {
        Node& node = arena[static_cast<std::size_t>(node_id)];
        if (node.depth >= total) break;  // terminal (winning) node reached
        if (node.depth >= config_.max_depth) break;  // expansion depth cap

        valid_actions(path, node.depth, node.action_valid);
        // Collect unexpanded valid actions.
        std::size_t unexpanded[kNumComponents];
        std::size_t n_unexpanded = 0;
        for (std::size_t a = 0; a < kNumComponents; ++a)
          if (node.action_valid[a] && node.child[a] < 0)
            unexpanded[n_unexpanded++] = a;

        if (n_unexpanded > 0) {
          // --- Expansion: create one child at random. A pinned rollout
          // expands the prior's action instead (no rng draw) so the previous
          // mapping's path is the first thing the tree learns about.
          std::size_t a;
          const std::int8_t suggested =
              pinned ? warm_.prior[node.depth] : std::int8_t{-1};
          if (suggested >= 0 &&
              node.action_valid[static_cast<std::size_t>(suggested)] &&
              node.child[static_cast<std::size_t>(suggested)] < 0) {
            a = static_cast<std::size_t>(suggested);
          } else {
            a = unexpanded[rng.below(n_unexpanded)];
          }
          Node child;
          child.parent = node_id;
          child.action = static_cast<std::uint8_t>(a);
          child.depth = node.depth + 1;
          arena.push_back(child);
          const auto child_id = static_cast<std::int32_t>(arena.size() - 1);
          arena[static_cast<std::size_t>(node_id)].child[a] = child_id;
          path.push_back(static_cast<ComponentId>(a));
          node_id = child_id;
          break;
        }

        // --- UCT choice among expanded children.
        double best_score = -std::numeric_limits<double>::infinity();
        std::size_t best_action = 0;
        const double log_n =
            std::log(static_cast<double>(std::max<std::uint32_t>(node.visits, 1)));
        const double reward_span =
            reward_max > reward_min ? reward_max - reward_min : 1.0;
        // Before the first backprop (possible only in a wide first wave:
        // queued leaves carry virtual visits but no reward yet) the running
        // range is still empty; treat every average as neutral rather than
        // letting (q - inf) collapse all scores to -inf and the choice to
        // action 0.
        const bool have_rewards = reward_min <= reward_max;
        for (std::size_t a = 0; a < kNumComponents; ++a) {
          if (node.child[a] < 0) continue;
          const Node& ch = arena[static_cast<std::size_t>(node.child[a])];
          const double exploit =
              ch.visits > 0 && have_rewards
                  ? (ch.total_reward / ch.visits - reward_min) / reward_span
                  : 0.0;
          const double explore =
              ch.visits > 0 ? config_.exploration *
                                  std::sqrt(log_n / static_cast<double>(ch.visits))
                            : std::numeric_limits<double>::infinity();
          const double score = exploit + explore;
          if (score > best_score) {
            best_score = score;
            best_action = a;
          }
        }
        path.push_back(static_cast<ComponentId>(best_action));
        node_id = arena[static_cast<std::size_t>(node_id)].child[best_action];
      }

      // --- Rollout: random completion to a winning (complete) mapping.
      // Warm searches bias each decision toward the prior (probability
      // prior_bias; the pinned rollout follows it outright), concentrating
      // the shrunken incremental budget around the previous mapping.
      while (path.size() < total) {
        bool valid[kNumComponents];
        valid_actions(path, path.size(), valid);
        const std::int8_t suggested =
            warm ? warm_.prior[path.size()] : std::int8_t{-1};
        std::size_t choice;
        if (suggested >= 0 && valid[static_cast<std::size_t>(suggested)] &&
            (pinned || rng.chance(warm_.prior_bias))) {
          choice = static_cast<std::size_t>(suggested);
        } else {
          choice = pick_random_valid(valid);
        }
        path.push_back(static_cast<ComponentId>(choice));
      }
      rollouts.push_back(path);
      const auto rollout_id = static_cast<std::int32_t>(rollouts.size() - 1);

      // Virtual visit: count the rollout on its tree path now, so the
      // remaining members of this wave see it during selection.
      for (std::int32_t id = node_id; id >= 0;
           id = arena[static_cast<std::size_t>(id)].parent)
        ++arena[static_cast<std::size_t>(id)].visits;

      // --- Queue the leaf for evaluation: memo hit, in-wave duplicate, or a
      // new entry in this wave's evaluator batch.
      Pending pending{node_id, rollout_id, -1, 0.0};
      sim::Mapping mapping = to_mapping(path);
      if (config_.cache) {
        const auto hit = memo.find(mapping);
        if (hit != memo.end()) {
          pending.reward = hit->second;
          ++result.cache_hits;
          wave.push_back(pending);
          continue;
        }
        for (std::size_t j = 0; j < batch.size(); ++j) {
          if (batch[j] == mapping) {
            pending.batch_index = static_cast<std::ptrdiff_t>(j);
            ++result.cache_hits;
            break;
          }
        }
      }
      if (pending.batch_index < 0) {
        batch.push_back(std::move(mapping));
        pending.batch_index = static_cast<std::ptrdiff_t>(batch.size() - 1);
      }
      wave.push_back(pending);
    }  // wave collection

    // --- Evaluation: one batch call for the wave's distinct new mappings.
    if (!batch.empty()) {
      batch_rewards = evaluate_(batch);
      OB_ENSURE(batch_rewards.size() == batch.size(),
                "Mcts: batch evaluator returned wrong reward count");
      result.evaluations += batch.size();
      if (config_.cache) {
        for (std::size_t j = 0; j < batch.size(); ++j)
          memo.emplace(batch[j], batch_rewards[j]);
      }
    }

    // --- Back-propagation, in queue order (visits already counted).
    for (const Pending& p : wave) {
      const double reward =
          p.batch_index >= 0
              ? batch_rewards[static_cast<std::size_t>(p.batch_index)]
              : p.reward;
      reward_min = std::min(reward_min, reward);
      reward_max = std::max(reward_max, reward);
      for (std::int32_t id = p.node_id; id >= 0;
           id = arena[static_cast<std::size_t>(id)].parent) {
        Node& n = arena[static_cast<std::size_t>(id)];
        n.total_reward += reward;
        if (n.best_rollout < 0 || reward > n.best_reward) {
          n.best_rollout = p.rollout_id;
          n.best_reward = reward;
        }
      }
      ++result.iterations;
    }
    iter += wave_n;
  }

  // --- Elite-state extraction (paper Fig. 2 step 8). All strategies use
  // node visit averages to temper the evaluator's winner's curse; see
  // MctsExtraction for the variants (the ablation bench compares them).
  std::size_t elite = 0;
  switch (config_.extraction) {
    case MctsExtraction::kGlobalArgmax: {
      elite = 0;  // the root sees every rollout; its best is the global max
      break;
    }
    case MctsExtraction::kEliteDescent: {
      for (;;) {
        const Node& n = arena[elite];
        std::int32_t next = -1;
        double best_q = -std::numeric_limits<double>::infinity();
        for (std::size_t a = 0; a < kNumComponents; ++a) {
          if (n.child[a] < 0) continue;
          const Node& ch = arena[static_cast<std::size_t>(n.child[a])];
          if (ch.visits == 0) continue;
          const double q = ch.total_reward / ch.visits;
          if (q > best_q) {
            best_q = q;
            next = n.child[a];
          }
        }
        if (next < 0) break;
        elite = static_cast<std::size_t>(next);
      }
      break;
    }
    case MctsExtraction::kEliteNode: {
      const auto min_visits = static_cast<std::uint32_t>(
          std::max<std::size_t>(4, config_.budget / 64));
      double elite_q = -std::numeric_limits<double>::infinity();
      for (std::size_t id = 0; id < arena.size(); ++id) {
        const Node& n = arena[id];
        if (id != 0 && n.visits < min_visits) continue;
        const double q = n.visits > 0
                             ? n.total_reward / n.visits
                             : -std::numeric_limits<double>::infinity();
        if (q > elite_q) {
          elite_q = q;
          elite = id;
        }
      }
      break;
    }
  }
  const Node& elite_node = arena[elite];
  OB_ENSURE(elite_node.best_rollout >= 0, "Mcts: elite state has no rollout");
  result.best_mapping = to_mapping(
      rollouts[static_cast<std::size_t>(elite_node.best_rollout)]);
  result.best_reward = elite_node.best_reward;

  result.tree_nodes = arena.size();
  return result;
}

}  // namespace omniboost::core
