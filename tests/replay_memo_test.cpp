// The DES replay-memo purity contract (core/omniboost.hpp): SLO-shaped warm
// decisions must be bit-identical with the replay memo on and off — the memo
// stores the exact TracedResult a fresh simulate_traced would produce, so a
// hit can never change a decision, only skip a DES run. These tests pin:
//  * memo on vs off: identical mapping / expected_reward across 3 seeds and
//    consecutive warm decisions, with des_replays + replay_hits (distinct
//    candidates scored) equal on both sides
//  * hit accounting: off => replay_hits == 0; on => hits appear once the
//    same mix is re-decided (the memo carries ACROSS decisions)
//  * purity purges: set_config() and an SLO-vector change drop the memo
//  * the SLO-free path never touches the replay machinery (both counters 0)

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <numeric>
#include <vector>

#include "core/dataset.hpp"
#include "core/omniboost.hpp"
#include "device/device.hpp"
#include "models/zoo.hpp"
#include "nn/loss.hpp"
#include "sim/des.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace {

using namespace omniboost;

class ReplayMemoTest : public ::testing::Test {
 protected:
  static const models::ModelZoo& zoo() {
    static const models::ModelZoo z;
    return z;
  }
  static const core::EmbeddingTensor& embedding() {
    // CostModel keeps a pointer into the spec — static lifetime for ASan.
    static const device::DeviceSpec spec = device::make_hikey970();
    static const device::CostModel cost(spec);
    static const core::EmbeddingTensor e(zoo(), cost);
    return e;
  }
  static const sim::DesSimulator& board() {
    static const device::DeviceSpec spec = device::make_hikey970();
    static const sim::DesSimulator b(spec);
    return b;
  }
  /// One small trained estimator shared by every test (training dominates
  /// this suite's runtime; the replay memo never mutates the estimator).
  static std::shared_ptr<core::ThroughputEstimator> estimator() {
    static const std::shared_ptr<core::ThroughputEstimator> est = [] {
      core::DatasetConfig dc;
      dc.samples = 50;
      const core::SampleSet data =
          core::generate_dataset(zoo(), embedding(), board(), dc);
      auto e = std::make_shared<core::ThroughputEstimator>(
          embedding().models_dim(), embedding().layers_dim());
      nn::L1Loss l1;
      nn::TrainConfig tc;
      tc.epochs = 3;
      e->fit(data, 10, l1, tc);
      return e;
    }();
    return est;
  }
  static workload::Workload mix() {
    return workload::Workload{{models::ModelId::kVgg16,
                               models::ModelId::kAlexNet,
                               models::ModelId::kMobileNet}};
  }
  static core::ScheduleContext slo_context(double slo_s) {
    core::ScheduleContext ctx;
    ctx.previous_workload = mix();
    ctx.carried_from = {0, 1, 2};  // every stream survives in place
    ctx.slo_s = std::vector<double>(3, slo_s);
    ctx.board = &board();
    return ctx;
  }
  static core::OmniBoostConfig config(std::uint64_t seed, bool memo) {
    core::OmniBoostConfig cfg;
    cfg.mcts.budget = 120;
    cfg.mcts.seed = seed;
    cfg.replay_memo = memo;
    return cfg;
  }
};

TEST_F(ReplayMemoTest, OnOffBitIdenticalAcross3SeedsWithHitAccounting) {
  for (const std::uint64_t seed : {3u, 5u, 7u}) {
    core::OmniBoostScheduler on(zoo(), embedding(), estimator(),
                                config(seed, true));
    core::OmniBoostScheduler off(zoo(), embedding(), estimator(),
                                 config(seed, false));
    const workload::Workload w = mix();
    const core::ScheduleContext ctx = slo_context(0.5);

    // Cold decision (no SLO shaping) to seed the warm path.
    core::ScheduleResult prev_on = on.schedule(w);
    core::ScheduleResult prev_off = off.schedule(w);
    ASSERT_EQ(prev_on.mapping, prev_off.mapping) << "seed " << seed;

    std::size_t hits_total = 0;
    for (int decision = 0; decision < 3; ++decision) {
      const core::ScheduleResult a = on.reschedule(w, prev_on.mapping, ctx);
      const core::ScheduleResult b = off.reschedule(w, prev_off.mapping, ctx);
      SCOPED_TRACE(::testing::Message()
                   << "seed " << seed << ", warm decision " << decision);
      // Bit-identical decisions: a hit returns the exact stored doubles.
      EXPECT_EQ(a.mapping, b.mapping);
      EXPECT_EQ(a.expected_reward, b.expected_reward);
      // Both sides scored the same distinct-candidate count.
      EXPECT_GT(b.des_replays, 0u);
      EXPECT_EQ(b.replay_hits, 0u) << "memo off must never report hits";
      EXPECT_EQ(a.des_replays + a.replay_hits, b.des_replays);
      hits_total += a.replay_hits;
      prev_on = a;
      prev_off = b;
    }
    // The memo carries across decisions: re-deciding the same mix must
    // answer some candidates from the memo instead of the DES.
    EXPECT_GT(hits_total, 0u) << "seed " << seed;
    EXPECT_GT(on.replay_memo_footprint(), 0u);
    EXPECT_EQ(off.replay_memo_footprint(), 0u);
  }
}

TEST_F(ReplayMemoTest, SetConfigDropsTheMemo) {
  core::OmniBoostScheduler sched(zoo(), embedding(), estimator(),
                                 config(11, true));
  const workload::Workload w = mix();
  const core::ScheduleResult cold = sched.schedule(w);
  const core::ScheduleContext ctx = slo_context(0.5);
  sched.reschedule(w, cold.mapping, ctx);
  ASSERT_GT(sched.replay_memo_footprint(), 0u);

  sched.set_config(config(11, true));  // same config — still a purity purge
  EXPECT_EQ(sched.replay_memo_footprint(), 0u);

  // And the purged scheduler re-executes instead of hallucinating hits.
  const core::ScheduleResult cold2 = sched.schedule(w);
  const core::ScheduleResult warm = sched.reschedule(w, cold2.mapping, ctx);
  EXPECT_GT(warm.des_replays, 0u);
}

TEST_F(ReplayMemoTest, SloVectorChangeDropsTheMemo) {
  core::OmniBoostScheduler sched(zoo(), embedding(), estimator(),
                                 config(13, true));
  const workload::Workload w = mix();
  core::ScheduleResult prev = sched.schedule(w);
  // Two decisions under one SLO to populate the memo and observe hits.
  prev = sched.reschedule(w, prev.mapping, slo_context(0.5));
  const core::ScheduleResult second =
      sched.reschedule(w, prev.mapping, slo_context(0.5));
  ASSERT_GT(second.replay_hits, 0u)
      << "test premise: repeated decisions must hit the memo";
  // A different SLO vector changes what a violation means — the memo keys
  // don't encode the SLO, so purity demands a purge: the next decision
  // starts cold (no hits).
  const core::ScheduleResult after =
      sched.reschedule(w, second.mapping, slo_context(0.25));
  EXPECT_EQ(after.replay_hits, 0u);
  EXPECT_GT(after.des_replays, 0u);
}

TEST_F(ReplayMemoTest, SloFreePathNeverTouchesTheReplayMachinery) {
  core::OmniBoostScheduler sched(zoo(), embedding(), estimator(),
                                 config(17, true));
  const workload::Workload w = mix();
  const core::ScheduleResult cold = sched.schedule(w);
  EXPECT_EQ(cold.des_replays, 0u);
  EXPECT_EQ(cold.replay_hits, 0u);

  core::ScheduleContext ctx;  // no slo_s, no board: the SLO-free warm path
  ctx.previous_workload = w;
  ctx.carried_from = {0, 1, 2};
  const core::ScheduleResult warm = sched.reschedule(w, cold.mapping, ctx);
  EXPECT_EQ(warm.des_replays, 0u);
  EXPECT_EQ(warm.replay_hits, 0u);
  EXPECT_EQ(sched.replay_memo_footprint(), 0u);
}

}  // namespace
