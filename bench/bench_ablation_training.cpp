/// \file bench_ablation_training.cpp
/// Ablation A4 (DESIGN.md): the paper's two training design choices —
/// L1 rather than L2 loss ("L2 proved too aggressive", §V) and GELU rather
/// than ReLU activations ("improvements in both convergence and accuracy",
/// §IV-B). Four estimator configurations are trained on the same reduced
/// dataset and compared on validation loss.

#include "bench_common.hpp"

using namespace omniboost;

int main() {
  constexpr std::uint64_t kSeed = 41;
  bench::banner("Ablation A4 — loss function and activation",
                "Sections IV-B and V (training choices)", kSeed);

  bench::Context ctx;

  // Reduced campaign (300 samples, 60 epochs) so four trainings stay fast;
  // relative ordering is what matters here.
  core::DatasetConfig dc;
  dc.samples = bench::scaled(300, 60);
  dc.seed = kSeed;
  const core::SampleSet data =
      core::generate_dataset(ctx.zoo(), ctx.embedding(), ctx.board(), dc);

  struct Config {
    const char* name;
    bool use_gelu;
    bool use_l1;
  };
  const Config configs[] = {
      {"GELU + L1 (paper)", true, true},
      {"GELU + L2", true, false},
      {"ReLU + L1", false, true},
      {"ReLU + L2", false, false},
  };

  nn::L1Loss l1;
  nn::MSELoss l2;
  util::Table t({"configuration", "final train loss", "final val loss",
                 "best val loss"});

  for (const Config& c : configs) {
    core::EstimatorConfig ec;
    ec.use_gelu = c.use_gelu;
    core::ThroughputEstimator est(ctx.embedding().models_dim(),
                                  ctx.embedding().layers_dim(), ec);
    nn::TrainConfig tc;
    tc.epochs = bench::scaled(60, 3);
    const nn::Loss& loss = c.use_l1 ? static_cast<const nn::Loss&>(l1)
                                    : static_cast<const nn::Loss&>(l2);
    const nn::TrainHistory h = est.fit(data, bench::scaled(60, 15), loss, tc);
    double best = h.val_loss.front();
    for (double v : h.val_loss) best = std::min(best, v);
    t.add_row(c.name, {h.train_loss.back(), h.val_loss.back(), best}, 4);
  }
  bench::report("ablation_training", t);

  std::printf("\nnote: L1 and L2 rows are on different loss scales; compare "
              "within a loss, and compare activations across rows.\n");
  std::printf("paper check: the GELU+L1 configuration trains at least as "
              "well as its ReLU counterpart, supporting the paper's choice\n");
  return 0;
}
