#include "sched/local_search.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "util/require.hpp"
#include "workload/generator.hpp"

namespace omniboost::sched {

using device::ComponentId;
using device::kNumComponents;

namespace {

class StopWatch {
 public:
  StopWatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// A component different from \p avoid (and from \p avoid2 when possible).
ComponentId other_component(util::Rng& rng, ComponentId avoid,
                            ComponentId avoid2) {
  for (int tries = 0; tries < 16; ++tries) {
    const auto c = static_cast<ComponentId>(rng.below(kNumComponents));
    if (c != avoid && c != avoid2) return c;
  }
  // Two distinct avoids exclude at most 2 of 3 components; fall back to the
  // first one that differs from the primary avoid.
  for (std::size_t i = 0; i < kNumComponents; ++i) {
    const auto c = static_cast<ComponentId>(i);
    if (c != avoid) return c;
  }
  return avoid;  // unreachable for kNumComponents > 1
}

void write_segments(sim::Assignment& a,
                    const std::vector<sim::SegmentSpan>& segs) {
  for (const sim::SegmentSpan& s : segs) {
    for (std::size_t l = s.first; l <= s.last; ++l) a[l] = s.comp;
  }
}

/// Mutates one whole DNN's mapping within the workload.
void perturb_mapping(util::Rng& rng, sim::Mapping& m,
                     std::size_t stage_limit) {
  const std::size_t d = rng.below(m.num_dnns());
  sim::Assignment a = m.assignment(d);
  perturb_assignment(rng, a, stage_limit);
  std::vector<sim::Assignment> per_dnn = m.assignments();
  per_dnn[d] = std::move(a);
  m = sim::Mapping(std::move(per_dnn));
}

}  // namespace

void perturb_assignment(util::Rng& rng, sim::Assignment& a,
                        std::size_t stage_limit) {
  OB_REQUIRE(!a.empty(), "perturb_assignment: empty assignment");
  OB_REQUIRE(stage_limit >= 1, "perturb_assignment: bad stage limit");
  auto segs = sim::extract_segments(a);

  // Move kinds: 0 = reassign a segment's component, 1 = shift a boundary,
  // 2 = split a segment (only when below the stage cap).
  const std::size_t kind = rng.below(3);

  if (kind == 0 || (kind == 1 && segs.size() == 1) ||
      (kind == 2 && segs.size() >= stage_limit)) {
    // Reassign: pick a segment, move it to a different component. Adjacent
    // segments with the now-equal component merge implicitly, so the stage
    // count can only stay or drop.
    const std::size_t s = rng.below(segs.size());
    const ComponentId prev =
        s > 0 ? segs[s - 1].comp : segs[s].comp;
    segs[s].comp = other_component(rng, segs[s].comp, prev);
    write_segments(a, segs);
    return;
  }

  if (kind == 1) {
    // Boundary shift: move the cut between segment s and s+1 by one layer.
    // A segment shrunk to nothing disappears (a merge), never a new stage.
    const std::size_t s = rng.below(segs.size() - 1);
    sim::SegmentSpan& left = segs[s];
    sim::SegmentSpan& right = segs[s + 1];
    if (rng.chance(0.5)) {
      // Grow left into right.
      a[right.first] = left.comp;
    } else {
      // Grow right into left.
      a[left.last] = right.comp;
    }
    return;
  }

  // Split: cut one multi-layer segment in two, the suffix on a different
  // component. Only reachable when a new stage fits under the cap.
  std::vector<std::size_t> splittable;
  for (std::size_t s = 0; s < segs.size(); ++s) {
    if (segs[s].last > segs[s].first) splittable.push_back(s);
  }
  if (splittable.empty()) {
    // Nothing to split (all segments single-layer); fall back to reassign.
    const std::size_t s = rng.below(segs.size());
    segs[s].comp = other_component(rng, segs[s].comp, segs[s].comp);
    write_segments(a, segs);
    return;
  }
  const std::size_t s = splittable[rng.below(splittable.size())];
  const sim::SegmentSpan seg = segs[s];
  const std::size_t cut =
      seg.first + 1 + rng.below(seg.last - seg.first);  // in (first, last]
  const ComponentId next_comp =
      s + 1 < segs.size() ? segs[s + 1].comp : seg.comp;
  const ComponentId suffix = other_component(rng, seg.comp, next_comp);
  for (std::size_t l = cut; l <= seg.last; ++l) a[l] = suffix;
}

// --- RandomSearchScheduler ---------------------------------------------

RandomSearchScheduler::RandomSearchScheduler(std::string name,
                                             const models::ModelZoo& zoo,
                                             WorkloadEvaluatorFactory evaluator,
                                             LocalSearchConfig config)
    : name_(std::move(name)),
      zoo_(&zoo),
      factory_(std::move(evaluator)),
      config_(config) {
  OB_REQUIRE(factory_ != nullptr, "RandomSearchScheduler: null factory");
  OB_REQUIRE(config_.budget >= 1, "RandomSearchScheduler: zero budget");
}

core::ScheduleResult RandomSearchScheduler::schedule(
    const workload::Workload& w) {
  OB_REQUIRE(w.size() > 0, "RandomSearchScheduler: empty workload");
  const StopWatch timer;
  util::Rng rng(config_.seed);
  const core::MappingEvaluator evaluate = factory_(w);

  core::ScheduleResult result;
  result.expected_reward = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < config_.budget; ++i) {
    sim::Mapping m =
        workload::random_mapping(rng, *zoo_, w, config_.stage_limit);
    const double r = evaluate(m);
    ++result.evaluations;
    if (r > result.expected_reward) {
      result.expected_reward = r;
      result.mapping = std::move(m);
    }
  }
  result.decision_seconds = timer.seconds();
  return result;
}

// --- HillClimbScheduler --------------------------------------------------

HillClimbScheduler::HillClimbScheduler(std::string name,
                                       const models::ModelZoo& zoo,
                                       WorkloadEvaluatorFactory evaluator,
                                       HillClimbConfig config)
    : name_(std::move(name)),
      zoo_(&zoo),
      factory_(std::move(evaluator)),
      config_(config) {
  OB_REQUIRE(factory_ != nullptr, "HillClimbScheduler: null factory");
  OB_REQUIRE(config_.budget >= 1, "HillClimbScheduler: zero budget");
  OB_REQUIRE(config_.stall_limit >= 1, "HillClimbScheduler: bad stall limit");
}

core::ScheduleResult HillClimbScheduler::schedule(const workload::Workload& w) {
  OB_REQUIRE(w.size() > 0, "HillClimbScheduler: empty workload");
  const StopWatch timer;
  util::Rng rng(config_.seed);
  const core::MappingEvaluator evaluate = factory_(w);

  core::ScheduleResult result;
  result.expected_reward = -std::numeric_limits<double>::infinity();

  sim::Mapping current;
  double current_reward = 0.0;
  std::size_t stalled = config_.stall_limit;  // force initial restart

  while (result.evaluations < config_.budget) {
    if (stalled >= config_.stall_limit) {
      current = workload::random_mapping(rng, *zoo_, w, config_.stage_limit);
      current_reward = evaluate(current);
      ++result.evaluations;
      stalled = 0;
    } else {
      sim::Mapping cand = current;
      perturb_mapping(rng, cand, config_.stage_limit);
      const double r = evaluate(cand);
      ++result.evaluations;
      if (r > current_reward) {
        current = std::move(cand);
        current_reward = r;
        stalled = 0;
      } else {
        ++stalled;
      }
    }
    if (current_reward > result.expected_reward) {
      result.expected_reward = current_reward;
      result.mapping = current;
    }
  }
  result.decision_seconds = timer.seconds();
  return result;
}

// --- SimulatedAnnealingScheduler ----------------------------------------

SimulatedAnnealingScheduler::SimulatedAnnealingScheduler(
    std::string name, const models::ModelZoo& zoo,
    WorkloadEvaluatorFactory evaluator, AnnealingConfig config)
    : name_(std::move(name)),
      zoo_(&zoo),
      factory_(std::move(evaluator)),
      config_(config) {
  OB_REQUIRE(factory_ != nullptr, "SimulatedAnnealingScheduler: null factory");
  OB_REQUIRE(config_.budget >= 2, "SimulatedAnnealingScheduler: budget < 2");
  OB_REQUIRE(config_.initial_temperature > 0.0 &&
                 config_.final_temperature > 0.0 &&
                 config_.final_temperature <= config_.initial_temperature,
             "SimulatedAnnealingScheduler: bad temperature schedule");
}

core::ScheduleResult SimulatedAnnealingScheduler::schedule(
    const workload::Workload& w) {
  OB_REQUIRE(w.size() > 0, "SimulatedAnnealingScheduler: empty workload");
  const StopWatch timer;
  util::Rng rng(config_.seed);
  const core::MappingEvaluator evaluate = factory_(w);

  core::ScheduleResult result;

  sim::Mapping current =
      workload::random_mapping(rng, *zoo_, w, config_.stage_limit);
  double current_reward = evaluate(current);
  ++result.evaluations;
  result.mapping = current;
  result.expected_reward = current_reward;

  const std::size_t steps = config_.budget - 1;
  const double cool =
      steps > 0 ? std::pow(config_.final_temperature /
                               config_.initial_temperature,
                           1.0 / static_cast<double>(steps))
                : 1.0;
  double temperature = config_.initial_temperature;

  for (std::size_t i = 0; i < steps; ++i, temperature *= cool) {
    sim::Mapping cand = current;
    perturb_mapping(rng, cand, config_.stage_limit);
    const double r = evaluate(cand);
    ++result.evaluations;

    // Relative improvement keeps the acceptance rule scale-free: rewards
    // may be inferences/sec (oracle) or estimator units.
    const double scale = std::max({std::abs(current_reward), std::abs(r),
                                   1e-12});
    const double delta = (r - current_reward) / scale;
    if (delta >= 0.0 || rng.chance(std::exp(delta / temperature))) {
      current = std::move(cand);
      current_reward = r;
    }
    if (current_reward > result.expected_reward) {
      result.expected_reward = current_reward;
      result.mapping = current;
    }
  }
  result.decision_seconds = timer.seconds();
  return result;
}

}  // namespace omniboost::sched
