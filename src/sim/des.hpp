#pragma once
/// \file des.hpp
/// Discrete-event simulation of a multi-DNN workload running on the modelled
/// board. This is the reproduction's "measurement": each DNN is a closed-loop
/// pipeline of segments; components serve segment executions FIFO; transfers
/// delay frames between stages; steady-state inferences/sec are measured
/// after warm-up and then clipped by the shared-DRAM bandwidth wall.

#include <memory>

#include "sim/report.hpp"
#include "sim/segments.hpp"
#include "sim/trace.hpp"

namespace omniboost::sim {

/// Simulation controls.
struct DesConfig {
  /// Measurement horizon, as a multiple of the slowest stream's solo
  /// inference time.
  double horizon_multiplier = 60.0;
  /// Fraction of the horizon discarded as warm-up.
  double warmup_fraction = 0.3;
  /// Hard event cap (safety against degenerate configurations).
  std::size_t max_events = 4'000'000;
};

/// Event-driven board simulator.
///
/// Owns a copy of the DeviceSpec, so callers may pass temporaries
/// (e.g. make_hikey970() inline). Non-copyable: the internal cost model
/// points into the owned spec.
class DesSimulator {
 public:
  explicit DesSimulator(const device::DeviceSpec& device,
                        DesConfig config = {});

  DesSimulator(const DesSimulator&) = delete;
  DesSimulator& operator=(const DesSimulator&) = delete;

  /// Runs one workload under one mapping to steady state.
  ///
  /// \param nets     the concurrent DNN streams
  /// \param mapping  per-layer component assignment (same arity as nets)
  ThroughputReport simulate(const NetworkList& nets,
                            const Mapping& mapping) const;

  /// Like simulate(), but charges stream i a one-off start stall of
  /// start_delay_s[i] seconds — the hook the churn-cost model
  /// (sim/migration.hpp) uses for migration costs. The stall is charged
  /// against the steady-state measurement (the stream is treated as absent
  /// for that first slice of the unchanged measurement window, scaling its
  /// measured rate by the present fraction), NOT by shifting injections in
  /// the event loop: a phase shift would interact chaotically with queueing
  /// and a stall shorter than the warm-up would vanish. Strictly monotone:
  /// a delay can only lower rates, a delay >= the window starves the stream
  /// to zero, and an empty vector (or all zeros) is bit-identical to plain
  /// simulate(). Latency statistics are untouched — a one-off stall is not
  /// per-frame latency.
  ThroughputReport simulate(const NetworkList& nets, const Mapping& mapping,
                            const std::vector<double>& start_delay_s) const;

  /// Throughput measurement plus full observability record.
  struct TracedResult {
    ThroughputReport report;
    ExecutionTrace trace;
  };

  /// Like simulate(), additionally recording per-component utilization,
  /// queue pressure, and per-stream frame-latency statistics.
  ///
  /// \param record_events  also keep every segment execution interval
  ///                       (memory-heavy; for debugging and Gantt rendering)
  TracedResult simulate_traced(const NetworkList& nets, const Mapping& mapping,
                               bool record_events = false) const;

  /// Traced form with per-stream start delays (see the simulate() overload).
  TracedResult simulate_traced(const NetworkList& nets, const Mapping& mapping,
                               const std::vector<double>& start_delay_s,
                               bool record_events = false) const;

  const device::DeviceSpec& device() const { return cost_.device(); }
  const device::CostModel& cost_model() const { return cost_; }

  /// Sets the owned spec's board-level throttle (see DeviceSpec::throttle);
  /// the internal cost model reads through the owned spec, so subsequent
  /// simulations run at the new speed immediately. Throws
  /// std::invalid_argument unless \p factor is finite and in (0, 1].
  void set_throttle(double factor);
  double throttle() const { return device_.throttle; }
  /// Simulation controls (exposed for clone() and diagnostics).
  const DesConfig& config() const { return config_; }

  /// Independent simulator with the same spec + config — the standard way
  /// for parallel pipelines (core::generate_dataset) and serving/bench
  /// drivers to obtain private instances instead of hand-rebuilding them
  /// from the device()/config() getters.
  std::unique_ptr<DesSimulator> clone() const {
    return std::make_unique<DesSimulator>(device(), config());
  }

 private:
  /// Shared event loop; \p trace may be null (plain measurement) and
  /// \p start_delay_s may be null (all streams start at t = 0).
  ThroughputReport run(const NetworkList& nets, const Mapping& mapping,
                       const std::vector<double>* start_delay_s,
                       ExecutionTrace* trace, bool record_events) const;

  device::DeviceSpec device_;  ///< owned copy; cost_ points into it
  device::CostModel cost_;
  DesConfig config_;
};

/// Applies the shared-DRAM wall and fills the derived report fields.
/// Exposed for reuse by the analytic model.
void finalize_report(ThroughputReport& report, const Scene& scene,
                     const NetworkList& nets,
                     const device::DeviceSpec& device);

}  // namespace omniboost::sim
