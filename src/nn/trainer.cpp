#include "nn/trainer.hpp"

#include <numeric>

#include "util/require.hpp"

namespace omniboost::nn {

std::pair<Dataset, Dataset> Dataset::split_tail(std::size_t n) const {
  OB_REQUIRE(n <= size(), "Dataset::split_tail: n exceeds dataset size");
  OB_REQUIRE(inputs.size() == targets.size(), "Dataset: ragged dataset");
  Dataset head, tail;
  const std::size_t cut = size() - n;
  head.inputs.assign(inputs.begin(), inputs.begin() + cut);
  head.targets.assign(targets.begin(), targets.begin() + cut);
  tail.inputs.assign(inputs.begin() + cut, inputs.end());
  tail.targets.assign(targets.begin() + cut, targets.end());
  return {std::move(head), std::move(tail)};
}

Tensor stack(const std::vector<Tensor>& samples,
             const std::vector<std::size_t>& indices) {
  OB_REQUIRE(!indices.empty(), "stack: empty index list");
  const Tensor& first = samples.at(indices.front());
  tensor::Shape shape;
  shape.push_back(indices.size());
  for (std::size_t e : first.shape()) shape.push_back(e);

  Tensor out(shape);
  const std::size_t stride = first.size();
  for (std::size_t k = 0; k < indices.size(); ++k) {
    const Tensor& s = samples.at(indices[k]);
    OB_REQUIRE(s.shape() == first.shape(), "stack: heterogeneous shapes");
    std::copy(s.data(), s.data() + stride, out.data() + k * stride);
  }
  return out;
}

double evaluate(Module& model, const Loss& loss, const Dataset& data,
                std::size_t batch_size) {
  if (data.size() == 0) return 0.0;
  model.set_training(false);
  double total = 0.0;
  std::size_t count = 0;
  for (std::size_t start = 0; start < data.size(); start += batch_size) {
    const std::size_t end = std::min(start + batch_size, data.size());
    std::vector<std::size_t> idx(end - start);
    std::iota(idx.begin(), idx.end(), start);
    const Tensor pred = model.forward(stack(data.inputs, idx));
    const Tensor tgt = stack(data.targets, idx);
    total += static_cast<double>(loss.compute(pred, tgt).value) *
             static_cast<double>(idx.size());
    count += idx.size();
  }
  model.set_training(true);
  return total / static_cast<double>(count);
}

TrainHistory train_regression(Module& model, const Loss& loss,
                              const Dataset& train, const Dataset& val,
                              const TrainConfig& config) {
  OB_REQUIRE(train.size() > 0, "train_regression: empty training set");
  OB_REQUIRE(train.inputs.size() == train.targets.size(),
             "train_regression: ragged training set");
  OB_REQUIRE(config.batch_size > 0, "train_regression: batch_size must be > 0");

  util::Rng rng(config.seed);
  Adam optim(model.params(), config.lr, 0.9f, 0.999f, 1e-8f,
             config.weight_decay);
  TrainHistory history;
  model.set_training(true);

  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    if (config.lr_schedule != nullptr) config.lr_schedule->apply(optim, epoch);
    rng.shuffle(order);
    double epoch_loss = 0.0;
    std::size_t seen = 0;
    for (std::size_t start = 0; start < order.size();
         start += config.batch_size) {
      const std::size_t end =
          std::min(start + config.batch_size, order.size());
      // BatchNorm needs >= 2 samples for meaningful batch statistics; fold a
      // trailing singleton into the previous batch instead of training on it.
      if (end - start < 2 && start != 0) break;
      const std::vector<std::size_t> idx(order.begin() + start,
                                         order.begin() + end);
      const Tensor x = stack(train.inputs, idx);
      const Tensor tgt = stack(train.targets, idx);

      optim.zero_grad();
      const Tensor pred = model.forward(x);
      const LossResult lr = loss.compute(pred, tgt);
      model.backward(lr.grad);
      optim.step();

      epoch_loss += static_cast<double>(lr.value) *
                    static_cast<double>(idx.size());
      seen += idx.size();
    }
    history.train_loss.push_back(epoch_loss / static_cast<double>(seen));
    if (val.size() > 0)
      history.val_loss.push_back(evaluate(model, loss, val));
  }
  return history;
}

}  // namespace omniboost::nn
