#pragma once
/// \file exhaustive.hpp
/// Exact enumeration of the stage-limited mapping space. The paper argues
/// (§II, §IV-C) that exhaustive evaluation is infeasible at realistic sizes —
/// this module both *quantifies* that claim (closed-form space counts used by
/// the motivation bench) and, for deliberately tiny workloads, *computes the
/// true optimum*, which the test suite uses to certify how close MCTS and the
/// other searches land.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/scheduler.hpp"
#include "models/zoo.hpp"
#include "sched/reduce.hpp"
#include "sched/search_common.hpp"

namespace omniboost::sched {

/// Exhaustive-search controls. The enumeration helpers formerly declared
/// here (count_assignments, count_mappings, enumerate_assignments) live in
/// sched/search_common.hpp, shared with the branch-and-bound scheduler and
/// the reduce pass so all exact searches agree on one canonical order.
struct ExhaustiveConfig {
  std::size_t stage_limit = 3;
  /// Hard cap on the number of complete mappings that may be evaluated;
  /// schedule() throws when the workload's space is larger. The cap is
  /// checked against the UNRESTRICTED space even when a reduction is
  /// installed, so reduction never changes which workloads are accepted.
  std::size_t max_mappings = 2'000'000;
  /// Optional pre-computed reduction (sched::reduce_search_space) restricting
  /// per-layer choices. Must match the scheduled workload's shape. Null (the
  /// default) enumerates the full space, preserving the historical
  /// evaluations == count_mappings contract the tests pin.
  std::shared_ptr<const ReducedSpace> reduce;
};

/// The exact optimizer. Only usable on tiny workloads; the ablation tests
/// use it as ground truth.
class ExhaustiveScheduler final : public core::IScheduler {
 public:
  ExhaustiveScheduler(std::string name, const models::ModelZoo& zoo,
                      WorkloadEvaluatorFactory evaluator,
                      ExhaustiveConfig config = {});

  std::string name() const override { return name_; }

  /// Evaluates every mapping in the space and returns the argmax.
  core::ScheduleResult schedule(const workload::Workload& w) override;

 private:
  std::string name_;
  const models::ModelZoo* zoo_;
  WorkloadEvaluatorFactory factory_;
  ExhaustiveConfig config_;
};

}  // namespace omniboost::sched
