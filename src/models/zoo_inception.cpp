/// \file zoo_inception.cpp
/// Inception-v3 and Inception-v4 (299x299 inputs). Each inception module is
/// one schedulable layer. Two documented simplifications versus the original
/// graphs (see DESIGN.md):
///  * the v4 stem's internal branch/concat steps are linearized into an
///    equivalent conv chain with matching shapes and FLOP budget;
///  * the C modules' "split" pairs (1x3 and 3x1 from one 1x1) are modelled as
///    a single 1x3 convolution with the combined output channels, which has
///    identical MAC count.

#include "models/net_builder.hpp"
#include "models/zoo.hpp"

namespace omniboost::models {

namespace {
constexpr Dims kImageNet299{3, 299, 299};

using Branches = std::vector<std::vector<ConvSpec>>;

ConvSpec c1x1(std::size_t ch) { return ConvSpec::square(ch, 1); }
ConvSpec c3x3(std::size_t ch, std::size_t stride = 1, std::size_t pad = 1) {
  return ConvSpec::square(ch, 3, stride, pad);
}
ConvSpec c5x5(std::size_t ch) { return ConvSpec::square(ch, 5, 1, 2); }
ConvSpec c1x7(std::size_t ch) { return ConvSpec{ch, 1, 7, 1, 0, 3}; }
ConvSpec c7x1(std::size_t ch) { return ConvSpec{ch, 7, 1, 1, 3, 0}; }
ConvSpec c1x3(std::size_t ch) { return ConvSpec{ch, 1, 3, 1, 0, 1}; }
ConvSpec c3x1(std::size_t ch) { return ConvSpec{ch, 3, 1, 1, 1, 0}; }
}  // namespace

NetworkDesc make_inception_v3() {
  NetBuilder b("Inception-v3", kImageNet299);
  // Stem: 299 -> 35x35x192.
  b.conv(32, 3, 2, 0, "conv1")       // 149
      .conv(32, 3, 1, 0, "conv2")    // 147
      .conv(64, 3, 1, 1, "conv3")    // 147
      .maxpool(3, 2, 0, "pool1")     // 73
      .conv(80, 1, 1, 0, "conv4")    // 73
      .conv(192, 3, 1, 0, "conv5")   // 71
      .maxpool(3, 2, 0, "pool2");    // 35

  // 3x Inception-A (35x35): 256 -> 288 -> 288 channels.
  const auto module_a = [&](std::size_t pool_proj, const char* name) {
    b.inception({{c1x1(64)}, {c1x1(48), c5x5(64)},
                 {c1x1(64), c3x3(96), c3x3(96)}},
                pool_proj, 1, name);
  };
  module_a(32, "mixed_a1");
  module_a(64, "mixed_a2");
  module_a(64, "mixed_a3");

  // Reduction-A: 35 -> 17, 288 -> 768 channels (pool branch passthrough).
  b.inception({{ConvSpec::square(384, 3, 2, 0)},
               {c1x1(64), c3x3(96), ConvSpec::square(96, 3, 2, 0)}},
              0, 2, "reduction_a");

  // 4x Inception-B (17x17, 768 channels), 7x1/1x7 factorized branches.
  const auto module_b = [&](std::size_t ch7, const char* name) {
    b.inception({{c1x1(192)},
                 {c1x1(ch7), c1x7(ch7), c7x1(192)},
                 {c1x1(ch7), c7x1(ch7), c1x7(ch7), c7x1(ch7), c1x7(192)}},
                192, 1, name);
  };
  module_b(128, "mixed_b1");
  module_b(160, "mixed_b2");
  module_b(160, "mixed_b3");
  module_b(192, "mixed_b4");

  // Reduction-B: 17 -> 8, 768 -> 1280 channels.
  b.inception({{c1x1(192), ConvSpec::square(320, 3, 2, 0)},
               {c1x1(192), c1x7(192), c7x1(192),
                ConvSpec::square(192, 3, 2, 0)}},
              0, 2, "reduction_b");

  // 2x Inception-C (8x8): 1280 -> 2048 -> 2048.
  const auto module_c = [&](const char* name) {
    b.inception({{c1x1(320)},
                 {c1x1(384), c1x3(768)},          // split pair merged
                 {c1x1(448), c3x3(384), c1x3(768)}},
                192, 1, name);
  };
  module_c("mixed_c1");
  module_c("mixed_c2");

  b.global_avgpool("gap").fc(1000, true, "fc");
  return std::move(b).build();
}

NetworkDesc make_inception_v4() {
  NetBuilder b("Inception-v4", kImageNet299);
  // Linearized stem: 299 -> 35x35x384.
  b.conv(32, 3, 2, 0, "conv1")       // 149
      .conv(32, 3, 1, 0, "conv2")    // 147
      .conv(64, 3, 1, 1, "conv3")    // 147
      .maxpool(3, 2, 0, "pool1")     // 73
      .conv(96, 1, 1, 0, "conv4")    // 73
      .conv(192, 3, 1, 0, "conv5")   // 71
      .conv(384, 3, 2, 0, "conv6");  // 35

  // 4x Inception-A (35x35, 384 channels).
  for (int i = 1; i <= 4; ++i) {
    b.inception({{c1x1(96)}, {c1x1(64), c3x3(96)},
                 {c1x1(64), c3x3(96), c3x3(96)}},
                96, 1, "inception_a" + std::to_string(i));
  }

  // Reduction-A: 35 -> 17, 384 -> 1024 channels.
  b.inception({{ConvSpec::square(384, 3, 2, 0)},
               {c1x1(192), c3x3(224), ConvSpec::square(256, 3, 2, 0)}},
              0, 2, "reduction_a");

  // 7x Inception-B (17x17, 1024 channels).
  for (int i = 1; i <= 7; ++i) {
    b.inception({{c1x1(384)},
                 {c1x1(192), c1x7(224), c7x1(256)},
                 {c1x1(192), c7x1(192), c1x7(224), c7x1(224), c1x7(256)}},
                128, 1, "inception_b" + std::to_string(i));
  }

  // Reduction-B: 17 -> 8, 1024 -> 1536 channels.
  b.inception({{c1x1(192), ConvSpec::square(192, 3, 2, 0)},
               {c1x1(256), c1x7(256), c7x1(320),
                ConvSpec::square(320, 3, 2, 0)}},
              0, 2, "reduction_b");

  // 3x Inception-C (8x8, 1536 channels).
  for (int i = 1; i <= 3; ++i) {
    b.inception({{c1x1(256)},
                 {c1x1(384), c1x3(512)},          // split pair merged
                 {c1x1(384), c1x3(448), c3x1(512)}},
                256, 1, "inception_c" + std::to_string(i));
  }

  b.global_avgpool("gap").fc(1000, true, "fc");
  return std::move(b).build();
}

}  // namespace omniboost::models
