#include "sched/exhaustive.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "util/require.hpp"

namespace omniboost::sched {

using device::ComponentId;
using device::kNumComponents;

namespace {

/// C(n, k) in floating point (exact for the small k we use).
double binomial(std::size_t n, std::size_t k) {
  if (k > n) return 0.0;
  k = std::min(k, n - k);
  double r = 1.0;
  for (std::size_t i = 1; i <= k; ++i) {
    r *= static_cast<double>(n - k + i);
    r /= static_cast<double>(i);
  }
  return r;
}

/// Appends every assignment with exactly the given segment cut points,
/// recursing over adjacent-distinct component sequences.
void emit_component_sequences(const std::vector<std::size_t>& cuts,
                              std::size_t layers, std::size_t seg,
                              sim::Assignment& scratch,
                              std::vector<sim::Assignment>& out) {
  const std::size_t num_segments = cuts.size() + 1;
  if (seg == num_segments) {
    out.push_back(scratch);
    return;
  }
  const std::size_t first = seg == 0 ? 0 : cuts[seg - 1];
  const std::size_t last = seg == cuts.size() ? layers - 1 : cuts[seg] - 1;
  const ComponentId prev = seg == 0 ? ComponentId::kGpu : scratch[first - 1];
  for (std::size_t c = 0; c < kNumComponents; ++c) {
    const auto comp = static_cast<ComponentId>(c);
    if (seg > 0 && comp == prev) continue;  // equal would merge segments
    for (std::size_t l = first; l <= last; ++l) scratch[l] = comp;
    emit_component_sequences(cuts, layers, seg + 1, scratch, out);
  }
}

/// Iterates all k-subsets of cut positions {1..layers-1}.
void emit_cut_choices(std::size_t layers, std::size_t num_cuts,
                      std::size_t next, std::vector<std::size_t>& cuts,
                      sim::Assignment& scratch,
                      std::vector<sim::Assignment>& out) {
  if (cuts.size() == num_cuts) {
    emit_component_sequences(cuts, layers, 0, scratch, out);
    return;
  }
  for (std::size_t pos = next; pos <= layers - 1; ++pos) {
    cuts.push_back(pos);
    emit_cut_choices(layers, num_cuts, pos + 1, cuts, scratch, out);
    cuts.pop_back();
  }
}

}  // namespace

double count_assignments(std::size_t layers, std::size_t stage_limit) {
  OB_REQUIRE(layers >= 1, "count_assignments: zero layers");
  OB_REQUIRE(stage_limit >= 1, "count_assignments: bad stage limit");
  const auto k = static_cast<double>(kNumComponents);
  double total = 0.0;
  const std::size_t max_stages = std::min(stage_limit, layers);
  for (std::size_t s = 1; s <= max_stages; ++s) {
    total += binomial(layers - 1, s - 1) * k *
             std::pow(k - 1.0, static_cast<double>(s - 1));
  }
  return total;
}

double count_mappings(const models::ModelZoo& zoo, const workload::Workload& w,
                      std::size_t stage_limit) {
  double total = 1.0;
  for (const std::size_t layers : w.layer_counts(zoo)) {
    total *= count_assignments(layers, stage_limit);
  }
  return total;
}

std::vector<sim::Assignment> enumerate_assignments(std::size_t layers,
                                                   std::size_t stage_limit,
                                                   std::size_t max_count) {
  const double count = count_assignments(layers, stage_limit);
  OB_REQUIRE(count <= static_cast<double>(max_count),
             "enumerate_assignments: space exceeds max_count");
  std::vector<sim::Assignment> out;
  out.reserve(static_cast<std::size_t>(count));
  sim::Assignment scratch(layers, ComponentId::kGpu);
  std::vector<std::size_t> cuts;
  const std::size_t max_stages = std::min(stage_limit, layers);
  for (std::size_t s = 1; s <= max_stages; ++s) {
    emit_cut_choices(layers, s - 1, 1, cuts, scratch, out);
  }
  return out;
}

ExhaustiveScheduler::ExhaustiveScheduler(std::string name,
                                         const models::ModelZoo& zoo,
                                         WorkloadEvaluatorFactory evaluator,
                                         ExhaustiveConfig config)
    : name_(std::move(name)),
      zoo_(&zoo),
      factory_(std::move(evaluator)),
      config_(config) {
  OB_REQUIRE(factory_ != nullptr, "ExhaustiveScheduler: null factory");
}

core::ScheduleResult ExhaustiveScheduler::schedule(const workload::Workload& w) {
  OB_REQUIRE(w.size() > 0, "ExhaustiveScheduler: empty workload");
  const auto start = std::chrono::steady_clock::now();

  const double space = count_mappings(*zoo_, w, config_.stage_limit);
  OB_REQUIRE(space <= static_cast<double>(config_.max_mappings),
             "ExhaustiveScheduler: mapping space exceeds max_mappings");

  const core::MappingEvaluator evaluate = factory_(w);
  const std::vector<std::size_t> counts = w.layer_counts(*zoo_);

  std::vector<std::vector<sim::Assignment>> per_dnn;
  per_dnn.reserve(counts.size());
  for (const std::size_t layers : counts) {
    per_dnn.push_back(enumerate_assignments(layers, config_.stage_limit,
                                            config_.max_mappings));
  }

  core::ScheduleResult result;
  result.expected_reward = -std::numeric_limits<double>::infinity();

  // Odometer over the Cartesian product of per-DNN assignment lists.
  std::vector<std::size_t> idx(counts.size(), 0);
  for (;;) {
    std::vector<sim::Assignment> pick;
    pick.reserve(counts.size());
    for (std::size_t d = 0; d < counts.size(); ++d) {
      pick.push_back(per_dnn[d][idx[d]]);
    }
    sim::Mapping m(std::move(pick));
    const double r = evaluate(m);
    ++result.evaluations;
    if (r > result.expected_reward) {
      result.expected_reward = r;
      result.mapping = std::move(m);
    }

    std::size_t d = 0;
    while (d < idx.size() && ++idx[d] == per_dnn[d].size()) {
      idx[d] = 0;
      ++d;
    }
    if (d == idx.size()) break;
  }

  result.decision_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace omniboost::sched
