#pragma once
/// \file clock.hpp
/// A monotonic wall clock with a speed dial, for the live serving daemon.
///
/// The daemon timestamps incoming commands from real elapsed time, but tests
/// and CI cannot afford to idle in real time — a PacedClock therefore reports
/// `elapsed_real_seconds * time_scale`, so `--time-scale 100` makes one real
/// second read as 100 scenario seconds. The clock is monotonic by
/// construction (std::chrono::steady_clock underneath, never the adjustable
/// system clock), which is what keeps the recorded trace's timestamps
/// non-decreasing — a workload::Scenario validity requirement.

#include <chrono>

namespace omniboost::util {

/// Monotonic seconds-since-construction, scaled by a fixed factor.
class PacedClock {
 public:
  /// \p time_scale: scenario seconds per real second; must be finite and
  /// > 0 (std::invalid_argument otherwise). 1.0 is real time.
  explicit PacedClock(double time_scale = 1.0);

  /// Scaled elapsed seconds since construction. Monotonically non-decreasing
  /// across calls.
  double now_s() const;

  double scale() const { return scale_; }

 private:
  std::chrono::steady_clock::time_point start_;
  double scale_ = 1.0;
};

}  // namespace omniboost::util
