#include "device/device.hpp"

#include <stdexcept>

namespace omniboost::device {

std::string_view component_name(ComponentId id) {
  switch (id) {
    case ComponentId::kGpu: return "GPU";
    case ComponentId::kBigCpu: return "big";
    case ComponentId::kLittleCpu: return "LITTLE";
  }
  throw std::invalid_argument("component_name: unknown ComponentId");
}

double ComponentSpec::kind_efficiency(models::KernelKind kind) const {
  using models::KernelKind;
  switch (kind) {
    case KernelKind::kGemm:
      return efficiency.gemm;
    case KernelKind::kDirectConv:
      return efficiency.direct_conv;
    case KernelKind::kDepthwiseConv:
      return efficiency.depthwise;
    case KernelKind::kIm2col:
    case KernelKind::kBias:
    case KernelKind::kActivation:
    case KernelKind::kPool:
    case KernelKind::kNorm:
    case KernelKind::kEltwiseAdd:
    case KernelKind::kConcat:
    case KernelKind::kSoftmax:
      return efficiency.elementwise;
  }
  throw std::invalid_argument("kind_efficiency: unknown KernelKind");
}

DeviceSpec make_hikey970() {
  DeviceSpec d;
  d.name = "HiKey970";
  d.dram_bw_gbps = 8.0;           // LPDDR4X achievable aggregate
  d.memory_budget_bytes = 4.0e9;  // 6 GB minus OS / framework residency
  d.per_stream_overhead_bytes = 450e6;
  d.per_inference_overhead_s = 20e-3;

  ComponentSpec gpu;
  gpu.name = "Mali-G72 MP12";
  gpu.peak_gflops = 230.0;        // 12 cores @ 767 MHz fp32
  gpu.mem_bw_gbps = 10.0;
  gpu.kernel_overhead_s = 60e-6;  // OpenCL dispatch
  gpu.efficiency = {/*gemm=*/0.40, /*direct=*/0.35, /*depthwise=*/0.08,
                    /*elementwise=*/0.20};
  gpu.working_set_budget_bytes = 950e6;
  gpu.contention_exponent = 2.0;

  ComponentSpec big;
  big.name = "Cortex-A73 x4 @ 2.36 GHz";
  big.peak_gflops = 75.5;         // 4 cores x 8 fp32 FLOP/cycle x 2.36 GHz
  big.mem_bw_gbps = 8.0;
  big.kernel_overhead_s = 8e-6;
  big.efficiency = {/*gemm=*/0.40, /*direct=*/0.35, /*depthwise=*/0.30,
                    /*elementwise=*/0.25};
  big.working_set_budget_bytes = 600e6;
  big.contention_exponent = 1.1;

  ComponentSpec little;
  little.name = "Cortex-A53 x4 @ 1.8 GHz";
  little.peak_gflops = 28.8;      // 4 cores x 4 fp32 FLOP/cycle x 1.8 GHz
  little.mem_bw_gbps = 4.5;
  little.kernel_overhead_s = 14e-6;
  little.efficiency = {/*gemm=*/0.30, /*direct=*/0.27, /*depthwise=*/0.25,
                       /*elementwise=*/0.20};
  little.working_set_budget_bytes = 300e6;
  little.contention_exponent = 1.0;

  d.components = {gpu, big, little};
  d.link = LinkSpec{3.0, 1e-3};
  return d;
}

}  // namespace omniboost::device
