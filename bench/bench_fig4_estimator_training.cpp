/// \file bench_fig4_estimator_training.cpp
/// Regenerates Figure 4 (§V): training and validation L1-loss curves of the
/// throughput estimator over 100 epochs on the 500-workload design-time
/// dataset (400 train / 100 validation).
///
/// Paper shape to reproduce: both curves fall from ~0.3 and flatten near
/// ~0.1-0.15 with a modest train/validation gap; wall-clock training time
/// under a minute.

#include <chrono>

#include "bench_common.hpp"

using namespace omniboost;

int main() {
  constexpr std::uint64_t kSeed = 42;
  bench::banner("Fig. 4 — estimator training curves", "Figure 4, Section V",
                kSeed);

  bench::Context ctx;
  std::printf("estimator: ResNet9-style CNN, GELU, %zu trainable parameters "
              "(paper: 20,044)\n",
              core::ThroughputEstimator(ctx.embedding().models_dim(),
                                        ctx.embedding().layers_dim())
                  .num_params());
  std::printf("dataset: 500 random mixes of 1-5 DNNs, 400 train / 100 val, "
              "L1 loss, Adam, 100 epochs\n\n");

  const auto start = std::chrono::steady_clock::now();
  const nn::TrainHistory h =
      ctx.train_estimator(bench::scaled(500, 80), bench::scaled(100, 20),
                          bench::scaled(100, 3), kSeed);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  util::Table t({"epoch", "train loss", "validation loss"});
  for (std::size_t e = 0; e < h.train_loss.size(); ++e) {
    if (e % 5 != 0 && e + 1 != h.train_loss.size()) continue;  // readable
    t.add_row(std::to_string(e + 1), {h.train_loss[e], h.val_loss[e]}, 4);
  }
  bench::report("fig4_estimator_training", t);

  std::printf("\nfinal: train=%.4f val=%.4f | training wall-clock: %.1fs "
              "(paper: under a minute on a GTX 1660 Ti)\n",
              h.train_loss.back(), h.val_loss.back(), seconds);
  std::printf("paper check: validation loss flattens near ~0.12; convergence "
              "without divergence or oscillation\n");
  return 0;
}
