/// \file bench_utilization.cpp
/// Evidence for the paper's core narrative (§I, §V-A): "mapping multiple
/// DNNs only on computationally strong processing elements saturates these
/// units... OmniBoost finds mappings that evenly distribute the given
/// workload." Using the traced simulator, this bench prints per-component
/// utilization and queue pressure for each scheduler on a heavy 4-DNN mix.

#include "bench_common.hpp"
#include "sched/greedy.hpp"

using namespace omniboost;

namespace {

void report_scheduler(bench::Context& ctx, const workload::Workload& w,
                      const std::string& name, const sim::Mapping& m,
                      util::Table& t, double baseline_t) {
  const auto traced = ctx.board().simulate_traced(w.resolve(ctx.zoo()), m);
  if (!traced.report.feasible) {
    t.add_row({name, "-", "-", "-", "infeasible", "-"});
    return;
  }
  const auto& c = traced.trace.components;
  t.add_row({name,
             util::fmt(100.0 * c[0].utilization(), 1) + "% (q" +
                 std::to_string(c[0].max_queue_depth) + ")",
             util::fmt(100.0 * c[1].utilization(), 1) + "% (q" +
                 std::to_string(c[1].max_queue_depth) + ")",
             util::fmt(100.0 * c[2].utilization(), 1) + "% (q" +
                 std::to_string(c[2].max_queue_depth) + ")",
             util::fmt(traced.report.avg_throughput, 2),
             "x" + util::fmt(traced.report.avg_throughput / baseline_t, 2)});
}

}  // namespace

int main() {
  constexpr std::uint64_t kSeed = 37;
  bench::banner("Utilization — who saturates, who balances",
                "Sections I and V-A (saturation narrative)", kSeed);

  bench::Context ctx;
  std::printf("training the throughput estimator (calibrated campaign, see EXPERIMENTS.md)...\n\n");
  ctx.train_estimator();

  auto baseline = sched::AllOnScheduler::gpu_baseline(ctx.zoo());
  sched::MosaicScheduler mosaic(ctx.zoo(), ctx.device());
  sched::GaScheduler ga(ctx.zoo(), ctx.device());
  sched::GreedyScheduler greedy(ctx.zoo(), ctx.device());
  core::OmniBoostScheduler omni(ctx.zoo(), ctx.embedding(), ctx.estimator());

  util::Rng rng(kSeed);
  for (int mix = 1; mix <= 3; ++mix) {
    const workload::Workload w = workload::random_mix(rng, 4);
    const double tb = ctx.measure(
        w, sim::Mapping::all_on(w.layer_counts(ctx.zoo()),
                                device::ComponentId::kGpu));
    if (tb <= 0.0) continue;

    std::printf("--- mix-%d: %s ---\n", mix, w.describe().c_str());
    util::Table t({"scheduler", "GPU util", "big util", "LITTLE util",
                   "T (inf/s)", "vs baseline"});
    report_scheduler(ctx, w, "Baseline", baseline.schedule(w).mapping, t, tb);
    report_scheduler(ctx, w, "MOSAIC", mosaic.schedule(w).mapping, t, tb);
    report_scheduler(ctx, w, "GA", ga.schedule(w).mapping, t, tb);
    report_scheduler(ctx, w, "Greedy", greedy.schedule(w).mapping, t, tb);
    report_scheduler(ctx, w, "OmniBoost", omni.schedule(w).mapping, t, tb);
    bench::report("utilization_mix" + std::to_string(mix), t);
    std::printf("\n");
  }

  std::printf("paper check: the baseline pins the GPU near 100%% with deep "
              "queues and idle CPUs; OmniBoost spreads busy time across all "
              "three components and wins on T\n");
  return 0;
}
