// sched::FallbackScheduler: the decision-deadline guard's contracts.
//  * deadline_ms == 0 never invokes the primary; every serving epoch is
//    decided by the fallback, bit-identically to running the fallback alone
//  * a deadline no decision can miss always accepts the primary
//  * a throwing primary burns its attempt ladder and the fallback decides
//  * construction validates both schedulers and every config field

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>

#include "core/serving.hpp"
#include "sched/fallback.hpp"
#include "sched/greedy.hpp"
#include "util/rng.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace omniboost;
using models::ModelId;
using sched::FallbackConfig;
using sched::FallbackScheduler;
using workload::Scenario;

const models::ModelZoo& zoo() {
  static const models::ModelZoo z;
  return z;
}

const device::DeviceSpec& spec() {
  static const device::DeviceSpec s = device::make_hikey970();
  return s;
}

const sim::DesSimulator& board() {
  static const sim::DesSimulator b(spec());
  return b;
}

/// Counts invocations so tests can prove the primary was (never) consulted.
class CountingScheduler final : public core::IScheduler {
 public:
  explicit CountingScheduler(std::unique_ptr<core::IScheduler> inner)
      : inner_(std::move(inner)) {}
  std::string name() const override { return "counting"; }
  core::ScheduleResult schedule(const workload::Workload& w) override {
    ++calls_;
    return inner_->schedule(w);
  }
  core::ScheduleResult reschedule(const workload::Workload& w,
                                  const sim::Mapping& previous,
                                  const core::ScheduleContext& ctx) override {
    ++calls_;
    return inner_->reschedule(w, previous, ctx);
  }
  std::size_t calls() const { return calls_; }

 private:
  std::unique_ptr<core::IScheduler> inner_;
  std::size_t calls_ = 0;
};

/// A primary that always throws — the pathological scheduler the guard must
/// contain.
class ThrowingScheduler final : public core::IScheduler {
 public:
  std::string name() const override { return "throwing"; }
  core::ScheduleResult schedule(const workload::Workload&) override {
    ++calls_;
    throw std::runtime_error("scheduler exploded");
  }
  std::size_t calls_ = 0;
};

std::unique_ptr<CountingScheduler> counting_greedy() {
  return std::make_unique<CountingScheduler>(
      std::make_unique<sched::GreedyScheduler>(zoo(), spec()));
}

/// Serving-relevant decision state, excluding wall-clock latency (which the
/// wrapper legitimately changes).
std::string fingerprint(const core::EpochReport& ep) {
  std::string out = ep.event + "|" + ep.mix + "|";
  for (const sim::Assignment& a : ep.decision.mapping.assignments())
    for (const device::ComponentId c : a)
      out += std::to_string(static_cast<int>(c));
  char buf[64];
  std::snprintf(buf, sizeof(buf), "|%.17g|%.17g|", ep.measured_throughput,
                ep.decision.expected_reward);
  out += buf;
  out += ep.feasible ? "F" : "f";
  return out;
}

Scenario churny_scenario() {
  workload::ScenarioConfig cfg;
  cfg.events = 12;
  cfg.max_concurrent = 3;
  cfg.depart_bias = 0.5;
  util::Rng rng(util::fork_stream(42, 0));
  return workload::random_scenario(rng, cfg);
}

TEST(FallbackScheduler, ZeroDeadlineServesEveryEpochViaFallbackOnly) {
  const Scenario s = churny_scenario();

  // Reference: the fallback (Greedy) serving alone.
  sched::GreedyScheduler plain(zoo(), spec());
  const core::ServingReport direct =
      core::ServingRuntime(zoo(), board()).run(plain, s);

  auto primary = counting_greedy();
  CountingScheduler* primary_raw = primary.get();
  FallbackConfig fc;
  fc.deadline_ms = 0.0;  // never consult the primary
  FallbackScheduler guard(std::move(primary),
                          std::make_unique<sched::GreedyScheduler>(zoo(),
                                                                   spec()),
                          fc);
  const core::ServingReport guarded =
      core::ServingRuntime(zoo(), board()).run(guard, s);

  // The primary was provably never invoked; the fallback decided everything.
  EXPECT_EQ(primary_raw->calls(), 0u);
  EXPECT_EQ(guard.stats().primary_decisions, 0u);
  EXPECT_EQ(guard.stats().fallback_decisions, guarded.decisions);
  EXPECT_EQ(guard.stats().deadline_misses, 0u);
  EXPECT_EQ(guard.stats().retries, 0u);

  // Every epoch was served with a decision bit-identical to the fallback
  // serving alone (deadline 0 is the deterministic extreme).
  ASSERT_EQ(guarded.epochs.size(), direct.epochs.size());
  ASSERT_GT(guarded.decisions, 0u);
  for (std::size_t i = 0; i < guarded.epochs.size(); ++i)
    EXPECT_EQ(fingerprint(guarded.epochs[i]), fingerprint(direct.epochs[i]))
        << "epoch " << i;
}

TEST(FallbackScheduler, GenerousDeadlineAlwaysAcceptsThePrimary) {
  const Scenario s = churny_scenario();
  auto primary = counting_greedy();
  CountingScheduler* primary_raw = primary.get();
  FallbackConfig fc;
  fc.deadline_ms = 1e9;  // ~11.5 days: no Greedy decision can miss it
  FallbackScheduler guard(std::move(primary),
                          std::make_unique<sched::GreedyScheduler>(zoo(),
                                                                   spec()),
                          fc);
  const core::ServingReport rep =
      core::ServingRuntime(zoo(), board()).run(guard, s);
  EXPECT_GT(rep.decisions, 0u);
  EXPECT_EQ(primary_raw->calls(), rep.decisions);
  EXPECT_EQ(guard.stats().primary_decisions, rep.decisions);
  EXPECT_EQ(guard.stats().fallback_decisions, 0u);
  EXPECT_EQ(guard.stats().deadline_misses, 0u);
  EXPECT_EQ(guard.stats().exceptions, 0u);
  EXPECT_EQ(guard.stats().retries, 0u);
}

TEST(FallbackScheduler, ThrowingPrimaryBurnsItsAttemptsThenFallbackDecides) {
  auto primary = std::make_unique<ThrowingScheduler>();
  ThrowingScheduler* primary_raw = primary.get();
  FallbackConfig fc;
  fc.deadline_ms = 50.0;
  fc.max_attempts = 3;
  FallbackScheduler guard(std::move(primary),
                          std::make_unique<sched::GreedyScheduler>(zoo(),
                                                                   spec()),
                          fc);

  const workload::Workload w{{ModelId::kAlexNet, ModelId::kMobileNet}};
  const core::ScheduleResult r = guard.schedule(w);
  EXPECT_EQ(primary_raw->calls_, 3u);  // full ladder burned
  EXPECT_EQ(guard.stats().exceptions, 3u);
  EXPECT_EQ(guard.stats().retries, 2u);
  EXPECT_EQ(guard.stats().fallback_decisions, 1u);
  EXPECT_EQ(guard.stats().primary_decisions, 0u);
  // The fallback's mapping is the real Greedy decision.
  sched::GreedyScheduler plain(zoo(), spec());
  const core::ScheduleResult direct = plain.schedule(w);
  EXPECT_EQ(r.mapping.assignments(), direct.mapping.assignments());
  EXPECT_GE(r.decision_seconds, 0.0);
  // Even the serving path survives a pathological primary end to end.
  const core::ServingReport rep = core::ServingRuntime(zoo(), board())
                                      .run(guard, churny_scenario());
  EXPECT_GT(rep.decisions, 0u);
  EXPECT_EQ(guard.stats().fallback_decisions, 1u + rep.decisions);
}

TEST(FallbackScheduler, NameComposesAndAccessorsExposeTheParts) {
  FallbackConfig fc;
  fc.deadline_ms = 0.0;
  auto guard = sched::make_greedy_fallback(counting_greedy(), zoo(), spec(),
                                           fc);
  EXPECT_EQ(guard->name(), "counting+fallback(Greedy)");
  EXPECT_EQ(guard->config().deadline_ms, 0.0);
  EXPECT_EQ(guard->primary().name(), "counting");
  EXPECT_EQ(guard->fallback().name(), "Greedy");
}

TEST(FallbackScheduler, ConstructionValidatesSchedulersAndConfig) {
  const auto greedy = [] {
    return std::make_unique<sched::GreedyScheduler>(zoo(), spec());
  };
  EXPECT_THROW(FallbackScheduler(nullptr, greedy(), {}),
               std::invalid_argument);
  EXPECT_THROW(FallbackScheduler(greedy(), nullptr, {}),
               std::invalid_argument);
  const auto bad = [&](FallbackConfig fc) {
    EXPECT_THROW(FallbackScheduler(greedy(), greedy(), fc),
                 std::invalid_argument);
  };
  FallbackConfig fc;
  fc.deadline_ms = -1.0;
  bad(fc);
  fc.deadline_ms = std::numeric_limits<double>::quiet_NaN();
  bad(fc);
  fc.deadline_ms = std::numeric_limits<double>::infinity();
  bad(fc);
  fc = {};
  fc.max_attempts = 0;
  bad(fc);
  fc = {};
  fc.backoff_multiplier = 0.5;
  bad(fc);
  fc.backoff_multiplier = std::numeric_limits<double>::quiet_NaN();
  bad(fc);
}

}  // namespace
