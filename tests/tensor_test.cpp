// Unit and property tests for the dense tensor substrate.

#include <gtest/gtest.h>

#include <sstream>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace {

using omniboost::tensor::Shape;
using omniboost::tensor::shape_size;
using omniboost::tensor::Tensor;

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.rank(), 0u);
  EXPECT_EQ(t.size(), 0u);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillValueConstructor) {
  Tensor t({4}, 2.5f);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], 2.5f);
}

TEST(Tensor, ZeroExtentRejected) {
  EXPECT_THROW(Tensor({2, 0, 3}), std::invalid_argument);
}

TEST(Tensor, RowMajorLayout) {
  Tensor t({2, 3});
  t.at({1, 2}) = 7.0f;
  EXPECT_EQ(t[5], 7.0f);  // offset 1*3 + 2
  t.at({0, 1}) = 3.0f;
  EXPECT_EQ(t[1], 3.0f);
}

TEST(Tensor, OffsetMatchesAt) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.offset({1, 2, 3}), 1u * 12 + 2u * 4 + 3u);
  EXPECT_EQ(t.offset({0, 0, 0}), 0u);
}

TEST(Tensor, BoundsChecked) {
  Tensor t({2, 3});
  EXPECT_THROW(t.at({2, 0}), std::invalid_argument);
  EXPECT_THROW(t.at({0, 3}), std::invalid_argument);
  EXPECT_THROW(t.at({0}), std::invalid_argument);  // rank mismatch
  EXPECT_THROW(t[6], std::invalid_argument);
  EXPECT_THROW(t.extent(2), std::invalid_argument);
}

TEST(Tensor, FromVectorAndFromData) {
  const Tensor v = Tensor::from_vector({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(v.rank(), 1u);
  EXPECT_EQ(v[1], 2.0f);
  const Tensor m = Tensor::from_data({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(m.at({1, 0}), 3.0f);
  EXPECT_THROW(Tensor::from_data({2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, ReshapePreservesData) {
  const Tensor t = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.at({2, 1}), 6.0f);
  EXPECT_THROW(t.reshaped({4, 2}), std::invalid_argument);
}

TEST(Tensor, ElementwiseArithmetic) {
  const Tensor a = Tensor::from_vector({1, 2, 3});
  const Tensor b = Tensor::from_vector({10, 20, 30});
  EXPECT_EQ((a + b)[2], 33.0f);
  EXPECT_EQ((b - a)[0], 9.0f);
  EXPECT_EQ((a * b)[1], 40.0f);
  EXPECT_EQ((a * 2.0f)[2], 6.0f);
  EXPECT_EQ((2.0f * a)[2], 6.0f);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a({2, 2});
  Tensor b({4});
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a *= b, std::invalid_argument);
}

TEST(Tensor, Reductions) {
  const Tensor t = Tensor::from_vector({-1, 5, 2, -7});
  EXPECT_FLOAT_EQ(t.sum(), -1.0f);
  EXPECT_FLOAT_EQ(t.mean(), -0.25f);
  EXPECT_FLOAT_EQ(t.min(), -7.0f);
  EXPECT_FLOAT_EQ(t.max(), 5.0f);
  EXPECT_EQ(t.argmax(), 1u);
  EXPECT_FLOAT_EQ(t.l2_norm(), std::sqrt(1.0f + 25.0f + 4.0f + 49.0f));
}

TEST(Tensor, EmptyReductionsThrow) {
  Tensor t;
  EXPECT_THROW(t.min(), std::invalid_argument);
  EXPECT_THROW(t.max(), std::invalid_argument);
  EXPECT_THROW(t.argmax(), std::invalid_argument);
  EXPECT_EQ(t.mean(), 0.0f);
}

TEST(Tensor, ApplyTransformsEveryElement) {
  Tensor t = Tensor::from_vector({1, 2, 3});
  t.apply([](float x) { return x * x; });
  EXPECT_EQ(t[2], 9.0f);
}

TEST(Tensor, EqualityIsStructural) {
  const Tensor a = Tensor::from_data({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::from_data({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(a, b);
  b[0] = 9.0f;
  EXPECT_NE(a, b);
  EXPECT_NE(a, a.reshaped({4}));  // same data, different shape
}

TEST(Tensor, ShapeSizeHelper) {
  EXPECT_EQ(shape_size({}), 1u);
  EXPECT_EQ(shape_size({3, 4, 5}), 60u);
}

TEST(Tensor, ShapeStreamFormat) {
  // Shape is an alias of std::vector, so ADL will not find the inserter;
  // call it qualified as library code does.
  std::ostringstream os;
  omniboost::tensor::operator<<(os, Shape{3, 11, 37});
  EXPECT_EQ(os.str(), "[3, 11, 37]");
}

// Property: (a + b) - b == a for random tensors.
class TensorAlgebraProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TensorAlgebraProperty, AddSubRoundTrip) {
  omniboost::util::Rng rng(GetParam());
  Tensor a({3, 5, 2}), b({3, 5, 2});
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<float>(rng.uniform(-10, 10));
    b[i] = static_cast<float>(rng.uniform(-10, 10));
  }
  const Tensor c = (a + b) - b;
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(c[i], a[i], 1e-4f);
}

TEST_P(TensorAlgebraProperty, ScalarDistributes) {
  omniboost::util::Rng rng(GetParam() ^ 0xabcd);
  Tensor a({4, 4});
  for (std::size_t i = 0; i < a.size(); ++i)
    a[i] = static_cast<float>(rng.uniform(-5, 5));
  const Tensor lhs = a * 3.0f;
  const Tensor rhs = a + a + a;
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(lhs[i], rhs[i], 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TensorAlgebraProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
