#pragma once
/// \file gradcheck.hpp
/// Numerical gradient verification used by the property-based test suite to
/// prove every layer's analytic backward pass against central differences.

#include <cstddef>

#include "nn/loss.hpp"
#include "nn/module.hpp"

namespace omniboost::nn {

/// Result of a gradient check: worst relative error observed.
struct GradCheckResult {
  double max_input_err = 0.0;  ///< worst rel. error of dLoss/dInput
  double max_param_err = 0.0;  ///< worst rel. error over all parameters
};

/// Compares analytic gradients of `loss(module(x), target)` against central
/// differences.
///
/// \param module  layer under test (must be in training mode)
/// \param x       input probe
/// \param target  regression target with the module's output shape
/// \param loss    criterion (MSE recommended: smooth everywhere)
/// \param eps     finite-difference step
GradCheckResult check_gradients(Module& module, const Tensor& x,
                                const Tensor& target, const Loss& loss,
                                float eps = 1e-2f);

}  // namespace omniboost::nn
