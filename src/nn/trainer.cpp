#include "nn/trainer.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <thread>

#include "nn/serialize.hpp"
#include "util/require.hpp"
#include "util/thread_pool.hpp"

namespace omniboost::nn {

std::pair<Dataset, Dataset> Dataset::split_tail(std::size_t n) const {
  OB_REQUIRE(n <= size(), "Dataset::split_tail: n exceeds dataset size");
  OB_REQUIRE(inputs.size() == targets.size(), "Dataset: ragged dataset");
  Dataset head, tail;
  const std::size_t cut = size() - n;
  head.inputs.assign(inputs.begin(), inputs.begin() + cut);
  head.targets.assign(targets.begin(), targets.begin() + cut);
  tail.inputs.assign(inputs.begin() + cut, inputs.end());
  tail.targets.assign(targets.begin() + cut, targets.end());
  return {std::move(head), std::move(tail)};
}

Tensor stack(const std::vector<Tensor>& samples,
             const std::vector<std::size_t>& indices) {
  OB_REQUIRE(!indices.empty(), "stack: empty index list");
  const Tensor& first = samples.at(indices.front());
  tensor::Shape shape;
  shape.push_back(indices.size());
  for (std::size_t e : first.shape()) shape.push_back(e);

  Tensor out(shape);
  const std::size_t stride = first.size();
  for (std::size_t k = 0; k < indices.size(); ++k) {
    const Tensor& s = samples.at(indices[k]);
    OB_REQUIRE(s.shape() == first.shape(), "stack: heterogeneous shapes");
    std::copy(s.data(), s.data() + stride, out.data() + k * stride);
  }
  return out;
}

namespace {

/// Loss of one evaluation batch [start, end) through \p model (inference
/// mode assumed). Shared by the serial and parallel paths so both compute
/// the exact same per-batch doubles.
float batch_loss(Module& model, const Loss& loss, const Dataset& data,
                 std::size_t start, std::size_t end) {
  std::vector<std::size_t> idx(end - start);
  std::iota(idx.begin(), idx.end(), start);
  const Tensor pred = model.forward(stack(data.inputs, idx));
  const Tensor tgt = stack(data.targets, idx);
  return loss.compute(pred, tgt).value;
}

/// Reusable parallel-validation context: one pool plus one weight-identical
/// replica per worker, built once and re-synced with the live model on
/// every run() — so a 100-epoch training pays thread/architecture
/// construction once, not per epoch. Per-batch losses land in a slot per
/// batch and reduce in batch order: the identical additions, in the
/// identical order, as the serial evaluate loop.
class ParallelValidator {
 public:
  ParallelValidator(std::size_t workers, std::size_t batches,
                    const ModuleFactory& replicate)
      : pool_(util::ThreadPool::clamped(workers, batches)) {
    replicas_.reserve(pool_.size());
    for (std::size_t w = 0; w < pool_.size(); ++w) {
      std::unique_ptr<Module> r = replicate();
      OB_REQUIRE(r != nullptr, "evaluate: replicate factory returned null");
      r->set_training(false);
      replicas_.push_back(std::move(r));
    }
  }

  double run(Module& model, const Loss& loss, const Dataset& data,
             std::size_t batch_size) {
    // Weight re-sync (the model trains between calls): one serialization
    // of the live model, loaded into every replica.
    std::stringstream weights;
    save_params(model, weights);
    const std::string blob = weights.str();
    for (const auto& r : replicas_) {
      std::istringstream is(blob);
      load_params(*r, is);
    }

    const std::size_t batches = (data.size() + batch_size - 1) / batch_size;
    std::vector<float> losses(batches, 0.0f);
    pool_.parallel_for(batches, [&](std::size_t b, std::size_t worker) {
      const std::size_t start = b * batch_size;
      const std::size_t end = std::min(start + batch_size, data.size());
      losses[b] = batch_loss(*replicas_[worker], loss, data, start, end);
    });

    double total = 0.0;
    for (std::size_t b = 0; b < batches; ++b) {
      const std::size_t start = b * batch_size;
      const std::size_t end = std::min(start + batch_size, data.size());
      total += static_cast<double>(losses[b]) *
               static_cast<double>(end - start);
    }
    return total / static_cast<double>(data.size());
  }

 private:
  util::ThreadPool pool_;
  std::vector<std::unique_ptr<Module>> replicas_;
};

/// Serial evaluation shared by evaluate() and train_regression.
double evaluate_serial(Module& model, const Loss& loss, const Dataset& data,
                       std::size_t batch_size) {
  model.set_training(false);
  double total = 0.0;
  std::size_t count = 0;
  for (std::size_t start = 0; start < data.size(); start += batch_size) {
    const std::size_t end = std::min(start + batch_size, data.size());
    total += static_cast<double>(batch_loss(model, loss, data, start, end)) *
             static_cast<double>(end - start);
    count += end - start;
  }
  model.set_training(true);
  return total / static_cast<double>(count);
}

}  // namespace

double evaluate(Module& model, const Loss& loss, const Dataset& data,
                std::size_t batch_size, std::size_t workers,
                const ModuleFactory& replicate) {
  if (data.size() == 0) return 0.0;
  OB_REQUIRE(batch_size > 0, "evaluate: batch_size must be > 0");
  const std::size_t batches = (data.size() + batch_size - 1) / batch_size;
  if (workers > 1 && replicate != nullptr && batches > 1) {
    ParallelValidator validator(workers, batches, replicate);
    return validator.run(model, loss, data, batch_size);
  }
  return evaluate_serial(model, loss, data, batch_size);
}

TrainHistory train_regression(Module& model, const Loss& loss,
                              const Dataset& train, const Dataset& val,
                              const TrainConfig& config) {
  OB_REQUIRE(train.size() > 0, "train_regression: empty training set");
  OB_REQUIRE(train.inputs.size() == train.targets.size(),
             "train_regression: ragged training set");
  OB_REQUIRE(config.batch_size > 0, "train_regression: batch_size must be > 0");

  util::Rng rng(config.seed);
  Adam optim(model.params(), config.lr, 0.9f, 0.999f, 1e-8f,
             config.weight_decay);
  TrainHistory history;
  model.set_training(true);

  // Validation context built once for the whole run: pool threads and
  // replica architectures are reused across epochs, only the weights are
  // re-synced each time (see ParallelValidator).
  constexpr std::size_t kValBatch = 16;
  const std::size_t val_batches = (val.size() + kValBatch - 1) / kValBatch;
  std::unique_ptr<ParallelValidator> validator;
  if (config.workers > 1 && config.replicate != nullptr && val_batches > 1) {
    validator = std::make_unique<ParallelValidator>(config.workers,
                                                    val_batches,
                                                    config.replicate);
  }

  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    if (config.lr_schedule != nullptr) config.lr_schedule->apply(optim, epoch);
    rng.shuffle(order);
    double epoch_loss = 0.0;
    std::size_t seen = 0;
    for (std::size_t start = 0; start < order.size();
         start += config.batch_size) {
      const std::size_t end =
          std::min(start + config.batch_size, order.size());
      // BatchNorm needs >= 2 samples for meaningful batch statistics; fold a
      // trailing singleton into the previous batch instead of training on it.
      if (end - start < 2 && start != 0) break;
      const std::vector<std::size_t> idx(order.begin() + start,
                                         order.begin() + end);
      const Tensor x = stack(train.inputs, idx);
      const Tensor tgt = stack(train.targets, idx);

      optim.zero_grad();
      const Tensor pred = model.forward(x);
      const LossResult lr = loss.compute(pred, tgt);
      model.backward(lr.grad);
      optim.step();

      epoch_loss += static_cast<double>(lr.value) *
                    static_cast<double>(idx.size());
      seen += idx.size();
    }
    history.train_loss.push_back(epoch_loss / static_cast<double>(seen));
    if (val.size() > 0) {
      history.val_loss.push_back(
          validator != nullptr
              ? validator->run(model, loss, val, kValBatch)
              : evaluate_serial(model, loss, val, kValBatch));
    }
  }
  return history;
}

}  // namespace omniboost::nn
