// The distributed embeddings tensor and its mask rendering (paper §IV-A,
// Fig. 3).

#include <gtest/gtest.h>

#include "core/embedding.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace {

using namespace omniboost;
using core::EmbeddingTensor;
using models::ModelId;
using models::ModelZoo;
using sim::Assignment;
using sim::ComponentId;
using sim::Mapping;
using workload::Workload;

const ModelZoo& zoo() {
  static const ModelZoo z;
  return z;
}

class EmbeddingTest : public ::testing::Test {
 protected:
  device::DeviceSpec device_ = device::make_hikey970();
  device::CostModel cost_{device_};
  EmbeddingTensor emb_{zoo(), cost_};
};

TEST_F(EmbeddingTest, ShapeIsComponentsByModelsByLayers) {
  EXPECT_EQ(emb_.tensor().shape(),
            (tensor::Shape{device::kNumComponents, models::kNumModels,
                           zoo().max_layers()}));
  EXPECT_EQ(emb_.models_dim(), models::kNumModels);
  EXPECT_EQ(emb_.layers_dim(), zoo().max_layers());
}

TEST_F(EmbeddingTest, ValuesNormalizedToUnitInterval) {
  const auto& u = emb_.tensor();
  EXPECT_FLOAT_EQ(u.max(), 1.0f);
  EXPECT_GE(u.min(), 0.0f);
}

TEST_F(EmbeddingTest, ZeroPaddingBeyondModelLayers) {
  // AlexNet has far fewer layers than the L dimension; the tail is zero.
  const std::size_t m = models::model_index(ModelId::kAlexNet);
  const std::size_t n = zoo().network(ModelId::kAlexNet).num_layers();
  for (std::size_t c = 0; c < device::kNumComponents; ++c)
    for (std::size_t l = n; l < emb_.layers_dim(); ++l)
      EXPECT_EQ(emb_.tensor().at({c, m, l}), 0.0f);
}

TEST_F(EmbeddingTest, RealLayersHavePositiveCells) {
  for (ModelId id : models::kAllModels) {
    const std::size_t m = models::model_index(id);
    const std::size_t n = zoo().network(id).num_layers();
    for (std::size_t c = 0; c < device::kNumComponents; ++c)
      for (std::size_t l = 0; l < n; ++l)
        EXPECT_GT(emb_.tensor().at({c, m, l}), 0.0f)
            << model_name(id) << " layer " << l;
  }
}

TEST_F(EmbeddingTest, SlowComponentsHaveLargerCells) {
  // For compute-heavy layers, LITTLE should cost more than GPU.
  const std::size_t m = models::model_index(ModelId::kVgg19);
  const std::size_t gpu = device::component_index(ComponentId::kGpu);
  const std::size_t little =
      device::component_index(ComponentId::kLittleCpu);
  // VGG conv layers (skip pools which are memory-bound everywhere).
  EXPECT_GT(emb_.tensor().at({little, m, 2}), emb_.tensor().at({gpu, m, 2}));
}

TEST_F(EmbeddingTest, MaskedInputSelectsExactlyAssignedCells) {
  const Workload w{{ModelId::kAlexNet}};
  const std::size_t n = zoo().network(ModelId::kAlexNet).num_layers();
  Assignment a(n, ComponentId::kGpu);
  a[0] = ComponentId::kBigCpu;  // first layer on big, rest on GPU
  const tensor::Tensor input = emb_.masked_input(w, Mapping({a}));

  const std::size_t m = models::model_index(ModelId::kAlexNet);
  const std::size_t gpu = device::component_index(ComponentId::kGpu);
  const std::size_t big = device::component_index(ComponentId::kBigCpu);
  EXPECT_EQ(input.at({gpu, m, 0}), 0.0f);
  EXPECT_EQ(input.at({big, m, 0}), emb_.tensor().at({big, m, 0}));
  EXPECT_EQ(input.at({gpu, m, 1}), emb_.tensor().at({gpu, m, 1}));
  EXPECT_EQ(input.at({big, m, 1}), 0.0f);
}

TEST_F(EmbeddingTest, MaskedInputNonZeroCountEqualsTotalLayers) {
  util::Rng rng(9);
  const Workload w = workload::random_mix(rng, 3);
  const Mapping m = workload::random_mapping(rng, zoo(), w, 3);
  const tensor::Tensor input = emb_.masked_input(w, m);
  std::size_t nonzero = 0;
  for (std::size_t i = 0; i < input.size(); ++i) nonzero += input[i] != 0.0f;
  std::size_t total_layers = 0;
  for (std::size_t c : w.layer_counts(zoo())) total_layers += c;
  EXPECT_EQ(nonzero, total_layers);
}

TEST_F(EmbeddingTest, ModelsOutsideMixStayZero) {
  const Workload w{{ModelId::kAlexNet}};
  const Mapping m = Mapping::all_on(w.layer_counts(zoo()), ComponentId::kGpu);
  const tensor::Tensor input = emb_.masked_input(w, m);
  const std::size_t vgg = models::model_index(ModelId::kVgg19);
  for (std::size_t c = 0; c < device::kNumComponents; ++c)
    for (std::size_t l = 0; l < emb_.layers_dim(); ++l)
      EXPECT_EQ(input.at({c, vgg, l}), 0.0f);
}

TEST_F(EmbeddingTest, DuplicateModelInMixRejected) {
  const Workload w{{ModelId::kAlexNet, ModelId::kAlexNet}};
  const Mapping m = Mapping::all_on(w.layer_counts(zoo()), ComponentId::kGpu);
  EXPECT_THROW(emb_.masked_input(w, m), std::invalid_argument);
}

TEST_F(EmbeddingTest, ArityMismatchRejected) {
  const Workload w{{ModelId::kAlexNet, ModelId::kVgg19}};
  const Mapping one = Mapping::all_on(
      {zoo().network(ModelId::kAlexNet).num_layers()}, ComponentId::kGpu);
  EXPECT_THROW(emb_.masked_input(w, one), std::invalid_argument);
}

TEST_F(EmbeddingTest, MaxLayerTimeIsLittleCpuWorstCase) {
  // The normalization constant corresponds to a real measured maximum.
  EXPECT_GT(emb_.max_layer_time_s(), 0.0);
  EXPECT_LT(emb_.max_layer_time_s(), 10.0);
}

}  // namespace
