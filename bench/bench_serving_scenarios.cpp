/// \file bench_serving_scenarios.cpp
/// Dynamic serving scenarios: models arrive and depart at runtime and every
/// event forces a rescheduling decision. This driver replays seeded
/// arrival/departure scenarios at three churn levels through the
/// core::ServingRuntime and compares:
///
///  * OmniBoost-cold — every event re-runs the full-budget MCTS from
///    scratch (the naive extension of the paper's one-shot scheduler), vs.
///  * OmniBoost-warm — contextual reschedule(): surviving streams' previous
///    assignments seed the search, the evaluation memo carries over, and the
///    budget shrinks to OmniBoostConfig::rollout_fraction, vs.
///  * the stateless baselines (all-on-GPU, MOSAIC, greedy), whose
///    reschedule() is the default schedule() adapter.
///
/// Shapes to look for: warm incremental decisions >= 1.5x faster than cold
/// (measured ~2-3x at rollout_fraction 0.4) at equal-or-better mean
/// per-epoch throughput in aggregate (clearly better at medium/high churn,
/// within estimator noise at low churn), with LOWER mapping churn (the
/// prior pins surviving streams, so fewer layers move per event). The
/// GA is excluded: its measurement-driven fitness would burn minutes of
/// board time per event, which is exactly why it cannot serve dynamic
/// traffic (bench_fig5 covers its one-shot quality).
///
/// Tables: one per churn level plus the cold-vs-warm summary
/// (BENCH_serving_scenarios.json).

#include "bench_common.hpp"

#include "core/serving.hpp"
#include "sched/greedy.hpp"
#include "workload/scenario.hpp"

using namespace omniboost;

namespace {

struct ChurnLevel {
  const char* name;
  workload::ScenarioConfig config;
};

struct WarmColdStats {
  double incremental_s = 0.0;
  double mean_throughput = 0.0;
  double mean_churn = 0.0;
};

core::OmniBoostConfig omni_config(std::uint64_t seed) {
  core::OmniBoostConfig cfg;
  cfg.mcts.budget = bench::scaled(500, 48);
  cfg.mcts.seed = seed;
  cfg.batch_size = 8;  // batched evaluate path (decision-identical)
  return cfg;
}

void add_row(util::Table& t, const std::string& name,
             const core::ServingReport& r) {
  t.add_row({name, std::to_string(r.decisions),
             util::fmt(r.mean_throughput, 3), util::fmt(100.0 * r.mean_churn, 1),
             util::fmt(r.mean_incremental_decision_seconds, 4),
             util::fmt(r.total_decision_seconds, 3),
             std::to_string(r.total_evaluations),
             std::to_string(r.total_cache_hits)});
}

}  // namespace

int main() {
  constexpr std::uint64_t kSeed = 23;
  bench::banner("serving scenarios — warm-started rescheduling under churn",
                "beyond the paper: dynamic multi-DNN serving", kSeed);

  bench::Context ctx;
  std::printf("training the throughput estimator...\n\n");
  ctx.train_estimator();

  const std::size_t events = bench::scaled(14, 5);
  ChurnLevel levels[] = {
      {"low", {events, 1, 3, 0.25, 5.0}},
      {"medium", {events, 1, 4, 0.45, 3.0}},
      {"high", {events, 1, 5, 0.60, 1.5}},
  };

  util::Table summary({"churn level", "events", "cold incr s", "warm incr s",
                       "speedup", "cold T inf/s", "warm T inf/s",
                       "cold churn %", "warm churn %", "warm memo hits"});

  std::size_t level_index = 0;
  for (const ChurnLevel& level : levels) {
    util::Rng rng(util::fork_stream(kSeed, level_index++));
    const workload::Scenario scenario =
        workload::random_scenario(rng, level.config);
    std::printf("--- churn level %s: %s ---\n", level.name,
                scenario.describe().c_str());

    core::ServingConfig cold_cfg;
    cold_cfg.warm_start = false;
    core::ServingConfig warm_cfg;
    warm_cfg.warm_start = true;
    const core::ServingRuntime cold_rt(ctx.zoo(), ctx.board(), cold_cfg);
    const core::ServingRuntime warm_rt(ctx.zoo(), ctx.board(), warm_cfg);

    util::Table t({"scheduler", "decisions", "mean T inf/s", "mean churn %",
                   "incr decision s", "total decision s", "evals",
                   "memo hits"});

    auto baseline = sched::AllOnScheduler::gpu_baseline(ctx.zoo());
    add_row(t, "Baseline", cold_rt.run(baseline, scenario));
    sched::MosaicScheduler mosaic(ctx.zoo(), ctx.device());
    add_row(t, "MOSAIC", cold_rt.run(mosaic, scenario));
    sched::GreedyScheduler greedy(ctx.zoo(), ctx.device());
    add_row(t, "Greedy", cold_rt.run(greedy, scenario));

    core::OmniBoostScheduler omni_cold(ctx.zoo(), ctx.embedding(),
                                       ctx.estimator(), omni_config(kSeed));
    const core::ServingReport cold = cold_rt.run(omni_cold, scenario);
    add_row(t, "OmniBoost-cold", cold);

    core::OmniBoostScheduler omni_warm(ctx.zoo(), ctx.embedding(),
                                       ctx.estimator(), omni_config(kSeed));
    const core::ServingReport warm = warm_rt.run(omni_warm, scenario);
    add_row(t, "OmniBoost-warm", warm);

    bench::report(std::string("serving_scenarios_") + level.name, t);

    const double speedup =
        warm.mean_incremental_decision_seconds > 0.0
            ? cold.mean_incremental_decision_seconds /
                  warm.mean_incremental_decision_seconds
            : 0.0;
    std::printf("warm vs cold: x%.2f faster incremental decisions, "
                "T %.3f vs %.3f inf/s, churn %.1f%% vs %.1f%%\n\n",
                speedup, warm.mean_throughput, cold.mean_throughput,
                100.0 * warm.mean_churn, 100.0 * cold.mean_churn);

    summary.add_row({level.name, std::to_string(scenario.size()),
                     util::fmt(cold.mean_incremental_decision_seconds, 4),
                     util::fmt(warm.mean_incremental_decision_seconds, 4),
                     util::fmt(speedup, 2), util::fmt(cold.mean_throughput, 3),
                     util::fmt(warm.mean_throughput, 3),
                     util::fmt(100.0 * cold.mean_churn, 1),
                     util::fmt(100.0 * warm.mean_churn, 1),
                     std::to_string(warm.total_cache_hits)});
  }

  std::printf("--- cold vs warm summary ---\n");
  bench::report("serving_scenarios", summary);
  std::printf("\ncheck: speedup >= 1.5 at every churn level; warm T >= cold "
              "T in aggregate (within estimator noise per level) at lower "
              "warm churn\n");
  return 0;
}
