#include "models/net_builder.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace omniboost::models {

double LayerDesc::flops() const {
  double f = 0.0;
  for (const auto& k : kernels) f += k.flops;
  return f;
}

double LayerDesc::traffic_bytes() const {
  double b = 0.0;
  for (const auto& k : kernels) b += k.bytes;
  return b;
}

double NetworkDesc::total_flops() const {
  double f = 0.0;
  for (const auto& l : layers) f += l.flops();
  return f;
}

double NetworkDesc::total_weight_bytes() const {
  double b = 0.0;
  for (const auto& l : layers) b += l.weight_bytes;
  return b;
}

double NetworkDesc::max_activation_bytes() const {
  double b = 0.0;
  for (const auto& l : layers) b = std::max(b, l.output_bytes());
  return b;
}

std::size_t conv_out_extent(std::size_t in, std::size_t kernel,
                            std::size_t stride, std::size_t padding) {
  OB_REQUIRE(in + 2 * padding >= kernel, "conv_out_extent: kernel too large");
  return (in + 2 * padding - kernel) / stride + 1;
}

NetBuilder::NetBuilder(std::string name, Dims input) : current_(input) {
  OB_REQUIRE(input.count() > 0, "NetBuilder: degenerate input shape");
  net_.name = std::move(name);
  net_.input = input;
}

LayerDesc& NetBuilder::push(LayerKind kind, Dims output,
                            const std::string& name,
                            const std::string& fallback_prefix) {
  LayerDesc layer;
  layer.kind = kind;
  layer.input = current_;
  layer.output = output;
  layer.name = name.empty()
                   ? fallback_prefix + "_" + std::to_string(++auto_index_)
                   : name;
  net_.layers.push_back(std::move(layer));
  current_ = output;
  return net_.layers.back();
}

Dims NetBuilder::conv_out(const Dims& in, const ConvSpec& spec) {
  return Dims{spec.out_ch,
              conv_out_extent(in.h, spec.kh, spec.stride, spec.ph),
              conv_out_extent(in.w, spec.kw, spec.stride, spec.pw)};
}

double NetBuilder::add_conv_kernels(LayerDesc& layer, Dims in,
                                    const ConvSpec& spec) const {
  OB_REQUIRE(spec.out_ch > 0, "conv: out_ch must be positive");
  const Dims out = conv_out(in, spec);
  const double taps = static_cast<double>(spec.kh) * spec.kw;
  const double macs = taps * static_cast<double>(in.c) *
                      static_cast<double>(out.count());
  const double weight_bytes =
      4.0 * taps * static_cast<double>(in.c) * static_cast<double>(spec.out_ch);
  const double patch_bytes =
      4.0 * taps * static_cast<double>(in.c) *
      static_cast<double>(out.h) * static_cast<double>(out.w);

  if (spec.kh > 1 || spec.kw > 1) {
    // ARM-CL lowers non-1x1 convs to im2col + GEMM.
    layer.kernels.push_back(
        {KernelKind::kIm2col, 0.0, in.bytes() + patch_bytes});
    layer.kernels.push_back({KernelKind::kGemm, 2.0 * macs,
                             patch_bytes + weight_bytes + out.bytes()});
  } else {
    // 1x1 conv is a plain GEMM over the activation.
    layer.kernels.push_back({KernelKind::kGemm, 2.0 * macs,
                             in.bytes() + weight_bytes + out.bytes()});
  }
  layer.kernels.push_back(
      {KernelKind::kBias, static_cast<double>(out.count()), out.bytes()});
  layer.kernels.push_back({KernelKind::kActivation,
                           static_cast<double>(out.count()),
                           2.0 * out.bytes()});
  return weight_bytes + 4.0 * static_cast<double>(spec.out_ch) /*bias*/;
}

NetBuilder& NetBuilder::conv(std::size_t out_ch, std::size_t kernel,
                             std::size_t stride, std::size_t padding,
                             const std::string& name) {
  const Dims in = current_;
  const ConvSpec spec = ConvSpec::square(out_ch, kernel, stride, padding);
  LayerDesc& layer = push(LayerKind::kConv, conv_out(in, spec), name, "conv");
  layer.weight_bytes = add_conv_kernels(layer, in, spec);
  return *this;
}

NetBuilder& NetBuilder::depthwise(std::size_t stride,
                                  const std::string& name) {
  const Dims in = current_;
  constexpr std::size_t k = 3, pad = 1;
  const Dims out{in.c, conv_out_extent(in.h, k, stride, pad),
                 conv_out_extent(in.w, k, stride, pad)};
  LayerDesc& layer = push(LayerKind::kDepthwiseConv, out, name, "dwconv");
  const double macs =
      static_cast<double>(k) * k * static_cast<double>(out.count());
  layer.kernels.push_back(
      {KernelKind::kDepthwiseConv, 2.0 * macs, in.bytes() + out.bytes()});
  layer.kernels.push_back(
      {KernelKind::kBias, static_cast<double>(out.count()), out.bytes()});
  layer.kernels.push_back({KernelKind::kActivation,
                           static_cast<double>(out.count()),
                           2.0 * out.bytes()});
  layer.weight_bytes =
      4.0 * (static_cast<double>(k) * k * static_cast<double>(in.c) +
             static_cast<double>(in.c));
  return *this;
}

NetBuilder& NetBuilder::pointwise(std::size_t out_ch,
                                  const std::string& name) {
  return conv(out_ch, 1, 1, 0, name);
}

NetBuilder& NetBuilder::maxpool(std::size_t kernel, std::size_t stride,
                                std::size_t padding, const std::string& name) {
  const Dims in = current_;
  const Dims out{in.c, conv_out_extent(in.h, kernel, stride, padding),
                 conv_out_extent(in.w, kernel, stride, padding)};
  LayerDesc& layer = push(LayerKind::kPool, out, name, "pool");
  layer.kernels.push_back(
      {KernelKind::kPool,
       static_cast<double>(kernel * kernel) * static_cast<double>(out.count()),
       in.bytes() + out.bytes()});
  return *this;
}

NetBuilder& NetBuilder::global_avgpool(const std::string& name) {
  const Dims in = current_;
  const Dims out{in.c, 1, 1};
  LayerDesc& layer = push(LayerKind::kPool, out, name, "gap");
  layer.kernels.push_back({KernelKind::kPool,
                           static_cast<double>(in.count()),
                           in.bytes() + out.bytes()});
  return *this;
}

NetBuilder& NetBuilder::fc(std::size_t out_features, bool softmax,
                           const std::string& name) {
  const Dims in = current_;
  const Dims out{out_features, 1, 1};
  LayerDesc& layer = push(LayerKind::kFullyConnected, out, name, "fc");
  const double macs =
      static_cast<double>(in.count()) * static_cast<double>(out_features);
  const double weight_bytes = 4.0 * macs;
  layer.kernels.push_back({KernelKind::kGemm, 2.0 * macs,
                           in.bytes() + weight_bytes + out.bytes()});
  layer.kernels.push_back(
      {KernelKind::kBias, static_cast<double>(out_features), out.bytes()});
  if (softmax) {
    layer.kernels.push_back({KernelKind::kSoftmax,
                             5.0 * static_cast<double>(out_features),
                             2.0 * out.bytes()});
  } else {
    layer.kernels.push_back({KernelKind::kActivation,
                             static_cast<double>(out_features),
                             2.0 * out.bytes()});
  }
  layer.weight_bytes = weight_bytes + 4.0 * static_cast<double>(out_features);
  return *this;
}

NetBuilder& NetBuilder::fire_squeeze(std::size_t squeeze_ch,
                                     const std::string& name) {
  const Dims in = current_;
  const Dims out{squeeze_ch, in.h, in.w};
  LayerDesc& layer = push(LayerKind::kFire, out, name, "fire_sq");
  layer.weight_bytes =
      add_conv_kernels(layer, in, ConvSpec::square(squeeze_ch, 1));
  return *this;
}

NetBuilder& NetBuilder::fire_expand(std::size_t expand1_ch,
                                    std::size_t expand3_ch,
                                    const std::string& name) {
  const Dims in = current_;
  const Dims out{expand1_ch + expand3_ch, in.h, in.w};
  LayerDesc& layer = push(LayerKind::kFire, out, name, "fire_ex");
  double wb = add_conv_kernels(layer, in, ConvSpec::square(expand1_ch, 1));
  wb += add_conv_kernels(layer, in, ConvSpec::square(expand3_ch, 3, 1, 1));
  layer.kernels.push_back({KernelKind::kConcat, 0.0, 2.0 * out.bytes()});
  layer.weight_bytes = wb;
  return *this;
}

NetBuilder& NetBuilder::residual_basic(std::size_t out_ch, std::size_t stride,
                                       const std::string& name) {
  const Dims in = current_;
  const Dims out{out_ch, conv_out_extent(in.h, 3, stride, 1),
                 conv_out_extent(in.w, 3, stride, 1)};
  LayerDesc& layer = push(LayerKind::kResidualBlock, out, name, "res");
  double wb =
      add_conv_kernels(layer, in, ConvSpec::square(out_ch, 3, stride, 1));
  wb += add_conv_kernels(layer, {out_ch, out.h, out.w},
                         ConvSpec::square(out_ch, 3, 1, 1));
  if (stride != 1 || in.c != out_ch) {
    // 1x1 projection shortcut.
    wb += add_conv_kernels(layer, in, ConvSpec::square(out_ch, 1, stride, 0));
  }
  layer.kernels.push_back({KernelKind::kEltwiseAdd,
                           static_cast<double>(out.count()),
                           3.0 * out.bytes()});
  layer.weight_bytes = wb;
  return *this;
}

NetBuilder& NetBuilder::residual_bottleneck(std::size_t mid_ch,
                                            std::size_t out_ch,
                                            std::size_t stride,
                                            const std::string& name) {
  const Dims in = current_;
  const Dims out{out_ch, conv_out_extent(in.h, 1, stride, 0),
                 conv_out_extent(in.w, 1, stride, 0)};
  LayerDesc& layer = push(LayerKind::kResidualBlock, out, name, "res");
  double wb =
      add_conv_kernels(layer, in, ConvSpec::square(mid_ch, 1, stride, 0));
  wb += add_conv_kernels(layer, {mid_ch, out.h, out.w},
                         ConvSpec::square(mid_ch, 3, 1, 1));
  wb += add_conv_kernels(layer, {mid_ch, out.h, out.w},
                         ConvSpec::square(out_ch, 1, 1, 0));
  if (stride != 1 || in.c != out_ch) {
    wb += add_conv_kernels(layer, in, ConvSpec::square(out_ch, 1, stride, 0));
  }
  layer.kernels.push_back({KernelKind::kEltwiseAdd,
                           static_cast<double>(out.count()),
                           3.0 * out.bytes()});
  layer.weight_bytes = wb;
  return *this;
}

NetBuilder& NetBuilder::inception(
    const std::vector<std::vector<ConvSpec>>& branches,
    std::size_t pool_proj_ch, std::size_t pool_stride,
    const std::string& name) {
  OB_REQUIRE(!branches.empty(), "inception: needs at least one conv branch");
  const Dims in = current_;

  // Walk each branch to find the common output spatial extent.
  std::size_t total_ch = 0;
  Dims spatial{};
  bool first = true;
  for (const auto& chain : branches) {
    OB_REQUIRE(!chain.empty(), "inception: empty conv chain");
    Dims d = in;
    for (const auto& cs : chain) d = conv_out(d, cs);
    if (first) {
      spatial = d;
      first = false;
    } else {
      OB_REQUIRE(d.h == spatial.h && d.w == spatial.w,
                 "inception: branch spatial mismatch");
    }
    total_ch += d.c;
  }

  // Pool branch: 3x3 pool (padded when stride 1 so spatial is preserved),
  // then 1x1 projection or channel passthrough.
  const std::size_t pool_pad = pool_stride == 1 ? 1 : 0;
  const Dims pooled{in.c, conv_out_extent(in.h, 3, pool_stride, pool_pad),
                    conv_out_extent(in.w, 3, pool_stride, pool_pad)};
  OB_REQUIRE(pooled.h == spatial.h && pooled.w == spatial.w,
             "inception: pool branch spatial mismatch");
  total_ch += pool_proj_ch > 0 ? pool_proj_ch : in.c;

  const Dims out{total_ch, spatial.h, spatial.w};
  LayerDesc& layer = push(LayerKind::kInceptionBlock, out, name, "incep");

  double wb = 0.0;
  for (const auto& chain : branches) {
    Dims d = in;
    for (const auto& cs : chain) {
      wb += add_conv_kernels(layer, d, cs);
      d = conv_out(d, cs);
    }
  }
  layer.kernels.push_back({KernelKind::kPool,
                           9.0 * static_cast<double>(pooled.count()),
                           in.bytes() + pooled.bytes()});
  if (pool_proj_ch > 0)
    wb += add_conv_kernels(layer, pooled, ConvSpec::square(pool_proj_ch, 1));
  layer.kernels.push_back({KernelKind::kConcat, 0.0, 2.0 * out.bytes()});
  layer.weight_bytes = wb;
  return *this;
}

NetworkDesc NetBuilder::build() && {
  OB_REQUIRE(!net_.layers.empty(), "NetBuilder: empty network");
  return std::move(net_);
}

}  // namespace omniboost::models
