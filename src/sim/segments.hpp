#pragma once
/// \file segments.hpp
/// Shared preprocessing of a (workload, mapping) pair into timed pipeline
/// segments — common ground for the discrete-event simulator and the
/// analytic steady-state model.

#include <array>
#include <cstddef>
#include <vector>

#include "device/cost_model.hpp"
#include "sim/mapping.hpp"

namespace omniboost::sim {

/// A workload as seen by the simulators: one network description per stream.
using NetworkList = std::vector<const models::NetworkDesc*>;

/// A fully-timed pipeline segment.
struct SegmentInfo {
  std::size_t dnn = 0;        ///< stream index in the workload
  std::size_t stage = 0;      ///< position in the stream's pipeline
  SegmentSpan span;           ///< layer range + component
  double base_time_s = 0.0;   ///< uncontended execution time per frame
  double service_time_s = 0.0;///< base_time x component contention penalty
  double transfer_out_s = 0.0;///< time to ship the output to the next stage
  double transfer_out_bytes = 0.0;  ///< activation bytes crossing the cut
  double working_set_bytes = 0.0;
  double traffic_bytes = 0.0; ///< DRAM traffic per frame
  double flops = 0.0;
};

/// The preprocessed scene handed to a simulator.
struct Scene {
  std::vector<SegmentInfo> segments;           ///< all streams, stage order
  std::vector<std::vector<std::size_t>> by_dnn;///< segment ids per stream
  std::array<double, device::kNumComponents> working_set{};  ///< bytes per comp
  std::array<double, device::kNumComponents> penalty{};      ///< contention
  double total_memory_bytes = 0.0;             ///< whole-board residency
  bool fits_in_memory = true;
};

/// Builds the scene: extracts segments, times them with the cost model,
/// computes per-component working sets and contention penalties, and checks
/// the board memory budget.
///
/// Preconditions: nets.size() == mapping.num_dnns(), every assignment length
/// matches its network's layer count.
Scene build_scene(const NetworkList& nets, const Mapping& mapping,
                  const device::CostModel& cost);

/// Per-inference DRAM traffic of stream \p dnn (segments + transfers).
double stream_traffic_bytes(const Scene& scene, std::size_t dnn);

}  // namespace omniboost::sim
