/// \file bench_ablation_search.cpp
/// Ablation A5 (DESIGN.md): is MCTS buying anything over naive exploration?
/// Every search strategy gets the *same* trained estimator and the *same*
/// evaluation budget (the paper's 500 queries) on the same workloads:
/// random sampling, restarting hill climbing, simulated annealing, MCTS
/// (OmniBoost), plus the zero-query greedy list scheduler. Scores are
/// measured on the board simulator and normalized to all-on-GPU.

#include <algorithm>

#include "bench_common.hpp"
#include "sched/bnb.hpp"
#include "sched/greedy.hpp"
#include "sched/local_search.hpp"
#include "sched/search_common.hpp"

using namespace omniboost;

int main() {
  constexpr std::uint64_t kSeed = 19;
  constexpr std::size_t kBudget = 500;
  bench::banner("Ablation A5 — search strategy at equal budget",
                "Section IV-C (MCTS motivation)", kSeed);

  bench::Context ctx;
  std::printf("training the throughput estimator (calibrated campaign, see EXPERIMENTS.md)...\n\n");
  ctx.train_estimator();

  const auto factory = sched::estimator_evaluator_factory(
      ctx.zoo(), ctx.embedding(), ctx.estimator());

  sched::GreedyScheduler greedy(ctx.zoo(), ctx.device());

  sched::LocalSearchConfig rs_cfg;
  rs_cfg.budget = kBudget;
  rs_cfg.seed = kSeed;
  sched::RandomSearchScheduler random("RandomSearch", ctx.zoo(), factory,
                                      rs_cfg);

  sched::HillClimbConfig hc_cfg;
  hc_cfg.budget = kBudget;
  hc_cfg.seed = kSeed;
  sched::HillClimbScheduler climb("HillClimb", ctx.zoo(), factory, hc_cfg);

  sched::AnnealingConfig sa_cfg;
  sa_cfg.budget = kBudget;
  sa_cfg.seed = kSeed;
  sched::SimulatedAnnealingScheduler anneal("Annealing", ctx.zoo(), factory,
                                            sa_cfg);

  core::OmniBoostConfig ob_cfg;
  ob_cfg.mcts.budget = kBudget;
  ob_cfg.mcts.seed = kSeed;
  core::OmniBoostScheduler omni(ctx.zoo(), ctx.embedding(), ctx.estimator(),
                                ob_cfg);

  // The reference point: budgeted branch-and-bound over the analytic
  // objective. Its mapping lands in the "BnB" column; its certified upper
  // bound prices every other scheduler's gap.
  sched::BnbConfig bnb_cfg;
  bnb_cfg.timeout_ms = static_cast<double>(bench::scaled(200, 50));
  sched::BranchAndBoundScheduler bnb("BnB", ctx.zoo(), ctx.device(), bnb_cfg);
  const sim::AnalyticModel analytic(ctx.device());

  util::Table t({"mix", "workload", "Greedy", "Random", "HillClimb",
                 "Annealing", "MCTS", "BnB", "gap_vs_bound"});
  std::array<double, 6> sums{};
  double gap_sum = 0.0;

  util::Rng rng(kSeed);
  constexpr int kMixes = 5;
  for (int mix = 1; mix <= kMixes; ++mix) {
    const workload::Workload w = workload::random_mix(rng, 4);
    const sim::Mapping all_gpu = sim::Mapping::all_on(
        w.layer_counts(ctx.zoo()), device::ComponentId::kGpu);
    const double tb = ctx.measure(w, all_gpu);

    const auto mcts_r = omni.schedule(w);
    const auto bnb_r = bnb.schedule(w);
    const std::array<double, 6> norm = {
        ctx.measure(w, greedy.schedule(w).mapping) / tb,
        ctx.measure(w, random.schedule(w).mapping) / tb,
        ctx.measure(w, climb.schedule(w).mapping) / tb,
        ctx.measure(w, anneal.schedule(w).mapping) / tb,
        ctx.measure(w, mcts_r.mapping) / tb,
        ctx.measure(w, bnb_r.mapping) / tb,
    };
    for (std::size_t s = 0; s < norm.size(); ++s) sums[s] += norm[s];
    // MCTS's certified distance from BnB's admissible upper bound, both on
    // the analytic objective (0 = provably optimal w.r.t. the bound).
    const double ub = bnb_r.upper_bound.value_or(0.0);
    const double got =
        analytic.evaluate(w.resolve(ctx.zoo()), mcts_r.mapping).avg_throughput;
    const double gap = ub > 0.0 ? std::max(0.0, (ub - got) / ub) : 0.0;
    gap_sum += gap;
    t.add_row({"mix-" + std::to_string(mix), w.describe(),
               util::fmt(norm[0], 2), util::fmt(norm[1], 2),
               util::fmt(norm[2], 2), util::fmt(norm[3], 2),
               util::fmt(norm[4], 2), util::fmt(norm[5], 2),
               util::fmt(gap, 3)});
  }
  std::vector<std::string> avg = {"Average", ""};
  for (const double s : sums) avg.push_back(util::fmt(s / kMixes, 2));
  avg.push_back(util::fmt(gap_sum / kMixes, 3));
  t.add_row(std::move(avg));

  std::printf("--- 4-DNN mixes, %zu estimator queries per informed search "
              "(normalized to all-on-GPU; gap_vs_bound = MCTS distance from "
              "BnB's certified upper bound) ---\n", kBudget);
  bench::report("ablation_search", t);

  std::printf("\npaper check: informed searches beat the zero-query greedy; "
              "MCTS is at least competitive with budget-matched local "
              "searches while needing no temperature/stall tuning\n");
  return 0;
}
