#pragma once
/// \file mcts.hpp
/// Monte Carlo Tree Search over layer-to-component assignments (paper
/// §IV-C). States are partial mappings laid out layer-after-layer,
/// DNN-after-DNN; the three actions pick the computing component of the next
/// layer. Assignments that would exceed the pipeline-stage limit are losing
/// states and are never expanded; complete mappings are winning states scored
/// by an external evaluator (the throughput estimator in production, or an
/// oracle/linear probe in the ablations).

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/mapping.hpp"

namespace omniboost::core {

/// Scores a complete mapping; higher is better.
using MappingEvaluator = std::function<double(const sim::Mapping&)>;

/// Scores a batch of complete mappings in one call; element i is the reward
/// of mappings[i]. Batch evaluation lets the throughput estimator amortize
/// one CNN forward pass over a whole expansion wave
/// (ThroughputEstimator::predict_rewards); scalar evaluators are adapted
/// automatically. Evaluators must be deterministic: the search memoizes
/// rewards by mapping (MctsConfig::cache) and replays them on repeat visits.
using BatchMappingEvaluator =
    std::function<std::vector<double>(const std::vector<sim::Mapping>&)>;

/// How the final decision is read out of the search tree.
enum class MctsExtraction {
  /// The single rollout with the highest evaluator reward. Fast but exposed
  /// to the evaluator's winner's curse.
  kGlobalArgmax,
  /// Descend from the root by highest child average (expected reward), then
  /// take the best rollout through the reached state.
  kEliteDescent,
  /// The paper's "candidate state with the highest expected reward": the
  /// best-average node among sufficiently-visited nodes; decision = best
  /// rollout through it.
  kEliteNode,
};

/// Search controls (paper defaults: budget 500, depth 100).
struct MctsConfig {
  std::size_t budget = 500;      ///< number of simulations (rollouts)
  std::size_t max_depth = 100;   ///< tree-expansion depth limit
  /// UCT constant over in-search min-max-normalized rewards. 1/sqrt(2) is
  /// calibrated on validation mixes (ablation A6 sweeps the sensitivity;
  /// quality is flat within roughly a 4x band around this value).
  double exploration = 0.7071067811865476;
  std::size_t stage_limit = 3;   ///< x = number of computing components
  MctsExtraction extraction = MctsExtraction::kGlobalArgmax;
  std::uint64_t seed = 1;
  /// Leaf evaluations collected per expansion wave before the batch
  /// evaluator runs. 1 reproduces the paper's strictly sequential
  /// select-evaluate-backpropagate loop bit-for-bit; larger waves trade a
  /// slightly staler tree policy (queued leaves carry a virtual visit until
  /// their reward lands) for batched evaluator calls.
  /// When searching through OmniBoostScheduler, set this and `cache` on
  /// OmniBoostConfig instead — schedule() forwards both from there and
  /// rejects non-default values set here.
  std::size_t batch_size = 1;
  /// Memoize rewards by canonical mapping hash (sim::Mapping::hash), so a
  /// rollout that reaches an already-scored mapping never re-runs the
  /// evaluator. Replayed rewards are the exact doubles the evaluator
  /// returned, so the search trajectory is bit-identical with the cache on
  /// or off — only the evaluations/cache_hits accounting differs.
  bool cache = true;
  /// Optional per-decision component restriction in the search's flattened
  /// (dnn-after-dnn, layer-after-layer) order: bit c of entry d allows
  /// component c for decision d (sched::ReducedSpace::action_mask produces
  /// one). Null (the default) means unrestricted — that path is
  /// bit-identical to the pre-mask search, as is an all-ones mask. The mask
  /// is advisory: if it would leave a decision with no stage-feasible action
  /// it is ignored for that decision, so the search can always complete.
  /// Held by shared_ptr so config copies stay cheap and — the reason it is
  /// not a plain vector — so the defaulted config temporary at every
  /// `OmniBoostScheduler(...)` call site keeps a trivially-destroyed-enough
  /// shape for GCC 12, whose inliner raises a -Wmaybe-uninitialized false
  /// positive on vector members of defaulted by-value aggregates under
  /// -Werror CI builds.
  std::shared_ptr<const std::vector<std::uint8_t>> action_mask;
};

/// The evaluation memo's container type (mapping -> evaluator reward). The
/// search owns a private memo by default; warm-started incremental searches
/// (core::ServingRuntime path) hand one in so rewards carry over across
/// decisions on the same workload.
using EvaluationMemo =
    std::unordered_map<sim::Mapping, double, sim::MappingHasher>;

/// Warm-start inputs for an incremental search. Default-constructed
/// (empty prior, null memo) means a cold search — the bit-frozen paper path.
struct MctsWarmStart {
  /// Suggested component per decision in the search's flattened
  /// (dnn-after-dnn, layer-after-layer) order; -1 = no suggestion (layers of
  /// a newly arrived stream). When non-empty it must cover every decision.
  /// The very first rollout is *pinned*: it follows every valid suggestion
  /// exactly, so the candidate set always contains "previous assignments for
  /// surviving streams + a completion for the new ones" — the stability
  /// floor a warm decision can never fall below.
  std::vector<std::int8_t> prior;
  /// Probability that a random-rollout decision follows a valid suggestion
  /// instead of drawing uniformly. Concentrates the shrunken incremental
  /// budget near the previous mapping (low churn) while still exploring.
  double prior_bias = 0.75;
  /// When non-null the search reads/writes this memo instead of a private
  /// one, carrying evaluator rewards across decisions. Only meaningful with
  /// MctsConfig::cache; the caller must guarantee every memo entry came from
  /// the SAME workload and evaluator (rewards are replayed verbatim).
  EvaluationMemo* memo = nullptr;
};

/// Search outcome.
struct MctsResult {
  sim::Mapping best_mapping;
  double best_reward = 0.0;
  std::size_t iterations = 0;
  /// Evaluator queries actually executed (memo misses). With the evaluation
  /// cache disabled this equals iterations; with it enabled,
  /// evaluations + cache_hits == iterations.
  std::size_t evaluations = 0;
  std::size_t cache_hits = 0;    ///< rollouts served from the evaluation memo
  std::size_t tree_nodes = 0;
};

/// Builds an independent evaluator instance for one search worker.
/// Root-parallel search cannot share one evaluator across threads: the CNN
/// estimator's forward pass mutates per-layer activation caches. Each call
/// must return an evaluator whose mutable state is private (e.g. a cloned
/// estimator; see OmniBoostConfig::workers).
using EvaluatorFactory = std::function<MappingEvaluator()>;

/// Batch-evaluator variant of EvaluatorFactory; same private-state rule.
using BatchEvaluatorFactory = std::function<BatchMappingEvaluator()>;

/// Root-parallelized UCT: \p workers independent trees with forked seeds and
/// the budget split between them, merged by best reward. With workers == 1
/// this is exactly Mcts::search() (same seed, same result). Decision quality
/// is comparable at equal total budget; wall-clock drops by ~the worker
/// count — the knob for shrinking the paper's ~30 s decision latency.
/// Each worker keeps a private evaluation memo (caches are not shared across
/// trees: sharing would reintroduce the cross-thread estimator state the
/// clone rule exists to avoid).
MctsResult parallel_mcts_search(const std::vector<std::size_t>& layer_counts,
                                const EvaluatorFactory& make_evaluator,
                                MctsConfig config, std::size_t workers);

/// Batched-evaluator form of parallel_mcts_search: every worker routes its
/// expansion waves (MctsConfig::batch_size) through its private batch
/// evaluator. The scalar overload above is this function with each scalar
/// evaluator adapted to a batch-of-1 loop.
MctsResult parallel_mcts_search_batched(
    const std::vector<std::size_t>& layer_counts,
    const BatchEvaluatorFactory& make_evaluator, MctsConfig config,
    std::size_t workers);

/// The scheduling environment + UCT search.
class Mcts {
 public:
  /// \param layer_counts  layers per DNN of the workload
  /// \param evaluate      reward for complete mappings
  Mcts(std::vector<std::size_t> layer_counts, MappingEvaluator evaluate,
       MctsConfig config = {});

  /// Batch-evaluator constructor: leaf rewards are requested in waves of up
  /// to MctsConfig::batch_size mappings per evaluator call.
  Mcts(std::vector<std::size_t> layer_counts, BatchMappingEvaluator evaluate,
       MctsConfig config = {});

  /// Installs warm-start inputs for the next search() call. A
  /// default-constructed MctsWarmStart restores the cold behaviour; any
  /// non-empty prior must have exactly one entry per decision.
  void set_warm_start(MctsWarmStart warm);

  /// Runs the search to the configured budget.
  MctsResult search();

 private:
  struct Node;

  /// Decision -> (dnn, layer) coordinates.
  struct Coord {
    std::size_t dnn, layer;
  };

  /// Components allowed for decision \p depth given the path so far.
  void valid_actions(const std::vector<device::ComponentId>& path,
                     std::size_t depth, bool (&out)[device::kNumComponents]) const;

  sim::Mapping to_mapping(const std::vector<device::ComponentId>& path) const;

  std::vector<std::size_t> layer_counts_;
  std::vector<Coord> coords_;
  BatchMappingEvaluator evaluate_;  ///< scalar evaluators arrive pre-adapted
  MctsConfig config_;
  MctsWarmStart warm_;  ///< default (cold) unless set_warm_start was called
};

}  // namespace omniboost::core
