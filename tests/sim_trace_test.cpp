// Simulator observability: component utilization, queue pressure, frame
// latency percentiles, and the conservation laws tying them to the
// throughput measurement.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>

#include "models/zoo.hpp"
#include "sim/des.hpp"
#include "sim/gantt.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace {

using namespace omniboost;
using models::ModelId;
using models::ModelZoo;
using sim::ComponentId;
using sim::LatencyStats;
using workload::Workload;

const ModelZoo& zoo() {
  static const ModelZoo z;
  return z;
}

const device::DeviceSpec& hikey() {
  static const device::DeviceSpec d = device::make_hikey970();
  return d;
}

// --- LatencyStats -----------------------------------------------------------

TEST(LatencyStats, EmptyIsAllZero) {
  const LatencyStats s = LatencyStats::from_samples({});
  EXPECT_EQ(s.samples, 0u);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.max, 0.0);
}

TEST(LatencyStats, SingleSample) {
  const LatencyStats s = LatencyStats::from_samples({0.25});
  EXPECT_EQ(s.samples, 1u);
  EXPECT_EQ(s.min, 0.25);
  EXPECT_EQ(s.p50, 0.25);
  EXPECT_EQ(s.p99, 0.25);
  EXPECT_EQ(s.max, 0.25);
}

TEST(LatencyStats, KnownPercentiles) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  const LatencyStats s = LatencyStats::from_samples(std::move(v));
  EXPECT_EQ(s.samples, 100u);
  EXPECT_DOUBLE_EQ(s.p50, 50.0);  // nearest-rank: ceil(0.5*100) = 50th value
  EXPECT_DOUBLE_EQ(s.p90, 90.0);
  EXPECT_DOUBLE_EQ(s.p99, 99.0);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
}

TEST(LatencyStats, OrderInvariance) {
  const LatencyStats a = LatencyStats::from_samples({3.0, 1.0, 2.0});
  const LatencyStats b = LatencyStats::from_samples({1.0, 2.0, 3.0});
  EXPECT_EQ(a.p50, b.p50);
  EXPECT_EQ(a.mean, b.mean);
}

TEST(LatencyStats, PercentileMonotonicity) {
  util::Rng rng(5);
  std::vector<double> v;
  for (int i = 0; i < 500; ++i) v.push_back(rng.uniform(0.0, 10.0));
  const LatencyStats s = LatencyStats::from_samples(std::move(v));
  EXPECT_LE(s.min, s.p50);
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p99);
  EXPECT_LE(s.p99, s.max);
  EXPECT_GE(s.mean, s.min);
  EXPECT_LE(s.mean, s.max);
}

// --- Traced simulation ------------------------------------------------------

class TracedSim : public ::testing::Test {
 protected:
  sim::DesSimulator sim_{hikey()};
};

TEST_F(TracedSim, ReportMatchesUntracedSimulation) {
  // Tracing must be a pure observer: identical throughput measurement.
  const Workload w{{ModelId::kAlexNet, ModelId::kMobileNet}};
  util::Rng rng(7);
  const sim::Mapping m = workload::random_mapping(rng, zoo(), w, 3);
  const auto nets = w.resolve(zoo());

  const auto plain = sim_.simulate(nets, m);
  const auto traced = sim_.simulate_traced(nets, m);
  EXPECT_EQ(plain.avg_throughput, traced.report.avg_throughput);
  EXPECT_EQ(plain.per_dnn_rate, traced.report.per_dnn_rate);
  EXPECT_EQ(plain.dram_scale, traced.report.dram_scale);
}

TEST_F(TracedSim, UtilizationIsAFraction) {
  const Workload w{{ModelId::kVgg16, ModelId::kAlexNet, ModelId::kSqueezeNet}};
  util::Rng rng(13);
  const sim::Mapping m = workload::random_mapping(rng, zoo(), w, 3);
  const auto r = sim_.simulate_traced(w.resolve(zoo()), m);

  ASSERT_TRUE(r.report.feasible);
  double total_busy = 0.0;
  for (const auto& cu : r.trace.components) {
    EXPECT_GE(cu.busy_seconds, 0.0);
    EXPECT_LE(cu.utilization(), 1.0 + 1e-9);
    EXPECT_GT(cu.window_seconds, 0.0);
    total_busy += cu.busy_seconds;
  }
  EXPECT_GT(total_busy, 0.0) << "nobody executed anything";
}

TEST_F(TracedSim, AllOnGpuBusiesOnlyTheGpu) {
  const Workload w{{ModelId::kAlexNet, ModelId::kSqueezeNet}};
  const sim::Mapping m =
      sim::Mapping::all_on(w.layer_counts(zoo()), ComponentId::kGpu);
  const auto r = sim_.simulate_traced(w.resolve(zoo()), m);

  const auto& comps = r.trace.components;
  EXPECT_GT(comps[0].utilization(), 0.5) << "GPU should be heavily loaded";
  EXPECT_EQ(comps[1].busy_seconds, 0.0);
  EXPECT_EQ(comps[2].busy_seconds, 0.0);
  EXPECT_EQ(comps[1].executions, 0u);
  EXPECT_EQ(comps[2].executions, 0u);
}

TEST_F(TracedSim, LatencyBoundsThroughput) {
  // Little's-law-flavoured sanity: a stream's mean frame latency can never
  // be smaller than the inverse of its free-running rate (one frame in
  // flight per stage, so latency * rate <= stages).
  const Workload w{{ModelId::kAlexNet, ModelId::kMobileNet}};
  util::Rng rng(19);
  const sim::Mapping m = workload::random_mapping(rng, zoo(), w, 3);
  const auto r = sim_.simulate_traced(w.resolve(zoo()), m);
  ASSERT_TRUE(r.report.feasible);

  for (std::size_t i = 0; i < 2; ++i) {
    const LatencyStats& lat = r.trace.per_dnn_latency[i];
    ASSERT_GT(lat.samples, 0u) << "stream " << i << " completed nothing";
    // Rates in the report include the DRAM-wall rescale; compare against the
    // raw event-loop rate (rate / dram_scale).
    const double raw_rate = r.report.per_dnn_rate[i] / r.report.dram_scale;
    const double stages = static_cast<double>(m.stages(i));
    EXPECT_GE(lat.mean * raw_rate, 0.5)
        << "stream " << i << ": latency inconsistent with throughput";
    EXPECT_LE(lat.mean * raw_rate, stages + 1.0)
        << "stream " << i << ": more frames in flight than pipeline stages";
  }
}

TEST_F(TracedSim, EventRecordingProducesDisjointPerComponentIntervals) {
  const Workload w{{ModelId::kAlexNet, ModelId::kSqueezeNet}};
  util::Rng rng(23);
  const sim::Mapping m = workload::random_mapping(rng, zoo(), w, 3);
  const auto r = sim_.simulate_traced(w.resolve(zoo()), m, true);
  ASSERT_FALSE(r.trace.events.empty());

  // Per component, execution intervals must not overlap (FIFO, one at a
  // time) and must lie within the horizon.
  for (const ComponentId c : device::kAllComponents) {
    std::vector<std::pair<double, double>> spans;
    for (const auto& ev : r.trace.events) {
      if (ev.comp != c) continue;
      EXPECT_LE(ev.start, ev.end);
      spans.emplace_back(ev.start, ev.end);
    }
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_GE(spans[i].first, spans[i - 1].second - 1e-12)
          << "overlapping executions on component "
          << device::component_name(c);
    }
  }
}

TEST_F(TracedSim, EventsOffByDefault) {
  const Workload w{{ModelId::kAlexNet}};
  const sim::Mapping m =
      sim::Mapping::all_on(w.layer_counts(zoo()), ComponentId::kGpu);
  const auto r = sim_.simulate_traced(w.resolve(zoo()), m);
  EXPECT_TRUE(r.trace.events.empty());
}

TEST_F(TracedSim, BusyTimeMatchesRecordedEvents) {
  const Workload w{{ModelId::kMobileNet, ModelId::kAlexNet}};
  util::Rng rng(29);
  const sim::Mapping m = workload::random_mapping(rng, zoo(), w, 3);
  const auto r = sim_.simulate_traced(w.resolve(zoo()), m, true);

  for (const ComponentId c : device::kAllComponents) {
    double from_events = 0.0;
    for (const auto& ev : r.trace.events) {
      if (ev.comp != c) continue;
      from_events +=
          std::max(0.0, std::min(ev.end, r.trace.horizon_seconds) -
                            std::max(ev.start, r.trace.warmup_seconds));
    }
    const auto& cu = r.trace.components[device::component_index(c)];
    EXPECT_NEAR(cu.busy_seconds, from_events, 1e-9)
        << device::component_name(c);
  }
}

TEST_F(TracedSim, InfeasibleWorkloadYieldsEmptyTrace) {
  // Six heavy DNNs: exceeds board memory, the paper's "unresponsive" case.
  const Workload w{{ModelId::kVgg19, ModelId::kVgg16, ModelId::kVgg13,
                    ModelId::kResNet101, ModelId::kInceptionV4,
                    ModelId::kResNet50}};
  const sim::Mapping m =
      sim::Mapping::all_on(w.layer_counts(zoo()), ComponentId::kGpu);
  const auto r = sim_.simulate_traced(w.resolve(zoo()), m);
  EXPECT_FALSE(r.report.feasible);
  ASSERT_EQ(r.trace.per_dnn_latency.size(), 6u);
  for (const auto& lat : r.trace.per_dnn_latency) EXPECT_EQ(lat.samples, 0u);
}

TEST_F(TracedSim, BalancedMappingReducesPeakUtilization) {
  // The paper's core claim, observable: all-on-GPU shows extreme GPU
  // pressure; a pipelined split lowers the maximum component utilization
  // gap. Compare max queue depth on the GPU.
  const Workload w{{ModelId::kVgg16, ModelId::kResNet50, ModelId::kAlexNet,
                    ModelId::kMobileNet}};
  const auto nets = w.resolve(zoo());

  const sim::Mapping all_gpu =
      sim::Mapping::all_on(w.layer_counts(zoo()), ComponentId::kGpu);
  const auto gpu_run = sim_.simulate_traced(nets, all_gpu);
  ASSERT_TRUE(gpu_run.report.feasible);

  // A simple static split: big nets pipelined across GPU+big, small ones on
  // big/LITTLE.
  util::Rng rng(31);
  double best_queue = gpu_run.trace.components[0].max_queue_depth;
  bool improved = false;
  for (int tries = 0; tries < 20 && !improved; ++tries) {
    const sim::Mapping m = workload::random_mapping(rng, zoo(), w, 3);
    const auto run = sim_.simulate_traced(nets, m);
    if (!run.report.feasible) continue;
    if (run.trace.components[0].max_queue_depth < best_queue) improved = true;
  }
  EXPECT_TRUE(improved)
      << "no random split ever relieved the GPU queue vs all-on-GPU";
}

// --- Gantt rendering ---------------------------------------------------------

TEST_F(TracedSim, GanttRendersOneLanePerComponent) {
  const Workload w{{ModelId::kAlexNet, ModelId::kSqueezeNet}};
  util::Rng rng(41);
  const sim::Mapping m = workload::random_mapping(rng, zoo(), w, 3);
  const auto r = sim_.simulate_traced(w.resolve(zoo()), m, true);

  sim::GanttConfig cfg;
  cfg.width = 40;
  const std::string gantt = sim::render_gantt(r.trace, cfg);

  // Three lanes, each "name|<width chars>|\n".
  std::size_t lanes = 0;
  std::size_t pos = 0;
  while ((pos = gantt.find('\n', pos)) != std::string::npos) {
    ++lanes;
    ++pos;
  }
  EXPECT_EQ(lanes, 3u);
  EXPECT_NE(gantt.find("GPU"), std::string::npos);
  EXPECT_NE(gantt.find("big"), std::string::npos);
  EXPECT_NE(gantt.find("LITTLE"), std::string::npos);

  // Only stream glyphs 0/1 and idle dots between the pipes.
  for (const char c : gantt) {
    EXPECT_TRUE(c == '0' || c == '1' || c == '.' || c == '|' || c == '\n' ||
                c == ' ' || std::isalpha(static_cast<unsigned char>(c)))
        << "unexpected glyph '" << c << "'";
  }
}

TEST_F(TracedSim, GanttAllOnGpuPaintsOnlyTheGpuLane) {
  const Workload w{{ModelId::kAlexNet}};
  const sim::Mapping m =
      sim::Mapping::all_on(w.layer_counts(zoo()), ComponentId::kGpu);
  const auto r = sim_.simulate_traced(w.resolve(zoo()), m, true);
  const std::string gantt = sim::render_gantt(r.trace);

  // Split lanes.
  std::vector<std::string> lanes;
  std::size_t start = 0;
  for (std::size_t pos; (pos = gantt.find('\n', start)) != std::string::npos;
       start = pos + 1) {
    lanes.push_back(gantt.substr(start, pos - start));
  }
  ASSERT_EQ(lanes.size(), 3u);
  EXPECT_NE(lanes[0].find('0'), std::string::npos) << "GPU lane empty";
  EXPECT_EQ(lanes[1].find('0'), std::string::npos) << "big lane not idle";
  EXPECT_EQ(lanes[2].find('0'), std::string::npos) << "LITTLE lane not idle";
}

TEST_F(TracedSim, GanttWithoutEventsThrows) {
  const Workload w{{ModelId::kAlexNet}};
  const sim::Mapping m =
      sim::Mapping::all_on(w.layer_counts(zoo()), ComponentId::kGpu);
  const auto r = sim_.simulate_traced(w.resolve(zoo()), m, false);
  EXPECT_THROW(sim::render_gantt(r.trace), std::invalid_argument);
}

TEST_F(TracedSim, GanttRejectsDegenerateWidth) {
  const Workload w{{ModelId::kAlexNet}};
  const sim::Mapping m =
      sim::Mapping::all_on(w.layer_counts(zoo()), ComponentId::kGpu);
  const auto r = sim_.simulate_traced(w.resolve(zoo()), m, true);
  sim::GanttConfig cfg;
  cfg.width = 4;
  EXPECT_THROW(sim::render_gantt(r.trace, cfg), std::invalid_argument);
}

}  // namespace
