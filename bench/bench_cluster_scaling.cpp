/// \file bench_cluster_scaling.cpp
/// Fleet-scale serving: how does served throughput scale with fleet size at
/// a fixed offered load, and which placement policy extracts the most out of
/// a heterogeneous fleet?
///
/// The sweep draws one Poisson arrival scenario per offered-load level
/// (seeded, so every fleet size and policy replays the identical stream of
/// arrivals/departures), then routes it through core::Cluster fleets of
/// 1..4 heterogeneous boards under each placement policy, with a
/// per-board Greedy scheduler (deterministic, microsecond decisions — the
/// sweep isolates ROUTING quality, not search quality).
///
/// Shapes to look for: at a fixed offered load, fleet throughput grows with
/// fleet size until the fleet absorbs the load (then flattens — extra boards
/// idle); rejections fall toward zero as boards are added; best-estimated-T
/// routes proportionally more streams onto the pro boards than least-loaded
/// does at equal fleet size.
///
/// Table: cluster_scaling (BENCH_cluster_scaling.json).

#include "bench_common.hpp"

#include "core/cluster.hpp"
#include "sched/greedy.hpp"
#include "util/rng.hpp"
#include "workload/arrival.hpp"
#include "workload/scenario.hpp"

using namespace omniboost;

namespace {

struct LoadLevel {
  const char* name;
  double rate_per_s;
};

}  // namespace

int main() {
  constexpr std::uint64_t kSeed = 29;
  bench::banner("cluster scaling — fleet size x offered load x placement",
                "beyond the paper: fleet-scale serving", kSeed);

  const models::ModelZoo zoo;
  const double horizon_s =
      static_cast<double>(bench::scaled(120, 15));
  const std::size_t max_fleet = bench::scaled(4, 2);

  const LoadLevel levels[] = {
      {"light", 0.2},
      {"medium", 0.5},
      {"heavy", 1.0},
  };

  util::Table table({"offered load", "rate/s", "boards", "policy", "offered",
                     "admitted", "rejected %", "fleet T inf/s", "migrations",
                     "decisions"});

  std::size_t level_index = 0;
  for (const LoadLevel& level : levels) {
    workload::ArrivalProcess p;
    p.rate_per_s = level.rate_per_s;
    p.mean_lifetime_s = 12.0;
    p.max_concurrent = models::kNumModels;
    p.slo_fraction = 0.25;
    util::Rng rng(util::fork_stream(kSeed, level_index++));
    const workload::Scenario scenario =
        workload::sample_scenario(p, horizon_s, rng);
    std::printf("--- offered load %s (%.2f arrivals/s): %s ---\n", level.name,
                level.rate_per_s, scenario.describe().c_str());
    if (scenario.empty()) {
      std::printf("(empty scenario at this horizon; skipping level)\n\n");
      continue;
    }

    for (std::size_t n = 1; n <= max_fleet; ++n) {
      const core::Cluster cluster(zoo, core::make_heterogeneous_fleet(n),
                                  core::ClusterConfig{});
      const core::SchedulerFactory factory =
          [&](std::size_t i) -> std::unique_ptr<core::IScheduler> {
        return std::make_unique<sched::GreedyScheduler>(
            zoo, cluster.boards()[i].device);
      };
      for (const std::string& kind : core::placement_policy_kinds()) {
        const auto policy = core::make_placement_policy(kind);
        const core::ClusterReport rep =
            cluster.run(factory, scenario, *policy);
        table.add_row({level.name, util::fmt(level.rate_per_s, 2),
                       std::to_string(n), kind,
                       std::to_string(rep.offered_streams),
                       std::to_string(rep.admitted_streams),
                       util::fmt(100.0 * rep.rejection_rate, 1),
                       util::fmt(rep.fleet_throughput, 3),
                       std::to_string(rep.migrations),
                       std::to_string(rep.decisions)});
      }
      // One progress line per fleet size (the last policy's numbers).
      std::printf("  %zu board%s swept across %zu policies\n", n,
                  n == 1 ? "" : "s", core::placement_policy_kinds().size());
    }
    std::printf("\n");
  }

  bench::report("cluster_scaling", table);
  std::printf("\ncheck: at each offered load, fleet T inf/s rises with fleet "
              "size until the load is absorbed, and the rejected %% column "
              "falls toward zero\n");
  return 0;
}
