/// \file bench_runtime_overhead.cpp
/// Regenerates the §V-B run-time comparison with google-benchmark: the
/// decision latency of each scheduler on a fixed 4-DNN mix, plus the one-off
/// costs the paper discusses (MOSAIC's 14k-point data collection, the GA's
/// per-mix on-board retraining, OmniBoost's 500 estimator queries).
///
/// Paper shape to reproduce: Baseline ~ 0; MOSAIC inference fast (~1 s on
/// the board) but with a large offline collection cost; GA minutes per mix
/// (board time); OmniBoost a constant 500-query search (~30 s on the board,
/// milliseconds here because the estimator is native C++ rather than a
/// Python stack).

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

using namespace omniboost;

namespace {

bench::Context& ctx() {
  static bench::Context c;
  return c;
}

const workload::Workload& mix() {
  static const workload::Workload w{
      {models::ModelId::kVgg19, models::ModelId::kResNet50,
       models::ModelId::kInceptionV3, models::ModelId::kMobileNet}};
  return w;
}

void BM_BaselineDecision(benchmark::State& state) {
  auto sched = sched::AllOnScheduler::gpu_baseline(ctx().zoo());
  for (auto _ : state) benchmark::DoNotOptimize(sched.schedule(mix()));
}
BENCHMARK(BM_BaselineDecision);

void BM_MosaicDecision(benchmark::State& state) {
  static sched::MosaicScheduler sched(ctx().zoo(), ctx().device());
  for (auto _ : state) benchmark::DoNotOptimize(sched.schedule(mix()));
}
BENCHMARK(BM_MosaicDecision)->Unit(benchmark::kMillisecond);

void BM_GaDecision(benchmark::State& state) {
  static sched::GaScheduler sched(ctx().zoo(), ctx().device());
  for (auto _ : state) benchmark::DoNotOptimize(sched.schedule(mix()));
}
BENCHMARK(BM_GaDecision)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_OmniBoostDecision(benchmark::State& state) {
  static core::OmniBoostScheduler sched(ctx().zoo(), ctx().embedding(),
                                        ctx().estimator());
  for (auto _ : state) benchmark::DoNotOptimize(sched.schedule(mix()));
}
BENCHMARK(BM_OmniBoostDecision)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_EstimatorQuery(benchmark::State& state) {
  auto est = ctx().estimator();
  const auto counts = mix().layer_counts(ctx().zoo());
  const auto input = ctx().embedding().masked_input(
      mix(), sim::Mapping::all_on(counts, device::ComponentId::kGpu));
  for (auto _ : state) benchmark::DoNotOptimize(est->predict_reward(input));
}
BENCHMARK(BM_EstimatorQuery)->Unit(benchmark::kMicrosecond);

void BM_BoardMeasurement(benchmark::State& state) {
  // One GA fitness evaluation = one steady-state board simulation.
  const auto nets = mix().resolve(ctx().zoo());
  const auto m = sim::Mapping::all_on(mix().layer_counts(ctx().zoo()),
                                      device::ComponentId::kGpu);
  for (auto _ : state)
    benchmark::DoNotOptimize(ctx().board().simulate(nets, m));
}
BENCHMARK(BM_BoardMeasurement)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Run-time performance evaluation", "Section V-B", 7);

  // One-off cost accounting (the part google-benchmark cannot show).
  std::printf("training the throughput estimator (one-off, design time)...\n");
  ctx().train_estimator();

  sched::MosaicScheduler mosaic(ctx().zoo(), ctx().device());
  sched::GaScheduler ga(ctx().zoo(), ctx().device());
  core::OmniBoostScheduler omni(ctx().zoo(), ctx().embedding(),
                                ctx().estimator());
  const auto rg = ga.schedule(mix());
  const auto ro = omni.schedule(mix());

  util::Table t({"scheduler", "decision model", "one-off / per-mix cost",
                 "evaluator queries"});
  t.add_row({"Baseline", "none", "none", "0"});
  t.add_row({"MOSAIC", "linear regression",
             "offline collection: " +
                 std::to_string(mosaic.training_samples()) + " samples, " +
                 util::fmt(mosaic.training_board_seconds() / 60.0, 1) +
                 " board-minutes",
             "1 per DNN"});
  t.add_row({"GA", "on-board measurements",
             "per mix: " + util::fmt(rg.board_seconds / 60.0, 1) +
                 " board-minutes (paper: ~5 min)",
             std::to_string(rg.evaluations)});
  t.add_row({"OmniBoost", "CNN estimator",
             "500 estimator queries per mix (paper: ~30 s)",
             std::to_string(ro.evaluations)});
  bench::report("runtime_overhead", t);
  std::printf("\nmicro-benchmarks (decision latency on this machine):\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
