#pragma once
/// \file mosaic.hpp
/// Reimplementation of the MOSAIC comparison point (Han et al., PACT 2019,
/// as characterized in the paper): per-component *linear regression* models
/// of layer latency trained on thousands of measured data points, driving a
/// per-DNN slicing search. MOSAIC slices each model independently — it is
/// communication-aware but *contention-unaware*, which is exactly why it
/// overloads the GPU on heavy mixes (paper §V-A).

#include <array>
#include <cstdint>

#include "core/scheduler.hpp"
#include "device/cost_model.hpp"
#include "models/zoo.hpp"

namespace omniboost::sched {

/// Linear layer-latency model: t = w . [flops, traffic, in, out, weights, 1].
struct LinearLatencyModel {
  static constexpr std::size_t kFeatures = 6;
  std::array<double, kFeatures> weights{};

  /// Feature vector of one layer.
  static std::array<double, kFeatures> features(const models::LayerDesc& l);

  double predict(const models::LayerDesc& l) const;
};

/// MOSAIC controls.
struct MosaicConfig {
  std::size_t data_points = 14'000;  ///< paper: "more than 14,000 data points"
  double measurement_noise = 0.05;   ///< relative jitter of board timings
  std::size_t max_stages = 3;
  /// Weight of inter-stage communication time in the slicing score
  /// (MOSAIC is communication-aware).
  double comm_weight = 1.0;
  std::uint64_t seed = 97;
};

/// The MOSAIC scheduler.
class MosaicScheduler final : public core::IScheduler {
 public:
  /// Trains the per-component linear models from simulated on-board layer
  /// measurements (cost model + multiplicative noise). The training cost is
  /// recorded and reported by the run-time bench.
  MosaicScheduler(const models::ModelZoo& zoo,
                  const device::DeviceSpec& device, MosaicConfig config = {});

  std::string name() const override { return "MOSAIC"; }
  core::ScheduleResult schedule(const workload::Workload& w) override;

  /// Offline data-collection + fit cost in measured board-seconds
  /// (the dominant overhead the paper attributes to MOSAIC).
  double training_board_seconds() const { return training_board_seconds_; }
  std::size_t training_samples() const { return training_samples_; }

  const LinearLatencyModel& component_model(device::ComponentId c) const {
    return model_[device::component_index(c)];
  }

 private:
  /// Best slicing of one DNN given the loads already committed to each
  /// component: enumerates all 1/2/3-stage partitions, scoring each by the
  /// predicted bottleneck load plus weighted communication time. Linear
  /// latency predictions make this heterogeneity-aware; adding to a running
  /// load vector makes it balance the mix; but it remains blind to
  /// working-set contention and kernel-dispatch nonlinearity — the gap the
  /// paper exploits.
  sim::Assignment slice_network(
      const models::NetworkDesc& net,
      std::array<double, device::kNumComponents>& loads) const;

  const models::ModelZoo* zoo_;
  device::DeviceSpec device_;
  MosaicConfig config_;
  std::array<LinearLatencyModel, device::kNumComponents> model_{};
  double training_board_seconds_ = 0.0;
  std::size_t training_samples_ = 0;
};

}  // namespace omniboost::sched
