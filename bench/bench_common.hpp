#pragma once
/// \file bench_common.hpp
/// Shared experiment context for the bench harness: builds the simulated
/// HiKey970, the model zoo, the embedding tensor, and (on demand) a trained
/// throughput estimator with the paper's design-time settings (500 random
/// workloads, 400/100 split, L1 loss, 100 epochs).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>

#include "core/dataset.hpp"
#include "core/omniboost.hpp"
#include "nn/loss.hpp"
#include "sched/baseline.hpp"
#include "sched/ga.hpp"
#include "sched/mosaic.hpp"
#include "sim/analytic.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

namespace omniboost::bench {

/// Everything an experiment needs, built once per binary.
class Context {
 public:
  Context()
      : device_(device::make_hikey970()),
        cost_(device_),
        embedding_(zoo_, cost_),
        board_(device_) {}

  const models::ModelZoo& zoo() const { return zoo_; }
  const device::DeviceSpec& device() const { return device_; }
  const device::CostModel& cost() const { return cost_; }
  const core::EmbeddingTensor& embedding() const { return embedding_; }
  const sim::DesSimulator& board() const { return board_; }

  /// Trains the estimator for the scheduling experiments; returns the loss
  /// history. Idempotent — subsequent calls reuse the model.
  ///
  /// Default campaign: 1500 workloads (3x the paper's 500). The simulated
  /// board's throughput surface needs the larger design-time campaign to
  /// reach the estimator accuracy the paper reports from real-board data;
  /// EXPERIMENTS.md documents the deviation. Fig. 4 reproduces the paper's
  /// exact 500/400/100 training by passing explicit arguments.
  nn::TrainHistory train_estimator(std::size_t samples = 1500,
                                   std::size_t val_count = 300,
                                   std::size_t epochs = 100,
                                   std::uint64_t seed = 42) {
    if (estimator_) return history_;
    // The OMNIBOOST_ESTIMATOR_CACHE environment variable points at a weight
    // file reused across bench binaries (the design-time/run-time split:
    // train once, deploy everywhere). Only the default campaign is cached —
    // explicit-parameter callers (Fig. 4) always train and return a real
    // loss history.
    const bool default_campaign =
        samples == 1500 && val_count == 300 && epochs == 100 && seed == 42;
    const char* cache = std::getenv("OMNIBOOST_ESTIMATOR_CACHE");
    if (cache != nullptr && default_campaign) {
      std::ifstream probe(cache, std::ios::binary);
      if (probe) {
        estimator_ = std::make_shared<const core::ThroughputEstimator>(
            core::ThroughputEstimator::load(probe));
        return history_;  // empty: no training happened
      }
    }
    core::DatasetConfig dc;
    dc.samples = samples;
    dc.seed = seed;
    const core::SampleSet data =
        core::generate_dataset(zoo_, embedding_, board_, dc);
    auto est = std::make_shared<core::ThroughputEstimator>(
        embedding_.models_dim(), embedding_.layers_dim());
    nn::L1Loss l1;
    nn::TrainConfig tc;
    tc.epochs = epochs;
    history_ = est->fit(data, val_count, l1, tc);
    if (cache != nullptr && default_campaign) est->save_file(cache);
    estimator_ = est;
    return history_;
  }

  std::shared_ptr<const core::ThroughputEstimator> estimator() {
    train_estimator();
    return estimator_;
  }

  /// Measured average throughput T of a mapping on the simulated board.
  double measure(const workload::Workload& w, const sim::Mapping& m) const {
    return board_.simulate(w.resolve(zoo_), m).avg_throughput;
  }

 private:
  models::ModelZoo zoo_;
  device::DeviceSpec device_;
  device::CostModel cost_;
  core::EmbeddingTensor embedding_;
  sim::DesSimulator board_;
  std::shared_ptr<const core::ThroughputEstimator> estimator_;
  nn::TrainHistory history_;
};

/// Prints a standard experiment banner.
inline void banner(const char* experiment, const char* paper_ref,
                   std::uint64_t seed) {
  std::printf("=== OmniBoost reproduction: %s ===\n", experiment);
  std::printf("paper reference: %s | substrate: simulated HiKey970 | seed: %llu\n\n",
              paper_ref, static_cast<unsigned long long>(seed));
}

}  // namespace omniboost::bench
