#include "sim/des.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/require.hpp"

namespace omniboost::sim {

namespace {

/// One frame flowing through a stream's pipeline.
struct Frame {
  std::size_t dnn = 0;
  std::size_t stage = 0;
  double inject_time = 0.0;  ///< arrival time at stage 0 (latency tracking)
};

struct Event {
  double time = 0.0;
  enum class Kind { kArrival, kCompletion } kind = Kind::kArrival;
  Frame frame;
  std::size_t component = 0;  ///< for completions

  bool operator>(const Event& rhs) const { return time > rhs.time; }
};

}  // namespace

DesSimulator::DesSimulator(const device::DeviceSpec& device, DesConfig config)
    : device_(device), cost_(device_), config_(config) {
  OB_REQUIRE(config_.horizon_multiplier > 0.0 &&
                 config_.warmup_fraction >= 0.0 &&
                 config_.warmup_fraction < 1.0,
             "DesSimulator: bad config");
}

void DesSimulator::set_throttle(double factor) {
  OB_REQUIRE(std::isfinite(factor) && factor > 0.0 && factor <= 1.0,
             "DesSimulator::set_throttle: factor must be in (0, 1]");
  device_.throttle = factor;
}

void finalize_report(ThroughputReport& report, const Scene& scene,
                     const NetworkList& nets,
                     const device::DeviceSpec& device) {
  report.component_penalty = scene.penalty;

  // Shared-DRAM wall: if aggregate traffic demand exceeds the board's DRAM
  // bandwidth, all streams slow down proportionally (bandwidth is a single
  // shared resource on the HiKey970's LPDDR4X).
  double demand = 0.0;  // bytes/s
  for (std::size_t i = 0; i < nets.size(); ++i)
    demand += report.per_dnn_rate[i] * stream_traffic_bytes(scene, i);
  report.dram_demand_gbps = demand / 1e9;
  // The board throttle scales the DRAM wall alongside compute (the cost
  // model already scaled kernel times); at 1.0 the multiply is bit-exact.
  const double cap = device.dram_bw_gbps * 1e9 * device.throttle;
  report.dram_scale = demand > cap ? cap / demand : 1.0;
  for (double& r : report.per_dnn_rate) r *= report.dram_scale;

  // Average workload throughput T (paper §V-A). Under the synchronized
  // measurement window (every stream completes the same number of frames),
  // each stream's INF/sec equals N / window, so T is the slowest stream's
  // free-running rate.
  double sum = 0.0;
  double slowest = report.per_dnn_rate.empty() ? 0.0 : report.per_dnn_rate[0];
  for (double r : report.per_dnn_rate) {
    sum += r;
    slowest = std::min(slowest, r);
  }
  report.free_running_avg =
      nets.empty() ? 0.0 : sum / static_cast<double>(nets.size());
  report.avg_throughput = slowest;

  // FLOP-weighted inference flow per component at the synchronized rate T:
  // flow_alpha = sum_i T * (flops of i on alpha / flops of i). Every flow is
  // proportional to T, so the estimator regresses the workload throughput
  // redundantly in all three outputs — averaging its three predictions at
  // query time cancels part of the regression error.
  report.per_component_rate = {};
  for (std::size_t i = 0; i < nets.size(); ++i) {
    double total_flops = 0.0;
    for (std::size_t sid : scene.by_dnn[i])
      total_flops += scene.segments[sid].flops;
    if (total_flops <= 0.0) continue;
    for (std::size_t sid : scene.by_dnn[i]) {
      const SegmentInfo& seg = scene.segments[sid];
      report.per_component_rate[device::component_index(seg.span.comp)] +=
          report.avg_throughput * (seg.flops / total_flops);
    }
  }
}

ThroughputReport DesSimulator::simulate(const NetworkList& nets,
                                        const Mapping& mapping) const {
  return run(nets, mapping, nullptr, nullptr, false);
}

ThroughputReport DesSimulator::simulate(
    const NetworkList& nets, const Mapping& mapping,
    const std::vector<double>& start_delay_s) const {
  return run(nets, mapping, start_delay_s.empty() ? nullptr : &start_delay_s,
             nullptr, false);
}

DesSimulator::TracedResult DesSimulator::simulate_traced(
    const NetworkList& nets, const Mapping& mapping,
    bool record_events) const {
  TracedResult out;
  out.report = run(nets, mapping, nullptr, &out.trace, record_events);
  return out;
}

DesSimulator::TracedResult DesSimulator::simulate_traced(
    const NetworkList& nets, const Mapping& mapping,
    const std::vector<double>& start_delay_s, bool record_events) const {
  TracedResult out;
  out.report = run(nets, mapping,
                   start_delay_s.empty() ? nullptr : &start_delay_s,
                   &out.trace, record_events);
  return out;
}

ThroughputReport DesSimulator::run(const NetworkList& nets,
                                   const Mapping& mapping,
                                   const std::vector<double>* start_delay_s,
                                   ExecutionTrace* trace,
                                   bool record_events) const {
  OB_REQUIRE(!nets.empty(), "DesSimulator::simulate: empty workload");
  for (const auto* n : nets)
    OB_REQUIRE(n != nullptr, "DesSimulator::simulate: null network");
  if (start_delay_s != nullptr) {
    OB_REQUIRE(start_delay_s->size() == nets.size(),
               "DesSimulator::simulate: start delay arity mismatch");
    for (const double d : *start_delay_s)
      OB_REQUIRE(d >= 0.0 && std::isfinite(d),
                 "DesSimulator::simulate: start delays must be finite, >= 0");
  }

  const Scene scene = build_scene(nets, mapping, cost_);
  ThroughputReport report;
  report.per_dnn_rate.assign(nets.size(), 0.0);
  report.component_penalty = scene.penalty;

  if (!scene.fits_in_memory) {
    // The paper observed the board becoming unresponsive at 6 concurrent
    // DNNs; we model that as an infeasible (zero-throughput) outcome.
    report.feasible = false;
    if (trace != nullptr) {
      trace->per_dnn_latency.assign(nets.size(), LatencyStats{});
    }
    return report;
  }

  // Horizon: scaled to the slowest stream's solo (contended) inference time.
  double slowest = 0.0;
  for (std::size_t i = 0; i < nets.size(); ++i) {
    double t = 0.0;
    for (std::size_t sid : scene.by_dnn[i]) {
      t += scene.segments[sid].service_time_s;
      t += scene.segments[sid].transfer_out_s;
    }
    slowest = std::max(slowest, t);
  }
  const double horizon = config_.horizon_multiplier * slowest;
  const double warmup = config_.warmup_fraction * horizon;
  const double window = horizon - warmup;

  std::vector<std::vector<double>> latencies;
  if (trace != nullptr) {
    trace->warmup_seconds = warmup;
    trace->horizon_seconds = horizon;
    for (auto& cu : trace->components) {
      cu = ComponentUtilization{};
      cu.window_seconds = window;
    }
    latencies.assign(nets.size(), {});
  }

  // Component state: FIFO queues of pending frames.
  struct CompState {
    bool busy = false;
    std::queue<Frame> queue;
  };
  std::array<CompState, device::kNumComponents> comps;
  std::vector<std::size_t> completions(nets.size(), 0);

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;

  const auto segment_of = [&](const Frame& f) -> const SegmentInfo& {
    return scene.segments[scene.by_dnn[f.dnn][f.stage]];
  };

  const auto start_service = [&](double now, const Frame& f) {
    const SegmentInfo& seg = segment_of(f);
    const std::size_t c = device::component_index(seg.span.comp);
    comps[c].busy = true;
    events.push(Event{now + seg.service_time_s, Event::Kind::kCompletion, f,
                      c});
  };

  const auto enqueue = [&](double now, const Frame& f) {
    const SegmentInfo& seg = segment_of(f);
    const std::size_t c = device::component_index(seg.span.comp);
    if (!comps[c].busy) {
      start_service(now, f);
    } else {
      comps[c].queue.push(f);
      if (trace != nullptr) {
        auto& cu = trace->components[c];
        cu.max_queue_depth = std::max(cu.max_queue_depth,
                                      comps[c].queue.size());
      }
    }
  };

  // Closed-loop injection: one frame in flight per pipeline stage keeps
  // every stage busy without unbounded queueing.
  for (std::size_t i = 0; i < nets.size(); ++i)
    for (std::size_t s = 0; s < scene.by_dnn[i].size(); ++s)
      events.push(Event{0.0, Event::Kind::kArrival, Frame{i, 0}, 0});

  std::size_t processed = 0;
  while (!events.empty() && processed < config_.max_events) {
    const Event ev = events.top();
    events.pop();
    ++processed;
    if (ev.time > horizon) break;

    if (ev.kind == Event::Kind::kArrival) {
      enqueue(ev.time, ev.frame);
      continue;
    }

    // Completion of a segment execution.
    const SegmentInfo& seg = segment_of(ev.frame);
    CompState& comp = comps[ev.component];
    comp.busy = false;

    if (trace != nullptr) {
      const double exec_start = ev.time - seg.service_time_s;
      auto& cu = trace->components[ev.component];
      // Busy time clipped to the measurement window.
      cu.busy_seconds += std::max(
          0.0, std::min(ev.time, horizon) - std::max(exec_start, warmup));
      if (ev.time >= warmup) ++cu.executions;
      if (record_events) {
        trace->events.push_back(TraceEvent{exec_start, ev.time, ev.frame.dnn,
                                           ev.frame.stage, seg.span.comp});
      }
    }
    if (!comp.queue.empty()) {
      const Frame next = comp.queue.front();
      comp.queue.pop();
      start_service(ev.time, next);
    }

    Frame f = ev.frame;
    if (f.stage + 1 < scene.by_dnn[f.dnn].size()) {
      f.stage += 1;
      events.push(Event{ev.time + seg.transfer_out_s, Event::Kind::kArrival,
                        f, 0});
    } else {
      if (ev.time >= warmup) {
        ++completions[f.dnn];
        if (trace != nullptr)
          latencies[f.dnn].push_back(ev.time - f.inject_time);
      }
      // Recirculate: the stream immediately starts its next input frame.
      events.push(
          Event{ev.time, Event::Kind::kArrival, Frame{f.dnn, 0, ev.time}, 0});
    }
  }

  OB_ENSURE(window > 0.0, "DES: empty measurement window");
  if (trace != nullptr) {
    trace->per_dnn_latency.clear();
    trace->per_dnn_latency.reserve(nets.size());
    for (auto& v : latencies)
      trace->per_dnn_latency.push_back(LatencyStats::from_samples(std::move(v)));
  }
  for (std::size_t i = 0; i < nets.size(); ++i) {
    report.per_dnn_rate[i] =
        static_cast<double>(completions[i]) / window;
    // One-off start stall (migration cost): the stream is absent for the
    // first start_delay_s[i] of the measurement window, so its measured
    // completions scale by the fraction of the window it actually served.
    // Charged AGAINST the steady-state rate rather than by perturbing the
    // event loop: shifting injection phase would interact chaotically with
    // queueing (it can even raise the synchronized-window T) and a stall
    // shorter than the warm-up would silently vanish. This form is
    // deterministic, strictly monotone in the delay, and zero-delay is
    // bit-identical to the undelayed run.
    if (start_delay_s != nullptr) {
      const double lost = std::min((*start_delay_s)[i], window);
      report.per_dnn_rate[i] *= (window - lost) / window;
    }
  }

  finalize_report(report, scene, nets, cost_.device());
  return report;
}

}  // namespace omniboost::sim
