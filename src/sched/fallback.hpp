#pragma once
/// \file fallback.hpp
/// Decision-deadline guard: a decorator that wraps any primary IScheduler
/// with a wall-clock deadline and bounded retry-with-backoff, falling back
/// to a deterministic microsecond scheduler (Greedy by convention) whenever
/// the primary is too slow or throws. The serving loop can then never stall
/// on a decision: every epoch gets SOME mapping within a bounded wall-clock
/// budget. This is the `mris_ilp_scheduler` timeout-with-fallback pattern
/// (pamaury/pasched) generalized to the serving path.
///
/// Semantics: C++ cannot safely abort an in-flight schedule() call, so the
/// deadline is enforced POST-HOC — the primary runs to completion, and a
/// result that came back after the attempt's deadline is discarded as stale
/// (by the time it is ready the epoch has moved on). Each retry grows the
/// allowed deadline by backoff_multiplier (retrying under the identical
/// budget would fail the identical way); after max_attempts the fallback
/// decides. A deadline_ms of 0 never invokes the primary at all — every
/// epoch provably serves through the fallback (pinned by
/// tests/fallback_test.cpp).
///
/// Determinism caveat: with a finite nonzero deadline the decision depends
/// on wall-clock timing and is NOT replay-deterministic. The two extremes
/// are: deadline_ms == 0 (always fallback) and a deadline no primary
/// decision ever misses (always primary, e.g. minutes) — deterministic
/// pipelines (tests, pinned benches) must use one of those.

#include <cstddef>
#include <memory>
#include <string>

#include "core/scheduler.hpp"
#include "device/device.hpp"
#include "models/zoo.hpp"

namespace omniboost::sched {

/// Deadline-guard controls.
struct FallbackConfig {
  /// Wall-clock budget of the first primary attempt, in milliseconds. 0
  /// skips the primary entirely: every decision is served by the fallback.
  /// Must be finite and >= 0.
  double deadline_ms = 50.0;
  /// Primary attempts before the fallback decides (>= 1). Attempt k runs
  /// under deadline_ms * backoff_multiplier^k.
  std::size_t max_attempts = 2;
  /// Deadline growth per retry (finite, >= 1).
  double backoff_multiplier = 2.0;
};

/// Cumulative decision accounting across the wrapper's lifetime.
struct FallbackStats {
  std::size_t primary_decisions = 0;   ///< primary result accepted in time
  std::size_t fallback_decisions = 0;  ///< fallback had to decide
  std::size_t deadline_misses = 0;     ///< primary results discarded as late
  std::size_t exceptions = 0;          ///< primary attempts that threw
  std::size_t retries = 0;             ///< extra primary attempts made
};

/// Deadline + retry + fallback decorator around two owned schedulers.
class FallbackScheduler final : public core::IScheduler {
 public:
  /// \param primary   the scheduler worth waiting for (MCTS, B&B, ...)
  /// \param fallback  the always-fast safety net; must never throw for any
  ///                  workload the serving loop can produce
  FallbackScheduler(std::unique_ptr<core::IScheduler> primary,
                    std::unique_ptr<core::IScheduler> fallback,
                    FallbackConfig config = {});

  std::string name() const override;
  core::ScheduleResult schedule(const workload::Workload& w) override;
  core::ScheduleResult reschedule(const workload::Workload& w,
                                  const sim::Mapping& previous,
                                  const core::ScheduleContext& ctx) override;

  const FallbackStats& stats() const { return stats_; }
  const FallbackConfig& config() const { return config_; }
  core::IScheduler& primary() { return *primary_; }
  core::IScheduler& fallback() { return *fallback_; }

 private:
  /// Shared guard: runs the attempt ladder over \p attempt (a callable
  /// invoking either schedule or reschedule on a given scheduler).
  template <typename Attempt>
  core::ScheduleResult guarded(const Attempt& attempt);

  std::unique_ptr<core::IScheduler> primary_;
  std::unique_ptr<core::IScheduler> fallback_;
  FallbackConfig config_;
  FallbackStats stats_;
};

/// Convenience: wrap \p primary with a GreedyScheduler fallback on the given
/// board — the standard serving-path guard.
std::unique_ptr<FallbackScheduler> make_greedy_fallback(
    std::unique_ptr<core::IScheduler> primary, const models::ModelZoo& zoo,
    const device::DeviceSpec& device, FallbackConfig config = {});

}  // namespace omniboost::sched
