#include "nn/gradcheck.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace omniboost::nn {

namespace {

double rel_error(double analytic, double numeric) {
  const double denom =
      std::max({std::fabs(analytic), std::fabs(numeric), 1e-4});
  return std::fabs(analytic - numeric) / denom;
}

double eval_loss(Module& module, const Tensor& x, const Tensor& target,
                 const Loss& loss) {
  return loss.compute(module.forward(x), target).value;
}

}  // namespace

GradCheckResult check_gradients(Module& module, const Tensor& x,
                                const Tensor& target, const Loss& loss,
                                float eps) {
  OB_REQUIRE(eps > 0.0f, "check_gradients: eps must be positive");
  GradCheckResult result;

  // Analytic pass.
  module.zero_grad();
  Tensor pred = module.forward(x);
  LossResult lr = loss.compute(pred, target);
  Tensor gx = module.backward(lr.grad);

  // Numeric input gradient.
  Tensor xp = x;
  for (std::size_t i = 0; i < xp.size(); ++i) {
    const float saved = xp[i];
    xp[i] = saved + eps;
    const double up = eval_loss(module, xp, target, loss);
    xp[i] = saved - eps;
    const double dn = eval_loss(module, xp, target, loss);
    xp[i] = saved;
    const double numeric = (up - dn) / (2.0 * eps);
    result.max_input_err =
        std::max(result.max_input_err, rel_error(gx[i], numeric));
  }

  // Numeric parameter gradients.
  for (Param* p : module.params()) {
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      const float saved = p->value[i];
      p->value[i] = saved + eps;
      const double up = eval_loss(module, x, target, loss);
      p->value[i] = saved - eps;
      const double dn = eval_loss(module, x, target, loss);
      p->value[i] = saved;
      const double numeric = (up - dn) / (2.0 * eps);
      result.max_param_err =
          std::max(result.max_param_err, rel_error(p->grad[i], numeric));
    }
  }
  return result;
}

}  // namespace omniboost::nn
