#pragma once
/// \file mapping.hpp
/// The schedulable decision object: which computing component runs every
/// layer of every DNN in a multi-DNN workload. Contiguous runs of layers on
/// one component form *pipeline stages* (the paper limits these to
/// x = kNumComponents per DNN; exceeding that marks a losing MCTS state).

#include <cstddef>
#include <vector>

#include "device/device.hpp"
#include "models/layer_desc.hpp"

namespace omniboost::sim {

using device::ComponentId;

/// Per-layer component choice for one DNN.
using Assignment = std::vector<ComponentId>;

/// One contiguous run of layers on a single component.
struct SegmentSpan {
  std::size_t first = 0;  ///< first layer index (inclusive)
  std::size_t last = 0;   ///< last layer index (inclusive)
  ComponentId comp = ComponentId::kGpu;
};

/// Splits an assignment into its contiguous segments.
std::vector<SegmentSpan> extract_segments(const Assignment& a);

/// Number of pipeline stages (contiguous runs) of an assignment.
std::size_t num_stages(const Assignment& a);

/// A complete mapping for a workload of several DNNs.
class Mapping {
 public:
  Mapping() = default;
  explicit Mapping(std::vector<Assignment> per_dnn);

  /// Mapping that places every layer of every DNN on one component
  /// (the paper's baseline uses ComponentId::kGpu).
  static Mapping all_on(const std::vector<std::size_t>& layer_counts,
                        ComponentId comp);

  std::size_t num_dnns() const { return per_dnn_.size(); }
  const Assignment& assignment(std::size_t dnn) const;
  const std::vector<Assignment>& assignments() const { return per_dnn_; }

  /// Stage count of one DNN.
  std::size_t stages(std::size_t dnn) const;
  /// Largest stage count over all DNNs.
  std::size_t max_stages() const;
  /// True iff every DNN has at most \p limit stages (paper: limit = 3).
  bool within_stage_limit(std::size_t limit) const;

  bool operator==(const Mapping& rhs) const { return per_dnn_ == rhs.per_dnn_; }
  bool operator!=(const Mapping& rhs) const { return !(*this == rhs); }

 private:
  std::vector<Assignment> per_dnn_;
};

}  // namespace omniboost::sim
