#pragma once
/// \file scheduler.hpp
/// The common interface every multi-DNN scheduler implements: OmniBoost,
/// the GPU-only baseline, MOSAIC and the GA. Benches compare them through
/// this interface and time their decisions.

#include <string>

#include "sim/mapping.hpp"
#include "workload/workload.hpp"

namespace omniboost::core {

/// Outcome of one scheduling decision.
struct ScheduleResult {
  sim::Mapping mapping;
  double expected_reward = 0.0;   ///< scheduler-internal score (0 if none)
  double decision_seconds = 0.0;  ///< wall-clock decision latency
  /// Performance-model / simulator queries actually executed. For
  /// memoizing searchers (OmniBoost's MCTS) repeated visits to an
  /// already-scored mapping are counted in cache_hits instead, so
  /// evaluations + cache_hits is the rollout budget spent.
  std::size_t evaluations = 0;
  std::size_t cache_hits = 0;     ///< queries answered from an evaluation memo
  /// Board time a measurement-driven scheduler would burn on the device for
  /// this decision (GA fitness runs). Zero for model-driven schedulers.
  double board_seconds = 0.0;
};

/// A run-time multi-DNN workload manager.
class IScheduler {
 public:
  virtual ~IScheduler() = default;

  /// Display name used in bench tables.
  virtual std::string name() const = 0;

  /// Produces a layer-to-component mapping for the workload.
  virtual ScheduleResult schedule(const workload::Workload& w) = 0;
};

}  // namespace omniboost::core
