#include "device/profile.hpp"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace omniboost::device {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

void write_component(std::ostream& os, const char* section,
                     const ComponentSpec& c) {
  os << "[component." << section << "]\n";
  os << "name = " << c.name << "\n";
  char buf[64];
  const auto num = [&](const char* key, double v) {
    std::snprintf(buf, sizeof buf, "%.17g", v);
    os << key << " = " << buf << "\n";
  };
  num("peak_gflops", c.peak_gflops);
  num("mem_bw_gbps", c.mem_bw_gbps);
  num("kernel_overhead_s", c.kernel_overhead_s);
  num("eff_gemm", c.efficiency.gemm);
  num("eff_direct_conv", c.efficiency.direct_conv);
  num("eff_depthwise", c.efficiency.depthwise);
  num("eff_elementwise", c.efficiency.elementwise);
  num("working_set_budget_bytes", c.working_set_budget_bytes);
  num("contention_exponent", c.contention_exponent);
  os << "\n";
}

constexpr const char* kComponentSections[kNumComponents] = {"gpu", "big",
                                                            "little"};

}  // namespace

void save_profile(const DeviceSpec& spec, std::ostream& os) {
  char buf[64];
  const auto num = [&](const char* key, double v) {
    std::snprintf(buf, sizeof buf, "%.17g", v);
    os << key << " = " << buf << "\n";
  };
  os << "# OmniBoost device profile\n";
  os << "[device]\n";
  os << "name = " << spec.name << "\n";
  num("dram_bw_gbps", spec.dram_bw_gbps);
  num("memory_budget_bytes", spec.memory_budget_bytes);
  num("per_stream_overhead_bytes", spec.per_stream_overhead_bytes);
  num("per_inference_overhead_s", spec.per_inference_overhead_s);
  os << "\n[link]\n";
  num("bandwidth_gbps", spec.link.bandwidth_gbps);
  num("latency_s", spec.link.latency_s);
  os << "\n";
  for (std::size_t i = 0; i < kNumComponents; ++i) {
    write_component(os, kComponentSections[i], spec.components[i]);
  }
  if (!os) throw std::runtime_error("save_profile: stream write failed");
}

void save_profile_file(const DeviceSpec& spec, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_profile_file: cannot open " + path);
  save_profile(spec, os);
}

DeviceSpec load_profile(std::istream& is) {
  DeviceSpec spec = make_hikey970();

  enum class Section { kNone, kDevice, kLink, kComponent };
  Section section = Section::kNone;
  std::size_t comp_index = 0;
  std::string line;
  std::size_t line_no = 0;

  const auto fail = [&](const std::string& what) {
    throw std::runtime_error("load_profile: line " + std::to_string(line_no) +
                             ": " + what);
  };

  const auto parse_double = [&](const std::string& v) {
    try {
      std::size_t pos = 0;
      const double out = std::stod(v, &pos);
      if (pos != v.size()) fail("trailing characters after number '" + v + "'");
      return out;
    } catch (const std::invalid_argument&) {
      fail("expected a number, got '" + v + "'");
    } catch (const std::out_of_range&) {
      fail("number out of range: '" + v + "'");
    }
    return 0.0;  // unreachable
  };

  while (std::getline(is, line)) {
    ++line_no;
    // Strip comments and whitespace.
    if (const auto hash = line.find_first_of("#;"); hash != std::string::npos)
      line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') fail("unterminated section header");
      const std::string name = trim(line.substr(1, line.size() - 2));
      if (name == "device") {
        section = Section::kDevice;
      } else if (name == "link") {
        section = Section::kLink;
      } else if (name.rfind("component.", 0) == 0) {
        const std::string which = name.substr(10);
        section = Section::kComponent;
        bool found = false;
        for (std::size_t i = 0; i < kNumComponents; ++i) {
          if (which == kComponentSections[i]) {
            comp_index = i;
            found = true;
            break;
          }
        }
        if (!found) fail("unknown component '" + which + "' (gpu|big|little)");
      } else {
        fail("unknown section [" + name + "]");
      }
      continue;
    }

    const auto eq = line.find('=');
    if (eq == std::string::npos) fail("expected 'key = value'");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) fail("empty key");

    switch (section) {
      case Section::kNone:
        fail("key '" + key + "' outside any section");
        break;
      case Section::kDevice:
        if (key == "name") {
          spec.name = value;
        } else if (key == "dram_bw_gbps") {
          spec.dram_bw_gbps = parse_double(value);
        } else if (key == "memory_budget_bytes") {
          spec.memory_budget_bytes = parse_double(value);
        } else if (key == "per_stream_overhead_bytes") {
          spec.per_stream_overhead_bytes = parse_double(value);
        } else if (key == "per_inference_overhead_s") {
          spec.per_inference_overhead_s = parse_double(value);
        } else {
          fail("unknown [device] key '" + key + "'");
        }
        break;
      case Section::kLink:
        if (key == "bandwidth_gbps") {
          spec.link.bandwidth_gbps = parse_double(value);
        } else if (key == "latency_s") {
          spec.link.latency_s = parse_double(value);
        } else {
          fail("unknown [link] key '" + key + "'");
        }
        break;
      case Section::kComponent: {
        ComponentSpec& c = spec.components[comp_index];
        if (key == "name") {
          c.name = value;
        } else if (key == "peak_gflops") {
          c.peak_gflops = parse_double(value);
        } else if (key == "mem_bw_gbps") {
          c.mem_bw_gbps = parse_double(value);
        } else if (key == "kernel_overhead_s") {
          c.kernel_overhead_s = parse_double(value);
        } else if (key == "eff_gemm") {
          c.efficiency.gemm = parse_double(value);
        } else if (key == "eff_direct_conv") {
          c.efficiency.direct_conv = parse_double(value);
        } else if (key == "eff_depthwise") {
          c.efficiency.depthwise = parse_double(value);
        } else if (key == "eff_elementwise") {
          c.efficiency.elementwise = parse_double(value);
        } else if (key == "working_set_budget_bytes") {
          c.working_set_budget_bytes = parse_double(value);
        } else if (key == "contention_exponent") {
          c.contention_exponent = parse_double(value);
        } else {
          fail("unknown [component] key '" + key + "'");
        }
        break;
      }
    }
  }
  return spec;
}

DeviceSpec load_profile_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_profile_file: cannot open " + path);
  return load_profile(is);
}

}  // namespace omniboost::device
