#include <algorithm>
#include <cmath>
#include <vector>

#include "nn/gemm_dispatch.hpp"
#include "nn/layers.hpp"
#include "tensor/gemm.hpp"
#include "util/require.hpp"

namespace omniboost::nn {

namespace {

/// Output-column range [lo, hi) for which ix = ox*stride + kx - pad lies in
/// [0, w).
void ox_bounds(std::size_t ow, std::size_t w, std::size_t stride,
               std::ptrdiff_t off, std::size_t& lo, std::size_t& hi) {
  // ox*stride + off in [0, w)  =>  ox in [ceil(-off/stride), (w-1-off)/stride]
  std::ptrdiff_t lo_s = 0;
  if (off < 0)
    lo_s = (-off + static_cast<std::ptrdiff_t>(stride) - 1) /
           static_cast<std::ptrdiff_t>(stride);
  std::ptrdiff_t hi_s = -1;
  if (static_cast<std::ptrdiff_t>(w) - 1 - off >= 0)
    hi_s = (static_cast<std::ptrdiff_t>(w) - 1 - off) /
           static_cast<std::ptrdiff_t>(stride);
  lo = static_cast<std::size_t>(std::max<std::ptrdiff_t>(lo_s, 0));
  hi = static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(hi_s + 1, static_cast<std::ptrdiff_t>(ow)));
  if (hi < lo) hi = lo;
}

}  // namespace

Conv2d::Conv2d(std::size_t in_ch, std::size_t out_ch, std::size_t kernel,
               std::size_t stride, std::size_t padding, bool bias)
    : in_ch_(in_ch),
      out_ch_(out_ch),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      has_bias_(bias),
      weight_({out_ch, in_ch, kernel, kernel}),
      bias_({out_ch}) {
  OB_REQUIRE(in_ch > 0 && out_ch > 0, "Conv2d: channels must be positive");
  OB_REQUIRE(kernel > 0 && stride > 0, "Conv2d: kernel/stride must be >= 1");
}

std::vector<Param*> Conv2d::params() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

void Conv2d::init(util::Rng& rng) {
  // Kaiming-normal for GELU/ReLU-style activations: std = sqrt(2 / fan_in).
  const double fan_in =
      static_cast<double>(in_ch_) * static_cast<double>(kernel_ * kernel_);
  const double std = std::sqrt(2.0 / fan_in);
  for (std::size_t i = 0; i < weight_.value.size(); ++i)
    weight_.value[i] = static_cast<float>(rng.normal(0.0, std));
  bias_.value.zero();
}

Tensor Conv2d::forward(const Tensor& x) {
  OB_REQUIRE(x.rank() == 4, "Conv2d: input must be NCHW");
  OB_REQUIRE(x.extent(1) == in_ch_, "Conv2d: channel mismatch");
  input_ = x;

  const std::size_t h = x.extent(2), w = x.extent(3);
  OB_REQUIRE(h + 2 * padding_ >= kernel_ && w + 2 * padding_ >= kernel_,
             "Conv2d: input smaller than kernel");
  const std::size_t oh = (h + 2 * padding_ - kernel_) / stride_ + 1;
  const std::size_t ow = (w + 2 * padding_ - kernel_) / stride_ + 1;
  Tensor y({x.extent(0), out_ch_, oh, ow});

  return kernel_kind_ == KernelKind::kReference
             ? forward_reference(x, std::move(y))
             : forward_gemm(x, std::move(y));
}

// The bit-frozen paper path: weight-stationary nested loops, unchanged from
// the seed tree (the {kernel = reference} campaigns reproduce bit-for-bit).
Tensor Conv2d::forward_reference(const Tensor& x, Tensor y) const {
  const std::size_t n = x.extent(0), h = x.extent(2), w = x.extent(3);
  const std::size_t oh = y.extent(2), ow = y.extent(3);
  const float* xd = x.data();
  const float* wd = weight_.value.data();
  float* yd = y.data();

  if (has_bias_) {
    for (std::size_t b = 0; b < n; ++b) {
      for (std::size_t oc = 0; oc < out_ch_; ++oc) {
        float* yplane = yd + (b * out_ch_ + oc) * oh * ow;
        const float bias = bias_.value[oc];
        for (std::size_t i = 0; i < oh * ow; ++i) yplane[i] = bias;
      }
    }
  }
  // Batch innermost (between kernel tap and output rows): the weight load
  // and the column-bounds arithmetic of one (oc, ic, ky, kx) tap are hoisted
  // across all N samples, so batched forwards (predict_batch, the MCTS
  // expansion waves) pay them once per tap instead of once per sample.
  // For n == 1 the work is identical to the sample-outer order.
  for (std::size_t oc = 0; oc < out_ch_; ++oc) {
    for (std::size_t ic = 0; ic < in_ch_; ++ic) {
      const float* wplane = wd + (oc * in_ch_ + ic) * kernel_ * kernel_;
      for (std::size_t ky = 0; ky < kernel_; ++ky) {
        for (std::size_t kx = 0; kx < kernel_; ++kx) {
          const float wv = wplane[ky * kernel_ + kx];
          if (wv == 0.0f) continue;
          const auto off_x = static_cast<std::ptrdiff_t>(kx) -
                             static_cast<std::ptrdiff_t>(padding_);
          std::size_t lo, hi;
          ox_bounds(ow, w, stride_, off_x, lo, hi);
          for (std::size_t b = 0; b < n; ++b) {
            const float* xplane = xd + (b * in_ch_ + ic) * h * w;
            float* yplane = yd + (b * out_ch_ + oc) * oh * ow;
            for (std::size_t oy = 0; oy < oh; ++oy) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * stride_ + ky) -
                  static_cast<std::ptrdiff_t>(padding_);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
              const float* xrow =
                  xplane + static_cast<std::size_t>(iy) * w;
              float* yrow = yplane + oy * ow;
              if (stride_ == 1) {
                const float* xs = xrow + off_x;
                for (std::size_t ox = lo; ox < hi; ++ox)
                  yrow[ox] += wv * xs[ox];
              } else {
                for (std::size_t ox = lo; ox < hi; ++ox)
                  yrow[ox] +=
                      wv * xrow[static_cast<std::size_t>(
                               static_cast<std::ptrdiff_t>(ox * stride_) +
                               off_x)];
              }
            }
          }
        }
      }
    }
  }
  return y;
}

// im2col + GEMM lowering, batched: the whole batch is lowered into ONE
// column matrix cols (K x n*P), K = in_ch*k*k and P = oh*ow, with sample b
// owning columns [b*P, (b+1)*P). A single GEMM against the weight matrix
// then serves the entire batch — the blocked kernel amortizes its packing
// over the full expansion wave — and the (out_ch x n*P) product is
// scattered back to NCHW with the bias folded into the scatter.
Tensor Conv2d::forward_gemm(const Tensor& x, Tensor y) const {
  const std::size_t n = x.extent(0), h = x.extent(2), w = x.extent(3);
  const std::size_t oh = y.extent(2), ow = y.extent(3);
  const std::size_t patch = in_ch_ * kernel_ * kernel_;  // GEMM K
  const std::size_t pixels = oh * ow;                    // per-sample columns
  const std::size_t width = n * pixels;                  // GEMM N
  const bool identity_cols =
      kernel_ == 1 && stride_ == 1 && padding_ == 0;

  // Reused scratch. thread_local, not members: layer instances are single-
  // threaded by the module contract, but pool workers run their own layer
  // clones concurrently and must not share buffers.
  static thread_local std::vector<float> cols;
  static thread_local std::vector<float> sample_cols;
  static thread_local std::vector<float> product;
  cols.resize(patch * width);
  product.resize(out_ch_ * width);

  for (std::size_t b = 0; b < n; ++b) {
    const float* xplane = x.data() + b * in_ch_ * h * w;
    const float* block = xplane;  // 1x1 fast path: the plane is the block
    if (!identity_cols) {
      sample_cols.resize(patch * pixels);
      tensor::im2col(xplane, in_ch_, h, w, kernel_, stride_, padding_,
                     sample_cols.data());
      block = sample_cols.data();
    }
    // Interleave the (K x P) sample block into the batch-wide matrix.
    for (std::size_t row = 0; row < patch; ++row)
      std::copy(block + row * pixels, block + (row + 1) * pixels,
                cols.data() + row * width + b * pixels);
  }

  detail::dispatch_gemm(kernel_kind_, false, false, out_ch_, width, patch,
                        1.0f, weight_.value.data(), patch, cols.data(), width,
                        0.0f, product.data(), width);

  // Scatter (out_ch x n*P) -> (n, out_ch, P), bias folded in.
  for (std::size_t b = 0; b < n; ++b) {
    float* yplane = y.data() + b * out_ch_ * pixels;
    for (std::size_t oc = 0; oc < out_ch_; ++oc) {
      const float* src = product.data() + oc * width + b * pixels;
      float* dst = yplane + oc * pixels;
      if (has_bias_) {
        const float bias = bias_.value[oc];
        for (std::size_t i = 0; i < pixels; ++i) dst[i] = src[i] + bias;
      } else {
        std::copy(src, src + pixels, dst);
      }
    }
  }
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  OB_REQUIRE(!input_.empty(), "Conv2d::backward before forward");
  const std::size_t n = input_.extent(0);
  OB_REQUIRE(grad_out.extent(0) == n && grad_out.extent(1) == out_ch_,
             "Conv2d::backward: grad shape mismatch");
  return kernel_kind_ == KernelKind::kReference ? backward_reference(grad_out)
                                                : backward_gemm(grad_out);
}

// The bit-frozen paper path (unchanged from the seed tree).
Tensor Conv2d::backward_reference(const Tensor& grad_out) {
  const Tensor& x = input_;
  const std::size_t n = x.extent(0), h = x.extent(2), w = x.extent(3);
  const std::size_t oh = grad_out.extent(2), ow = grad_out.extent(3);

  Tensor gx(x.shape());
  const float* xd = x.data();
  const float* wd = weight_.value.data();
  const float* gd = grad_out.data();
  float* gxd = gx.data();
  float* gwd = weight_.grad.data();
  float* gbd = bias_.grad.data();

  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t oc = 0; oc < out_ch_; ++oc) {
      const float* gplane = gd + (b * out_ch_ + oc) * oh * ow;
      if (has_bias_) {
        float acc = 0.0f;
        for (std::size_t i = 0; i < oh * ow; ++i) acc += gplane[i];
        gbd[oc] += acc;
      }
      for (std::size_t ic = 0; ic < in_ch_; ++ic) {
        const float* xplane = xd + (b * in_ch_ + ic) * h * w;
        float* gxplane = gxd + (b * in_ch_ + ic) * h * w;
        const float* wplane = wd + (oc * in_ch_ + ic) * kernel_ * kernel_;
        float* gwplane = gwd + (oc * in_ch_ + ic) * kernel_ * kernel_;
        for (std::size_t ky = 0; ky < kernel_; ++ky) {
          for (std::size_t kx = 0; kx < kernel_; ++kx) {
            const float wv = wplane[ky * kernel_ + kx];
            const auto off_x = static_cast<std::ptrdiff_t>(kx) -
                               static_cast<std::ptrdiff_t>(padding_);
            std::size_t lo, hi;
            ox_bounds(ow, w, stride_, off_x, lo, hi);
            float gw_acc = 0.0f;
            for (std::size_t oy = 0; oy < oh; ++oy) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * stride_ + ky) -
                  static_cast<std::ptrdiff_t>(padding_);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
              const float* xrow = xplane + static_cast<std::size_t>(iy) * w;
              float* gxrow = gxplane + static_cast<std::size_t>(iy) * w;
              const float* grow = gplane + oy * ow;
              if (stride_ == 1) {
                const float* xs = xrow + off_x;
                float* gxs = gxrow + off_x;
                for (std::size_t ox = lo; ox < hi; ++ox) {
                  const float g = grow[ox];
                  gw_acc += g * xs[ox];
                  gxs[ox] += g * wv;
                }
              } else {
                for (std::size_t ox = lo; ox < hi; ++ox) {
                  const float g = grow[ox];
                  const auto ix = static_cast<std::size_t>(
                      static_cast<std::ptrdiff_t>(ox * stride_) + off_x);
                  gw_acc += g * xrow[ix];
                  gxrow[ix] += g * wv;
                }
              }
            }
            gwplane[ky * kernel_ + kx] += gw_acc;
          }
        }
      }
    }
  }
  return gx;
}

// GEMM lowering of both gradients, per sample b:
//   gW   += gy_b (out_ch x P) * cols_b^T (P x K)          [accumulating GEMM]
//   gcols = W^T  (K x out_ch) * gy_b    (out_ch x P)      [then col2im -> gx]
// with K = in_ch*k*k and P = oh*ow. cols_b is recomputed from the cached
// input (cheaper than caching it for the whole batch).
Tensor Conv2d::backward_gemm(const Tensor& grad_out) {
  const Tensor& x = input_;
  const std::size_t n = x.extent(0), h = x.extent(2), w = x.extent(3);
  const std::size_t oh = grad_out.extent(2), ow = grad_out.extent(3);
  const std::size_t patch = in_ch_ * kernel_ * kernel_;
  const std::size_t pixels = oh * ow;
  const bool identity_cols =
      kernel_ == 1 && stride_ == 1 && padding_ == 0;

  Tensor gx(x.shape());
  std::vector<float> cols;
  if (!identity_cols) cols.resize(patch * pixels);
  std::vector<float> gcols(patch * pixels);
  const float* wd = weight_.value.data();
  float* gwd = weight_.grad.data();
  float* gbd = bias_.grad.data();

  for (std::size_t b = 0; b < n; ++b) {
    const float* xplane = x.data() + b * in_ch_ * h * w;
    const float* gplane = grad_out.data() + b * out_ch_ * pixels;
    float* gxplane = gx.data() + b * in_ch_ * h * w;

    if (has_bias_) {
      for (std::size_t oc = 0; oc < out_ch_; ++oc) {
        const float* grow = gplane + oc * pixels;
        float acc = 0.0f;
        for (std::size_t i = 0; i < pixels; ++i) acc += grow[i];
        gbd[oc] += acc;
      }
    }

    const float* colp = xplane;
    if (!identity_cols) {
      tensor::im2col(xplane, in_ch_, h, w, kernel_, stride_, padding_,
                     cols.data());
      colp = cols.data();
    }
    detail::dispatch_gemm(kernel_kind_, false, true, out_ch_, patch, pixels,
                          1.0f, gplane, pixels, colp, pixels, 1.0f, gwd,
                          patch);
    if (identity_cols) {
      detail::dispatch_gemm(kernel_kind_, true, false, patch, pixels, out_ch_,
                            1.0f, wd, patch, gplane, pixels, 0.0f, gxplane,
                            pixels);
    } else {
      detail::dispatch_gemm(kernel_kind_, true, false, patch, pixels, out_ch_,
                            1.0f, wd, patch, gplane, pixels, 0.0f,
                            gcols.data(), pixels);
      tensor::col2im(gcols.data(), in_ch_, h, w, kernel_, stride_, padding_,
                     gxplane);
    }
  }
  return gx;
}

}  // namespace omniboost::nn
