#pragma once
/// \file kernel.hpp
/// Kernel selection for the compute-heavy layers (Conv2d, Linear).
///
/// Three interchangeable lowerings exist for each layer:
///  * kReference — the original naive nested loops. Bit-frozen: this path
///    is what the paper-reproduction campaigns ran, so it must never change
///    numerically ({kernel = reference} reproduces the seed search
///    bit-for-bit; pinned by tests/nn_kernel_test.cpp).
///  * kGemm — im2col + cache-blocked GEMM (tensor/gemm.hpp). Faster, and
///    deterministic run-to-run, but its fixed summation order differs from
///    the reference, so outputs match within float rounding (<= 1e-6 on the
///    estimator's value ranges), not bitwise.
///  * kSimd — the same im2col lowering with the GEMM calls routed to the
///    runtime-dispatched SIMD micro-kernels (tensor/simd.hpp): 6x16 AVX2
///    FMA tiles on x86-64, 4x8 NEON on aarch64, selected via cpuid. On a
///    host without the ISA the layer math silently degrades to kGemm
///    (identical contract); resolve_kernel/kernel_resolution_note expose
///    the downgrade so front-ends can report it instead of guessing.
///
/// Layers capture the process-wide default at construction time
/// (set_default_kernel) and can be switched per instance afterwards via
/// Module::set_kernel, which containers propagate recursively.

#include <string>

namespace omniboost::nn {

enum class KernelKind {
  kReference,  ///< naive nested loops (the paper path, bit-frozen)
  kGemm,       ///< im2col + blocked GEMM lowering (default)
  kSimd,       ///< im2col + runtime-dispatched SIMD GEMM (tensor/simd.hpp)
};

/// Process-wide kernel default picked up by layer constructors. Starts as
/// kGemm. Not thread-safe against concurrent set_default_kernel — set it
/// once at startup (the CLI's --kernel flag), before building networks.
KernelKind default_kernel();
void set_default_kernel(KernelKind kind);

/// "reference" / "gemm" / "simd".
const char* kernel_name(KernelKind kind);

/// Parses "reference" / "gemm" / "simd"; throws std::invalid_argument
/// otherwise.
KernelKind parse_kernel_name(const std::string& name);

/// The kernel that will actually serve `requested` on this host: kSimd
/// degrades to kGemm when tensor::simd_supported() is false (kernels not
/// compiled in, or the running CPU lacks AVX2+FMA); everything else
/// resolves to itself. Pure query — layers need no special handling
/// (tensor::gemm_simd falls back internally), this exists so front-ends
/// can report the effective kernel.
KernelKind resolve_kernel(KernelKind requested);

/// Human-readable note when resolve_kernel(requested) != requested (e.g.
/// "kernel 'simd' unavailable on this host (no AVX2+FMA); using 'gemm'");
/// empty string when the request is served as-is.
std::string kernel_resolution_note(KernelKind requested);

}  // namespace omniboost::nn
