#pragma once
/// \file simd.hpp
/// Explicit-SIMD GEMM path (nn::KernelKind::kSimd): the same pack_a/pack_b
/// panel scheme as tensor::gemm, driven by hand-written FMA micro-tiles —
/// 6x16 AVX2 on x86-64, 4x8 NEON on aarch64 — instead of the portable
/// scalar 4x8 micro-kernel. The library itself is still compiled without
/// global -march flags: only the kernel translation unit (gemm_simd.cpp)
/// gets per-source -mavx2 -mfma, and gemm_simd() selects it at runtime via
/// cpuid, so one binary runs correctly on any host.
///
/// Dispatch rule: gemm_simd() runs the SIMD micro-kernels iff they were
/// compiled in AND the running CPU reports the ISA (simd_supported());
/// otherwise it silently degrades to the blocked scalar tensor::gemm — same
/// contract, same result class. Callers that want to *report* the
/// degradation (the CLI's --kernel flag, nn::resolve_kernel) ask
/// simd_supported()/simd_isa() instead of probing.
///
/// Determinism contract: like tensor::gemm, the summation order per output
/// element is fixed, so repeated calls are bit-identical run-to-run. The
/// order (and FMA contraction) differs from both the scalar blocked path
/// and the reference loops, so results match those within float rounding
/// (<= 1e-5 end-to-end on the estimator's value ranges — pinned by
/// tests/nn_kernel_test.cpp), not bitwise.

#include <cstddef>

namespace omniboost::tensor {

/// True iff the SIMD micro-kernels were compiled in AND the running CPU
/// supports the required ISA (AVX2+FMA on x86-64; NEON is baseline on
/// aarch64). Evaluated once per process.
bool simd_supported();

/// "avx2", "neon", or "none" (not compiled in, or the host CPU lacks the
/// ISA). Diagnostic surface for bench tables and the CLI.
const char* simd_isa();

/// C = alpha * op(A) * op(B) + beta * C — the tensor::gemm contract (see
/// gemm.hpp), served by the SIMD micro-kernels when simd_supported(), by
/// the blocked scalar tensor::gemm otherwise. The fallback is silent by
/// design: layer code may call this unconditionally for kSimd.
void gemm_simd(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
               std::size_t k, float alpha, const float* a, std::size_t lda,
               const float* b, std::size_t ldb, float beta, float* c,
               std::size_t ldc);

namespace detail {

/// True iff gemm_simd.cpp was built with an ISA section (compile-time
/// capability; simd_supported() adds the runtime cpuid check on top).
bool simd_kernels_compiled();

/// ISA name of the compiled kernel section ("avx2"/"neon"/"none").
const char* simd_kernel_isa();

/// The raw SIMD blocked driver. Preconditions (argument validation, the
/// m/n/k == 0 and alpha == 0 early-outs) are handled by gemm_simd() — this
/// must only be called when simd_supported() and m, n, k > 0, alpha != 0.
void gemm_simd_kernel(bool trans_a, bool trans_b, std::size_t m,
                      std::size_t n, std::size_t k, float alpha,
                      const float* a, std::size_t lda, const float* b,
                      std::size_t ldb, float beta, float* c, std::size_t ldc);

}  // namespace detail

}  // namespace omniboost::tensor
