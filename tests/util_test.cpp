// Unit tests for util: deterministic RNG, statistics, affine preprocessing,
// table/CSV emission.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using omniboost::util::Affine1D;
using omniboost::util::Rng;
using omniboost::util::RunningStats;
using omniboost::util::Table;

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a() == b();
  EXPECT_LT(equal, 4);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const auto x0 = a();
  const auto x1 = a();
  a.reseed(7);
  EXPECT_EQ(a(), x0);
  EXPECT_EQ(a(), x1);
}

TEST(Rng, UniformWithinUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 10'000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(4);
  for (int i = 0; i < 1'000; ++i) {
    const double u = r.uniform(-2.5, 7.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng r(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1'000; ++i) seen.insert(r.below(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, BelowZeroThrows) {
  Rng r(6);
  EXPECT_THROW(r.below(0), std::invalid_argument);
}

TEST(Rng, RangeInclusive) {
  Rng r(8);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.range(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_THROW(r.range(3, 2), std::invalid_argument);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng r(9);
  double sum = 0.0, sq = 0.0;
  constexpr int n = 40'000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, ChanceExtremes) {
  Rng r(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng r(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, PickThrowsOnEmpty) {
  Rng r(12);
  std::vector<int> empty;
  EXPECT_THROW(r.pick(empty), std::invalid_argument);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(13);
  Rng b = a.fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a() == b();
  EXPECT_LT(equal, 4);
}

TEST(RunningStats, MatchesDirectComputation) {
  RunningStats s;
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
  for (double x : xs) s.add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), omniboost::util::mean(xs));
  EXPECT_NEAR(s.stddev(), omniboost::util::stddev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 16.0);
}

TEST(RunningStats, MergeEqualsConcatenation) {
  RunningStats a, b, all;
  Rng r(14);
  for (int i = 0; i < 100; ++i) {
    const double x = r.normal(3.0, 2.0);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Stats, GeomeanOfPowers) {
  EXPECT_NEAR(omniboost::util::geomean({1.0, 4.0, 16.0}), 4.0, 1e-12);
  EXPECT_THROW(omniboost::util::geomean({1.0, -1.0}), std::invalid_argument);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(omniboost::util::percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(omniboost::util::percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(omniboost::util::percentile(v, 50), 25.0);
  EXPECT_THROW(omniboost::util::percentile({}, 50), std::invalid_argument);
  EXPECT_THROW(omniboost::util::percentile(v, 101), std::invalid_argument);
}

TEST(Affine, ApplyInvertRoundTrip) {
  const Affine1D t{3.0, 2.0};
  for (double y : {-5.0, 0.0, 1.0, 42.0}) {
    EXPECT_NEAR(t.invert(t.apply(y)), y, 1e-12);
  }
}

TEST(Affine, CompositionMatchesSequentialApplication) {
  const Affine1D first{1.0, 4.0};
  const Affine1D second{-0.5, 2.0};
  const Affine1D composed = first.then(second);
  for (double y : {-3.0, 0.0, 2.5, 10.0}) {
    EXPECT_NEAR(composed.apply(y), second.apply(first.apply(y)), 1e-12);
  }
}

TEST(Affine, StandardizerProducesZeroMeanUnitStd) {
  Rng r(15);
  std::vector<double> v;
  for (int i = 0; i < 1'000; ++i) v.push_back(r.normal(7.0, 3.0));
  const Affine1D t = omniboost::util::fit_standardizer(v);
  std::vector<double> z;
  for (double y : v) z.push_back(t.apply(y));
  EXPECT_NEAR(omniboost::util::mean(z), 0.0, 1e-9);
  EXPECT_NEAR(omniboost::util::stddev(z), 1.0, 1e-9);
}

TEST(Affine, MinMaxMapsToUnitInterval) {
  const std::vector<double> v{2.0, 6.0, 10.0};
  const Affine1D t = omniboost::util::fit_minmax(v);
  EXPECT_DOUBLE_EQ(t.apply(2.0), 0.0);
  EXPECT_DOUBLE_EQ(t.apply(10.0), 1.0);
  EXPECT_DOUBLE_EQ(t.apply(6.0), 0.5);
}

TEST(Table, AlignedOutputContainsCells) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row("beta", {2.5}, 1);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("2.5"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"k", "v"});
  t.add_row({"with,comma", "with\"quote"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_NE(os.str().find("\"with,comma\""), std::string::npos);
  EXPECT_NE(os.str().find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(omniboost::util::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(omniboost::util::fmt(2.0, 0), "2");
}

}  // namespace
