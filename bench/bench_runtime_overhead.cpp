/// \file bench_runtime_overhead.cpp
/// Regenerates the §V-B run-time comparison with google-benchmark: the
/// decision latency of each scheduler on a fixed 4-DNN mix, plus the one-off
/// costs the paper discusses (MOSAIC's 14k-point data collection, the GA's
/// per-mix on-board retraining, OmniBoost's 500 estimator queries).
///
/// Paper shape to reproduce: Baseline ~ 0; MOSAIC inference fast (~1 s on
/// the board) but with a large offline collection cost; GA minutes per mix
/// (board time); OmniBoost a constant 500-query search (~30 s on the board,
/// milliseconds here because the estimator is native C++ rather than a
/// Python stack).

// google-benchmark powers the micro-benchmark section only; the result
// tables (and their JSON exports) must not disappear on hosts without it.
#ifdef OMNIBOOST_HAVE_GBENCH
#include <benchmark/benchmark.h>
#endif

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "nn/kernel.hpp"
#include "nn/layers.hpp"
#include "tensor/simd.hpp"
#include "tensor/tensor.hpp"
#include "bench_common.hpp"

using namespace omniboost;

namespace {

bench::Context& ctx() {
  static bench::Context c;
  return c;
}

const workload::Workload& mix() {
  static const workload::Workload w{
      {models::ModelId::kVgg19, models::ModelId::kResNet50,
       models::ModelId::kInceptionV3, models::ModelId::kMobileNet}};
  return w;
}

#ifdef OMNIBOOST_HAVE_GBENCH

void BM_BaselineDecision(benchmark::State& state) {
  auto sched = sched::AllOnScheduler::gpu_baseline(ctx().zoo());
  for (auto _ : state) benchmark::DoNotOptimize(sched.schedule(mix()));
}
BENCHMARK(BM_BaselineDecision);

void BM_MosaicDecision(benchmark::State& state) {
  static sched::MosaicScheduler sched(ctx().zoo(), ctx().device());
  for (auto _ : state) benchmark::DoNotOptimize(sched.schedule(mix()));
}
BENCHMARK(BM_MosaicDecision)->Unit(benchmark::kMillisecond);

void BM_GaDecision(benchmark::State& state) {
  static sched::GaScheduler sched(ctx().zoo(), ctx().device());
  for (auto _ : state) benchmark::DoNotOptimize(sched.schedule(mix()));
}
BENCHMARK(BM_GaDecision)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_OmniBoostDecision(benchmark::State& state) {
  static core::OmniBoostScheduler sched(ctx().zoo(), ctx().embedding(),
                                        ctx().estimator());
  for (auto _ : state) benchmark::DoNotOptimize(sched.schedule(mix()));
}
BENCHMARK(BM_OmniBoostDecision)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_EstimatorQuery(benchmark::State& state) {
  auto est = ctx().estimator();
  const auto counts = mix().layer_counts(ctx().zoo());
  const auto input = ctx().embedding().masked_input(
      mix(), sim::Mapping::all_on(counts, device::ComponentId::kGpu));
  for (auto _ : state) benchmark::DoNotOptimize(est->predict_reward(input));
}
BENCHMARK(BM_EstimatorQuery)->Unit(benchmark::kMicrosecond);

void BM_EstimatorQueryBatch16(benchmark::State& state) {
  // 16 queries amortized over one batched forward pass; compare the
  // per-iteration time against 16x BM_EstimatorQuery.
  auto est = ctx().estimator();
  const auto counts = mix().layer_counts(ctx().zoo());
  std::vector<tensor::Tensor> inputs(
      16, ctx().embedding().masked_input(
              mix(), sim::Mapping::all_on(counts, device::ComponentId::kGpu)));
  for (auto _ : state) benchmark::DoNotOptimize(est->predict_rewards(inputs));
}
BENCHMARK(BM_EstimatorQueryBatch16)->Unit(benchmark::kMicrosecond);

void BM_BoardMeasurement(benchmark::State& state) {
  // One GA fitness evaluation = one steady-state board simulation.
  const auto nets = mix().resolve(ctx().zoo());
  const auto m = sim::Mapping::all_on(mix().layer_counts(ctx().zoo()),
                                      device::ComponentId::kGpu);
  for (auto _ : state)
    benchmark::DoNotOptimize(ctx().board().simulate(nets, m));
}
BENCHMARK(BM_BoardMeasurement)->Unit(benchmark::kMillisecond);

#endif  // OMNIBOOST_HAVE_GBENCH

}  // namespace

/// Wall-clock of \p fn over \p repeats runs: the minimum (the work is
/// deterministic, so the minimum is the run least disturbed by background
/// load) plus the run-to-run stddev for callers that want to publish the
/// load-variance signal (the column_stats block in the JSON summarizes
/// across *rows*, not runs).
struct TimedRuns {
  double min_s = std::numeric_limits<double>::infinity();
  double stddev_s = 0.0;
};

template <typename Fn>
TimedRuns timed_runs(std::size_t repeats, const Fn& fn) {
  TimedRuns out;
  util::RunningStats rs;
  for (std::size_t i = 0; i < repeats; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    rs.add(s);
    out.min_s = std::min(out.min_s, s);
  }
  out.stddev_s = rs.stddev();
  return out;
}

/// p-th percentile (nearest rank, p in [0, 1]) of a sample set.
double percentile_ms(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const auto idx = static_cast<std::size_t>(
      std::llround(p * static_cast<double>(samples.size() - 1)));
  return samples[std::min(idx, samples.size() - 1)];
}

/// One row of the compute-kernel table: a conv stage of the estimator CNN
/// timed under the reference, gemm and simd kernels at the production wave
/// width, with the max pairwise output deviation proving the lowerings
/// agree. Returns {reference ms, gemm ms, simd ms} so the caller can
/// publish an aggregate.
std::array<double, 3> add_kernel_row(util::Table& t, const char* label,
                                     nn::Module& ref, nn::Module& gemm,
                                     nn::Module& simd,
                                     const tensor::Tensor& x,
                                     std::size_t inner_reps,
                                     std::size_t repeats) {
  ref.set_kernel(nn::KernelKind::kReference);
  gemm.set_kernel(nn::KernelKind::kGemm);
  simd.set_kernel(nn::KernelKind::kSimd);
  const tensor::Tensor ya = ref.forward(x);
  const tensor::Tensor yb = gemm.forward(x);
  const tensor::Tensor yc = simd.forward(x);
  double max_delta = 0.0;
  for (std::size_t i = 0; i < ya.size(); ++i) {
    max_delta = std::max(
        max_delta, std::fabs(static_cast<double>(ya[i]) - yb[i]));
    max_delta = std::max(
        max_delta, std::fabs(static_cast<double>(yb[i]) - yc[i]));
  }

  const double scale = 1e3 / static_cast<double>(inner_reps);
  const TimedRuns ref_t = timed_runs(repeats, [&] {
    for (std::size_t i = 0; i < inner_reps; ++i) ref.forward(x);
  });
  const TimedRuns gemm_t = timed_runs(repeats, [&] {
    for (std::size_t i = 0; i < inner_reps; ++i) gemm.forward(x);
  });
  const TimedRuns simd_t = timed_runs(repeats, [&] {
    for (std::size_t i = 0; i < inner_reps; ++i) simd.forward(x);
  });
  const double ref_ms = scale * ref_t.min_s;
  const double gemm_ms = scale * gemm_t.min_s;
  const double simd_ms = scale * simd_t.min_s;
  t.add_row({label, std::to_string(x.extent(0)), util::fmt(ref_ms, 3),
             util::fmt(gemm_ms, 3), util::fmt(simd_ms, 3),
             util::fmt(ref_ms / gemm_ms, 2),
             util::fmt(gemm_ms / simd_ms, 2),
             util::fmt(max_delta * 1e6, 3)});
  return {ref_ms, gemm_ms, simd_ms};
}

/// Decision latency of one OmniBoost evaluate-path variant: the minimum
/// over \p repeats decisions at a fixed rollout budget (min, not mean — the
/// decision is deterministic, so the minimum is the run least disturbed by
/// background load).
void add_variant_row(util::Table& t, const char* label, std::size_t batch,
                     bool cache, std::size_t budget, std::size_t repeats,
                     double* scalar_ms) {
  core::OmniBoostConfig cfg;
  cfg.mcts.budget = budget;
  cfg.batch_size = batch;
  cfg.cache = cache;
  core::OmniBoostScheduler sched(ctx().zoo(), ctx().embedding(),
                                 ctx().estimator(), cfg);
  double seconds = std::numeric_limits<double>::infinity();
  core::ScheduleResult r;
  for (std::size_t i = 0; i < repeats; ++i) {
    r = sched.schedule(mix());
    seconds = std::min(seconds, r.decision_seconds);
  }
  const double ms = 1e3 * seconds;
  if (*scalar_ms == 0.0) *scalar_ms = ms;  // first row is the reference
  t.add_row({label, std::to_string(batch), cache ? "on" : "off",
             util::fmt(ms, 1), std::to_string(r.evaluations),
             std::to_string(r.cache_hits), util::fmt(*scalar_ms / ms, 2)});
}

int main(int argc, char** argv) {
  bench::banner("Run-time performance evaluation", "Section V-B", 7);

  // One-off cost accounting (the part google-benchmark cannot show).
  std::printf("training the throughput estimator (one-off, design time)...\n");
  ctx().train_estimator();

  sched::MosaicScheduler mosaic(ctx().zoo(), ctx().device());
  sched::GaScheduler ga(ctx().zoo(), ctx().device());
  core::OmniBoostScheduler omni(ctx().zoo(), ctx().embedding(),
                                ctx().estimator());
  const auto rg = ga.schedule(mix());
  const auto ro = omni.schedule(mix());

  // The "board seconds" column is plain numeric on every row so the table
  // keeps a column_stats summary in its JSON export (bench-JSON guard).
  util::Table t({"scheduler", "decision model", "one-off / per-mix cost",
                 "board seconds", "evaluator queries"});
  t.add_row({"Baseline", "none", "none", "0", "0"});
  t.add_row({"MOSAIC", "linear regression",
             "offline collection: " +
                 std::to_string(mosaic.training_samples()) + " samples, " +
                 util::fmt(mosaic.training_board_seconds() / 60.0, 1) +
                 " board-minutes",
             util::fmt(mosaic.training_board_seconds(), 1), "1 per DNN"});
  t.add_row({"GA", "on-board measurements",
             "per mix: " + util::fmt(rg.board_seconds / 60.0, 1) +
                 " board-minutes (paper: ~5 min)",
             util::fmt(rg.board_seconds, 1), std::to_string(rg.evaluations)});
  t.add_row({"OmniBoost", "CNN estimator",
             "500 estimator queries per mix (paper: ~30 s)", "0",
             std::to_string(ro.evaluations + ro.cache_hits)});
  bench::report("runtime_overhead", t);

  // Evaluate-path ablation: the same 500-rollout decision through the
  // scalar/sequential paper path versus the batched forward
  // (OmniBoostConfig::batch_size) and the evaluation memo
  // (OmniBoostConfig::cache). Equal rollout budget everywhere; the decision
  // differs only where wider waves legitimately explore differently.
  const std::size_t budget = bench::scaled(500, 40);
  const std::size_t repeats = bench::scaled(5, 1);
  std::printf("\nevaluate-path variants (budget %zu, min of %zu decisions):\n",
              budget, repeats);
  util::Table bt({"variant", "batch", "cache", "decision (ms)", "evaluations",
                  "cache hits", "speedup"});
  double scalar_ms = 0.0;
  add_variant_row(bt, "scalar (paper path)", 1, false, budget, repeats,
                  &scalar_ms);
  add_variant_row(bt, "scalar+cache", 1, true, budget, repeats, &scalar_ms);
  add_variant_row(bt, "batched", 16, false, budget, repeats, &scalar_ms);
  add_variant_row(bt, "batched+cache", 16, true, budget, repeats, &scalar_ms);
  bench::report("runtime_overhead_batching", bt);

  // Compute-kernel ablation: every conv stage of the estimator CNN, the
  // full batched CNN forward, and the end-to-end decision, each timed under
  // the bit-frozen reference loops, the im2col+GEMM lowering, and the
  // runtime-dispatched SIMD micro-kernels (nn::KernelKind). "max |delta|"
  // certifies equal results: the largest element-wise output difference
  // across the lowerings, in units of 1e-6.
  {
    const std::size_t m = ctx().embedding().models_dim();
    const std::size_t l = ctx().embedding().layers_dim();
    const std::size_t wave = 16;  // production expansion-wave width
    const std::size_t kernel_reps = bench::scaled(50, 5);
    const std::size_t kernel_repeats = bench::scaled(5, 2);
    std::printf("\ncompute kernels, reference vs gemm vs simd (isa: %s; "
                "batch %zu, min of %zu x %zu forwards):\n",
                tensor::simd_isa(), wave, kernel_repeats, kernel_reps);
    util::Table kt({"stage", "batch", "reference (ms)", "gemm (ms)",
                    "simd (ms)", "ref/gemm", "gemm/simd",
                    "max |delta| (1e-6)"});

    struct Stage {
      const char* label;
      std::size_t in_ch, out_ch, h, w;
    };
    const Stage stages[] = {
        {"conv 3->8 (stem)", 3, 8, m, l},
        {"conv 8->16", 8, 16, m / 2, l / 2},
        {"conv 16->16 (residual)", 16, 16, m / 4, l / 4},
        {"conv 16->24", 16, 24, m / 4, l / 4},
        {"conv 24->24 (residual)", 24, 24, m / 4, l / 4},
    };
    util::Rng rng(7);
    double conv_ref_ms = 0.0, conv_gemm_ms = 0.0, conv_simd_ms = 0.0;
    for (const Stage& s : stages) {
      util::Rng init_a(11), init_b(11), init_c(11);
      nn::Conv2d ref(s.in_ch, s.out_ch, 3, 1, 1);
      nn::Conv2d gemm(s.in_ch, s.out_ch, 3, 1, 1);
      nn::Conv2d simd(s.in_ch, s.out_ch, 3, 1, 1);
      ref.init(init_a);
      gemm.init(init_b);
      simd.init(init_c);
      tensor::Tensor x({wave, s.in_ch, s.h, s.w});
      for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
      const auto [r_ms, g_ms, s_ms] =
          add_kernel_row(kt, s.label, ref, gemm, simd, x, kernel_reps,
                         kernel_repeats);
      conv_ref_ms += r_ms;
      conv_gemm_ms += g_ms;
      conv_simd_ms += s_ms;
    }
    // The headline: all conv-forward work of one batched CNN traversal.
    kt.add_row({"conv forward total (5 stages)", std::to_string(wave),
                util::fmt(conv_ref_ms, 3), util::fmt(conv_gemm_ms, 3),
                util::fmt(conv_simd_ms, 3),
                util::fmt(conv_ref_ms / conv_gemm_ms, 2),
                util::fmt(conv_gemm_ms / conv_simd_ms, 2), "-"});

    // Full CNN forward: one batched reward query per kernel kind.
    {
      auto est = ctx().estimator();
      std::stringstream blob;
      est->save(blob);
      auto make_clone = [&blob](nn::KernelKind kind) {
        std::istringstream is(blob.str());
        auto clone = std::make_unique<core::ThroughputEstimator>(
            core::ThroughputEstimator::load(is));
        clone->set_kernel(kind);
        return clone;
      };
      const auto ref_est = make_clone(nn::KernelKind::kReference);
      const auto gemm_est = make_clone(nn::KernelKind::kGemm);
      const auto simd_est = make_clone(nn::KernelKind::kSimd);
      const auto counts = mix().layer_counts(ctx().zoo());
      const std::vector<tensor::Tensor> inputs(
          wave,
          ctx().embedding().masked_input(
              mix(), sim::Mapping::all_on(counts, device::ComponentId::kGpu)));
      const auto ra = ref_est->predict_rewards(inputs);
      const auto rb = gemm_est->predict_rewards(inputs);
      const auto rc = simd_est->predict_rewards(inputs);
      double max_delta = 0.0;
      for (std::size_t i = 0; i < ra.size(); ++i) {
        max_delta = std::max(max_delta, std::fabs(ra[i] - rb[i]));
        max_delta = std::max(max_delta, std::fabs(rb[i] - rc[i]));
      }
      const double scale = 1e3 / static_cast<double>(kernel_reps);
      const TimedRuns ref_t = timed_runs(kernel_repeats, [&] {
        for (std::size_t i = 0; i < kernel_reps; ++i)
          ref_est->predict_rewards(inputs);
      });
      const TimedRuns gemm_t = timed_runs(kernel_repeats, [&] {
        for (std::size_t i = 0; i < kernel_reps; ++i)
          gemm_est->predict_rewards(inputs);
      });
      const TimedRuns simd_t = timed_runs(kernel_repeats, [&] {
        for (std::size_t i = 0; i < kernel_reps; ++i)
          simd_est->predict_rewards(inputs);
      });
      kt.add_row({"estimator CNN forward", std::to_string(wave),
                  util::fmt(scale * ref_t.min_s, 3),
                  util::fmt(scale * gemm_t.min_s, 3),
                  util::fmt(scale * simd_t.min_s, 3),
                  util::fmt(ref_t.min_s / gemm_t.min_s, 2),
                  util::fmt(gemm_t.min_s / simd_t.min_s, 2),
                  util::fmt(max_delta * 1e6, 3)});
    }

    // End-to-end decision under each kernel (same budget as the batching
    // table; wave-width batches, cache on — the production configuration).
    {
      TimedRuns runs[3];
      double reward[3];
      int i = 0;
      for (const nn::KernelKind kind :
           {nn::KernelKind::kReference, nn::KernelKind::kGemm,
            nn::KernelKind::kSimd}) {
        core::OmniBoostConfig cfg;
        cfg.mcts.budget = budget;
        cfg.batch_size = 16;
        cfg.kernel = kind;
        core::OmniBoostScheduler sched(ctx().zoo(), ctx().embedding(),
                                       ctx().estimator(), cfg);
        core::ScheduleResult r;
        runs[i] = timed_runs(kernel_repeats,
                             [&] { r = sched.schedule(mix()); });
        reward[i] = r.expected_reward;
        ++i;
      }
      const double reward_delta =
          std::max(std::fabs(reward[0] - reward[1]),
                   std::fabs(reward[1] - reward[2]));
      kt.add_row({"decision (500 rollouts)", "16",
                  util::fmt(1e3 * runs[0].min_s, 1),
                  util::fmt(1e3 * runs[1].min_s, 1),
                  util::fmt(1e3 * runs[2].min_s, 1),
                  util::fmt(runs[0].min_s / runs[1].min_s, 2),
                  util::fmt(runs[1].min_s / runs[2].min_s, 2),
                  util::fmt(reward_delta * 1e6, 3)});
    }
    bench::report("runtime_overhead_kernels", kt);
  }

  // Warm-decision latency percentiles: repeated identical warm reschedules
  // (identity carried_from, no SLOs) per kernel kind — the steady-state
  // serving decision the ISSUE's sub-millisecond target is about. p50/p99
  // over the decision population, not min-of-repeats: tail latency is the
  // serving-relevant number.
  {
    const std::size_t warm_n = bench::scaled(24, 8);
    std::printf("\nwarm-decision latency percentiles (%zu decisions per "
                "kernel, budget %zu):\n",
                warm_n, budget);
    util::Table wt({"kernel", "decisions", "p50 (ms)", "p99 (ms)", "min (ms)",
                    "mean (ms)"});
    for (const nn::KernelKind kind :
         {nn::KernelKind::kReference, nn::KernelKind::kGemm,
          nn::KernelKind::kSimd}) {
      core::OmniBoostConfig cfg;
      cfg.mcts.budget = budget;
      cfg.batch_size = 16;
      cfg.kernel = kind;
      core::OmniBoostScheduler sched(ctx().zoo(), ctx().embedding(),
                                     ctx().estimator(), cfg);
      const core::ScheduleResult cold = sched.schedule(mix());
      core::ScheduleContext sctx;
      sctx.previous_workload = mix();
      sctx.carried_from = {0, 1, 2, 3};
      sim::Mapping prev = cold.mapping;
      std::vector<double> ms;
      ms.reserve(warm_n);
      double sum = 0.0;
      for (std::size_t i = 0; i < warm_n; ++i) {
        const core::ScheduleResult r = sched.reschedule(mix(), prev, sctx);
        ms.push_back(1e3 * r.decision_seconds);
        sum += ms.back();
        prev = r.mapping;
      }
      wt.add_row({nn::kernel_name(kind), std::to_string(warm_n),
                  util::fmt(percentile_ms(ms, 0.50), 3),
                  util::fmt(percentile_ms(ms, 0.99), 3),
                  util::fmt(*std::min_element(ms.begin(), ms.end()), 3),
                  util::fmt(sum / static_cast<double>(warm_n), 3)});
    }
    bench::report("runtime_overhead_warm_percentiles", wt);
  }

  // SLO-shaped warm decisions, replay memo on vs off: same scenario (every
  // stream under a generous SLO, DES board replays shaping each candidate),
  // counting executed DES replays vs memo hits. The memo must leave every
  // decision bit-identical — the "identical" column re-checks the contract
  // on this host's float environment.
  {
    const std::size_t slo_n = bench::scaled(12, 4);
    std::printf("\nSLO-shaped warm decisions, replay memo off vs on (%zu "
                "decisions each):\n",
                slo_n);
    struct SloRun {
      std::size_t des_replays = 0;
      std::size_t replay_hits = 0;
      std::vector<double> ms;
      std::vector<std::uint64_t> mapping_hashes;
      std::vector<double> rewards;
    };
    const auto run_variant = [&](bool memo_on) {
      core::OmniBoostConfig cfg;
      cfg.mcts.budget = budget;
      cfg.batch_size = 16;
      cfg.kernel = nn::KernelKind::kSimd;
      cfg.replay_memo = memo_on;
      core::OmniBoostScheduler sched(ctx().zoo(), ctx().embedding(),
                                     ctx().estimator(), cfg);
      const core::ScheduleResult cold = sched.schedule(mix());
      core::ScheduleContext sctx;
      sctx.previous_workload = mix();
      sctx.carried_from = {0, 1, 2, 3};
      sctx.slo_s = std::vector<double>(mix().size(), 0.5);
      sctx.board = &ctx().board();
      SloRun out;
      sim::Mapping prev = cold.mapping;
      for (std::size_t i = 0; i < slo_n; ++i) {
        const core::ScheduleResult r = sched.reschedule(mix(), prev, sctx);
        out.des_replays += r.des_replays;
        out.replay_hits += r.replay_hits;
        out.ms.push_back(1e3 * r.decision_seconds);
        out.mapping_hashes.push_back(r.mapping.hash());
        out.rewards.push_back(r.expected_reward);
        prev = r.mapping;
      }
      return out;
    };
    const SloRun off = run_variant(false);
    const SloRun on = run_variant(true);
    const bool identical = off.mapping_hashes == on.mapping_hashes &&
                           off.rewards == on.rewards;
    util::Table st({"replay memo", "decisions", "DES replays", "replay hits",
                    "replays/decision", "p50 (ms)", "p99 (ms)", "identical"});
    const auto add_slo_row = [&](const char* label, const SloRun& r,
                                 const char* ident) {
      st.add_row({label, std::to_string(slo_n),
                  std::to_string(r.des_replays),
                  std::to_string(r.replay_hits),
                  util::fmt(static_cast<double>(r.des_replays) /
                                static_cast<double>(slo_n),
                            1),
                  util::fmt(percentile_ms(r.ms, 0.50), 2),
                  util::fmt(percentile_ms(r.ms, 0.99), 2), ident});
    };
    add_slo_row("off", off, "baseline");
    add_slo_row("on", on, identical ? "yes" : "NO");
    bench::report("runtime_overhead_slo_replay", st);
  }

#ifdef OMNIBOOST_HAVE_GBENCH
  if (bench::smoke()) {
    std::printf("\n[smoke] skipping google-benchmark micro-benchmarks\n");
    return 0;
  }
  std::printf("\nmicro-benchmarks (decision latency on this machine):\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
#else
  (void)argc;
  (void)argv;
  std::printf("\n[info] built without google-benchmark; micro-benchmark "
              "section skipped\n");
#endif
  return 0;
}
