#include "sim/trace.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace omniboost::sim {

namespace {

/// Nearest-rank percentile of a sorted sample vector.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(std::max(1.0, std::ceil(q * n)));
  rank = std::min(rank, sorted.size());
  return sorted[rank - 1];
}

}  // namespace

LatencyStats LatencyStats::from_samples(std::vector<double> values) {
  LatencyStats s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.samples = values.size();
  s.min = values.front();
  s.max = values.back();
  s.mean = std::accumulate(values.begin(), values.end(), 0.0) /
           static_cast<double>(values.size());
  s.p50 = percentile(values, 0.50);
  s.p90 = percentile(values, 0.90);
  s.p99 = percentile(values, 0.99);
  return s;
}

bool breaks_slo(const ThroughputReport& report, const ExecutionTrace& trace,
                std::size_t dnn, double slo_s) {
  if (slo_s <= 0.0) return false;
  const LatencyStats& ls = trace.per_dnn_latency[dnn];
  return !report.feasible || ls.samples == 0 ||
         report.per_dnn_rate[dnn] <= 0.0 || ls.p99 > slo_s;
}

}  // namespace omniboost::sim
