#include "workload/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "util/require.hpp"

namespace omniboost::workload {

namespace {

/// Replays events [0, upto) and returns the present models in arrival
/// order, validating the scenario invariants along the way. When
/// \p slos_out is non-null it is filled with the per-stream SLOs (seconds,
/// 0 = none) each present stream arrived with, index-aligned with the
/// returned mix.
std::vector<models::ModelId> replay(const std::vector<ScenarioEvent>& events,
                                    std::size_t upto,
                                    std::vector<double>* slos_out = nullptr) {
  std::vector<models::ModelId> present;
  std::vector<double> slos;
  // Per-board health for the fault-event legality rules. Keyed by board
  // index (the scenario layer does not know the fleet size); 'F' = failed,
  // 'T' = throttled, absent = healthy.
  std::map<std::size_t, char> board_state;
  double prev_time = 0.0;
  for (std::size_t i = 0; i < upto; ++i) {
    const ScenarioEvent& e = events[i];
    if (!std::isfinite(e.time_s) || e.time_s < 0.0)
      throw std::invalid_argument(
          "Scenario: event time must be finite and >= 0");
    if (i > 0 && e.time_s < prev_time)
      throw std::invalid_argument("Scenario: event times must be non-decreasing");
    if (!(e.slo_ms >= 0.0) || !std::isfinite(e.slo_ms))
      throw std::invalid_argument("Scenario: SLO must be finite and >= 0 ms");
    prev_time = e.time_s;
    if (is_fault_event(e.kind)) {
      if (e.slo_ms != 0.0)
        throw std::invalid_argument(
            "Scenario: fault events cannot carry an SLO");
      const auto state = board_state.find(e.board);
      const bool failed = state != board_state.end() && state->second == 'F';
      const bool throttled =
          state != board_state.end() && state->second == 'T';
      switch (e.kind) {
        case ScenarioEventKind::kFailBoard:
          if (e.factor != 0.0)
            throw std::invalid_argument(
                "Scenario: only throttle events carry a factor");
          if (failed)
            throw std::invalid_argument(
                "Scenario: board " + std::to_string(e.board) +
                " fails while already failed");
          board_state[e.board] = 'F';
          break;
        case ScenarioEventKind::kThrottleBoard:
          if (!(e.factor > 0.0) || !(e.factor <= 1.0) ||
              !std::isfinite(e.factor))
            throw std::invalid_argument(
                "Scenario: throttle factor must be in (0, 1]");
          if (failed)
            throw std::invalid_argument(
                "Scenario: board " + std::to_string(e.board) +
                " throttles while failed");
          board_state[e.board] = 'T';
          break;
        default:  // kRecoverBoard
          if (e.factor != 0.0)
            throw std::invalid_argument(
                "Scenario: only throttle events carry a factor");
          if (!failed && !throttled)
            throw std::invalid_argument(
                "Scenario: board " + std::to_string(e.board) +
                " recovers while healthy");
          board_state.erase(e.board);
          break;
      }
      continue;  // fault events never touch the mix
    }
    if (e.board != 0 || e.factor != 0.0)
      throw std::invalid_argument(
          "Scenario: board/factor fields are fault-event-only");
    const auto it = std::find(present.begin(), present.end(), e.model);
    if (e.kind == ScenarioEventKind::kArrive) {
      if (it != present.end())
        throw std::invalid_argument(
            "Scenario: model '" + std::string(models::model_name(e.model)) +
            "' arrives while already present");
      present.push_back(e.model);
      slos.push_back(e.slo_ms / 1e3);
    } else {
      if (e.slo_ms != 0.0)
        throw std::invalid_argument(
            "Scenario: departures cannot carry an SLO (model '" +
            std::string(models::model_name(e.model)) + "')");
      if (it == present.end())
        throw std::invalid_argument(
            "Scenario: model '" + std::string(models::model_name(e.model)) +
            "' departs while absent");
      slos.erase(slos.begin() + (it - present.begin()));
      present.erase(it);
    }
  }
  if (slos_out != nullptr) *slos_out = std::move(slos);
  return present;
}

}  // namespace

Scenario::Scenario(std::vector<ScenarioEvent> events)
    : events_(std::move(events)) {
  replay(events_, events_.size());  // validation only
}

Workload Scenario::mix_after(std::size_t event_index) const {
  OB_REQUIRE(event_index < events_.size(),
             "Scenario::mix_after: event index out of range");
  return Workload{replay(events_, event_index + 1)};
}

std::vector<double> Scenario::slo_after(std::size_t event_index) const {
  OB_REQUIRE(event_index < events_.size(),
             "Scenario::slo_after: event index out of range");
  std::vector<double> slos;
  replay(events_, event_index + 1, &slos);
  return slos;
}

bool Scenario::has_slos() const {
  return std::any_of(events_.begin(), events_.end(),
                     [](const ScenarioEvent& e) { return e.slo_ms > 0.0; });
}

bool Scenario::has_faults() const {
  return std::any_of(events_.begin(), events_.end(), [](const ScenarioEvent& e) {
    return is_fault_event(e.kind);
  });
}

std::size_t Scenario::fault_board_span() const {
  std::size_t span = 0;
  for (const ScenarioEvent& e : events_)
    if (is_fault_event(e.kind)) span = std::max(span, e.board + 1);
  return span;
}

std::size_t Scenario::peak_concurrency() const {
  std::size_t present = 0, peak = 0;
  for (const ScenarioEvent& e : events_) {
    if (is_fault_event(e.kind)) continue;  // the mix is untouched
    if (e.kind == ScenarioEventKind::kArrive)
      peak = std::max(peak, ++present);
    else
      --present;
  }
  return peak;
}

std::string Scenario::describe() const {
  char buf[96];
  const double span = events_.empty() ? 0.0 : events_.back().time_s;
  std::snprintf(buf, sizeof(buf), "%zu events / %.1f s / peak %zu",
                events_.size(), span, peak_concurrency());
  return buf;
}

Scenario random_scenario(util::Rng& rng, const ScenarioConfig& config) {
  OB_REQUIRE(config.events >= 1, "random_scenario: need at least one event");
  OB_REQUIRE(config.min_concurrent >= 1,
             "random_scenario: min_concurrent must be >= 1");
  OB_REQUIRE(config.max_concurrent >= config.min_concurrent &&
                 config.max_concurrent <= models::kNumModels,
             "random_scenario: max_concurrent out of range");
  // A zero-width band freezes the mix once it fills: no model may depart
  // (floor) or arrive (ceiling), so only the filling arrivals are legal.
  OB_REQUIRE(config.max_concurrent > config.min_concurrent ||
                 config.events <= config.max_concurrent,
             "random_scenario: with min_concurrent == max_concurrent the mix "
             "freezes once full — request at most max_concurrent events or "
             "widen the band");
  OB_REQUIRE(config.slo_fraction >= 0.0 && config.slo_fraction <= 1.0,
             "random_scenario: slo_fraction must be a probability");
  OB_REQUIRE(config.slo_fraction == 0.0 ||
                 (config.slo_min_ms > 0.0 &&
                  config.slo_min_ms <= config.slo_max_ms &&
                  std::isfinite(config.slo_max_ms)),
             "random_scenario: SLO band must satisfy 0 < slo_min_ms <= "
             "slo_max_ms");

  std::vector<ScenarioEvent> events;
  events.reserve(config.events);
  std::vector<models::ModelId> present;
  std::vector<models::ModelId> absent(models::kAllModels.begin(),
                                      models::kAllModels.end());
  double t = 0.0;
  for (std::size_t i = 0; i < config.events; ++i) {
    // A departure is legal only above the concurrency floor; an arrival only
    // below the ceiling (the absent pool can never run dry below it).
    const bool can_depart = present.size() > config.min_concurrent;
    const bool can_arrive = present.size() < config.max_concurrent;
    OB_ENSURE(can_depart || can_arrive, "random_scenario: dead config");
    const bool depart = can_depart &&
                        (!can_arrive || rng.chance(config.depart_bias));

    ScenarioEvent e;
    e.time_s = t;
    if (depart) {
      const std::size_t pick = rng.below(present.size());
      e.kind = ScenarioEventKind::kDepart;
      e.model = present[pick];
      present.erase(present.begin() + static_cast<std::ptrdiff_t>(pick));
      absent.push_back(e.model);
    } else {
      const std::size_t pick = rng.below(absent.size());
      e.kind = ScenarioEventKind::kArrive;
      e.model = absent[pick];
      present.push_back(e.model);
      absent.erase(absent.begin() + static_cast<std::ptrdiff_t>(pick));
      // SLO band draw, guarded so slo_fraction == 0 consumes NO Rng values
      // and the pre-SLO draw sequence stays bit-identical.
      if (config.slo_fraction > 0.0 && rng.chance(config.slo_fraction))
        e.slo_ms = rng.uniform(config.slo_min_ms, config.slo_max_ms);
    }
    events.push_back(e);
    // Exponential gap to the next event (inverse-CDF; uniform() < 1 always).
    t += config.mean_interarrival_s * -std::log1p(-rng.uniform());
  }
  return Scenario(std::move(events));
}

ScenarioEvent parse_event_clause(const std::string& clause, double time_s) {
  const auto fail = [](const std::string& why) {
    throw std::invalid_argument(why);
  };
  std::istringstream ls(clause);
  ScenarioEvent e;
  e.time_s = time_s;
  std::string kind, model, word;
  if (!(ls >> kind >> model)) fail("missing event kind or model name");
  if (kind == "fail" || kind == "throttle" || kind == "recover") {
    e.kind = kind == "fail"       ? ScenarioEventKind::kFailBoard
             : kind == "throttle" ? ScenarioEventKind::kThrottleBoard
                                  : ScenarioEventKind::kRecoverBoard;
    if (model != "board")
      fail("expected 'board <index>' after '" + kind + "'");
    long long board = -1;
    if (!(ls >> board) || board < 0) fail("'board' needs an index >= 0");
    e.board = static_cast<std::size_t>(board);
    if (e.kind == ScenarioEventKind::kThrottleBoard &&
        (!(ls >> e.factor) || !(e.factor > 0.0) || !(e.factor <= 1.0) ||
         !std::isfinite(e.factor)))
      fail("'throttle' needs a factor in (0, 1]");
    if (ls >> word && word[0] != '#')
      fail("trailing tokens after fault clause");
    return e;
  }
  if (kind == "arrive")
    e.kind = ScenarioEventKind::kArrive;
  else if (kind == "depart")
    e.kind = ScenarioEventKind::kDepart;
  else
    fail("unknown event kind '" + kind + "'");
  if (!models::parse_model_name(model, e.model))
    fail("unknown model '" + model + "'");
  if (ls >> word && word[0] != '#') {
    if (word != "slo") fail("trailing tokens after model name");
    if (e.kind != ScenarioEventKind::kArrive)
      fail("'slo' is only legal on arrive events");
    if (!(ls >> e.slo_ms) || !(e.slo_ms > 0.0) || !std::isfinite(e.slo_ms))
      fail("'slo' needs a finite value > 0 (milliseconds)");
    if (ls >> word && word[0] != '#') fail("trailing tokens after SLO");
  }
  return e;
}

std::string serialize_event_clause(const ScenarioEvent& e) {
  char buf[64];
  std::string out;
  if (is_fault_event(e.kind)) {
    out += e.kind == ScenarioEventKind::kFailBoard       ? "fail board "
           : e.kind == ScenarioEventKind::kThrottleBoard ? "throttle board "
                                                         : "recover board ";
    out += std::to_string(e.board);
    if (e.kind == ScenarioEventKind::kThrottleBoard) {
      std::snprintf(buf, sizeof(buf), "%.17g", e.factor);
      out += ' ';
      out += buf;
    }
    return out;
  }
  out += e.kind == ScenarioEventKind::kArrive ? "arrive " : "depart ";
  out += std::string(models::model_name(e.model));
  if (e.slo_ms > 0.0) {
    std::snprintf(buf, sizeof(buf), "%.17g", e.slo_ms);
    out += " slo ";
    out += buf;
  }
  return out;
}

std::string serialize_scenario(const Scenario& scenario) {
  std::string out = "# omniboost scenario trace v1\n";
  char buf[64];
  for (const ScenarioEvent& e : scenario.events()) {
    std::snprintf(buf, sizeof(buf), "%.17g", e.time_s);
    out += "at ";
    out += buf;
    out += ' ';
    out += serialize_event_clause(e);
    out += '\n';
  }
  return out;
}

Scenario parse_scenario(std::istream& in) {
  std::vector<ScenarioEvent> events;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto fail = [&](const std::string& why) {
      throw std::invalid_argument("scenario trace line " +
                                  std::to_string(line_no) + ": " + why);
    };
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word) || word[0] == '#') continue;  // blank or comment
    if (word != "at") fail("expected 'at <time> <arrive|depart> <model>'");
    double time_s = 0.0;
    if (!(ls >> time_s)) fail("missing or malformed timestamp");
    std::string clause;
    std::getline(ls, clause);  // the event body; parsed by the shared grammar
    try {
      events.push_back(parse_event_clause(clause, time_s));
    } catch (const std::invalid_argument& err) {
      fail(err.what());
    }
  }
  return Scenario(std::move(events));
}

Scenario parse_scenario(const std::string& text) {
  std::istringstream in(text);
  return parse_scenario(in);
}

Scenario load_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open scenario trace: " + path);
  return parse_scenario(in);
}

void save_scenario_file(const Scenario& scenario, const std::string& path) {
  std::ofstream out(path);
  out << serialize_scenario(scenario);
  out.flush();
  if (!out)
    throw std::invalid_argument("cannot write scenario trace: " + path);
}

}  // namespace omniboost::workload
