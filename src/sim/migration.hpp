#pragma once
/// \file migration.hpp
/// Churn-cost model for dynamic rescheduling: on a real board, moving a
/// pipeline segment to a different computing component is not free — the
/// segment's weights must be re-uploaded over the shared-memory link and its
/// caches re-warmed before the stream serves frames again. This model turns
/// a mapping change (previous -> next, related by carried_from) into a
/// one-off per-stream stall that the DES charges as a delayed stream start
/// (DesSimulator's start-delay overloads), so mapping stability shows up in
/// *measured* throughput instead of only in the churn column.
///
/// Off by default (MigrationCostConfig::enabled == false): every existing
/// serving pin replays bit-identically unless a caller opts in.

#include <cstddef>
#include <vector>

#include "device/device.hpp"
#include "sim/mapping.hpp"
#include "sim/segments.hpp"

namespace omniboost::sim {

/// Knobs of the churn-cost model.
struct MigrationCostConfig {
  /// Master switch. False = migrations are free (the pre-model behaviour);
  /// callers must not charge any delay.
  bool enabled = false;
  /// Effective weight-upload bandwidth in GB/s; 0 = use the device's
  /// inter-component link bandwidth (DeviceSpec::link.bandwidth_gbps).
  double upload_gbps = 0.0;
  /// Fixed overhead per migrated segment: runtime graph re-instantiation,
  /// cache/TLB warm-up, map/unmap synchronization.
  double per_segment_overhead_s = 2e-3;
  /// Global scale on the total stall (bench sweeps live here: 0 would be
  /// free-but-accounted, 1 the calibrated cost, >1 a pessimistic board).
  double scale = 1.0;
};

/// What one mapping transition costs, per stream and in aggregate.
struct MigrationStats {
  /// One-off start delay per stream of the NEW workload (seconds). New
  /// streams (carried_from < 0) are 0: their weights load regardless of
  /// which scheduler decided, so the cost does not differentiate mappings.
  std::vector<double> stream_delay_s;
  std::size_t moved_layers = 0;      ///< layers whose component changed
  std::size_t migrated_segments = 0; ///< new-pipeline segments touched by a move
  double moved_weight_bytes = 0.0;   ///< parameter bytes re-uploaded
  double total_delay_s = 0.0;        ///< sum over streams
  double max_delay_s = 0.0;          ///< worst single-stream stall
};

/// Derives migration stalls from segment weight bytes via the device
/// profile. Stateless apart from the owned config + device copy; safe to
/// share across epochs.
class MigrationCostModel {
 public:
  explicit MigrationCostModel(const device::DeviceSpec& device,
                              MigrationCostConfig config = {});

  const MigrationCostConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled; }

  /// Costs the transition previous -> next for the NEW workload \p nets.
  /// \p carried_from maps each new stream to its index in the previous
  /// mapping (-1 = just arrived), exactly as in core::ScheduleContext.
  /// A surviving stream pays weight re-upload for every layer whose
  /// component moved plus a fixed overhead per new-pipeline segment that
  /// contains at least one moved layer. Computable with enabled() false
  /// (pure accounting); callers gate the *charging* on enabled().
  MigrationStats assess(const NetworkList& nets, const Mapping& previous,
                        const std::vector<std::ptrdiff_t>& carried_from,
                        const Mapping& next) const;

 private:
  device::DeviceSpec device_;  ///< owned copy (mirrors DesSimulator)
  MigrationCostConfig config_;
};

}  // namespace omniboost::sim
