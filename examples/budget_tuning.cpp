/// \file budget_tuning.cpp
/// The paper notes OmniBoost's "budgetary constraints can be adjusted for
/// any use-case scenario". This example shows the latency/quality dial in
/// action: an interactive deployment that needs sub-100ms decisions versus a
/// provisioning pass that can afford a deeper search, using the identical
/// trained estimator.

#include <cstdio>
#include <iostream>

#include "core/dataset.hpp"
#include "core/omniboost.hpp"
#include "nn/loss.hpp"
#include "sched/baseline.hpp"
#include "util/table.hpp"

using namespace omniboost;

int main() {
  models::ModelZoo zoo;
  const device::DeviceSpec spec = device::make_hikey970();
  const device::CostModel cost(spec);
  const core::EmbeddingTensor embedding(zoo, cost);
  const sim::DesSimulator board(spec);

  std::printf("training the throughput estimator (reduced campaign)...\n\n");
  core::DatasetConfig dc;
  dc.samples = 200;
  const core::SampleSet data =
      core::generate_dataset(zoo, embedding, board, dc);
  auto estimator = std::make_shared<core::ThroughputEstimator>(
      embedding.models_dim(), embedding.layers_dim());
  nn::L1Loss l1;
  nn::TrainConfig tc;
  tc.epochs = 50;
  estimator->fit(data, 40, l1, tc);

  const workload::Workload mix{
      {models::ModelId::kVgg19, models::ModelId::kResNet101,
       models::ModelId::kInceptionV4, models::ModelId::kAlexNet}};
  const auto nets = mix.resolve(zoo);
  auto baseline = sched::AllOnScheduler::gpu_baseline(zoo);
  const double tb =
      board.simulate(nets, baseline.schedule(mix).mapping).avg_throughput;

  std::printf("workload: %s | GPU-only T = %.3f inf/s\n\n",
              mix.describe().c_str(), tb);

  util::Table t({"profile", "MCTS budget", "decision (ms)", "T (inf/s)",
                 "vs GPU-only"});
  struct Profile {
    const char* name;
    std::size_t budget;
  };
  for (const Profile p : {Profile{"reactive (camera hot-swap)", 100},
                          Profile{"standard (paper default)", 500},
                          Profile{"provisioning (offline)", 2000}}) {
    core::OmniBoostConfig cfg;
    cfg.mcts.budget = p.budget;
    core::OmniBoostScheduler omni(zoo, embedding, estimator, cfg);
    const core::ScheduleResult r = omni.schedule(mix);
    const double tt = board.simulate(nets, r.mapping).avg_throughput;
    t.add_row({p.name, std::to_string(p.budget),
               util::fmt(r.decision_seconds * 1e3, 0), util::fmt(tt, 3),
               util::fmt(tt / tb, 2) + "x"});
  }
  t.print(std::cout);
  std::printf("\nthe same estimator serves every profile — no retraining "
              "per workload, unlike the GA comparison point\n");
  return 0;
}
