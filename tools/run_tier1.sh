#!/usr/bin/env sh
# Tier-1 verify: configure + build + ctest, fail-fast.
# CI and humans run this identical path; it is the scripted form of
#   cmake -B build -S . && cmake --build build -j && cd build && ctest --output-on-failure -j
# Run from anywhere; the repo root is derived from this script's location.
#
# Options:
#   --bench-smoke  After ctest, build every bench driver and run each one
#                  with OMNIBOOST_BENCH_SMOKE=1 (tiny campaigns, shared
#                  smoke-only estimator cache, JSON export into
#                  <build>/bench-smoke/). Catches bench bit-rot in tier-1
#                  instead of at the next real experiment run. Every driver
#                  runs even after a failure (all failures are reported at
#                  once) and ANY failure fails the script; the emitted
#                  BENCH_*.json set is then validated by
#                  tools/check_bench_json.py.
#   --require-simd Implies nothing extra at build time, but after the bench
#                  JSON guard asserts BENCH_runtime_overhead_kernels.json
#                  carries a populated "simd (ms)" column (the kernels table
#                  must include the runtime-dispatched SIMD path). Use on
#                  hosts known to matter for the kernels comparison; without
#                  the flag a bench that silently dropped the simd column
#                  would still pass. Requires --bench-smoke.
#
# Environment:
#   OMNIBOOST_BUILD_DIR    build directory (default <repo>/build)
#   OMNIBOOST_JOBS         parallel build/test jobs (default nproc)
#   OMNIBOOST_CMAKE_FLAGS  extra configure flags, word-split on purpose —
#                          e.g. "-DOMNIBOOST_SANITIZE=ON -DOMNIBOOST_WERROR=ON"
#                          (how the CI matrix selects its flavors)
set -eu

bench_smoke=0
require_simd=0
for arg in "$@"; do
  case "$arg" in
    --bench-smoke) bench_smoke=1 ;;
    --require-simd) require_simd=1 ;;
    *) echo "run_tier1.sh: unknown argument: $arg" >&2; exit 2 ;;
  esac
done
if [ "$require_simd" -eq 1 ] && [ "$bench_smoke" -eq 0 ]; then
  echo "run_tier1.sh: --require-simd requires --bench-smoke" >&2
  exit 2
fi

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="${OMNIBOOST_BUILD_DIR:-$root/build}"
jobs="${OMNIBOOST_JOBS:-$(nproc 2>/dev/null || echo 2)}"

echo "== layering lint =="
sh "$root/tools/check_layering.sh"

echo "== configure =="
# Unquoted on purpose: OMNIBOOST_CMAKE_FLAGS is a word-split flag list.
# shellcheck disable=SC2086
cmake -B "$build_dir" -S "$root" ${OMNIBOOST_CMAKE_FLAGS:-}

echo "== build ($jobs jobs) =="
cmake --build "$build_dir" -j "$jobs"

echo "== ctest =="
(cd "$build_dir" && ctest --output-on-failure -j "$jobs")

# The property/fuzz suites are cheap and catch the widest class of
# regressions; re-running the lane standalone keeps a crisp signal (a
# property failure is reported as its own tier-1 step, not buried in the
# full matrix) and exercises the ctest label wiring itself.
echo "== property lane =="
(cd "$build_dir" && ctest --output-on-failure --label-regex property -j "$jobs")

# Chaos lane: randomized fault scenarios against a fleet (failover, shedding,
# throttle refresh, recovery rebalance) asserting stream conservation and
# byte-identical reruns. Standalone for the same crisp-signal reason, and so
# the sanitizer matrix flavors visibly exercise the fault paths.
echo "== chaos lane =="
(cd "$build_dir" && ctest --output-on-failure --label-regex chaos -j "$jobs")

# Daemon smoke: boot the live serving daemon on an ephemeral loopback port at
# x100 wall-clock pacing, drive it with the client (arrive/fail/depart), save
# the recorded trace, shut down, then replay the trace offline and assert the
# daemon's `conservation:` accounting line reproduces verbatim. This is the
# shell-level double of tests/daemon_test.cpp: it additionally pins the CLI
# surface itself (flag names, banner format, client exit codes).
if [ -x "$build_dir/omniboost_cli" ]; then
  echo "== daemon smoke =="
  smoke_out="$build_dir/daemon-smoke"
  mkdir -p "$smoke_out"
  "$build_dir/omniboost_cli" serve --listen 0 --boards 2 --scheduler greedy \
    --time-scale 100 > "$smoke_out/daemon.log" 2>&1 &
  daemon_pid=$!
  port=""
  tries=0
  while [ -z "$port" ] && [ "$tries" -lt 100 ]; do
    port=$(sed -n 's/^listening on //p' "$smoke_out/daemon.log")
    [ -n "$port" ] || { tries=$((tries + 1)); sleep 0.1; }
  done
  if [ -z "$port" ]; then
    echo "run_tier1.sh: daemon never printed its port" >&2
    kill "$daemon_pid" 2>/dev/null || true
    exit 1
  fi
  cli() { "$build_dir/omniboost_cli" client "localhost:$port" "$@"; }
  cli arrive MobileNet slo 100
  cli arrive AlexNet
  cli fail board 0
  cli depart MobileNet
  cli status > "$smoke_out/status.txt"
  cli save-trace "$smoke_out/live.trace"
  cli shutdown
  wait "$daemon_pid"
  live=$(grep '^conservation:' "$smoke_out/status.txt")
  "$build_dir/omniboost_cli" serve --scenario "$smoke_out/live.trace" \
    --boards 2 --scheduler greedy > "$smoke_out/replay.txt" 2>&1
  offline=$(grep '^conservation:' "$smoke_out/replay.txt")
  if [ "$live" != "$offline" ]; then
    echo "run_tier1.sh: daemon/offline conservation mismatch" >&2
    echo "  live:    $live" >&2
    echo "  offline: $offline" >&2
    exit 1
  fi
  echo "daemon smoke: $live"
fi

if [ "$bench_smoke" -eq 1 ]; then
  echo "== bench smoke =="
  cmake --build "$build_dir" -j "$jobs" --target bench_all
  smoke_dir="$build_dir/bench-smoke"
  mkdir -p "$smoke_dir"
  OMNIBOOST_BENCH_SMOKE=1
  OMNIBOOST_ESTIMATOR_CACHE="$smoke_dir/estimator.bin"
  OMNIBOOST_BENCH_JSON_DIR="$smoke_dir"
  export OMNIBOOST_BENCH_SMOKE OMNIBOOST_ESTIMATOR_CACHE OMNIBOOST_BENCH_JSON_DIR
  # Run EVERY driver even after a failure (one broken bench must not hide
  # another), then propagate a single non-zero exit for the whole loop.
  smoke_failures=""
  for bench in "$build_dir"/bench_*; do
    [ -f "$bench" ] && [ -x "$bench" ] || continue
    name=$(basename "$bench")
    printf -- '-- %s ... ' "$name"
    if "$bench" > "$smoke_dir/$name.log" 2>&1; then
      echo "ok"
    else
      echo "FAILED"
      echo "run_tier1.sh: bench smoke failed: $name" >&2
      echo "--- last 30 log lines ($smoke_dir/$name.log) ---" >&2
      tail -n 30 "$smoke_dir/$name.log" >&2
      smoke_failures="$smoke_failures $name"
    fi
  done
  if [ -n "$smoke_failures" ]; then
    echo "run_tier1.sh: bench smoke FAILED:$smoke_failures" >&2
    exit 1
  fi

  echo "== bench JSON guard =="
  if command -v python3 > /dev/null 2>&1; then
    python3 "$root/tools/check_bench_json.py" "$smoke_dir"
    if [ "$require_simd" -eq 1 ]; then
      # The kernels table must carry the SIMD column with real timings in
      # every row (a host without the ISA still produces numbers — the path
      # silently degrades to gemm — so an absent/empty column means the
      # bench driver itself regressed, not the machine).
      python3 - "$smoke_dir/BENCH_runtime_overhead_kernels.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
if "simd (ms)" not in doc["columns"]:
    sys.exit("require-simd: no 'simd (ms)' column in the kernels table")
bad = [r for r in doc["rows"] if not str(r.get("simd (ms)", "")).strip()]
if bad:
    sys.exit(f"require-simd: {len(bad)} kernels row(s) have an empty simd entry")
print(f"require-simd: OK ({len(doc['rows'])} rows with simd timings)")
PYEOF
    fi
  else
    # CI always has python3; only a bare local box lands here.
    echo "run_tier1.sh: WARNING: python3 not found, skipping the" \
         "BENCH_*.json artifact guard" >&2
    if [ "$require_simd" -eq 1 ]; then
      echo "run_tier1.sh: --require-simd needs python3" >&2
      exit 1
    fi
  fi
  echo "== bench smoke PASS =="
fi

echo "== tier-1 PASS =="
