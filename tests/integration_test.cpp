// End-to-end integration: profile -> dataset -> train -> schedule ->
// simulate, exercising the full OmniBoost pipeline on reduced budgets.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/dataset.hpp"
#include "core/omniboost.hpp"
#include "nn/kernel.hpp"
#include "nn/loss.hpp"
#include "sched/baseline.hpp"
#include "sim/analytic.hpp"
#include "workload/generator.hpp"

namespace {

using namespace omniboost;
using core::DatasetConfig;
using core::EmbeddingTensor;
using core::OmniBoostConfig;
using core::OmniBoostScheduler;
using core::ThroughputEstimator;
using models::ModelId;
using models::ModelZoo;
using workload::Workload;

/// Shared fixture: one zoo, board, embedding and lightly-trained estimator
/// for all integration tests (training once keeps the suite fast).
class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // This suite pins the *paper campaign*: a reduced but seed-exact replay
    // of the sequential design-time pipeline and search. That campaign is
    // defined by the bit-frozen reference kernels — training is chaotic, so
    // even float-rounding-level kernel differences walk a weak 120-sample
    // model to a different (not worse, just different) optimum and flip
    // individual decisions. Kernel-variant coverage (gemm parity, both-kind
    // gradcheck, end-to-end tolerance) lives in tests/nn_kernel_test.cpp.
    nn::set_default_kernel(nn::KernelKind::kReference);
    zoo_ = new ModelZoo();
    device_ = new device::DeviceSpec(device::make_hikey970());
    cost_ = new device::CostModel(*device_);
    embedding_ = new EmbeddingTensor(*zoo_, *cost_);
    board_ = new sim::DesSimulator(*device_);

    DatasetConfig dc;
    dc.samples = 120;  // reduced design-time campaign for test speed
    dc.seed = 42;
    const core::SampleSet data =
        core::generate_dataset(*zoo_, *embedding_, *board_, dc);

    auto est = std::make_shared<ThroughputEstimator>(
        embedding_->models_dim(), embedding_->layers_dim());
    nn::L1Loss l1;
    nn::TrainConfig tc;
    tc.epochs = 30;
    est->fit(data, 24, l1, tc);
    estimator_ = new std::shared_ptr<const ThroughputEstimator>(est);
  }

  static void TearDownTestSuite() {
    delete estimator_;
    delete board_;
    delete embedding_;
    delete cost_;
    delete device_;
    delete zoo_;
  }

  static ModelZoo* zoo_;
  static device::DeviceSpec* device_;
  static device::CostModel* cost_;
  static EmbeddingTensor* embedding_;
  static sim::DesSimulator* board_;
  static std::shared_ptr<const ThroughputEstimator>* estimator_;
};

ModelZoo* IntegrationTest::zoo_ = nullptr;
device::DeviceSpec* IntegrationTest::device_ = nullptr;
device::CostModel* IntegrationTest::cost_ = nullptr;
EmbeddingTensor* IntegrationTest::embedding_ = nullptr;
sim::DesSimulator* IntegrationTest::board_ = nullptr;
std::shared_ptr<const ThroughputEstimator>* IntegrationTest::estimator_ =
    nullptr;

TEST_F(IntegrationTest, DatasetGenerationYieldsFeasibleMeasuredSamples) {
  DatasetConfig dc;
  dc.samples = 20;
  dc.seed = 7;
  const core::SampleSet data =
      core::generate_dataset(*zoo_, *embedding_, *board_, dc);
  ASSERT_EQ(data.size(), 20u);
  for (const auto& t : data.targets) {
    const double sum = t[0] + t[1] + t[2];
    EXPECT_GT(sum, 0.0);
    EXPECT_LT(sum, 500.0);
  }
  for (const auto& x : data.inputs) {
    EXPECT_EQ(x.shape(),
              (tensor::Shape{3, embedding_->models_dim(),
                             embedding_->layers_dim()}));
  }
}

TEST_F(IntegrationTest, DatasetIsDeterministicGivenSeed) {
  DatasetConfig dc;
  dc.samples = 10;
  dc.seed = 99;
  const auto a = core::generate_dataset(*zoo_, *embedding_, *board_, dc);
  const auto b = core::generate_dataset(*zoo_, *embedding_, *board_, dc);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.inputs[i], b.inputs[i]);
    EXPECT_EQ(a.targets[i], b.targets[i]);
  }
}

TEST_F(IntegrationTest, OmniBoostProducesValidMappings) {
  OmniBoostConfig cfg;
  cfg.mcts.budget = 120;
  OmniBoostScheduler omni(*zoo_, *embedding_, *estimator_, cfg);
  const Workload w{{ModelId::kVgg16, ModelId::kMobileNet,
                    ModelId::kResNet34}};
  const auto r = omni.schedule(w);
  EXPECT_EQ(r.mapping.num_dnns(), 3u);
  EXPECT_LE(r.mapping.max_stages(), 3u);
  EXPECT_EQ(r.evaluations + r.cache_hits, 120u);
  const auto counts = w.layer_counts(*zoo_);
  for (std::size_t d = 0; d < 3; ++d)
    EXPECT_EQ(r.mapping.assignment(d).size(), counts[d]);
  // The mapping must be executable on the simulated board.
  const auto rep = board_->simulate(w.resolve(*zoo_), r.mapping);
  EXPECT_TRUE(rep.feasible);
  EXPECT_GT(rep.avg_throughput, 0.0);
}

TEST_F(IntegrationTest, OmniBoostBeatsGpuBaselineOnHeavyMix) {
  // The fixture's estimator is deliberately weak (120-sample campaign, for
  // suite speed), so a single-seed decision is noisy; take the best of
  // three restart seeds — the cheap hedge a deployment with a weak
  // estimator would use. The full-campaign claim lives in
  // bench_fig5_throughput.
  auto base = sched::AllOnScheduler::gpu_baseline(*zoo_);
  const Workload w{{ModelId::kVgg19, ModelId::kResNet101,
                    ModelId::kInceptionV4, ModelId::kVgg16}};
  const auto nets = w.resolve(*zoo_);
  double to = 0.0;
  for (const std::uint64_t seed : {3u, 5u, 7u}) {
    OmniBoostConfig cfg;
    cfg.mcts.budget = 400;
    cfg.mcts.seed = seed;
    OmniBoostScheduler omni(*zoo_, *embedding_, *estimator_, cfg);
    to = std::max(
        to, board_->simulate(nets, omni.schedule(w).mapping).avg_throughput);
  }
  const double tb =
      board_->simulate(nets, base.schedule(w).mapping).avg_throughput;
  EXPECT_GT(to, tb);
}

TEST_F(IntegrationTest, SchedulerIsDeterministicGivenSeeds) {
  OmniBoostConfig cfg;
  cfg.mcts.budget = 60;
  cfg.mcts.seed = 11;
  OmniBoostScheduler a(*zoo_, *embedding_, *estimator_, cfg);
  OmniBoostScheduler b(*zoo_, *embedding_, *estimator_, cfg);
  const Workload w{{ModelId::kAlexNet, ModelId::kSqueezeNet}};
  EXPECT_EQ(a.schedule(w).mapping, b.schedule(w).mapping);
}

TEST_F(IntegrationTest, UntrainedEstimatorRejected) {
  auto raw = std::make_shared<ThroughputEstimator>(
      embedding_->models_dim(), embedding_->layers_dim());
  EXPECT_THROW(
      OmniBoostScheduler(*zoo_, *embedding_, raw, {}),
      std::invalid_argument);
}

TEST_F(IntegrationTest, MctsSchedulerWithAnalyticOracle) {
  // The ablation configuration: identical MCTS driven by the analytic model.
  const Workload w{{ModelId::kVgg19, ModelId::kResNet101,
                    ModelId::kInceptionV4, ModelId::kMobileNet}};
  const auto nets = w.resolve(*zoo_);
  sim::AnalyticModel oracle(*device_);
  core::MctsConfig mc;
  mc.budget = 600;
  mc.seed = 4;
  core::MctsScheduler sched(
      "MCTS+oracle", *zoo_,
      [&](const sim::Mapping& m) {
        return oracle.evaluate(nets, m).avg_throughput;
      },
      mc);
  auto base = sched::AllOnScheduler::gpu_baseline(*zoo_);
  const double ts =
      board_->simulate(nets, sched.schedule(w).mapping).avg_throughput;
  const double tb =
      board_->simulate(nets, base.schedule(w).mapping).avg_throughput;
  EXPECT_GT(ts, tb);
}

TEST_F(IntegrationTest, FullWorkloadSizesOneToFive) {
  // Every mix size the paper evaluates schedules and simulates cleanly.
  util::Rng rng(21);
  OmniBoostConfig cfg;
  cfg.mcts.budget = 50;
  OmniBoostScheduler omni(*zoo_, *embedding_, *estimator_, cfg);
  for (std::size_t n = 1; n <= 5; ++n) {
    const Workload w = workload::random_mix(rng, n);
    const auto r = omni.schedule(w);
    const auto rep = board_->simulate(w.resolve(*zoo_), r.mapping);
    EXPECT_TRUE(rep.feasible) << w.describe();
    EXPECT_GT(rep.avg_throughput, 0.0) << w.describe();
  }
}

}  // namespace
