// The tool-support utilities: JSON emission, command-line parsing, and
// model-name parsing.

#include <gtest/gtest.h>

#include "models/model_id.hpp"
#include "util/args.hpp"
#include "util/json.hpp"

namespace {

using namespace omniboost;
using util::ArgParser;
using util::Json;

// --- Json -------------------------------------------------------------------

TEST(Json, Scalars) {
  EXPECT_EQ(Json::null().dump(), "null");
  EXPECT_EQ(Json::boolean(true).dump(), "true");
  EXPECT_EQ(Json::boolean(false).dump(), "false");
  EXPECT_EQ(Json::number(42.0).dump(), "42");
  EXPECT_EQ(Json::number(2.5).dump(), "2.5");
  EXPECT_EQ(Json::string("hi").dump(), "\"hi\"");
}

TEST(Json, NonFiniteNumbersRejected) {
  EXPECT_THROW(Json::number(std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW(Json::number(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
}

TEST(Json, Escaping) {
  EXPECT_EQ(Json::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(Json::escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(Json::escape("tab\there"), "tab\\there");
  EXPECT_EQ(Json::escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(Json::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, CompactContainers) {
  Json arr = Json::array();
  arr.push_back(Json::number(1.0));
  arr.push_back(Json::string("two"));
  EXPECT_EQ(arr.dump(), "[1,\"two\"]");

  Json obj = Json::object();
  obj.set("a", Json::number(1.0));
  obj.set("b", Json::boolean(false));
  EXPECT_EQ(obj.dump(), "{\"a\":1,\"b\":false}");
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json::array().dump(), "[]");
  EXPECT_EQ(Json::object().dump(2), "{}");
}

TEST(Json, KeyOverwriteKeepsPosition) {
  Json obj = Json::object();
  obj.set("x", Json::number(1.0));
  obj.set("y", Json::number(2.0));
  obj.set("x", Json::number(9.0));
  EXPECT_EQ(obj.dump(), "{\"x\":9,\"y\":2}");
  EXPECT_EQ(obj.size(), 2u);
}

TEST(Json, PrettyPrintIndents) {
  Json obj = Json::object();
  obj.set("k", Json::number(1.0));
  EXPECT_EQ(obj.dump(2), "{\n  \"k\": 1\n}");
}

TEST(Json, TypeMisuseThrows) {
  Json n = Json::number(3.0);
  EXPECT_THROW(n.push_back(Json::null()), std::logic_error);
  EXPECT_THROW(n.set("k", Json::null()), std::logic_error);
  EXPECT_THROW(n.size(), std::logic_error);
}

TEST(Json, NestedStructureRoundTrips) {
  Json root = Json::object();
  Json inner = Json::array();
  Json leaf = Json::object();
  leaf.set("name", Json::string("GPU"));
  leaf.set("util", Json::number(0.97));
  inner.push_back(std::move(leaf));
  root.set("components", std::move(inner));
  EXPECT_EQ(root.dump(),
            "{\"components\":[{\"name\":\"GPU\",\"util\":0.96999999999999997}]}");
}

// --- ArgParser ----------------------------------------------------------------

ArgParser make_parser() {
  ArgParser p("tool", "test parser");
  p.option("mix", "the mix")
      .option("budget", "search budget", "500")
      .flag("json", "json output");
  return p;
}

bool parse(ArgParser& p, std::vector<const char*> argv) {
  argv.insert(argv.begin(), "tool");
  return p.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, ValuesAndDefaults) {
  ArgParser p = make_parser();
  ASSERT_TRUE(parse(p, {"--mix", "a,b"}));
  EXPECT_EQ(p.get("mix"), "a,b");
  EXPECT_EQ(p.get_int("budget"), 500);  // default
  EXPECT_FALSE(p.get_flag("json"));
}

TEST(ArgParser, EqualsSyntax) {
  ArgParser p = make_parser();
  ASSERT_TRUE(parse(p, {"--mix=x", "--budget=7"}));
  EXPECT_EQ(p.get("mix"), "x");
  EXPECT_EQ(p.get_int("budget"), 7);
}

TEST(ArgParser, FlagsAndRepeatsLastWins) {
  ArgParser p = make_parser();
  ASSERT_TRUE(parse(p, {"--mix", "a", "--json", "--mix", "b"}));
  EXPECT_TRUE(p.get_flag("json"));
  EXPECT_EQ(p.get("mix"), "b");
}

TEST(ArgParser, ErrorsAreInvalidArgument) {
  {
    ArgParser p = make_parser();
    EXPECT_THROW(parse(p, {"--unknown", "1"}), std::invalid_argument);
  }
  {
    ArgParser p = make_parser();
    EXPECT_THROW(parse(p, {"--mix"}), std::invalid_argument);  // missing value
  }
  {
    ArgParser p = make_parser();
    EXPECT_THROW(parse(p, {"positional"}), std::invalid_argument);
  }
  {
    ArgParser p = make_parser();
    EXPECT_THROW(parse(p, {"--json=true"}), std::invalid_argument);
  }
}

TEST(ArgParser, MissingRequiredThrowsAtAccess) {
  ArgParser p = make_parser();
  ASSERT_TRUE(parse(p, {}));
  EXPECT_THROW(p.get("mix"), std::invalid_argument);
}

TEST(ArgParser, TypedAccessorsValidate) {
  ArgParser p = make_parser();
  ASSERT_TRUE(parse(p, {"--mix", "abc", "--budget", "12x"}));
  EXPECT_THROW(p.get_int("budget"), std::invalid_argument);
  EXPECT_THROW(p.get_double("budget"), std::invalid_argument);
}

TEST(ArgParser, HelpShortCircuits) {
  ArgParser p = make_parser();
  testing::internal::CaptureStdout();
  const bool proceed = parse(p, {"--help"});
  const std::string help = testing::internal::GetCapturedStdout();
  EXPECT_FALSE(proceed);
  EXPECT_NE(help.find("--mix"), std::string::npos);
  EXPECT_NE(help.find("default: 500"), std::string::npos);
}

TEST(ArgParser, UndeclaredAccessIsLogicError) {
  ArgParser p = make_parser();
  ASSERT_TRUE(parse(p, {}));
  EXPECT_THROW(p.get("nope"), std::logic_error);
  EXPECT_THROW(p.get_flag("mix"), std::logic_error);  // not a flag
}

// --- parse_model_name ---------------------------------------------------------

TEST(ParseModelName, RoundTripsAllCanonicalNames) {
  for (const models::ModelId id : models::kAllModels) {
    models::ModelId out;
    ASSERT_TRUE(models::parse_model_name(models::model_name(id), out))
        << models::model_name(id);
    EXPECT_EQ(out, id);
  }
}

TEST(ParseModelName, ToleratesCaseAndDashes) {
  models::ModelId out;
  EXPECT_TRUE(models::parse_model_name("resnet50", out));
  EXPECT_EQ(out, models::ModelId::kResNet50);
  EXPECT_TRUE(models::parse_model_name("VGG19", out));
  EXPECT_EQ(out, models::ModelId::kVgg19);
  EXPECT_TRUE(models::parse_model_name("inception_v4", out));
  EXPECT_EQ(out, models::ModelId::kInceptionV4);
  EXPECT_TRUE(models::parse_model_name("ALEXNET", out));
  EXPECT_EQ(out, models::ModelId::kAlexNet);
}

TEST(ParseModelName, RejectsUnknown) {
  models::ModelId out;
  EXPECT_FALSE(models::parse_model_name("resnet18", out));
  EXPECT_FALSE(models::parse_model_name("", out));
  EXPECT_FALSE(models::parse_model_name("vgg", out));
}

}  // namespace
