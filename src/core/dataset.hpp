#pragma once
/// \file dataset.hpp
/// Design-time dataset generation (paper §V): random mixes of 1-5 DNNs with
/// random stage-limited mappings are executed on the (simulated) board, and
/// each (masked embedding tensor, measured per-component throughput) pair
/// becomes one estimator training sample.

#include <cstdint>

#include "core/embedding.hpp"
#include "core/estimator.hpp"
#include "sim/des.hpp"

namespace omniboost::core {

/// Dataset generation controls (paper defaults).
struct DatasetConfig {
  std::size_t samples = 500;
  std::size_t min_mix = 1;
  std::size_t max_mix = 5;
  std::size_t stage_limit = 3;
  std::uint64_t seed = 42;
  /// Design-time parallelism.
  ///
  ///  * 0 (default) — the original strictly sequential pipeline: every draw
  ///    comes from ONE rng stream, infeasible workloads are redrawn from
  ///    that same stream. This order is bit-frozen across releases; the
  ///    paper campaigns (and the cached estimators trained from them) are
  ///    reproducible from the seed only on this path.
  ///  * >= 1 — the slot-seeded parallel pipeline: sample i is drawn from
  ///    its own private stream Rng(util::fork_stream(seed, i)) (redraws
  ///    included) on a util::ThreadPool of that many workers, each worker
  ///    owning a private DesSimulator clone, with results written into
  ///    slot i (ordered reduction). Output is byte-identical for EVERY
  ///    worker count >= 1 — but it is a different (equally valid) campaign
  ///    than the workers == 0 stream, so don't flip this knob under a
  ///    pinned experiment.
  std::size_t workers = 0;
};

/// Generates the estimator's training set by "running" random workloads on
/// the board simulator. Workloads that exceed board memory are redrawn (the
/// physical data-collection campaign can only record runnable mixes).
SampleSet generate_dataset(const models::ModelZoo& zoo,
                           const EmbeddingTensor& embedding,
                           const sim::DesSimulator& board,
                           const DatasetConfig& config);

/// Catalog variant for extended datasets (paper claim (iii)): mixes are
/// drawn as distinct indices into \p nets, which must be the list the
/// embedding tensor was built from. config.max_mix is clamped to
/// nets.size().
SampleSet generate_dataset(const sim::NetworkList& nets,
                           const EmbeddingTensor& embedding,
                           const sim::DesSimulator& board,
                           const DatasetConfig& config);

}  // namespace omniboost::core
