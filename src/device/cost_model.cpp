#include "device/cost_model.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace omniboost::device {

double CostModel::kernel_time(const models::KernelDesc& kernel,
                              ComponentId comp) const {
  const ComponentSpec& c = device_->component(comp);
  const double eff = c.kind_efficiency(kernel.kind);
  const double t_compute =
      kernel.flops > 0.0 ? kernel.flops / (c.peak_gflops * 1e9 * eff) : 0.0;
  const double t_memory = kernel.bytes / (c.mem_bw_gbps * 1e9);
  // Board-level throttle scales service time uniformly; at the default 1.0
  // the division is a bit-exact identity.
  return (std::max(t_compute, t_memory) + c.kernel_overhead_s) /
         device_->throttle;
}

double CostModel::layer_time(const models::LayerDesc& layer,
                             ComponentId comp) const {
  double t = 0.0;
  for (const auto& k : layer.kernels) t += kernel_time(k, comp);
  return t;
}

double CostModel::segment_time(const models::NetworkDesc& net,
                               std::size_t first, std::size_t last,
                               ComponentId comp) const {
  OB_REQUIRE(first <= last && last < net.layers.size(),
             "segment_time: bad layer range");
  double t = 0.0;
  for (std::size_t l = first; l <= last; ++l)
    t += layer_time(net.layers[l], comp);
  return t;
}

double CostModel::segment_working_set_bytes(const models::NetworkDesc& net,
                                            std::size_t first,
                                            std::size_t last) const {
  OB_REQUIRE(first <= last && last < net.layers.size(),
             "segment_working_set_bytes: bad layer range");
  double weights = 0.0;
  double peak_act = net.layers[first].input.bytes();
  for (std::size_t l = first; l <= last; ++l) {
    weights += net.layers[l].weight_bytes;
    peak_act = std::max(peak_act, net.layers[l].output_bytes());
  }
  // Double-buffered activations (input + output of the running layer).
  return weights + 2.0 * peak_act;
}

double CostModel::segment_traffic_bytes(const models::NetworkDesc& net,
                                        std::size_t first,
                                        std::size_t last) const {
  OB_REQUIRE(first <= last && last < net.layers.size(),
             "segment_traffic_bytes: bad layer range");
  double b = 0.0;
  for (std::size_t l = first; l <= last; ++l)
    b += net.layers[l].traffic_bytes();
  return b;
}

double CostModel::transfer_time(double bytes, ComponentId from,
                                ComponentId to) const {
  if (from == to) return 0.0;
  return device_->link.latency_s + bytes / (device_->link.bandwidth_gbps * 1e9);
}

}  // namespace omniboost::device
