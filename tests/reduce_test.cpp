// Property tests for the pre-search reduction pass: the reduced space never
// excludes an optimal mapping, identical-device symmetry preserves the
// objective, and the optional MCTS/GA consumption is quality-neutral with
// the OFF path bit-identical to the pre-reduction searches.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/omniboost.hpp"
#include "models/zoo.hpp"
#include "sched/bnb.hpp"
#include "sched/exhaustive.hpp"
#include "sched/ga.hpp"
#include "sched/greedy.hpp"
#include "sched/reduce.hpp"
#include "sim/analytic.hpp"

namespace {

using namespace omniboost;
using models::ModelId;
using models::ModelZoo;
using workload::Workload;

const ModelZoo& zoo() {
  static const ModelZoo z;
  return z;
}

std::shared_ptr<const sim::AnalyticModel> analytic() {
  static const auto model =
      std::make_shared<const sim::AnalyticModel>(device::make_hikey970());
  return model;
}

sched::WorkloadEvaluatorFactory analytic_factory() {
  return sched::analytic_evaluator_factory(zoo(), analytic());
}

double achieved(const Workload& w, const sim::Mapping& m) {
  return analytic()->evaluate(w.resolve(zoo()), m).avg_throughput;
}

// --- Soundness: reduction never excludes an optimum ------------------------

TEST(Reduce, NeverExcludesAnOptimalMapping) {
  // Enumerate-and-compare on small instances: the optimum of the reduced
  // space must equal the optimum of the full space, bit-for-bit.
  for (const ModelId id :
       {ModelId::kAlexNet, ModelId::kVgg13, ModelId::kResNet34}) {
    const Workload w{{id}};
    sched::ExhaustiveScheduler full("full", zoo(), analytic_factory(), {});
    const auto full_r = full.schedule(w);

    sched::ExhaustiveConfig cfg;
    cfg.reduce = std::make_shared<const sched::ReducedSpace>(
        sched::reduce_search_space(zoo(), w, device::make_hikey970()));
    sched::ExhaustiveScheduler reduced("reduced", zoo(), analytic_factory(),
                                       cfg);
    const auto reduced_r = reduced.schedule(w);

    EXPECT_DOUBLE_EQ(reduced_r.expected_reward, full_r.expected_reward)
        << "mix=" << w.describe();
    EXPECT_LE(reduced_r.evaluations, full_r.evaluations);
  }
}

TEST(Reduce, GreedyChoicesAlwaysSurvive) {
  // The probing incumbent is Greedy's own mapping, so by construction its
  // per-layer choices can never be certified worse than itself.
  const std::vector<Workload> mixes = {
      {{ModelId::kAlexNet}},
      {{ModelId::kVgg19, ModelId::kMobileNet}},
      {{ModelId::kVgg19, ModelId::kMobileNet, ModelId::kResNet50}},
  };
  sched::GreedyScheduler greedy(zoo(), device::make_hikey970());
  for (const Workload& w : mixes) {
    const auto space =
        sched::reduce_search_space(zoo(), w, device::make_hikey970());
    const sim::Mapping m = greedy.schedule(w).mapping;
    for (std::size_t d = 0; d < m.num_dnns(); ++d) {
      const sim::Assignment& a = m.assignment(d);
      for (std::size_t l = 0; l < a.size(); ++l) {
        EXPECT_TRUE(space.allows(d, l, a[l]))
            << "mix=" << w.describe() << " dnn=" << d << " layer=" << l;
      }
    }
  }
}

TEST(Reduce, ProbingPrunesChoicesWhereTheIncumbentIsTight) {
  // Dominance probing certifies a choice away when a single committed
  // (layer, comp) pick alone caps the bound below the greedy incumbent. That
  // threshold (1/incumbent seconds) is tight on light workloads with a high
  // incumbent throughput — pin that it actually fires there.
  const Workload light{{ModelId::kAlexNet}};
  const auto tight =
      sched::reduce_search_space(zoo(), light, device::make_hikey970());
  EXPECT_GT(tight.total_choices, 0u);
  EXPECT_GT(tight.pruned_choices, 0u)
      << "dominance probing removed nothing on a light high-throughput mix";
  EXPECT_LT(tight.pruned_choices, tight.total_choices);
  EXPECT_GT(tight.incumbent_objective, 0.0);

  // On heavily contended mixes the incumbent throughput is low, so a single
  // commitment rarely certifies dominance — the pass must stay conservative
  // (sound) there rather than inventing prunes.
  const Workload heavy{
      {ModelId::kVgg19, ModelId::kMobileNet, ModelId::kResNet50}};
  const auto loose =
      sched::reduce_search_space(zoo(), heavy, device::make_hikey970());
  EXPECT_LT(loose.pruned_choices, loose.total_choices);
  EXPECT_GT(loose.incumbent_objective, 0.0);
}

TEST(Reduce, BnbExpandsFewerNodesWithReduction) {
  const Workload w{{ModelId::kVgg13}};
  sched::BnbConfig off;
  off.use_reduction = false;
  sched::BnbConfig on;
  on.use_reduction = true;
  sched::BranchAndBoundScheduler raw("raw", zoo(), device::make_hikey970(),
                                     off);
  sched::BranchAndBoundScheduler red("red", zoo(), device::make_hikey970(),
                                     on);
  const auto r_off = raw.schedule(w);
  const auto r_on = red.schedule(w);
  EXPECT_DOUBLE_EQ(r_on.expected_reward, r_off.expected_reward);
  EXPECT_LE(*r_on.nodes_expanded, *r_off.nodes_expanded);
}

// --- Symmetry --------------------------------------------------------------

TEST(Reduce, IdenticalComponentsCollapseIntoOneClass) {
  // A board whose two CPU clusters are performance-identical: the classes
  // must merge, and searching only canonical representatives must preserve
  // the exact optimum of the full space.
  device::DeviceSpec twin = device::make_hikey970();
  const std::string little_name = twin.components[2].name;
  twin.components[2] = twin.components[1];
  twin.components[2].name = little_name;  // labels must not affect symmetry

  const Workload w{{ModelId::kAlexNet}};
  const auto space = sched::reduce_search_space(zoo(), w, twin);
  EXPECT_TRUE(space.has_symmetry());
  EXPECT_EQ(space.symmetry_class[2], space.symmetry_class[1]);
  EXPECT_NE(space.symmetry_class[1], space.symmetry_class[0]);

  const auto twin_model = std::make_shared<const sim::AnalyticModel>(twin);
  sched::ExhaustiveScheduler full(
      "full", zoo(), sched::analytic_evaluator_factory(zoo(), twin_model), {});
  const auto full_r = full.schedule(w);

  sched::BranchAndBoundScheduler bnb("BnB", zoo(), twin);
  const auto r = bnb.schedule(w);
  EXPECT_DOUBLE_EQ(r.expected_reward, full_r.expected_reward);
  EXPECT_TRUE(*r.proved_optimal);

  // Symmetric halves are skipped, so the canonical search visits strictly
  // fewer nodes than the raw one.
  sched::BnbConfig raw_cfg;
  raw_cfg.use_reduction = false;
  sched::BranchAndBoundScheduler raw("raw", zoo(), twin, raw_cfg);
  EXPECT_LT(*r.nodes_expanded, *raw.schedule(w).nodes_expanded);
}

TEST(Reduce, HikeyHasNoSymmetricComponents) {
  const Workload w{{ModelId::kAlexNet}};
  const auto space =
      sched::reduce_search_space(zoo(), w, device::make_hikey970());
  EXPECT_FALSE(space.has_symmetry());
}

// --- Optional consumers: MCTS and GA ---------------------------------------

TEST(Reduce, ActionMaskShapeMatchesDecisions) {
  const Workload w{{ModelId::kVgg19, ModelId::kMobileNet}};
  const auto space =
      sched::reduce_search_space(zoo(), w, device::make_hikey970());
  const auto mask = space.action_mask();
  std::size_t total = 0;
  for (const std::size_t c : w.layer_counts(zoo())) total += c;
  ASSERT_EQ(mask.size(), total);
  for (const std::uint8_t bits : mask) {
    EXPECT_NE(bits, 0u);       // no layer may lose every component
    EXPECT_LT(bits, 8u);       // only the low 3 bits may be set
  }
}

TEST(Reduce, MctsOffPathBitIdenticalToAllOnesMask) {
  // The bit-compat pin: an empty mask and an all-ones mask produce the same
  // valid-action sets, hence the same RNG draw sequence and the same result.
  const Workload w{{ModelId::kAlexNet, ModelId::kSqueezeNet}};
  core::MctsConfig base;
  base.budget = 200;
  base.seed = 9;
  core::MctsConfig ones = base;
  std::size_t total = 0;
  for (const std::size_t c : w.layer_counts(zoo())) total += c;
  ones.action_mask = std::make_shared<const std::vector<std::uint8_t>>(
      std::vector<std::uint8_t>(total, 0x7));

  const auto factory = analytic_factory();
  core::MctsScheduler off("off", zoo(), factory(w), base);
  core::MctsScheduler on("on", zoo(), factory(w), ones);
  const auto r_off = off.schedule(w);
  const auto r_on = on.schedule(w);
  EXPECT_EQ(r_off.mapping, r_on.mapping);
  EXPECT_DOUBLE_EQ(r_off.expected_reward, r_on.expected_reward);
  EXPECT_EQ(r_off.evaluations, r_on.evaluations);
}

TEST(Reduce, MctsWithReductionKeepsQuality) {
  const Workload w{{ModelId::kVgg19, ModelId::kMobileNet}};
  const auto space = std::make_shared<const sched::ReducedSpace>(
      sched::reduce_search_space(zoo(), w, device::make_hikey970()));

  core::MctsConfig base;
  base.budget = 300;
  base.seed = 21;
  core::MctsConfig masked = base;
  masked.action_mask = std::make_shared<const std::vector<std::uint8_t>>(
      space->action_mask());

  const auto factory = analytic_factory();
  core::MctsScheduler plain("plain", zoo(), factory(w), base);
  core::MctsScheduler reduced("reduced", zoo(), factory(w), masked);
  const double q_plain = achieved(w, plain.schedule(w).mapping);
  const double q_reduced = achieved(w, reduced.schedule(w).mapping);
  // Reduction only removes provably-suboptimal choices, so at equal budget
  // the masked search must stay within tolerance of (typically above) the
  // unmasked one.
  EXPECT_GE(q_reduced, 0.85 * q_plain);
}

TEST(Reduce, GaWithReductionKeepsQualityAndStaysDeterministic) {
  const Workload w{{ModelId::kVgg19, ModelId::kMobileNet}};
  const auto space = std::make_shared<const sched::ReducedSpace>(
      sched::reduce_search_space(zoo(), w, device::make_hikey970()));

  sched::GaConfig plain_cfg;  // reduce == nullptr: the bit-frozen path
  sched::GaConfig red_cfg;
  red_cfg.reduce = space;

  sched::GaScheduler plain(zoo(), device::make_hikey970(), plain_cfg);
  sched::GaScheduler reduced_a(zoo(), device::make_hikey970(), red_cfg);
  sched::GaScheduler reduced_b(zoo(), device::make_hikey970(), red_cfg);

  const auto r_plain = plain.schedule(w);
  const auto r_a = reduced_a.schedule(w);
  const auto r_b = reduced_b.schedule(w);

  EXPECT_EQ(r_a.mapping, r_b.mapping) << "reduced GA must stay deterministic";
  EXPECT_GE(achieved(w, r_a.mapping), 0.80 * achieved(w, r_plain.mapping));
  EXPECT_TRUE(r_a.mapping.within_stage_limit(3));
}

TEST(Reduce, GaNullReducePathIsUnchanged) {
  // Two schedulers with a default config must replay the identical RNG
  // sequence — the OFF-path determinism pin backing bit-compatibility.
  const Workload w{{ModelId::kAlexNet, ModelId::kMobileNet}};
  sched::GaScheduler a(zoo(), device::make_hikey970(), {});
  sched::GaScheduler b(zoo(), device::make_hikey970(), {});
  EXPECT_EQ(a.schedule(w).mapping, b.schedule(w).mapping);
}

}  // namespace
