#pragma once
/// \file gemm_dispatch.hpp
/// Internal helper shared by the im2col-lowered layers (Conv2d, Linear):
/// routes one GEMM call to the runtime-dispatched SIMD path for kSimd and
/// to the blocked scalar path otherwise. kReference never reaches this —
/// the layers branch to their naive loops before lowering to GEMM at all.

#include "nn/kernel.hpp"
#include "tensor/gemm.hpp"
#include "tensor/simd.hpp"

namespace omniboost::nn::detail {

inline void dispatch_gemm(KernelKind kind, bool trans_a, bool trans_b,
                          std::size_t m, std::size_t n, std::size_t k,
                          float alpha, const float* a, std::size_t lda,
                          const float* b, std::size_t ldb, float beta,
                          float* c, std::size_t ldc) {
  if (kind == KernelKind::kSimd) {
    tensor::gemm_simd(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta,
                      c, ldc);
  } else {
    tensor::gemm(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c,
                 ldc);
  }
}

}  // namespace omniboost::nn::detail
