/// \file custom_model.cpp
/// Extensibility walkthrough (the paper's "robust to new DNN models added on
/// top of the existing dataset"): define a custom network with the
/// NetBuilder DSL, profile it with the kernel-level cost model, and inspect
/// how the board's components would run it — the exact data an extended
/// embedding tensor column would hold.

#include <cstdio>
#include <iostream>

#include "device/cost_model.hpp"
#include "models/net_builder.hpp"
#include "sim/des.hpp"
#include "util/table.hpp"

using namespace omniboost;

namespace {

/// A compact detector backbone an application team might deploy.
models::NetworkDesc make_tinydet() {
  models::NetBuilder b("TinyDet", {3, 224, 224});
  b.conv(24, 3, 2, 1, "stem");          // 112x112
  b.depthwise(1, "dw1").pointwise(48, "pw1");
  b.maxpool(2, 2, 0, "pool1");          // 56x56
  b.depthwise(1, "dw2").pointwise(96, "pw2");
  b.maxpool(2, 2, 0, "pool2");          // 28x28
  b.conv(128, 3, 1, 1, "conv3");
  b.residual_basic(128, 1, "res3");
  b.maxpool(2, 2, 0, "pool3");          // 14x14
  b.conv(192, 3, 1, 1, "conv4");
  b.residual_basic(192, 2, "res4");     // 7x7
  b.global_avgpool("gap");
  b.fc(80, true, "head");               // detector class head
  return std::move(b).build();
}

}  // namespace

int main() {
  const models::NetworkDesc net = make_tinydet();
  std::printf("custom network: %s — %zu schedulable layers, %.2f GFLOPs, "
              "%.1f MB weights\n\n",
              net.name.c_str(), net.num_layers(), net.total_flops() / 1e9,
              net.total_weight_bytes() / 1e6);

  const device::DeviceSpec spec = device::make_hikey970();
  const device::CostModel cost(spec);

  // Per-layer profile on every component: the new embedding column (Eq. 1).
  util::Table t({"layer", "kind/kernels", "GPU (ms)", "big (ms)",
                 "LITTLE (ms)"});
  for (const models::LayerDesc& l : net.layers) {
    t.add_row({l.name, std::to_string(l.kernels.size()) + " kernels",
               util::fmt(1e3 * cost.layer_time(l, device::ComponentId::kGpu), 3),
               util::fmt(1e3 * cost.layer_time(l, device::ComponentId::kBigCpu), 3),
               util::fmt(1e3 * cost.layer_time(
                                   l, device::ComponentId::kLittleCpu), 3)});
  }
  t.print(std::cout);

  // Whole-network placements and one pipelined split, measured end to end.
  const sim::DesSimulator board(spec);
  const sim::NetworkList nets{&net};
  std::printf("\nplacements (solo stream):\n");
  for (device::ComponentId c : device::kAllComponents) {
    const auto rep = board.simulate(
        nets, sim::Mapping::all_on({net.num_layers()}, c));
    std::printf("  all on %-6s : %.2f inf/s\n",
                std::string(device::component_name(c)).c_str(),
                rep.avg_throughput);
  }
  // Pipeline the tail onto the big CPU.
  sim::Assignment split(net.num_layers(), device::ComponentId::kGpu);
  for (std::size_t l = net.num_layers() / 2; l < net.num_layers(); ++l)
    split[l] = device::ComponentId::kBigCpu;
  const auto piped = board.simulate(nets, sim::Mapping({split}));
  std::printf("  GPU+big split : %.2f inf/s (2-stage pipeline)\n",
              piped.avg_throughput);

  std::printf("\nto add %s to OmniBoost's dataset, append it to the zoo and "
              "rebuild the embedding tensor — the kernel-granular profile "
              "above is all the framework needs (paper §IV-A)\n",
              net.name.c_str());
  return 0;
}
