#pragma once
/// \file mapping.hpp
/// The schedulable decision object: which computing component runs every
/// layer of every DNN in a multi-DNN workload. Contiguous runs of layers on
/// one component form *pipeline stages* (the paper limits these to
/// x = kNumComponents per DNN; exceeding that marks a losing MCTS state).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "device/device.hpp"
#include "models/layer_desc.hpp"

namespace omniboost::sim {

using device::ComponentId;

/// Per-layer component choice for one DNN.
using Assignment = std::vector<ComponentId>;

/// One contiguous run of layers on a single component.
struct SegmentSpan {
  std::size_t first = 0;  ///< first layer index (inclusive)
  std::size_t last = 0;   ///< last layer index (inclusive)
  ComponentId comp = ComponentId::kGpu;
};

/// Splits an assignment into its contiguous segments.
std::vector<SegmentSpan> extract_segments(const Assignment& a);

/// Number of pipeline stages (contiguous runs) of an assignment.
std::size_t num_stages(const Assignment& a);

/// A complete mapping for a workload of several DNNs.
///
/// Mappings are immutable once constructed, so a canonical 64-bit hash is
/// computed eagerly and cached; it keys the MCTS evaluation memo
/// (core::Mcts) and gives operator== an O(1) reject path.
class Mapping {
 public:
  Mapping() = default;
  explicit Mapping(std::vector<Assignment> per_dnn);

  /// Mapping that places every layer of every DNN on one component
  /// (the paper's baseline uses ComponentId::kGpu).
  static Mapping all_on(const std::vector<std::size_t>& layer_counts,
                        ComponentId comp);

  std::size_t num_dnns() const { return per_dnn_.size(); }
  const Assignment& assignment(std::size_t dnn) const;
  const std::vector<Assignment>& assignments() const { return per_dnn_; }

  /// Stage count of one DNN.
  std::size_t stages(std::size_t dnn) const;
  /// Largest stage count over all DNNs.
  std::size_t max_stages() const;
  /// True iff every DNN has at most \p limit stages (paper: limit = 3).
  bool within_stage_limit(std::size_t limit) const;

  /// Canonical content hash (FNV-1a over DNN lengths and component ids).
  /// Equal mappings hash equal; DNN boundaries are mixed in so e.g.
  /// {{G,G}} and {{G},{G}} collide neither with each other nor trivially.
  std::uint64_t hash() const { return hash_; }

  /// Hash-first fast path: unequal hashes reject without touching the
  /// per-layer vectors (the common case inside the evaluation memo).
  bool operator==(const Mapping& rhs) const {
    return hash_ == rhs.hash_ && per_dnn_ == rhs.per_dnn_;
  }
  bool operator!=(const Mapping& rhs) const { return !(*this == rhs); }

 private:
  std::vector<Assignment> per_dnn_;
  std::uint64_t hash_ = 0;
};

/// Hasher for unordered containers keyed by Mapping.
struct MappingHasher {
  std::size_t operator()(const Mapping& m) const {
    return static_cast<std::size_t>(m.hash());
  }
};

}  // namespace omniboost::sim
