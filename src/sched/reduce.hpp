#pragma once
/// \file reduce.hpp
/// Pre-search reduction of the layer-to-component assignment space, in the
/// spirit of the DAG-simplification passes exact schedulers run before
/// searching: shrink the problem, then search the smaller one.
///
/// Two sound reductions are applied:
///
///  1. Dominance by bound probing. A per-layer choice (layer l on component
///     c) is removed only when an ADMISSIBLE upper bound on every mapping
///     containing that single commitment (sim::RelaxedBound) is strictly
///     below an incumbent objective already achieved by GreedyScheduler.
///     Every removed choice therefore provably cannot appear in any optimal
///     mapping. Note the naive rule "drop c when it is never the fastest
///     device for l" is NOT sound under contention — load balancing can make
///     a slower device optimal — which is why probing is used instead.
///
///  2. Symmetry between identical components. When two components have
///     byte-identical performance specs, any mapping maps to an
///     equal-objective mapping under swapping them; exact searches need only
///     visit canonical representatives (first-use order). The collapse is
///     exported as equivalence classes, not list drops: dropping a duplicate
///     component entirely would be unsound (optima may use both at once).
///
/// Consumers: BranchAndBoundScheduler (both reductions),
/// ExhaustiveScheduler (allowed lists, via ExhaustiveConfig::reduce), and
/// optionally MCTS (MctsConfig::action_mask) and the GA (GaConfig::reduce) —
/// both off by default and bit-compatible when off.

#include <array>
#include <cstdint>
#include <vector>

#include "device/device.hpp"
#include "models/zoo.hpp"
#include "sched/search_common.hpp"
#include "workload/workload.hpp"

namespace omniboost::sched {

/// Reduction controls.
struct ReduceConfig {
  std::size_t stage_limit = 3;  ///< stage cap of the greedy incumbent
  bool dominance = true;        ///< bound-probing removal of per-layer choices
  bool symmetry = true;         ///< identical-component equivalence classes
};

/// The reduced search space of one workload.
struct ReducedSpace {
  /// Surviving components per layer: allowed[dnn][layer], kAllComponents
  /// order. Never empty for any layer (the greedy incumbent's own choice
  /// always survives its own probe).
  std::vector<LayerChoices> allowed;
  /// Equivalence class per component, identified by the smallest member
  /// index; {0, 1, 2} means no two components are identical.
  std::array<std::size_t, device::kNumComponents> symmetry_class{{0, 1, 2}};
  std::size_t total_choices = 0;   ///< per-layer choices before reduction
  std::size_t pruned_choices = 0;  ///< choices removed by dominance probing
  /// Greedy incumbent objective (analytic avg_throughput) the probes were
  /// compared against.
  double incumbent_objective = 0.0;

  bool allows(std::size_t dnn, std::size_t layer,
              device::ComponentId comp) const;

  /// True when at least two components fall in the same symmetry class.
  bool has_symmetry() const;

  /// Flattened per-decision bitmask (bit c = component c allowed) in MCTS
  /// decision order: dnn-after-dnn, layer-after-layer. Plug into
  /// core::MctsConfig::action_mask.
  std::vector<std::uint8_t> action_mask() const;
};

/// Computes the reduced space of \p w on \p device. Deterministic and
/// search-independent: the result may be shared by every consumer scheduling
/// the same workload on the same board.
ReducedSpace reduce_search_space(const models::ModelZoo& zoo,
                                 const workload::Workload& w,
                                 const device::DeviceSpec& device,
                                 ReduceConfig config = {});

}  // namespace omniboost::sched
