#include "core/omniboost.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "util/require.hpp"

namespace omniboost::core {

namespace {

/// Wall-clock helper.
class StopWatch {
 public:
  StopWatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

OmniBoostScheduler::OmniBoostScheduler(
    const models::ModelZoo& zoo, const EmbeddingTensor& embedding,
    std::shared_ptr<const ThroughputEstimator> estimator,
    OmniBoostConfig config)
    : zoo_(&zoo),
      embedding_(&embedding),
      estimator_(std::move(estimator)),
      config_(config) {
  OB_REQUIRE(estimator_ != nullptr, "OmniBoostScheduler: null estimator");
  OB_REQUIRE(estimator_->trained(),
             "OmniBoostScheduler: estimator must be trained first");
}

ScheduleResult OmniBoostScheduler::schedule(const workload::Workload& w) {
  OB_REQUIRE(w.size() > 0, "OmniBoostScheduler::schedule: empty workload");
  const StopWatch timer;

  // The scheduler-level batching/caching knobs ride on the generic search
  // config; OmniBoostConfig is the authoritative surface for both. Reject
  // values smuggled in through the sub-config instead of silently
  // overwriting them.
  OB_REQUIRE(config_.mcts.batch_size == 1 && config_.mcts.cache,
             "OmniBoostScheduler: set batch_size/cache on OmniBoostConfig "
             "itself, not on its mcts sub-config");
  MctsConfig mcts = config_.mcts;
  mcts.batch_size = config_.batch_size;
  mcts.cache = config_.cache;

  // Kernel selection: the shared estimator is immutable, so a non-matching
  // kernel request is served by a private clone (serialization round-trip —
  // bit-exact weights and preprocessing, ~20k parameters, microseconds).
  std::shared_ptr<const ThroughputEstimator> active = estimator_;
  if (active->kernel() != config_.kernel) {
    std::stringstream weights;
    active->save(weights);
    std::istringstream is(weights.str());
    auto clone =
        std::make_shared<ThroughputEstimator>(ThroughputEstimator::load(is));
    clone->set_kernel(config_.kernel);
    active = std::move(clone);
  }

  // Renders a wave of mappings and scores it with ONE batched CNN forward
  // pass through the given estimator instance.
  const auto batch_evaluator =
      [this, &w](std::shared_ptr<const ThroughputEstimator> est)
      -> BatchMappingEvaluator {
    return [this, &w, est = std::move(est)](
               const std::vector<sim::Mapping>& mappings) {
      std::vector<tensor::Tensor> inputs;
      inputs.reserve(mappings.size());
      for (const sim::Mapping& m : mappings)
        inputs.push_back(embedding_->masked_input(w, m));
      return est->predict_rewards(inputs);
    };
  };

  MctsResult r;
  if (config_.workers <= 1) {
    Mcts search(w.layer_counts(*zoo_), batch_evaluator(active), mcts);
    r = search.search();
  } else {
    // Root-parallel: the CNN forward pass mutates activation caches, so each
    // worker needs a private estimator. Clone through the serialization path
    // (bit-exact weights and preprocessing; ~20k parameters, microseconds),
    // stamping the configured kernel kind onto every clone.
    std::stringstream weights;
    active->save(weights);
    const std::string blob = weights.str();
    const nn::KernelKind kernel = config_.kernel;
    const BatchEvaluatorFactory factory = [&batch_evaluator, blob,
                                           kernel]() -> BatchMappingEvaluator {
      std::istringstream is(blob);
      auto clone =
          std::make_shared<ThroughputEstimator>(ThroughputEstimator::load(is));
      clone->set_kernel(kernel);
      return batch_evaluator(std::move(clone));
    };
    r = parallel_mcts_search_batched(w.layer_counts(*zoo_), factory, mcts,
                                     config_.workers);
  }

  ScheduleResult out;
  out.mapping = r.best_mapping;
  out.expected_reward = r.best_reward;
  out.evaluations = r.evaluations;
  out.cache_hits = r.cache_hits;
  out.decision_seconds = timer.seconds();
  return out;
}

MctsScheduler::MctsScheduler(std::string name, const models::ModelZoo& zoo,
                             MappingEvaluator evaluator, MctsConfig config)
    : name_(std::move(name)),
      zoo_(&zoo),
      evaluator_(std::move(evaluator)),
      config_(config) {
  OB_REQUIRE(evaluator_ != nullptr, "MctsScheduler: null evaluator");
}

ScheduleResult MctsScheduler::schedule(const workload::Workload& w) {
  OB_REQUIRE(w.size() > 0, "MctsScheduler::schedule: empty workload");
  const StopWatch timer;
  Mcts search(w.layer_counts(*zoo_), evaluator_, config_);
  const MctsResult r = search.search();

  ScheduleResult out;
  out.mapping = r.best_mapping;
  out.expected_reward = r.best_reward;
  out.evaluations = r.evaluations;
  out.cache_hits = r.cache_hits;
  out.decision_seconds = timer.seconds();
  return out;
}

}  // namespace omniboost::core
