// workload::Scenario: generator determinism under fork_stream, generator
// invariants, trace round-trips, validation errors, and mix replay.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <set>
#include <string>

#include "util/rng.hpp"
#include "workload/faults.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace omniboost;
using models::ModelId;
using workload::Scenario;
using workload::ScenarioConfig;
using workload::ScenarioEvent;
using workload::ScenarioEventKind;

TEST(ScenarioGenerator, DeterministicUnderForkStream) {
  ScenarioConfig cfg;
  cfg.events = 20;
  cfg.max_concurrent = 5;
  for (std::uint64_t index : {0ull, 3ull, 17ull}) {
    util::Rng a(util::fork_stream(99, index));
    util::Rng b(util::fork_stream(99, index));
    EXPECT_EQ(workload::random_scenario(a, cfg),
              workload::random_scenario(b, cfg))
        << "stream " << index;
  }
  // Distinct stream indices give distinct scenarios.
  util::Rng s0(util::fork_stream(99, 0));
  util::Rng s1(util::fork_stream(99, 1));
  EXPECT_NE(workload::random_scenario(s0, cfg),
            workload::random_scenario(s1, cfg));
}

TEST(ScenarioGenerator, RespectsConcurrencyBandAndLegality) {
  ScenarioConfig cfg;
  cfg.events = 40;
  cfg.min_concurrent = 2;
  cfg.max_concurrent = 4;
  cfg.depart_bias = 0.5;
  util::Rng rng(7);
  const Scenario s = workload::random_scenario(rng, cfg);
  ASSERT_EQ(s.size(), 40u);
  EXPECT_EQ(s.events().front().time_s, 0.0);
  EXPECT_EQ(s.events().front().kind, ScenarioEventKind::kArrive);

  std::set<ModelId> present;
  double prev_t = 0.0;
  for (const ScenarioEvent& e : s.events()) {
    EXPECT_GE(e.time_s, prev_t);
    prev_t = e.time_s;
    if (e.kind == ScenarioEventKind::kArrive) {
      EXPECT_TRUE(present.insert(e.model).second);  // was absent
      EXPECT_LE(present.size(), cfg.max_concurrent);
    } else {
      EXPECT_EQ(present.erase(e.model), 1u);  // was present
      EXPECT_GE(present.size(), cfg.min_concurrent);
    }
  }
  EXPECT_LE(s.peak_concurrency(), cfg.max_concurrent);
}

TEST(ScenarioGenerator, RejectsZeroWidthBandThatWouldFreeze) {
  ScenarioConfig cfg;
  cfg.min_concurrent = 2;
  cfg.max_concurrent = 2;
  cfg.events = 6;  // more events than the band can ever legally produce
  util::Rng rng(1);
  EXPECT_THROW(workload::random_scenario(rng, cfg), std::invalid_argument);
  // Filling the band exactly is fine: two arrivals, then stop.
  cfg.events = 2;
  const Scenario s = workload::random_scenario(rng, cfg);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.peak_concurrency(), 2u);
}

TEST(ScenarioTrace, RoundTripsBitExactly) {
  ScenarioConfig cfg;
  cfg.events = 25;
  cfg.max_concurrent = 5;
  cfg.depart_bias = 0.5;
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    util::Rng rng(seed);
    const Scenario original = workload::random_scenario(rng, cfg);
    const std::string trace = workload::serialize_scenario(original);
    const Scenario parsed = workload::parse_scenario(trace);
    EXPECT_EQ(original, parsed) << "seed " << seed;
    // Idempotent: serializing the parse reproduces the text.
    EXPECT_EQ(trace, workload::serialize_scenario(parsed));
  }
}

TEST(ScenarioTrace, ParsesCommentsBlanksAndNameVariants) {
  const Scenario s = workload::parse_scenario(
      "# a comment\n"
      "\n"
      "at 0 arrive vgg19\n"
      "at 1.5 arrive AlexNet\n"
      "at 2.25 depart VGG-19\n");
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.events()[0].model, ModelId::kVgg19);
  EXPECT_EQ(s.events()[1].time_s, 1.5);
  EXPECT_EQ(s.events()[2].kind, ScenarioEventKind::kDepart);
}

TEST(ScenarioTrace, RejectsMalformedLines) {
  EXPECT_THROW(workload::parse_scenario("arrive 0 AlexNet\n"),
               std::invalid_argument);
  EXPECT_THROW(workload::parse_scenario("at x arrive AlexNet\n"),
               std::invalid_argument);
  EXPECT_THROW(workload::parse_scenario("at 0 vanish AlexNet\n"),
               std::invalid_argument);
  EXPECT_THROW(workload::parse_scenario("at 0 arrive NotANet\n"),
               std::invalid_argument);
  EXPECT_THROW(workload::parse_scenario("at 0 arrive AlexNet extra\n"),
               std::invalid_argument);
}

TEST(ScenarioValidation, RejectsIllegalEventSequences) {
  const auto arrive = [](double t, ModelId m) {
    return ScenarioEvent{t, ScenarioEventKind::kArrive, m};
  };
  const auto depart = [](double t, ModelId m) {
    return ScenarioEvent{t, ScenarioEventKind::kDepart, m};
  };
  // Double arrival.
  EXPECT_THROW(Scenario({arrive(0, ModelId::kAlexNet),
                         arrive(1, ModelId::kAlexNet)}),
               std::invalid_argument);
  // Departure of an absent model.
  EXPECT_THROW(Scenario({arrive(0, ModelId::kAlexNet),
                         depart(1, ModelId::kVgg16)}),
               std::invalid_argument);
  // Time going backwards.
  EXPECT_THROW(Scenario({arrive(1, ModelId::kAlexNet),
                         arrive(0.5, ModelId::kVgg16)}),
               std::invalid_argument);
  // Negative time.
  EXPECT_THROW(Scenario({arrive(-1, ModelId::kAlexNet)}),
               std::invalid_argument);
}

TEST(ScenarioTrace, SloClauseRoundTripsBitExactly) {
  // Awkward mantissas on purpose: the %.17g contract must hold for SLO
  // values exactly as it does for timestamps.
  const Scenario s = workload::parse_scenario(
      "at 0 arrive VGG-19 slo 123.45678901234567\n"
      "at 1.5 arrive AlexNet\n"
      "at 2.25 depart VGG-19\n"
      "at 3 arrive MobileNet slo 80\n");
  EXPECT_EQ(s.events()[0].slo_ms, 123.45678901234567);
  EXPECT_EQ(s.events()[1].slo_ms, 0.0);
  EXPECT_EQ(s.events()[3].slo_ms, 80.0);
  const std::string trace = workload::serialize_scenario(s);
  EXPECT_EQ(s, workload::parse_scenario(trace));
  EXPECT_EQ(trace, workload::serialize_scenario(workload::parse_scenario(trace)));
  // Events without an SLO serialize with no `slo` clause at all, keeping the
  // pre-SLO v1 format byte-identical.
  EXPECT_NE(trace.find("at 1.5 arrive AlexNet\n"), std::string::npos);
}

TEST(ScenarioTrace, RejectsMalformedSloClauses) {
  // SLO on a departure.
  EXPECT_THROW(workload::parse_scenario("at 0 arrive AlexNet\n"
                                        "at 1 depart AlexNet slo 50\n"),
               std::invalid_argument);
  // Missing, non-positive, non-finite, or non-numeric values.
  EXPECT_THROW(workload::parse_scenario("at 0 arrive AlexNet slo\n"),
               std::invalid_argument);
  EXPECT_THROW(workload::parse_scenario("at 0 arrive AlexNet slo 0\n"),
               std::invalid_argument);
  EXPECT_THROW(workload::parse_scenario("at 0 arrive AlexNet slo -5\n"),
               std::invalid_argument);
  EXPECT_THROW(workload::parse_scenario("at 0 arrive AlexNet slo inf\n"),
               std::invalid_argument);
  EXPECT_THROW(workload::parse_scenario("at 0 arrive AlexNet slo fast\n"),
               std::invalid_argument);
  // Trailing garbage after the clause.
  EXPECT_THROW(workload::parse_scenario("at 0 arrive AlexNet slo 50 x\n"),
               std::invalid_argument);
  // Constructor-level: a hand-built departure carrying an SLO.
  ScenarioEvent depart{1.0, ScenarioEventKind::kDepart, ModelId::kAlexNet};
  depart.slo_ms = 50.0;
  EXPECT_THROW(
      Scenario({ScenarioEvent{0.0, ScenarioEventKind::kArrive,
                              ModelId::kAlexNet},
                depart}),
      std::invalid_argument);
}

TEST(ScenarioGenerator, DefaultConfigDrawSequenceIsPinned) {
  // The pre-SLO bit-compat pin: with slo_fraction = 0 (the default) the
  // generator must consume exactly the pre-SLO Rng draw sequence, so seeded
  // sweeps (bench_serving_scenarios and friends) reproduce their scenarios
  // byte-for-byte across this feature. Golden captured at the pre-SLO
  // behaviour; if this fails, a draw was added to the default path.
  util::Rng rng(util::fork_stream(2023, 1));
  workload::ScenarioConfig cfg;
  cfg.events = 6;
  const Scenario s = workload::random_scenario(rng, cfg);
  EXPECT_EQ(workload::serialize_scenario(s),
            "# omniboost scenario trace v1\n"
            "at 0 arrive VGG-13\n"
            "at 1.6472420584204153 arrive SqueezeNet\n"
            "at 5.2390537032880946 arrive Inception-v3\n"
            "at 7.2395215464577687 arrive ResNet-34\n"
            "at 8.9880335708869978 depart Inception-v3\n"
            "at 9.4074704094598953 arrive ResNet-101\n");
  EXPECT_FALSE(s.has_slos());
}

TEST(ScenarioGenerator, SloBandAttachesSlosToArrivalsOnly) {
  workload::ScenarioConfig cfg;
  cfg.events = 30;
  cfg.max_concurrent = 5;
  cfg.depart_bias = 0.5;
  cfg.slo_fraction = 1.0;
  cfg.slo_min_ms = 40.0;
  cfg.slo_max_ms = 90.0;
  util::Rng rng(11);
  const Scenario s = workload::random_scenario(rng, cfg);
  EXPECT_TRUE(s.has_slos());
  for (const ScenarioEvent& e : s.events()) {
    if (e.kind == ScenarioEventKind::kArrive) {
      EXPECT_GE(e.slo_ms, cfg.slo_min_ms);
      EXPECT_LT(e.slo_ms, cfg.slo_max_ms);
    } else {
      EXPECT_EQ(e.slo_ms, 0.0);
    }
  }
  // Band validation: a zero/inverted band is rejected when draws are asked.
  workload::ScenarioConfig bad = cfg;
  bad.slo_min_ms = 100.0;
  bad.slo_max_ms = 50.0;
  util::Rng rng2(11);
  EXPECT_THROW(workload::random_scenario(rng2, bad), std::invalid_argument);
}

TEST(ScenarioReplay, SloAfterTracksStreamsAndResetsOnReArrival) {
  const Scenario s = workload::parse_scenario(
      "at 0 arrive VGG-19 slo 200\n"
      "at 1 arrive AlexNet slo 90\n"
      "at 2 depart VGG-19\n"
      "at 3 arrive VGG-19\n");  // re-arrival WITHOUT an SLO
  ASSERT_EQ(s.slo_after(1).size(), 2u);
  EXPECT_DOUBLE_EQ(s.slo_after(1)[0], 0.200);  // seconds
  EXPECT_DOUBLE_EQ(s.slo_after(1)[1], 0.090);
  // After the departure only AlexNet's SLO remains, index-aligned with the
  // mix; the re-arrived VGG-19 serves unconstrained (no stale SLO).
  ASSERT_EQ(s.slo_after(3).size(), 2u);
  EXPECT_EQ(s.mix_after(3).mix[1], ModelId::kVgg19);
  EXPECT_DOUBLE_EQ(s.slo_after(3)[0], 0.090);
  EXPECT_DOUBLE_EQ(s.slo_after(3)[1], 0.0);
}

// --- Fault clauses -------------------------------------------------------

TEST(ScenarioTrace, FaultClausesRoundTripBitExactly) {
  // Awkward mantissa on the throttle factor: the %.17g contract must hold
  // for fault clauses exactly as it does for timestamps and SLOs.
  const Scenario s = workload::parse_scenario(
      "at 0 arrive AlexNet\n"
      "at 1 fail board 2\n"
      "at 2.5 throttle board 0 0.34567890123456789\n"
      "at 3 recover board 2\n"
      "at 4 recover board 0\n"
      "at 5 depart AlexNet\n");
  ASSERT_EQ(s.size(), 6u);
  EXPECT_TRUE(s.has_faults());
  EXPECT_EQ(s.fault_board_span(), 3u);  // max board index 2 -> span 3
  EXPECT_EQ(s.events()[1].kind, ScenarioEventKind::kFailBoard);
  EXPECT_EQ(s.events()[1].board, 2u);
  EXPECT_EQ(s.events()[1].factor, 0.0);
  EXPECT_EQ(s.events()[2].kind, ScenarioEventKind::kThrottleBoard);
  EXPECT_EQ(s.events()[2].board, 0u);
  EXPECT_EQ(s.events()[2].factor, 0.34567890123456789);
  EXPECT_EQ(s.events()[4].kind, ScenarioEventKind::kRecoverBoard);
  const std::string trace = workload::serialize_scenario(s);
  EXPECT_EQ(s, workload::parse_scenario(trace));
  EXPECT_EQ(trace,
            workload::serialize_scenario(workload::parse_scenario(trace)));
  // Fault events are invisible to the served mix and its concurrency.
  EXPECT_EQ(s.peak_concurrency(), 1u);
  EXPECT_EQ(s.mix_after(3).describe(), "AlexNet");
  // A fault-free trace reports no faults and zero span.
  const Scenario plain = workload::parse_scenario("at 0 arrive AlexNet\n");
  EXPECT_FALSE(plain.has_faults());
  EXPECT_EQ(plain.fault_board_span(), 0u);
}

TEST(ScenarioTrace, RejectsMalformedFaultLines) {
  const char* corpus[] = {
      "at 0 fail board\n",             // missing index
      "at 0 fail 1\n",                 // missing the literal `board`
      "at 0 fail board -1\n",          // negative index
      "at 0 fail board x\n",           // non-numeric index
      "at 0 fail board 1 extra\n",     // trailing garbage
      "at 0 fail board 1 slo 5\n",     // faults carry no SLO
      "at 0 throttle board 1\n",       // throttle without a factor
      "at 0 throttle board 1 0\n",     // factor must be > 0
      "at 0 throttle board 1 -0.5\n",  // negative factor
      "at 0 throttle board 1 1.5\n",   // factor above 1
      "at 0 throttle board 1 inf\n",   // non-finite factor
      "at 0 throttle board 1 nan\n",   // non-finite factor
      "at 0 throttle board 1 fast\n",  // non-numeric factor
      "at 0 recover board 1 0.5\n",    // recover carries no factor
      "at 0 recover board 1\n",        // recover while healthy
      "at 0 fail board 1\nat 1 fail board 1\n",      // double fail
      "at 0 fail board 1\nat 1 throttle board 1 0.5\n",  // throttle a corpse
  };
  for (const char* text : corpus)
    EXPECT_THROW(workload::parse_scenario(std::string(text)),
                 std::invalid_argument)
        << text;
}

TEST(ScenarioValidation, RejectsIllegalFaultEventFields) {
  const auto fault = [](double t, ScenarioEventKind kind, std::size_t board) {
    ScenarioEvent e{t, kind, ModelId::kAlexNet};
    e.board = board;
    return e;
  };
  // A hand-built throttle with an out-of-range factor.
  ScenarioEvent hot = fault(0.0, ScenarioEventKind::kThrottleBoard, 0);
  hot.factor = 2.0;
  EXPECT_THROW(Scenario({hot}), std::invalid_argument);
  // A fail event smuggling a throttle factor.
  ScenarioEvent dead = fault(0.0, ScenarioEventKind::kFailBoard, 0);
  dead.factor = 0.5;
  EXPECT_THROW(Scenario({dead}), std::invalid_argument);
  // A fault event smuggling an SLO.
  ScenarioEvent slo = fault(0.0, ScenarioEventKind::kFailBoard, 0);
  slo.slo_ms = 50.0;
  EXPECT_THROW(Scenario({slo}), std::invalid_argument);
  // A mix event smuggling fault fields.
  ScenarioEvent arrive{0.0, ScenarioEventKind::kArrive, ModelId::kAlexNet};
  arrive.board = 1;
  EXPECT_THROW(Scenario({arrive}), std::invalid_argument);
  arrive.board = 0;
  arrive.factor = 0.5;
  EXPECT_THROW(Scenario({arrive}), std::invalid_argument);
  // Legal: fail then recover then fail again on the same board.
  EXPECT_NO_THROW(Scenario({fault(0, ScenarioEventKind::kFailBoard, 0),
                            fault(1, ScenarioEventKind::kRecoverBoard, 0),
                            fault(2, ScenarioEventKind::kFailBoard, 0)}));
}

// --- Fault process generator ---------------------------------------------

TEST(FaultProcess, SampleIsDeterministicAndPerBoardSubstreamIndependent) {
  workload::FaultProcess p;
  p.mtbf_s = 10.0;
  p.mttr_s = 4.0;
  p.throttle_fraction = 0.5;
  const auto a = workload::sample_fault_events(p, 3, 200.0, 77);
  const auto b = workload::sample_fault_events(p, 3, 200.0, 77);
  EXPECT_EQ(a, b);
  ASSERT_FALSE(a.empty());
  // Substream independence: board 1's history in a 2-board draw is
  // bit-identical to its history in a 3-board draw of the same seed.
  const auto two = workload::sample_fault_events(p, 2, 200.0, 77);
  const auto board1 = [](const std::vector<ScenarioEvent>& events) {
    std::vector<ScenarioEvent> out;
    for (const ScenarioEvent& e : events)
      if (e.board == 1) out.push_back(e);
    return out;
  };
  EXPECT_EQ(board1(a), board1(two));
  // Every drawn event is a fault event with a legal board and time.
  double prev_t = 0.0;
  for (const ScenarioEvent& e : a) {
    EXPECT_TRUE(workload::is_fault_event(e.kind));
    EXPECT_LT(e.board, 3u);
    EXPECT_GE(e.time_s, prev_t);
    EXPECT_LE(e.time_s, 200.0);
    prev_t = e.time_s;
  }
}

TEST(FaultProcess, WithFaultsWeavesAValidScenarioAndNoFaultsIsIdentity) {
  workload::ScenarioConfig cfg;
  cfg.events = 20;
  cfg.max_concurrent = 4;
  cfg.depart_bias = 0.5;
  util::Rng rng(5);
  const Scenario base = workload::random_scenario(rng, cfg);

  workload::FaultProcess p;
  p.mtbf_s = 3.0;
  p.mttr_s = 2.0;
  const Scenario faulted = workload::with_faults(base, p, 3, 13);
  EXPECT_TRUE(faulted.has_faults());
  EXPECT_GT(faulted.size(), base.size());
  // The arrive/depart stream is untouched by the weave.
  std::vector<ScenarioEvent> mix_events;
  for (const ScenarioEvent& e : faulted.events())
    if (!workload::is_fault_event(e.kind)) mix_events.push_back(e);
  ASSERT_EQ(mix_events.size(), base.size());
  for (std::size_t i = 0; i < mix_events.size(); ++i)
    EXPECT_EQ(mix_events[i], base.events()[i]) << "event " << i;
  // The woven trace round-trips bit-exactly like any other.
  const std::string trace = workload::serialize_scenario(faulted);
  EXPECT_EQ(faulted, workload::parse_scenario(trace));
  // An (astronomically) fault-free process returns the base unchanged.
  workload::FaultProcess calm;
  calm.mtbf_s = 1e12;
  const Scenario same = workload::with_faults(base, calm, 3, 13);
  EXPECT_EQ(same, base);
  EXPECT_FALSE(same.has_faults());
}

TEST(FaultProcess, ValidatesParametersAndSpecGrammar) {
  const auto bad = [](auto mutate) {
    workload::FaultProcess p;
    mutate(p);
    EXPECT_THROW(workload::sample_fault_events(p, 1, 10.0, 0),
                 std::invalid_argument);
  };
  bad([](workload::FaultProcess& p) { p.mtbf_s = 0.0; });
  bad([](workload::FaultProcess& p) { p.mtbf_s = -1.0; });
  bad([](workload::FaultProcess& p) {
    p.mttr_s = std::numeric_limits<double>::infinity();
  });
  bad([](workload::FaultProcess& p) { p.throttle_fraction = 1.5; });
  // The band is validated only when throttles can actually be drawn
  // (throttle_fraction > 0); fail-only processes ignore it by contract.
  const auto bad_band = [&bad](auto mutate) {
    bad([mutate](workload::FaultProcess& p) {
      p.throttle_fraction = 0.5;
      mutate(p);
    });
  };
  bad_band([](workload::FaultProcess& p) { p.throttle_min = 0.0; });
  bad_band([](workload::FaultProcess& p) {
    p.throttle_min = 0.9;
    p.throttle_max = 0.5;
  });
  bad_band([](workload::FaultProcess& p) { p.throttle_max = 1.5; });
  // ...and a fail-only process with a nonsense band samples fine.
  workload::FaultProcess lax;
  lax.throttle_min = 0.0;
  EXPECT_NO_THROW(workload::sample_fault_events(lax, 1, 10.0, 0));

  const workload::FaultProcess p =
      workload::parse_fault_spec("mtbf:30:mttr:5:throttle:0.4:0.2:0.6");
  EXPECT_EQ(p.mtbf_s, 30.0);
  EXPECT_EQ(p.mttr_s, 5.0);
  EXPECT_EQ(p.throttle_fraction, 0.4);
  EXPECT_EQ(p.throttle_min, 0.2);
  EXPECT_EQ(p.throttle_max, 0.6);
  EXPECT_EQ(workload::parse_fault_spec("mtbf:30:mttr:5").throttle_fraction,
            0.0);
  for (const char* spec :
       {"", "mtbf:30", "mttr:5:mtbf:30", "mtbf:x:mttr:5", "mtbf:30:mttr:5:x",
        "mtbf:30:mttr:5:throttle", "mtbf:30:mttr:5:throttle:0.4:0.2",
        "mtbf:-1:mttr:5", "mtbf:30:mttr:5:throttle:2"})
    EXPECT_THROW(workload::parse_fault_spec(spec), std::invalid_argument)
        << spec;
}

// --- Fuzz/property layer -------------------------------------------------
// Random traces must round-trip the text format bit-exactly, and arbitrary
// corruption of a valid trace must either still parse (benign mutation) or
// throw std::invalid_argument — never crash, never escape another type.

/// A randomized-but-legal generator config; roughly half the draws carry an
/// SLO band so both trace grammars are fuzzed.
workload::ScenarioConfig fuzz_config(util::Rng& rng) {
  workload::ScenarioConfig cfg;
  cfg.max_concurrent = 1 + rng.below(models::kNumModels);
  cfg.min_concurrent = 1 + rng.below(cfg.max_concurrent);
  cfg.events = 1 + rng.below(40);
  if (cfg.min_concurrent == cfg.max_concurrent)
    cfg.events = 1 + rng.below(cfg.max_concurrent);  // avoid the frozen band
  cfg.depart_bias = rng.uniform(0.05, 0.95);
  cfg.mean_interarrival_s = rng.uniform(0.01, 5.0);
  if (rng.chance(0.5)) {
    cfg.slo_fraction = rng.uniform(0.1, 1.0);
    cfg.slo_min_ms = rng.uniform(1.0, 100.0);
    cfg.slo_max_ms = cfg.slo_min_ms + rng.uniform(0.0, 900.0);
  }
  return cfg;
}

TEST(ScenarioFuzz, RandomTracesRoundTripBitExactly) {
  for (std::uint64_t i = 0; i < 50; ++i) {
    util::Rng rng(util::fork_stream(9001, i));
    Scenario original = workload::random_scenario(rng, fuzz_config(rng));
    // Half the draws get a fault process woven in, so the fault grammar is
    // fuzzed round-trip alongside the arrive/depart/slo grammar.
    if (!original.empty() && rng.chance(0.5)) {
      workload::FaultProcess p;
      p.mtbf_s = rng.uniform(0.5, 10.0);
      p.mttr_s = rng.uniform(0.5, 5.0);
      p.throttle_fraction = rng.uniform(0.0, 1.0);
      original = workload::with_faults(original, p, 1 + rng.below(4), i);
    }
    const std::string text = workload::serialize_scenario(original);
    const Scenario parsed = workload::parse_scenario(text);

    ASSERT_EQ(parsed.size(), original.size()) << "iteration " << i;
    for (std::size_t k = 0; k < original.size(); ++k) {
      const ScenarioEvent& a = original.events()[k];
      const ScenarioEvent& b = parsed.events()[k];
      EXPECT_EQ(a.time_s, b.time_s) << "iteration " << i << " event " << k;
      EXPECT_EQ(a.kind, b.kind) << "iteration " << i << " event " << k;
      EXPECT_EQ(a.model, b.model) << "iteration " << i << " event " << k;
      EXPECT_EQ(a.slo_ms, b.slo_ms) << "iteration " << i << " event " << k;
      EXPECT_EQ(a.board, b.board) << "iteration " << i << " event " << k;
      EXPECT_EQ(a.factor, b.factor) << "iteration " << i << " event " << k;
    }
    // And the text itself is a fixed point of serialize∘parse.
    EXPECT_EQ(workload::serialize_scenario(parsed), text) << "iteration " << i;
  }
}

TEST(ScenarioFuzz, MutatedTracesThrowInvalidArgumentOrStillRoundTrip) {
  // Seed corpus: one plain and one SLO-carrying trace.
  const std::string corpus[] = {
      "# omniboost scenario trace v1\n"
      "at 0 arrive AlexNet\n"
      "at 1.5 arrive VGG-19\n"
      "at 2.25 depart AlexNet\n"
      "at 4 arrive ResNet-50\n"
      "at 8 depart VGG-19\n",
      "at 0 arrive AlexNet slo 120.5\n"
      "at 3 arrive MobileNet\n"
      "at 5.5 depart AlexNet\n"
      "at 7 arrive SqueezeNet slo 80\n",
      "at 0 arrive AlexNet\n"
      "at 1 fail board 1\n"
      "at 2 throttle board 0 0.5\n"
      "at 3.5 recover board 1\n"
      "at 4 recover board 0\n"
      "at 6 depart AlexNet\n",
  };
  const char charset[] = "at 0123456789.eE+-arivdepsloNVGRM#\nxfhbc";
  std::size_t rejected = 0, survived = 0;
  for (std::uint64_t i = 0; i < 200; ++i) {
    util::Rng rng(util::fork_stream(9002, i));
    std::string text = corpus[rng.below(3)];
    // 1-4 independent byte-level mutations: overwrite, insert, or erase.
    const std::size_t mutations = 1 + rng.below(4);
    for (std::size_t m = 0; m < mutations && !text.empty(); ++m) {
      const std::size_t pos = rng.below(text.size());
      switch (rng.below(3)) {
        case 0:
          text[pos] = charset[rng.below(sizeof(charset) - 1)];
          break;
        case 1:
          text.insert(text.begin() + static_cast<std::ptrdiff_t>(pos),
                      charset[rng.below(sizeof(charset) - 1)]);
          break;
        default:
          text.erase(text.begin() + static_cast<std::ptrdiff_t>(pos));
          break;
      }
    }
    try {
      const Scenario s = workload::parse_scenario(text);
      // A benign mutation must leave a trace that still round-trips.
      const std::string canon = workload::serialize_scenario(s);
      EXPECT_EQ(workload::serialize_scenario(workload::parse_scenario(canon)),
                canon)
          << "iteration " << i;
      ++survived;
    } catch (const std::invalid_argument&) {
      ++rejected;  // the only legal rejection channel
    }
    // Anything else (std::bad_alloc aside) propagates and fails the test.
  }
  // The mutator must actually exercise both paths to mean anything.
  EXPECT_GT(rejected, 50u);
  EXPECT_GT(survived, 10u);
}

TEST(ScenarioFuzz, MalformedAndNonFiniteCorpusAlwaysThrows) {
  const char* corpus[] = {
      "at inf arrive AlexNet\n",
      "at nan arrive AlexNet\n",
      "at -inf arrive AlexNet\n",
      "at 1e999 arrive AlexNet\n",
      "at -0.5 arrive AlexNet\n",
      "at 5 arrive AlexNet\nat 1 depart AlexNet\n",  // time travel
      "at 0 arrive AlexNet slo inf\n",
      "at 0 arrive AlexNet slo nan\n",
      "at 0 arrive AlexNet slo 1e999\n",
      "at 0 arrive AlexNet slo -3\n",
      "at 0 arrive AlexNet slo\n",
      "at 0 depart AlexNet slo 5\n",
      "at 0 arrive AlexNet extra\n",
      "at 0 arrive AlexNet slo 5 extra\n",
      "at 0 arrive\n",
      "at 0 arrive NoSuchNet\n",
      "at 0 sashay AlexNet\n",
      "att 0 arrive AlexNet\n",
      "at zero arrive AlexNet\n",
      "at 0 arrive AlexNet\nat 1 arrive AlexNet\n",   // double arrive
      "at 0 depart AlexNet\n",                        // depart while absent
  };
  for (const char* text : corpus)
    EXPECT_THROW(workload::parse_scenario(std::string(text)),
                 std::invalid_argument)
        << text;

  // The constructor path enforces the same finiteness rules as the parser:
  // hand-built events cannot smuggle in inf/NaN timestamps or SLOs.
  ScenarioEvent inf_time{std::numeric_limits<double>::infinity(),
                         ScenarioEventKind::kArrive, ModelId::kAlexNet};
  EXPECT_THROW(Scenario({inf_time}), std::invalid_argument);
  ScenarioEvent nan_time{std::numeric_limits<double>::quiet_NaN(),
                         ScenarioEventKind::kArrive, ModelId::kAlexNet};
  EXPECT_THROW(Scenario({nan_time}), std::invalid_argument);
  ScenarioEvent inf_slo{0.0, ScenarioEventKind::kArrive, ModelId::kAlexNet};
  inf_slo.slo_ms = std::numeric_limits<double>::infinity();
  EXPECT_THROW(Scenario({inf_slo}), std::invalid_argument);
}

TEST(ScenarioReplay, MixAfterTracksArrivalOrderAndDepartures) {
  const Scenario s = workload::parse_scenario(
      "at 0 arrive VGG-19\n"
      "at 1 arrive AlexNet\n"
      "at 2 arrive MobileNet\n"
      "at 3 depart VGG-19\n"
      "at 4 depart AlexNet\n"
      "at 5 depart MobileNet\n");
  EXPECT_EQ(s.mix_after(2).describe(), "VGG-19+AlexNet+MobileNet");
  EXPECT_EQ(s.mix_after(3).describe(), "AlexNet+MobileNet");
  EXPECT_EQ(s.mix_after(5).size(), 0u);  // fully drained
  EXPECT_EQ(s.peak_concurrency(), 3u);
}

}  // namespace
