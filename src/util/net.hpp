#pragma once
/// \file net.hpp
/// Minimal line-oriented TCP shims for the serving daemon and its client.
///
/// Scope is deliberately tiny: loopback-only listening (the daemon is an
/// operator tool, not an internet-facing service), blocking connects, and a
/// newline-delimited message discipline matching the scenario trace grammar.
/// Everything is POSIX sockets; errors surface as std::runtime_error with
/// the errno text attached. Objects are move-only owners of their fd.

#include <cstdint>
#include <string>

namespace omniboost::util {

/// One connected TCP socket with buffered line reads.
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(int fd) : fd_(fd) {}
  ~TcpStream();
  TcpStream(TcpStream&& rhs) noexcept;
  TcpStream& operator=(TcpStream&& rhs) noexcept;
  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  bool valid() const { return fd_ >= 0; }

  /// Writes \p line plus a trailing '\n' (the line must not contain one).
  /// Throws std::runtime_error on a closed or broken connection.
  void send_line(const std::string& line);

  enum class RecvStatus {
    kLine,     ///< a full line was received (newline stripped)
    kTimeout,  ///< nothing arrived within the timeout
    kClosed,   ///< the peer closed the connection
  };

  /// Reads the next newline-delimited line into \p out (without the
  /// newline; a trailing '\r' is stripped for telnet-friendliness).
  /// \p timeout_ms < 0 blocks indefinitely; 0 polls.
  RecvStatus recv_line(std::string* out, int timeout_ms = -1);

  void close();

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes received past the last returned line
};

/// A listening TCP socket bound to 127.0.0.1.
class TcpListener {
 public:
  /// Binds and listens on loopback. \p port == 0 picks an ephemeral port;
  /// port() reports the actual one. Throws std::runtime_error on failure
  /// (e.g. the port is taken).
  explicit TcpListener(std::uint16_t port);
  ~TcpListener();
  TcpListener(TcpListener&& rhs) noexcept;
  TcpListener& operator=(TcpListener&& rhs) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const { return port_; }

  /// Accepts one connection. \p timeout_ms < 0 blocks indefinitely; on
  /// timeout the returned stream is !valid().
  TcpStream accept(int timeout_ms = -1);

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Blocking connect to host:port (host is resolved as a numeric IPv4
/// address or "localhost"). Throws std::runtime_error on failure.
TcpStream tcp_connect(const std::string& host, std::uint16_t port);

}  // namespace omniboost::util
