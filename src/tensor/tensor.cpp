#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <ostream>

#include "util/require.hpp"

namespace omniboost::tensor {

std::size_t shape_size(const Shape& shape) {
  std::size_t n = 1;
  for (std::size_t e : shape) n *= e;
  return n;
}

namespace {
std::vector<std::size_t> make_strides(const Shape& shape) {
  std::vector<std::size_t> strides(shape.size(), 1);
  for (std::size_t i = shape.size(); i-- > 1;)
    strides[i - 1] = strides[i] * shape[i];
  return strides;
}
}  // namespace

Tensor::Tensor(Shape shape) : Tensor(std::move(shape), 0.0f) {}

Tensor::Tensor(Shape shape, float value)
    : shape_(std::move(shape)),
      strides_(make_strides(shape_)),
      data_(shape_size(shape_), value) {
  for (std::size_t e : shape_)
    OB_REQUIRE(e > 0, "tensor extents must be positive");
}

Tensor Tensor::from_vector(const std::vector<float>& values) {
  OB_REQUIRE(!values.empty(), "from_vector: empty input");
  return from_data({values.size()}, values);
}

Tensor Tensor::from_data(Shape shape, std::vector<float> values) {
  OB_REQUIRE(shape_size(shape) == values.size(),
             "from_data: shape/data size mismatch");
  Tensor t;
  t.shape_ = std::move(shape);
  t.strides_ = make_strides(t.shape_);
  t.data_ = std::move(values);
  return t;
}

std::size_t Tensor::extent(std::size_t dim) const {
  OB_REQUIRE(dim < shape_.size(), "extent: dimension out of range");
  return shape_[dim];
}

float& Tensor::operator[](std::size_t i) {
  OB_REQUIRE(i < data_.size(), "flat index out of range");
  return data_[i];
}

float Tensor::operator[](std::size_t i) const {
  OB_REQUIRE(i < data_.size(), "flat index out of range");
  return data_[i];
}

std::size_t Tensor::offset(std::initializer_list<std::size_t> idx) const {
  OB_REQUIRE(idx.size() == shape_.size(), "index rank mismatch");
  std::size_t off = 0;
  std::size_t d = 0;
  for (std::size_t i : idx) {
    OB_REQUIRE(i < shape_[d], "index out of range");
    off += i * strides_[d];
    ++d;
  }
  return off;
}

float& Tensor::at(std::initializer_list<std::size_t> idx) {
  return data_[offset(idx)];
}

float Tensor::at(std::initializer_list<std::size_t> idx) const {
  return data_[offset(idx)];
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::apply(const std::function<float(float)>& f) {
  for (float& x : data_) x = f(x);
}

Tensor Tensor::reshaped(Shape new_shape) const {
  OB_REQUIRE(shape_size(new_shape) == data_.size(),
             "reshaped: element count mismatch");
  return from_data(std::move(new_shape), data_);
}

void Tensor::check_same_shape(const Tensor& rhs, const char* op) const {
  OB_REQUIRE(shape_ == rhs.shape_, std::string(op) + ": shape mismatch");
}

Tensor& Tensor::operator+=(const Tensor& rhs) {
  check_same_shape(rhs, "operator+=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& rhs) {
  check_same_shape(rhs, "operator-=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(const Tensor& rhs) {
  check_same_shape(rhs, "operator*=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= rhs.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float s) {
  for (float& x : data_) x *= s;
  return *this;
}

Tensor& Tensor::operator+=(float s) {
  for (float& x : data_) x += s;
  return *this;
}

float Tensor::sum() const {
  double s = 0.0;  // double accumulator for numeric stability
  for (float x : data_) s += x;
  return static_cast<float>(s);
}

float Tensor::mean() const {
  if (data_.empty()) return 0.0f;
  return sum() / static_cast<float>(data_.size());
}

float Tensor::min() const {
  OB_REQUIRE(!data_.empty(), "min: empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  OB_REQUIRE(!data_.empty(), "max: empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

std::size_t Tensor::argmax() const {
  OB_REQUIRE(!data_.empty(), "argmax: empty tensor");
  return static_cast<std::size_t>(
      std::max_element(data_.begin(), data_.end()) - data_.begin());
}

float Tensor::l2_norm() const {
  double s = 0.0;
  for (float x : data_) s += static_cast<double>(x) * x;
  return static_cast<float>(std::sqrt(s));
}

Tensor stack(const std::vector<Tensor>& parts) {
  OB_REQUIRE(!parts.empty(), "stack: empty part list");
  const Shape& part_shape = parts.front().shape();
  OB_REQUIRE(!parts.front().empty(), "stack: empty part tensor");
  Shape out_shape;
  out_shape.reserve(part_shape.size() + 1);
  out_shape.push_back(parts.size());
  out_shape.insert(out_shape.end(), part_shape.begin(), part_shape.end());

  Tensor out(std::move(out_shape));
  const std::size_t part_size = parts.front().size();
  float* dst = out.data();
  for (const Tensor& p : parts) {
    OB_REQUIRE(p.shape() == part_shape, "stack: part shape mismatch");
    std::copy(p.data(), p.data() + part_size, dst);
    dst += part_size;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Shape& shape) {
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  return os << ']';
}

}  // namespace omniboost::tensor
