#!/usr/bin/env python3
"""Bench-smoke regression guard: validate the BENCH_*.json artifacts.

Run by tools/run_tier1.sh --bench-smoke (and therefore by CI) right after
the bench-smoke loop. A bench driver that silently stops emitting its JSON
-- or starts emitting an empty/unparsable table -- fails the PR here
instead of uploading a rotten artifact.

Checks, per artifact directory:
  1. every EXPECTED bench name has its BENCH_<name>.json file;
  2. every BENCH_*.json present (expected or not) parses as JSON and carries
     the bench::emit_json shape: non-empty "columns", non-empty "rows", and
     a non-empty "column_stats" object (at least one fully-numeric column);
  3. prefix families with data-dependent membership (utilization_mix<N>)
     have at least their minimum count.

Keep EXPECTED in sync with the bench::report call sites (grep
`bench::report(` under bench/). The test for this file is the CI bench
smoke itself.

Usage: check_bench_json.py <dir-with-BENCH_json-files>
"""

import json
import sys
from pathlib import Path

# Names every --bench-smoke run must emit (bench::report's first argument).
EXPECTED = [
    "ablation_budget",
    "ablation_contention_dram",
    "ablation_contention_gpu",
    "ablation_estimator",
    "ablation_exploration_extraction",
    "ablation_exploration_sweep",
    "ablation_search",
    "ablation_stages",
    "ablation_training",
    "cluster_scaling",
    "estimator_accuracy",
    "fault_recovery",
    "fig1_motivation",
    "fig4_estimator_training",
    "fig4_parallel_design",
    "fig5_throughput_mix3",
    "fig5_throughput_mix4",
    "fig5_throughput_mix5",
    "optimality_gap",
    "parallel_mcts",
    "runtime_overhead",
    "runtime_overhead_batching",
    "runtime_overhead_kernels",
    "runtime_overhead_slo_replay",
    "runtime_overhead_warm_percentiles",
    "scalability",
    "serving_scenarios",
    "serving_scenarios_high",
    "serving_scenarios_low",
    "serving_scenarios_medium",
    "serving_slo",
    "serving_slo_loose",
    "serving_slo_medium",
    "serving_slo_tight",
]

# (prefix, minimum file count) for families whose exact membership is
# data-dependent (bench_utilization skips a mix whose baseline is
# infeasible).
EXPECTED_PREFIXES = [
    ("utilization_mix", 1),
]


def check_document(path: Path) -> list[str]:
    """Validates one BENCH_*.json file; returns a list of problems."""
    problems = []
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        return [f"{path.name}: unreadable or invalid JSON ({err})"]
    for key in ("bench", "columns", "rows", "column_stats"):
        if key not in doc:
            problems.append(f"{path.name}: missing '{key}'")
    if not doc.get("columns"):
        problems.append(f"{path.name}: empty 'columns'")
    if not doc.get("rows"):
        problems.append(f"{path.name}: empty 'rows' (driver emitted no data)")
    stats = doc.get("column_stats")
    if not isinstance(stats, dict) or not stats:
        problems.append(
            f"{path.name}: empty 'column_stats' (no fully-numeric column -- "
            "the table degenerated to strings)"
        )
    elif not all(
        isinstance(s, dict) and {"mean", "stddev", "min", "max", "count"} <= set(s)
        for s in stats.values()
    ):
        problems.append(f"{path.name}: malformed 'column_stats' entry")
    return problems


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__.strip().splitlines()[-1], file=sys.stderr)
        return 2
    bench_dir = Path(argv[1])
    if not bench_dir.is_dir():
        print(f"check_bench_json: no such directory: {bench_dir}", file=sys.stderr)
        return 2

    present = sorted(bench_dir.glob("BENCH_*.json"))
    problems = []

    names = {p.name[len("BENCH_") : -len(".json")] for p in present}
    for expected in EXPECTED:
        if expected not in names:
            problems.append(f"missing artifact: BENCH_{expected}.json")
    for prefix, minimum in EXPECTED_PREFIXES:
        count = sum(1 for n in names if n.startswith(prefix))
        if count < minimum:
            problems.append(
                f"prefix family '{prefix}*': found {count}, expected >= {minimum}"
            )

    for path in present:
        problems.extend(check_document(path))

    if problems:
        print("check_bench_json: FAIL", file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        return 1
    print(
        f"check_bench_json: OK ({len(present)} artifacts, "
        f"{len(EXPECTED)} expected names all present and well-formed)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
