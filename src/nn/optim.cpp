#include "nn/optim.hpp"

#include <cmath>

#include "util/require.hpp"

namespace omniboost::nn {

Optimizer::Optimizer(std::vector<Param*> params, float lr)
    : params_(std::move(params)), lr_(lr) {
  OB_REQUIRE(!params_.empty(), "Optimizer: no parameters");
  for (Param* p : params_)
    OB_REQUIRE(p != nullptr, "Optimizer: null parameter");
  OB_REQUIRE(lr > 0.0f, "Optimizer: learning rate must be positive");
}

void Optimizer::zero_grad() {
  for (Param* p : params_) p->grad.zero();
}

void Optimizer::set_lr(float lr) {
  OB_REQUIRE(lr > 0.0f, "Optimizer::set_lr: learning rate must be positive");
  lr_ = lr;
}

SGD::SGD(std::vector<Param*> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params), lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.reserve(params_.size());
  for (Param* p : params_) velocity_.emplace_back(p->value.shape());
}

void SGD::step() {
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Param& p = *params_[k];
    tensor::Tensor& vel = velocity_[k];
    for (std::size_t i = 0; i < p.value.size(); ++i) {
      const float g = p.grad[i] + weight_decay_ * p.value[i];
      vel[i] = momentum_ * vel[i] + g;
      p.value[i] -= lr_ * vel[i];
    }
  }
}

Adam::Adam(std::vector<Param*> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params), lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Param* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++t_;
  const float bc1 =
      1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 =
      1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Param& p = *params_[k];
    for (std::size_t i = 0; i < p.value.size(); ++i) {
      const float g = p.grad[i];
      m_[k][i] = beta1_ * m_[k][i] + (1.0f - beta1_) * g;
      v_[k][i] = beta2_ * v_[k][i] + (1.0f - beta2_) * g * g;
      const float mhat = m_[k][i] / bc1;
      const float vhat = v_[k][i] / bc2;
      // Decoupled weight decay (AdamW-style).
      p.value[i] -= lr_ * (mhat / (std::sqrt(vhat) + eps_) +
                           weight_decay_ * p.value[i]);
    }
  }
}

RMSprop::RMSprop(std::vector<Param*> params, float lr, float alpha, float eps,
                 float weight_decay)
    : Optimizer(std::move(params), lr),
      alpha_(alpha),
      eps_(eps),
      weight_decay_(weight_decay) {
  OB_REQUIRE(alpha > 0.0f && alpha < 1.0f, "RMSprop: alpha must be in (0,1)");
  sq_avg_.reserve(params_.size());
  for (Param* p : params_) sq_avg_.emplace_back(p->value.shape());
}

void RMSprop::step() {
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Param& p = *params_[k];
    tensor::Tensor& sq = sq_avg_[k];
    for (std::size_t i = 0; i < p.value.size(); ++i) {
      const float g = p.grad[i] + weight_decay_ * p.value[i];
      sq[i] = alpha_ * sq[i] + (1.0f - alpha_) * g * g;
      p.value[i] -= lr_ * g / (std::sqrt(sq[i]) + eps_);
    }
  }
}

}  // namespace omniboost::nn
