#include "nn/kernel.hpp"

#include <stdexcept>

namespace omniboost::nn {

namespace {
KernelKind g_default_kernel = KernelKind::kGemm;
}  // namespace

KernelKind default_kernel() { return g_default_kernel; }

void set_default_kernel(KernelKind kind) { g_default_kernel = kind; }

const char* kernel_name(KernelKind kind) {
  switch (kind) {
    case KernelKind::kReference:
      return "reference";
    case KernelKind::kGemm:
      return "gemm";
  }
  return "?";
}

KernelKind parse_kernel_name(const std::string& name) {
  if (name == "reference") return KernelKind::kReference;
  if (name == "gemm") return KernelKind::kGemm;
  throw std::invalid_argument("unknown kernel '" + name +
                              "' (reference|gemm)");
}

}  // namespace omniboost::nn
