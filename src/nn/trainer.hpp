#pragma once
/// \file trainer.hpp
/// Mini-batch regression trainer producing per-epoch train/validation loss
/// histories (the data behind the paper's Fig. 4).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "nn/loss.hpp"
#include "nn/module.hpp"
#include "nn/optim.hpp"
#include "nn/schedulers.hpp"
#include "util/rng.hpp"

namespace omniboost::nn {

/// A supervised regression dataset: per-sample input (CHW) and target (F).
struct Dataset {
  std::vector<Tensor> inputs;
  std::vector<Tensor> targets;

  std::size_t size() const { return inputs.size(); }

  /// Splits off the last \p n samples as a second dataset.
  std::pair<Dataset, Dataset> split_tail(std::size_t n) const;
};

/// Stacks per-sample CHW tensors (or F vectors) into one batched tensor.
Tensor stack(const std::vector<Tensor>& samples,
             const std::vector<std::size_t>& indices);

/// Training hyper-parameters.
struct TrainConfig {
  std::size_t epochs = 100;   ///< paper: 100 epochs
  std::size_t batch_size = 16;
  float lr = 3e-3f;
  float weight_decay = 1e-4f;
  std::uint64_t seed = 1;     ///< shuffling seed
  /// Optional per-epoch learning-rate schedule (overrides \c lr when set;
  /// not owned, must outlive the training run).
  const LrScheduler* lr_schedule = nullptr;
};

/// Per-epoch loss history.
struct TrainHistory {
  std::vector<double> train_loss;
  std::vector<double> val_loss;  ///< empty if no validation set given
};

/// Runs mini-batch training of \p model with Adam.
///
/// \param model  network in training mode (switched internally per phase)
/// \param loss   criterion (paper: L1)
/// \param train  training samples
/// \param val    validation samples (may be empty)
TrainHistory train_regression(Module& model, const Loss& loss,
                              const Dataset& train, const Dataset& val,
                              const TrainConfig& config);

/// Mean loss of \p model over \p data in inference mode.
double evaluate(Module& model, const Loss& loss, const Dataset& data,
                std::size_t batch_size = 16);

}  // namespace omniboost::nn
