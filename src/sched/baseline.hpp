#pragma once
/// \file baseline.hpp
/// The common scheduling approach (paper's normalization baseline): map the
/// whole workload onto one computing component — in practice the GPU, the
/// board's strongest unit.

#include "core/scheduler.hpp"
#include "models/zoo.hpp"

namespace omniboost::sched {

/// Places every layer of every DNN on a fixed component. Zero decision cost.
class AllOnScheduler final : public core::IScheduler {
 public:
  AllOnScheduler(const models::ModelZoo& zoo, device::ComponentId target,
                 std::string name);

  /// The paper's baseline: everything on the GPU.
  static AllOnScheduler gpu_baseline(const models::ModelZoo& zoo) {
    return AllOnScheduler(zoo, device::ComponentId::kGpu, "Baseline");
  }

  std::string name() const override { return name_; }
  core::ScheduleResult schedule(const workload::Workload& w) override;

 private:
  const models::ModelZoo* zoo_;
  device::ComponentId target_;
  std::string name_;
};

}  // namespace omniboost::sched
